// Gmmchain reproduces the headline comparison of the paper's second
// benchmark set on one kernel: a chain of three generalized matrix
// multiplications (3gmm), where each nest is serial — Polly-style
// per-loop parallelization finds nothing — but consecutive nests
// pipeline row by row.
//
// It prints, for 3gmm and its plain 3mm sibling, the simulated
// speed-ups of the pipeline executor and the Polly baseline, showing
// the crossover the paper's Figure 11 reports: Polly wins when rows
// are independent; cross-loop pipelining is the only winner when they
// are not.
//
// Run with:
//
//	go run ./examples/gmmchain
package main

import (
	"fmt"
	"log"

	"repro/polypipe"
)

func main() {
	const rows = 160
	const chain = 3

	for _, variant := range []polypipe.Variant{polypipe.GMM, polypipe.MM} {
		prog := polypipe.MMChain(chain, rows, variant)
		s := polypipe.NewSession(polypipe.WithWorkers(chain))

		// All three executors must agree on the result.
		if err := s.Verify(prog); err != nil {
			log.Fatal(err)
		}

		pipes, err := s.Simulate(prog, polypipe.SimConfig{Procs: []int{chain}})
		if err != nil {
			log.Fatal(err)
		}
		pipe := pipes[0]
		base, err := s.Simulate(prog, polypipe.SimConfig{Mode: polypipe.ModeParLoop, Procs: []int{chain, 8}})
		if err != nil {
			log.Fatal(err)
		}
		polly, polly8 := base[0], base[1]

		fmt.Printf("%s (rows=%d):\n", prog.Name, rows)
		fmt.Printf("  pipeline (%d workers): %5.2fx\n", chain, pipe)
		fmt.Printf("  polly    (%d threads): %5.2fx\n", chain, polly)
		fmt.Printf("  polly_8  (8 threads): %5.2fx\n", polly8)
		switch variant {
		case polypipe.GMM:
			fmt.Println("  -> serial nests: only cross-loop pipelining gains.")
		case polypipe.MM:
			fmt.Println("  -> independent rows: per-loop parallelization wins.")
		}
		fmt.Println()
	}
}
