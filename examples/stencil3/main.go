// Stencil3 walks the complete compilation pipeline on the paper's
// Listing 3 (three dependent loop nests), starting from DSL source:
// parse → detect → schedule tree → annotated AST (the Figure 6
// artifact) → traced pipelined execution with an ASCII Gantt chart
// showing the cross-loop overlap of Figure 2.
//
// Run with:
//
//	go run ./examples/stencil3
package main

import (
	"fmt"
	"log"

	"repro/polypipe"
)

const src = `
// Listing 3 with N = 12: S feeds R and U; R feeds U.
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    U: C[i][j] = h(A[2*i][2*j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
`

func main() {
	// Front end: DSL source to polyhedral SCoP.
	sc, err := polypipe.Parse("listing3", src)
	if err != nil {
		log.Fatal(err)
	}

	// Analysis: pipeline maps, blocking maps, dependency relations.
	s := polypipe.NewSession(polypipe.WithWorkers(4))
	info, err := s.Detect(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== detection report ==")
	fmt.Println(polypipe.PipelineReport(info))

	// Transformation: the Algorithm 2 schedule tree.
	fmt.Println("== schedule tree ==")
	fmt.Println(polypipe.ScheduleTree(info))

	// Code generation: the annotated AST of Figure 6.
	astOut, err := polypipe.TransformedAST("listing3_pipelined", info)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== annotated AST (Figure 6) ==")
	fmt.Println(astOut)

	// Execution: run the executable twin of the program pipelined and
	// show how the three nests overlap in time (Figure 2's picture).
	prog := polypipe.Listing3(48)
	analysis, gantt, err := s.TracePipelined(prog, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== pipelined execution trace (N = 48, 4 workers) ==")
	fmt.Print(gantt)
	fmt.Printf("tasks=%d makespan=%v busy=%v average concurrency=%.2f\n",
		len(analysis.Spans), analysis.Makespan, analysis.Busy, analysis.Overlap)
}
