// Imagepipeline expresses a realistic three-stage image-processing
// pipeline — box blur, 2× downsample, edge detection — as consecutive
// row-granular loop nests built through the public polypipe API, then
// lets the detector pipeline the stages across rows: as soon as the
// blur has produced the rows a downsampled row needs, that row can be
// computed concurrently with the rest of the blur, and likewise for
// the edge stage.
//
// This is the workload shape the paper's introduction motivates:
// serial, compute-heavy stages that per-loop parallelizers cannot
// touch when each stage carries a dependence, but that overlap
// naturally across stages.
//
// Run with:
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"math"

	"repro/polypipe"
)

// image is a dense H×W float image.
type image struct {
	h, w int
	pix  []float64
}

func newImage(h, w int) *image { return &image{h: h, w: w, pix: make([]float64, h*w)} }

func (im *image) at(i, j int) float64 {
	// Clamp-to-edge addressing.
	if i < 0 {
		i = 0
	}
	if i >= im.h {
		i = im.h - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= im.w {
		j = im.w - 1
	}
	return im.pix[i*im.w+j]
}

func (im *image) set(i, j int, v float64) { im.pix[i*im.w+j] = v }

func (im *image) seed() {
	for i := 0; i < im.h; i++ {
		for j := 0; j < im.w; j++ {
			im.set(i, j, 128+100*math.Sin(float64(i)*0.3)*math.Cos(float64(j)*0.2))
		}
	}
}

func (im *image) hash() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range im.pix {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

func main() {
	const size = 256 // input image height and width

	input := newImage(size, size)
	blurred := newImage(size, size)
	small := newImage(size/2, size/2)
	edges := newImage(size/2, size/2)

	// Each stage's statement computes one output row; the dependence
	// structure is captured by row-granular access relations.
	b := polypipe.NewBuilder("imagepipeline")
	b.Array("in", 1).Array("blur", 1).Array("small", 1).Array("edges", 1)

	// Stage 1 — 3×3 box blur. Row i of the serial running blur also
	// reads its own previous output row (a causal IIR-style filter),
	// which serializes the stage.
	b.Stmt("Blur", polypipe.RectDomain("Blur", size)).
		Writes("blur", polypipe.Var(1, 0)).
		Reads("in", polypipe.Var(1, 0)).
		Reads("blur", polypipe.Linear(-1, 1)).
		Body(func(iv polypipe.Vec) {
			i := iv[0]
			for j := 0; j < size; j++ {
				acc := 0.0
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						acc += input.at(i+di, j+dj)
					}
				}
				// Causal feedback from the previous blurred row.
				acc = acc/9*0.9 + blurred.at(i-1, j)*0.1
				blurred.set(i, j, acc)
			}
		})

	// Stage 2 — 2× downsample: row i averages blurred rows 2i, 2i+1.
	b.Stmt("Down", polypipe.RectDomain("Down", size/2)).
		Writes("small", polypipe.Var(1, 0)).
		Reads("blur", polypipe.Linear(0, 2)).
		Reads("blur", polypipe.Linear(1, 2)).
		Body(func(iv polypipe.Vec) {
			i := iv[0]
			for j := 0; j < size/2; j++ {
				v := (blurred.at(2*i, 2*j) + blurred.at(2*i, 2*j+1) +
					blurred.at(2*i+1, 2*j) + blurred.at(2*i+1, 2*j+1)) / 4
				small.set(i, j, v)
			}
		})

	// Stage 3 — edge magnitude: row i needs small rows i-1..i+1, and a
	// causal feedback on its own previous row serializes the stage.
	b.Stmt("Edge", polypipe.RectDomain("Edge", size/2)).
		Writes("edges", polypipe.Var(1, 0)).
		Reads("small", polypipe.Linear(-1, 1)).
		Reads("small", polypipe.Var(1, 0)).
		Reads("small", polypipe.Linear(1, 1)).
		Reads("edges", polypipe.Linear(-1, 1)).
		Body(func(iv polypipe.Vec) {
			i := iv[0]
			for j := 0; j < size/2; j++ {
				gx := small.at(i-1, j+1) + 2*small.at(i, j+1) + small.at(i+1, j+1) -
					small.at(i-1, j-1) - 2*small.at(i, j-1) - small.at(i+1, j-1)
				gy := small.at(i+1, j-1) + 2*small.at(i+1, j) + small.at(i+1, j+1) -
					small.at(i-1, j-1) - 2*small.at(i-1, j) - small.at(i-1, j+1)
				mag := math.Sqrt(gx*gx+gy*gy)*0.95 + edges.at(i-1, j)*0.05
				edges.set(i, j, mag)
			}
		})

	sc, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	prog := &polypipe.Program{
		Name: "imagepipeline",
		SCoP: sc,
		Reset: func() {
			input.seed()
			for _, im := range []*image{blurred, small, edges} {
				for k := range im.pix {
					im.pix[k] = 0
				}
			}
		},
		Hash: func() uint64 { return edges.hash() ^ small.hash()*31 ^ blurred.hash()*17 },
	}
	prog.Reset()

	s3 := polypipe.NewSession(polypipe.WithWorkers(3))
	info, err := s3.Detect(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(polypipe.PipelineReport(info))

	if err := polypipe.NewSession(polypipe.WithWorkers(4)).Verify(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: all executors agree ✓")

	speedups, err := s3.Simulate(prog, polypipe.SimConfig{Procs: []int{3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 3-worker pipeline speed-up: %.2fx (3 serial stages overlapped)\n", speedups[0])

	_, gantt, err := s3.TracePipelined(prog, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage activity (wall clock, 3 workers):")
	fmt.Print(gantt)
}
