// Histogram demonstrates the relaxed non-injective-write extension
// (the paper's §7 future work, implemented here): a binning stage
// writes each output cell many times — the classic histogram /
// reduction-into-buckets pattern — so the paper's core assumption
// (injective writes) does not hold. Declaring the write with
// WritesOverwriting and detecting with AllowOverwrites pipelines the
// downstream stages against the *last* writer of each bucket.
//
// Stages over a 1-D signal of length N:
//
//  1. Smooth  — running smooth of the signal (serial).
//  2. Bin     — histogram: bucket[i/B] accumulates signal values;
//     each bucket is written B times (non-injective!).
//  3. CDF     — prefix sums over buckets (serial chain).
//
// A bucket's final value exists once Bin has passed the bucket's last
// element, so CDF bucket k can start long before Bin finishes.
//
// Run with:
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"repro/polypipe"
)

func main() {
	const (
		n       = 4096 // signal length
		bucketB = 64   // elements per bucket
		buckets = n / bucketB
	)

	signal := make([]float64, n)
	hist := make([]float64, buckets)
	cdf := make([]float64, buckets)

	b := polypipe.NewBuilder("histogram")
	b.Array("sig", 1).Array("hist", 1).Array("cdf", 1)

	// Stage 1: running smooth, serial in i.
	b.Stmt("Smooth", polypipe.RectDomain("Smooth", n)).
		Writes("sig", polypipe.Var(1, 0)).
		Reads("sig", polypipe.Var(1, 0)).
		Reads("sig", polypipe.Linear(-1, 1)).
		Body(func(iv polypipe.Vec) {
			i := iv[0]
			prev := 0.0
			if i > 0 {
				prev = signal[i-1]
			}
			signal[i] = 0.7*signal[i] + 0.3*prev
		})

	// Stage 2: binning. hist[i/B] is written B times per bucket — a
	// non-injective write, declared as such.
	b.Stmt("Bin", polypipe.RectDomain("Bin", n)).
		WritesOverwriting("hist", polypipe.FloorDiv(polypipe.Var(1, 0), bucketB)).
		Reads("sig", polypipe.Var(1, 0)).
		Reads("hist", polypipe.FloorDiv(polypipe.Var(1, 0), bucketB)).
		Body(func(iv polypipe.Vec) {
			i := iv[0]
			hist[i/bucketB] += signal[i]
		})

	// Stage 3: prefix sums over the buckets, serial in k; bucket k
	// needs hist[k]'s FINAL value.
	b.Stmt("CDF", polypipe.RectDomain("CDF", buckets)).
		Writes("cdf", polypipe.Var(1, 0)).
		Reads("hist", polypipe.Var(1, 0)).
		Reads("cdf", polypipe.Linear(-1, 1)).
		Body(func(iv polypipe.Vec) {
			k := iv[0]
			prev := 0.0
			if k > 0 {
				prev = cdf[k-1]
			}
			cdf[k] = prev + hist[k]
		})

	sc, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	prog := &polypipe.Program{
		Name: "histogram",
		SCoP: sc,
		Reset: func() {
			for i := range signal {
				signal[i] = float64((i*2654435761)%97) / 10
			}
			for k := range hist {
				hist[k], cdf[k] = 0, 0
			}
		},
		Hash: func() uint64 {
			h := uint64(14695981039346656037)
			for _, v := range cdf {
				h ^= uint64(v * 1024)
				h *= 1099511628211
			}
			return h
		},
	}
	prog.Reset()

	opts := polypipe.Options{AllowOverwrites: true}
	s := polypipe.NewSession(polypipe.WithWorkers(3), polypipe.WithOptions(opts))
	info, err := s.Detect(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(polypipe.PipelineReport(info))

	if err := s.Verify(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: pipelined (last-writer deps) == sequential ✓")

	speedups, err := s.Simulate(prog, polypipe.SimConfig{Procs: []int{3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 3-worker speed-up: %.2fx\n", speedups[0])

	// The pipeline map of Bin -> CDF shows the last-writer semantics:
	// CDF bucket k is enabled by Bin iteration (k+1)·B − 1, the bucket's
	// final write.
	for _, pair := range info.Pairs {
		if pair.Src.Name == "Bin" && pair.Dst.Name == "CDF" {
			if img := pair.T.Lookup(polypipe.Vec{2*bucketB - 1}); len(img) == 1 {
				fmt.Printf("Bin[%d] (last write of bucket 1) enables CDF through %v\n",
					2*bucketB-1, img[0])
			}
		}
	}
}
