// Quickstart: build the paper's Listing 1 program, detect its
// cross-loop pipeline, verify correctness against sequential
// execution, and report the simulated quad-core speed-up.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/polypipe"
)

func main() {
	const n = 64 // N×N stencil grids

	// Listing 1: two serial loop nests; the second reads every other
	// column of the array the first produces.
	prog := polypipe.Listing1(n)

	// One session holds the configuration (workers, options) and reuses
	// the compiled task program across Verify and Simulate.
	s := polypipe.NewSession(polypipe.WithWorkers(4))

	// Detect the pipeline pattern (Algorithm 1 of the paper).
	info, err := s.Detect(prog.SCoP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(polypipe.PipelineReport(info))

	// Correctness: pipelined and baseline executions must reproduce
	// the sequential result bit-for-bit.
	if err := s.Verify(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: pipelined == parloop == sequential ✓")

	// Performance: simulated 4-worker speed-up (deterministic virtual
	// time; use s.Run(polypipe.ModePipelined, prog) for wall-clock on a
	// multi-core host).
	speedups, err := s.Simulate(prog, polypipe.SimConfig{Procs: []int{4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated speed-up on 4 workers: %.2fx\n", speedups[0])
}
