// Quickstart: build the paper's Listing 1 program, detect its
// cross-loop pipeline, verify correctness against sequential
// execution, and report the simulated quad-core speed-up.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/polypipe"
)

func main() {
	const n = 64 // N×N stencil grids

	// Listing 1: two serial loop nests; the second reads every other
	// column of the array the first produces.
	prog := polypipe.Listing1(n)

	// Detect the pipeline pattern (Algorithm 1 of the paper).
	info, err := polypipe.Detect(prog.SCoP, polypipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(polypipe.PipelineReport(info))

	// Correctness: pipelined and baseline executions must reproduce
	// the sequential result bit-for-bit.
	if err := polypipe.Verify(prog, 4, polypipe.Options{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification: pipelined == parloop == sequential ✓")

	// Performance: simulated 4-worker speed-up (deterministic virtual
	// time; use RunPipelined for wall-clock on a multi-core host).
	speedup, err := polypipe.SimSpeedup(prog, 4, polypipe.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated speed-up on 4 workers: %.2fx\n", speedup)
}
