// Command serveload is the replayable load generator for the
// detection service: it builds the paper's corpus (Table 9 P1–P10
// plus the nmm matrix chains), draws a zipf-skewed request sequence
// from a fixed seed — so two runs replay byte-identical traffic — and
// drives it over HTTP against an in-process pipelined server (or, with
// -addr, any running one), reporting p50/p99 latency, throughput, and
// the shed rate.
//
// The sequence runs twice: the "cold" pass starts with an empty cache
// and pays detection on every distinct kernel; the "warm" pass replays
// the same traffic against the now-populated fingerprint cache, which
// is the steady state a deployment lives in.
//
// -out writes the BENCH_serve.json document; -gate re-runs and fails
// if p50 or p99 of any pass regressed more than -gate-tol (default
// 15%) against the committed file. Wired into `make bench-serve` and
// `make bench-serve-gate`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/scop"
	"repro/internal/serve"
	"repro/polypipe"
)

type result struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	ClientErrors  int     `json:"client_errors"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ShedRate      float64 `json:"shed_rate"`
}

type doc struct {
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Note       string   `json:"note"`
	Config     config   `json:"config"`
	Results    []result `json:"results"`
}

type config struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        int64   `json:"seed"`
	Corpus      int     `json:"corpus"`
	N           int     `json:"n"`
}

func main() {
	addr := flag.String("addr", "", "target a running pipelined instead of an in-process server")
	requests := flag.Int("requests", 1500, "requests per pass")
	concurrency := flag.Int("concurrency", 8, "concurrent client connections")
	n := flag.Int("n", 12, "kernel grid size")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew (>1; larger = hotter head)")
	seed := flag.Int64("seed", 1, "traffic seed; same seed = same request sequence")
	out := flag.String("out", "", "write the JSON document here (e.g. BENCH_serve.json)")
	gate := flag.Bool("gate", false, "compare against -gate-file and fail on regression")
	gateFile := flag.String("gate-file", "BENCH_serve.json", "committed baseline for -gate")
	gateTol := flag.Float64("gate-tol", 0.15, "allowed fractional latency regression")
	flag.Parse()

	corpus, err := buildCorpus(*n)
	if err != nil {
		fatal(err)
	}
	// The request sequence is drawn up front from the seed so the
	// traffic replays exactly regardless of concurrency or timing.
	zr := rand.NewZipf(rand.New(rand.NewSource(*seed)), *zipfS, 1, uint64(len(corpus)-1))
	seq := make([]int, *requests)
	for i := range seq {
		seq[i] = int(zr.Uint64())
	}

	base := *addr
	if base == "" {
		sess := polypipe.NewSession(polypipe.WithCache(0))
		defer sess.Close()
		srv := serve.New(sess, serve.Limits{}, nil)
		bound, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		base = bound.String()
	}
	url := "http://" + base + "/v1/detect"

	d := doc{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "zipf-skewed replayable traffic over Table 9 P1-P10 + nmm chains; " +
			"cold = empty cache, warm = same sequence replayed against the populated fingerprint cache; " +
			"shed counts 429/503 refusals",
		Config: config{Requests: *requests, Concurrency: *concurrency, ZipfS: *zipfS, Seed: *seed, Corpus: len(corpus), N: *n},
	}
	for _, pass := range []string{"cold", "warm"} {
		r := runPass(pass, url, corpus, seq, *concurrency)
		d.Results = append(d.Results, r)
		fmt.Printf("%-5s  %6d req  ok %6d  shed %4d  p50 %8.2fms  p99 %8.2fms  %8.1f req/s  shed rate %.3f\n",
			r.Name, r.Requests, r.OK, r.Shed,
			float64(r.P50NS)/1e6, float64(r.P99NS)/1e6, r.ThroughputRPS, r.ShedRate)
	}

	if *out != "" {
		buf, _ := json.MarshalIndent(d, "", " ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	if *gate {
		if err := runGate(*gateFile, *gateTol, d.Results); err != nil {
			fatal(err)
		}
		fmt.Printf("gate: OK (tolerance %.0f%%)\n", *gateTol*100)
	}
}

// buildCorpus serializes the served kernel set: the ten Table 9
// programs and the 2/3/4-deep matrix chains, all in the scop/v1
// envelope.
func buildCorpus(n int) ([][]byte, error) {
	var out [][]byte
	for i := 1; i <= 10; i++ {
		p, err := kernels.Table9Program(fmt.Sprintf("P%d", i), n, 2)
		if err != nil {
			return nil, err
		}
		body, err := scop.ToJSONEnveloped(p.SCoP)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		out = append(out, body)
	}
	for _, chain := range []int{2, 3, 4} {
		p := kernels.MMChain(chain, 8, kernels.MM)
		body, err := scop.ToJSONEnveloped(p.SCoP)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		out = append(out, body)
	}
	return out, nil
}

// runPass replays seq against url with the given client concurrency.
func runPass(name, url string, corpus [][]byte, seq []int, concurrency int) result {
	var (
		mu                  sync.Mutex
		latencies           []int64
		ok, shed, clientErr int
	)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			var lats []int64
			myOK, myShed, myErr := 0, 0, 0
			for i := range next {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(corpus[seq[i]]))
				lat := time.Since(t0).Nanoseconds()
				if err != nil {
					myErr++
					continue
				}
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					myOK++
					lats = append(lats, lat)
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					myShed++
				default:
					myErr++
				}
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			ok += myOK
			shed += myShed
			clientErr += myErr
			mu.Unlock()
		}()
	}
	for i := range seq {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	r := result{Name: name, Requests: len(seq), OK: ok, Shed: shed, ClientErrors: clientErr}
	if len(latencies) > 0 {
		r.P50NS = latencies[len(latencies)/2]
		r.P99NS = latencies[len(latencies)*99/100]
	}
	r.ThroughputRPS = float64(ok) / wall.Seconds()
	r.ShedRate = float64(shed) / float64(len(seq))
	return r
}

// runGate compares fresh results against the committed baseline: p50
// and p99 of each named pass may regress at most tol.
func runGate(file string, tol float64, fresh []result) error {
	buf, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var base doc
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	byName := map[string]result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	var failures []string
	for _, r := range fresh {
		b, okRow := byName[r.Name]
		if !okRow {
			continue
		}
		for _, m := range []struct {
			what      string
			base, got int64
		}{{"p50", b.P50NS, r.P50NS}, {"p99", b.P99NS, r.P99NS}} {
			if m.base <= 0 {
				continue
			}
			ratio := float64(m.got)/float64(m.base) - 1
			if ratio > tol {
				failures = append(failures, fmt.Sprintf("%s %s regressed %.1f%% (%.2fms -> %.2fms)",
					r.Name, m.what, ratio*100, float64(m.base)/1e6, float64(m.got)/1e6))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "gate:", f)
		}
		return fmt.Errorf("%d latency regression(s) beyond %.0f%%", len(failures), tol*100)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serveload:", err)
	os.Exit(1)
}
