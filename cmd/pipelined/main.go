// Command pipelined is the detection daemon: it serves Algorithm 1
// over HTTP/JSON (internal/serve) with a tiered fingerprint cache —
// the in-process LRU backed, when -disk-cache is set, by a durable
// content-addressed store — and the admission plumbing a shared
// deployment needs: bounded in-flight work, per-tenant token-bucket
// quotas, and load shedding with Retry-After.
//
// Endpoints: POST /v1/detect and /v1/detect/batch (scop/v1 envelope,
// docs/API.md), GET /healthz, /metrics, /debug/*. SIGTERM/SIGINT
// start a graceful drain: /healthz flips to 503 so load balancers
// stop routing, queued work is shed, in-flight detections finish (up
// to -drain-timeout), then the process exits. docs/SERVING.md is the
// operator guide.
//
// Usage:
//
//	pipelined -addr :8080 -disk-cache /var/cache/pipelined
//	pipelined -addr 127.0.0.1:0 -tenant-rate 50 -tenant-burst 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/polypipe"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a random port)")
	workers := flag.Int("workers", 0, "detection worker-pool width (0 = GOMAXPROCS)")
	backend := flag.String("backend", "", "detection backend: \"\"/explicit or symbolic")
	minBlock := flag.Int("min-block-iters", 0, "coarsen blocks to at least this many iterations")
	cacheCap := flag.Int("cache", 0, "in-memory cache capacity in entries (0 = default)")
	diskCache := flag.String("disk-cache", "", "directory for the durable cache tier (empty = memory only)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent detections admitted (0 = 2x GOMAXPROCS)")
	maxQueue := flag.Int("queue", 0, "admission queue bound before shedding (0 = 4x max-inflight)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained requests/sec (0 = no quotas)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant burst depth (0 = max(rate, 1))")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight work on shutdown")
	sampleInterval := flag.Duration("sample-interval", 0, "continuous sampler period (0 = sampler off)")
	flag.Parse()

	cfg := polypipe.Config{
		Workers:       *workers,
		Options:       polypipe.Options{MinBlockIters: *minBlock, Backend: *backend},
		Backend:       *backend,
		Cache:         true,
		CacheCapacity: *cacheCap,
		DiskCacheDir:  *diskCache,
		Registry:      polypipe.NewRegistry(),
	}
	if *sampleInterval > 0 {
		cfg.Sampler = true
		cfg.SampleInterval = *sampleInterval
	}
	sess := polypipe.NewSessionFromConfig(cfg)
	defer sess.Close()
	if err := sess.DiskCacheError(); err != nil {
		fatal(fmt.Errorf("disk cache: %w", err))
	}

	srv := serve.New(sess, serve.Limits{
		MaxInFlight: *maxInflight,
		MaxQueue:    *maxQueue,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
	}, cfg.Registry)

	bound, err := srv.Serve(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving on http://%s\n", bound)
	if *diskCache != "" {
		fmt.Printf("disk cache at %s\n", *diskCache)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("shutting down after %v: draining for up to %v\n", got, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Println("drained; bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipelined:", err)
	os.Exit(1)
}
