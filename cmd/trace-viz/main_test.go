package main

import "testing"

func TestBuildKernel(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"listing1", "listing1"},
		{"listing3", "listing3"},
		{"P3", "P3"},
		{"2mm", "2mm"},
		{"3gmmt", "3gmmt"},
		{"4mmt", "4mmt"},
		{"5mm", "5mm"}, // chains beyond the paper's 4 are supported
	}
	for _, c := range cases {
		p, err := buildKernel(c.name, 10, 2, 12)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if p.Name != c.want {
			t.Errorf("%s: program name %q", c.name, p.Name)
		}
	}
	for _, bad := range []string{"", "2xx", "P99", "Pmm"} {
		if _, err := buildKernel(bad, 10, 2, 12); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
