package main

import "testing"

func TestBuildKernel(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"listing1", "listing1"},
		{"listing3", "listing3"},
		{"P3", "P3"},
		{"2mm", "2mm"},
		{"3gmmt", "3gmmt"},
		{"4mmt", "4mmt"},
		{"5mm", "5mm"}, // chains beyond the paper's 4 are supported
	}
	for _, c := range cases {
		p, err := buildKernel(c.name, 10, 2, 12)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if p.Name != c.want {
			t.Errorf("%s: program name %q", c.name, p.Name)
		}
	}
	for _, bad := range []string{"", "2xx", "P99", "Pmm"} {
		if _, err := buildKernel(bad, 10, 2, 12); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFormatFlagParsing(t *testing.T) {
	for _, ok := range []string{"svg", "json"} {
		if err := checkFormat(ok); err != nil {
			t.Errorf("checkFormat(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "SVG", "perfetto", "html"} {
		if err := checkFormat(bad); err == nil {
			t.Errorf("checkFormat(%q) accepted", bad)
		}
	}
	if got := outputName("", "json"); got != "trace.json" {
		t.Errorf("outputName default = %q", got)
	}
	if got := outputName("", "svg"); got != "trace.svg" {
		t.Errorf("outputName default = %q", got)
	}
	if got := outputName("my.out", "json"); got != "my.out" {
		t.Errorf("explicit -o not honored: %q", got)
	}
}
