// Command trace-viz runs one of the built-in workloads under the
// pipelined executor with tracing enabled and writes an SVG Gantt
// timeline of per-statement activity — the graphical version of the
// paper's Figure 2 overlap picture, measured rather than drawn.
//
// Usage:
//
//	trace-viz -kernel listing3 -n 48 -workers 4 -o overlap.svg
//	trace-viz -kernel 3gmm -rows 128 -o gmm.svg
//	trace-viz -kernel P5 -n 10 -size 2 -o p5.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/polypipe"
)

func main() {
	kernel := flag.String("kernel", "listing3", "workload: listing1, listing3, P1..P10, or {2,3,4}{mm,mmt,gmm,gmmt}")
	n := flag.Int("n", 32, "grid size for listing/P workloads")
	size := flag.Int("size", 2, "SIZE for P workloads")
	rows := flag.Int("rows", 96, "rows for matrix-chain workloads")
	workers := flag.Int("workers", 4, "pipeline workers")
	out := flag.String("o", "trace.svg", "output SVG file")
	flag.Parse()

	prog, err := buildKernel(*kernel, *n, *size, *rows)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := polypipe.TraceSVG(f, prog, *workers, polypipe.Options{}); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, %d workers)\n", *out, prog.Name, *workers)
}

func buildKernel(name string, n, size, rows int) (*polypipe.Program, error) {
	switch {
	case name == "listing1":
		return polypipe.Listing1(n), nil
	case name == "listing3":
		return polypipe.Listing3(n), nil
	case strings.HasPrefix(name, "P"):
		return polypipe.Table9Program(name, n, size)
	}
	if len(name) >= 3 {
		chain, err := strconv.Atoi(name[:1])
		if err == nil {
			for _, v := range []polypipe.Variant{polypipe.MM, polypipe.MMT, polypipe.GMM, polypipe.GMMT} {
				if name[1:] == v.String() {
					return polypipe.MMChain(chain, rows, v), nil
				}
			}
		}
	}
	return nil, fmt.Errorf("unknown kernel %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace-viz:", err)
	os.Exit(1)
}
