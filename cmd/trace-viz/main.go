// Command trace-viz runs one of the built-in workloads under the
// pipelined executor with tracing enabled and writes either an SVG
// Gantt timeline of per-statement activity — the graphical version of
// the paper's Figure 2 overlap picture, measured rather than drawn —
// or a Chrome/Perfetto trace_event JSON file (open it at
// ui.perfetto.dev or chrome://tracing; see docs/OBSERVABILITY.md).
//
// Usage:
//
//	trace-viz -kernel listing3 -n 48 -workers 4 -o overlap.svg
//	trace-viz -kernel 3gmm -rows 128 -o gmm.svg
//	trace-viz -kernel P5 -n 10 -size 2 -format json -o p5.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/polypipe"
)

func main() {
	kernel := flag.String("kernel", "listing3", "workload: listing1, listing3, P1..P10, or {2,3,4}{mm,mmt,gmm,gmmt}")
	n := flag.Int("n", 32, "grid size for listing/P workloads")
	size := flag.Int("size", 2, "SIZE for P workloads")
	rows := flag.Int("rows", 96, "rows for matrix-chain workloads")
	workers := flag.Int("workers", 4, "pipeline workers")
	format := flag.String("format", "svg", "output format: svg (Gantt timeline) or json (Perfetto trace_event)")
	out := flag.String("o", "", "output file (default trace.<format>)")
	flag.Parse()

	if err := checkFormat(*format); err != nil {
		fatal(err)
	}
	prog, err := buildKernel(*kernel, *n, *size, *rows)
	if err != nil {
		fatal(err)
	}
	name := outputName(*out, *format)
	f, err := os.Create(name)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "svg":
		err = polypipe.NewSession(polypipe.WithWorkers(*workers)).TraceSVG(f, prog)
	case "json":
		err = polypipe.TraceJSON(f, prog, *workers, polypipe.Options{})
	}
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, %d workers)\n", name, prog.Name, *workers)
}

// checkFormat validates the -format flag.
func checkFormat(format string) error {
	switch format {
	case "svg", "json":
		return nil
	}
	return fmt.Errorf("unknown format %q (want svg or json)", format)
}

// outputName resolves the output path: an explicit -o wins, otherwise
// trace.<format>.
func outputName(out, format string) string {
	if out != "" {
		return out
	}
	return "trace." + format
}

func buildKernel(name string, n, size, rows int) (*polypipe.Program, error) {
	return polypipe.Kernel(name, n, size, rows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace-viz:", err)
	os.Exit(1)
}
