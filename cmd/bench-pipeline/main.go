// Command bench-pipeline regenerates the paper's Figure 10: the
// speed-up of the cross-loop-pipelined execution over the sequential
// execution for the ten Table 9 programs across a grid of (N, SIZE)
// configurations, on a fixed number of workers (4 in the paper's
// quad-core setup).
//
// Absolute numbers depend on the host; the paper's qualitative shape —
// every program gains, by an amount set by its access patterns and
// num_i cost vector — is what this harness reproduces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/kernels"
	"repro/internal/report"
	"repro/polypipe"
)

// cellResult is one (program, N, SIZE) measurement of a -json run.
type cellResult struct {
	Prog          string  `json:"prog"`
	N             int     `json:"n"`
	Size          int     `json:"size"`
	Speedup       float64 `json:"speedup"`
	Executor      string  `json:"executor"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	Tasks         int     `json:"tasks"`
	MaxConcurrent int     `json:"max_concurrent"`
	StallNs       int64   `json:"stall_ns"`
	Utilization   float64 `json:"utilization"`
}

// runResult is the whole bench run as one JSON object, so trajectories
// can be collected as BENCH_*.json without scraping the text table.
type runResult struct {
	Workers int          `json:"workers"`
	Mode    string       `json:"mode"`
	Reps    int          `json:"reps"`
	Cells   []cellResult `json:"cells"`
}

// observeCell runs one observed pipelined execution and folds its
// metrics into a cell.
func observeCell(p *kernels.Program, workers int, spec kernels.T9Spec, n, size int, speedup float64) (cellResult, error) {
	m, err := polypipe.Observe(p, workers, polypipe.Options{})
	if err != nil {
		return cellResult{}, err
	}
	return cellResult{
		Prog:          spec.Name,
		N:             n,
		Size:          size,
		Speedup:       speedup,
		Executor:      m.Result.Executor,
		ElapsedNs:     m.Result.Elapsed.Nanoseconds(),
		Tasks:         m.Result.Tasks,
		MaxConcurrent: m.Result.MaxConcurrent,
		StallNs:       m.Analysis.TotalStall.Nanoseconds(),
		Utilization:   m.Analysis.Utilization(workers),
	}, nil
}

func main() {
	ns := flag.String("n", "8,12,16", "comma-separated matrix sizes N")
	sizes := flag.String("size", "4,8", "comma-separated gmp_data SIZE values")
	workers := flag.Int("workers", 4, "pipeline worker count (the paper's core count)")
	progs := flag.String("progs", "", "comma-separated program subset (default: all of P1..P10)")
	reps := flag.Int("reps", 1, "repetitions per cell (best time wins)")
	mode := flag.String("mode", "sim", "sim (virtual time, works on any host) or real (wall clock)")
	overhead := flag.Duration("task-overhead", 500*time.Nanosecond, "per-task scheduling overhead modelled in sim mode")
	table9 := flag.Bool("table9", false, "print the Table 9 program specifications (Figure 9) and exit")
	jsonOut := flag.Bool("json", false, "emit the run's results (speedups plus observed stall/utilization metrics) as one JSON object on stdout")
	detectBench := flag.Bool("detect-bench", false, "benchmark core.Detect serial vs parallel on the P4/P7/P10/fuzzstress kernels and emit BENCH_detect.json-shaped output")
	cacheBench := flag.Bool("cache-bench", false, "benchmark the detection cache's serving path (hot Session.Detect vs cold Detect) on the same kernels; combine with -detect-bench for the full BENCH_detect.json")
	detectOut := flag.String("detect-out", "", "with -detect-bench/-cache-bench, write the JSON here instead of stdout (e.g. BENCH_detect.json)")
	detectSizes := flag.String("sizes", "32", "with -detect-bench/-bench-gate, comma-separated problem sizes for the P4/P7/P10 kernels (e.g. 32,64,128 for the scaling sweep)")
	benchGate := flag.Bool("bench-gate", false, "re-run the detection benchmark and exit non-zero if any kernel's ns/op regressed beyond -gate-tol against -gate-file")
	gateFile := flag.String("gate-file", "BENCH_detect.json", "committed benchmark file the -bench-gate run compares against")
	gateTol := flag.Float64("gate-tol", 0.15, "fractional ns/op regression tolerance for -bench-gate/-exec-gate (0.15 = 15%)")
	execBench := flag.Bool("exec-bench", false, "benchmark the execution runtime (serial/pipelined/futures/stages plus IR lowering) on the P4/P7/P10 kernels and emit BENCH_exec.json-shaped output")
	execOut := flag.String("exec-out", "", "with -exec-bench, write the JSON here instead of stdout (e.g. BENCH_exec.json)")
	execGate := flag.Bool("exec-gate", false, "re-run the execution benchmark and exit non-zero if any row's ns/op regressed beyond -gate-tol against -exec-gate-file")
	execGateFile := flag.String("exec-gate-file", "BENCH_exec.json", "committed benchmark file the -exec-gate run compares against")
	execSizes := flag.String("exec-sizes", "32,64,128", "with -exec-bench/-exec-gate, comma-separated problem sizes for the P4/P7/P10 kernels")
	aotBench := flag.Bool("aot-bench", false, "benchmark the AOT backend: emitted-binary vs in-process steady state plus compile-time ns/op (passes on/off); alone, print the rows as JSON; with -exec-bench/-exec-gate, merge them into the BENCH_exec.json flow")
	aotSizes := flag.String("aot-sizes", "32", "with -aot-bench, comma-separated problem sizes that get an emitted binary (each costs one `go build` per kernel)")
	aotRepsFlag := flag.Int("aot-reps", aotReps, "with -aot-bench, steady-state repetitions per measurement (best time wins)")
	autotuneFlag := flag.Bool("autotune", false, "run the profile-guided block-size search: alone, print the per-kernel search trail; with -exec-bench/-exec-gate, add \"autotuned\" rows for the -autotune-sizes kernels")
	autotuneSizes := flag.String("autotune-sizes", "32", "with -exec-bench/-exec-gate -autotune, problem sizes that get autotuned rows (the search re-runs the kernel per candidate, so keep this small)")
	autotuneBudget := flag.Int("autotune-budget", 8, "candidate-evaluation budget per kernel for -autotune")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	flag.Parse()
	if *table9 {
		fmt.Print(table9Spec())
		return
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	if *execBench || *execGate {
		sizeVals, err := parseInts(*execSizes)
		if err != nil {
			fatal(err)
		}
		tune := tuneOpts{Enabled: *autotuneFlag, Budget: *autotuneBudget}
		if tune.Enabled {
			if tune.Sizes, err = parseInts(*autotuneSizes); err != nil {
				fatal(err)
			}
		}
		aot := aotOpts{Enabled: *aotBench, Reps: *aotRepsFlag}
		if aot.Enabled {
			if aot.Sizes, err = parseInts(*aotSizes); err != nil {
				fatal(err)
			}
		}
		if *execGate {
			if err := runExecGate(*execGateFile, *gateTol, sizeVals, *workers, tune, aot); err != nil {
				stopProfiles()
				fatal(err)
			}
			return
		}
		if err := runExecBench(*execOut, sizeVals, *workers, tune, aot); err != nil {
			stopProfiles()
			fatal(err)
		}
		return
	}
	if *aotBench {
		sizeVals, err := parseInts(*aotSizes)
		if err != nil {
			fatal(err)
		}
		if err := runAOTBench(aotOpts{Enabled: true, Sizes: sizeVals, Reps: *aotRepsFlag}, *workers); err != nil {
			stopProfiles()
			fatal(err)
		}
		return
	}
	if *autotuneFlag {
		sizeVals, err := parseInts(*autotuneSizes)
		if err != nil {
			fatal(err)
		}
		if err := runAutotuneReport(sizeVals, *workers, *autotuneBudget, true); err != nil {
			stopProfiles()
			fatal(err)
		}
		return
	}
	if *detectBench || *cacheBench || *benchGate {
		sizeVals, err := parseInts(*detectSizes)
		if err != nil {
			fatal(err)
		}
		if *benchGate {
			if err := runBenchGate(*gateFile, *gateTol, sizeVals); err != nil {
				stopProfiles()
				fatal(err)
			}
			return
		}
		if err := runDetectBench(*detectOut, *detectBench, *cacheBench, sizeVals); err != nil {
			stopProfiles()
			fatal(err)
		}
		return
	}
	if *mode != "sim" && *mode != "real" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	nVals, err := parseInts(*ns)
	if err != nil {
		fatal(err)
	}
	sizeVals, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	var specs []kernels.T9Spec
	if *progs == "" {
		specs = kernels.Table9
	} else {
		for _, name := range strings.Split(*progs, ",") {
			spec, ok := kernels.T9SpecByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown program %q", name))
			}
			specs = append(specs, spec)
		}
	}

	var colLabels []string
	type cfg struct{ n, size int }
	var cfgs []cfg
	for _, n := range nVals {
		for _, s := range sizeVals {
			cfgs = append(cfgs, cfg{n, s})
			colLabels = append(colLabels, fmt.Sprintf("N=%d,SZ=%d", n, s))
		}
	}

	if !*jsonOut {
		fmt.Printf("Figure 10 reproduction: pipelined vs sequential speed-up (workers=%d, reps=%d, mode=%s)\n\n",
			*workers, *reps, *mode)
	}

	run := runResult{Workers: *workers, Mode: *mode, Reps: *reps}
	var rowLabels []string
	var grid [][]float64
	for _, spec := range specs {
		rowLabels = append(rowLabels, spec.Name)
		row := make([]float64, 0, len(cfgs))
		for _, c := range cfgs {
			p := kernels.BuildTable9(spec, c.n, c.size)
			sess := polypipe.NewSession(polypipe.WithWorkers(*workers))
			if err := sess.Verify(p); err != nil {
				fatal(fmt.Errorf("%s N=%d SIZE=%d: %w", spec.Name, c.n, c.size, err))
			}
			best := 0.0
			for r := 0; r < *reps; r++ {
				var speedup float64
				var err error
				if *mode == "sim" {
					var out []float64
					out, err = sess.Simulate(p, polypipe.SimConfig{Procs: []int{*workers}, Overhead: *overhead})
					if err == nil {
						speedup = out[0]
					}
				} else {
					_, _, speedup, err = sess.Speedup(p)
				}
				if err != nil {
					fatal(err)
				}
				if speedup > best {
					best = speedup
				}
			}
			row = append(row, best)
			if *jsonOut {
				cell, err := observeCell(p, *workers, spec, c.n, c.size, best)
				if err != nil {
					fatal(err)
				}
				run.Cells = append(run.Cells, cell)
			}
			fmt.Fprintf(os.Stderr, ".")
		}
		grid = append(grid, row)
	}
	fmt.Fprintln(os.Stderr)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(run); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(report.Heatmap("prog", rowLabels, colLabels, grid))
}

// table9Spec renders the reconstructed Table 9 (the paper's Figure 9):
// per program, the nest count, num_i cost vector, and the cross-nest
// read accesses of each statement.
func table9Spec() string {
	t := report.NewTable("prog", "nests", "num_i", "memory access")
	for _, spec := range kernels.Table9 {
		nums := make([]string, len(spec.Nums))
		for i, n := range spec.Nums {
			nums[i] = strconv.Itoa(n)
		}
		var accesses []string
		for k, reads := range spec.Reads {
			for _, rd := range reads {
				accesses = append(accesses, fmt.Sprintf("S%d <- %s",
					k+1, strings.Replace(rd.Pat.String(), "A", fmt.Sprintf("A%d", rd.Src), 1)))
			}
		}
		t.Add(spec.Name,
			strconv.Itoa(len(spec.Nums)),
			strings.Join(nums, ","),
			strings.Join(accesses, "; "))
	}
	return t.String()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// startProfiles begins CPU profiling and arranges the heap profile;
// the returned stop function is idempotent and must run before the
// process exits for the profiles to be complete.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench-pipeline: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench-pipeline: memprofile:", err)
			}
		}
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-pipeline:", err)
	os.Exit(1)
}
