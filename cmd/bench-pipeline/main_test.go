package main

import (
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 12,16")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 16 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("bad list accepted")
	}
	one, err := parseInts("4")
	if err != nil || len(one) != 1 {
		t.Fatalf("single = %v, %v", one, err)
	}
}

func TestTable9Spec(t *testing.T) {
	out := table9Spec()
	for _, want := range []string{"P1", "P10", "S2 <- A1[i][j]", "S2 <- A1[2i][2j]", "1,8,32,32"} {
		if !strings.Contains(out, want) {
			t.Errorf("table9 spec missing %q:\n%s", want, out)
		}
	}
}
