package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 12,16")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 16 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("bad list accepted")
	}
	one, err := parseInts("4")
	if err != nil || len(one) != 1 {
		t.Fatalf("single = %v, %v", one, err)
	}
}

// TestObserveCellJSON runs one small cell through the -json path and
// checks the emitted object carries the observed runtime metrics.
func TestObserveCellJSON(t *testing.T) {
	spec, ok := kernels.T9SpecByName("P1")
	if !ok {
		t.Fatal("P1 spec missing")
	}
	p := kernels.BuildTable9(spec, 8, 2)
	cell, err := observeCell(p, 2, spec, 8, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Prog != "P1" || cell.N != 8 || cell.Size != 2 || cell.Speedup != 1.5 {
		t.Errorf("cell identity = %+v", cell)
	}
	if cell.Tasks <= 0 || cell.ElapsedNs <= 0 || cell.MaxConcurrent < 1 {
		t.Errorf("cell metrics = %+v", cell)
	}
	if cell.Utilization <= 0 || cell.Utilization > 1.01 {
		t.Errorf("utilization = %f", cell.Utilization)
	}
	data, err := json.Marshal(runResult{Workers: 2, Mode: "sim", Reps: 1, Cells: []cellResult{cell}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"workers"`, `"cells"`, `"stall_ns"`, `"utilization"`, `"max_concurrent"`, `"elapsed_ns"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
}

func TestTable9Spec(t *testing.T) {
	out := table9Spec()
	for _, want := range []string{"P1", "P10", "S2 <- A1[i][j]", "S2 <- A1[2i][2j]", "1,8,32,32"} {
		if !strings.Contains(out, want) {
			t.Errorf("table9 spec missing %q:\n%s", want, out)
		}
	}
}
