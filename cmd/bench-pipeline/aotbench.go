package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	runexec "repro/internal/exec"
	"repro/internal/gogen"
	"repro/internal/interp"
	"repro/internal/kernels"
)

// aotOpts selects the AOT-backend rows of the execution benchmark
// (the -aot-bench flag): which problem sizes get an emitted binary.
// Every size costs one `go build` per kernel, so the default stays
// small.
type aotOpts struct {
	Enabled bool
	Sizes   []int
	Reps    int
}

// aotReps is the default steady-state repetition count: the emitted
// binary runs its pipelined phase this many times and reports the
// best, and the in-process comparison uses the same best-of policy.
const aotReps = 5

// measureAOT benchmarks the AOT backend on the P4/P7/P10 kernels with
// synthetic interpreter bodies (the semantics the emitted code
// implements). Four row kinds per kernel:
//
//	aot_inprocess      best-of-reps pipelined execution on the
//	                   in-process runtime (execution region only)
//	aot_binary         best-of-reps pipelined execution inside the
//	                   emitted binary (its own pipe= timing, same
//	                   region: runPipelined only, seeding excluded)
//	aot_compile        gogen compile+emit with the full pass pipeline
//	aot_compile_noopt  gogen compile+emit with passes disabled
//
// The aot_binary vs aot_inprocess pair is the backend's acceptance
// number: emitted steady-state must not be slower than in-process.
// Build time of the emitted source is deliberately not a row — it is
// `go build`, not this repo's code.
func measureAOT(opts aotOpts, workers int) ([]execMeasure, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = aotReps
	}
	tmp, err := os.MkdirTemp("", "aot-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var results []execMeasure
	record := func(name, mode string, w, tasks int, r testing.BenchmarkResult) {
		results = append(results, execMeasure{
			Kernel:      name,
			Mode:        mode,
			Workers:     w,
			Tasks:       tasks,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%s/%s: %d ns/op (%d iters)\n", name, mode, r.NsPerOp(), r.N)
	}
	recordNs := func(name, mode string, w, tasks int, ns int64) {
		results = append(results, execMeasure{
			Kernel:     name,
			Mode:       mode,
			Workers:    w,
			Tasks:      tasks,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Iterations: reps,
			NsPerOp:    ns,
		})
		fmt.Fprintf(os.Stderr, "%s/%s: %d ns/op (best of %d)\n", name, mode, ns, reps)
	}

	for _, kname := range []string{"P4", "P7", "P10"} {
		spec, ok := kernels.T9SpecByName(kname)
		if !ok {
			return nil, fmt.Errorf("unknown Table 9 program %q", kname)
		}
		for _, n := range opts.Sizes {
			name := fmt.Sprintf("%s/n=%d", kname, n)
			p := kernels.BuildTable9(spec, n, 1)
			sc := p.SCoP
			// Re-body with the synthetic interpreter semantics — what
			// the emitted program implements, so both sides run the
			// same arithmetic.
			ip := interp.Programify(sc)
			info, err := core.Detect(sc, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("aot-bench %s: detect: %w", name, err)
			}
			tp, err := codegen.Compile(info)
			if err != nil {
				return nil, fmt.Errorf("aot-bench %s: compile: %w", name, err)
			}

			// In-process steady state: best of reps, execution region
			// only (RunCompiled resets outside its timed region,
			// matching the emitted binary's pipe= timing).
			var best time.Duration
			for r := 0; r < reps; r++ {
				res := runexec.RunCompiled(ip, tp, workers)
				if r == 0 || res.Elapsed < best {
					best = res.Elapsed
				}
			}
			recordNs(name, "aot_inprocess", workers, tp.NumTasks(), best.Nanoseconds())

			// Emitted binary steady state: build once, run once, let
			// the binary do its own best-of-reps timing.
			var src strings.Builder
			if err := gogen.EmitWith(&src, info, gogen.EmitOptions{Workers: workers}); err != nil {
				return nil, fmt.Errorf("aot-bench %s: emit: %w", name, err)
			}
			dir := filepath.Join(tmp, strings.ReplaceAll(name, "/", "_"))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			file := filepath.Join(dir, "main.go")
			if err := os.WriteFile(file, []byte(src.String()), 0o644); err != nil {
				return nil, err
			}
			bin := filepath.Join(dir, "prog")
			build := exec.Command("go", "build", "-o", bin, file)
			build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			if out, err := build.CombinedOutput(); err != nil {
				return nil, fmt.Errorf("aot-bench %s: go build: %v\n%s", name, err, out)
			}
			out, err := exec.Command(bin, fmt.Sprint(workers), fmt.Sprint(reps)).CombinedOutput()
			if err != nil {
				return nil, fmt.Errorf("aot-bench %s: emitted binary: %v\n%s", name, err, out)
			}
			tasks, pipe, err := parseEmittedTiming(string(out))
			if err != nil {
				return nil, fmt.Errorf("aot-bench %s: %w", name, err)
			}
			recordNs(name, "aot_binary", workers, tasks, pipe.Nanoseconds())

			// Compile-time rows: the whole backend (task compilation,
			// lowering, passes, printing) per emission, passes on/off.
			record(name, "aot_compile", 0, tp.NumTasks(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := gogen.EmitWith(io.Discard, info, gogen.EmitOptions{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			}))
			record(name, "aot_compile_noopt", 0, tp.NumTasks(), testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := gogen.EmitWith(io.Discard, info, gogen.EmitOptions{Workers: workers, Passes: "none"}); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}
	return results, nil
}

// parseEmittedTiming extracts the task count and the best pipelined
// duration from an emitted binary's "ok hash=... tasks=N seq=D
// pipe=D" line.
func parseEmittedTiming(out string) (tasks int, pipe time.Duration, err error) {
	line := strings.TrimSpace(out)
	var hash uint64
	var seqStr, pipeStr string
	if _, err := fmt.Sscanf(line, "ok hash=%x tasks=%d seq=%s pipe=%s", &hash, &tasks, &seqStr, &pipeStr); err != nil {
		return 0, 0, fmt.Errorf("cannot parse emitted output %q: %w", line, err)
	}
	pipe, err = time.ParseDuration(pipeStr)
	if err != nil {
		return 0, 0, fmt.Errorf("cannot parse pipe duration in %q: %w", line, err)
	}
	return tasks, pipe, nil
}

// runAOTBench is the standalone -aot-bench mode: measure only the AOT
// rows and print them as a JSON array (combine with -exec-bench to
// merge them into the full BENCH_exec.json instead).
func runAOTBench(opts aotOpts, workers int) error {
	results, err := measureAOT(opts, workers)
	if err != nil {
		return err
	}
	reportAOT(results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(results)
}

// reportAOT prints the acceptance comparison: per kernel, emitted
// binary steady state vs the in-process runtime.
func reportAOT(results []execMeasure) {
	inproc := make(map[string]execMeasure)
	for _, m := range results {
		if m.Mode == "aot_inprocess" {
			inproc[m.Kernel] = m
		}
	}
	for _, m := range results {
		if m.Mode != "aot_binary" {
			continue
		}
		if w, ok := inproc[m.Kernel]; ok {
			fmt.Fprintf(os.Stderr, "aot-bench: %s emitted %d ns/op vs in-process %d (%+.1f%%)\n",
				m.Kernel, m.NsPerOp, w.NsPerOp, 100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1))
		}
	}
}
