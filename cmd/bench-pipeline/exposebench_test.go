package main

import (
	"io"
	"testing"

	"repro/internal/obs/export"
	"repro/polypipe"
)

// BenchmarkExpositionOverhead measures one /metrics scrape — registry
// snapshot plus Prometheus text rendering — over the fully populated
// registry of an observed Table-9 run. This is the per-scrape cost a
// live -serve deployment pays on the scraper's goroutine; the
// execution hot path itself stays alloc-free (see
// export.TestScrapeStaysOffHotPath).
func BenchmarkExpositionOverhead(b *testing.B) {
	p, err := polypipe.Kernel("P4", 16, 2, 96)
	if err != nil {
		b.Fatal(err)
	}
	m, err := polypipe.Observe(p, 2, polypipe.Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := m.Snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := export.WritePrometheus(io.Discard, snap); err != nil {
			b.Fatal(err)
		}
	}
}
