package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzscop"
	"repro/internal/isl"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// detectMeasure is one (kernel, mode, backend) detection benchmark
// measurement.
type detectMeasure struct {
	Kernel  string `json:"kernel"`
	Mode    string `json:"mode"` // "serial" (Workers=1) or "parallel" (Workers=GOMAXPROCS)
	Workers int    `json:"workers"`
	// Backend names the detection algebra the row measured: the compiled
	// isl backend ("columnar"/"hashmap") for the explicit enumerated
	// path, or "symbolic" for core.DetectSymbolic's closed-form path
	// (whose ns/op must stay near-flat as n grows). Empty in rows
	// recorded before the field existed; read as the isl backend.
	Backend     string `json:"backend,omitempty"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// gateKey identifies a row for gating; rows recorded before the
// backend field existed gate against the isl backend's fresh rows.
func gateKey(m detectMeasure) string {
	b := m.Backend
	if b == "" {
		b = isl.BackendName
	}
	return m.Kernel + "/" + m.Mode + "/" + b
}

// detectBenchRun is the BENCH_detect.json schema: the host shape, the
// isl backend the binary was built with, the frozen baselines this
// PR's columnar core is measured against, and the fresh measurements
// (see docs/PERFORMANCE.md for how to read it).
type detectBenchRun struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Backend    string `json:"backend"`
	Note       string `json:"note"`
	// Baseline holds the pre-interning (string-keyed isl) serial
	// numbers recorded on the same host, for the allocs/op and ns/op
	// trajectory. Empty Workers/Iterations fields mean "not recorded".
	Baseline []detectMeasure `json:"string_keyed_baseline"`
	// HashmapBaseline holds the interned hash-map backend's serial
	// numbers (the tree as of commit 44efc2f), the representation the
	// columnar backend replaced; -tags islhashmap still builds it.
	HashmapBaseline []detectMeasure `json:"hashmap_baseline"`
	Results         []detectMeasure `json:"results"`
	// Cache holds the serving-path measurements (-cache-bench): hot
	// Session.Detect on a cached kernel vs cold core.Detect.
	Cache []cacheMeasure `json:"cache,omitempty"`
}

// stringKeyedBaseline is the detection benchmark of the string-keyed
// isl core (the tree as of commit 1330d58), measured serially on the
// same container this file's results come from (Intel Xeon @ 2.10GHz,
// 1 CPU). It is frozen here so every later run of -detect-bench
// reports the trajectory against the same origin.
var stringKeyedBaseline = []detectMeasure{
	{Kernel: "P4/n=32", Mode: "serial", NsPerOp: 81378582, BytesPerOp: 38327292, AllocsPerOp: 493239},
	{Kernel: "P7/n=32", Mode: "serial", NsPerOp: 100488180, BytesPerOp: 50294056, AllocsPerOp: 615941},
	{Kernel: "P10/n=32", Mode: "serial", NsPerOp: 143603606, BytesPerOp: 68619141, AllocsPerOp: 870463},
	{Kernel: "fuzzstress", Mode: "serial", NsPerOp: 2794060, BytesPerOp: 1479096, AllocsPerOp: 20083},
}

// hashmapBaseline is the detection benchmark of the interned hash-map
// isl backend (the tree as of commit 44efc2f), the second point of the
// trajectory and the representation the columnar backend replaced.
// Same host as stringKeyedBaseline; serial rows only.
var hashmapBaseline = []detectMeasure{
	{Kernel: "P4/n=32", Mode: "serial", NsPerOp: 25363513, BytesPerOp: 11555883, AllocsPerOp: 140453},
	{Kernel: "P7/n=32", Mode: "serial", NsPerOp: 30267268, BytesPerOp: 15707093, AllocsPerOp: 174588},
	{Kernel: "P10/n=32", Mode: "serial", NsPerOp: 40392388, BytesPerOp: 21044585, AllocsPerOp: 249315},
	{Kernel: "fuzzstress", Mode: "serial", NsPerOp: 908329, BytesPerOp: 445456, AllocsPerOp: 5520},
}

// detectBenchCase is one named benchmark input.
type detectBenchCase struct {
	name string
	sc   *scop.SCoP
}

// table9Cases builds the three Table 9 programs spanning the
// access-pattern space, each at every requested problem size.
func table9Cases(sizes []int) ([]detectBenchCase, error) {
	names := []string{"P4", "P7", "P10"}
	var cases []detectBenchCase
	for _, name := range names {
		spec, ok := kernels.T9SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown Table 9 program %q", name)
		}
		for _, n := range sizes {
			cases = append(cases, detectBenchCase{
				fmt.Sprintf("%s/n=%d", name, n), kernels.BuildTable9(spec, n, 1).SCoP})
		}
	}
	return cases, nil
}

// detectBenchCases mirrors core's BenchmarkDetect input set — the
// Table 9 sweep plus the large fuzz-generated stress SCoP.
func detectBenchCases(sizes []int) ([]detectBenchCase, error) {
	cases, err := table9Cases(sizes)
	if err != nil {
		return nil, err
	}
	return append(cases, detectBenchCase{"fuzzstress", fuzzscop.Stress()}), nil
}

// symbolicBenchSizes is the fixed sweep the symbolic rows are measured
// at. It extends past the explicit sweep because the symbolic path's
// whole claim is ns/op independent of n — the 512 point costs the same
// as the 32 one, and a committed near-flat row across this range is
// what BENCH_detect.json documents.
var symbolicBenchSizes = []int{32, 64, 128, 256, 512}

// measureDetectSymbolic benchmarks core.DetectSymbolic — the
// closed-form analysis alone, no materialization — on the Table 9
// kernels across symbolicBenchSizes.
func measureDetectSymbolic() ([]detectMeasure, error) {
	cases, err := table9Cases(symbolicBenchSizes)
	if err != nil {
		return nil, err
	}
	var results []detectMeasure
	for _, c := range cases {
		sc := c.sc
		var benchErr error
		// Best-of-3 with a forced GC between reps: the symbolic ops are
		// milliseconds, so a single 1s testing.Benchmark rep on a 1-CPU
		// host is dominated by whatever garbage the previous case left —
		// the minimum is the stable domain-independent cost the gate
		// compares.
		var r testing.BenchmarkResult
		for rep := 0; rep < 3; rep++ {
			runtime.GC()
			br := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.DetectSymbolic(sc, core.Options{}); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
			if rep == 0 || br.NsPerOp() < r.NsPerOp() {
				r = br
			}
		}
		if benchErr != nil {
			return nil, fmt.Errorf("detect-bench %s/symbolic: %w", c.name, benchErr)
		}
		results = append(results, detectMeasure{
			Kernel:      c.name,
			Mode:        "serial",
			Workers:     1,
			Backend:     core.BackendSymbolic,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%s/serial/symbolic: %d ns/op, %d allocs/op\n",
			c.name, r.NsPerOp(), r.AllocsPerOp())
	}
	return results, nil
}

// measureDetect benchmarks core.Detect on the given cases. Serial rows
// (Workers=1) are always measured; the parallel row (Workers=GOMAXPROCS)
// is measured only when it would actually run more than one worker —
// on a single-CPU host the two configurations are the same pool and a
// "parallel" row would only record noise.
func measureDetect(sizes []int) ([]detectMeasure, bool, error) {
	cases, err := detectBenchCases(sizes)
	if err != nil {
		return nil, false, err
	}
	workerOpts := []int{1}
	parallelSkipped := false
	if resolveWorkers(0) > 1 {
		workerOpts = append(workerOpts, 0)
	} else {
		parallelSkipped = true
		fmt.Fprintf(os.Stderr, "detect-bench: gomaxprocs=%d, skipping the parallel column (needs > 1 worker)\n",
			runtime.GOMAXPROCS(0))
	}
	var results []detectMeasure
	for _, c := range cases {
		for _, workers := range workerOpts {
			mode := "serial"
			if workers != 1 {
				mode = "parallel"
			}
			sc := c.sc
			opts := core.Options{AllowOverwrites: true, Workers: workers}
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Detect(sc, opts); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
			if benchErr != nil {
				return nil, false, fmt.Errorf("detect-bench %s/%s: %w", c.name, mode, benchErr)
			}
			results = append(results, detectMeasure{
				Kernel:      c.name,
				Mode:        mode,
				Workers:     resolveWorkers(workers),
				Backend:     isl.BackendName,
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%s/%s/%s: %d ns/op, %d allocs/op\n",
				c.name, mode, isl.BackendName, r.NsPerOp(), r.AllocsPerOp())
		}
	}
	sym, err := measureDetectSymbolic()
	if err != nil {
		return nil, false, err
	}
	return append(results, sym...), parallelSkipped, nil
}

// runDetectBench measures core.Detect on the benchmark kernels at the
// given problem sizes (when detect is set), the cached serving path
// (when cache is set), and writes the run as JSON to out ("" or "-"
// means stdout).
func runDetectBench(out string, detect, cache bool, sizes []int) error {
	note := "serial is Workers=1, parallel is Workers=GOMAXPROCS; workers records the " +
		"resolved worker count actually used; backend names the detection algebra " +
		"(symbolic rows measure core.DetectSymbolic and must stay near-flat across n)"
	run := detectBenchRun{
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Backend:         isl.BackendName,
		Note:            note,
		Baseline:        stringKeyedBaseline,
		HashmapBaseline: hashmapBaseline,
	}
	if detect {
		results, parallelSkipped, err := measureDetect(sizes)
		if err != nil {
			return err
		}
		run.Results = results
		if parallelSkipped {
			run.Note = note + "; parallel rows omitted: this host resolves to 1 worker"
		}
	}
	if cache {
		var err error
		run.Cache, err = runCacheBench()
		if err != nil {
			return err
		}
	}

	w := os.Stdout
	if out != "" && out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(run)
}

// runBenchGate re-measures the detection benchmark and fails (non-nil
// error) when any kernel's ns/op regresses more than tol (fractional,
// e.g. 0.15) against the committed gate file. Only rows present in
// both the fresh run and the file's results are compared, so a gate
// file recorded on a multi-CPU host still gates the serial rows on a
// single-CPU one. Improvements and in-tolerance jitter pass; the gate
// file is rewritten only by an explicit -detect-bench run.
func runBenchGate(gateFile string, tol float64, sizes []int) error {
	data, err := os.ReadFile(gateFile)
	if err != nil {
		return fmt.Errorf("bench-gate: reading %s: %w", gateFile, err)
	}
	var committed detectBenchRun
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("bench-gate: parsing %s: %w", gateFile, err)
	}
	if committed.Backend != "" && committed.Backend != isl.BackendName {
		return fmt.Errorf("bench-gate: %s was recorded with backend %q, this binary is %q",
			gateFile, committed.Backend, isl.BackendName)
	}
	want := make(map[string]detectMeasure, len(committed.Results))
	for _, m := range committed.Results {
		want[gateKey(m)] = m
	}
	if len(want) == 0 {
		return fmt.Errorf("bench-gate: %s has no results to gate against", gateFile)
	}

	fresh, _, err := measureDetect(sizes)
	if err != nil {
		return err
	}
	var failures []string
	compared := 0
	for _, m := range fresh {
		key := gateKey(m)
		w, ok := want[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench-gate: %s not in %s, skipping\n", key, gateFile)
			continue
		}
		compared++
		limit := float64(w.NsPerOp) * (1 + tol)
		status := "ok"
		if float64(m.NsPerOp) > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %d ns/op vs committed %d (+%.1f%%, tolerance %.0f%%)",
				key, m.NsPerOp, w.NsPerOp,
				100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1), 100*tol))
		}
		fmt.Fprintf(os.Stderr, "bench-gate: %s: %d ns/op vs committed %d (%+.1f%%) %s\n",
			key, m.NsPerOp, w.NsPerOp,
			100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1), status)
	}
	if compared == 0 {
		return fmt.Errorf("bench-gate: no fresh measurement matched %s", gateFile)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench-gate: REGRESSION:", f)
		}
		return fmt.Errorf("bench-gate: %d of %d kernels regressed beyond %.0f%%",
			len(failures), compared, 100*tol)
	}
	fmt.Fprintf(os.Stderr, "bench-gate: all %d kernels within %.0f%% of %s\n",
		compared, 100*tol, gateFile)
	return nil
}

func resolveWorkers(opt int) int {
	if opt > 0 {
		return opt
	}
	return runtime.GOMAXPROCS(0)
}
