package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzscop"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// detectMeasure is one (kernel, mode) detection benchmark measurement.
type detectMeasure struct {
	Kernel      string `json:"kernel"`
	Mode        string `json:"mode"` // "serial" (Workers=1) or "parallel" (Workers=GOMAXPROCS)
	Workers     int    `json:"workers"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// detectBenchRun is the BENCH_detect.json schema: the host shape, the
// frozen string-keyed baseline this PR's interned core is measured
// against, and the fresh measurements (see docs/PERFORMANCE.md for how
// to read it).
type detectBenchRun struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Note       string `json:"note"`
	// Baseline holds the pre-interning (string-keyed isl) serial
	// numbers recorded on the same host, for the allocs/op and ns/op
	// trajectory. Empty Workers/Iterations fields mean "not recorded".
	Baseline []detectMeasure `json:"string_keyed_baseline"`
	Results  []detectMeasure `json:"results"`
	// Cache holds the serving-path measurements (-cache-bench): hot
	// Session.Detect on a cached kernel vs cold core.Detect.
	Cache []cacheMeasure `json:"cache,omitempty"`
}

// stringKeyedBaseline is the detection benchmark of the string-keyed
// isl core (the tree as of commit 1330d58), measured serially on the
// same container this file's results come from (Intel Xeon @ 2.10GHz,
// 1 CPU). It is frozen here so every later run of -detect-bench
// reports the trajectory against the same origin.
var stringKeyedBaseline = []detectMeasure{
	{Kernel: "P4/n=32", Mode: "serial", NsPerOp: 81378582, BytesPerOp: 38327292, AllocsPerOp: 493239},
	{Kernel: "P7/n=32", Mode: "serial", NsPerOp: 100488180, BytesPerOp: 50294056, AllocsPerOp: 615941},
	{Kernel: "P10/n=32", Mode: "serial", NsPerOp: 143603606, BytesPerOp: 68619141, AllocsPerOp: 870463},
	{Kernel: "fuzzstress", Mode: "serial", NsPerOp: 2794060, BytesPerOp: 1479096, AllocsPerOp: 20083},
}

// detectBenchCases mirrors core's BenchmarkDetect input set: three
// Table 9 programs spanning the access-pattern space plus the large
// fuzz-generated stress SCoP.
func detectBenchCases() ([]struct {
	name string
	sc   *scop.SCoP
}, error) {
	names := []string{"P4", "P7", "P10"}
	var cases []struct {
		name string
		sc   *scop.SCoP
	}
	for _, name := range names {
		spec, ok := kernels.T9SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown Table 9 program %q", name)
		}
		cases = append(cases, struct {
			name string
			sc   *scop.SCoP
		}{name + "/n=32", kernels.BuildTable9(spec, 32, 1).SCoP})
	}
	cases = append(cases, struct {
		name string
		sc   *scop.SCoP
	}{"fuzzstress", fuzzscop.Stress()})
	return cases, nil
}

// runDetectBench measures core.Detect serial vs parallel on the
// benchmark kernels (when detect is set), the cached serving path
// (when cache is set), and writes the run as JSON to out ("" or "-"
// means stdout).
func runDetectBench(out string, detect, cache bool) error {
	cases, err := detectBenchCases()
	if err != nil {
		return err
	}
	if !detect {
		cases = nil
	}
	run := detectBenchRun{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "serial is Workers=1, parallel is Workers=GOMAXPROCS; on a single-CPU host " +
			"the two coincide up to noise — the parallel column shows pool overhead there, " +
			"speedup needs num_cpu >= 2",
		Baseline: stringKeyedBaseline,
	}
	for _, c := range cases {
		for _, workers := range []int{1, 0} {
			mode := "serial"
			if workers != 1 {
				mode = "parallel"
			}
			sc := c.sc
			opts := core.Options{AllowOverwrites: true, Workers: workers}
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Detect(sc, opts); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("detect-bench %s/%s: %w", c.name, mode, benchErr)
			}
			run.Results = append(run.Results, detectMeasure{
				Kernel:      c.name,
				Mode:        mode,
				Workers:     resolveWorkers(workers),
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%s/%s: %d ns/op, %d allocs/op\n",
				c.name, mode, r.NsPerOp(), r.AllocsPerOp())
		}
	}
	if cache {
		run.Cache, err = runCacheBench()
		if err != nil {
			return err
		}
	}

	w := os.Stdout
	if out != "" && out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(run)
}

func resolveWorkers(opt int) int {
	if opt > 0 {
		return opt
	}
	return runtime.GOMAXPROCS(0)
}
