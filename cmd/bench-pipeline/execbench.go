package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/futures"
	"repro/internal/kernels"
	"repro/internal/stages"
)

// execMeasure is one (kernel, mode) execution benchmark measurement.
// Modes: "serial" (the sequential reference), "pipelined" (the unified
// runtime scheduler driven through the compiled IR), "hybrid" (the
// same blocking under the static/dynamic hybrid schedule —
// single-predecessor chains fused into statically ordered runs),
// "autotuned" (profile-guided MinBlockIters search, hybrid schedule),
// "futures" / "stages" (the same IR streamed through the adapter
// layers), "lower_first" (building the runtime IR from the task
// program), and "lower_reuse" (serving the memoized IR).
//
// GoMaxProcs records the parallelism the row was measured under so
// rows from differently-shaped hosts are never gate-compared;
// BlockIters records the tuned granularity of "autotuned" rows.
type execMeasure struct {
	Kernel      string `json:"kernel"`
	Mode        string `json:"mode"`
	Workers     int    `json:"workers,omitempty"`
	Tasks       int    `json:"tasks,omitempty"`
	BlockIters  int    `json:"block_iters,omitempty"`
	GoMaxProcs  int    `json:"gomaxprocs,omitempty"`
	Iterations  int    `json:"iterations,omitempty"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64  `json:"allocs_per_op,omitempty"`
}

// execBenchRun is the BENCH_exec.json schema: the host shape, the
// frozen pre-refactor baseline the unified runtime is measured
// against, and the fresh measurements (docs/PERFORMANCE.md explains
// how to read it).
type execBenchRun struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Workers    int    `json:"workers"`
	Note       string `json:"note"`
	// Baseline holds the per-submit-resolution tasking runtime's
	// numbers (the tree as of commit 9befa4f), recorded on the same
	// host: "serial" is the sequential reference, "tasking" the old
	// pipelined path that re-resolved dependency addresses on every
	// Submit.
	Baseline []execMeasure `json:"pre_refactor_baseline"`
	Results  []execMeasure `json:"results"`
}

// preRefactorBaseline is the execution benchmark of the pre-IR tasking
// runtime (the tree as of commit 9befa4f), measured with 4 workers on
// the same container the committed results come from (Intel Xeon @
// 2.10GHz, 1 CPU). Frozen so every later -exec-bench run reports the
// trajectory against the same origin.
var preRefactorBaseline = []execMeasure{
	{Kernel: "P4/n=32", Mode: "serial", NsPerOp: 275844447},
	{Kernel: "P4/n=32", Mode: "tasking", Workers: 4, Tasks: 1991, NsPerOp: 285678907},
	{Kernel: "P4/n=64", Mode: "serial", NsPerOp: 1198560266},
	{Kernel: "P4/n=64", Mode: "tasking", Workers: 4, Tasks: 8583, NsPerOp: 1247279014},
	{Kernel: "P4/n=128", Mode: "serial", NsPerOp: 4918059335},
	{Kernel: "P4/n=128", Mode: "tasking", Workers: 4, Tasks: 35591, NsPerOp: 5113438916},
	{Kernel: "P7/n=32", Mode: "serial", NsPerOp: 620940112},
	{Kernel: "P7/n=32", Mode: "tasking", Workers: 4, Tasks: 2372, NsPerOp: 635655668},
	{Kernel: "P7/n=64", Mode: "serial", NsPerOp: 2635999586},
	{Kernel: "P7/n=64", Mode: "tasking", Workers: 4, Tasks: 9860, NsPerOp: 2696127812},
	{Kernel: "P7/n=128", Mode: "serial", NsPerOp: 11438210368},
	{Kernel: "P7/n=128", Mode: "tasking", Workers: 4, Tasks: 40196, NsPerOp: 11505990999},
	{Kernel: "P10/n=32", Mode: "serial", NsPerOp: 342539935},
	{Kernel: "P10/n=32", Mode: "tasking", Workers: 4, Tasks: 3658, NsPerOp: 350100435},
	{Kernel: "P10/n=64", Mode: "serial", NsPerOp: 1437986164},
	{Kernel: "P10/n=64", Mode: "tasking", Workers: 4, Tasks: 15498, NsPerOp: 1504681874},
	{Kernel: "P10/n=128", Mode: "serial", NsPerOp: 6064838125},
	{Kernel: "P10/n=128", Mode: "tasking", Workers: 4, Tasks: 63754, NsPerOp: 6255253668},
}

// execCase is one execution benchmark kernel: the program plus the
// task program compiled under the default dynamic schedule and under
// the hybrid schedule, both from the same detection so every mode
// runs the identical blocking.
type execCase struct {
	name string
	n    int
	p    *kernels.Program
	prog *codegen.TaskProgram
	hyb  *codegen.TaskProgram
}

// execBenchCases builds the execution benchmark kernels: the same
// three Table 9 programs the detection benchmark uses, compiled once
// per (program, size) so every mode runs the identical task program.
func execBenchCases(sizes []int) ([]execCase, error) {
	var cases []execCase
	for _, name := range []string{"P4", "P7", "P10"} {
		spec, ok := kernels.T9SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown Table 9 program %q", name)
		}
		for _, n := range sizes {
			p := kernels.BuildTable9(spec, n, 1)
			info, err := core.Detect(p.SCoP, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s/n=%d: detect: %w", name, n, err)
			}
			prog, err := codegen.Compile(info)
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s/n=%d: compile: %w", name, n, err)
			}
			hyb, err := codegen.CompileWithOptions(info, codegen.CompileOptions{HybridSchedule: true})
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s/n=%d: compile hybrid: %w", name, n, err)
			}
			cases = append(cases, execCase{fmt.Sprintf("%s/n=%d", name, n), n, p, prog, hyb})
		}
	}
	return cases, nil
}

// tuneOpts selects which kernels get the profile-guided "autotuned"
// rows. The search re-detects and re-executes the kernel per
// candidate, so it is restricted to the sizes listed in Sizes (the
// -autotune-sizes flag); the skipped cases are logged.
type tuneOpts struct {
	Enabled bool
	Sizes   []int
	Budget  int
}

func (t tuneOpts) wants(n int) bool {
	if !t.Enabled {
		return false
	}
	for _, s := range t.Sizes {
		if s == n {
			return true
		}
	}
	return false
}

// measureExec benchmarks every execution mode on the given cases. All
// pipelined modes use the same worker count as the frozen baseline so
// the trajectory stays comparable.
func measureExec(sizes []int, workers int, tune tuneOpts) ([]execMeasure, error) {
	cases, err := execBenchCases(sizes)
	if err != nil {
		return nil, err
	}
	var results []execMeasure
	// bestOf runs a benchmark twice and keeps the faster ns/op: the
	// big kernels run a single iteration per testing.Benchmark call,
	// and one noisy-neighbor sample would otherwise be the row.
	bestOf := func(fn func(b *testing.B)) testing.BenchmarkResult {
		best := testing.Benchmark(fn)
		if again := testing.Benchmark(fn); again.NsPerOp() < best.NsPerOp() {
			best = again
		}
		return best
	}
	record := func(name, mode string, w, tasks, blockIters int, r testing.BenchmarkResult) {
		results = append(results, execMeasure{
			Kernel:      name,
			Mode:        mode,
			Workers:     w,
			Tasks:       tasks,
			BlockIters:  blockIters,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%s/%s: %d ns/op (%d iters)\n", name, mode, r.NsPerOp(), r.N)
	}
	for _, c := range cases {
		c := c
		tasks := c.prog.NumTasks()
		record(c.name, "serial", 0, 0, 0, bestOf(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exec.Sequential(c.p)
			}
		}))
		record(c.name, "pipelined", workers, tasks, 0, bestOf(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exec.RunCompiled(c.p, c.prog, workers)
			}
		}))
		record(c.name, "hybrid", workers, tasks, 0, bestOf(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exec.RunCompiled(c.p, c.hyb, workers)
			}
		}))
		if tune.Enabled && !tune.wants(c.n) {
			fmt.Fprintf(os.Stderr, "%s/autotuned: skipped (n=%d not in -autotune-sizes)\n", c.name, c.n)
		}
		if tune.wants(c.n) {
			res, err := autotune.Tune(c.p, autotune.Config{
				Workers: workers,
				Hybrid:  true,
				Budget:  tune.Budget,
				Reps:    1,
			})
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s: autotune: %w", c.name, err)
			}
			fmt.Fprintf(os.Stderr, "%s/autotune: chose block_iters=%d after %d evals (converged=%v, search speedup %.2fx)\n",
				c.name, res.Chosen, res.Evals, res.Converged, res.Speedup())
			info, err := core.Detect(c.p.SCoP, core.Options{MinBlockIters: res.Chosen})
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s: detect tuned: %w", c.name, err)
			}
			tuned, err := codegen.CompileWithOptions(info, codegen.CompileOptions{HybridSchedule: true})
			if err != nil {
				return nil, fmt.Errorf("exec-bench %s: compile tuned: %w", c.name, err)
			}
			record(c.name, "autotuned", workers, tuned.NumTasks(), res.Chosen, bestOf(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					exec.RunCompiled(c.p, tuned, workers)
				}
			}))
		}
		record(c.name, "futures", workers, tasks, 0, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exec.RunOnLayer(c.p, c.prog, futures.New(workers))
			}
		}))
		record(c.name, "stages", workers, tasks, 0, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exec.RunOnLayer(c.p, c.prog, stages.New(workers))
			}
		}))
	}
	// IR lowering cost: first lowering (resolving every dependency
	// address into the CSR edge arrays) vs serving the memoized IR.
	// One representative kernel per size keeps the run short; the cost
	// scales with task and edge count, not with the statement bodies.
	for _, c := range cases {
		c := c
		record(c.name, "lower_first", 0, c.prog.NumTasks(), 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.prog.BuildIR()
			}
		}))
		record(c.name, "lower_reuse", 0, c.prog.NumTasks(), 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.prog.Lower()
			}
		}))
	}
	return results, nil
}

// runExecBench measures the execution benchmark at the given sizes and
// writes the run as JSON to out ("" or "-" means stdout). It also
// prints the pipelined-vs-baseline-tasking comparison (the number the
// refactor is accountable for) and, per kernel, what the hybrid
// schedule and the tuned blocking bought over plain pipelined.
func runExecBench(out string, sizes []int, workers int, tune tuneOpts, aot aotOpts) error {
	results, err := measureExec(sizes, workers, tune)
	if err != nil {
		return err
	}
	if aot.Enabled {
		rows, err := measureAOT(aot, workers)
		if err != nil {
			return err
		}
		reportAOT(rows)
		results = append(results, rows...)
	}
	run := execBenchRun{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		Note: "pipelined/futures/stages all execute the compiled runtime IR; \"hybrid\" fuses " +
			"single-predecessor chains into static runs, \"autotuned\" adds profile-guided " +
			"MinBlockIters; \"aot_binary\" is the emitted standalone program's steady-state " +
			"pipelined time vs \"aot_inprocess\" on the same synthetic-bodied kernel, and " +
			"\"aot_compile\"/\"aot_compile_noopt\" time the gogen backend with passes on/off; " +
			"rows carry the gomaxprocs they were measured under and are only gate-compared on " +
			"a matching host; the baseline's \"tasking\" rows are the pre-IR runtime that " +
			"re-resolved dependencies per Submit",
		Baseline: preRefactorBaseline,
		Results:  results,
	}
	base := make(map[string]execMeasure, len(preRefactorBaseline))
	for _, m := range preRefactorBaseline {
		base[m.Kernel+"/"+m.Mode] = m
	}
	fresh := make(map[string]execMeasure, len(results))
	for _, m := range results {
		fresh[m.Kernel+"/"+m.Mode] = m
	}
	for _, m := range results {
		switch m.Mode {
		case "pipelined":
			if w, ok := base[m.Kernel+"/tasking"]; ok {
				fmt.Fprintf(os.Stderr, "exec-bench: %s pipelined %d ns/op vs pre-refactor tasking %d (%+.1f%%)\n",
					m.Kernel, m.NsPerOp, w.NsPerOp, 100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1))
			}
		case "hybrid", "autotuned":
			if w, ok := fresh[m.Kernel+"/pipelined"]; ok {
				fmt.Fprintf(os.Stderr, "exec-bench: %s %s %d ns/op vs pipelined %d (%+.1f%%)\n",
					m.Kernel, m.Mode, m.NsPerOp, w.NsPerOp, 100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1))
			}
		}
	}

	w := os.Stdout
	if out != "" && out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(run)
}

// runExecGate re-measures the execution benchmark and fails when any
// (kernel, mode) ns/op regresses more than tol against the committed
// gate file. Like the detection gate, only rows present on both sides
// are compared, improvements and in-tolerance jitter pass, and the
// gate file is rewritten only by an explicit -exec-bench run.
// Committed rows measured under a different GOMAXPROCS than the
// current host are skipped: a 1-CPU row gated on a multi-core host
// (or vice versa) would compare scheduling regimes, not regressions.
func runExecGate(gateFile string, tol float64, sizes []int, workers int, tune tuneOpts, aot aotOpts) error {
	data, err := os.ReadFile(gateFile)
	if err != nil {
		return fmt.Errorf("exec-gate: reading %s: %w", gateFile, err)
	}
	var committed execBenchRun
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("exec-gate: parsing %s: %w", gateFile, err)
	}
	procs := runtime.GOMAXPROCS(0)
	want := make(map[string]execMeasure, len(committed.Results))
	skippedProcs := 0
	for _, m := range committed.Results {
		// Rows predating per-row provenance (GoMaxProcs == 0) fall back
		// to the run-level header, which old files always carried.
		rowProcs := m.GoMaxProcs
		if rowProcs == 0 {
			rowProcs = committed.GoMaxProcs
		}
		if rowProcs != 0 && rowProcs != procs {
			skippedProcs++
			continue
		}
		want[m.Kernel+"/"+m.Mode] = m
	}
	if skippedProcs > 0 {
		fmt.Fprintf(os.Stderr, "exec-gate: skipping %d committed rows measured at different gomaxprocs (host has %d)\n",
			skippedProcs, procs)
	}
	if len(want) == 0 {
		return fmt.Errorf("exec-gate: %s has no results measured at gomaxprocs=%d to gate against", gateFile, procs)
	}

	fresh, err := measureExec(sizes, workers, tune)
	if err != nil {
		return err
	}
	if aot.Enabled {
		rows, err := measureAOT(aot, workers)
		if err != nil {
			return err
		}
		fresh = append(fresh, rows...)
	}
	var failures []string
	compared := 0
	for _, m := range fresh {
		key := m.Kernel + "/" + m.Mode
		w, ok := want[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "exec-gate: %s not in %s, skipping\n", key, gateFile)
			continue
		}
		compared++
		status := "ok"
		if float64(m.NsPerOp) > float64(w.NsPerOp)*(1+tol) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %d ns/op vs committed %d (+%.1f%%, tolerance %.0f%%)",
				key, m.NsPerOp, w.NsPerOp,
				100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1), 100*tol))
		}
		fmt.Fprintf(os.Stderr, "exec-gate: %s: %d ns/op vs committed %d (%+.1f%%) %s\n",
			key, m.NsPerOp, w.NsPerOp,
			100*(float64(m.NsPerOp)/float64(w.NsPerOp)-1), status)
	}
	if compared == 0 {
		return fmt.Errorf("exec-gate: no fresh measurement matched %s", gateFile)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "exec-gate: REGRESSION:", f)
		}
		return fmt.Errorf("exec-gate: %d of %d rows regressed beyond %.0f%%",
			len(failures), compared, 100*tol)
	}
	fmt.Fprintf(os.Stderr, "exec-gate: all %d rows within %.0f%% of %s\n",
		compared, 100*tol, gateFile)
	return nil
}

// runAutotuneReport runs the profile-guided block-size search on the
// benchmark kernels and prints the full evaluation trail per kernel:
// every candidate granularity with its measured wall time, realized
// critical path, stalls, steals, and fused chains, then the
// before/after verdict. This is the -autotune mode without
// -exec-bench: a human-readable view of what the tuner saw.
func runAutotuneReport(sizes []int, workers int, budget int, hybrid bool) error {
	cases, err := execBenchCases(sizes)
	if err != nil {
		return err
	}
	for _, c := range cases {
		res, err := autotune.Tune(c.p, autotune.Config{
			Workers: workers,
			Hybrid:  hybrid,
			Budget:  budget,
			Reps:    1,
		})
		if err != nil {
			return fmt.Errorf("autotune %s: %w", c.name, err)
		}
		fmt.Printf("%s (workers=%d, hybrid=%v):\n", c.name, workers, hybrid)
		for _, s := range res.Samples {
			marker := " "
			if s.BlockIters == res.Chosen {
				marker = "*"
			}
			fmt.Printf(" %s block_iters=%-5d %12v  tasks=%-6d critical=%-12v stall=%-12v steals=%-4d fused=%d\n",
				marker, s.BlockIters, s.Elapsed, s.Tasks,
				s.Critical, time.Duration(s.StallNs), s.Steals, s.ChainFused)
		}
		fmt.Printf("  chosen block_iters=%d after %d evals (converged=%v): %v -> %v (%.2fx)\n\n",
			res.Chosen, res.Evals, res.Converged,
			res.Baseline.Elapsed, res.Best.Elapsed, res.Speedup())
	}
	return nil
}
