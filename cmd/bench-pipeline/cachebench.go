package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/polypipe"
)

// cacheMeasure is one kernel's hot/cold serving measurement: cold is
// an uncached core.Detect, hot is Session.Detect served from the
// content-addressed cache after one warming call.
type cacheMeasure struct {
	Kernel         string  `json:"kernel"`
	ColdNsPerOp    int64   `json:"cold_ns_per_op"`
	HotNsPerOp     int64   `json:"hot_ns_per_op"`
	HotAllocsPerOp int64   `json:"hot_allocs_per_op"`
	Speedup        float64 `json:"speedup"` // cold / hot
}

// runCacheBench measures the serving path on the detection benchmark
// kernels: how much faster a cached session answers a repeat request
// than detection from scratch (docs/PERFORMANCE.md, "Serving and the
// detection cache").
func runCacheBench() ([]cacheMeasure, error) {
	cases, err := detectBenchCases([]int{32})
	if err != nil {
		return nil, err
	}
	opts := core.Options{AllowOverwrites: true}
	var out []cacheMeasure
	for _, c := range cases {
		sc := c.sc
		var benchErr error
		cold := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(sc, opts); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("cache-bench %s/cold: %w", c.name, benchErr)
		}
		s := polypipe.NewSession(polypipe.WithOptions(opts), polypipe.WithCache(0))
		if _, err := s.Detect(sc); err != nil {
			return nil, fmt.Errorf("cache-bench %s/warm: %w", c.name, err)
		}
		hot := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Detect(sc); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("cache-bench %s/hot: %w", c.name, benchErr)
		}
		m := cacheMeasure{
			Kernel:         c.name,
			ColdNsPerOp:    cold.NsPerOp(),
			HotNsPerOp:     hot.NsPerOp(),
			HotAllocsPerOp: hot.AllocsPerOp(),
		}
		if m.HotNsPerOp > 0 {
			m.Speedup = float64(m.ColdNsPerOp) / float64(m.HotNsPerOp)
		}
		fmt.Fprintf(os.Stderr, "%s/cache: cold %d ns/op, hot %d ns/op (%.0fx)\n",
			c.name, m.ColdNsPerOp, m.HotNsPerOp, m.Speedup)
		out = append(out, m)
	}
	return out, nil
}
