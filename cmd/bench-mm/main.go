// Command bench-mm regenerates the paper's Figure 11: for the chains
// of n = 2, 3, 4 (generalized, optionally transposed) matrix
// multiplications, it compares three executions against sequential —
//
//	pipeline — cross-loop pipelining with n workers (one per nest),
//	polly    — per-loop parallelization with n threads, and
//	polly_8  — per-loop parallelization with all (8) threads
//
// — and prints the log2 speed-ups. The paper's qualitative result:
// polly wins on the plain mm/mmt kernels (rows are independent), while
// on gmm/gmmt Polly detects nothing and only cross-loop pipelining
// gains.
//
// Modes: -mode sim (default) measures per-task costs sequentially and
// computes deterministic virtual-time schedules — correct on any host,
// including single-core machines; -mode real measures wall-clock times
// with actual worker pools and needs as many cores as threads to show
// the paper's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
	"repro/polypipe"
)

func main() {
	rows := flag.Int("rows", 192, "matrix dimension (rows == cols)")
	allThreads := flag.Int("all-threads", 8, "thread count for the polly_8 series")
	reps := flag.Int("reps", 3, "repetitions per kernel (best result wins)")
	mode := flag.String("mode", "sim", "sim (virtual time) or real (wall clock)")
	overhead := flag.Duration("task-overhead", 500*time.Nanosecond, "per-task scheduling overhead modelled in sim mode")
	flag.Parse()
	if *mode != "sim" && *mode != "real" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	fmt.Printf("Figure 11 reproduction: log2 speed-up vs sequential (rows=%d, reps=%d, mode=%s)\n\n",
		*rows, *reps, *mode)
	t := report.NewTable("kernel", "pipeline", "polly", fmt.Sprintf("polly_%d", *allThreads))

	for _, n := range []int{2, 3, 4} {
		for _, v := range []polypipe.Variant{polypipe.MM, polypipe.MMT, polypipe.GMM, polypipe.GMMT} {
			p := polypipe.MMChain(n, *rows, v)
			if err := polypipe.Verify(p, n, polypipe.Options{}); err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
			var pipe, polly, polly8 float64
			for r := 0; r < *reps; r++ {
				a, b, c, err := measure(p, n, *allThreads, *mode, *overhead)
				if err != nil {
					fatal(err)
				}
				pipe, polly, polly8 = max2(pipe, a), max2(polly, b), max2(polly8, c)
			}
			t.Add(p.Name,
				fmt.Sprintf("%+.2f", report.Log2(pipe)),
				fmt.Sprintf("%+.2f", report.Log2(polly)),
				fmt.Sprintf("%+.2f", report.Log2(polly8)))
			fmt.Fprintf(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr)
	fmt.Println(t.String())
}

// measure returns the three speed-ups for one repetition.
func measure(p *polypipe.Program, n, allThreads int, mode string, overhead time.Duration) (pipe, polly, polly8 float64, err error) {
	if mode == "sim" {
		pipe, err = polypipe.SimSpeedup(p, n, polypipe.Options{}, overhead)
		if err != nil {
			return 0, 0, 0, err
		}
		polly = polypipe.SimParLoopSpeedup(p, n, overhead)
		polly8 = polypipe.SimParLoopSpeedup(p, allThreads, overhead)
		return pipe, polly, polly8, nil
	}
	seq := polypipe.RunSequential(p).Elapsed.Seconds()
	res, err := polypipe.RunPipelined(p, n, polypipe.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	pipe = seq / res.Elapsed.Seconds()
	polly = seq / polypipe.RunParLoop(p, n).Elapsed.Seconds()
	polly8 = seq / polypipe.RunParLoop(p, allThreads).Elapsed.Seconds()
	return pipe, polly, polly8, nil
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-mm:", err)
	os.Exit(1)
}
