// Command bench-mm regenerates the paper's Figure 11: for the chains
// of n = 2, 3, 4 (generalized, optionally transposed) matrix
// multiplications, it compares three executions against sequential —
//
//	pipeline — cross-loop pipelining with n workers (one per nest),
//	polly    — per-loop parallelization with n threads, and
//	polly_8  — per-loop parallelization with all (8) threads
//
// — and prints the log2 speed-ups. The paper's qualitative result:
// polly wins on the plain mm/mmt kernels (rows are independent), while
// on gmm/gmmt Polly detects nothing and only cross-loop pipelining
// gains.
//
// Modes: -mode sim (default) measures per-task costs sequentially and
// computes deterministic virtual-time schedules — correct on any host,
// including single-core machines; -mode real measures wall-clock times
// with actual worker pools and needs as many cores as threads to show
// the paper's shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
	"repro/polypipe"
)

func main() {
	rows := flag.Int("rows", 192, "matrix dimension (rows == cols)")
	allThreads := flag.Int("all-threads", 8, "thread count for the polly_8 series")
	reps := flag.Int("reps", 3, "repetitions per kernel (best result wins)")
	mode := flag.String("mode", "sim", "sim (virtual time) or real (wall clock)")
	overhead := flag.Duration("task-overhead", 500*time.Nanosecond, "per-task scheduling overhead modelled in sim mode")
	flag.Parse()
	if *mode != "sim" && *mode != "real" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	fmt.Printf("Figure 11 reproduction: log2 speed-up vs sequential (rows=%d, reps=%d, mode=%s)\n\n",
		*rows, *reps, *mode)
	t := report.NewTable("kernel", "pipeline", "polly", fmt.Sprintf("polly_%d", *allThreads))

	for _, n := range []int{2, 3, 4} {
		for _, v := range []polypipe.Variant{polypipe.MM, polypipe.MMT, polypipe.GMM, polypipe.GMMT} {
			p := polypipe.MMChain(n, *rows, v)
			if err := polypipe.NewSession(polypipe.WithWorkers(n)).Verify(p); err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
			var pipe, polly, polly8 float64
			for r := 0; r < *reps; r++ {
				a, b, c, err := measure(p, n, *allThreads, *mode, *overhead)
				if err != nil {
					fatal(err)
				}
				pipe, polly, polly8 = max2(pipe, a), max2(polly, b), max2(polly8, c)
			}
			t.Add(p.Name,
				fmt.Sprintf("%+.2f", report.Log2(pipe)),
				fmt.Sprintf("%+.2f", report.Log2(polly)),
				fmt.Sprintf("%+.2f", report.Log2(polly8)))
			fmt.Fprintf(os.Stderr, ".")
		}
	}
	fmt.Fprintln(os.Stderr)
	fmt.Println(t.String())
}

// measure returns the three speed-ups for one repetition.
func measure(p *polypipe.Program, n, allThreads int, mode string, overhead time.Duration) (pipe, polly, polly8 float64, err error) {
	s := polypipe.NewSession(polypipe.WithWorkers(n))
	s8 := polypipe.NewSession(polypipe.WithWorkers(allThreads))
	if mode == "sim" {
		out, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{n}, Overhead: overhead})
		if err != nil {
			return 0, 0, 0, err
		}
		pipe = out[0]
		base, err := s.Simulate(p, polypipe.SimConfig{Mode: polypipe.ModeParLoop, Procs: []int{n, allThreads}, Overhead: overhead})
		if err != nil {
			return 0, 0, 0, err
		}
		return pipe, base[0], base[1], nil
	}
	seqRes, err := s.Run(polypipe.ModeSequential, p)
	if err != nil {
		return 0, 0, 0, err
	}
	seq := seqRes.Elapsed.Seconds()
	res, err := s.Run(polypipe.ModePipelined, p)
	if err != nil {
		return 0, 0, 0, err
	}
	pipe = seq / res.Elapsed.Seconds()
	pl, err := s.Run(polypipe.ModeParLoop, p)
	if err != nil {
		return 0, 0, 0, err
	}
	polly = seq / pl.Elapsed.Seconds()
	pl8, err := s8.Run(polypipe.ModeParLoop, p)
	if err != nil {
		return 0, 0, 0, err
	}
	polly8 = seq / pl8.Elapsed.Seconds()
	return pipe, polly, polly8, nil
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-mm:", err)
	os.Exit(1)
}
