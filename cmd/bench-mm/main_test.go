package main

import (
	"testing"
	"time"

	"repro/polypipe"
)

func TestMax2(t *testing.T) {
	if max2(1, 2) != 2 || max2(3, 2) != 3 {
		t.Fatal("max2 wrong")
	}
}

func TestMeasureSimMode(t *testing.T) {
	p := polypipe.MMChain(2, 16, polypipe.GMM)
	pipe, polly, polly8, err := measure(p, 2, 8, "sim", time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if pipe <= 0 || polly <= 0 || polly8 <= 0 {
		t.Fatalf("speedups = %f %f %f", pipe, polly, polly8)
	}
	// gmm: the baseline cannot beat ~1x.
	if polly > 1.2 || polly8 > 1.2 {
		t.Fatalf("gmm baseline speedups too high: %f %f", polly, polly8)
	}
}

func TestMeasureRealMode(t *testing.T) {
	p := polypipe.MMChain(2, 12, polypipe.MM)
	pipe, polly, polly8, err := measure(p, 2, 4, "real", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pipe <= 0 || polly <= 0 || polly8 <= 0 {
		t.Fatalf("speedups = %f %f %f", pipe, polly, polly8)
	}
}
