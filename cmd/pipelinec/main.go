// Command pipelinec is the mini-compiler front door: it parses a
// loop-nest program in the DSL (see internal/lang), runs cross-loop
// pipeline detection, and prints the requested artifacts — the
// pipeline-map report, the transformed schedule tree (Algorithm 2),
// and the annotated AST (the Figure 6 artifact).
//
// Usage:
//
//	pipelinec [-dump report|tree|ast|all] [-min-block-iters N] file.loop
//	pipelinec -example listing1        # run on a built-in example
//
// With no file and no -example, the program is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/polypipe"
)

const listing1Example = `// Paper Listing 1, N = 20
for (i = 0; i < 19; i++)
  for (j = 0; j < 19; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 9; i++)
  for (j = 0; j < 9; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

const listing3Example = `// Paper Listing 3, N = 12
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    U: C[i][j] = h(A[2*i][2*j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
`

func main() {
	dump := flag.String("dump", "all", "artifacts to print: report, blocks, tree, ast, or all")
	minIters := flag.Int("min-block-iters", 0, "coarsen pipeline blocks to at least this many iterations")
	example := flag.String("example", "", "use a built-in example program: listing1 or listing3")
	run := flag.Bool("run", false, "also execute the program (synthetic bodies): verify pipelined vs sequential and report the simulated speed-up")
	workers := flag.Int("workers", 4, "worker count for -run and generated code")
	gogenOut := flag.String("gogen", "", "write a standalone pipelined Go program to this file")
	scopOut := flag.String("export-scop", "", "write the parsed SCoP as JSON to this file")
	flag.Parse()

	src, name, err := readInput(*example, flag.Args())
	if err != nil {
		fatal(err)
	}
	sc, err := polypipe.Parse(name, src)
	if err != nil {
		fatal(err)
	}
	opts := polypipe.Options{MinBlockIters: *minIters}
	sess := polypipe.NewSession(polypipe.WithWorkers(*workers), polypipe.WithOptions(opts))
	info, err := sess.Detect(sc)
	if err != nil {
		fatal(err)
	}

	show := func(kind string) bool { return *dump == kind || *dump == "all" }
	if *scopOut != "" {
		data, err := polypipe.MarshalSCoP(sc)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*scopOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote SCoP description to %s\n\n", *scopOut)
	}
	if *gogenOut != "" {
		f, err := os.Create(*gogenOut)
		if err != nil {
			fatal(err)
		}
		if err := polypipe.EmitGo(f, info, *workers); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote standalone pipelined program to %s (run with `go run %s`)\n\n", *gogenOut, *gogenOut)
	}
	if *run {
		prog := polypipe.Interpret(sc)
		if err := sess.Verify(prog); err != nil {
			fatal(err)
		}
		fmt.Printf("verification: pipelined == parloop == sequential ✓ (%d tasks)\n",
			info.TotalBlocks())
		// One measurement for both points, so the critical-path bound
		// always dominates the bounded speed-up.
		s, err := sess.Simulate(prog, polypipe.SimConfig{Procs: []int{*workers, 1 << 16}})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulated speed-up on %d workers: %.2fx (critical-path bound: %.2fx)\n\n",
			*workers, s[0], s[1])
	}
	if show("report") {
		fmt.Printf("== pipeline detection report (%s) ==\n%s\n", name, polypipe.PipelineReport(info))
	}
	if *dump == "blocks" {
		fmt.Printf("== pipeline blocks ==\n%s\n", polypipe.BlockReport(info))
	}
	if show("tree") {
		fmt.Printf("== schedule tree ==\n%s\n", polypipe.ScheduleTree(info))
	}
	if show("ast") {
		out, err := polypipe.TransformedAST(name+"_pipelined", info)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== annotated AST ==\n%s", out)
	}
}

func readInput(example string, args []string) (src, name string, err error) {
	switch example {
	case "listing1":
		return listing1Example, "listing1", nil
	case "listing3":
		return listing3Example, "listing3", nil
	case "":
	default:
		return "", "", fmt.Errorf("unknown example %q (want listing1 or listing3)", example)
	}
	if len(args) > 1 {
		return "", "", fmt.Errorf("expected at most one input file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(data), args[0], nil
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", "", err
	}
	return string(data), "stdin", nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipelinec:", err)
	os.Exit(1)
}
