// Command pipelinec is the mini-compiler front door: it parses a
// loop-nest program in the DSL (see internal/lang), runs cross-loop
// pipeline detection, and prints the requested artifacts — the
// pipeline-map report, the transformed schedule tree (Algorithm 2),
// the annotated AST (the Figure 6 artifact), the optimized
// block-program IR, or a standalone pipelined Go program (the AOT
// backend).
//
// Usage:
//
//	pipelinec [-dump report|tree|ast|all] [-min-block-iters N] file.loop
//	pipelinec -example listing1            # run on a built-in example
//	pipelinec -gogen out.go file.loop      # emit a standalone Go program
//	pipelinec -dump-ir -passes fuse,hoist file.loop
//
// With no file and no -example, the program is read from stdin.
//
// Exit codes distinguish failure classes so scripts can branch
// without string-matching stderr:
//
//	0  success
//	1  other errors
//	2  parse/usage errors (bad flags, bad DSL, bad -passes)
//	3  the program is outside the pipelinable fragment
//	4  I/O errors (unreadable input, unwritable output)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"

	"repro/internal/gogen"
	"repro/internal/ir"
	"repro/polypipe"
)

// Exit codes of the pipelinec process. The mapping from typed
// polypipe errors happens in realMain via errors.Is.
const (
	exitOK             = 0
	exitErr            = 1
	exitParse          = 2
	exitNotPipelinable = 3
	exitIO             = 4
)

const listing1Example = `// Paper Listing 1, N = 20
for (i = 0; i < 19; i++)
  for (j = 0; j < 19; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 9; i++)
  for (j = 0; j < 9; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

const listing3Example = `// Paper Listing 3, N = 12
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    U: C[i][j] = h(A[2*i][2*j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
`

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// realMain is the whole program behind an exit code, parameterized
// over its streams so the failure paths are testable in-process.
func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pipelinec", flag.ContinueOnError)
	flags.SetOutput(stderr)
	dump := flags.String("dump", "all", "artifacts to print: report, blocks, tree, ast, or all")
	minIters := flags.Int("min-block-iters", 0, "coarsen pipeline blocks to at least this many iterations")
	example := flags.String("example", "", "use a built-in example program: listing1 or listing3")
	run := flags.Bool("run", false, "also execute the program (synthetic bodies): verify pipelined vs sequential and report the simulated speed-up")
	workers := flags.Int("workers", 4, "worker count for -run and generated code")
	gogenOut := flags.String("gogen", "", "write a standalone pipelined Go program to this file")
	scopOut := flags.String("export-scop", "", "write the parsed SCoP as JSON to this file")
	opt := flags.Bool("opt", true, "run the IR optimization passes for -gogen/-dump-ir (-opt=false is shorthand for -passes none)")
	passes := flags.String("passes", "", "IR pass selection for -gogen/-dump-ir: \"\" or \"all\", \"none\", or a comma-separated subset of pass names")
	dumpIR := flags.Bool("dump-ir", false, "print the (optimized) block-program IR")
	if err := flags.Parse(args); err != nil {
		return exitParse
	}
	fail := func(code int, err error) int {
		fmt.Fprintln(stderr, "pipelinec:", err)
		return code
	}

	passSpec := *passes
	if !*opt && passSpec == "" {
		passSpec = "none"
	}
	if _, err := ir.ParsePasses(passSpec); err != nil {
		return fail(exitParse, err)
	}

	src, name, err := readInput(*example, flags.Args(), stdin)
	if err != nil {
		return fail(inputErrCode(err), err)
	}
	sc, err := polypipe.Parse(name, src)
	if err != nil {
		return fail(exitParse, err)
	}
	opts := polypipe.Options{MinBlockIters: *minIters}
	sess := polypipe.NewSession(
		polypipe.WithWorkers(*workers),
		polypipe.WithOptions(opts),
		polypipe.WithCache(0),
	)
	defer sess.Close()
	info, err := sess.Detect(sc)
	if err != nil {
		if errors.Is(err, polypipe.ErrNotPipelinable) {
			return fail(exitNotPipelinable, err)
		}
		return fail(exitErr, err)
	}

	show := func(kind string) bool { return *dump == kind || *dump == "all" }
	if *scopOut != "" {
		data, err := polypipe.MarshalSCoP(sc)
		if err != nil {
			return fail(exitErr, err)
		}
		if err := os.WriteFile(*scopOut, data, 0o644); err != nil {
			return fail(exitIO, err)
		}
		fmt.Fprintf(stdout, "wrote SCoP description to %s\n\n", *scopOut)
	}
	if *dumpIR {
		p, err := gogen.Compile(info, gogen.EmitOptions{Workers: *workers, Passes: passSpec})
		if err != nil {
			return fail(exitErr, err)
		}
		fmt.Fprintf(stdout, "== block-program IR ==\n%s\n", p)
	}
	if *gogenOut != "" {
		f, err := os.Create(*gogenOut)
		if err != nil {
			return fail(exitIO, err)
		}
		emitErr := sess.EmitGo(f, sc, polypipe.EmitOptions{Workers: *workers, Passes: passSpec})
		if closeErr := f.Close(); emitErr == nil {
			emitErr = closeErr
		}
		if emitErr != nil {
			return fail(exitIO, emitErr)
		}
		fmt.Fprintf(stdout, "wrote standalone pipelined program to %s (run with `go run %s`)\n\n", *gogenOut, *gogenOut)
	}
	if *run {
		prog := polypipe.Interpret(sc)
		if err := sess.Verify(prog); err != nil {
			return fail(exitErr, err)
		}
		fmt.Fprintf(stdout, "verification: pipelined == parloop == sequential ✓ (%d tasks)\n",
			info.TotalBlocks())
		// One measurement for both points, so the critical-path bound
		// always dominates the bounded speed-up.
		s, err := sess.Simulate(prog, polypipe.SimConfig{Procs: []int{*workers, 1 << 16}})
		if err != nil {
			return fail(exitErr, err)
		}
		fmt.Fprintf(stdout, "simulated speed-up on %d workers: %.2fx (critical-path bound: %.2fx)\n\n",
			*workers, s[0], s[1])
	}
	if show("report") {
		fmt.Fprintf(stdout, "== pipeline detection report (%s) ==\n%s\n", name, polypipe.PipelineReport(info))
	}
	if *dump == "blocks" {
		fmt.Fprintf(stdout, "== pipeline blocks ==\n%s\n", polypipe.BlockReport(info))
	}
	if show("tree") {
		fmt.Fprintf(stdout, "== schedule tree ==\n%s\n", polypipe.ScheduleTree(info))
	}
	if show("ast") {
		out, err := polypipe.TransformedAST(name+"_pipelined", info)
		if err != nil {
			return fail(exitErr, err)
		}
		fmt.Fprintf(stdout, "== annotated AST ==\n%s", out)
	}
	return exitOK
}

// inputErrCode classifies a readInput failure: filesystem errors are
// I/O, everything else (unknown example, too many arguments) is
// usage.
func inputErrCode(err error) int {
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) {
		return exitIO
	}
	return exitParse
}

func readInput(example string, args []string, stdin io.Reader) (src, name string, err error) {
	switch example {
	case "listing1":
		return listing1Example, "listing1", nil
	case "listing3":
		return listing3Example, "listing3", nil
	case "":
	default:
		return "", "", fmt.Errorf("unknown example %q (want listing1 or listing3)", example)
	}
	if len(args) > 1 {
		return "", "", fmt.Errorf("expected at most one input file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(data), args[0], nil
	}
	data, err := io.ReadAll(stdin)
	if err != nil {
		return "", "", err
	}
	return string(data), "stdin", nil
}
