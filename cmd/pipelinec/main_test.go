package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/polypipe"
)

func TestReadInputExamples(t *testing.T) {
	src, name, err := readInput("listing1", nil)
	if err != nil || name != "listing1" || !strings.Contains(src, "A[i][2*j]") {
		t.Fatalf("listing1: %q %v", name, err)
	}
	src, name, err = readInput("listing3", nil)
	if err != nil || name != "listing3" || !strings.Contains(src, "U:") {
		t.Fatalf("listing3: %q %v", name, err)
	}
	if _, _, err := readInput("nope", nil); err == nil {
		t.Fatal("unknown example accepted")
	}
	if _, _, err := readInput("", []string{"a", "b"}); err == nil {
		t.Fatal("two files accepted")
	}
}

func TestReadInputFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "p.loop")
	if err := os.WriteFile(file, []byte("for (i = 0; i < 3; i++) S: A[i] = f(B[i]);"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, name, err := readInput("", []string{file})
	if err != nil || name != file || !strings.Contains(src, "S:") {
		t.Fatalf("file input: %q %v", name, err)
	}
	if _, _, err := readInput("", []string{filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuiltinExamplesParseAndDetect(t *testing.T) {
	for _, example := range []string{"listing1", "listing3"} {
		src, name, err := readInput(example, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := polypipe.Parse(name, src)
		if err != nil {
			t.Fatalf("%s: %v", example, err)
		}
		if _, err := polypipe.NewSession().Detect(sc); err != nil {
			t.Fatalf("%s: %v", example, err)
		}
	}
}
