package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/polypipe"
)

func TestReadInputExamples(t *testing.T) {
	src, name, err := readInput("listing1", nil, nil)
	if err != nil || name != "listing1" || !strings.Contains(src, "A[i][2*j]") {
		t.Fatalf("listing1: %q %v", name, err)
	}
	src, name, err = readInput("listing3", nil, nil)
	if err != nil || name != "listing3" || !strings.Contains(src, "U:") {
		t.Fatalf("listing3: %q %v", name, err)
	}
	if _, _, err := readInput("nope", nil, nil); err == nil {
		t.Fatal("unknown example accepted")
	}
	if _, _, err := readInput("", []string{"a", "b"}, nil); err == nil {
		t.Fatal("two files accepted")
	}
}

func TestReadInputFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "p.loop")
	if err := os.WriteFile(file, []byte("for (i = 0; i < 3; i++) S: A[i] = f(B[i]);"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, name, err := readInput("", []string{file}, nil)
	if err != nil || name != file || !strings.Contains(src, "S:") {
		t.Fatalf("file input: %q %v", name, err)
	}
	if _, _, err := readInput("", []string{filepath.Join(dir, "missing")}, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadInputStdin(t *testing.T) {
	src, name, err := readInput("", nil, strings.NewReader("for (i = 0; i < 3; i++) S: A[i] = f(A[i]);"))
	if err != nil || name != "stdin" || !strings.Contains(src, "S:") {
		t.Fatalf("stdin input: %q %v", name, err)
	}
}

func TestBuiltinExamplesParseAndDetect(t *testing.T) {
	for _, example := range []string{"listing1", "listing3"} {
		src, name, err := readInput(example, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := polypipe.Parse(name, src)
		if err != nil {
			t.Fatalf("%s: %v", example, err)
		}
		if _, err := polypipe.NewSession().Detect(sc); err != nil {
			t.Fatalf("%s: %v", example, err)
		}
	}
}

// run invokes realMain in-process with the given stdin text and
// returns (exit code, stdout, stderr).
func run(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := realMain(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestExitCodes covers the failure paths: each failure class maps to
// its documented exit code, with a diagnostic on stderr.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "no-such-file.loop")
	badDSL := filepath.Join(dir, "bad.loop")
	if err := os.WriteFile(badDSL, []byte("for (i = 0 i < 3) garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A cross-statement write-after-write hazard (both loops write A)
	// parses fine but is outside the pipelinable fragment.
	notPipe := filepath.Join(dir, "notpipe.loop")
	if err := os.WriteFile(notPipe, []byte(`
for (i = 0; i < 5; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 5; i++)
  T: A[i] = g(A[i]);
`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"-example", "listing1", "-dump", "report"}, exitOK},
		{"unknown flag", []string{"-no-such-flag"}, exitParse},
		{"unknown example", []string{"-example", "nope"}, exitParse},
		{"two files", []string{"a.loop", "b.loop"}, exitParse},
		{"bad DSL", []string{badDSL}, exitParse},
		{"bad passes", []string{"-passes", "bogus", "-example", "listing1"}, exitParse},
		{"missing input file", []string{missing}, exitIO},
		{"unwritable gogen output", []string{"-gogen", filepath.Join(dir, "no-dir", "out.go"), "-example", "listing1"}, exitIO},
		{"not pipelinable", []string{notPipe}, exitNotPipelinable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := run(t, "", tc.args...)
			if code != tc.want {
				t.Fatalf("args %v: exit %d, want %d (stderr: %s)", tc.args, code, tc.want, errOut)
			}
			if code != exitOK && errOut == "" {
				t.Error("failure produced no stderr diagnostic")
			}
		})
	}
}

// TestDumpIRFlag: -dump-ir prints the IR, and -opt / -passes select
// the pass pipeline visible in its header.
func TestDumpIRFlag(t *testing.T) {
	code, out, errOut := run(t, "", "-dump-ir", "-dump", "report", "-example", "listing1")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"== block-program IR ==", "passes: fuse", "hoist", "specialize", "narrow", "task "} {
		if !strings.Contains(out, want) {
			t.Errorf("optimized -dump-ir output missing %q", want)
		}
	}

	code, out, errOut = run(t, "", "-dump-ir", "-opt=false", "-dump", "report", "-example", "listing1")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "passes: (none)") {
		t.Errorf("-opt=false did not disable the pass pipeline:\n%s", out)
	}

	code, out, _ = run(t, "", "-dump-ir", "-passes", "fuse", "-dump", "report", "-example", "listing1")
	if code != exitOK || !strings.Contains(out, "passes: fuse\n") {
		t.Errorf("-passes fuse not reflected in IR dump (exit %d)", code)
	}
}

// TestGogenFlag: -gogen writes a compilable-looking standalone
// program through the session backend, honoring -passes.
func TestGogenFlag(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "gen.go")
	code, stdout, errOut := run(t, "", "-gogen", out, "-dump", "report", "-example", "listing1")
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(stdout, "wrote standalone pipelined program") {
		t.Errorf("missing confirmation line: %s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	for _, want := range []string{"package main", "var succOff = []int32{", "func runPipelined(workers int)"} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted program missing %q", want)
		}
	}

	code, _, _ = run(t, "", "-gogen", out, "-opt=false", "-dump", "report", "-example", "listing1")
	if code != exitOK {
		t.Fatal("unoptimized -gogen failed")
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "func resolveDeps()") {
		t.Error("-opt=false emitted program missing startup dependency resolution")
	}
}

// TestStdinPipeline: the default path (program on stdin, all dumps)
// succeeds end to end.
func TestStdinPipeline(t *testing.T) {
	code, out, errOut := run(t, `
for (i = 0; i < 6; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 6; i++)
  T: B[i] = g(A[i], B[i]);
`)
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"pipeline detection report (stdin)", "schedule tree", "annotated AST"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdin run missing %q", want)
		}
	}
}
