package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/polypipe"
)

// TestPrintStatsEndToEnd observes a real (small) kernel run and checks
// the printed breakdown contains every section the CLI promises, plus
// the acceptance ordering critical path ≤ pipeline makespan.
func TestPrintStatsEndToEnd(t *testing.T) {
	p, err := polypipe.Kernel("listing3", 16, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := polypipe.NewSession().Run(polypipe.ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := polypipe.Observe(p, 4, polypipe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := printStats(&b, p.Name, 4, seq.Elapsed, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"compile phases:",
		"detect.pipeline_maps",
		"detect.dependency_relations",
		"codegen.schedule_tree",
		"detection counts:",
		"total stall",
		"pool utilization",
		"per-worker:",
		"critical path:",
		"bounds:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if m.Critical.Length <= 0 {
		t.Error("critical path length not positive")
	}
	if m.Critical.Length > m.Analysis.Makespan {
		t.Errorf("critical path %v exceeds makespan %v", m.Critical.Length, m.Analysis.Makespan)
	}
	if m.Analysis.DroppedEvents != 0 {
		t.Errorf("dropped events = %d", m.Analysis.DroppedEvents)
	}
}

// TestTraceJSONIsValidTraceEvent checks the exported file is loadable
// trace_event JSON: an object with a traceEvents array whose entries
// carry the required keys.
func TestTraceJSONIsValidTraceEvent(t *testing.T) {
	p, err := polypipe.Kernel("listing1", 12, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := polypipe.TraceJSON(&b, p, 2, polypipe.Options{}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	sawComplete := false
	for _, ev := range file.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if ph == "X" {
			sawComplete = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
	}
	if !sawComplete {
		t.Error("no complete (X) events in trace")
	}
}
