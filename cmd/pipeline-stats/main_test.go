package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/export"
	"repro/polypipe"
)

// TestPrintStatsEndToEnd observes a real (small) kernel run and checks
// the printed breakdown contains every section the CLI promises, plus
// the acceptance ordering critical path ≤ pipeline makespan.
func TestPrintStatsEndToEnd(t *testing.T) {
	p, err := polypipe.Kernel("listing3", 16, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := polypipe.NewSession().Run(polypipe.ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := polypipe.Observe(p, 4, polypipe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := printStats(&b, p.Name, 4, seq.Elapsed, m); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"compile phases:",
		"detect.pipeline_maps",
		"detect.dependency_relations",
		"codegen.schedule_tree",
		"detection counts:",
		"total stall",
		"pool utilization",
		"per-worker:",
		"critical path:",
		"bounds:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if m.Critical.Length <= 0 {
		t.Error("critical path length not positive")
	}
	if m.Critical.Length > m.Analysis.Makespan {
		t.Errorf("critical path %v exceeds makespan %v", m.Critical.Length, m.Analysis.Makespan)
	}
	if m.Analysis.DroppedEvents != 0 {
		t.Errorf("dropped events = %d", m.Analysis.DroppedEvents)
	}
}

// TestServeModeEndToEnd drives the -serve loop in-process on a random
// port: it waits for the printed address, scrapes /metrics and
// /healthz live, waits until /debug/series carries at least two
// timestamped samples, then interrupts the loop and checks the
// shutdown is clean.
func TestServeModeEndToEnd(t *testing.T) {
	p, err := polypipe.Kernel("P4", 8, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- runServe(io.Discard, p, 2, polypipe.Options{},
			"127.0.0.1:0", 2*time.Millisecond, 2*time.Millisecond, stop,
			func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errCh:
		t.Fatalf("serve loop exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve loop never reported its address")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// The loop has run at least once by the time the sampler has two
	// samples; poll for both conditions together.
	deadline := time.Now().Add(10 * time.Second)
	var series export.Series
	for {
		_, body := get("/debug/series")
		if err := json.Unmarshal([]byte(body), &series); err != nil {
			t.Fatalf("/debug/series JSON: %v", err)
		}
		if len(series.Samples) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler stuck at %d samples", len(series.Samples))
		}
		time.Sleep(5 * time.Millisecond)
	}
	last := series.Samples[len(series.Samples)-1]
	if series.Samples[0].When.Equal(last.When) {
		t.Error("series samples share a timestamp")
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE detect_statements counter",
		"# TYPE runtime_executed counter",
		"# TYPE runtime_task_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("serve loop shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve loop did not stop")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		// A racing in-flight connection may still answer; a fresh
		// connection after Shutdown normally gets refused outright.
		t.Log("listener still answered after shutdown (in-flight drain)")
	}
}

// TestTraceJSONIsValidTraceEvent checks the exported file is loadable
// trace_event JSON: an object with a traceEvents array whose entries
// carry the required keys.
func TestTraceJSONIsValidTraceEvent(t *testing.T) {
	p, err := polypipe.Kernel("listing1", 12, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := polypipe.TraceJSON(&b, p, 2, polypipe.Options{}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	sawComplete := false
	for _, ev := range file.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if ph == "X" {
			sawComplete = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		}
	}
	if !sawComplete {
		t.Error("no complete (X) events in trace")
	}
}

// TestPrintAOTStats drives the -aot mode in-process: the emitted
// metrics table must report every pass's observable effect with
// non-zero values on a workload the pipeline actually transforms.
func TestPrintAOTStats(t *testing.T) {
	p, err := polypipe.Kernel("listing3", 16, 2, 96)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := printAOTStats(&b, p, 2, polypipe.Options{}, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"AOT backend (internal/ir pass pipeline):",
		"ir tasks",
		"blocks fused",
		"dep addresses hoisted",
		"bodies specialized",
		"arrays narrowed",
		"ir.pass.fuse",
		"ir.pass.hoist",
		"ir.pass.specialize",
		"ir.pass.narrow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-aot output missing %q:\n%s", want, out)
		}
	}
	for _, row := range []string{"dep addresses hoisted", "bodies specialized"} {
		if strings.Contains(out, row+"  0 ") {
			t.Errorf("%s reported zero effect:\n%s", row, out)
		}
	}

	// Pass selection flows through: with "none" nothing runs.
	b.Reset()
	if err := printAOTStats(&b, p, 2, polypipe.Options{}, "none"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "ir.pass.") {
		t.Errorf("-aot-passes none still ran passes:\n%s", b.String())
	}
}
