// Command pipeline-stats runs one of the built-in workloads with the
// full observability layer enabled and prints where the time goes: the
// detection/compile phase breakdown (§4's analysis cost), the run-time
// behaviour of the tasking layer (stall, queue, per-worker
// utilization), and the realized critical path of the executed task
// DAG compared against the Eq. 5/6 bounds. It also writes the
// execution as a Chrome/Perfetto trace_event file.
//
// With -serve it instead runs the workload continuously and exposes
// the session's live telemetry over HTTP (/metrics, /healthz,
// /debug/phases, /debug/series, /debug/trace; see
// docs/OBSERVABILITY.md) until interrupted.
//
// Usage:
//
//	pipeline-stats -kernel listing3 -n 48 -workers 4
//	pipeline-stats -kernel P5 -n 10 -size 2 -o p5-trace.json
//	pipeline-stats -kernel 3gmm -rows 128 -no-trace
//	pipeline-stats -serve :9090 -kernel P4 -n 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/report"
	"repro/polypipe"
)

func main() {
	kernel := flag.String("kernel", "listing3", "workload: listing1, listing3, P1..P10, or {2,3,4}{mm,mmt,gmm,gmmt}")
	n := flag.Int("n", 48, "grid size for listing/P workloads")
	size := flag.Int("size", 2, "SIZE for P workloads")
	rows := flag.Int("rows", 96, "rows for matrix-chain workloads")
	workers := flag.Int("workers", 4, "pipeline workers")
	work := flag.Duration("work", time.Millisecond, "extra wall-clock cost per statement instance (the Table 9 SIZE analogue; a timed wait, so overlap is visible on any host); 0 leaves the raw bodies, whose cost is below task overhead")
	minBlock := flag.Int("min-block-iters", 8, "coarsen blocks to at least this many iterations (Options.MinBlockIters); amortizes per-task handoff")
	hybrid := flag.Bool("hybrid", false, "run under the static/dynamic hybrid schedule: fuse single-predecessor dependence chains into statically ordered runs (see docs/PERFORMANCE.md)")
	tuneBudget := flag.Int("autotune", 0, "profile-guided block-size search budget before the observed run (0 = off, use -min-block-iters as-is); overrides -min-block-iters with the tuned value")
	backend := flag.String("backend", "", "detection backend: \"\"/explicit (Algorithm 1 over enumerated relations) or symbolic (closed-form constraint algebra, falls back outside its fragment)")
	out := flag.String("o", "trace.json", "Perfetto trace_event output file")
	noTrace := flag.Bool("no-trace", false, "skip writing the trace file")
	cacheDemo := flag.Bool("cache", false, "detect through a cached Session and print the hot/cold serving times plus the cache.* counters")
	aotDemo := flag.Bool("aot", false, "compile the workload through the AOT backend (Session.EmitGo) and print the ir.* pass metrics: blocks fused, addresses hoisted, bodies specialized, arrays narrowed")
	aotPasses := flag.String("aot-passes", "", "with -aot, IR pass selection: \"\"/all, none, or a comma-separated subset")
	serve := flag.String("serve", "", "run the workload continuously and expose live telemetry on this address (e.g. :9090, or 127.0.0.1:0 for a random port)")
	servePeriod := flag.Duration("serve-period", 250*time.Millisecond, "pause between runs in -serve mode")
	sampleInterval := flag.Duration("sample-interval", 0, "continuous sampler period in -serve mode (0 = default)")
	flag.Parse()

	p, err := polypipe.Kernel(*kernel, *n, *size, *rows)
	if err != nil {
		fatal(err)
	}
	polypipe.AmplifyWork(p, *work)
	opts := polypipe.Options{MinBlockIters: *minBlock, Backend: *backend}
	if *serve != "" {
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() { <-sig; close(stop) }()
		if err := runServe(os.Stdout, p, *workers, opts, *serve, *servePeriod, *sampleInterval, stop, nil); err != nil {
			fatal(err)
		}
		return
	}
	seq, err := polypipe.NewSession().Run(polypipe.ModeSequential, p)
	if err != nil {
		fatal(err)
	}
	rec := polypipe.NewRecorder()
	if *tuneBudget > 0 {
		topts := opts
		topts.Obs = rec
		sopts := []polypipe.SessionOption{
			polypipe.WithWorkers(*workers),
			polypipe.WithOptions(topts),
			polypipe.WithAutotune(*tuneBudget),
		}
		if *hybrid {
			sopts = append(sopts, polypipe.WithHybridSchedule())
		}
		res, err := polypipe.NewSession(sopts...).Autotune(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("autotune: block iters %d -> %d after %d evals (%.2fx, converged=%v)\n\n",
			res.Baseline.BlockIters, res.Chosen, res.Evals, res.Speedup(), res.Converged)
		opts.MinBlockIters = res.Chosen
	}
	var m *polypipe.Metrics
	if *hybrid {
		m, err = polypipe.ObserveHybrid(p, *workers, opts, rec)
	} else {
		m, err = polypipe.Observe(p, *workers, opts)
	}
	if err != nil {
		fatal(err)
	}
	if m.Result.Hash != seq.Hash {
		fatal(fmt.Errorf("observed run hash %x differs from sequential %x", m.Result.Hash, seq.Hash))
	}
	if err := printStats(os.Stdout, p.Name, *workers, seq.Elapsed, m); err != nil {
		fatal(err)
	}
	if *cacheDemo {
		if err := printCacheStats(os.Stdout, p, opts); err != nil {
			fatal(err)
		}
	}
	if *aotDemo {
		if err := printAOTStats(os.Stdout, p, *workers, opts, *aotPasses); err != nil {
			fatal(err)
		}
	}
	if !*noTrace {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteTraceJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (open at ui.perfetto.dev or chrome://tracing)\n", *out)
	}
}

// runServe is the -serve mode: one long-lived session with the
// continuous sampler and the embedded introspection server attached,
// executing the chosen workload in a loop so every scrape sees live
// detect/cache/runtime counters. It returns once stop closes, after
// draining in-flight scrapes via Session.Close. ready, if non-nil, is
// called with the bound address once the server is up (tests use it;
// the CLI reads the printed line instead).
func runServe(out io.Writer, p *polypipe.Program, workers int, opts polypipe.Options,
	addr string, period, sampleIv time.Duration, stop <-chan struct{}, ready func(addr string)) error {
	s := polypipe.NewSession(
		polypipe.WithWorkers(workers),
		polypipe.WithOptions(opts),
		polypipe.WithCache(0),
		polypipe.WithSampler(sampleIv, 0),
		polypipe.WithIntrospection(addr),
	)
	if err := s.IntrospectionError(); err != nil {
		return err
	}
	bound := s.IntrospectionAddr()
	fmt.Fprintf(out, "serving on http://%s  (/metrics /healthz /debug/phases /debug/series /debug/trace)\n", bound)
	fmt.Fprintf(out, "running %s with %d workers every %s; interrupt to stop\n", p.Name, workers, period)
	if ready != nil {
		ready(bound)
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	runs := 0
	for {
		if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
			_ = s.Close()
			return err
		}
		runs++
		select {
		case <-stop:
			fmt.Fprintf(out, "shutting down after %d runs\n", runs)
			return s.Close()
		case <-ticker.C:
		}
	}
}

// printStats renders the full breakdown of one observed execution.
func printStats(w io.Writer, name string, workers int, sequential time.Duration, m *polypipe.Metrics) error {
	fmt.Fprintf(w, "%s: %d workers, %d tasks, max %d concurrent\n\n",
		name, workers, m.Result.Tasks, m.Result.MaxConcurrent)

	fmt.Fprintln(w, "compile phases:")
	pt := report.NewTable("phase", "time")
	for _, ph := range m.Phases {
		if ph.Name == "execute" {
			continue
		}
		pt.Add(ph.Name, report.FormatDuration(ph.Duration))
	}
	fmt.Fprint(w, pt.String())

	s := m.Snapshot
	fmt.Fprintf(w, "\ndetection counts: statements=%d pairs=%d blocks=%d dep_edges=%d tree_nodes=%d\n",
		s.Counter("detect.statements"), s.Counter("detect.pairs"),
		s.Counter("detect.blocks"), s.Counter("detect.dep_edges"),
		s.Gauge("sched.tree_nodes"))
	var backends []string
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "detect.backend.") {
			backends = append(backends, fmt.Sprintf("%s=%d", strings.TrimPrefix(name, "detect.backend."), v))
		}
	}
	if len(backends) > 0 {
		sort.Strings(backends)
		fmt.Fprintf(w, "detection backend: %s\n", strings.Join(backends, " "))
	}

	a := m.Analysis
	fmt.Fprintln(w, "\nruntime:")
	rt := report.NewTable("metric", "value")
	rt.Add("sequential elapsed", report.FormatDuration(sequential))
	rt.Add("pipeline elapsed", report.FormatDuration(m.Result.Elapsed))
	rt.Add("speedup", report.FormatSpeedup(float64(sequential)/float64(m.Result.Elapsed)))
	rt.Add("makespan", report.FormatDuration(a.Makespan))
	rt.Add("busy (Σ tasks)", report.FormatDuration(a.Busy))
	rt.Add("overlap", report.FormatSpeedup(a.Overlap))
	rt.Add("total stall", report.FormatDuration(a.TotalStall))
	rt.Add("pool utilization", report.FormatPercent(a.Utilization(workers)))
	rt.Add("peak concurrency", strconv.FormatInt(s.Gauge("runtime.peak_concurrency"), 10))
	rt.Add("tasks stolen", strconv.FormatInt(s.Counter("runtime.steal_count"), 10))
	rt.Add("chains fused", strconv.FormatInt(s.Counter("runtime.chain_fused"), 10))
	rt.Add("deps resolved", strconv.FormatInt(s.Counter("runtime.deps_resolved"), 10))
	rt.Add("IR reuse hits", strconv.FormatInt(s.Counter("runtime.ir_reuse"), 10))
	rt.Add("ready queue depth (now)", strconv.FormatInt(s.Gauge("runtime.queue_depth"), 10))
	rt.Add("ready queue peak", strconv.FormatInt(s.Gauge("runtime.queue_depth_peak"), 10))
	rt.Add("dropped events", strconv.Itoa(a.DroppedEvents))
	if it := s.Counter("autotune.iterations"); it > 0 {
		rt.Add("autotune evals", strconv.FormatInt(it, 10))
		rt.Add("autotune block iters", strconv.FormatInt(s.Gauge("autotune.block_iters_chosen"), 10))
	}
	fmt.Fprint(w, rt.String())

	fmt.Fprintln(w, "\nper-worker:")
	wt := report.NewTable("worker", "busy", "utilization")
	util := a.WorkerUtilization()
	ws := make([]int, 0, len(a.PerWorker))
	for id := range a.PerWorker {
		ws = append(ws, id)
	}
	sort.Ints(ws)
	for _, id := range ws {
		wt.Add(strconv.Itoa(id), report.FormatDuration(a.PerWorker[id]), report.FormatPercent(util[id]))
	}
	fmt.Fprint(w, wt.String())

	fmt.Fprintf(w, "\ncritical path: %s\n", m.Critical)
	fmt.Fprintf(w, "bounds: critical path %s ≤ pipeline %s ≤ sequential %s",
		report.FormatDuration(m.Critical.Length),
		report.FormatDuration(m.Result.Elapsed),
		report.FormatDuration(sequential))
	if m.Critical.Length <= m.Result.Elapsed && m.Result.Elapsed <= sequential {
		fmt.Fprintln(w, "  [holds]")
	} else {
		fmt.Fprintln(w, "  [VIOLATED — noisy host?]")
	}
	return nil
}

// printCacheStats detects the workload twice through one cached
// session — a cold miss and a hot content-addressed hit — and renders
// the serving times alongside the session's cache counters (the
// cache.* metrics of docs/OBSERVABILITY.md).
func printCacheStats(w io.Writer, p *polypipe.Program, opts polypipe.Options) error {
	s := polypipe.NewSession(
		polypipe.WithOptions(opts),
		polypipe.WithCache(0),
		polypipe.WithRegistry(polypipe.NewRegistry()))
	start := time.Now()
	if _, err := s.Detect(p.SCoP); err != nil {
		return err
	}
	cold := time.Since(start)
	start = time.Now()
	if _, err := s.Detect(p.SCoP); err != nil {
		return err
	}
	hot := time.Since(start)

	fmt.Fprintln(w, "\ndetection cache:")
	t := report.NewTable("metric", "value")
	t.Add("cold detect (miss)", report.FormatDuration(cold))
	t.Add("hot serve (hit)", report.FormatDuration(hot))
	if hot > 0 {
		t.Add("hot/cold speedup", report.FormatSpeedup(float64(cold)/float64(hot)))
	}
	if st, ok := s.CacheStats(); ok {
		t.Add("hits", strconv.FormatInt(st.Hits, 10))
		t.Add("misses", strconv.FormatInt(st.Misses, 10))
		t.Add("evictions", strconv.FormatInt(st.Evictions, 10))
		t.Add("inflight dedup", strconv.FormatInt(st.InflightDedup, 10))
		t.Add("entries", strconv.FormatInt(st.Entries, 10))
	}
	fmt.Fprint(w, t.String())
	return nil
}

// printAOTStats compiles the workload through the AOT backend under
// an observed session and renders what the pass pipeline did: the IR
// shape (ir.* gauges), each pass's observable effect (ir.* counters),
// and the per-phase compile timings (ir.lower, ir.pass.*).
func printAOTStats(w io.Writer, p *polypipe.Program, workers int, opts polypipe.Options, passes string) error {
	s := polypipe.NewSession(
		polypipe.WithWorkers(workers),
		polypipe.WithOptions(opts),
		polypipe.WithRegistry(polypipe.NewRegistry()))
	defer s.Close()
	var src strings.Builder
	start := time.Now()
	if err := s.EmitGo(&src, p.SCoP, polypipe.EmitOptions{Workers: workers, Passes: passes}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	snap := s.Registry().Snapshot()

	fmt.Fprintln(w, "\nAOT backend (internal/ir pass pipeline):")
	t := report.NewTable("metric", "value")
	t.Add("emit time", report.FormatDuration(elapsed))
	t.Add("emitted source bytes", strconv.Itoa(src.Len()))
	t.Add("ir tasks", strconv.FormatInt(snap.Gauge("ir.tasks"), 10))
	t.Add("ir statements", strconv.FormatInt(snap.Gauge("ir.stmts"), 10))
	t.Add("ir arrays", strconv.FormatInt(snap.Gauge("ir.arrays"), 10))
	if e := snap.Gauge("ir.edges"); e > 0 {
		t.Add("ir dep edges (CSR)", strconv.FormatInt(e, 10))
	}
	t.Add("blocks fused", strconv.FormatInt(snap.Counter("ir.blocks_fused"), 10))
	t.Add("dep addresses hoisted", strconv.FormatInt(snap.Counter("ir.addrs_hoisted"), 10))
	t.Add("bodies specialized", strconv.FormatInt(snap.Counter("ir.bodies_specialized"), 10))
	t.Add("iteration segments", strconv.FormatInt(snap.Counter("ir.segments"), 10))
	t.Add("arrays narrowed", strconv.FormatInt(snap.Counter("ir.arrays_narrowed"), 10))
	t.Add("extent cells saved", strconv.FormatInt(snap.Counter("ir.extent_cells_saved"), 10))
	t.Add("read-only arrays", strconv.FormatInt(snap.Counter("ir.arrays_readonly"), 10))
	t.Add("dead arrays", strconv.FormatInt(snap.Counter("ir.arrays_dead"), 10))
	fmt.Fprint(w, t.String())

	var phases []string
	for _, ph := range s.PhaseSpans() {
		if strings.HasPrefix(ph.Name, "ir.") {
			phases = append(phases, fmt.Sprintf("%s=%s", ph.Name, report.FormatDuration(ph.Duration)))
		}
	}
	if len(phases) > 0 {
		fmt.Fprintf(w, "\ncompile phases: %s\n", strings.Join(phases, " "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeline-stats:", err)
	os.Exit(1)
}
