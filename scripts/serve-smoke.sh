#!/usr/bin/env bash
# serve-smoke: end-to-end check of the detection service. Builds
# pipelined, starts it on a random port with a disk cache, POSTs an
# enveloped SCoP to /v1/detect (expecting a pipeline pair in the
# summary), rejects a bare legacy document (the HTTP surface speaks
# only scop/v1), scrapes /metrics for the serve.* family, then SIGTERMs
# and expects a graceful drain. A second instance over the same cache
# directory must answer the same SCoP from the disk tier
# (cache_disk_hits >= 1) — the restart-warm path that justifies the
# tier. Wired into `make check` as the serve-smoke target.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""

cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$tmp/serve.log" >&2 || true
    exit 1
}

cat >"$tmp/scop.json" <<'EOF'
{"schema":"scop/v1","scop":{
 "name":"smoke","arrays":[{"name":"A","dim":1},{"name":"B","dim":1}],
 "statements":[
  {"name":"S","bounds":[{"lo":{"nvars":0,"const":0},"hi":{"nvars":0,"const":15}}],
   "write":{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}},
  {"name":"T","bounds":[{"lo":{"nvars":0,"const":0},"hi":{"nvars":0,"const":15}}],
   "write":{"array":"B","index":[{"nvars":1,"coeffs":[1]}]},
   "reads":[{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}]}]}}
EOF

echo "serve-smoke: building pipelined"
"$GO" build -o "$tmp/pipelined" ./cmd/pipelined

start_server() {
    "$tmp/pipelined" -addr 127.0.0.1:0 -disk-cache "$tmp/cache" >"$tmp/serve.log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^serving on http://\([^ ]*\).*#\1#p' "$tmp/serve.log" | head -1)
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || fail "server exited before binding"
        sleep 0.1
    done
    [ -n "$addr" ] || fail "no bound address in server output"
}

stop_server() {
    kill -TERM "$pid"
    wait "$pid" || fail "server exited non-zero on SIGTERM"
    pid=""
    grep -q 'drained; bye' "$tmp/serve.log" || fail "no graceful-drain message"
}

start_server
echo "serve-smoke: serving on $addr"

curl -fsS "http://$addr/healthz" | grep -q ok || fail "/healthz did not answer ok"

curl -fsS -X POST --data-binary @"$tmp/scop.json" "http://$addr/v1/detect" >"$tmp/resp.json" \
    || fail "POST /v1/detect failed"
grep -q '"src":"S"' "$tmp/resp.json" || fail "detection summary missing the S->T pair: $(cat "$tmp/resp.json")"
grep -q '"fingerprint":"' "$tmp/resp.json" || fail "no fingerprint in response"

# A bare legacy document must be refused: the wire contract is
# versioned-envelope only.
status=$(curl -s -o "$tmp/bare.json" -w '%{http_code}' -X POST \
    --data-binary '{"name":"smoke","arrays":[],"statements":[]}' "http://$addr/v1/detect")
[ "$status" = 400 ] || fail "bare document answered $status, want 400"
grep -q bad_schema "$tmp/bare.json" || fail "bare document not classified bad_schema"

curl -fsS "http://$addr/metrics" >"$tmp/metrics" || fail "/metrics scrape failed"
grep -q '^# TYPE serve_requests counter' "$tmp/metrics" || fail "/metrics missing serve.requests"
grep -q '^serve_queue_depth' "$tmp/metrics" || fail "/metrics missing serve.queue_depth"
grep -q '^# TYPE cache_disk_writes counter' "$tmp/metrics" || fail "/metrics missing cache.disk.writes"
grep -q '^serve_tenant_default_request_ns_bucket' "$tmp/metrics" || fail "/metrics missing the per-tenant latency histogram"

stop_server
echo "serve-smoke: first instance drained cleanly"

# Restart over the same cache directory: the disk tier must answer.
start_server
curl -fsS -X POST --data-binary @"$tmp/scop.json" "http://$addr/v1/detect" >/dev/null \
    || fail "POST after restart failed"
curl -fsS "http://$addr/metrics" >"$tmp/metrics2" || fail "second /metrics scrape failed"
hits=$(sed -n 's/^cache_disk_hits \([0-9]*\)$/\1/p' "$tmp/metrics2")
[ -n "$hits" ] && [ "$hits" -ge 1 ] || fail "restart did not warm from the disk tier (cache_disk_hits=$hits)"
stop_server

echo "serve-smoke: OK (restart warmed from disk, $hits disk hit(s))"
