#!/usr/bin/env bash
# obsd-smoke: end-to-end check of the live-telemetry path. Builds
# pipeline-stats, starts it in -serve mode on a random port with the
# symbolic detection backend selected, scrapes /metrics and /healthz
# (failing on non-200 or an empty exposition), asserts /debug/phases
# reports the active isl and detection backends, waits for the
# continuous sampler to accumulate at least two samples in
# /debug/series, then interrupts the process and expects a clean
# shutdown. Wired into `make check` as the obsd-smoke target.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""

cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

fail() {
    echo "obsd-smoke: FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$tmp/serve.log" >&2 || true
    exit 1
}

echo "obsd-smoke: building pipeline-stats"
"$GO" build -o "$tmp/pipeline-stats" ./cmd/pipeline-stats

# -backend symbolic with -min-block-iters 1 keeps P4 inside the
# symbolic fragment, so the served detection really runs the
# closed-form path (coarsening would force the explicit fallback).
"$tmp/pipeline-stats" -serve 127.0.0.1:0 -kernel P4 -n 8 -size 2 -work 0 \
    -backend symbolic -min-block-iters 1 \
    -serve-period 50ms -sample-interval 50ms >"$tmp/serve.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^serving on http://\([^ ]*\).*#\1#p' "$tmp/serve.log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || fail "server exited before binding"
    sleep 0.1
done
[ -n "$addr" ] && echo "obsd-smoke: serving on $addr" || fail "no bound address in server output"

curl -fsS "http://$addr/healthz" >"$tmp/healthz" || fail "/healthz scrape failed"
grep -q ok "$tmp/healthz" || fail "/healthz did not answer ok"

curl -fsS "http://$addr/metrics" >"$tmp/metrics" || fail "/metrics scrape failed"
[ -s "$tmp/metrics" ] || fail "/metrics exposition is empty"
grep -q '^# TYPE detect_statements counter' "$tmp/metrics" || fail "/metrics missing the detect family"
grep -q '^# TYPE runtime_executed counter' "$tmp/metrics" || fail "/metrics missing the runtime family"
grep -q '_bucket{le="+Inf"}' "$tmp/metrics" || fail "/metrics missing histogram buckets"
grep -q '^# TYPE detect_backend_symbolic counter' "$tmp/metrics" || fail "/metrics missing the detect.backend.symbolic counter"

curl -fsS "http://$addr/debug/phases" >"$tmp/phases" || fail "/debug/phases scrape failed"
grep -q '"isl_backend": "' "$tmp/phases" || fail "/debug/phases does not name the isl backend"
grep -q '"detect_backend": "symbolic"' "$tmp/phases" || fail "/debug/phases does not report the symbolic detection backend"

samples=0
for _ in $(seq 1 100); do
    samples=$(curl -fsS "http://$addr/debug/series" | grep -o '"when"' | wc -l)
    [ "$samples" -ge 2 ] && break
    sleep 0.1
done
[ "$samples" -ge 2 ] || fail "/debug/series has $samples samples, want >= 2"

kill -INT "$pid"
wait "$pid" || fail "server exited non-zero on SIGINT"
pid=""
grep -q 'shutting down after' "$tmp/serve.log" || fail "no graceful-shutdown message"

echo "obsd-smoke: OK ($samples samples, $(grep -c '^# TYPE' "$tmp/metrics") metric families)"
