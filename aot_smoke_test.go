package repro_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/polypipe"
)

// TestAOTSmoke is the golden end-to-end gate for the AOT backend: for
// every DSL program under examples/dsl it emits a standalone Go
// program through a session (optimized and unoptimized), builds it
// with `go build`, executes the binary, and requires the printed
// result hash to match the in-process interpreter bit for bit. The
// emitted binary additionally self-verifies sequential == pipelined
// on every run.
func TestAOTSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs one binary per example and pass config")
	}
	files, err := filepath.Glob(filepath.Join("examples", "dsl", "*.loop"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no DSL examples found under examples/dsl")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := polypipe.Parse(filepath.Base(file), string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			sess := polypipe.NewSession(polypipe.WithWorkers(2))
			defer sess.Close()

			// In-process reference: the interpreter's sequential hash.
			ref, err := sess.Run(polypipe.ModeSequential, polypipe.Interpret(sc))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			for _, passes := range []string{"all", "none"} {
				var b strings.Builder
				if err := sess.EmitGo(&b, sc, polypipe.EmitOptions{Workers: 2, Passes: passes}); err != nil {
					t.Fatalf("emit (%s): %v", passes, err)
				}
				dir := t.TempDir()
				src := filepath.Join(dir, "main.go")
				if err := os.WriteFile(src, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				bin := filepath.Join(dir, "prog")
				build := exec.Command("go", "build", "-o", bin, src)
				build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
				if out, err := build.CombinedOutput(); err != nil {
					t.Fatalf("go build (%s): %v\n%s", passes, err, out)
				}
				out, err := exec.Command(bin, "2").CombinedOutput()
				if err != nil {
					t.Fatalf("emitted binary (%s): %v\n%s", passes, err, out)
				}
				var got uint64
				var tasks int
				if _, err := fmt.Sscanf(strings.TrimSpace(string(out)), "ok hash=%x tasks=%d", &got, &tasks); err != nil {
					t.Fatalf("cannot parse emitted output %q: %v", out, err)
				}
				if got != ref.Hash {
					t.Errorf("passes=%s: emitted hash %x != interpreter hash %x", passes, got, ref.Hash)
				}
				if tasks == 0 {
					t.Errorf("passes=%s: emitted binary created no tasks", passes)
				}
			}
		})
	}
}
