GO ?= go

.PHONY: check build test vet race bench bench-cache stats clean

## check: the full gate — vet, build, and the race-enabled test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate the paper's evaluation numbers plus the detection
## micro-benchmarks (serial vs parallel core.Detect; see
## docs/PERFORMANCE.md and BENCH_detect.json).
bench:
	$(GO) test -bench . -benchmem .
	$(GO) test -bench=Detect -benchmem -run='^$$' ./internal/core/

## bench-cache: the detection cache's serving path — hot Session.Detect
## on a cached kernel vs cold core.Detect (docs/PERFORMANCE.md,
## "Serving and the detection cache"). Add -detect-bench and
## -detect-out BENCH_detect.json to regenerate the committed file.
bench-cache:
	$(GO) run ./cmd/bench-pipeline -cache-bench

## stats: one observed run with the full breakdown + trace.json.
stats:
	$(GO) run ./cmd/pipeline-stats -kernel listing3 -n 48 -workers 4

clean:
	rm -f trace.json
