GO ?= go

.PHONY: check build test vet fmt-check race crosscheck crosscheck-symbolic hybrid-race autotune-smoke aot-smoke obsd-smoke serve-smoke bench bench-cache bench-gate bench-exec bench-exec-gate bench-autotune bench-serve bench-serve-gate stats serve clean

## check: the full gate — vet, gofmt cleanliness, build, the
## race-enabled test suite, the cross-backend differential suites (isl
## backends and the symbolic detection algebra), the hybrid-schedule
## equivalence suite under contention, the AOT-backend smoke (emit,
## compile, execute, compare against the interpreter), the
## live-telemetry smoke, and the detection-service smoke. The autotune
## smoke joins in only on multi-core hosts: on one CPU the search
## measures scheduling noise, not blocking.
check: vet fmt-check build race crosscheck crosscheck-symbolic hybrid-race aot-smoke obsd-smoke serve-smoke
	@if [ "$$(nproc 2>/dev/null || echo 1)" -ge 2 ]; then \
		$(MAKE) autotune-smoke; \
	else \
		echo "check: skipping autotune-smoke (single-CPU host)"; \
	fi

## crosscheck: prove the columnar isl backend (default) and the legacy
## hash-map backend (-tags islhashmap) are observably identical — the
## model-based isl property tests plus bit-identical detection digests
## against the committed goldens — under the race detector.
crosscheck:
	$(GO) vet -tags islhashmap ./...
	$(GO) test -race ./internal/isl/ ./internal/isl/sym/ ./internal/core/
	$(GO) test -race -tags islhashmap ./internal/isl/ ./internal/isl/sym/ ./internal/core/

## crosscheck-symbolic: prove the symbolic (constraint-form) detection
## backend is bit-identical to the explicit path — closed-form results
## vs enumerated relations on the in-fragment suite, dispatch-with-
## fallback over the full cross-backend suite, and the randomized
## lexmin/lexmax property tests against both isl backends — under the
## race detector.
crosscheck-symbolic:
	$(GO) test -race -run 'Symbolic|UnknownBackend|LexOptProperty' ./internal/core/ ./internal/isl/sym/
	$(GO) test -race -tags islhashmap -run 'Symbolic|UnknownBackend|LexOptProperty' ./internal/core/ ./internal/isl/sym/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any file is not gofmt-clean (prints the
## offenders; run `gofmt -w .` to fix).
fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "fmt-check: files need gofmt -w:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate the paper's evaluation numbers plus the detection
## micro-benchmarks (serial vs parallel core.Detect; see
## docs/PERFORMANCE.md and BENCH_detect.json).
bench:
	$(GO) test -bench . -benchmem .
	$(GO) test -bench=Detect -benchmem -run='^$$' ./internal/core/

## bench-cache: the detection cache's serving path — hot Session.Detect
## on a cached kernel vs cold core.Detect (docs/PERFORMANCE.md,
## "Serving and the detection cache"). Add -detect-bench and
## -detect-out BENCH_detect.json to regenerate the committed file.
bench-cache:
	$(GO) run ./cmd/bench-pipeline -cache-bench

## bench-gate: performance regression gate — re-run the detection
## benchmark and fail if any kernel's ns/op regressed more than 15%
## against the committed BENCH_detect.json (tune with -gate-tol).
bench-gate:
	$(GO) run ./cmd/bench-pipeline -bench-gate -sizes 32,64,128

## bench-exec: the execution runtime benchmark — serial reference,
## the unified scheduler through the compiled IR, the hybrid schedule,
## the profile-guided autotuned blocking, the futures/stages adapters,
## IR lowering first-vs-reuse, and the AOT backend (emitted-binary vs
## in-process steady state plus compile-time ns/op, passes on/off), on
## P4/P7/P10 at n=32/64/128. Regenerates the committed
## BENCH_exec.json.
bench-exec:
	$(GO) run ./cmd/bench-pipeline -exec-bench -autotune -aot-bench -exec-out BENCH_exec.json

## bench-exec-gate: performance regression gate — re-run the execution
## benchmark (including the hybrid-schedule, autotuned, and AOT rows)
## and fail if any row's ns/op regressed more than 15% against the
## committed BENCH_exec.json (tune with -gate-tol). Committed rows
## measured under a different GOMAXPROCS than this host are skipped.
bench-exec-gate:
	$(GO) run ./cmd/bench-pipeline -exec-gate -autotune -aot-bench

## bench-autotune: the profile-guided block-size search, human-readable
## — per kernel, every candidate granularity with its measured wall
## time / critical path / stall / steal / fused-chain profile, and the
## chosen block size (docs/PERFORMANCE.md, "Autotuning & hybrid
## scheduling").
bench-autotune:
	$(GO) run ./cmd/bench-pipeline -autotune -autotune-sizes 32 -autotune-budget 8

## hybrid-race: the static/dynamic hybrid schedule under the race
## detector at 2 and 4 CPUs — chain fusion, steal paths, and the
## bit-identical-to-dynamic equivalence suite on the Table 9 corpus.
hybrid-race:
	$(GO) test -race -cpu 2,4 -run 'Hybrid|Chain|FuseChains' ./internal/runtime/ ./internal/exec/ ./polypipe/

## aot-smoke: the AOT backend's golden end-to-end gate — emit a
## standalone Go program for every examples/dsl/*.loop (pass pipeline
## on and off), `go build` it, execute it, and require the result hash
## to match the in-process interpreter bit for bit. Skipped under
## `go test -short`.
aot-smoke:
	$(GO) test -run 'TestAOTSmoke|TestEmittedDifferential' -count=1 . ./internal/gogen/

## autotune-smoke: one short end-to-end search on a multi-core host —
## proves the tuner converges and its choice reproduces the sequential
## result (the per-candidate hash check is built into the search).
autotune-smoke:
	$(GO) run ./cmd/bench-pipeline -autotune -autotune-sizes 16 -autotune-budget 5

## obsd-smoke: end-to-end live-telemetry check — start
## pipeline-stats -serve on a random port, scrape /metrics and
## /healthz (fail on non-200 or empty exposition), require >= 2
## sampler entries in /debug/series, then SIGINT for a clean shutdown.
obsd-smoke:
	GO="$(GO)" ./scripts/obsd-smoke.sh

## serve-smoke: end-to-end detection-service check — start pipelined
## with a disk cache on a random port, POST an enveloped SCoP, refuse a
## bare legacy document, scrape the serve.* metrics, SIGTERM for a
## graceful drain, then restart over the same cache directory and
## require the disk tier to answer (cache_disk_hits >= 1).
serve-smoke:
	GO="$(GO)" ./scripts/serve-smoke.sh

## bench-serve: the detection-service load benchmark — replayable
## zipf-skewed traffic over the Table 9 + nmm corpus against an
## in-process pipelined, cold pass then cache-warm pass; regenerates
## the committed BENCH_serve.json (p50/p99 latency, throughput, shed
## rate).
bench-serve:
	$(GO) run ./cmd/serveload -out BENCH_serve.json

## bench-serve-gate: performance regression gate — re-run the serving
## benchmark and fail if p50 or p99 of either pass regressed more than
## 15% against the committed BENCH_serve.json (tune with -gate-tol).
bench-serve-gate:
	$(GO) run ./cmd/serveload -gate

## stats: one observed run with the full breakdown + trace.json.
stats:
	$(GO) run ./cmd/pipeline-stats -kernel listing3 -n 48 -workers 4

## serve: run continuously with the embedded introspection server on
## :9090 (curl localhost:9090/metrics for a live Prometheus scrape).
serve:
	$(GO) run ./cmd/pipeline-stats -serve :9090 -kernel P4 -n 16

clean:
	rm -f trace.json
