GO ?= go

.PHONY: check build test vet race bench stats clean

## check: the full gate — vet, build, and the race-enabled test suite.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate the paper's evaluation numbers plus the detection
## micro-benchmarks (serial vs parallel core.Detect; see
## docs/PERFORMANCE.md and BENCH_detect.json).
bench:
	$(GO) test -bench . -benchmem .
	$(GO) test -bench=Detect -benchmem -run='^$$' ./internal/core/

## stats: one observed run with the full breakdown + trace.json.
stats:
	$(GO) run ./cmd/pipeline-stats -kernel listing3 -n 48 -workers 4

clean:
	rm -f trace.json
