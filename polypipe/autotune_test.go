package polypipe

import (
	"testing"
)

func TestSessionHybridScheduleMatchesSequential(t *testing.T) {
	p := Listing3(32)
	sess := NewSession(WithWorkers(2), WithHybridSchedule(), WithRegistry(NewRegistry()))
	want, err := sess.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(ModePipelined, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executor != "pipeline-hybrid-sched" {
		t.Fatalf("executor = %q", res.Executor)
	}
	if res.Hash != want.Hash {
		t.Fatalf("hybrid hash %x, want %x", res.Hash, want.Hash)
	}
	if res.ChainFused == 0 {
		t.Fatal("hybrid schedule fused no chains on listing3")
	}
	if got := sess.Registry().Snapshot().Counter("runtime.chain_fused"); got < res.ChainFused {
		t.Fatalf("runtime.chain_fused = %d, want >= %d", got, res.ChainFused)
	}
}

func TestSessionAutotuneRunsAndCaches(t *testing.T) {
	p, err := Table9Program("P4", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sess := NewSession(WithWorkers(2), WithAutotune(6), WithRegistry(reg))
	res, err := sess.Run(ModePipelined, p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sess.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatalf("autotuned hash %x, want %x", res.Hash, seq.Hash)
	}
	snap := reg.Snapshot()
	iters := snap.Counter("autotune.iterations")
	if iters < 1 || iters > 6 {
		t.Fatalf("autotune.iterations = %d", iters)
	}
	chosen := snap.Gauge("autotune.block_iters_chosen")
	if chosen < 1 {
		t.Fatalf("autotune.block_iters_chosen = %d", chosen)
	}
	// A second run must reuse the tuned choice without re-searching.
	if _, err := sess.Run(ModePipelined, p); err != nil {
		t.Fatal(err)
	}
	if again := reg.Snapshot().Counter("autotune.iterations"); again != iters {
		t.Fatalf("second run re-tuned: iterations %d → %d", iters, again)
	}
}

func TestSessionAutotuneExplicit(t *testing.T) {
	p := Listing1(48)
	sess := NewSession(WithWorkers(2), WithHybridSchedule())
	res, err := sess.Autotune(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen < 1 || len(res.Samples) != res.Evals {
		t.Fatalf("result = %+v", res)
	}
	if res.Baseline.ChainFused == 0 {
		t.Fatal("hybrid autotune measured no fused chains")
	}
	if res.Speedup() <= 0 {
		t.Fatalf("Speedup = %v", res.Speedup())
	}
}
