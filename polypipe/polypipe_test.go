package polypipe

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	p := Listing3(16)
	s := NewSession(WithWorkers(4))
	if err := s.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ModePipelined, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks created")
	}
	seq, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Hash != res.Hash {
		t.Fatal("hash mismatch")
	}
	par, err := s.Run(ModeParLoop, p)
	if err != nil {
		t.Fatal(err)
	}
	if par.Hash != res.Hash {
		t.Fatal("parloop hash mismatch")
	}
}

func TestFacadeParseAndReports(t *testing.T) {
	src := `
for (i = 0; i < 9; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 9; i++)
  T: B[i] = g(A[i]);
`
	sc, err := Parse("tiny", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := NewSession().Detect(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep := PipelineReport(info)
	for _, want := range []string{"S -> T", "T: 9 blocks, in-deps on [S]", "S: 9 blocks, no in-deps"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	tree := ScheduleTree(info)
	if !strings.Contains(tree, "sequence:") || !strings.Contains(tree, "expansion:") {
		t.Errorf("schedule tree rendering wrong:\n%s", tree)
	}
	astOut, err := TransformedAST("tiny_pipelined", info)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(astOut, "task(T): 9 blocks, in-deps on [S]") {
		t.Errorf("AST missing annotation:\n%s", astOut)
	}
}

func TestFacadeLargePairSummary(t *testing.T) {
	p := Listing1(20)
	info, err := NewSession().Detect(p.SCoP)
	if err != nil {
		t.Fatal(err)
	}
	rep := PipelineReport(info)
	if !strings.Contains(rep, "81 pairs") {
		t.Errorf("expected summarized large map:\n%s", rep)
	}
}

func TestFacadeSpeedupRuns(t *testing.T) {
	p := Listing1(16)
	seq, pipe, ratio, err := NewSession(WithWorkers(2)).Speedup(p)
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 0 || pipe <= 0 || ratio <= 0 {
		t.Fatalf("speedup = %v/%v/%f", seq, pipe, ratio)
	}
}

func TestFacadeTrace(t *testing.T) {
	p := Listing3(12)
	a, gantt, err := NewSession(WithWorkers(4)).TracePipelined(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Spans) == 0 {
		t.Fatal("no spans")
	}
	if rows := strings.Count(gantt, "\n"); rows != 3 {
		t.Fatalf("gantt rows = %d:\n%s", rows, gantt)
	}
	if !strings.Contains(gantt, "S") || !strings.Contains(gantt, "U") {
		t.Fatalf("gantt missing statement names:\n%s", gantt)
	}
}

func TestFacadeKernelConstructors(t *testing.T) {
	if _, err := Table9Program("P3", 8, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Table9Program("nope", 8, 2); err == nil {
		t.Fatal("expected error")
	}
	p := MMChain(2, 8, GMMT)
	if p.Name != "2gmmt" {
		t.Fatalf("name = %q", p.Name)
	}
	if err := NewSession(WithWorkers(2)).Verify(p); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder("x")
	if b == nil {
		t.Fatal("nil builder")
	}
}

func TestPotentialSpeedupBounds(t *testing.T) {
	p := Listing3(20)
	// From one measurement, the unbounded (critical-path) schedule
	// dominates every bounded one.
	s, err := NewSession().Simulate(p, SimConfig{Procs: []int{1, 2, 4, 1 << 14}})
	if err != nil {
		t.Fatal(err)
	}
	unbounded := s[len(s)-1]
	if unbounded < 1 {
		t.Fatalf("potential (unbounded) speed-up = %f, want >= 1", unbounded)
	}
	for i, bounded := range s[:len(s)-1] {
		if bounded > unbounded*1.0001 {
			t.Fatalf("bounded speed-up %.3f (point %d) exceeds critical-path bound %.3f", bounded, i, unbounded)
		}
	}
}
