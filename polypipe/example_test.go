package polypipe_test

import (
	"fmt"
	"log"

	"repro/polypipe"
)

// ExampleParse parses a two-nest program from DSL source and reports
// its shape.
func ExampleParse() {
	src := `
param N = 8;
for (i = 0; i < N; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < N; i++)
  T: B[i] = g(A[i]);
`
	sc, err := polypipe.Parse("example", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statements: %d, arrays: %d\n", len(sc.Stmts), len(sc.Arrays))
	fmt.Printf("T reads from A: %d access(es)\n", len(sc.Statement("T").ReadsFrom("A")))
	// Output:
	// statements: 2, arrays: 2
	// T reads from A: 1 access(es)
}

// ExampleSession_Detect runs pipeline detection on a row chain and
// prints the pipeline map — every row of T becomes runnable as soon as
// the same row of S has been written.
func ExampleSession_Detect() {
	src := `
for (i = 0; i < 4; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 4; i++)
  T: B[i] = g(A[i], B[i]);
`
	sc, err := polypipe.Parse("chain", src)
	if err != nil {
		log.Fatal(err)
	}
	info, err := polypipe.NewSession().Detect(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(info.Pairs[0].T)
	fmt.Printf("T blocks: %d, in-deps: %d\n",
		len(info.Stmt("T").Blocks), len(info.Stmt("T").InDeps))
	// Output:
	// { S[0] -> T[0]; S[1] -> T[1]; S[2] -> T[2]; S[3] -> T[3] }
	// T blocks: 4, in-deps: 1
}

// ExampleTransformedAST prints the annotated AST (the paper's
// Figure 6 artifact) of a transformed two-nest program.
func ExampleTransformedAST() {
	src := `
for (i = 0; i < 3; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 3; i++)
  T: B[i] = g(A[i]);
`
	sc, err := polypipe.Parse("tiny", src)
	if err != nil {
		log.Fatal(err)
	}
	info, err := polypipe.NewSession().Detect(sc)
	if err != nil {
		log.Fatal(err)
	}
	out, err := polypipe.TransformedAST("tiny_pipelined", info)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	// Output:
	// void tiny_pipelined(void) {
	//   for (c0 = 0; c0 < 3; c0 += 1) {
	//     // task(S): 3 blocks, no in-deps
	//     S(c0);
	//   }
	//   for (c0 = 0; c0 < 3; c0 += 1) {
	//     // task(T): 3 blocks, in-deps on [S]
	//     T(c0);
	//   }
	// }
}

// ExampleSession_Verify shows the correctness check every executor
// must pass: pipelined and baseline runs reproduce the sequential
// result bit-for-bit.
func ExampleSession_Verify() {
	prog := polypipe.Listing1(16)
	if err := polypipe.NewSession(polypipe.WithWorkers(4)).Verify(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all executors agree")
	// Output:
	// all executors agree
}

// ExampleInterpret executes a DSL program through the synthetic-body
// interpreter and the pipelined runtime.
func ExampleInterpret() {
	src := `
for (i = 0; i < 6; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 6; i++)
  T: B[i] = g(A[i], B[i]);
`
	sc, err := polypipe.Parse("run-me", src)
	if err != nil {
		log.Fatal(err)
	}
	prog := polypipe.Interpret(sc)
	s := polypipe.NewSession(polypipe.WithWorkers(2))
	seq, err := s.Run(polypipe.ModeSequential, prog)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := s.Run(polypipe.ModePipelined, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hashes equal: %v, tasks: %d\n", seq.Hash == pipe.Hash, pipe.Tasks)
	// Output:
	// hashes equal: true, tasks: 12
}
