package polypipe

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/cache"
	"repro/internal/cache/disk"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/futures"
	"repro/internal/gogen"
	"repro/internal/isl"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/obsd"
	"repro/internal/par"
	"repro/internal/simsched"
	"repro/internal/stages"
	"repro/internal/trace"
)

// Mode selects the executor a Session.Run call uses. The modes cover
// the paper's evaluation matrix: the sequential reference, the
// cross-loop pipelined executor on its three tasking layers, the
// hybrid pipeline+intra-block executor, and the Polly-style per-loop
// baseline.
type Mode int

const (
	// ModeSequential runs nests in program order (the reference).
	ModeSequential Mode = iota
	// ModePipelined runs the detected pipeline on the OpenMP-tasks-like
	// dependency-table runtime.
	ModePipelined
	// ModeFutures runs the pipeline on the futures tasking layer.
	ModeFutures
	// ModeStages runs the pipeline on the stage-per-nest channel layer.
	ModeStages
	// ModeHybrid combines the pipeline with intra-block parallelism for
	// conflict-free statements (see WithIntraWorkers).
	ModeHybrid
	// ModeParLoop runs the Polly-style per-loop parallel baseline.
	ModeParLoop
)

// String names the mode as the executors report it.
func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModePipelined:
		return "pipelined"
	case ModeFutures:
		return "futures"
	case ModeStages:
		return "stages"
	case ModeHybrid:
		return "hybrid"
	case ModeParLoop:
		return "parloop"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// CacheStats is a point-in-time read of a session cache's counters.
type CacheStats = cache.Stats

// Session is one configured handle on the detection pipeline: a worker
// count, detection options, an optional content-addressed detection
// cache, an optional metrics registry, and a context bounding waits.
// It consolidates what used to be a family of free functions (Detect,
// RunPipelined*, Sim*, Verify, Speedup, TracePipelined) behind one
// object — see docs/API.md for the migration table.
//
// A Session is safe for concurrent use: detection results are frozen,
// the cache is sharded and deduplicates concurrent misses, and Run
// touches only per-call state. The zero configuration (NewSession())
// behaves exactly like the legacy free functions: no cache, no
// registry, background context, GOMAXPROCS workers.
type Session struct {
	workers      int
	intraWorkers int
	opts         Options
	backend      string
	wantBackend  bool
	hybridSched  bool
	autotuneOn   bool
	autotuneBud  int
	ctx          context.Context
	registry     *obs.Registry
	cache        *cache.Cache
	cacheCap     int
	wantCache    bool
	diskDir      string
	diskErr      error

	// Live-telemetry state (WithIntrospection / WithSampler): the
	// embedded introspection server, the continuous sampler feeding
	// /debug/series, and the trace collector behind /debug/trace.
	introAddr   string
	intro       *obsd.Server
	introErr    error
	sampler     *export.Sampler
	sampleIv    time.Duration
	sampleCap   int
	wantSampler bool
	traceC      *trace.Collector
	closed      atomic.Bool
	closeOnce   sync.Once
	closeErr    error

	// programs caches compiled task programs (and, through them, the
	// lowered runtime IR) per SCoP instance, so repeated Run/Simulate/
	// Trace calls on one program build the IR once and reuse it. Keyed
	// by SCoP pointer identity, not content: task bodies are closures
	// over one instance's arrays, so a content-equal SCoP from another
	// instance must not share them.
	progMu   sync.Mutex
	programs map[progKey]*codegen.TaskProgram

	// stmtNames accumulates statement display names of every compiled
	// program (guarded by progMu), so /debug/trace can label spans.
	stmtNames map[int]string

	// tuned caches the autotuned MinBlockIters per SCoP instance
	// (guarded by tunedMu), so WithAutotune pays the search once and
	// every later compile of the same program reuses the result.
	tunedMu sync.Mutex
	tuned   map[*SCoP]int
}

// progKey identifies one compiled program: the SCoP instance plus the
// compile options baked into the task bodies and the IR — the
// intra-block worker count, the hybrid scheduling mode, and the
// (autotuned) blocking granularity.
type progKey struct {
	sc         *SCoP
	intra      int
	hybrid     bool
	blockIters int
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithWorkers sets the execution and detection worker-pool width
// (0 = GOMAXPROCS). It also seeds Options.Workers unless WithOptions
// set one explicitly.
func WithWorkers(n int) SessionOption {
	return func(s *Session) { s.workers = n }
}

// WithIntraWorkers bounds the intra-block worker count ModeHybrid
// gives each conflict-free statement's blocks.
func WithIntraWorkers(n int) SessionOption {
	return func(s *Session) { s.intraWorkers = n }
}

// WithOptions sets the detection options every Detect this session
// issues uses. Options.Workers, when zero, inherits WithWorkers.
func WithOptions(opts Options) SessionOption {
	return func(s *Session) { s.opts = opts }
}

// WithBackend selects the detection backend every Detect this session
// issues uses: "" or "explicit" for Algorithm 1 over enumerated
// relations, BackendSymbolic for the closed-form constraint algebra
// (with automatic fallback to the explicit path outside its fragment).
// It overrides Options.Backend regardless of option order, so it
// composes with WithOptions.
func WithBackend(name string) SessionOption {
	return func(s *Session) { s.backend, s.wantBackend = name, true }
}

// WithHybridSchedule switches pipelined execution to the hybrid
// static/dynamic schedule: at IR lowering, single-predecessor
// producer→consumer pairs (PPN-style point-to-point channels) are
// fused into static chains the finishing worker runs inline — no
// ready-queue insertion, no atomic indegree traffic — while every
// cross-chain edge stays on the work-stealing scheduler. Results are
// bit-identical to the dynamic schedule; runs report the
// "pipeline-hybrid-sched" executor and the runtime.chain_fused
// counter (docs/PERFORMANCE.md, "Autotuning & hybrid scheduling").
func WithHybridSchedule() SessionOption {
	return func(s *Session) { s.hybridSched = true }
}

// WithAutotune enables profile-guided block-size tuning: the first
// pipelined compile of each program runs the internal/autotune
// search — instrumented executions scored by wall time with the
// realized critical path and stall/steal/queue-depth profile read
// back from obs, converging by doubling plus golden-section
// refinement — and every later compile reuses the tuned
// MinBlockIters in place of the fixed Eq. 3 granularity. budget caps
// the candidate evaluations (<= 0 means autotune.DefaultBudget). The
// search itself executes the program repeatedly; call
// Session.Autotune directly to tune eagerly and inspect the trail.
func WithAutotune(budget int) SessionOption {
	return func(s *Session) { s.autotuneOn, s.autotuneBud = true, budget }
}

// WithCache attaches a content-addressed detection cache bounded to
// capacity entries (<= 0 means the default, cache.DefaultCapacity).
// With a cache, Session.Detect on a previously seen SCoP — same
// polyhedral content under any name, any instance — returns the frozen
// cached result instead of re-running Algorithm 1, and concurrent
// misses for one SCoP run Detect once. Cache counters land on the
// session registry (see docs/OBSERVABILITY.md).
func WithCache(capacity int) SessionOption {
	return func(s *Session) { s.wantCache, s.cacheCap = true, capacity }
}

// WithDiskCache backs the in-memory detection cache with the durable
// content-addressed disk tier rooted at dir (created if absent): a
// memory miss probes the directory before running Algorithm 1, and
// completed detections are written through, so a restarted process
// warms from disk at file-read cost instead of re-detecting
// (docs/SERVING.md, "Cache tiers"). It implies WithCache with the
// default capacity unless WithCache set one. A store that cannot be
// opened degrades to the memory-only cache; DiskCacheError reports
// why.
func WithDiskCache(dir string) SessionOption {
	return func(s *Session) { s.diskDir = dir }
}

// WithRegistry attaches a metrics registry: detection phase timings
// and counts, and — with WithCache — the cache.* counters, land here.
func WithRegistry(r *Registry) SessionOption {
	return func(s *Session) { s.registry = r }
}

// WithContext bounds the session's cancelable waits: batch admission
// and cache in-flight waits stop when ctx is done. Detection itself
// always runs to completion (and, when cached, still fills the cache).
func WithContext(ctx context.Context) SessionOption {
	return func(s *Session) { s.ctx = ctx }
}

// WithIntrospection starts the embedded introspection server on addr
// (host:port; port 0 picks a free one — read it back with
// IntrospectionAddr). The server exposes /metrics (Prometheus text
// format), /healthz, /debug/phases, /debug/series (the continuous
// sampler), and /debug/trace (Perfetto JSON of the most recent
// pipelined run); see docs/OBSERVABILITY.md. It implies a registry
// (one is created if WithRegistry did not attach one) and a sampler
// with the default interval unless WithSampler configured it.
// Shut the server down with Session.Close; a failure to listen is
// reported by IntrospectionError.
func WithIntrospection(addr string) SessionOption {
	return func(s *Session) { s.introAddr = addr }
}

// WithSampler configures the continuous time-series sampler: every
// interval the session registry (detect/cache/runtime families,
// scheduler steal/queue-depth/deps counters included) is snapshotted
// into a fixed ring of capacity timestamped samples, served at
// /debug/series. interval <= 0 means export.DefaultSampleInterval;
// capacity <= 0 means export.DefaultSampleCapacity. A sampler implies
// a registry. Without WithIntrospection the sampler still runs and is
// readable via Session.Sampler().
func WithSampler(interval time.Duration, capacity int) SessionOption {
	return func(s *Session) { s.wantSampler, s.sampleIv, s.sampleCap = true, interval, capacity }
}

// NewSession builds a session from the given options.
func NewSession(options ...SessionOption) *Session {
	s := &Session{ctx: context.Background()}
	for _, o := range options {
		o(s)
	}
	if s.opts.Workers == 0 {
		s.opts.Workers = s.workers
	}
	if s.wantBackend {
		s.opts.Backend = s.backend
	}
	if (s.introAddr != "" || s.wantSampler) && s.registry == nil {
		// Live telemetry needs somewhere to read from.
		s.registry = obs.NewRegistry()
	}
	if s.registry != nil && s.opts.Obs == nil {
		s.opts.Obs = &obs.Recorder{Reg: s.registry, Phases: &obs.Phases{}}
	}
	if s.wantCache || s.diskDir != "" {
		s.cache = cache.New(s.cacheCap, s.registry)
		if s.diskDir != "" {
			store, err := disk.New(s.diskDir, s.registry)
			if err != nil {
				s.diskErr = err
			} else {
				s.cache.SetTier(store)
			}
		}
	}
	s.programs = make(map[progKey]*codegen.TaskProgram)
	s.stmtNames = make(map[int]string)
	if s.introAddr != "" || s.wantSampler {
		s.sampler = export.NewSampler(s.registry.Snapshot, s.sampleIv, s.sampleCap)
		s.sampler.Start()
		s.traceC = trace.NewCollector()
		s.traceC.SetRegistry(s.registry)
	}
	if s.introAddr != "" {
		s.intro = obsd.New(s)
		if _, err := s.intro.Serve(s.introAddr); err != nil {
			s.introErr = err
		}
	}
	return s
}

// Registry returns the session's metrics registry, or nil.
func (s *Session) Registry() *Registry { return s.registry }

// Context returns the session's context (never nil).
func (s *Session) Context() context.Context { return s.ctx }

// PhaseSpans returns the compile/run phase timings recorded so far
// (nil without a registry). Part of the obsd.Session surface backing
// /debug/phases.
func (s *Session) PhaseSpans() []obs.PhaseSpan {
	if s.opts.Obs == nil {
		return nil
	}
	return s.opts.Obs.Phases.Spans()
}

// Sampler returns the session's continuous sampler, or nil when
// neither WithSampler nor WithIntrospection was given.
func (s *Session) Sampler() *export.Sampler { return s.sampler }

// TraceSpans returns the task spans of the most recent (or currently
// running) traced pipelined execution; empty without introspection.
func (s *Session) TraceSpans() []trace.Span {
	if s.traceC == nil {
		return nil
	}
	return s.traceC.Spans()
}

// StmtNames maps statement index to display name across every program
// this session has compiled, labelling /debug/trace spans.
func (s *Session) StmtNames() map[int]string {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	out := make(map[int]string, len(s.stmtNames))
	for k, v := range s.stmtNames {
		out[k] = v
	}
	return out
}

// Backends names the compiled isl backend and the session's configured
// detection backend ("explicit" for the default enumerated path). Part
// of the obsd.Session surface: /debug/phases reports both, so live
// telemetry shows which algebra handled a request.
func (s *Session) Backends() (islBackend, detectBackend string) {
	detectBackend = s.opts.Backend
	if detectBackend == "" {
		detectBackend = "explicit"
	}
	return isl.BackendName, detectBackend
}

// Healthy reports whether the session is open (Close not yet called);
// /healthz turns 503 once it is false.
func (s *Session) Healthy() bool { return !s.closed.Load() }

// IntrospectionAddr returns the introspection server's bound listen
// address ("127.0.0.1:43817"), or "" when introspection is off or
// failed to start.
func (s *Session) IntrospectionAddr() string {
	if s.intro == nil {
		return ""
	}
	a := s.intro.Addr()
	if a == nil {
		return ""
	}
	return a.String()
}

// IntrospectionError reports why the introspection server failed to
// start, or nil.
func (s *Session) IntrospectionError() error { return s.introErr }

// Close shuts the session down: the sampler stops, /healthz flips to
// 503, the introspection server drains in-flight scrapes before its
// listener closes (a few seconds' grace), and subsequent
// Detect/DetectBatch/Run/Simulate calls fail with ErrSessionClosed —
// the typed signal a serving layer maps to 503. Calls already in
// flight run to completion. It is idempotent; later calls return the
// first result.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.sampler != nil {
			s.sampler.Stop()
		}
		if s.intro != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			s.closeErr = s.intro.Shutdown(ctx)
		}
	})
	return s.closeErr
}

// DiskCacheError reports why the WithDiskCache store failed to open
// (the session then runs memory-only), or nil.
func (s *Session) DiskCacheError() error { return s.diskErr }

// CacheStats snapshots the session cache's counters; ok is false when
// the session has no cache.
func (s *Session) CacheStats() (st CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// Detect runs (or, with a cache, serves) Algorithm 1 on sc under the
// session's options. After Close it fails with ErrSessionClosed; a
// wait ended by the session context fails with ErrDetectCanceled.
func (s *Session) Detect(sc *SCoP) (*Info, error) {
	return s.detectWith(sc, s.opts)
}

// detectWith is Detect under explicit options — the autotuned
// granularity overrides MinBlockIters without mutating the session.
// The cache keys on options, so tuned and untuned results coexist.
func (s *Session) detectWith(sc *SCoP, opts Options) (*Info, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if s.cache != nil {
		info, err := s.cache.Get(s.ctx, sc, opts)
		return info, wrapCtxErr(err)
	}
	if err := s.ctx.Err(); err != nil {
		return nil, wrapCtxErr(err)
	}
	return core.Detect(sc, opts)
}

// EmitOptions tunes Session.EmitGo — the AOT backend run under a
// session, so the detection cache and fingerprint layers apply to
// emission exactly as they do to Detect.
type EmitOptions struct {
	// Workers is the worker count baked into the emitted main
	// (0 = the session's worker count; the emitted binary can still
	// override it with its first argument).
	Workers int
	// Passes selects the IR pass pipeline: "" or "all" runs every
	// pass, "none" emits the unoptimized program, otherwise a
	// comma-separated subset of pass names (ir.Passes).
	Passes string
	// FuseThreshold caps fused-task iterations (0 = ir default).
	FuseThreshold int
}

// EmitGo detects sc under the session's options (served from the
// cache when one is configured) and writes a standalone Go program
// for it through the AOT backend. Compile phases and ir.* pass
// metrics land in the session's registry. After Close it fails with
// ErrSessionClosed; a SCoP outside the accepted fragment fails with
// ErrNotPipelinable.
func (s *Session) EmitGo(w io.Writer, sc *SCoP, o EmitOptions) error {
	info, err := s.detectWith(sc, s.opts)
	if err != nil {
		return err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = par.Workers(s.workers)
	}
	return gogen.EmitWith(w, info, gogen.EmitOptions{
		Workers:       workers,
		Passes:        o.Passes,
		FuseThreshold: o.FuseThreshold,
		Obs:           s.opts.Obs,
	})
}

// DetectBatch detects a batch of SCoPs, returning results in input
// order with per-item errors. With a cache the batch is partitioned
// into hits and misses and identical misses collapse onto one Detect;
// without one every item is detected. Either way misses fan out over
// the session's worker pool, and items not yet started when the
// session context is done are marked with its error.
func (s *Session) DetectBatch(scs []*SCoP) ([]*Info, []error) {
	if s.closed.Load() {
		errs := make([]error, len(scs))
		for i := range errs {
			errs[i] = ErrSessionClosed
		}
		return make([]*Info, len(scs)), errs
	}
	var infos []*Info
	var errs []error
	if s.cache != nil {
		infos, errs = s.cache.GetBatch(s.ctx, scs, s.opts)
	} else {
		infos, errs = core.DetectBatch(s.ctx, scs, s.opts)
	}
	for i, err := range errs {
		errs[i] = wrapCtxErr(err)
	}
	return infos, errs
}

// compile detects (through the session cache when present) and
// compiles p's pipeline into a task program. Compiled programs are
// cached per SCoP instance, so repeated calls reuse both the program
// and its lowered runtime IR; with a session registry, IR reuse counts
// "runtime.ir_reuse" hits.
func (s *Session) compile(p *Program, intraWorkers int) (*codegen.TaskProgram, error) {
	blockIters := 0
	if s.autotuneOn {
		b, err := s.tunedBlockIters(p)
		if err != nil {
			return nil, err
		}
		blockIters = b
	}
	key := progKey{sc: p.SCoP, intra: intraWorkers, hybrid: s.hybridSched, blockIters: blockIters}
	s.progMu.Lock()
	for _, st := range p.SCoP.Stmts {
		s.stmtNames[st.Index] = st.Name
	}
	prog, ok := s.programs[key]
	s.progMu.Unlock()
	if !ok {
		opts := s.opts
		if blockIters > 0 {
			opts.MinBlockIters = blockIters
		}
		info, err := s.detectWith(p.SCoP, opts)
		if err != nil {
			return nil, fmt.Errorf("exec: detect: %w", err)
		}
		prog, err = codegen.CompileWithOptions(info, codegen.CompileOptions{IntraBlockWorkers: intraWorkers, HybridSchedule: s.hybridSched, Obs: s.opts.Obs})
		if err != nil {
			return nil, fmt.Errorf("exec: compile: %w", err)
		}
		s.progMu.Lock()
		if prev, ok := s.programs[key]; ok {
			prog = prev // concurrent miss: keep the first, IR and all
		} else {
			s.programs[key] = prog
		}
		s.progMu.Unlock()
	}
	prog.LowerObserved(s.opts.Obs)
	return prog, nil
}

// execCompiled executes a compiled program on the unified runtime with
// the session's live telemetry attached: with a registry the runtime.*
// instrument catalogue (steal_count, queue_depth, deps_resolved, stall
// and task histograms) lands on it, and with introspection the trace
// collector is reset and re-armed so /debug/trace shows this run. The
// timed region covers execution only, like exec.RunCompiled.
func (s *Session) execCompiled(p *Program, prog *codegen.TaskProgram, workers int, executor string) Result {
	ir := prog.Lower()
	eo := prog.ExecOpts()
	if s.registry != nil {
		eo.Reg = s.registry
	}
	if s.traceC != nil {
		s.traceC.Reset()
		eo.Trace = s.traceC.Hook()
	}
	p.Reset()
	start := time.Now()
	st := ir.Execute(workers, eo)
	elapsed := time.Since(start)
	return Result{
		Executor:      executor,
		Elapsed:       elapsed,
		Hash:          p.Hash(),
		Tasks:         st.Executed,
		MaxConcurrent: st.MaxConcurrent,
		ChainFused:    st.ChainFused,
	}
}

// Run executes p under the given mode with the session's worker count
// and returns the execution result. Detection goes through the session
// cache when one is attached, so repeated runs (and runs of
// content-identical programs) skip Algorithm 1.
func (s *Session) Run(mode Mode, p *Program) (Result, error) {
	if s.closed.Load() {
		return Result{}, ErrSessionClosed
	}
	if err := s.ctx.Err(); err != nil {
		return Result{}, wrapCtxErr(err)
	}
	workers := par.Workers(s.workers)
	switch mode {
	case ModeSequential:
		return exec.Sequential(p), nil
	case ModeParLoop:
		return exec.ParLoop(p, workers), nil
	case ModePipelined:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		name := "pipeline"
		if s.hybridSched {
			name = "pipeline-hybrid-sched"
		}
		return s.execCompiled(p, prog, workers, name), nil
	case ModeFutures:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		return exec.RunOnLayer(p, prog, futures.New(workers)), nil
	case ModeStages:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		return exec.RunOnLayer(p, prog, stages.New(workers)), nil
	case ModeHybrid:
		prog, err := s.compile(p, s.intraWorkers)
		if err != nil {
			return Result{}, err
		}
		return s.execCompiled(p, prog, workers, "pipeline-hybrid"), nil
	}
	return Result{}, fmt.Errorf("%w %v", ErrUnknownMode, mode)
}

// tunedBlockIters returns the autotuned granularity for p, running
// the search on first use and caching the choice per SCoP instance.
func (s *Session) tunedBlockIters(p *Program) (int, error) {
	s.tunedMu.Lock()
	b, ok := s.tuned[p.SCoP]
	s.tunedMu.Unlock()
	if ok {
		return b, nil
	}
	res, err := s.Autotune(p)
	if err != nil {
		return 0, err
	}
	return res.Chosen, nil
}

// Autotune runs the profile-guided block-size search on p under the
// session's configuration (workers, detection options, hybrid
// scheduling mode) and returns the full result: the tuned
// MinBlockIters, the baseline and best samples, and every evaluated
// candidate's measured profile. The choice is cached per program, so
// later WithAutotune compiles reuse it without searching again. The
// search executes p repeatedly; its arrays are left in the final
// run's state (Run resets them anyway). With a session registry the
// autotune.iterations counter and autotune.block_iters_chosen gauge
// land there.
func (s *Session) Autotune(p *Program) (*AutotuneResult, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if err := s.ctx.Err(); err != nil {
		return nil, wrapCtxErr(err)
	}
	res, err := autotune.Tune(p, autotune.Config{
		Workers: par.Workers(s.workers),
		Detect:  s.opts,
		Hybrid:  s.hybridSched,
		Budget:  s.autotuneBud,
		Obs:     s.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	s.tunedMu.Lock()
	if s.tuned == nil {
		s.tuned = make(map[*SCoP]int)
	}
	s.tuned[p.SCoP] = res.Chosen
	s.tunedMu.Unlock()
	return res, nil
}

// Verify checks that the pipelined and per-loop executions reproduce
// the sequential result bit-for-bit, with detection going through the
// session (cache and context included).
func (s *Session) Verify(p *Program) error {
	want := exec.Sequential(p).Hash
	pipe, err := s.Run(ModePipelined, p)
	if err != nil {
		return err
	}
	if pipe.Hash != want {
		return fmt.Errorf("exec: pipeline result differs from sequential (%x vs %x)", pipe.Hash, want)
	}
	if got, err := s.Run(ModeParLoop, p); err != nil {
		return err
	} else if got.Hash != want {
		return fmt.Errorf("exec: parloop result differs from sequential (%x vs %x)", got.Hash, want)
	}
	return nil
}

// Speedup measures sequential vs pipelined wall time (one run each,
// detection amortized — and cached across calls when the session has a
// cache) and returns the ratio.
func (s *Session) Speedup(p *Program) (seq, pipe time.Duration, speedup float64, err error) {
	prog, err := s.compile(p, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	seqRes := exec.Sequential(p)
	pipeRes := exec.RunCompiled(p, prog, par.Workers(s.workers))
	return seqRes.Elapsed, pipeRes.Elapsed, float64(seqRes.Elapsed) / float64(pipeRes.Elapsed), nil
}

// TracePipelined runs the pipelined program with tracing and returns
// the execution analysis plus an ASCII Gantt chart of statement
// activity (the Figure 2/5 picture).
func (s *Session) TracePipelined(p *Program, ganttWidth int) (trace.Analysis, string, error) {
	prog, err := s.compile(p, 0)
	if err != nil {
		return trace.Analysis{}, "", err
	}
	c := trace.NewCollector()
	p.Reset()
	prog.RunTraced(par.Workers(s.workers), c.Hook())
	a := trace.Analyze(c.Spans())
	names := map[int]string{}
	for _, st := range p.SCoP.Stmts {
		names[st.Index] = st.Name
	}
	return a, trace.Gantt(a.Spans, names, ganttWidth), nil
}

// TraceSVG runs the pipelined program with tracing and writes an SVG
// Gantt timeline of statement activity (the graphical Figure 2).
func (s *Session) TraceSVG(w io.Writer, p *Program) error {
	prog, err := s.compile(p, 0)
	if err != nil {
		return err
	}
	c := trace.NewCollector()
	p.Reset()
	prog.RunTraced(par.Workers(s.workers), c.Hook())
	names := map[int]string{}
	for _, st := range p.SCoP.Stmts {
		names[st.Index] = st.Name
	}
	return trace.WriteSVG(w, c.Spans(), trace.SVGOptions{Names: names})
}

// SimConfig configures Session.Simulate, consolidating the Sim* family
// behind one call.
type SimConfig struct {
	// Mode selects what to simulate: ModePipelined (the default; also
	// accepted as ModeFutures/ModeStages, which share the task graph),
	// ModeHybrid (intra-block scaling per WithIntraWorkers), or
	// ModeParLoop (the Polly-style baseline).
	Mode Mode
	// Procs lists the processor counts to schedule at; all counts share
	// one set of measured task costs, so the points are comparable.
	// Empty means one point at the session's worker count.
	Procs []int
	// Overhead models per-task scheduling cost in virtual time.
	Overhead time.Duration
	// Potential ignores Procs and schedules with unbounded processors —
	// the critical-path bound (Eq. 5 is its per-nest limit).
	Potential bool
}

// Simulate measures p's task costs during one sequential replay and
// returns the simulated speed-up at each requested processor count
// (virtual-time mode — deterministic, works on single-core hosts; see
// internal/simsched). The result slice aligns with cfg.Procs (one
// element when Procs is empty or cfg.Potential is set).
func (s *Session) Simulate(p *Program, cfg SimConfig) ([]float64, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	if err := s.ctx.Err(); err != nil {
		return nil, wrapCtxErr(err)
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = []int{par.Workers(s.workers)}
	}
	if cfg.Mode == ModeParLoop {
		if cfg.Potential {
			return nil, fmt.Errorf("polypipe: Potential applies to the pipelined task graph, not the per-loop baseline")
		}
		out := make([]float64, len(procs))
		for i, pr := range procs {
			_, sch := simsched.SimulateParLoop(p, pr, cfg.Overhead)
			out[i] = sch.Speedup()
		}
		return out, nil
	}
	intra := 0
	if cfg.Mode == ModeHybrid {
		intra = s.intraWorkers
	}
	prog, err := s.compile(p, intra)
	if err != nil {
		return nil, err
	}
	tasks, _ := simsched.MeasureCompiled(p, prog, cfg.Overhead)
	if cfg.Potential {
		n := prog.NumTasks()
		if n < 1 {
			n = 1
		}
		return []float64{simsched.List(tasks, n).Speedup()}, nil
	}
	out := make([]float64, len(procs))
	for i, pr := range procs {
		out[i] = simsched.List(tasks, pr).Speedup()
	}
	return out, nil
}
