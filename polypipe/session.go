package polypipe

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/futures"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/simsched"
	"repro/internal/stages"
	"repro/internal/trace"
)

// Mode selects the executor a Session.Run call uses. The modes cover
// the paper's evaluation matrix: the sequential reference, the
// cross-loop pipelined executor on its three tasking layers, the
// hybrid pipeline+intra-block executor, and the Polly-style per-loop
// baseline.
type Mode int

const (
	// ModeSequential runs nests in program order (the reference).
	ModeSequential Mode = iota
	// ModePipelined runs the detected pipeline on the OpenMP-tasks-like
	// dependency-table runtime.
	ModePipelined
	// ModeFutures runs the pipeline on the futures tasking layer.
	ModeFutures
	// ModeStages runs the pipeline on the stage-per-nest channel layer.
	ModeStages
	// ModeHybrid combines the pipeline with intra-block parallelism for
	// conflict-free statements (see WithIntraWorkers).
	ModeHybrid
	// ModeParLoop runs the Polly-style per-loop parallel baseline.
	ModeParLoop
)

// String names the mode as the executors report it.
func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModePipelined:
		return "pipelined"
	case ModeFutures:
		return "futures"
	case ModeStages:
		return "stages"
	case ModeHybrid:
		return "hybrid"
	case ModeParLoop:
		return "parloop"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// CacheStats is a point-in-time read of a session cache's counters.
type CacheStats = cache.Stats

// Session is one configured handle on the detection pipeline: a worker
// count, detection options, an optional content-addressed detection
// cache, an optional metrics registry, and a context bounding waits.
// It consolidates what used to be a family of free functions (Detect,
// RunPipelined*, Sim*, Verify, Speedup, TracePipelined) behind one
// object — see docs/API.md for the migration table.
//
// A Session is safe for concurrent use: detection results are frozen,
// the cache is sharded and deduplicates concurrent misses, and Run
// touches only per-call state. The zero configuration (NewSession())
// behaves exactly like the legacy free functions: no cache, no
// registry, background context, GOMAXPROCS workers.
type Session struct {
	workers      int
	intraWorkers int
	opts         Options
	ctx          context.Context
	registry     *obs.Registry
	cache        *cache.Cache
	cacheCap     int
	wantCache    bool

	// programs caches compiled task programs (and, through them, the
	// lowered runtime IR) per SCoP instance, so repeated Run/Simulate/
	// Trace calls on one program build the IR once and reuse it. Keyed
	// by SCoP pointer identity, not content: task bodies are closures
	// over one instance's arrays, so a content-equal SCoP from another
	// instance must not share them.
	progMu   sync.Mutex
	programs map[progKey]*codegen.TaskProgram
}

// progKey identifies one compiled program: the SCoP instance plus the
// intra-block worker count compiled into the task bodies.
type progKey struct {
	sc    *SCoP
	intra int
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithWorkers sets the execution and detection worker-pool width
// (0 = GOMAXPROCS). It also seeds Options.Workers unless WithOptions
// set one explicitly.
func WithWorkers(n int) SessionOption {
	return func(s *Session) { s.workers = n }
}

// WithIntraWorkers bounds the intra-block worker count ModeHybrid
// gives each conflict-free statement's blocks.
func WithIntraWorkers(n int) SessionOption {
	return func(s *Session) { s.intraWorkers = n }
}

// WithOptions sets the detection options every Detect this session
// issues uses. Options.Workers, when zero, inherits WithWorkers.
func WithOptions(opts Options) SessionOption {
	return func(s *Session) { s.opts = opts }
}

// WithCache attaches a content-addressed detection cache bounded to
// capacity entries (<= 0 means the default, cache.DefaultCapacity).
// With a cache, Session.Detect on a previously seen SCoP — same
// polyhedral content under any name, any instance — returns the frozen
// cached result instead of re-running Algorithm 1, and concurrent
// misses for one SCoP run Detect once. Cache counters land on the
// session registry (see docs/OBSERVABILITY.md).
func WithCache(capacity int) SessionOption {
	return func(s *Session) { s.wantCache, s.cacheCap = true, capacity }
}

// WithRegistry attaches a metrics registry: detection phase timings
// and counts, and — with WithCache — the cache.* counters, land here.
func WithRegistry(r *Registry) SessionOption {
	return func(s *Session) { s.registry = r }
}

// WithContext bounds the session's cancelable waits: batch admission
// and cache in-flight waits stop when ctx is done. Detection itself
// always runs to completion (and, when cached, still fills the cache).
func WithContext(ctx context.Context) SessionOption {
	return func(s *Session) { s.ctx = ctx }
}

// NewSession builds a session from the given options.
func NewSession(options ...SessionOption) *Session {
	s := &Session{ctx: context.Background()}
	for _, o := range options {
		o(s)
	}
	if s.opts.Workers == 0 {
		s.opts.Workers = s.workers
	}
	if s.registry != nil && s.opts.Obs == nil {
		s.opts.Obs = &obs.Recorder{Reg: s.registry, Phases: &obs.Phases{}}
	}
	if s.wantCache {
		s.cache = cache.New(s.cacheCap, s.registry)
	}
	s.programs = make(map[progKey]*codegen.TaskProgram)
	return s
}

// Registry returns the session's metrics registry, or nil.
func (s *Session) Registry() *Registry { return s.registry }

// Context returns the session's context (never nil).
func (s *Session) Context() context.Context { return s.ctx }

// CacheStats snapshots the session cache's counters; ok is false when
// the session has no cache.
func (s *Session) CacheStats() (st CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// Detect runs (or, with a cache, serves) Algorithm 1 on sc under the
// session's options.
func (s *Session) Detect(sc *SCoP) (*Info, error) {
	if s.cache != nil {
		return s.cache.Get(s.ctx, sc, s.opts)
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	return core.Detect(sc, s.opts)
}

// DetectBatch detects a batch of SCoPs, returning results in input
// order with per-item errors. With a cache the batch is partitioned
// into hits and misses and identical misses collapse onto one Detect;
// without one every item is detected. Either way misses fan out over
// the session's worker pool, and items not yet started when the
// session context is done are marked with its error.
func (s *Session) DetectBatch(scs []*SCoP) ([]*Info, []error) {
	if s.cache != nil {
		return s.cache.GetBatch(s.ctx, scs, s.opts)
	}
	return core.DetectBatch(s.ctx, scs, s.opts)
}

// compile detects (through the session cache when present) and
// compiles p's pipeline into a task program. Compiled programs are
// cached per SCoP instance, so repeated calls reuse both the program
// and its lowered runtime IR; with a session registry, IR reuse counts
// "runtime.ir_reuse" hits.
func (s *Session) compile(p *Program, intraWorkers int) (*codegen.TaskProgram, error) {
	key := progKey{sc: p.SCoP, intra: intraWorkers}
	s.progMu.Lock()
	prog, ok := s.programs[key]
	s.progMu.Unlock()
	if !ok {
		info, err := s.Detect(p.SCoP)
		if err != nil {
			return nil, fmt.Errorf("exec: detect: %w", err)
		}
		prog, err = codegen.CompileWithOptions(info, codegen.CompileOptions{IntraBlockWorkers: intraWorkers})
		if err != nil {
			return nil, fmt.Errorf("exec: compile: %w", err)
		}
		s.progMu.Lock()
		if prev, ok := s.programs[key]; ok {
			prog = prev // concurrent miss: keep the first, IR and all
		} else {
			s.programs[key] = prog
		}
		s.progMu.Unlock()
	}
	prog.LowerObserved(s.opts.Obs)
	return prog, nil
}

// Run executes p under the given mode with the session's worker count
// and returns the execution result. Detection goes through the session
// cache when one is attached, so repeated runs (and runs of
// content-identical programs) skip Algorithm 1.
func (s *Session) Run(mode Mode, p *Program) (Result, error) {
	if err := s.ctx.Err(); err != nil {
		return Result{}, err
	}
	workers := par.Workers(s.workers)
	switch mode {
	case ModeSequential:
		return exec.Sequential(p), nil
	case ModeParLoop:
		return exec.ParLoop(p, workers), nil
	case ModePipelined:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		return exec.RunCompiled(p, prog, workers), nil
	case ModeFutures:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		return exec.RunOnLayer(p, prog, futures.New(workers)), nil
	case ModeStages:
		prog, err := s.compile(p, 0)
		if err != nil {
			return Result{}, err
		}
		return exec.RunOnLayer(p, prog, stages.New(workers)), nil
	case ModeHybrid:
		prog, err := s.compile(p, s.intraWorkers)
		if err != nil {
			return Result{}, err
		}
		res := exec.RunCompiled(p, prog, workers)
		res.Executor = "pipeline-hybrid"
		return res, nil
	}
	return Result{}, fmt.Errorf("polypipe: unknown mode %v", mode)
}

// Verify checks that the pipelined and per-loop executions reproduce
// the sequential result bit-for-bit, with detection going through the
// session (cache and context included).
func (s *Session) Verify(p *Program) error {
	want := exec.Sequential(p).Hash
	pipe, err := s.Run(ModePipelined, p)
	if err != nil {
		return err
	}
	if pipe.Hash != want {
		return fmt.Errorf("exec: pipeline result differs from sequential (%x vs %x)", pipe.Hash, want)
	}
	if got, err := s.Run(ModeParLoop, p); err != nil {
		return err
	} else if got.Hash != want {
		return fmt.Errorf("exec: parloop result differs from sequential (%x vs %x)", got.Hash, want)
	}
	return nil
}

// Speedup measures sequential vs pipelined wall time (one run each,
// detection amortized — and cached across calls when the session has a
// cache) and returns the ratio.
func (s *Session) Speedup(p *Program) (seq, pipe time.Duration, speedup float64, err error) {
	prog, err := s.compile(p, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	seqRes := exec.Sequential(p)
	pipeRes := exec.RunCompiled(p, prog, par.Workers(s.workers))
	return seqRes.Elapsed, pipeRes.Elapsed, float64(seqRes.Elapsed) / float64(pipeRes.Elapsed), nil
}

// TracePipelined runs the pipelined program with tracing and returns
// the execution analysis plus an ASCII Gantt chart of statement
// activity (the Figure 2/5 picture).
func (s *Session) TracePipelined(p *Program, ganttWidth int) (trace.Analysis, string, error) {
	prog, err := s.compile(p, 0)
	if err != nil {
		return trace.Analysis{}, "", err
	}
	c := trace.NewCollector()
	p.Reset()
	prog.RunTraced(par.Workers(s.workers), c.Hook())
	a := trace.Analyze(c.Spans())
	names := map[int]string{}
	for _, st := range p.SCoP.Stmts {
		names[st.Index] = st.Name
	}
	return a, trace.Gantt(a.Spans, names, ganttWidth), nil
}

// TraceSVG runs the pipelined program with tracing and writes an SVG
// Gantt timeline of statement activity (the graphical Figure 2).
func (s *Session) TraceSVG(w io.Writer, p *Program) error {
	prog, err := s.compile(p, 0)
	if err != nil {
		return err
	}
	c := trace.NewCollector()
	p.Reset()
	prog.RunTraced(par.Workers(s.workers), c.Hook())
	names := map[int]string{}
	for _, st := range p.SCoP.Stmts {
		names[st.Index] = st.Name
	}
	return trace.WriteSVG(w, c.Spans(), trace.SVGOptions{Names: names})
}

// SimConfig configures Session.Simulate, consolidating the Sim* family
// behind one call.
type SimConfig struct {
	// Mode selects what to simulate: ModePipelined (the default; also
	// accepted as ModeFutures/ModeStages, which share the task graph),
	// ModeHybrid (intra-block scaling per WithIntraWorkers), or
	// ModeParLoop (the Polly-style baseline).
	Mode Mode
	// Procs lists the processor counts to schedule at; all counts share
	// one set of measured task costs, so the points are comparable.
	// Empty means one point at the session's worker count.
	Procs []int
	// Overhead models per-task scheduling cost in virtual time.
	Overhead time.Duration
	// Potential ignores Procs and schedules with unbounded processors —
	// the critical-path bound (Eq. 5 is its per-nest limit).
	Potential bool
}

// Simulate measures p's task costs during one sequential replay and
// returns the simulated speed-up at each requested processor count
// (virtual-time mode — deterministic, works on single-core hosts; see
// internal/simsched). The result slice aligns with cfg.Procs (one
// element when Procs is empty or cfg.Potential is set).
func (s *Session) Simulate(p *Program, cfg SimConfig) ([]float64, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = []int{par.Workers(s.workers)}
	}
	if cfg.Mode == ModeParLoop {
		if cfg.Potential {
			return nil, fmt.Errorf("polypipe: Potential applies to the pipelined task graph, not the per-loop baseline")
		}
		out := make([]float64, len(procs))
		for i, pr := range procs {
			_, sch := simsched.SimulateParLoop(p, pr, cfg.Overhead)
			out[i] = sch.Speedup()
		}
		return out, nil
	}
	intra := 0
	if cfg.Mode == ModeHybrid {
		intra = s.intraWorkers
	}
	prog, err := s.compile(p, intra)
	if err != nil {
		return nil, err
	}
	tasks, _ := simsched.MeasureCompiled(p, prog, cfg.Overhead)
	if cfg.Potential {
		n := prog.NumTasks()
		if n < 1 {
			n = 1
		}
		return []float64{simsched.List(tasks, n).Speedup()}, nil
	}
	out := make([]float64, len(procs))
	for i, pr := range procs {
		out[i] = simsched.List(tasks, pr).Speedup()
	}
	return out, nil
}
