package polypipe

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeBuilderSurface(t *testing.T) {
	// Build a program exclusively through the re-exported affine
	// surface.
	data := make([]float64, 10)
	b := NewBuilder("surface")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", NewDomain("S", ConstBound(0, 0, 10))).
		Writes("A", Var(1, 0)).
		Reads("A", Linear(-1, 1)).
		Body(func(iv Vec) {
			i := iv[0]
			prev := 0.0
			if i > 0 {
				prev = data[i-1]
			}
			data[i] = prev + float64(i)
		})
	b.Stmt("T", RectDomain("T", 5)).
		Writes("B", Var(1, 0)).
		Reads("A", FloorDiv(Linear(0, 2), 1)). // 2i/1 = 2i
		Body(func(iv Vec) { _ = data[2*iv[0]] })
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("T").ReadsFrom("A")[0].Card() != 5 {
		t.Fatal("builder surface produced wrong access relation")
	}
	if c := Const(0, 7); c.Eval(Vec{}) != 7 {
		t.Fatal("Const re-export broken")
	}
}

func TestFacadeRuntimeSurface(t *testing.T) {
	r := NewRuntime(2)
	done := false
	r.Submit(Task{Fn: func() { done = true }, Out: 0, Serial: -1})
	r.Close()
	if !done {
		t.Fatal("task did not run")
	}
}

func TestFacadeEmitGo(t *testing.T) {
	sc, err := Parse("gen", `
for (i = 0; i < 5; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 5; i++)
  T: B[i] = g(A[i]);
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := EmitGo(&b, info, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "func runPipelined(workers int)") {
		t.Fatal("generated program missing runtime")
	}
}

func TestFacadeTraceSVG(t *testing.T) {
	var b strings.Builder
	if err := TraceSVG(&b, Listing3(12), 2, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("not SVG")
	}
}

func TestFacadeHybridAndSim(t *testing.T) {
	p := MMChain(2, 12, MM)
	res, err := RunPipelinedHybrid(p, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != RunSequential(p).Hash {
		t.Fatal("hybrid differs")
	}
	if _, err := SimHybridSpeedup(p, 2, 2, Options{}, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if sp := SimParLoopSpeedup(p, 4, 0); sp < 1 {
		t.Fatalf("parloop sim speedup = %f", sp)
	}
}

func TestFacadeSCoPJSON(t *testing.T) {
	sc, err := Parse("json", `
for (i = 0; i < 4; i++)
  S: A[i] = f(B[i]);
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSCoP(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSCoP(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "json" || len(back.Stmts) != 1 {
		t.Fatal("round trip broken")
	}
	if _, err := UnmarshalSCoP([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFacadeFuturesLayer(t *testing.T) {
	p := Listing1(12)
	want := RunSequential(p).Hash
	res, err := RunPipelinedFutures(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != want {
		t.Fatal("futures layer differs")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	// A hazardous SCoP must surface detection errors through every
	// entry point.
	b := NewBuilder("hazard")
	b.Array("A", 1)
	b.Stmt("S", RectDomain("S", 4)).Writes("A", Var(1, 0)).Body(func(Vec) {})
	b.Stmt("T", RectDomain("T", 4)).Writes("A", Var(1, 0)).Body(func(Vec) {})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Name: "hazard", SCoP: sc, Reset: func() {}, Hash: func() uint64 { return 0 }}
	if _, err := RunPipelined(p, 2, Options{}); err == nil {
		t.Error("RunPipelined accepted hazardous scop")
	}
	if _, err := SimSpeedup(p, 2, Options{}, 0); err == nil {
		t.Error("SimSpeedup accepted hazardous scop")
	}
	if _, err := PotentialSpeedup(p, Options{}); err == nil {
		t.Error("PotentialSpeedup accepted hazardous scop")
	}
	if _, _, err := TracePipelined(p, 2, Options{}, 10); err == nil {
		t.Error("TracePipelined accepted hazardous scop")
	}
	if _, _, _, err := Speedup(p, 2, Options{}); err == nil {
		t.Error("Speedup accepted hazardous scop")
	}
	if _, err := RunPipelinedHybrid(p, 2, 2, Options{}); err == nil {
		t.Error("hybrid accepted hazardous scop")
	}
	if _, err := RunPipelinedFutures(p, 2, Options{}); err == nil {
		t.Error("futures accepted hazardous scop")
	}
	if _, err := SimSpeedups(p, Options{}, 0, 2); err == nil {
		t.Error("SimSpeedups accepted hazardous scop")
	}
	if _, err := SimHybridSpeedup(p, 2, 2, Options{}, 0); err == nil {
		t.Error("SimHybridSpeedup accepted hazardous scop")
	}
	var sb strings.Builder
	if err := TraceSVG(&sb, p, 2, Options{}); err == nil {
		t.Error("TraceSVG accepted hazardous scop")
	}
	if err := EmitGo(&sb, &Info{SCoP: sc}, 2); err == nil {
		t.Error("EmitGo accepted incomplete info")
	}
}

func TestFacadeStagesLayer(t *testing.T) {
	p := Listing3(14)
	want := RunSequential(p).Hash
	res, err := RunPipelinedStages(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != want {
		t.Fatal("stages layer differs")
	}
}

func TestParseWithParamsFacade(t *testing.T) {
	sc, err := ParseWithParams("px", `
for (i = 0; i < N; i++)
  S: A[i] = f(A[i]);
`, map[string]int{"N": 7})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("S").Domain.Card() != 7 {
		t.Fatal("binding not applied")
	}
}

func TestAutoGranularity(t *testing.T) {
	p := Listing1(24)
	best, speedup, err := AutoGranularity(p, 4, 2*time.Microsecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 || best > 64 || speedup <= 0 {
		t.Fatalf("best = %d, speedup = %f", best, speedup)
	}
	// The chosen granularity must still verify.
	if err := Verify(p, 4, Options{MinBlockIters: best}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReport(t *testing.T) {
	info, err := Detect(Listing3(12).SCoP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := BlockReport(info)
	for _, want := range []string{"S: 36 blocks over 121 iterations", "waits for S[", "... ", "more blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("block report missing %q:\n%s", want, out)
		}
	}
}
