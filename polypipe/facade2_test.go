package polypipe

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeBuilderSurface(t *testing.T) {
	// Build a program exclusively through the re-exported affine
	// surface.
	data := make([]float64, 10)
	b := NewBuilder("surface")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", NewDomain("S", ConstBound(0, 0, 10))).
		Writes("A", Var(1, 0)).
		Reads("A", Linear(-1, 1)).
		Body(func(iv Vec) {
			i := iv[0]
			prev := 0.0
			if i > 0 {
				prev = data[i-1]
			}
			data[i] = prev + float64(i)
		})
	b.Stmt("T", RectDomain("T", 5)).
		Writes("B", Var(1, 0)).
		Reads("A", FloorDiv(Linear(0, 2), 1)). // 2i/1 = 2i
		Body(func(iv Vec) { _ = data[2*iv[0]] })
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("T").ReadsFrom("A")[0].Card() != 5 {
		t.Fatal("builder surface produced wrong access relation")
	}
	if c := Const(0, 7); c.Eval(Vec{}) != 7 {
		t.Fatal("Const re-export broken")
	}
}

func TestFacadeRuntimeSurface(t *testing.T) {
	r := NewRuntime(2)
	done := false
	r.Submit(Task{Fn: func() { done = true }, Out: 0, Serial: -1})
	r.Close()
	if !done {
		t.Fatal("task did not run")
	}
}

func TestFacadeEmitGo(t *testing.T) {
	sc, err := Parse("gen", `
for (i = 0; i < 5; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 5; i++)
  T: B[i] = g(A[i]);
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := NewSession().Detect(sc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := EmitGo(&b, info, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "func runPipelined(workers int)") {
		t.Fatal("generated program missing runtime")
	}
}

func TestFacadeTraceSVG(t *testing.T) {
	var b strings.Builder
	if err := NewSession(WithWorkers(2)).TraceSVG(&b, Listing3(12)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("not SVG")
	}
}

func TestFacadeHybridAndSim(t *testing.T) {
	p := MMChain(2, 12, MM)
	s := NewSession(WithWorkers(2), WithIntraWorkers(2))
	res, err := s.Run(ModeHybrid, p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatal("hybrid differs")
	}
	if _, err := s.Simulate(p, SimConfig{Mode: ModeHybrid, Procs: []int{2}, Overhead: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	sp, err := s.Simulate(p, SimConfig{Mode: ModeParLoop, Procs: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if sp[0] < 1 {
		t.Fatalf("parloop sim speedup = %f", sp[0])
	}
}

func TestFacadeSCoPJSON(t *testing.T) {
	sc, err := Parse("json", `
for (i = 0; i < 4; i++)
  S: A[i] = f(B[i]);
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSCoP(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSCoP(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "json" || len(back.Stmts) != 1 {
		t.Fatal("round trip broken")
	}
	if _, err := UnmarshalSCoP([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestFacadeFuturesLayer(t *testing.T) {
	p := Listing1(12)
	s := NewSession(WithWorkers(3))
	seq, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ModeFutures, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatal("futures layer differs")
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	// A hazardous SCoP must surface detection errors through every
	// entry point.
	b := NewBuilder("hazard")
	b.Array("A", 1)
	b.Stmt("S", RectDomain("S", 4)).Writes("A", Var(1, 0)).Body(func(Vec) {})
	b.Stmt("T", RectDomain("T", 4)).Writes("A", Var(1, 0)).Body(func(Vec) {})
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Name: "hazard", SCoP: sc, Reset: func() {}, Hash: func() uint64 { return 0 }}
	s := NewSession(WithWorkers(2), WithIntraWorkers(2))
	for _, mode := range []Mode{ModePipelined, ModeFutures, ModeStages, ModeHybrid} {
		if _, err := s.Run(mode, p); err == nil {
			t.Errorf("Run(%v) accepted hazardous scop", mode)
		}
	}
	if _, err := s.Simulate(p, SimConfig{Procs: []int{2}}); err == nil {
		t.Error("Simulate accepted hazardous scop")
	}
	if _, err := s.Simulate(p, SimConfig{Procs: []int{2, 4}}); err == nil {
		t.Error("multi-proc Simulate accepted hazardous scop")
	}
	if _, err := s.Simulate(p, SimConfig{Mode: ModeHybrid, Procs: []int{2}}); err == nil {
		t.Error("hybrid Simulate accepted hazardous scop")
	}
	if _, _, err := s.TracePipelined(p, 10); err == nil {
		t.Error("TracePipelined accepted hazardous scop")
	}
	if _, _, _, err := s.Speedup(p); err == nil {
		t.Error("Speedup accepted hazardous scop")
	}
	var sb strings.Builder
	if err := s.TraceSVG(&sb, p); err == nil {
		t.Error("TraceSVG accepted hazardous scop")
	}
	if err := EmitGo(&sb, &Info{SCoP: sc}, 2); err == nil {
		t.Error("EmitGo accepted incomplete info")
	}
}

func TestFacadeStagesLayer(t *testing.T) {
	p := Listing3(14)
	s := NewSession(WithWorkers(2))
	seq, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ModeStages, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatal("stages layer differs")
	}
}

func TestParseWithParamsFacade(t *testing.T) {
	sc, err := ParseWithParams("px", `
for (i = 0; i < N; i++)
  S: A[i] = f(A[i]);
`, map[string]int{"N": 7})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("S").Domain.Card() != 7 {
		t.Fatal("binding not applied")
	}
}

func TestAutoGranularity(t *testing.T) {
	p := Listing1(24)
	best, speedup, err := AutoGranularity(p, 4, 2*time.Microsecond, 64)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 || best > 64 || speedup <= 0 {
		t.Fatalf("best = %d, speedup = %f", best, speedup)
	}
	// The chosen granularity must still verify.
	vs := NewSession(WithWorkers(4), WithOptions(Options{MinBlockIters: best}))
	if err := vs.Verify(p); err != nil {
		t.Fatal(err)
	}
}

func TestBlockReport(t *testing.T) {
	info, err := NewSession().Detect(Listing3(12).SCoP)
	if err != nil {
		t.Fatal(err)
	}
	out := BlockReport(info)
	for _, want := range []string{"S: 36 blocks over 121 iterations", "waits for S[", "... ", "more blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("block report missing %q:\n%s", want, out)
		}
	}
}
