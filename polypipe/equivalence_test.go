package polypipe_test

import (
	"testing"

	"repro/internal/kernels"
	"repro/polypipe"
)

// TestCrossBackendEquivalence: the three tasking backends are thin
// adapters over one runtime scheduler and one compiled task-program
// IR, so on every Table 9 kernel the pipelined, futures, and stages
// executions must leave bit-identical array state to the sequential
// reference — and the simulator's cost-measurement pass, which
// executes the same IR, must too. Run under -race this also exercises
// the scheduler's work-stealing paths across backends.
func TestCrossBackendEquivalence(t *testing.T) {
	for _, spec := range kernels.Table9 {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := kernels.BuildTable9(spec, 8, 2)
			s := polypipe.NewSession(polypipe.WithWorkers(4))
			seq, err := s.Run(polypipe.ModeSequential, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []polypipe.Mode{
				polypipe.ModePipelined, polypipe.ModeFutures, polypipe.ModeStages,
			} {
				res, err := s.Run(mode, p)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if res.Hash != seq.Hash {
					t.Errorf("%v: hash %x != sequential %x", mode, res.Hash, seq.Hash)
				}
			}
			// The simulator measures per-task cost by replaying the same
			// compiled IR in a topological order; it documents leaving
			// the program reset, and an execution after it must still be
			// bit-identical to the reference.
			if _, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{4}}); err != nil {
				t.Fatal(err)
			}
			p.Reset()
			reset := p.Hash()
			if _, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{2, 4}}); err != nil {
				t.Fatal(err)
			}
			if got := p.Hash(); got != reset {
				t.Errorf("simulate left non-reset state: hash %x != %x", got, reset)
			}
			res, err := s.Run(polypipe.ModePipelined, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Hash != seq.Hash {
				t.Errorf("pipelined after simulate: hash %x != sequential %x", res.Hash, seq.Hash)
			}
		})
	}
}
