package polypipe

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Observability re-exports: the measurement substrate every perf PR
// reports against (see docs/OBSERVABILITY.md).
type (
	// Metrics is the full observation of one pipelined run: result,
	// phase timings, span analysis, critical path, metrics snapshot.
	Metrics = exec.Observation
	// Registry is the dependency-free metrics store (counters, gauges,
	// histograms; all safe under -race).
	Registry = obs.Registry
	// Recorder bundles a registry with a phase timer and event sink.
	Recorder = obs.Recorder
	// PhaseSpan is one timed compile or run phase.
	PhaseSpan = obs.PhaseSpan
	// Analysis summarizes a traced execution (Eq. 5/6 aggregates,
	// stall, utilization).
	Analysis = trace.Analysis
	// CriticalPath is the realized longest chain of an executed DAG.
	CriticalPath = trace.CriticalPath
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewRecorder returns a recorder over a fresh registry.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// Observe runs the program's cross-loop pipeline with the full
// observability layer enabled — detection-phase timings, runtime
// queue/stall/utilization metrics, per-task spans, and the realized
// critical path — and returns everything measured. The observed run
// stays within a few percent of an unobserved one (the instruments are
// single atomic operations; see BenchmarkObservationOverhead).
func Observe(p *Program, workers int, opts Options) (*Metrics, error) {
	return exec.PipelinedObserved(p, workers, opts, nil)
}

// ObserveHybrid is Observe under the static/dynamic hybrid schedule
// (the Session-level WithHybridSchedule, standalone): single-
// predecessor dependence chains are fused into statically ordered
// runs, and the snapshot carries runtime.chain_fused alongside the
// usual runtime.* readings. rec, when non-nil, receives the phase
// spans and metrics (pass one that already holds autotune.* counters
// to get a single combined snapshot).
func ObserveHybrid(p *Program, workers int, opts Options, rec *Recorder) (*Metrics, error) {
	return exec.PipelinedObservedWith(p, workers, opts, codegen.CompileOptions{HybridSchedule: true}, rec)
}

// TraceJSON runs the pipelined program with tracing and writes a
// Chrome/Perfetto trace_event JSON timeline: one track per worker, one
// per statement, flow arrows along data-dependency edges. Open the
// file at ui.perfetto.dev or chrome://tracing.
func TraceJSON(w io.Writer, p *Program, workers int, opts Options) error {
	o, err := exec.PipelinedObserved(p, workers, opts, nil)
	if err != nil {
		return err
	}
	return o.WriteTraceJSON(w)
}

// AmplifyWork makes every dynamic statement instance of p cost an
// extra d of wall-clock time (a timed wait), leaving the computed
// values and the verification Hash unchanged. It is the listing
// kernels' counterpart of the Table 9 programs' SIZE knob: their raw
// bodies are a handful of float ops, so on wall-clock runs
// task-management overhead swamps the §6 run-time behaviour the
// observability layer exists to show (overlap, stall, utilization).
// Because the cost is waiting rather than computing, schedule overlap
// is visible even on single-core hosts (see kernels.Amplify).
func AmplifyWork(p *Program, d time.Duration) { kernels.Amplify(p, d) }

// Kernel builds one of the built-in workloads by name: "listing1",
// "listing3", the Table 9 programs "P1".."P10" (n, size), or a
// matrix-chain kernel like "3gmm" ({2,3,...}{mm,mmt,gmm,gmmt}, rows).
// The shared vocabulary of the trace-viz, pipeline-stats, and
// bench-pipeline commands.
func Kernel(name string, n, size, rows int) (*Program, error) {
	switch {
	case name == "listing1":
		return Listing1(n), nil
	case name == "listing3":
		return Listing3(n), nil
	case strings.HasPrefix(name, "P"):
		return Table9Program(name, n, size)
	}
	if len(name) >= 3 {
		chain, err := strconv.Atoi(name[:1])
		if err == nil {
			for _, v := range []Variant{MM, MMT, GMM, GMMT} {
				if name[1:] == v.String() {
					return MMChain(chain, rows, v), nil
				}
			}
		}
	}
	return nil, fmt.Errorf("unknown kernel %q", name)
}
