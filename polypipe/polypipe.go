// Package polypipe is the public API of the cross-loop pipeline
// detection library — a pure-Go reproduction of "A Pipeline Pattern
// Detection Technique in Polly" (Talaashrafi, Doerfert, Moreno Maza,
// IMPACT 2022).
//
// The library detects pipeline patterns between consecutive for-loop
// nests of a static control program and executes them as dependent
// tasks on a minimal OpenMP-tasks-like runtime. Programs enter the
// system either through the scop builder (programmatic) or the small
// C-like DSL (textual); the full pipeline is
//
//	SCoP → Detect (pipeline/blocking/dependency maps, Algorithm 1)
//	     → schedule tree (Algorithm 2) → annotated AST (Figure 6)
//	     → task program → tasking runtime.
//
// Typical use:
//
//	prog := polypipe.Listing1(64)
//	s := polypipe.NewSession(polypipe.WithWorkers(4))
//	res, err := s.Run(polypipe.ModePipelined, prog)
//
// or, from DSL source:
//
//	sc, err := polypipe.Parse("mine", src)
//	info, err := polypipe.NewSession().Detect(sc)
//	fmt.Println(polypipe.TransformedAST("mine_pipelined", info))
package polypipe

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gogen"
	"repro/internal/interp"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/schedtree"
	"repro/internal/scop"
	"repro/internal/tasking"
)

// Re-exported core types: the facade is the supported import surface.
type (
	// SCoP is a static control program: consecutive loop nests with
	// affine accesses.
	SCoP = scop.SCoP
	// Builder assembles SCoPs programmatically.
	Builder = scop.Builder
	// Options tunes pipeline detection (task granularity, ablations,
	// and Workers — the detection worker-pool width, 0 = GOMAXPROCS;
	// results are bit-identical across widths, see docs/PERFORMANCE.md).
	Options = core.Options
	// Info is the detection result (pipeline maps, blocks, deps).
	Info = core.Info
	// Program couples a SCoP with runnable state (reset + hash).
	Program = kernels.Program
	// Result reports one execution (time, hash, task stats).
	Result = exec.Result
	// Variant selects the matrix-chain kernel flavour.
	Variant = kernels.Variant
	// Task is a unit of work for the tasking runtime.
	Task = tasking.Task
	// Runtime is the OpenMP-tasks-like dependency-aware executor.
	Runtime = tasking.Runtime
	// AutotuneResult is the outcome of a profile-guided block-size
	// search (Session.Autotune / WithAutotune): the tuned
	// MinBlockIters plus every evaluated candidate's measured profile.
	AutotuneResult = autotune.Result
	// AutotuneSample is one evaluated candidate granularity with its
	// instrumented-run profile (elapsed, critical path, stall, steals,
	// queue peak, fused chains).
	AutotuneSample = autotune.Sample
)

// Matrix-chain variants (Figure 11 kernels).
const (
	MM   = kernels.MM
	MMT  = kernels.MMT
	GMM  = kernels.GMM
	GMMT = kernels.GMMT
)

// BackendSymbolic selects the symbolic (constraint-form) detection
// backend — closed-form pipeline/blocking/dependency maps whose cost is
// independent of domain size, with automatic fallback to the explicit
// path outside its fragment. Pass to WithBackend or Options.Backend.
const BackendSymbolic = core.BackendSymbolic

// NewBuilder starts a programmatic SCoP definition.
func NewBuilder(name string) *Builder { return scop.NewBuilder(name) }

// Parse parses DSL source (see package lang for the grammar) into an
// analysis-only SCoP.
func Parse(name, src string) (*SCoP, error) { return lang.Parse(name, src) }

// ParseWithParams parses DSL source with caller-supplied parameter
// bindings (overriding same-named `param` defaults in the source), so
// one program text instantiates at several sizes.
func ParseWithParams(name, src string, params map[string]int) (*SCoP, error) {
	return lang.ParseWithParams(name, src, params)
}

// Unparse renders a SCoP back to DSL source (the inverse of Parse for
// SCoPs with symbolic domains; bodies are dropped).
func Unparse(sc *SCoP) (string, error) { return lang.Unparse(sc) }

// AutoGranularity searches for the task granularity (MinBlockIters)
// that maximizes the simulated speed-up at the given processor count
// and per-task overhead — a pragmatic answer to the paper's §7 open
// question of choosing good task granularity. It sweeps powers of two
// up to maxIters (default 256 when <= 0) and returns the best setting
// with its simulated speed-up.
func AutoGranularity(p *Program, procs int, overhead time.Duration, maxIters int) (best int, speedup float64, err error) {
	if maxIters <= 0 {
		maxIters = 256
	}
	best, speedup = 1, 0
	for k := 1; k <= maxIters; k *= 2 {
		sess := NewSession(WithOptions(Options{MinBlockIters: k}))
		out, err := sess.Simulate(p, SimConfig{Procs: []int{procs}, Overhead: overhead})
		if err != nil {
			return 0, 0, err
		}
		if out[0] > speedup {
			best, speedup = k, out[0]
		}
	}
	return best, speedup, nil
}

// MarshalSCoP serializes a SCoP's polyhedral description as JSON (the
// interchange format; bodies are not serialized).
func MarshalSCoP(sc *SCoP) ([]byte, error) { return scop.ToJSON(sc) }

// UnmarshalSCoP rebuilds an analysis-only SCoP from its JSON
// description.
func UnmarshalSCoP(data []byte) (*SCoP, error) { return scop.FromJSON(data) }

// ScheduleTree renders the Algorithm 2 schedule tree of a detection
// result.
func ScheduleTree(info *Info) string {
	return schedtree.String(schedtree.Build(info))
}

// TransformedAST renders the annotated AST of the transformed program
// (the Figure 6 artifact).
func TransformedAST(fnName string, info *Info) (string, error) {
	fn, err := ast.Generate(fnName, schedtree.Build(info))
	if err != nil {
		return "", err
	}
	return ast.Render(fn), nil
}

// PipelineReport renders a human-readable summary of the detection:
// pipeline maps per dependent pair and block/dependency counts per
// statement.
func PipelineReport(info *Info) string {
	var b strings.Builder
	b.WriteString("pipeline pairs:\n")
	for _, p := range info.Pairs {
		b.WriteString("  ")
		b.WriteString(p.Src.Name)
		b.WriteString(" -> ")
		b.WriteString(p.Dst.Name)
		b.WriteString(": ")
		if p.T.Card() <= 12 {
			b.WriteString(p.T.String())
		} else {
			b.WriteString(shortMapSummary(p))
		}
		b.WriteString("\n")
	}
	b.WriteString("statements:\n")
	for _, si := range info.Stmts {
		deps := make([]string, 0, len(si.InDeps))
		for _, d := range si.InDeps {
			deps = append(deps, d.Src.Name)
		}
		b.WriteString("  ")
		b.WriteString(si.Stmt.Name)
		b.WriteString(": ")
		b.WriteString(report2(len(si.Blocks), deps))
		b.WriteString("\n")
	}
	return b.String()
}

// shortMapSummary prints a large pipeline map symbolically when its
// closed form can be reconstructed (the paper's §4.1 presentation),
// falling back to a cardinality summary.
func shortMapSummary(p core.PipelinePair) string {
	if exprs, ok := aff.Recognize(p.T, 4, 8, 4); ok {
		parts := make([]string, len(exprs))
		for d, e := range exprs {
			parts[d] = fmt.Sprintf("o%d = %s", d, e)
		}
		return fmt.Sprintf("{ %s[i..] -> %s[o..] : %s } (%d pairs)",
			p.Src.Name, p.Dst.Name, strings.Join(parts, ", "), p.T.Card())
	}
	return "(" + p.T.Domain().Space().String() + " -> " +
		p.T.Range().Space().String() + ", " +
		strconv.Itoa(p.T.Card()) + " pairs)"
}

func report2(blocks int, deps []string) string {
	s := strconv.Itoa(blocks) + " blocks"
	if len(deps) == 0 {
		return s + ", no in-deps"
	}
	return s + ", in-deps on [" + strings.Join(deps, ", ") + "]"
}

// BlockReport renders the pipeline blocks of every statement: leaders,
// sizes, and block-level in-dependencies — the Eq. 2/3/4 structures
// made concrete. Intended for small programs; large statements are
// summarized.
func BlockReport(info *Info) string {
	var b strings.Builder
	for _, si := range info.Stmts {
		fmt.Fprintf(&b, "%s: %d blocks over %d iterations\n",
			si.Stmt.Name, len(si.Blocks), si.Stmt.Domain.Card())
		limit := len(si.Blocks)
		if limit > 12 {
			limit = 12
		}
		for i := 0; i < limit; i++ {
			blk := si.Blocks[i]
			fmt.Fprintf(&b, "  block %v: %d iteration(s)", blk.Leader, len(blk.Members))
			for _, dep := range si.InDeps {
				for _, q := range dep.Rel.Lookup(blk.Leader) {
					fmt.Fprintf(&b, ", waits for %s%v", dep.Src.Name, q)
				}
			}
			b.WriteString("\n")
		}
		if limit < len(si.Blocks) {
			fmt.Fprintf(&b, "  ... %d more blocks\n", len(si.Blocks)-limit)
		}
	}
	return b.String()
}

// EmitGo writes a standalone, stdlib-only Go main package executing
// the transformed program: statement bodies, block loops, the task
// table with integer dependency addresses, an embedded minimal
// tasking runtime, and a self-verifying main (the textual analogue of
// the paper's final code-generation phase).
func EmitGo(w io.Writer, info *Info, workers int) error {
	return gogen.Emit(w, info, workers)
}

// Interpret wraps an analysis-only SCoP (e.g. one produced by Parse)
// into a runnable Program with deterministic synthetic statement
// bodies that read and write exactly the declared cells — an
// executable twin of the polyhedral description.
func Interpret(sc *SCoP) *Program { return interp.Programify(sc) }

// Workload constructors (the paper's evaluation programs).

// Listing1 builds the paper's motivating two-nest stencil (Listing 1).
func Listing1(n int) *Program { return kernels.Listing1(n) }

// Listing3 builds the three-nest extension (Listing 3).
func Listing3(n int) *Program { return kernels.Listing3(n) }

// Table9Program builds one of the P1–P10 compute-intensive programs.
func Table9Program(name string, n, size int) (*Program, error) {
	return kernels.Table9Program(name, n, size)
}

// MMChain builds an n-long matrix-multiplication chain kernel.
func MMChain(n, rows int, v Variant) *Program { return kernels.MMChain(n, rows, v) }
