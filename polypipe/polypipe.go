// Package polypipe is the public API of the cross-loop pipeline
// detection library — a pure-Go reproduction of "A Pipeline Pattern
// Detection Technique in Polly" (Talaashrafi, Doerfert, Moreno Maza,
// IMPACT 2022).
//
// The library detects pipeline patterns between consecutive for-loop
// nests of a static control program and executes them as dependent
// tasks on a minimal OpenMP-tasks-like runtime. Programs enter the
// system either through the scop builder (programmatic) or the small
// C-like DSL (textual); the full pipeline is
//
//	SCoP → Detect (pipeline/blocking/dependency maps, Algorithm 1)
//	     → schedule tree (Algorithm 2) → annotated AST (Figure 6)
//	     → task program → tasking runtime.
//
// Typical use:
//
//	prog := polypipe.Listing1(64)
//	res, err := polypipe.RunPipelined(prog, 4, polypipe.Options{})
//
// or, from DSL source:
//
//	sc, err := polypipe.Parse("mine", src)
//	info, err := polypipe.Detect(sc, polypipe.Options{})
//	fmt.Println(polypipe.TransformedAST("mine_pipelined", info))
package polypipe

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gogen"
	"repro/internal/interp"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/schedtree"
	"repro/internal/scop"
	"repro/internal/tasking"
	"repro/internal/trace"
)

// Re-exported core types: the facade is the supported import surface.
type (
	// SCoP is a static control program: consecutive loop nests with
	// affine accesses.
	SCoP = scop.SCoP
	// Builder assembles SCoPs programmatically.
	Builder = scop.Builder
	// Options tunes pipeline detection (task granularity, ablations,
	// and Workers — the detection worker-pool width, 0 = GOMAXPROCS;
	// results are bit-identical across widths, see docs/PERFORMANCE.md).
	Options = core.Options
	// Info is the detection result (pipeline maps, blocks, deps).
	Info = core.Info
	// Program couples a SCoP with runnable state (reset + hash).
	Program = kernels.Program
	// Result reports one execution (time, hash, task stats).
	Result = exec.Result
	// Variant selects the matrix-chain kernel flavour.
	Variant = kernels.Variant
	// Task is a unit of work for the tasking runtime.
	Task = tasking.Task
	// Runtime is the OpenMP-tasks-like dependency-aware executor.
	Runtime = tasking.Runtime
)

// Matrix-chain variants (Figure 11 kernels).
const (
	MM   = kernels.MM
	MMT  = kernels.MMT
	GMM  = kernels.GMM
	GMMT = kernels.GMMT
)

// NewBuilder starts a programmatic SCoP definition.
func NewBuilder(name string) *Builder { return scop.NewBuilder(name) }

// Parse parses DSL source (see package lang for the grammar) into an
// analysis-only SCoP.
func Parse(name, src string) (*SCoP, error) { return lang.Parse(name, src) }

// ParseWithParams parses DSL source with caller-supplied parameter
// bindings (overriding same-named `param` defaults in the source), so
// one program text instantiates at several sizes.
func ParseWithParams(name, src string, params map[string]int) (*SCoP, error) {
	return lang.ParseWithParams(name, src, params)
}

// Unparse renders a SCoP back to DSL source (the inverse of Parse for
// SCoPs with symbolic domains; bodies are dropped).
func Unparse(sc *SCoP) (string, error) { return lang.Unparse(sc) }

// AutoGranularity searches for the task granularity (MinBlockIters)
// that maximizes the simulated speed-up at the given processor count
// and per-task overhead — a pragmatic answer to the paper's §7 open
// question of choosing good task granularity. It sweeps powers of two
// up to maxIters (default 256 when <= 0) and returns the best setting
// with its simulated speed-up.
func AutoGranularity(p *Program, procs int, overhead time.Duration, maxIters int) (best int, speedup float64, err error) {
	if maxIters <= 0 {
		maxIters = 256
	}
	best, speedup = 1, 0
	for k := 1; k <= maxIters; k *= 2 {
		s, err := SimSpeedup(p, procs, Options{MinBlockIters: k}, overhead)
		if err != nil {
			return 0, 0, err
		}
		if s > speedup {
			best, speedup = k, s
		}
	}
	return best, speedup, nil
}

// Detect runs the paper's Algorithm 1 on a SCoP.
//
// Deprecated: use NewSession(WithOptions(opts)).Detect(sc), which adds
// context cancellation, batch serving, and an optional detection cache
// (see docs/API.md).
func Detect(sc *SCoP, opts Options) (*Info, error) {
	return NewSession(WithOptions(opts)).Detect(sc)
}

// MarshalSCoP serializes a SCoP's polyhedral description as JSON (the
// interchange format; bodies are not serialized).
func MarshalSCoP(sc *SCoP) ([]byte, error) { return scop.ToJSON(sc) }

// UnmarshalSCoP rebuilds an analysis-only SCoP from its JSON
// description.
func UnmarshalSCoP(data []byte) (*SCoP, error) { return scop.FromJSON(data) }

// ScheduleTree renders the Algorithm 2 schedule tree of a detection
// result.
func ScheduleTree(info *Info) string {
	return schedtree.String(schedtree.Build(info))
}

// TransformedAST renders the annotated AST of the transformed program
// (the Figure 6 artifact).
func TransformedAST(fnName string, info *Info) (string, error) {
	fn, err := ast.Generate(fnName, schedtree.Build(info))
	if err != nil {
		return "", err
	}
	return ast.Render(fn), nil
}

// PipelineReport renders a human-readable summary of the detection:
// pipeline maps per dependent pair and block/dependency counts per
// statement.
func PipelineReport(info *Info) string {
	var b strings.Builder
	b.WriteString("pipeline pairs:\n")
	for _, p := range info.Pairs {
		b.WriteString("  ")
		b.WriteString(p.Src.Name)
		b.WriteString(" -> ")
		b.WriteString(p.Dst.Name)
		b.WriteString(": ")
		if p.T.Card() <= 12 {
			b.WriteString(p.T.String())
		} else {
			b.WriteString(shortMapSummary(p))
		}
		b.WriteString("\n")
	}
	b.WriteString("statements:\n")
	for _, si := range info.Stmts {
		deps := make([]string, 0, len(si.InDeps))
		for _, d := range si.InDeps {
			deps = append(deps, d.Src.Name)
		}
		b.WriteString("  ")
		b.WriteString(si.Stmt.Name)
		b.WriteString(": ")
		b.WriteString(report2(len(si.Blocks), deps))
		b.WriteString("\n")
	}
	return b.String()
}

// shortMapSummary prints a large pipeline map symbolically when its
// closed form can be reconstructed (the paper's §4.1 presentation),
// falling back to a cardinality summary.
func shortMapSummary(p core.PipelinePair) string {
	if exprs, ok := aff.Recognize(p.T, 4, 8, 4); ok {
		parts := make([]string, len(exprs))
		for d, e := range exprs {
			parts[d] = fmt.Sprintf("o%d = %s", d, e)
		}
		return fmt.Sprintf("{ %s[i..] -> %s[o..] : %s } (%d pairs)",
			p.Src.Name, p.Dst.Name, strings.Join(parts, ", "), p.T.Card())
	}
	return "(" + p.T.Domain().Space().String() + " -> " +
		p.T.Range().Space().String() + ", " +
		strconv.Itoa(p.T.Card()) + " pairs)"
}

func report2(blocks int, deps []string) string {
	s := strconv.Itoa(blocks) + " blocks"
	if len(deps) == 0 {
		return s + ", no in-deps"
	}
	return s + ", in-deps on [" + strings.Join(deps, ", ") + "]"
}

// BlockReport renders the pipeline blocks of every statement: leaders,
// sizes, and block-level in-dependencies — the Eq. 2/3/4 structures
// made concrete. Intended for small programs; large statements are
// summarized.
func BlockReport(info *Info) string {
	var b strings.Builder
	for _, si := range info.Stmts {
		fmt.Fprintf(&b, "%s: %d blocks over %d iterations\n",
			si.Stmt.Name, len(si.Blocks), si.Stmt.Domain.Card())
		limit := len(si.Blocks)
		if limit > 12 {
			limit = 12
		}
		for i := 0; i < limit; i++ {
			blk := si.Blocks[i]
			fmt.Fprintf(&b, "  block %v: %d iteration(s)", blk.Leader, len(blk.Members))
			for _, dep := range si.InDeps {
				for _, q := range dep.Rel.Lookup(blk.Leader) {
					fmt.Fprintf(&b, ", waits for %s%v", dep.Src.Name, q)
				}
			}
			b.WriteString("\n")
		}
		if limit < len(si.Blocks) {
			fmt.Fprintf(&b, "  ... %d more blocks\n", len(si.Blocks)-limit)
		}
	}
	return b.String()
}

// RunSequential executes the program in original order.
//
// Deprecated: use NewSession().Run(ModeSequential, p) (docs/API.md).
func RunSequential(p *Program) Result {
	res, _ := NewSession().Run(ModeSequential, p)
	return res
}

// RunPipelined detects, compiles, and runs the program's cross-loop
// pipeline with the given worker count.
//
// Deprecated: use
// NewSession(WithWorkers(workers), WithOptions(opts)).Run(ModePipelined, p)
// (docs/API.md).
func RunPipelined(p *Program, workers int, opts Options) (Result, error) {
	return NewSession(WithWorkers(workers), WithOptions(opts)).Run(ModePipelined, p)
}

// RunPipelinedFutures is RunPipelined on the alternative futures-based
// tasking layer — the §7 claim that the transformation retargets other
// tasking platforms with minimal changes, demonstrated.
//
// Deprecated: use Session.Run with ModeFutures (docs/API.md).
func RunPipelinedFutures(p *Program, workers int, opts Options) (Result, error) {
	return NewSession(WithWorkers(workers), WithOptions(opts)).Run(ModeFutures, p)
}

// RunPipelinedStages is RunPipelined on the third tasking layer: one
// long-lived goroutine per loop nest consuming its blocks in order
// (the idiomatic Go pipeline pattern), with cross-stage dependencies
// resolved through completion channels.
//
// Deprecated: use Session.Run with ModeStages (docs/API.md).
func RunPipelinedStages(p *Program, poolWorkers int, opts Options) (Result, error) {
	return NewSession(WithWorkers(poolWorkers), WithOptions(opts)).Run(ModeStages, p)
}

// RunPipelinedHybrid combines cross-loop pipelining with intra-block
// parallelism for conflict-free statements (§7's combination of the
// pipeline with other parallelization patterns).
//
// Deprecated: use Session.Run with ModeHybrid and WithIntraWorkers
// (docs/API.md).
func RunPipelinedHybrid(p *Program, workers, intraWorkers int, opts Options) (Result, error) {
	return NewSession(WithWorkers(workers), WithIntraWorkers(intraWorkers), WithOptions(opts)).
		Run(ModeHybrid, p)
}

// SimHybridSpeedup returns the simulated speed-up of the hybrid
// executor, modelling perfect intra-block scaling; callers should keep
// procs×intraWorkers within the hardware they are modelling.
//
// Deprecated: use Session.Simulate with SimConfig{Mode: ModeHybrid}
// (docs/API.md).
func SimHybridSpeedup(p *Program, procs, intraWorkers int, opts Options, overhead time.Duration) (float64, error) {
	s := NewSession(WithIntraWorkers(intraWorkers), WithOptions(opts))
	out, err := s.Simulate(p, SimConfig{Mode: ModeHybrid, Procs: []int{procs}, Overhead: overhead})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// RunParLoop executes the Polly-style per-loop parallel baseline.
//
// Deprecated: use NewSession(WithWorkers(workers)).Run(ModeParLoop, p)
// (docs/API.md).
func RunParLoop(p *Program, workers int) Result {
	res, _ := NewSession(WithWorkers(workers)).Run(ModeParLoop, p)
	return res
}

// Verify checks that pipelined and baseline executions reproduce the
// sequential result bit-for-bit.
//
// Deprecated: use Session.Verify (docs/API.md).
func Verify(p *Program, workers int, opts Options) error {
	return NewSession(WithWorkers(workers), WithOptions(opts)).Verify(p)
}

// Speedup measures sequential vs pipelined wall time (one run each,
// detection amortized) and returns the ratio.
//
// Deprecated: use Session.Speedup (docs/API.md).
func Speedup(p *Program, workers int, opts Options) (seq, pipe time.Duration, speedup float64, err error) {
	return NewSession(WithWorkers(workers), WithOptions(opts)).Speedup(p)
}

// TracePipelined runs the pipelined program with tracing and returns
// the execution analysis plus an ASCII Gantt chart of statement
// activity (the Figure 2/5 picture).
//
// Deprecated: use Session.TracePipelined (docs/API.md).
func TracePipelined(p *Program, workers int, opts Options, ganttWidth int) (trace.Analysis, string, error) {
	return NewSession(WithWorkers(workers), WithOptions(opts)).TracePipelined(p, ganttWidth)
}

// TraceSVG runs the pipelined program with tracing and writes an SVG
// Gantt timeline of statement activity (the graphical Figure 2).
//
// Deprecated: use Session.TraceSVG (docs/API.md).
func TraceSVG(w io.Writer, p *Program, workers int, opts Options) error {
	return NewSession(WithWorkers(workers), WithOptions(opts)).TraceSVG(w, p)
}

// SimSpeedup measures per-task costs during a sequential replay and
// returns the simulated P-processor speed-up of the pipelined task
// graph (virtual-time mode — deterministic, works on single-core
// hosts; see internal/simsched). overhead models per-task scheduling
// cost.
//
// Deprecated: use Session.Simulate (docs/API.md).
func SimSpeedup(p *Program, procs int, opts Options, overhead time.Duration) (float64, error) {
	out, err := NewSession(WithOptions(opts)).
		Simulate(p, SimConfig{Procs: []int{procs}, Overhead: overhead})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// SimParLoopSpeedup returns the simulated P-processor speed-up of the
// Polly-style per-loop baseline in virtual time.
//
// Deprecated: use Session.Simulate with SimConfig{Mode: ModeParLoop}
// (docs/API.md).
func SimParLoopSpeedup(p *Program, procs int, overhead time.Duration) float64 {
	out, err := NewSession().
		Simulate(p, SimConfig{Mode: ModeParLoop, Procs: []int{procs}, Overhead: overhead})
	if err != nil {
		return 0
	}
	return out[0]
}

// SimSpeedups measures the pipelined task graph once and returns its
// simulated speed-up at each of the given processor counts — use this
// (not repeated SimSpeedup calls) when comparing counts, so all points
// share one set of measured task costs.
//
// Deprecated: use Session.Simulate with SimConfig{Procs: procCounts}
// (docs/API.md).
func SimSpeedups(p *Program, opts Options, overhead time.Duration, procCounts ...int) ([]float64, error) {
	s := NewSession(WithOptions(opts))
	if len(procCounts) == 0 {
		if _, err := s.Detect(p.SCoP); err != nil {
			return nil, err
		}
		return []float64{}, nil
	}
	return s.Simulate(p, SimConfig{Procs: procCounts, Overhead: overhead})
}

// PotentialSpeedup returns the simulated speed-up of the pipelined
// task graph with unbounded processors — the critical-path bound,
// i.e. the best any machine could do with this blocking. Per Eq. 5 it
// is limited by the most expensive loop nest.
//
// Deprecated: use Session.Simulate with SimConfig{Potential: true}
// (docs/API.md).
func PotentialSpeedup(p *Program, opts Options) (float64, error) {
	out, err := NewSession(WithOptions(opts)).Simulate(p, SimConfig{Potential: true})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// EmitGo writes a standalone, stdlib-only Go main package executing
// the transformed program: statement bodies, block loops, the task
// table with integer dependency addresses, an embedded minimal
// tasking runtime, and a self-verifying main (the textual analogue of
// the paper's final code-generation phase).
func EmitGo(w io.Writer, info *Info, workers int) error {
	return gogen.Emit(w, info, workers)
}

// Interpret wraps an analysis-only SCoP (e.g. one produced by Parse)
// into a runnable Program with deterministic synthetic statement
// bodies that read and write exactly the declared cells — an
// executable twin of the polyhedral description.
func Interpret(sc *SCoP) *Program { return interp.Programify(sc) }

// Workload constructors (the paper's evaluation programs).

// Listing1 builds the paper's motivating two-nest stencil (Listing 1).
func Listing1(n int) *Program { return kernels.Listing1(n) }

// Listing3 builds the three-nest extension (Listing 3).
func Listing3(n int) *Program { return kernels.Listing3(n) }

// Table9Program builds one of the P1–P10 compute-intensive programs.
func Table9Program(name string, n, size int) (*Program, error) {
	return kernels.Table9Program(name, n, size)
}

// MMChain builds an n-long matrix-multiplication chain kernel.
func MMChain(n, rows int, v Variant) *Program { return kernels.MMChain(n, rows, v) }
