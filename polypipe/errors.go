package polypipe

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Typed errors of the session API. A serving layer maps these to wire
// statuses with errors.Is instead of string-matching messages:
//
//	ErrNotPipelinable  the request can never succeed        → 4xx
//	ErrUnknownBackend  the request names no such backend    → 4xx
//	ErrUnknownMode     the request names no such executor   → 4xx
//	ErrDetectCanceled  the caller's wait ended first        → retryable
//	ErrSessionClosed   the session is shut down             → 503
var (
	// ErrNotPipelinable reports a SCoP outside the fragment the
	// transformation accepts (cross-statement hazards, non-injective
	// writes without AllowOverwrites, structural invalidity). The
	// wrapped message names the offending statement.
	ErrNotPipelinable = core.ErrNotPipelinable

	// ErrUnknownBackend reports a backend name (WithBackend,
	// Options.Backend) no compiled detection backend answers to.
	ErrUnknownBackend = core.ErrUnknownBackend

	// ErrUnknownMode reports a Run/Simulate mode this build does not
	// know.
	ErrUnknownMode = errors.New("polypipe: unknown mode")

	// ErrDetectCanceled reports a detection wait ended by the session
	// context: a cache miss whose in-flight wait was canceled, or batch
	// admission stopped by a done context. The underlying context error
	// is wrapped, so errors.Is also matches context.Canceled /
	// context.DeadlineExceeded.
	ErrDetectCanceled = errors.New("polypipe: detection wait canceled")

	// ErrSessionClosed reports a call on a session after Close.
	ErrSessionClosed = errors.New("polypipe: session closed")
)

// wrapCtxErr translates a context cancellation surfacing from a
// detection wait into ErrDetectCanceled (keeping the context error in
// the chain); other errors pass through unchanged.
func wrapCtxErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDetectCanceled, err)
	}
	return err
}
