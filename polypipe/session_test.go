package polypipe

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSessionRunModesAgree: every executor mode reproduces the
// sequential hash, and the mode names render.
func TestSessionRunModesAgree(t *testing.T) {
	p := Listing3(24)
	s := NewSession(WithWorkers(4), WithIntraWorkers(2))
	want, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModePipelined, ModeFutures, ModeStages, ModeHybrid, ModeParLoop} {
		res, err := s.Run(mode, p)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Hash != want.Hash {
			t.Fatalf("%v: hash %x, sequential %x", mode, res.Hash, want.Hash)
		}
		if strings.HasPrefix(mode.String(), "Mode(") {
			t.Fatalf("mode %d has no name", int(mode))
		}
	}
	if _, err := s.Run(Mode(99), p); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestSessionCachedRunsIdentical: a cached session serves repeat and
// content-identical programs from the cache, and the executions still
// verify against the sequential reference.
func TestSessionCachedRunsIdentical(t *testing.T) {
	s := NewSession(WithWorkers(2), WithCache(0), WithRegistry(NewRegistry()))
	first, second := Listing1(32), Listing1(32)

	if err := s.Verify(first); err != nil {
		t.Fatal(err)
	}
	// Verify ran ModePipelined once: one miss, zero hits so far.
	st, ok := s.CacheStats()
	if !ok {
		t.Fatal("session has a cache; CacheStats says otherwise")
	}
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first run: %+v", st)
	}
	// A separately built but content-identical program hits.
	res, err := s.Run(ModePipelined, second)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.Run(ModeSequential, second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatalf("cached pipelined run wrong: %x vs %x", res.Hash, seq.Hash)
	}
	if st, _ := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("content-identical program missed the cache: %+v", st)
	}
	// Registry carries the cache counters too.
	if v := s.Registry().Snapshot().Counters["cache.hits"]; v != 1 {
		t.Fatalf("cache.hits on the session registry = %d, want 1", v)
	}
}

// TestSessionDetectBatch: batch results line up with Detect, cached or
// not.
func TestSessionDetectBatch(t *testing.T) {
	a, b := Listing1(16), Listing3(16)
	for _, s := range []*Session{
		NewSession(WithWorkers(2)),
		NewSession(WithWorkers(2), WithCache(0)),
	} {
		infos, errs := s.DetectBatch([]*SCoP{a.SCoP, b.SCoP, a.SCoP})
		for i, err := range errs {
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
		}
		for i, sc := range []*SCoP{a.SCoP, b.SCoP, a.SCoP} {
			want, err := core.Detect(sc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := core.EqualInfo(want, infos[i]); err != nil {
				t.Fatalf("item %d differs: %v", i, err)
			}
		}
	}
}

// TestSessionContextCancellation: a done session context fails Detect,
// Run, and Simulate instead of computing.
func TestSessionContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, s := range map[string]*Session{
		"plain":  NewSession(WithContext(ctx)),
		"cached": NewSession(WithContext(ctx), WithCache(0)),
	} {
		p := Listing1(8)
		// The typed surface: ErrDetectCanceled wraps the context error,
		// so both errors.Is probes hold.
		canceled := func(err error) bool {
			return errors.Is(err, ErrDetectCanceled) && errors.Is(err, context.Canceled)
		}
		if _, err := s.Detect(p.SCoP); !canceled(err) {
			t.Fatalf("%s Detect: err = %v", name, err)
		}
		if _, err := s.Run(ModePipelined, p); !canceled(err) {
			t.Fatalf("%s Run: err = %v", name, err)
		}
		if _, err := s.Simulate(p, SimConfig{}); !canceled(err) {
			t.Fatalf("%s Simulate: err = %v", name, err)
		}
		_, errs := s.DetectBatch([]*SCoP{p.SCoP, p.SCoP})
		if !canceled(errs[0]) || !canceled(errs[1]) {
			t.Fatalf("%s DetectBatch: errs = %v", name, errs)
		}
	}
}

// TestSessionSimulateConsolidation: Simulate covers the Sim* family —
// multi-point pipelined curves, the baseline, hybrid, and the
// potential bound — with sane shapes.
func TestSessionSimulateConsolidation(t *testing.T) {
	p := Listing3(24)
	s := NewSession(WithWorkers(2), WithIntraWorkers(2))

	curve, err := s.Simulate(p, SimConfig{Procs: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	for i, v := range curve {
		if v <= 0 {
			t.Fatalf("point %d: speedup %v", i, v)
		}
	}
	if one, err := s.Simulate(p, SimConfig{}); err != nil || len(one) != 1 {
		t.Fatalf("default Procs: %v %v", one, err)
	}
	if base, err := s.Simulate(p, SimConfig{Mode: ModeParLoop, Procs: []int{2}}); err != nil || len(base) != 1 || base[0] <= 0 {
		t.Fatalf("parloop sim: %v %v", base, err)
	}
	if hyb, err := s.Simulate(p, SimConfig{Mode: ModeHybrid, Procs: []int{2}}); err != nil || len(hyb) != 1 || hyb[0] <= 0 {
		t.Fatalf("hybrid sim: %v %v", hyb, err)
	}
	pot, err := s.Simulate(p, SimConfig{Potential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pot) != 1 || pot[0] <= 0 {
		t.Fatalf("potential: %v", pot)
	}
	if _, err := s.Simulate(p, SimConfig{Mode: ModeParLoop, Potential: true}); err == nil {
		t.Fatal("Potential+ParLoop accepted")
	}
}

// TestSessionCoversLegacySurface: every operation the removed free
// functions offered is reachable through one Session, and the compiled
// program (detection + lowered IR) is shared across them.
func TestSessionCoversLegacySurface(t *testing.T) {
	p := Listing1(24)
	s := NewSession(WithWorkers(2))
	seq, err := s.Run(ModeSequential, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ModePipelined, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != seq.Hash {
		t.Fatalf("pipelined hash %x vs %x", res.Hash, seq.Hash)
	}
	if err := s.Verify(p); err != nil {
		t.Fatal(err)
	}
	if vs, err := s.Simulate(p, SimConfig{Procs: []int{1, 2}}); err != nil || len(vs) != 2 || vs[1] <= 0 {
		t.Fatalf("Simulate: %v %v", vs, err)
	}
	if vs, err := s.Simulate(p, SimConfig{Mode: ModeParLoop, Procs: []int{2}}); err != nil || vs[0] <= 0 {
		t.Fatalf("ParLoop Simulate: %v %v", vs, err)
	}
	if vs, err := s.Simulate(p, SimConfig{Potential: true}); err != nil || len(vs) != 1 || vs[0] <= 0 {
		t.Fatalf("potential Simulate: %v %v", vs, err)
	}
}

// TestSessionEmitGo: emission through a session serves detection from
// the session cache, records ir.* pass metrics in the session
// registry, produces identical source on repeat calls, and fails with
// the typed errors after Close.
func TestSessionEmitGo(t *testing.T) {
	sc, err := Parse("emit", `
for (i = 0; i < 9; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 9; i++)
  T: B[i] = g(A[i], B[i]);
`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(WithWorkers(2), WithCache(0), WithRegistry(NewRegistry()))
	defer s.Close()

	var first, second strings.Builder
	if err := s.EmitGo(&first, sc, EmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s.EmitGo(&second, sc, EmitOptions{}); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("repeat EmitGo of the same SCoP produced different source")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["cache.hits"] < 1 {
		t.Errorf("second EmitGo missed the detection cache: hits=%d", snap.Counters["cache.hits"])
	}
	if snap.Gauges["ir.tasks"] <= 0 {
		t.Errorf("ir.* pass metrics missing from session registry: %v", snap.Gauges)
	}

	var unopt strings.Builder
	if err := s.EmitGo(&unopt, sc, EmitOptions{Passes: "none"}); err != nil {
		t.Fatal(err)
	}
	if unopt.String() == first.String() {
		t.Error("Passes selection had no effect on emitted source")
	}
	if err := s.EmitGo(&unopt, sc, EmitOptions{Passes: "bogus"}); err == nil {
		t.Error("unknown pass name accepted")
	}

	s.Close()
	if err := s.EmitGo(&first, sc, EmitOptions{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("EmitGo after Close: %v, want ErrSessionClosed", err)
	}
}
