package polypipe

import (
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/tasking"
)

// Affine-construction surface re-exported from the internal aff and
// isl packages, so programs can be defined against polypipe alone.
type (
	// Expr is a quasi-affine index or bound expression.
	Expr = aff.Expr
	// Domain is a symbolic loop-nest iteration domain.
	Domain = aff.Domain
	// LoopBound is one loop dimension's half-open [Lo, Hi) bounds.
	LoopBound = aff.LoopBound
	// Vec is an integer iteration vector (passed to statement bodies).
	Vec = isl.Vec
)

// Const returns the constant expression c over nvars loop variables.
func Const(nvars, c int) Expr { return aff.Const(nvars, c) }

// Var returns the expression selecting loop variable i of nvars.
func Var(nvars, i int) Expr { return aff.Var(nvars, i) }

// Linear returns c + Σ coeffs[d]·i_d.
func Linear(c int, coeffs ...int) Expr { return aff.Linear(c, coeffs...) }

// FloorDiv returns ⌊e/den⌋.
func FloorDiv(e Expr, den int) Expr { return aff.FloorDiv(e, den) }

// RectDomain returns the rectangular domain [0,hi0) × [0,hi1) × … for
// the named statement.
func RectDomain(name string, his ...int) *Domain { return aff.RectDomain(name, his...) }

// NewDomain returns a loop-nest domain with explicit per-dimension
// bounds (dimension d's bounds are expressions over dimensions < d).
func NewDomain(name string, bounds ...LoopBound) *Domain { return aff.NewDomain(name, bounds...) }

// ConstBound is the constant half-open bound [lo, hi) for dimension d.
func ConstBound(d, lo, hi int) LoopBound { return aff.ConstBound(d, lo, hi) }

// NewRuntime starts a dependency-aware task runtime with the given
// worker count (the minimal tasking layer of §5.5); see Runtime.
func NewRuntime(workers int) *Runtime { return tasking.New(workers) }
