package polypipe

import (
	"context"
	"time"
)

// Config is the consolidated session configuration: every knob the
// With* options set, as one documented struct. It exists for callers
// that build sessions from external configuration (flags, files, a
// serving process) where a literal struct reads better than a chain of
// options; the functional options remain the primary API and
// NewSession stays variadic — pass a Config through WithConfig, and
// later options override its fields:
//
//	s := polypipe.NewSession(polypipe.WithConfig(cfg), polypipe.WithWorkers(8))
//
// The zero Config is the zero session: no cache, no registry,
// background context, GOMAXPROCS workers. See docs/API.md for the
// field-by-field migration table from the With* options.
type Config struct {
	// Workers is the execution and detection worker-pool width
	// (WithWorkers; 0 = GOMAXPROCS).
	Workers int
	// IntraWorkers bounds ModeHybrid's intra-block width
	// (WithIntraWorkers).
	IntraWorkers int
	// Options are the detection options (WithOptions).
	Options Options
	// Backend, when non-empty, overrides Options.Backend (WithBackend):
	// "explicit" for the enumerated path, BackendSymbolic for the
	// constraint algebra. Empty leaves Options.Backend in charge.
	Backend string
	// Cache attaches the content-addressed detection cache (WithCache);
	// CacheCapacity bounds it (<= 0 = cache.DefaultCapacity).
	Cache         bool
	CacheCapacity int
	// DiskCacheDir, when non-empty, backs the in-memory cache with the
	// content-addressed disk tier rooted at this directory
	// (WithDiskCache). It implies Cache.
	DiskCacheDir string
	// Registry receives detection/cache/runtime metrics (WithRegistry).
	Registry *Registry
	// Context bounds the session's cancelable waits (WithContext).
	Context context.Context
	// Introspection, when non-empty, starts the embedded introspection
	// server on this address (WithIntrospection).
	Introspection string
	// Sampler starts the continuous time-series sampler (WithSampler);
	// SampleInterval/SampleCapacity tune it (<= 0 = defaults).
	Sampler        bool
	SampleInterval time.Duration
	SampleCapacity int
}

// WithConfig applies every set field of cfg, as if the matching With*
// options had been passed at this position (later options still
// override).
func WithConfig(cfg Config) SessionOption {
	return func(s *Session) {
		s.workers = cfg.Workers
		s.intraWorkers = cfg.IntraWorkers
		s.opts = cfg.Options
		if cfg.Backend != "" {
			s.backend, s.wantBackend = cfg.Backend, true
		}
		if cfg.Cache || cfg.DiskCacheDir != "" {
			s.wantCache, s.cacheCap = true, cfg.CacheCapacity
		}
		s.diskDir = cfg.DiskCacheDir
		if cfg.Registry != nil {
			s.registry = cfg.Registry
		}
		if cfg.Context != nil {
			s.ctx = cfg.Context
		}
		if cfg.Introspection != "" {
			s.introAddr = cfg.Introspection
		}
		if cfg.Sampler {
			s.wantSampler = true
			s.sampleIv, s.sampleCap = cfg.SampleInterval, cfg.SampleCapacity
		}
	}
}

// NewSessionFromConfig builds a session from the consolidated struct;
// exactly NewSession(WithConfig(cfg)).
func NewSessionFromConfig(cfg Config) *Session {
	return NewSession(WithConfig(cfg))
}
