// Package repro_test holds the benchmark harness that regenerates
// every table and figure of the paper's evaluation (§6), plus ablation
// benches for the design choices DESIGN.md calls out.
//
// Two kinds of numbers are produced:
//
//   - wall-clock ns/op of the pipelined execution (ordinary testing.B
//     timing), and
//   - simulated speed-ups on the paper's processor counts, attached as
//     custom metrics (speedup/4w, polly, polly_8, ...) — deterministic
//     virtual-time results that reproduce the figures on any host,
//     including single-core machines (see internal/simsched).
//
// Regenerate everything with:
//
//	go test -bench . -benchmem
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/tasking"
	"repro/polypipe"
)

// benchOverhead models per-task scheduling cost in simulated
// schedules; 500ns is what BenchmarkTaskingOverhead measures on this
// runtime within a small factor.
const benchOverhead = 500 * time.Nanosecond

// BenchmarkFigure10 regenerates the Figure 10 grid: for every Table 9
// program and (N, SIZE) configuration, the pipelined execution is
// timed, and the simulated 4-worker speed-up over sequential is
// attached as the "speedup/4w" metric — the number to compare with the
// paper's heat-map cell.
func BenchmarkFigure10(b *testing.B) {
	for _, spec := range kernels.Table9 {
		for _, cfg := range []struct{ n, size int }{{8, 2}, {12, 2}, {12, 4}} {
			name := fmt.Sprintf("%s/N=%d/SIZE=%d", spec.Name, cfg.n, cfg.size)
			b.Run(name, func(b *testing.B) {
				p := kernels.BuildTable9(spec, cfg.n, cfg.size)
				s := polypipe.NewSession(polypipe.WithWorkers(4))
				speedups, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{4}, Overhead: benchOverhead})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := s.Run(polypipe.ModePipelined, p)
					if err != nil {
						b.Fatal(err)
					}
					_ = res
				}
				b.ReportMetric(speedups[0], "speedup/4w")
			})
		}
	}
}

// BenchmarkFigure11 regenerates the Figure 11 series: for each matrix
// chain kernel, the pipelined execution is timed and the simulated
// speed-ups of all three executors are attached as metrics
// (speedup/pipe on n workers, speedup/polly on n, speedup/polly8 on 8).
func BenchmarkFigure11(b *testing.B) {
	const rows = 96
	for _, n := range []int{2, 3, 4} {
		for _, v := range []polypipe.Variant{polypipe.MM, polypipe.MMT, polypipe.GMM, polypipe.GMMT} {
			p := polypipe.MMChain(n, rows, v)
			b.Run(p.Name, func(b *testing.B) {
				s := polypipe.NewSession(polypipe.WithWorkers(n))
				pipes, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{n}, Overhead: benchOverhead})
				if err != nil {
					b.Fatal(err)
				}
				pollys, err := s.Simulate(p, polypipe.SimConfig{Mode: polypipe.ModeParLoop, Procs: []int{n, 8}, Overhead: benchOverhead})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pipes[0], "speedup/pipe")
				b.ReportMetric(pollys[0], "speedup/polly")
				b.ReportMetric(pollys[1], "speedup/polly8")
			})
		}
	}
}

// BenchmarkAblationBlocking compares the Eq. 3 optimal integrated
// blocking against the pairwise-only ablation on the fan-in-heavy
// programs the integration matters for (P5, P8 involve statements
// participating in several pipeline maps).
func BenchmarkAblationBlocking(b *testing.B) {
	for _, name := range []string{"P5", "P8"} {
		for _, mode := range []struct {
			label string
			opts  polypipe.Options
		}{
			{"optimal", polypipe.Options{}},
			{"pairwise", polypipe.Options{PairwiseBlocks: true}},
		} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				p, err := polypipe.Table9Program(name, 12, 2)
				if err != nil {
					b.Fatal(err)
				}
				s := polypipe.NewSession(polypipe.WithWorkers(4), polypipe.WithOptions(mode.opts))
				speedups, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{4}, Overhead: benchOverhead})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(speedups[0], "speedup/4w")
			})
		}
	}
}

// BenchmarkAblationGranularity sweeps the task-granularity knob (§7):
// larger blocks amortize task overhead but reduce overlap. The
// simulated speed-up includes the per-task overhead, so the sweet spot
// is visible in the metric.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, minIters := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("minIters=%d", minIters), func(b *testing.B) {
			p := polypipe.Listing1(64)
			opts := polypipe.Options{MinBlockIters: minIters}
			s := polypipe.NewSession(polypipe.WithWorkers(4), polypipe.WithOptions(opts))
			speedups, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{4}, Overhead: 2 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			info, err := s.Detect(p.SCoP)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(speedups[0], "speedup/4w")
			b.ReportMetric(float64(info.TotalBlocks()), "tasks")
		})
	}
}

// BenchmarkTaskingOverhead measures the runtime's per-task cost with
// empty bodies — the constant the granularity trade-off is against.
func BenchmarkTaskingOverhead(b *testing.B) {
	b.Run("independent", func(b *testing.B) {
		r := tasking.New(4)
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Submit(tasking.Task{Fn: func() {}, Out: i % 1024, Serial: tasking.NoSerial})
		}
		r.Wait()
	})
	b.Run("chained", func(b *testing.B) {
		r := tasking.New(4)
		defer r.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Submit(tasking.Task{Fn: func() {}, Out: 0, In: []int{0}, Serial: 0})
		}
		r.Wait()
	})
}

// BenchmarkScaling sweeps the simulated worker count on a 4-stage
// serial Seidel chain: the pipeline's speed-up must grow with workers
// up to the chain length (4 overlappable nests) and flatten beyond —
// the Eq. 5 ceiling of §4.4.
func BenchmarkScaling(b *testing.B) {
	p := kernels.SeidelChain(24, 4)
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := polypipe.NewSession(polypipe.WithWorkers(workers))
			speedups, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{workers}, Overhead: benchOverhead})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(speedups[0], "speedup")
		})
	}
}

// TestScalingCeiling asserts the Eq. 5 consequence: with more workers
// than overlappable nests, the simulated speed-up saturates near the
// nest count.
func TestScalingCeiling(t *testing.T) {
	p := kernels.SeidelChain(24, 4)
	// One measurement, several processor counts: no replay noise
	// between the points.
	s, err := polypipe.NewSession().Simulate(p, polypipe.SimConfig{Procs: []int{1, 4, 16}})
	if err != nil {
		t.Fatal(err)
	}
	s1, s4, s16 := s[0], s[1], s[2]
	if s4 > 4.2 || s16 > 4.2 {
		t.Errorf("speed-up exceeds the 4-nest ceiling: s4=%.2f s16=%.2f", s4, s16)
	}
	if s16 > s4*1.1 {
		t.Errorf("speed-up did not saturate: s4=%.2f s16=%.2f", s4, s16)
	}
	if s1 > 1.01 {
		t.Errorf("1-worker speed-up = %.2f, want ~1", s1)
	}
}

// BenchmarkTaskingLayers compares the two tasking back ends (§7's
// retargeting claim): the OpenMP-style dependency-table runtime vs the
// futures layer, running the same compiled Listing 3 program.
func BenchmarkTaskingLayers(b *testing.B) {
	p := polypipe.Listing3(32)
	s := polypipe.NewSession(polypipe.WithWorkers(4))
	for _, layer := range []struct {
		label string
		mode  polypipe.Mode
	}{
		{"openmp-style", polypipe.ModePipelined},
		{"futures", polypipe.ModeFutures},
		{"stages", polypipe.ModeStages},
	} {
		b.Run(layer.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(layer.mode, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtraKernels reports simulated pipeline speed-ups on the
// kernels beyond the paper's two benchmark sets: the fully parallel
// Jacobi chain (where the hybrid combination matters), the serial
// Seidel chain, and the triangular-domain chain.
func BenchmarkExtraKernels(b *testing.B) {
	progs := []*kernels.Program{
		kernels.JacobiChain(24, 3),
		kernels.SeidelChain(24, 3),
		kernels.TriangularChain(24),
	}
	for _, p := range progs {
		b.Run(p.Name, func(b *testing.B) {
			s := polypipe.NewSession(polypipe.WithWorkers(4))
			speedups, err := s.Simulate(p, polypipe.SimConfig{Procs: []int{4}, Overhead: benchOverhead})
			if err != nil {
				b.Fatal(err)
			}
			hs := polypipe.NewSession(polypipe.WithWorkers(2), polypipe.WithIntraWorkers(2),
				polypipe.WithOptions(polypipe.Options{MinBlockIters: 4}))
			hybrids, err := hs.Simulate(p, polypipe.SimConfig{Mode: polypipe.ModeHybrid, Procs: []int{2}, Overhead: benchOverhead})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(speedups[0], "speedup/pipe4")
			b.ReportMetric(hybrids[0], "speedup/hybrid2x2")
		})
	}
}

// BenchmarkObservationOverhead quantifies the cost of the
// observability layer: the same Listing 3 program run plain
// (RunPipelined) and fully observed (Observe: registry metrics, event
// collection, and critical-path analysis). The observed ns/op should
// stay within a few percent of the plain one — the registry is sharded
// atomics and the collector is one small allocation per task.
func BenchmarkObservationOverhead(b *testing.B) {
	p := polypipe.Listing3(32)
	s := polypipe.NewSession(polypipe.WithWorkers(4))
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(polypipe.ModePipelined, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := polypipe.Observe(p, 4, polypipe.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDetect measures the compile-time cost of Algorithm 1 — the
// analysis the paper runs inside Polly.
func BenchmarkDetect(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("listing3/N=%d", n), func(b *testing.B) {
			p := polypipe.Listing3(n)
			s := polypipe.NewSession() // no cache: every Detect runs Algorithm 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Detect(p.SCoP); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAblationCorrectness guards the ablation configurations: both
// must still produce bit-identical results to sequential execution.
func TestAblationCorrectness(t *testing.T) {
	p := polypipe.Listing3(16)
	for _, opts := range []polypipe.Options{
		{PairwiseBlocks: true},
		{MinBlockIters: 16},
		{PairwiseBlocks: true, MinBlockIters: 8},
	} {
		s := polypipe.NewSession(polypipe.WithWorkers(4), polypipe.WithOptions(opts))
		if err := s.Verify(p); err != nil {
			t.Errorf("opts %+v: %v", opts, err)
		}
	}
}

// TestFigureShapesHold asserts the headline qualitative claims of the
// evaluation in simulated time, so regressions in the transformation
// or runtime surface as test failures, not just changed numbers:
//
//   - every Table 9 program gains from cross-loop pipelining (Fig 10);
//   - gmm chains: pipeline ≥ 1.5×, Polly ≈ 1× (Fig 11, right half);
//   - mm chains: polly_8 beats the pipeline (Fig 11, left half).
func TestFigureShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("figure shapes need real per-task cost measurements")
	}
	// Measurement-based shapes are retried: a loaded host (e.g. the
	// benchmark suite running concurrently) distorts per-task cost
	// measurements transiently.
	retry := func(name string, check func() error) {
		var err error
		for i := 0; i < 3; i++ {
			if err = check(); err == nil {
				return
			}
		}
		t.Errorf("%s: %v", name, err)
	}
	for _, spec := range kernels.Table9 {
		spec := spec
		retry(spec.Name, func() error {
			p := kernels.BuildTable9(spec, 12, 2)
			speedups, err := polypipe.NewSession(polypipe.WithWorkers(4)).
				Simulate(p, polypipe.SimConfig{Procs: []int{4}, Overhead: benchOverhead})
			if err != nil {
				return err
			}
			if speedups[0] < 1.1 {
				return fmt.Errorf("simulated speedup %.2f, expected a gain (Figure 10 shape)", speedups[0])
			}
			return nil
		})
	}

	retry("3gmm", func() error {
		gmm := polypipe.MMChain(3, 96, polypipe.GMM)
		s := polypipe.NewSession(polypipe.WithWorkers(3))
		pipes, err := s.Simulate(gmm, polypipe.SimConfig{Procs: []int{3}, Overhead: benchOverhead})
		if err != nil {
			return err
		}
		pollys, err := s.Simulate(gmm, polypipe.SimConfig{Mode: polypipe.ModeParLoop, Procs: []int{3}, Overhead: benchOverhead})
		if err != nil {
			return err
		}
		if pipes[0] < 1.5 {
			return fmt.Errorf("pipeline simulated speedup = %.2f, want >= 1.5", pipes[0])
		}
		if pollys[0] > 1.1 {
			return fmt.Errorf("polly simulated speedup = %.2f, want ~1", pollys[0])
		}
		return nil
	})

	retry("3mm", func() error {
		mm := polypipe.MMChain(3, 96, polypipe.MM)
		s := polypipe.NewSession(polypipe.WithWorkers(3))
		pipes, err := s.Simulate(mm, polypipe.SimConfig{Procs: []int{3}, Overhead: benchOverhead})
		if err != nil {
			return err
		}
		pollys, err := s.Simulate(mm, polypipe.SimConfig{Mode: polypipe.ModeParLoop, Procs: []int{8}, Overhead: benchOverhead})
		if err != nil {
			return err
		}
		if pollys[0] <= pipes[0] {
			return fmt.Errorf("polly_8 (%.2f) should beat pipeline (%.2f)", pollys[0], pipes[0])
		}
		return nil
	})
}
