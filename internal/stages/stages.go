// Package stages is a third implementation of the minimal tasking
// layer, further evidence for the paper's §7 claim that the
// transformation retargets tasking platforms with minimal changes.
//
// Where package tasking emulates OpenMP's depend clauses with a
// central address table and package futures gives every task its own
// completion future, this layer uses the idiomatic Go pipeline
// pattern: one long-lived goroutine per serialization key (per loop
// nest — the paper's pipeline stages) consumes that stage's tasks in
// FIFO order, so per-nest serialization holds by construction; cross-
// stage dependencies resolve through per-address completion channels.
// The layer is a drop-in codegen.Layer implementation.
package stages

import (
	"sync"

	"repro/internal/tasking"
)

// Runtime is the stage-based tasking layer.
type Runtime struct {
	mu     sync.Mutex
	done   bool
	wg     sync.WaitGroup
	stages map[int]chan work
	// completion channel of the last writer of each address
	lastWriter map[int]chan struct{}
	// tasks without a serialization key run on a shared pool
	free chan work
}

type work struct {
	fn   func()
	deps []chan struct{}
	self chan struct{}
}

// New starts a stage runtime. poolWorkers bounds the workers that run
// serialization-free tasks; each distinct Serial key gets its own
// dedicated stage goroutine on demand.
func New(poolWorkers int) *Runtime {
	if poolWorkers < 1 {
		panic("stages: poolWorkers < 1")
	}
	r := &Runtime{
		stages:     make(map[int]chan work),
		lastWriter: make(map[int]chan struct{}),
		free:       make(chan work, 1024),
	}
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for w := range r.free {
				runWork(w)
				r.wg.Done()
			}
		}()
	}
	return r
}

func runWork(w work) {
	for _, d := range w.deps {
		<-d
	}
	if w.fn != nil {
		w.fn()
	}
	close(w.self)
}

// Submit creates a task; call from a single goroutine in program
// order.
func (r *Runtime) Submit(t tasking.Task) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("stages: Submit after Close")
	}
	w := work{fn: t.Fn, self: make(chan struct{})}
	for _, addr := range t.In {
		if ch, ok := r.lastWriter[addr]; ok {
			w.deps = append(w.deps, ch)
		}
	}
	if t.Out >= 0 {
		r.lastWriter[t.Out] = w.self
	}
	r.wg.Add(1)
	if t.Serial < 0 {
		r.mu.Unlock()
		r.free <- w
		return
	}
	ch, ok := r.stages[t.Serial]
	if !ok {
		ch = make(chan work, 1024)
		r.stages[t.Serial] = ch
		go func() {
			for w := range ch {
				runWork(w)
				r.wg.Done()
			}
		}()
	}
	r.mu.Unlock()
	ch <- w
}

// Wait blocks until all submitted tasks have completed.
func (r *Runtime) Wait() { r.wg.Wait() }

// Close waits for completion and stops the stage goroutines.
func (r *Runtime) Close() {
	r.Wait()
	r.mu.Lock()
	if !r.done {
		r.done = true
		close(r.free)
		for _, ch := range r.stages {
			close(ch)
		}
	}
	r.mu.Unlock()
}
