// Package stages is a third front end over the unified runtime core,
// historically a from-scratch Go-pipeline implementation (one goroutine
// per serialization key) of the minimal tasking layer — further
// evidence for the paper's §7 claim that the transformation retargets
// tasking platforms with minimal changes.
//
// Since the runtime-core unification the dependency resolution and the
// work-stealing scheduler live in internal/runtime, shared with the
// tasking and futures layers; this adapter contributes the layer name
// ("stages", prefixing its metric catalogue) and a stage-affinity
// shard policy: tasks carrying a Serial key — the paper's pipeline
// stages, one per loop nest — land on the shard keyed by that stage,
// so one worker tends to own one stage's stream, preserving the
// original layer's cache behaviour without its per-stage goroutines.
package stages

import "repro/internal/runtime"

// Runtime is the stage tasking layer: the shared runtime.Scheduler
// under the "stages" name with stage-affinity shard placement.
type Runtime = runtime.Scheduler

// New starts a stage runtime with the given number of workers.
func New(workers int) *Runtime {
	return runtime.NewScheduler(runtime.Config{
		Workers: workers,
		Name:    "stages",
		Shard: func(id, serial, workers int) int {
			if serial >= 0 {
				return serial % workers
			}
			return id % workers
		},
	})
}
