package stages

import (
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/tasking"
)

var _ codegen.Layer = (*Runtime)(nil)

func TestCrossStageOrdering(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		var mu sync.Mutex
		var order []int
		rec := func(id int) func() {
			return func() {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
		}
		r := New(2)
		r.Submit(tasking.Task{Fn: rec(1), Out: 0, Serial: 0})
		r.Submit(tasking.Task{Fn: rec(2), In: []int{0}, Out: 1, Serial: 1})
		r.Submit(tasking.Task{Fn: rec(3), In: []int{1}, Out: 2, Serial: 2})
		r.Close()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("trial %d: order = %v", trial, order)
		}
	}
}

func TestStageFIFO(t *testing.T) {
	var mu sync.Mutex
	var order []int
	r := New(1)
	for i := 0; i < 80; i++ {
		i := i
		r.Submit(tasking.Task{
			Fn: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
			Out:    -1,
			Serial: 9,
		})
	}
	r.Close()
	for i, got := range order {
		if got != i {
			t.Fatalf("stage not FIFO at %d: %d", i, got)
		}
	}
}

func TestPoolTasks(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	r := New(3)
	for i := 0; i < 50; i++ {
		i := i
		dep := []int{}
		if i > 0 {
			dep = append(dep, i-1)
		}
		r.Submit(tasking.Task{
			Fn: func() {
				mu.Lock()
				if i > 0 && !seen[i-1] {
					t.Errorf("task %d ran before its dependency", i)
				}
				seen[i] = true
				mu.Unlock()
			},
			In:     dep,
			Out:    i,
			Serial: tasking.NoSerial,
		})
	}
	r.Close()
	if len(seen) != 50 {
		t.Fatalf("ran %d tasks", len(seen))
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	r := New(1)
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Submit(tasking.Task{Fn: func() {}, Serial: tasking.NoSerial})
}

func TestNewRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestCloseIdempotent(t *testing.T) {
	r := New(1)
	r.Submit(tasking.Task{Fn: func() {}, Out: 0, Serial: 0})
	r.Close()
	r.Close()
}

// TestPipelinedProgramOnStagesLayer runs full transformed programs on
// the stage layer and checks bit-identical results.
func TestPipelinedProgramOnStagesLayer(t *testing.T) {
	for _, p := range []*kernels.Program{
		kernels.Listing3(16),
		kernels.MMChain(3, 12, kernels.GMM),
		kernels.SeidelChain(10, 3),
	} {
		info, err := core.Detect(p.SCoP, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := codegen.Compile(info)
		if err != nil {
			t.Fatal(err)
		}
		p.Reset()
		for _, s := range p.SCoP.Stmts {
			for _, iv := range s.Domain.Elements() {
				s.Body(iv)
			}
		}
		want := p.Hash()
		for trial := 0; trial < 5; trial++ {
			p.Reset()
			r := New(2)
			prog.Submit(r)
			r.Close()
			if got := p.Hash(); got != want {
				t.Fatalf("%s trial %d: stage-layer result differs", p.Name, trial)
			}
		}
	}
}
