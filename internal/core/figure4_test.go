package core

import (
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// buildFigure4 reconstructs the paper's Figure 4 scenario: statements
// S1 and S2 are both sources of S3, and S3 is the source of S4. S3
// therefore carries two target blocking maps (from S1 and S2) and one
// source blocking map (toward S4); Eq. 3 must pick, per iteration, the
// smallest block among all three so that S4 can start as early as
// possible.
//
// Access pattern (1-D, N iterations each):
//
//	S1 writes A1[i];  S2 writes A2[i]
//	S3 reads A1[i/2] (two iterations share a write: its target
//	blocking map from S1 is coarse, blocks of 2) and A2[3i] (fine),
//	and writes A3[i]
//	S4 reads A3[i], writes A4[i]
func buildFigure4(t *testing.T, n int) *scop.SCoP {
	t.Helper()
	b := scop.NewBuilder("figure4")
	b.Array("A1", 1).Array("A2", 1).Array("A3", 1).Array("A4", 1)
	b.Stmt("S1", aff.RectDomain("S1", n)).Writes("A1", aff.Var(1, 0))
	b.Stmt("S2", aff.RectDomain("S2", 3*n)).Writes("A2", aff.Var(1, 0))
	b.Stmt("S3", aff.RectDomain("S3", n)).
		Writes("A3", aff.Var(1, 0)).
		Reads("A1", aff.FloorDiv(aff.Var(1, 0), 2)).
		Reads("A2", aff.Linear(0, 3))
	b.Stmt("S4", aff.RectDomain("S4", n)).
		Writes("A4", aff.Var(1, 0)).
		Reads("A3", aff.Var(1, 0))
	return b.MustBuild()
}

func TestFigure4OptimalBlocks(t *testing.T) {
	sc := buildFigure4(t, 8)
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// S3 participates in three pipeline maps.
	var maps int
	for _, p := range info.Pairs {
		if p.Src.Name == "S3" || p.Dst.Name == "S3" {
			maps++
		}
	}
	if maps != 3 {
		t.Fatalf("S3 pipeline maps = %d, want 3", maps)
	}
	// The source blocking map toward S4 is per-iteration (S4 reads
	// A3[i] exactly), so Eq. 3 makes every S3 iteration its own block
	// regardless of the coarser target blocking maps from S1/S2.
	s3 := info.Stmt("S3")
	if got := len(s3.Blocks); got != 8 {
		t.Fatalf("S3 blocks = %d, want 8 (optimal = finest)", got)
	}
	// ... and S4's dependence is block-per-block on S3, so S4[j] can
	// start right after S3[j] — the "maximizes the number of blocks of
	// different statements that can run in parallel" claim.
	s4 := info.Stmt("S4")
	var depOnS3 *isl.Map
	for _, d := range s4.InDeps {
		if d.Src.Name == "S3" {
			depOnS3 = d.Rel
		}
	}
	if depOnS3 == nil {
		t.Fatal("S4 has no dependence on S3")
	}
	for j := 0; j < 8; j++ {
		if got := depOnS3.Image(isl.NewVec(j)); !got.Eq(isl.NewVec(j)) {
			t.Fatalf("S4[%d] waits for S3 block %v, want [%d]", j, got, j)
		}
	}

	// Ablation: with pairwise-only blocking, S3 is blocked by its
	// FIRST map (the coarse target map from S1), so S4 must wait for
	// coarser S3 blocks — strictly less overlap.
	abl, err := Detect(sc, Options{PairwiseBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Stmt("S3").Blocks) >= len(s3.Blocks) {
		t.Fatalf("pairwise blocking should be coarser: %d vs %d",
			len(abl.Stmt("S3").Blocks), len(s3.Blocks))
	}
}

func TestFigure4DependencySafety(t *testing.T) {
	sc := buildFigure4(t, 6)
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// S3's in-deps on S1 and S2 must cover its strided reads: block j
	// of S3 reads A1[2j] and A2[3j], so its S1 dep must be ≥ 2j and
	// its S2 dep ≥ 3j.
	s3 := info.Stmt("S3")
	if len(s3.InDeps) != 2 {
		t.Fatalf("S3 in-deps = %d", len(s3.InDeps))
	}
	for _, dep := range s3.InDeps {
		for j := 0; j < 6; j++ {
			q := dep.Rel.Image(isl.NewVec(j))
			var need int
			switch dep.Src.Name {
			case "S1":
				need = j / 2
			case "S2":
				need = 3 * j
			}
			if q[0] < need {
				t.Errorf("S3[%d] waits for %s[%d], needs >= %d", j, dep.Src.Name, q[0], need)
			}
		}
	}
}
