package core

import (
	"fmt"
	"runtime"

	"repro/internal/deps"
	"repro/internal/isl"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/scop"
)

// Options tunes pipeline detection.
type Options struct {
	// MinBlockIters, when > 1, coarsens every statement's blocking map
	// so each task spans at least this many iterations (task
	// granularity knob, §7). The default keeps the optimal blocks of
	// Eq. 3.
	MinBlockIters int
	// PairwiseBlocks disables the Eq. 3 integration and instead blocks
	// each statement by only its first pairwise blocking map (ablation
	// of the §4.2 design choice). Programs whose statements take part
	// in a single pipeline map are unaffected.
	PairwiseBlocks bool
	// AllowOverwrites enables the relaxed last-writer pipeline maps
	// (PipelineMapRelaxed) for statements whose write access is
	// declared MayOverwrite — the §7 extension beyond the paper's
	// injective-write assumption.
	AllowOverwrites bool
	// Workers bounds the detection worker pool: the per-pair pipeline-
	// map phase, the per-statement blocking integration, and the
	// per-pair dependency-relation phase all fan out over this many
	// goroutines. 0 means GOMAXPROCS; 1 forces the serial path. Results
	// are bit-identical across widths (see docs/PERFORMANCE.md).
	Workers int
	// Obs, when non-nil, receives per-phase detection timings
	// ("detect.dependence_analysis", "detect.pipeline_maps",
	// "detect.blocking_integration", "detect.dependency_relations") and
	// per-SCoP counts ("detect.statements", "detect.pairs",
	// "detect.blocks", "detect.dep_edges"). Detection behaviour is
	// unchanged; see docs/OBSERVABILITY.md.
	Obs *obs.Recorder
	// Backend selects the detection algebra. "" and "explicit" run
	// Algorithm 1 over the enumerated relations of the compiled isl
	// backend. BackendSymbolic ("symbolic") evaluates the closed-form
	// constraint algebra of internal/isl/sym first — cost independent
	// of domain size — and falls back to the explicit path whenever the
	// SCoP or options land outside its fragment, so the result is
	// always bit-identical to the explicit one. The backend actually
	// used is recorded as a "detect.backend.*" obs counter.
	Backend string
}

// PipelinePair records the pipeline map between one dependent pair of
// statements, plus the pairwise blocking maps derived from it.
type PipelinePair struct {
	Src, Dst *scop.Statement
	T        *isl.Map // pipeline map: I_src → I_dst
	V        *isl.Map // source blocking map of Src (total over I_src)
	Y        *isl.Map // target blocking map of Dst (total over I_dst)
}

// InDep is one in-dependency family of a statement's blocks: Rel maps
// each block leader of the statement (Range(E_S)) to the leader of the
// source-statement block that must complete first (Eq. 4, normalized
// through the source's own E so the dependency names a real task).
// Blocks with no entry in Rel do not depend on Src at all.
type InDep struct {
	Src *scop.Statement
	Rel *isl.Map
}

// Block is one pipeline block (one task): the leader identifies it and
// is its lexicographic maximum; Members are its iterations in
// execution order.
type Block struct {
	Leader  isl.Vec
	Members []isl.Vec
}

// StmtInfo is the per-statement result of detection: the integrated
// blocking map E_S, the materialized blocks in execution order, and
// the block-level in-dependencies. The out-dependency Q'_S is the
// identity on Range(E_S) and is represented implicitly by each block's
// leader.
type StmtInfo struct {
	Stmt   *scop.Statement
	E      *isl.Map
	Blocks []Block
	InDeps []InDep
	// blockIndex maps the interned id of each block leader to its
	// position in Blocks. Detect fills it when blocks are materialized;
	// hand-built StmtInfo values leave it nil and BlockIndex falls back
	// to a linear scan.
	blockIndex map[uint32]int
	leaders    *isl.Interner
}

// BlockIndex returns the position of the block led by leader in
// execution order, or -1. Lowering calls this once per dependency, so
// detection indexes the leaders by interned id; the lookup is O(1).
func (si *StmtInfo) BlockIndex(leader isl.Vec) int {
	if si.blockIndex != nil {
		if id, ok := si.leaders.ID(leader); ok {
			if i, ok := si.blockIndex[id]; ok {
				return i
			}
		}
		return -1
	}
	for i := range si.Blocks {
		if si.Blocks[i].Leader.Eq(leader) {
			return i
		}
	}
	return -1
}

// Info is the result of Algorithm 1 for a whole SCoP.
type Info struct {
	SCoP  *scop.SCoP
	Graph *deps.Graph
	Pairs []PipelinePair
	Stmts []*StmtInfo // indexed by statement Index
}

// Stmt returns the StmtInfo of the named statement, or nil.
func (in *Info) Stmt(name string) *StmtInfo {
	for _, si := range in.Stmts {
		if si.Stmt.Name == name {
			return si
		}
	}
	return nil
}

// TotalBlocks returns the number of tasks the transformed program will
// create.
func (in *Info) TotalBlocks() int {
	n := 0
	for _, si := range in.Stmts {
		n += len(si.Blocks)
	}
	return n
}

// Freeze materializes the lazy ordering caches of every relation the
// result holds — statement domains, pair T/V/Y maps, integrated E
// maps, in-dependency relations, and the dependence graph — and
// returns in. A frozen Info is safe for any number of concurrent
// readers (lookups, lowering, execution) with no further
// synchronization, which is the representation the detection cache
// stores (internal/cache).
func (in *Info) Freeze() *Info {
	for _, s := range in.SCoP.Stmts {
		s.Domain.Freeze()
	}
	if in.Graph != nil {
		in.Graph.Freeze()
	}
	for i := range in.Pairs {
		p := &in.Pairs[i]
		p.T.Freeze()
		p.V.Freeze()
		p.Y.Freeze()
	}
	for _, si := range in.Stmts {
		if si == nil {
			continue
		}
		si.E.Freeze()
		for _, d := range si.InDeps {
			d.Rel.Freeze()
		}
	}
	return in
}

// Detect runs Algorithm 1 on sc: it computes pipeline maps for every
// flow-dependent statement pair, derives and integrates blocking maps,
// and attaches block-level dependency relations. The SCoP must be free
// of cross-statement anti/output hazards (each nest writes its own
// array); Detect rejects it otherwise.
//
// The three map-construction phases fan their independent jobs
// (per dependent pair, per statement, per pair again) over a pool of
// Options.Workers goroutines. Jobs write index-addressed result slots
// and the merges walk those slots in enumeration order, so the result
// — including the error returned on a rejected SCoP — is bit-identical
// to the Workers=1 serial path.
func Detect(sc *scop.SCoP, opts Options) (*Info, error) {
	switch opts.Backend {
	case "", "explicit":
	case BackendSymbolic:
		if si, err := DetectSymbolic(sc, opts); err == nil {
			opts.Obs.Count("detect.backend.symbolic", 1)
			return si.Materialize(), nil
		}
		// Outside the symbolic fragment (or structurally invalid):
		// the explicit path below recomputes from scratch and owns the
		// error reporting, so selecting the backend never changes
		// results or diagnostics.
		opts.Obs.Count("detect.backend.symbolic_fallback", 1)
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownBackend, opts.Backend)
	}
	opts.Obs.Count("detect.backend."+isl.BackendName, 1)
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNotPipelinable, err)
	}
	if opts.Obs != nil {
		// Allocation accounting brackets the whole detection: the
		// delta of the runtime's cumulative heap total (cheap but
		// process-wide, hence gated on an observer being attached) and
		// the isl scratch pool's reuse counter, which together show
		// how much of the relation algebra ran out of pooled buffers.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		startBytes := ms.TotalAlloc
		_, startReuse := isl.ScratchStats()
		defer func() {
			runtime.ReadMemStats(&ms)
			opts.Obs.Count("detect.bytes_alloc", int64(ms.TotalAlloc-startBytes))
			_, reuse := isl.ScratchStats()
			opts.Obs.Count("detect.scratch_reuse", int64(reuse-startReuse))
		}()
	}
	workers := par.Workers(opts.Workers)
	opts.Obs.SetGauge("detect.parallel_workers", int64(workers))
	stop := opts.Obs.Phase("detect.dependence_analysis")
	if err := deps.CrossHazards(sc); err != nil {
		stop()
		return nil, fmt.Errorf("%w: %w", ErrNotPipelinable, err)
	}
	g := deps.AnalyzeParallel(sc, workers)
	stop()
	opts.Obs.Count("detect.statements", int64(len(sc.Stmts)))
	info := &Info{SCoP: sc, Graph: g}

	// Statement domains are shared across the per-pair jobs below
	// (every pair touching a statement reads its domain); freezing them
	// materializes the lazy ordering caches so concurrent readers never
	// mutate shared state.
	for _, s := range sc.Stmts {
		s.Domain.Freeze()
	}

	// Pairwise pipeline maps and blocking maps (Algorithm 1, lines 1–7).
	// Pair enumeration is serial (it fixes the deterministic job order);
	// the expensive map constructions run one job per dependent pair.
	stop = opts.Obs.Phase("detect.pipeline_maps")
	type pairJob struct {
		src, dst *scop.Statement
		rd       *isl.Map
	}
	var jobs []pairJob
	for _, src := range sc.Stmts {
		if src.Write == nil {
			continue
		}
		for _, dst := range g.Targets(src) {
			if rd := unionReads(dst, src.Write.Array()); rd != nil {
				jobs = append(jobs, pairJob{src: src, dst: dst, rd: rd})
			}
		}
	}
	type pairResult struct {
		pair PipelinePair
		ok   bool
		err  error
	}
	results := make([]pairResult, len(jobs))
	par.For(len(jobs), workers, func(i int) {
		j := jobs[i]
		var t *isl.Map
		var err error
		if j.src.Write.MayOverwrite {
			if !opts.AllowOverwrites {
				results[i].err = fmt.Errorf("%w: statement %q has a non-injective write; set Options.AllowOverwrites to use the relaxed extension", ErrNotPipelinable, j.src.Name)
				return
			}
			t, err = PipelineMapRelaxed(j.src.Write.Rel, j.rd)
		} else {
			t, err = PipelineMap(j.src.Write.Rel, j.rd)
		}
		if err != nil {
			results[i].err = fmt.Errorf("core: pipeline map %s -> %s: %w", j.src.Name, j.dst.Name, err)
			return
		}
		if t.IsEmpty() {
			return
		}
		results[i] = pairResult{
			pair: PipelinePair{
				Src: j.src,
				Dst: j.dst,
				T:   t,
				V:   SourceBlockingMap(j.src.Domain, t),
				Y:   TargetBlockingMap(j.dst.Domain, t),
			},
			ok: true,
		}
	})
	blockingMaps := make([][]*isl.Map, len(sc.Stmts))
	for i := range results {
		if err := results[i].err; err != nil {
			stop()
			return nil, err // first error in enumeration order, as serially
		}
		if !results[i].ok {
			continue
		}
		pair := results[i].pair
		info.Pairs = append(info.Pairs, pair)
		blockingMaps[pair.Src.Index] = append(blockingMaps[pair.Src.Index], pair.V)
		blockingMaps[pair.Dst.Index] = append(blockingMaps[pair.Dst.Index], pair.Y)
	}
	stop()
	opts.Obs.Count("detect.pairs", int64(len(info.Pairs)))

	// Integrated blocking maps E_S (lines 8–9) and blocks, one job per
	// statement. Slots are indexed by statement Index (Validate
	// guarantees Stmts[i].Index == i).
	stop = opts.Obs.Phase("detect.blocking_integration")
	info.Stmts = make([]*StmtInfo, len(sc.Stmts))
	par.For(len(sc.Stmts), workers, func(i int) {
		s := sc.Stmts[i]
		maps := blockingMaps[s.Index]
		if opts.PairwiseBlocks && len(maps) > 1 {
			maps = maps[:1]
		}
		e := IntegrateBlockingMaps(s.Domain, maps)
		e = Coarsen(e, s.Domain, opts.MinBlockIters)
		blocks, index := materializeBlocks(s.Domain, e)
		info.Stmts[s.Index] = &StmtInfo{
			Stmt:       s,
			E:          e,
			Blocks:     blocks,
			blockIndex: index,
			leaders:    isl.InternerFor(e.OutSpace()),
		}
	})
	stop()
	opts.Obs.Count("detect.blocks", int64(info.TotalBlocks()))

	// Block-level in-dependencies Q_S (lines 10–12, Eq. 4), one job per
	// pair. A statement's E is read by every pair sharing that source,
	// but E is single-valued so the reads (Image) are mutation-free;
	// each pair's T and Y are owned by exactly one job here.
	stop = opts.Obs.Phase("detect.dependency_relations")
	rels := make([]*isl.Map, len(info.Pairs))
	par.For(len(info.Pairs), workers, func(i int) {
		pair := info.Pairs[i]
		rels[i] = dependencyRelation(pair, info.Stmts[pair.Src.Index].E, info.Stmts[pair.Dst.Index])
	})
	depEdges := 0
	for i, pair := range info.Pairs {
		if rel := rels[i]; !rel.IsEmpty() {
			dstInfo := info.Stmts[pair.Dst.Index]
			dstInfo.InDeps = append(dstInfo.InDeps, InDep{Src: pair.Src, Rel: rel})
			depEdges += rel.Card()
		}
	}
	stop()
	opts.Obs.Count("detect.dep_edges", int64(depEdges))
	return info, nil
}

// unionReads returns the union of dst's read relations from the named
// array, or nil when dst never reads it.
func unionReads(dst *scop.Statement, array string) *isl.Map {
	rels := dst.ReadsFrom(array)
	if len(rels) == 0 {
		return nil
	}
	u := rels[0]
	for _, r := range rels[1:] {
		u = u.Union(r)
	}
	return u
}

// materializeBlocks lists the blocks of e over domain in execution
// (lexicographic leader) order, together with the leader-id → block
// position index BlockIndex serves from.
func materializeBlocks(domain *isl.Set, e *isl.Map) ([]Block, map[uint32]int) {
	leaders := isl.InternerFor(e.OutSpace())
	var blocks []Block
	index := make(map[uint32]int)
	var cur *Block
	for _, v := range domain.Elements() {
		leader := e.Image(v)
		if cur == nil || !cur.Leader.Eq(leader) {
			index[leaders.Intern(leader)] = len(blocks)
			blocks = append(blocks, Block{Leader: leader})
			cur = &blocks[len(blocks)-1]
		}
		cur.Members = append(cur.Members, v)
	}
	return blocks, index
}

// dependencyRelation implements Eq. 4 for one pipeline pair: each
// block of the destination maps to the leader of the source block
// whose completion enables every member of the block:
//
//	y  = Y(j)            the pairwise target block containing member j
//	i  = lexmin(T⁻¹(y))  the earliest source iteration enabling y
//	q  = E_src(i)        the integrated source block containing i
//
// With the optimal (Eq. 3) blocking, every member of a block shares
// one pairwise block (pairwise leaders are a subset of the integrated
// leaders), so checking the block leader alone suffices; a coarsened
// block, however, can span several pairwise blocks, including the
// dependence-free tail beyond Range(T). Requirements grow
// monotonically with the member, so the strongest one comes from the
// last member whose pairwise block is enabled by some source
// iteration; members beyond Range(T) read nothing from this source.
// Blocks none of whose members depend on the source are absent from
// the relation.
func dependencyRelation(pair PipelinePair, eSrc *isl.Map, dstInfo *StmtInfo) *isl.Map {
	tInv := pair.T.Inverse()
	rel := isl.NewMap(dstInfo.E.OutSpace(), eSrc.OutSpace())
	for _, blk := range dstInfo.Blocks {
		for m := len(blk.Members) - 1; m >= 0; m-- {
			ys := pair.Y.Lookup(blk.Members[m])
			if len(ys) == 0 {
				continue
			}
			is := tInv.Lookup(ys[0])
			if len(is) == 0 {
				continue // dependence-free tail: try an earlier member
			}
			rel.Add(blk.Leader, eSrc.Image(is[0]))
			break
		}
	}
	return rel
}
