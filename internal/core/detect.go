package core

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/isl"
	"repro/internal/obs"
	"repro/internal/scop"
)

// Options tunes pipeline detection.
type Options struct {
	// MinBlockIters, when > 1, coarsens every statement's blocking map
	// so each task spans at least this many iterations (task
	// granularity knob, §7). The default keeps the optimal blocks of
	// Eq. 3.
	MinBlockIters int
	// PairwiseBlocks disables the Eq. 3 integration and instead blocks
	// each statement by only its first pairwise blocking map (ablation
	// of the §4.2 design choice). Programs whose statements take part
	// in a single pipeline map are unaffected.
	PairwiseBlocks bool
	// AllowOverwrites enables the relaxed last-writer pipeline maps
	// (PipelineMapRelaxed) for statements whose write access is
	// declared MayOverwrite — the §7 extension beyond the paper's
	// injective-write assumption.
	AllowOverwrites bool
	// Obs, when non-nil, receives per-phase detection timings
	// ("detect.dependence_analysis", "detect.pipeline_maps",
	// "detect.blocking_integration", "detect.dependency_relations") and
	// per-SCoP counts ("detect.statements", "detect.pairs",
	// "detect.blocks", "detect.dep_edges"). Detection behaviour is
	// unchanged; see docs/OBSERVABILITY.md.
	Obs *obs.Recorder
}

// PipelinePair records the pipeline map between one dependent pair of
// statements, plus the pairwise blocking maps derived from it.
type PipelinePair struct {
	Src, Dst *scop.Statement
	T        *isl.Map // pipeline map: I_src → I_dst
	V        *isl.Map // source blocking map of Src (total over I_src)
	Y        *isl.Map // target blocking map of Dst (total over I_dst)
}

// InDep is one in-dependency family of a statement's blocks: Rel maps
// each block leader of the statement (Range(E_S)) to the leader of the
// source-statement block that must complete first (Eq. 4, normalized
// through the source's own E so the dependency names a real task).
// Blocks with no entry in Rel do not depend on Src at all.
type InDep struct {
	Src *scop.Statement
	Rel *isl.Map
}

// Block is one pipeline block (one task): the leader identifies it and
// is its lexicographic maximum; Members are its iterations in
// execution order.
type Block struct {
	Leader  isl.Vec
	Members []isl.Vec
}

// StmtInfo is the per-statement result of detection: the integrated
// blocking map E_S, the materialized blocks in execution order, and
// the block-level in-dependencies. The out-dependency Q'_S is the
// identity on Range(E_S) and is represented implicitly by each block's
// leader.
type StmtInfo struct {
	Stmt   *scop.Statement
	E      *isl.Map
	Blocks []Block
	InDeps []InDep
}

// BlockIndex returns the position of the block led by leader in
// execution order, or -1.
func (si *StmtInfo) BlockIndex(leader isl.Vec) int {
	for i := range si.Blocks {
		if si.Blocks[i].Leader.Eq(leader) {
			return i
		}
	}
	return -1
}

// Info is the result of Algorithm 1 for a whole SCoP.
type Info struct {
	SCoP  *scop.SCoP
	Graph *deps.Graph
	Pairs []PipelinePair
	Stmts []*StmtInfo // indexed by statement Index
}

// Stmt returns the StmtInfo of the named statement, or nil.
func (in *Info) Stmt(name string) *StmtInfo {
	for _, si := range in.Stmts {
		if si.Stmt.Name == name {
			return si
		}
	}
	return nil
}

// TotalBlocks returns the number of tasks the transformed program will
// create.
func (in *Info) TotalBlocks() int {
	n := 0
	for _, si := range in.Stmts {
		n += len(si.Blocks)
	}
	return n
}

// Detect runs Algorithm 1 on sc: it computes pipeline maps for every
// flow-dependent statement pair, derives and integrates blocking maps,
// and attaches block-level dependency relations. The SCoP must be free
// of cross-statement anti/output hazards (each nest writes its own
// array); Detect rejects it otherwise.
func Detect(sc *scop.SCoP, opts Options) (*Info, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	stop := opts.Obs.Phase("detect.dependence_analysis")
	if err := deps.CrossHazards(sc); err != nil {
		stop()
		return nil, fmt.Errorf("core: scop not pipelinable: %w", err)
	}
	g := deps.Analyze(sc)
	stop()
	opts.Obs.Count("detect.statements", int64(len(sc.Stmts)))
	info := &Info{SCoP: sc, Graph: g}

	// Pairwise pipeline maps and blocking maps (Algorithm 1, lines 1–7).
	stop = opts.Obs.Phase("detect.pipeline_maps")
	blockingMaps := make([][]*isl.Map, len(sc.Stmts))
	for _, src := range sc.Stmts {
		if src.Write == nil {
			continue
		}
		for _, dst := range g.Targets(src) {
			rd := unionReads(dst, src.Write.Array())
			if rd == nil {
				continue
			}
			var t *isl.Map
			var err error
			if src.Write.MayOverwrite {
				if !opts.AllowOverwrites {
					stop()
					return nil, fmt.Errorf("core: statement %q has a non-injective write; set Options.AllowOverwrites to use the relaxed extension", src.Name)
				}
				t, err = PipelineMapRelaxed(src.Write.Rel, rd)
			} else {
				t, err = PipelineMap(src.Write.Rel, rd)
			}
			if err != nil {
				stop()
				return nil, fmt.Errorf("core: pipeline map %s -> %s: %w", src.Name, dst.Name, err)
			}
			if t.IsEmpty() {
				continue
			}
			pair := PipelinePair{
				Src: src,
				Dst: dst,
				T:   t,
				V:   SourceBlockingMap(src.Domain, t),
				Y:   TargetBlockingMap(dst.Domain, t),
			}
			info.Pairs = append(info.Pairs, pair)
			blockingMaps[src.Index] = append(blockingMaps[src.Index], pair.V)
			blockingMaps[dst.Index] = append(blockingMaps[dst.Index], pair.Y)
		}
	}
	stop()
	opts.Obs.Count("detect.pairs", int64(len(info.Pairs)))

	// Integrated blocking maps E_S (lines 8–9) and blocks.
	stop = opts.Obs.Phase("detect.blocking_integration")
	for _, s := range sc.Stmts {
		maps := blockingMaps[s.Index]
		if opts.PairwiseBlocks && len(maps) > 1 {
			maps = maps[:1]
		}
		e := IntegrateBlockingMaps(s.Domain, maps)
		e = Coarsen(e, s.Domain, opts.MinBlockIters)
		si := &StmtInfo{
			Stmt:   s,
			E:      e,
			Blocks: materializeBlocks(s.Domain, e),
		}
		info.Stmts = append(info.Stmts, si)
	}
	stop()
	opts.Obs.Count("detect.blocks", int64(info.TotalBlocks()))

	// Block-level in-dependencies Q_S (lines 10–12, Eq. 4).
	stop = opts.Obs.Phase("detect.dependency_relations")
	depEdges := 0
	for _, pair := range info.Pairs {
		srcInfo := info.Stmts[pair.Src.Index]
		dstInfo := info.Stmts[pair.Dst.Index]
		rel := dependencyRelation(pair, srcInfo.E, dstInfo)
		if !rel.IsEmpty() {
			dstInfo.InDeps = append(dstInfo.InDeps, InDep{Src: pair.Src, Rel: rel})
			depEdges += rel.Card()
		}
	}
	stop()
	opts.Obs.Count("detect.dep_edges", int64(depEdges))
	return info, nil
}

// unionReads returns the union of dst's read relations from the named
// array, or nil when dst never reads it.
func unionReads(dst *scop.Statement, array string) *isl.Map {
	rels := dst.ReadsFrom(array)
	if len(rels) == 0 {
		return nil
	}
	u := rels[0]
	for _, r := range rels[1:] {
		u = u.Union(r)
	}
	return u
}

// materializeBlocks lists the blocks of e over domain in execution
// (lexicographic leader) order.
func materializeBlocks(domain *isl.Set, e *isl.Map) []Block {
	var blocks []Block
	var cur *Block
	for _, v := range domain.Elements() {
		leader := e.Image(v)
		if cur == nil || !cur.Leader.Eq(leader) {
			blocks = append(blocks, Block{Leader: leader})
			cur = &blocks[len(blocks)-1]
		}
		cur.Members = append(cur.Members, v)
	}
	return blocks
}

// dependencyRelation implements Eq. 4 for one pipeline pair: each
// block of the destination maps to the leader of the source block
// whose completion enables every member of the block:
//
//	y  = Y(j)            the pairwise target block containing member j
//	i  = lexmin(T⁻¹(y))  the earliest source iteration enabling y
//	q  = E_src(i)        the integrated source block containing i
//
// With the optimal (Eq. 3) blocking, every member of a block shares
// one pairwise block (pairwise leaders are a subset of the integrated
// leaders), so checking the block leader alone suffices; a coarsened
// block, however, can span several pairwise blocks, including the
// dependence-free tail beyond Range(T). Requirements grow
// monotonically with the member, so the strongest one comes from the
// last member whose pairwise block is enabled by some source
// iteration; members beyond Range(T) read nothing from this source.
// Blocks none of whose members depend on the source are absent from
// the relation.
func dependencyRelation(pair PipelinePair, eSrc *isl.Map, dstInfo *StmtInfo) *isl.Map {
	tInv := pair.T.Inverse()
	rel := isl.NewMap(dstInfo.E.OutSpace(), eSrc.OutSpace())
	for _, blk := range dstInfo.Blocks {
		for m := len(blk.Members) - 1; m >= 0; m-- {
			ys := pair.Y.Lookup(blk.Members[m])
			if len(ys) == 0 {
				continue
			}
			is := tInv.Lookup(ys[0])
			if len(is) == 0 {
				continue // dependence-free tail: try an earlier member
			}
			rel.Add(blk.Leader, eSrc.Image(is[0]))
			break
		}
	}
	return rel
}
