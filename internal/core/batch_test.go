package core

import (
	"context"
	"testing"

	"repro/internal/fuzzscop"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// TestDetectBatchMatchesDetect: every batch slot is bit-identical to a
// standalone Detect of the same SCoP, in input order, across pool
// widths — including width 1 (serial) and the single-item fast path.
func TestDetectBatchMatchesDetect(t *testing.T) {
	scs := []*scop.SCoP{buildFigure4(t, 8), fuzzscop.Stress(), buildFigure4(t, 12)}
	want := make([]*Info, len(scs))
	for i, sc := range scs {
		info, err := Detect(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = info
	}
	for _, workers := range []int{1, 2, 8} {
		infos, errs := DetectBatch(context.Background(), scs, Options{Workers: workers})
		for i := range scs {
			if errs[i] != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, errs[i])
			}
			if err := EqualInfo(want[i], infos[i]); err != nil {
				t.Fatalf("workers=%d item %d differs from standalone Detect: %v", workers, i, err)
			}
		}
	}
	// Single-item batch delegates to Detect directly.
	infos, errs := DetectBatch(context.Background(), scs[:1], Options{Workers: 4})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if err := EqualInfo(want[0], infos[0]); err != nil {
		t.Fatalf("single-item batch differs: %v", err)
	}
}

// TestDetectBatchPerItemErrors: a rejected SCoP fails its own slot
// without poisoning its neighbours.
func TestDetectBatchPerItemErrors(t *testing.T) {
	bad := scop.NewBuilder("hazard")
	bad.Array("A", 1)
	bad.Stmt("S", aff.RectDomain("S", 4)).Writes("A", aff.Var(1, 0))
	bad.Stmt("T", aff.RectDomain("T", 4)).Writes("A", aff.Var(1, 0))
	scs := []*scop.SCoP{buildFigure4(t, 8), bad.MustBuild(), buildFigure4(t, 8)}

	infos, errs := DetectBatch(context.Background(), scs, Options{Workers: 4})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good items errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil || infos[1] != nil {
		t.Fatalf("hazardous item: info=%v err=%v, want rejection", infos[1], errs[1])
	}
	if err := EqualInfo(infos[0], infos[2]); err != nil {
		t.Fatalf("identical good items differ: %v", err)
	}
}

// TestDetectBatchCanceled: a canceled context marks unstarted items
// with ctx.Err() instead of detecting them.
func TestDetectBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scs := []*scop.SCoP{buildFigure4(t, 8), buildFigure4(t, 8)}
	infos, errs := DetectBatch(ctx, scs, Options{Workers: 2})
	for i := range scs {
		if errs[i] != context.Canceled {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, errs[i])
		}
		if infos[i] != nil {
			t.Fatalf("item %d: got an Info despite cancellation", i)
		}
	}
	// Single-item path honors the pre-canceled ctx too.
	infos, errs = DetectBatch(ctx, scs[:1], Options{})
	if errs[0] != context.Canceled || infos[0] != nil {
		t.Fatalf("single item: info=%v err=%v", infos[0], errs[0])
	}
}
