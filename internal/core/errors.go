package core

import "errors"

// Sentinel errors of the detection core. Callers — the serving layer
// above all — branch on these with errors.Is instead of string-matching
// formatted messages; every formatted error Detect returns wraps the
// matching sentinel.
var (
	// ErrNotPipelinable reports a SCoP the transformation cannot
	// accept: cross-statement anti/output hazards, a non-injective
	// write without AllowOverwrites, or a structurally invalid SCoP.
	// The wrapped message names the offending statements.
	ErrNotPipelinable = errors.New("core: scop not pipelinable")

	// ErrUnknownBackend reports an Options.Backend value naming no
	// compiled detection backend.
	ErrUnknownBackend = errors.New("core: unknown detection backend")
)
