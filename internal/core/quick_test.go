package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isl"
)

// randAccessPair builds a random injective write relation for a 2-D
// source domain and a random affine-ish read relation for a 2-D target
// domain over the same array, mimicking the access patterns of
// Table 9 (identity, strided, shifted).
func randAccessPair(r *rand.Rand) (wr, rd *isl.Map) {
	n := 4 + r.Intn(5)
	srcSpace := isl.NewSpace("S", 2)
	dstSpace := isl.NewSpace("T", 2)
	mem := isl.NewSpace("A", 2)

	wr = isl.NewMap(srcSpace, mem)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			wr.Add(isl.NewVec(i, j), isl.NewVec(i, j))
		}
	}
	// Read access A[a*i + c][b*j + d] with small strides/offsets.
	a, b := 1+r.Intn(2), 1+r.Intn(2)
	c, d := r.Intn(3), r.Intn(3)
	m := n
	if a == 2 || b == 2 {
		m = n / 2
	}
	rd = isl.NewMap(dstSpace, mem)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			ri, rj := a*i+c, b*j+d
			if ri < n && rj < n {
				rd.Add(isl.NewVec(i, j), isl.NewVec(ri, rj))
			}
		}
	}
	return wr, rd
}

// TestQuickPipelineMapSafety checks the defining property (1) of §4.1
// on random access patterns: for every (i, j) in the pipeline map,
// every cell read by target iterations ≼ j that the source writes at
// all is written by source iterations ≼ i.
func TestQuickPipelineMapSafety(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wr, rd := randAccessPair(r)
		if rd.IsEmpty() {
			return true
		}
		pm, err := PipelineMap(wr, rd)
		if err != nil {
			return false
		}
		ok := true
		pm.Foreach(func(i, j isl.Vec) bool {
			// Cells written by source iterations ≼ i.
			avail := wr.ApplySet(wr.Domain().Filter(func(v isl.Vec) bool {
				return v.Cmp(i) <= 0
			}))
			everWritten := wr.Range()
			rd.Foreach(func(tj, cell isl.Vec) bool {
				if tj.Cmp(j) > 0 || !everWritten.Contains(cell) {
					return true
				}
				if !avail.Contains(cell) {
					ok = false
					return false
				}
				return true
			})
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPipelineMapMonotone checks that the pipeline map preserves
// lexicographic order: finishing more of the source never enables less
// of the target.
func TestQuickPipelineMapMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wr, rd := randAccessPair(r)
		if rd.IsEmpty() {
			return true
		}
		pm, err := PipelineMap(wr, rd)
		if err != nil {
			return false
		}
		pairs := pm.Pairs()
		for k := 1; k < len(pairs); k++ {
			if pairs[k-1].In.Cmp(pairs[k].In) < 0 && pairs[k-1].Out.Cmp(pairs[k].Out) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPipelineMapMaximality checks the defining property (2): the
// target iteration T(i) is the largest safe one — the next read
// iteration in the pipeline-map construction requires a strictly later
// write.
func TestQuickPipelineMapMaximality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wr, rd := randAccessPair(r)
		if rd.IsEmpty() {
			return true
		}
		pm, err := PipelineMap(wr, rd)
		if err != nil {
			return false
		}
		// Recompute H = needed(j) = lexmax of source writes required
		// by target prefix ≼ j, brute force.
		p := isl.Compose(wr.Inverse(), rd)
		dp := p.Domain().Elements()
		ok := true
		pm.Foreach(func(i, j isl.Vec) bool {
			// j must be in Dp and need exactly i.
			var need isl.Vec
			for _, jj := range dp {
				if jj.Cmp(j) > 0 {
					break
				}
				for _, w := range p.Lookup(jj) {
					if need == nil || w.Cmp(need) > 0 {
						need = w
					}
				}
			}
			if need == nil || !need.Eq(i) {
				ok = false
				return false
			}
			// Any later element of Dp must need a strictly later write.
			for _, jj := range dp {
				if jj.Cmp(j) <= 0 {
					continue
				}
				later := need
				for _, w := range p.Lookup(jj) {
					if w.Cmp(later) > 0 {
						later = w
					}
				}
				if !(later.Cmp(i) > 0) {
					ok = false
				}
				break // only the immediately next Dp element matters
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBlockingInvariants checks that BlockingMap over random
// leader subsets is total, monotone, idempotent, and never below the
// identity.
func TestQuickBlockingInvariants(t *testing.T) {
	sp := isl.NewSpace("S", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		dom := isl.NewSet(sp)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dom.Add(isl.NewVec(i, j))
			}
		}
		leaders := dom.Filter(func(isl.Vec) bool { return r.Intn(3) == 0 })
		e := BlockingMap(dom, leaders)
		if !e.Domain().Equal(dom) || !e.IsSingleValued() {
			return false
		}
		var prevLeader isl.Vec
		for _, v := range dom.Elements() {
			l := e.Image(v)
			if l.Cmp(v) < 0 || !e.Image(l).Eq(l) {
				return false
			}
			if prevLeader != nil && l.Cmp(prevLeader) < 0 {
				return false
			}
			prevLeader = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntegrationIsLexmin checks Eq. 3 directly: the integrated
// map picks, pointwise, the smallest leader among all pairwise maps.
func TestQuickIntegrationIsLexmin(t *testing.T) {
	sp := isl.NewSpace("S", 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		dom := isl.NewSet(sp)
		for i := 0; i < n; i++ {
			dom.Add(isl.NewVec(i))
		}
		var maps []*isl.Map
		for k := 0; k < 1+r.Intn(3); k++ {
			leaders := dom.Filter(func(isl.Vec) bool { return r.Intn(2) == 0 })
			maps = append(maps, BlockingMap(dom, leaders))
		}
		e := IntegrateBlockingMaps(dom, maps)
		for _, v := range dom.Elements() {
			var want isl.Vec
			for _, m := range maps {
				img := m.Image(v)
				if want == nil || img.Cmp(want) < 0 {
					want = img
				}
			}
			if !e.Image(v).Eq(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
