package core

import (
	"context"

	"repro/internal/par"
	"repro/internal/scop"
)

// DetectBatch runs Detect over a batch of SCoPs and returns the
// results in input order, with a per-item error slice (exactly one of
// infos[i], errs[i] is non-nil for every item that ran).
//
// Parallelism is applied across items rather than within them: the
// batch fans out over Options.Workers goroutines and each item runs a
// serial Detect, which keeps the pool width bounded by opts.Workers
// instead of its square. A single-item batch degenerates to a plain
// Detect with the caller's Workers, so the intra-SCoP pool is never
// wasted. Either way each result is bit-identical to a standalone
// Detect call (the determinism contract, docs/PERFORMANCE.md).
//
// ctx cancels admission, not detection: items not yet started when ctx
// is done are marked with ctx.Err() and in-flight items run to
// completion. A nil ctx never cancels. The cached serving path
// (internal/cache.Cache.GetBatch) layers hit/miss partitioning and
// in-flight deduplication on top of this.
func DetectBatch(ctx context.Context, scs []*scop.SCoP, opts Options) ([]*Info, []error) {
	infos := make([]*Info, len(scs))
	errs := make([]error, len(scs))
	if len(scs) == 0 {
		return infos, errs
	}
	if len(scs) == 1 {
		if ctx != nil && ctx.Err() != nil {
			errs[0] = ctx.Err()
			return infos, errs
		}
		infos[0], errs[0] = Detect(scs[0], opts)
		return infos, errs
	}
	inner := opts
	inner.Workers = 1
	started := make([]bool, len(scs))
	err := par.ForCtx(ctx, len(scs), par.Workers(opts.Workers), func(i int) {
		started[i] = true
		infos[i], errs[i] = Detect(scs[i], inner)
	})
	if err != nil {
		for i := range scs {
			if !started[i] {
				errs[i] = err
			}
		}
	}
	return infos, errs
}
