package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// TestPipelineMapPaperExample reproduces the §4.1 worked example: for
// Listing 1 with N=20, the pipeline map between S and R is
// { S[i0, i1] -> R[o0, o1] : i1 = 2*o1, o0 = i0, 0 ≤ i0 ≤ 8, 0 ≤ i1 ≤ 16 }.
func TestPipelineMapPaperExample(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	s, r := sc.Statement("S"), sc.Statement("R")
	rd := r.ReadsFrom("A")[0]
	pm, err := PipelineMap(s.Write.Rel, rd)
	if err != nil {
		t.Fatal(err)
	}
	want := isl.NewMap(s.Domain.Space(), r.Domain.Space())
	for i0 := 0; i0 <= 8; i0++ {
		for o1 := 0; o1 <= 8; o1++ {
			want.Add(isl.NewVec(i0, 2*o1), isl.NewVec(i0, o1))
		}
	}
	if !pm.Equal(want) {
		t.Fatalf("pipeline map differs from the paper's example\n got: %v\nwant: %v", pm, want)
	}
}

// TestSourceBlockingPaperExample checks the §4.1 blocking-map example:
// iterations S[1,1] and S[1,2] share the block led by S[1,2]; S[1,3]
// and S[1,4] share the block led by S[1,4].
func TestSourceBlockingPaperExample(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	s, r := sc.Statement("S"), sc.Statement("R")
	pm, err := PipelineMap(s.Write.Rel, r.ReadsFrom("A")[0])
	if err != nil {
		t.Fatal(err)
	}
	v := SourceBlockingMap(s.Domain, pm)
	cases := [][2]isl.Vec{
		{isl.NewVec(1, 1), isl.NewVec(1, 2)},
		{isl.NewVec(1, 2), isl.NewVec(1, 2)},
		{isl.NewVec(1, 3), isl.NewVec(1, 4)},
		{isl.NewVec(1, 4), isl.NewVec(1, 4)},
	}
	for _, c := range cases {
		if got := v.Image(c[0]); !got.Eq(c[1]) {
			t.Errorf("V(%v) = %v, want %v", c[0], got, c[1])
		}
	}
	// Tail rule: iterations after the last pipeline leader (8,16) all
	// join the block led by the domain maximum (18,18).
	for _, iv := range []isl.Vec{isl.NewVec(8, 17), isl.NewVec(9, 0), isl.NewVec(18, 18)} {
		if got := v.Image(iv); !got.Eq(isl.NewVec(18, 18)) {
			t.Errorf("tail V(%v) = %v, want [18, 18]", iv, got)
		}
	}
	// Totality: every domain point has exactly one leader.
	if !v.Domain().Equal(s.Domain) || !v.IsSingleValued() {
		t.Error("V is not a total single-valued blocking map")
	}
}

func TestDetectListing1(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(info.Pairs))
	}
	rInfo := info.Stmt("R")
	sInfo := info.Stmt("S")
	if rInfo == nil || sInfo == nil {
		t.Fatal("missing statement info")
	}
	// R's only blocking map is the identity-led target blocking (every
	// iteration of R is a leader), so each iteration is its own block.
	if got, want := len(rInfo.Blocks), 9*9; got != want {
		t.Errorf("R blocks = %d, want %d", got, want)
	}
	// Dependency relation: R's block (i, j) waits for S's block (i, 2j).
	if len(rInfo.InDeps) != 1 || rInfo.InDeps[0].Src != sc.Statement("S") {
		t.Fatalf("R InDeps = %+v", rInfo.InDeps)
	}
	q := rInfo.InDeps[0].Rel
	if got := q.Image(isl.NewVec(3, 4)); !got.Eq(isl.NewVec(3, 8)) {
		t.Errorf("Q_R(3,4) = %v, want [3, 8]", got)
	}
	if got := q.Image(isl.NewVec(0, 0)); !got.Eq(isl.NewVec(0, 0)) {
		t.Errorf("Q_R(0,0) = %v, want [0, 0]", got)
	}
	// S has no in-dependencies.
	if len(sInfo.InDeps) != 0 {
		t.Errorf("S InDeps = %+v", sInfo.InDeps)
	}
	if info.TotalBlocks() != len(sInfo.Blocks)+len(rInfo.Blocks) {
		t.Error("TotalBlocks mismatch")
	}
}

// checkBlockingInvariants verifies a blocking map is total,
// single-valued, monotone, idempotent, and never maps an iteration
// below itself.
func checkBlockingInvariants(t *testing.T, name string, domain *isl.Set, e *isl.Map) {
	t.Helper()
	if !e.Domain().Equal(domain) {
		t.Errorf("%s: blocking map not total", name)
	}
	if !e.IsSingleValued() {
		t.Errorf("%s: blocking map not single-valued", name)
	}
	var prev isl.Vec
	var prevLeader isl.Vec
	for _, v := range domain.Elements() {
		l := e.Image(v)
		if l.Cmp(v) < 0 {
			t.Errorf("%s: E(%v) = %v is below the iteration", name, v, l)
		}
		if !e.Image(l).Eq(l) {
			t.Errorf("%s: E not idempotent at %v: E(E)=%v", name, v, e.Image(l))
		}
		if prev != nil && l.Cmp(prevLeader) < 0 {
			t.Errorf("%s: E not monotone: E(%v)=%v < E(%v)=%v", name, v, l, prev, prevLeader)
		}
		prev, prevLeader = v, l
	}
}

func TestDetectListing3Integration(t *testing.T) {
	sc := kernels.Listing3(16).SCoP
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: S->R, S->U, R->U.
	if len(info.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(info.Pairs))
	}
	for _, si := range info.Stmts {
		checkBlockingInvariants(t, si.Stmt.Name, si.Stmt.Domain, si.E)
	}
	// R participates in two pipeline maps (target of S, source of U):
	// its E must be the pointwise lexmin of both pairwise maps.
	r := sc.Statement("R")
	var yFromS, vToU *isl.Map
	for _, p := range info.Pairs {
		switch {
		case p.Dst == r:
			yFromS = p.Y
		case p.Src == r:
			vToU = p.V
		}
	}
	rInfo := info.Stmt("R")
	for _, v := range r.Domain.Elements() {
		want := isl.LexMin(yFromS.Image(v), vToU.Image(v))
		if got := rInfo.E.Image(v); !got.Eq(want) {
			t.Fatalf("E_R(%v) = %v, want lexmin = %v", v, got, want)
		}
	}
	// U depends on both S and R at block level.
	uInfo := info.Stmt("U")
	if len(uInfo.InDeps) != 2 {
		t.Fatalf("U InDeps = %d, want 2", len(uInfo.InDeps))
	}
	// Every in-dependency target must name an actual block leader of
	// its source statement (a task that exists).
	for _, si := range info.Stmts {
		for _, dep := range si.InDeps {
			srcInfo := info.Stmts[dep.Src.Index]
			leaders := srcInfo.E.Range()
			dep.Rel.Foreach(func(_, q isl.Vec) bool {
				if !leaders.Contains(q) {
					t.Errorf("%s: in-dep names non-existent source block %v of %s",
						si.Stmt.Name, q, dep.Src.Name)
				}
				return true
			})
		}
	}
}

// TestDependencyEnablesSafety verifies the semantic guarantee of Eq. 4
// on Listing 3: when the source block named by an in-dependency has
// completed (meaning all source iterations ≤ that leader ran), every
// read that any iteration of the dependent block performs on the
// source's array has already been written.
func TestDependencyEnablesSafety(t *testing.T) {
	sc := kernels.Listing3(12).SCoP
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range info.Stmts {
		for _, dep := range si.InDeps {
			src := dep.Src
			wr := src.Write.Rel
			written := func(upTo isl.Vec) *isl.Set {
				done := src.Domain.Filter(func(v isl.Vec) bool { return v.Cmp(upTo) <= 0 })
				return wr.ApplySet(done)
			}
			allWritten := wr.Range()
			for _, blk := range si.Blocks {
				qs := dep.Rel.Lookup(blk.Leader)
				var avail *isl.Set
				if len(qs) == 1 {
					avail = written(qs[0])
				} else {
					avail = isl.NewSet(wr.OutSpace()) // no dep ⇒ nothing needed
				}
				for _, member := range blk.Members {
					for _, rd := range si.Stmt.ReadsFrom(src.Write.Array()) {
						for _, cell := range rd.Lookup(member) {
							if !allWritten.Contains(cell) {
								continue // reads an original value
							}
							if !avail.Contains(cell) {
								t.Fatalf("block %v of %s reads %s%v before its in-dep (%v) makes it available",
									blk.Leader, si.Stmt.Name, src.Write.Array(), cell, qs)
							}
						}
					}
				}
			}
		}
	}
}

func TestDetectRejectsCrossHazard(t *testing.T) {
	b := scop.NewBuilder("hazard")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 4)).Writes("A", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", 4)).Writes("A", aff.Var(1, 0))
	sc := b.MustBuild()
	_, err := Detect(sc, Options{})
	if err == nil || !strings.Contains(err.Error(), "not pipelinable") {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineMapRejectsNonInjective(t *testing.T) {
	i := isl.NewSpace("S", 1)
	mem := isl.NewSpace("A", 1)
	wr := isl.NewMap(i, mem)
	wr.Add(isl.NewVec(0), isl.NewVec(0))
	wr.Add(isl.NewVec(1), isl.NewVec(0)) // over-write
	rd := isl.NewMap(isl.NewSpace("T", 1), mem)
	rd.Add(isl.NewVec(0), isl.NewVec(0))
	_, err := PipelineMap(wr, rd)
	if !errors.Is(err, ErrNonInjectiveWrite) {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineMapRejectsSpaceMismatch(t *testing.T) {
	wr := isl.NewMap(isl.NewSpace("S", 1), isl.NewSpace("A", 1))
	rd := isl.NewMap(isl.NewSpace("T", 1), isl.NewSpace("B", 1))
	if _, err := PipelineMap(wr, rd); err == nil {
		t.Fatal("expected space-mismatch error")
	}
}

func TestCoarsenGranularity(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	info, err := Detect(sc, Options{MinBlockIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range info.Stmts {
		checkBlockingInvariants(t, si.Stmt.Name, si.Stmt.Domain, si.E)
		for bi, blk := range si.Blocks {
			if len(blk.Members) < 8 && bi != len(si.Blocks)-1 {
				t.Errorf("%s block %d has %d iterations, want >= 8", si.Stmt.Name, bi, len(blk.Members))
			}
		}
	}
	fine, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalBlocks() >= fine.TotalBlocks() {
		t.Errorf("coarsened blocks (%d) not fewer than optimal (%d)",
			info.TotalBlocks(), fine.TotalBlocks())
	}
}

// TestCoarsenedBlockSpanningTail is the regression test for a bug the
// random differential tests found: when coarsening merges a statement's
// blocks into one, the merged leader's pairwise block can be the
// dependence-free tail beyond Range(T) even though earlier members do
// depend on the source. The dependency relation must then come from
// the last member with a real requirement, not from the leader.
func TestCoarsenedBlockSpanningTail(t *testing.T) {
	// S1 reads A0[2i-1] over 3 iterations (covers writes up to A0[3]);
	// S2 reads A1[2i-1] over 8 iterations (covers writes up to A1[1]
	// only, so most of S2 is dependence-free tail).
	b := scop.NewBuilder("tailspan")
	b.Array("A0", 1).Array("A1", 1).Array("A2", 1)
	b.Stmt("S0", aff.RectDomain("S0", 7)).Writes("A0", aff.Var(1, 0))
	b.Stmt("S1", aff.RectDomain("S1", 3)).
		Writes("A1", aff.Var(1, 0)).
		Reads("A0", aff.Linear(-1, 2))
	b.Stmt("S2", aff.RectDomain("S2", 8)).
		Writes("A2", aff.Var(1, 0)).
		Reads("A1", aff.Linear(-1, 2))
	sc := b.MustBuild()

	// Coarsen S2 into a single 8-iteration block: its leader [7] falls
	// in the tail of the S1->S2 pipeline map, but members [1..3] read
	// A1 cells, so the block must still wait on S1.
	info, err := Detect(sc, Options{MinBlockIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	s2 := info.Stmt("S2")
	if len(s2.Blocks) != 1 {
		t.Fatalf("S2 blocks = %d, want 1 (coarsened)", len(s2.Blocks))
	}
	if len(s2.InDeps) != 1 {
		t.Fatalf("S2 InDeps = %d, want 1 — coarse block lost its dependence on S1", len(s2.InDeps))
	}
	q := s2.InDeps[0].Rel
	if q.Card() != 1 {
		t.Fatalf("Q_S2 = %v", q)
	}
	// The requirement must name a real S1 block.
	s1Leaders := info.Stmt("S1").E.Range()
	q.Foreach(func(_, dep isl.Vec) bool {
		if !s1Leaders.Contains(dep) {
			t.Errorf("dep %v is not an S1 block leader", dep)
		}
		return true
	})
}

func TestCoarsenNoopForMinOne(t *testing.T) {
	sc := kernels.Listing1(12).SCoP
	a, _ := Detect(sc, Options{})
	b, _ := Detect(sc, Options{MinBlockIters: 1})
	for idx := range a.Stmts {
		if !a.Stmts[idx].E.Equal(b.Stmts[idx].E) {
			t.Fatal("MinBlockIters=1 changed blocking")
		}
	}
}

func TestDetectIndependentNests(t *testing.T) {
	// No flow deps: each statement becomes one big block, no in-deps.
	b := scop.NewBuilder("indep")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", 6)).Writes("A", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", 6)).Writes("B", aff.Var(1, 0))
	sc := b.MustBuild()
	info, err := Detect(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 0 {
		t.Fatalf("pairs = %d", len(info.Pairs))
	}
	for _, si := range info.Stmts {
		if len(si.Blocks) != 1 || len(si.Blocks[0].Members) != 6 {
			t.Errorf("%s: blocks = %+v", si.Stmt.Name, si.Blocks)
		}
		if len(si.InDeps) != 0 {
			t.Errorf("%s: unexpected in-deps", si.Stmt.Name)
		}
	}
}

func TestBlockIndex(t *testing.T) {
	sc := kernels.Listing1(12).SCoP
	info, _ := Detect(sc, Options{})
	si := info.Stmt("R")
	if got := si.BlockIndex(si.Blocks[3].Leader); got != 3 {
		t.Fatalf("BlockIndex = %d", got)
	}
	if got := si.BlockIndex(isl.NewVec(999, 999)); got != -1 {
		t.Fatalf("BlockIndex missing = %d", got)
	}
}
