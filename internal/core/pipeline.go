// Package core implements the paper's contribution: detection of
// cross-loop pipeline patterns in a SCoP. It computes, per dependent
// statement pair, the pipeline map (§4.1); per statement, the pairwise
// source/target blocking maps (Eq. 2) and their integration into a
// single optimal blocking map E_S (§4.2, Eq. 3); and per pipeline
// block, the dependency relations used to coordinate tasks (§4.3,
// Eq. 4) — the whole of Algorithm 1.
package core

import (
	"errors"
	"fmt"

	"repro/internal/isl"
)

// ErrNonInjectiveWrite reports a source write relation that over-writes
// memory; the transformation's correctness argument requires injective
// writes (§4.1, and §7 lists relaxing this as future work).
var ErrNonInjectiveWrite = errors.New("core: source write relation is not injective")

// PipelineMap computes the pipeline map T_{S,T} between a source
// statement with write relation wr (I → M) and a target statement with
// read relation rd (J → M), following §4.1:
//
//	P  = Wr⁻¹ ∘ Rd            (J → I: the source writes each read needs)
//	D' = { (j, j') : j' ≼ j } over Dom(P)
//	H  = lexmax(P ∘ D')       (J → I: last write needed by j and all
//	                           its predecessors)
//	T  = lexmax(H⁻¹)          (I → J: last target iteration enabled by
//	                           finishing the source through i)
//
// P ∘ D' with the subsequent lexmax is computed as a single
// running-maximum scan (isl.PrefixLexmax), which is equivalent (see
// the property tests) and avoids materializing the quadratic lex-≤
// relation.
func PipelineMap(wr, rd *isl.Map) (*isl.Map, error) {
	if wr.OutSpace() != rd.OutSpace() {
		return nil, fmt.Errorf("core: write relation targets %v but read relation targets %v",
			wr.OutSpace(), rd.OutSpace())
	}
	if !wr.IsInjective() {
		return nil, ErrNonInjectiveWrite
	}
	p := isl.Compose(wr.Inverse(), rd)
	h := isl.PrefixLexmax(p, p.Domain())
	t := h.Inverse().LexmaxPerIn()
	return t, nil
}

// PipelineMapRelaxed computes the pipeline map without the injective-
// write assumption, the extension §7 lists as future work. A reader of
// cell m must observe m's final value, so it depends on the *last*
// iteration writing m:
//
//	W_last = lexmax(Wr⁻¹)   (M → I: the final writer of each cell)
//	P      = W_last ∘ Rd
//
// followed by the same prefix-lexmax/lexmax construction as
// PipelineMap. Once the final writer of every cell a target prefix
// reads has executed, no later source iteration touches those cells
// again, so the enabling property of §4.1 carries over. For injective
// writes this reduces exactly to PipelineMap.
func PipelineMapRelaxed(wr, rd *isl.Map) (*isl.Map, error) {
	if wr.OutSpace() != rd.OutSpace() {
		return nil, fmt.Errorf("core: write relation targets %v but read relation targets %v",
			wr.OutSpace(), rd.OutSpace())
	}
	wLast := wr.Inverse().LexmaxPerIn()
	p := isl.Compose(wLast, rd)
	h := isl.PrefixLexmax(p, p.Domain())
	t := h.Inverse().LexmaxPerIn()
	return t, nil
}

// BlockingMap partitions domain into pipeline blocks led by the given
// leaders (Eq. 2): every iteration maps to the lexicographically
// smallest leader ≽ it, so each leader is the lexicographic maximum of
// its block. Iterations beyond the last leader form one final block
// led by the lexicographic maximum of the domain (§4.1's tail rule).
// The result is a total, monotone, idempotent map domain → domain.
func BlockingMap(domain, leaders *isl.Set) *isl.Map {
	if leaders.IsEmpty() {
		max, ok := domain.Lexmax()
		if !ok {
			return isl.NewMap(domain.Space(), domain.Space())
		}
		return isl.ConstantMap(domain, domain.Space(), max)
	}
	m := isl.NearestGE(domain, leaders)
	if covered := m.Domain(); covered.Card() != domain.Card() {
		// Tail: iterations past the last leader all join a block led
		// by the domain's lexicographic maximum.
		max, _ := domain.Lexmax()
		rest := domain.Subtract(covered)
		rest.Foreach(func(v isl.Vec) bool {
			m.Add(v, max)
			return true
		})
	}
	return m
}

// SourceBlockingMap returns V_S for a source statement with iteration
// domain domain and pipeline map pm (Eq. 2 with B = Dom(T)).
func SourceBlockingMap(domain *isl.Set, pm *isl.Map) *isl.Map {
	return BlockingMap(domain, pm.Domain())
}

// TargetBlockingMap returns Y_T for a target statement with iteration
// domain domain and pipeline map pm (Eq. 2 with B = Range(T)).
func TargetBlockingMap(domain *isl.Set, pm *isl.Map) *isl.Map {
	return BlockingMap(domain, pm.Range())
}

// IntegrateBlockingMaps computes E_S = lexmin(∪ maps) (Eq. 3): each
// iteration joins the smallest block it belongs to among all pairwise
// blocking maps, which maximizes the number of blocks of different
// statements that can run in parallel (§4.2). With no maps, the whole
// domain becomes a single block led by its lexicographic maximum.
func IntegrateBlockingMaps(domain *isl.Set, maps []*isl.Map) *isl.Map {
	if len(maps) == 0 {
		return BlockingMap(domain, isl.NewSet(domain.Space()))
	}
	u := maps[0]
	for _, m := range maps[1:] {
		u = u.Union(m)
	}
	return u.LexminPerIn()
}

// Coarsen merges adjacent blocks of the blocking map e (total,
// monotone, idempotent over domain) until every block holds at least
// minIters iterations; the final block may stay smaller. Leaders of
// merged blocks are the last constituent leader, so the result remains
// a valid blocking map. minIters ≤ 1 returns e unchanged. This
// implements the task-granularity knob discussed in §7.
func Coarsen(e *isl.Map, domain *isl.Set, minIters int) *isl.Map {
	if minIters <= 1 {
		return e
	}
	elems := domain.Elements()
	r := isl.NewMap(e.InSpace(), e.OutSpace())
	pending := 0
	start := 0
	flush := func(end int, leader isl.Vec) {
		for k := start; k < end; k++ {
			r.Add(elems[k], leader)
		}
		start = end
		pending = 0
	}
	for idx, v := range elems {
		pending++
		leader := e.Image(v)
		if leader.Eq(v) && pending >= minIters {
			flush(idx+1, leader)
		}
	}
	if pending > 0 {
		// Remaining iterations: lead them by the domain maximum.
		flush(len(elems), elems[len(elems)-1])
	}
	return r
}
