package core

import (
	"repro/internal/isl"
	"repro/internal/scop"
)

// NewStmtInfo assembles a per-statement detection result from its
// components, rebuilding the interned leader index that makes
// BlockIndex O(1). Decoders reconstructing persisted detection results
// (internal/cache/disk) use it so a rebound Info behaves exactly like
// one Detect produced — hand-built StmtInfo literals in tests keep the
// nil-index linear-scan fallback instead.
func NewStmtInfo(stmt *scop.Statement, e *isl.Map, blocks []Block, inDeps []InDep) *StmtInfo {
	si := &StmtInfo{
		Stmt:       stmt,
		E:          e,
		Blocks:     blocks,
		InDeps:     inDeps,
		blockIndex: make(map[uint32]int, len(blocks)),
		leaders:    isl.InternerFor(e.OutSpace()),
	}
	for i := range blocks {
		si.blockIndex[si.leaders.Intern(blocks[i].Leader)] = i
	}
	return si
}
