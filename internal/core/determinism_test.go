package core

import (
	"testing"

	"repro/internal/fuzzscop"
	"repro/internal/scop"
)

// TestDetectDeterministicAcrossWorkers pins the parallel-detection
// contract: detection with 1, 2, and 8 workers produces identical Info
// — same pairs with equal T/V/Y maps, equal integrated E maps, equal
// block lists, and equal in-dependency relations. Running it under
// `make race` also exercises the freeze discipline of the shared
// domains and E maps.
func TestDetectDeterministicAcrossWorkers(t *testing.T) {
	scops := []struct {
		name string
		sc   *scop.SCoP
	}{
		{"figure4", buildFigure4(t, 16)},
		{"fuzzstress", fuzzscop.Stress()},
	}
	for _, tc := range scops {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Detect(tc.sc, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Detect(tc.sc, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := EqualInfo(base, got); err != nil {
					t.Fatalf("workers=%d differs from serial: %v", workers, err)
				}
			}
		})
	}
}
