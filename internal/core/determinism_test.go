package core

import (
	"fmt"
	"testing"

	"repro/internal/fuzzscop"
	"repro/internal/scop"
)

// TestDetectDeterministicAcrossWorkers pins the parallel-detection
// contract: detection with 1, 2, and 8 workers produces identical Info
// — same pairs with equal T/V/Y maps, equal integrated E maps, equal
// block lists, and equal in-dependency relations. Running it under
// `make race` also exercises the freeze discipline of the shared
// domains and E maps.
func TestDetectDeterministicAcrossWorkers(t *testing.T) {
	scops := []struct {
		name string
		sc   *scop.SCoP
	}{
		{"figure4", buildFigure4(t, 16)},
		{"fuzzstress", fuzzscop.Stress()},
	}
	for _, tc := range scops {
		t.Run(tc.name, func(t *testing.T) {
			base, err := Detect(tc.sc, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Detect(tc.sc, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if err := sameInfo(base, got); err != nil {
					t.Fatalf("workers=%d differs from serial: %v", workers, err)
				}
			}
		})
	}
}

// sameInfo compares two detection results structurally.
func sameInfo(a, b *Info) error {
	if len(a.Pairs) != len(b.Pairs) {
		return fmt.Errorf("pair count %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		p, q := a.Pairs[i], b.Pairs[i]
		if p.Src != q.Src || p.Dst != q.Dst {
			return fmt.Errorf("pair %d is %s->%s vs %s->%s", i, p.Src.Name, p.Dst.Name, q.Src.Name, q.Dst.Name)
		}
		if !p.T.Equal(q.T) || !p.V.Equal(q.V) || !p.Y.Equal(q.Y) {
			return fmt.Errorf("pair %d (%s->%s) maps differ", i, p.Src.Name, p.Dst.Name)
		}
	}
	if len(a.Stmts) != len(b.Stmts) {
		return fmt.Errorf("stmt count %d vs %d", len(a.Stmts), len(b.Stmts))
	}
	for i := range a.Stmts {
		x, y := a.Stmts[i], b.Stmts[i]
		if x.Stmt != y.Stmt {
			return fmt.Errorf("stmt %d is %s vs %s", i, x.Stmt.Name, y.Stmt.Name)
		}
		if !x.E.Equal(y.E) {
			return fmt.Errorf("stmt %s: E differs", x.Stmt.Name)
		}
		if len(x.Blocks) != len(y.Blocks) {
			return fmt.Errorf("stmt %s: %d vs %d blocks", x.Stmt.Name, len(x.Blocks), len(y.Blocks))
		}
		for j := range x.Blocks {
			if !x.Blocks[j].Leader.Eq(y.Blocks[j].Leader) {
				return fmt.Errorf("stmt %s block %d: leader %v vs %v", x.Stmt.Name, j, x.Blocks[j].Leader, y.Blocks[j].Leader)
			}
			if len(x.Blocks[j].Members) != len(y.Blocks[j].Members) {
				return fmt.Errorf("stmt %s block %d: member count differs", x.Stmt.Name, j)
			}
			for k := range x.Blocks[j].Members {
				if !x.Blocks[j].Members[k].Eq(y.Blocks[j].Members[k]) {
					return fmt.Errorf("stmt %s block %d member %d differs", x.Stmt.Name, j, k)
				}
			}
		}
		if len(x.InDeps) != len(y.InDeps) {
			return fmt.Errorf("stmt %s: %d vs %d in-deps", x.Stmt.Name, len(x.InDeps), len(y.InDeps))
		}
		for j := range x.InDeps {
			if x.InDeps[j].Src != y.InDeps[j].Src {
				return fmt.Errorf("stmt %s in-dep %d: src %s vs %s", x.Stmt.Name, j, x.InDeps[j].Src.Name, y.InDeps[j].Src.Name)
			}
			if !x.InDeps[j].Rel.Equal(y.InDeps[j].Rel) {
				return fmt.Errorf("stmt %s in-dep %d (from %s): relation differs", x.Stmt.Name, j, x.InDeps[j].Src.Name)
			}
		}
	}
	return nil
}
