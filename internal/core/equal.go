package core

import "fmt"

// EqualInfo reports whether two detection results are structurally
// identical: the same pairs with equal T/V/Y maps, equal integrated E
// maps, equal block lists, and equal in-dependency relations. A nil
// return means equal; otherwise the error names the first divergence.
//
// Statement identity is compared by schedule position and name rather
// than pointer, so results detected from two separately built SCoPs
// with the same content (the cache-serving case, internal/cache) are
// comparable. For two results over the same *SCoP this degenerates to
// the pointer comparison the determinism test always performed.
func EqualInfo(a, b *Info) error {
	if len(a.Pairs) != len(b.Pairs) {
		return fmt.Errorf("pair count %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		p, q := a.Pairs[i], b.Pairs[i]
		if p.Src.Index != q.Src.Index || p.Src.Name != q.Src.Name ||
			p.Dst.Index != q.Dst.Index || p.Dst.Name != q.Dst.Name {
			return fmt.Errorf("pair %d is %s->%s vs %s->%s", i, p.Src.Name, p.Dst.Name, q.Src.Name, q.Dst.Name)
		}
		if !p.T.Equal(q.T) || !p.V.Equal(q.V) || !p.Y.Equal(q.Y) {
			return fmt.Errorf("pair %d (%s->%s) maps differ", i, p.Src.Name, p.Dst.Name)
		}
	}
	if len(a.Stmts) != len(b.Stmts) {
		return fmt.Errorf("stmt count %d vs %d", len(a.Stmts), len(b.Stmts))
	}
	for i := range a.Stmts {
		x, y := a.Stmts[i], b.Stmts[i]
		if x.Stmt.Index != y.Stmt.Index || x.Stmt.Name != y.Stmt.Name {
			return fmt.Errorf("stmt %d is %s vs %s", i, x.Stmt.Name, y.Stmt.Name)
		}
		if !x.E.Equal(y.E) {
			return fmt.Errorf("stmt %s: E differs", x.Stmt.Name)
		}
		if len(x.Blocks) != len(y.Blocks) {
			return fmt.Errorf("stmt %s: %d vs %d blocks", x.Stmt.Name, len(x.Blocks), len(y.Blocks))
		}
		for j := range x.Blocks {
			if !x.Blocks[j].Leader.Eq(y.Blocks[j].Leader) {
				return fmt.Errorf("stmt %s block %d: leader %v vs %v", x.Stmt.Name, j, x.Blocks[j].Leader, y.Blocks[j].Leader)
			}
			if len(x.Blocks[j].Members) != len(y.Blocks[j].Members) {
				return fmt.Errorf("stmt %s block %d: member count differs", x.Stmt.Name, j)
			}
			for k := range x.Blocks[j].Members {
				if !x.Blocks[j].Members[k].Eq(y.Blocks[j].Members[k]) {
					return fmt.Errorf("stmt %s block %d member %d differs", x.Stmt.Name, j, k)
				}
			}
		}
		if len(x.InDeps) != len(y.InDeps) {
			return fmt.Errorf("stmt %s: %d vs %d in-deps", x.Stmt.Name, len(x.InDeps), len(y.InDeps))
		}
		for j := range x.InDeps {
			if x.InDeps[j].Src.Index != y.InDeps[j].Src.Index || x.InDeps[j].Src.Name != y.InDeps[j].Src.Name {
				return fmt.Errorf("stmt %s in-dep %d: src %s vs %s", x.Stmt.Name, j, x.InDeps[j].Src.Name, y.InDeps[j].Src.Name)
			}
			if !x.InDeps[j].Rel.Equal(y.InDeps[j].Rel) {
				return fmt.Errorf("stmt %s in-dep %d (from %s): relation differs", x.Stmt.Name, j, x.InDeps[j].Src.Name)
			}
		}
	}
	return nil
}
