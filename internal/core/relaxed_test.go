package core

import (
	"strings"
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// buildOverwriteScop builds a two-nest program whose source writes
// every cell twice: S writes A[i/2] for i in [0, 2n), so cell c's
// final writer is iteration 2c+1; T reads A[i].
func buildOverwriteScop(t *testing.T, n int) *scop.SCoP {
	t.Helper()
	b := scop.NewBuilder("overwrite")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", 2*n)).
		WritesOverwriting("A", aff.FloorDiv(aff.Var(1, 0), 2))
	b.Stmt("T", aff.RectDomain("T", n)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0))
	sc, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRelaxedPipelineMapLastWriter(t *testing.T) {
	sc := buildOverwriteScop(t, 6)
	s, tgt := sc.Statement("S"), sc.Statement("T")
	pm, err := PipelineMapRelaxed(s.Write.Rel, tgt.Reads[0].Rel)
	if err != nil {
		t.Fatal(err)
	}
	// Cell c's final writer is S[2c+1], so finishing S through 2c+1
	// enables T through c.
	for c := 0; c < 6; c++ {
		if !pm.Contains(isl.NewVec(2*c+1), isl.NewVec(c)) {
			t.Errorf("pipeline map missing S[%d] -> T[%d]:\n%v", 2*c+1, c, pm)
		}
	}
	// The first (non-final) writer of a cell must NOT enable its
	// reader.
	if pm.Contains(isl.NewVec(2), isl.NewVec(1)) {
		t.Error("non-final writer S[2] wrongly enables T[1]")
	}
	if pm.Card() != 6 {
		t.Errorf("card = %d, want 6", pm.Card())
	}
}

func TestRelaxedReducesToStrictOnInjective(t *testing.T) {
	// For an injective write both formulas agree.
	b := scop.NewBuilder("inj")
	b.Array("A", 2).Array("B", 2)
	b.Stmt("S", aff.RectDomain("S", 5, 5)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1))
	b.Stmt("T", aff.RectDomain("T", 5, 5)).
		Writes("B", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 1), aff.Var(2, 0)) // transposed read
	sc := b.MustBuild()
	s, tgt := sc.Statement("S"), sc.Statement("T")
	strict, err := PipelineMap(s.Write.Rel, tgt.Reads[0].Rel)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := PipelineMapRelaxed(s.Write.Rel, tgt.Reads[0].Rel)
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Equal(relaxed) {
		t.Fatalf("strict and relaxed differ on injective writes:\n%v\n%v", strict, relaxed)
	}
}

func TestDetectRequiresOptInForOverwrites(t *testing.T) {
	sc := buildOverwriteScop(t, 4)
	_, err := Detect(sc, Options{})
	if err == nil || !strings.Contains(err.Error(), "AllowOverwrites") {
		t.Fatalf("err = %v", err)
	}
	info, err := Detect(sc, Options{AllowOverwrites: true})
	if err != nil {
		t.Fatal(err)
	}
	tInfo := info.Stmt("T")
	if len(tInfo.InDeps) != 1 {
		t.Fatalf("T InDeps = %d", len(tInfo.InDeps))
	}
	// T's block c must wait (at least) for the S block containing the
	// final writer 2c+1.
	q := tInfo.InDeps[0].Rel
	sE := info.Stmt("S").E
	for c := 0; c < 4; c++ {
		deps := q.Lookup(isl.NewVec(c))
		if len(deps) != 1 {
			t.Fatalf("T[%d] has %d deps", c, len(deps))
		}
		want := sE.Image(isl.NewVec(2*c + 1))
		if deps[0].Cmp(want) < 0 {
			t.Errorf("T[%d] waits for %v, needs at least %v", c, deps[0], want)
		}
	}
}

func TestValidateRejectsUndeclaredOverwrite(t *testing.T) {
	b := scop.NewBuilder("x")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 4)).
		Writes("A", aff.FloorDiv(aff.Var(1, 0), 2))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "WritesOverwriting") {
		t.Fatalf("err = %v", err)
	}
}
