package core

import (
	"errors"
	"fmt"

	"repro/internal/deps"
	"repro/internal/isl"
	"repro/internal/isl/sym"
	"repro/internal/par"
	"repro/internal/scop"
)

// The symbolic detection backend: Algorithm 1 evaluated on closed-form
// constraint representations (internal/isl/sym) instead of enumerated
// relations, so its cost depends on the number of constraints and
// statements, never on domain volume. It covers the rectangular
// per-dimension monomial fragment — constant loop bounds, writes
// A[x_d + b_d], reads A[⌊(a_d·x_d + b_d)/c_d⌋] with the strictness
// conditions below — which includes the paper's Figure 4 and every
// Table 9 program. Anything outside the fragment returns an error
// wrapping ErrSymbolicUnsupported and Detect falls back to the
// explicit path, so selecting the backend never changes results, only
// the cost of computing them.
//
// Why the fragment gives closed forms, per phase:
//
//   - P = Wr⁻¹∘Rd is per-dimension y ↦ r_d(y_d) − b_d with
//     r_d(y) = ⌊(a·y+b)/c⌋, and Dom(P) is a box (one interval per
//     dimension). On dimensions before the last, a ≥ c keeps r_d
//     strictly increasing, so P is lex-monotone over Dom(P) and the
//     prefix-lexmax H equals P itself.
//   - T = lexmax(H⁻¹) inverts per dimension: with c | a the image is a
//     stride-a/c lattice and T is exact division; with a | c (last
//     dimension only) T maps each collapsed class to its class
//     maximum, a stride-c/a lattice whose top element clamps to the
//     last domain iteration. Dom(T) and Range(T) are therefore strided
//     boxes (at most two for Range(T)).
//   - Blocking maps are nearest-≽ maps over those lattices
//     (sym.NearestGETotal), integration is pointwise lexicographic
//     minimum (Eq. 3), and Range(E) is exactly the union of the
//     pairwise leader lattices plus the domain maximum, so block
//     counts come from inclusion–exclusion, not enumeration.
//   - For y ∈ Range(T), T⁻¹(y) = P(y), so the Eq. 4 relation is the
//     composition E_src ∘ P ∘ Y restricted to the destination leaders
//     lex-≼ ymax = lexmax Range(T), and its cardinality is a counting
//     query.

// BackendSymbolic is the Options.Backend value selecting symbolic
// detection with transparent fallback.
const BackendSymbolic = "symbolic"

// ErrSymbolicUnsupported reports a SCoP (or options) outside the
// symbolic backend's fragment. Detect treats any DetectSymbolic error
// as "use the explicit path", so the error is informational.
var ErrSymbolicUnsupported = errors.New("core: scop outside the symbolic backend's fragment")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrSymbolicUnsupported}, args...)...)
}

// symPieceCap bounds the piece count of any folded piecewise map; a
// SCoP whose integration exceeds it falls back to the explicit path.
const symPieceCap = 512

// symRead is a recognized per-dimension read access:
// coordinate d reads ⌊(A[d]·x_d + B[d]) / C[d]⌋.
type symRead struct {
	A, B, C []int64
}

// SymStmt is the per-statement symbolic detection result.
type SymStmt struct {
	Stmt *scop.Statement
	// Dom is the rectangular iteration domain, one stride-1 interval
	// per dimension.
	Dom sym.Box
	// DomMax is the domain's lexicographic maximum.
	DomMax []int64
	// writeOff holds the write access offsets (A[x_d + writeOff[d]]);
	// nil for pure-read statements.
	writeOff []int64
	// E is the integrated blocking map of Eq. 3 in closed form, total
	// over Dom.
	E sym.PW
	// Leaders is Range(E): the pairwise leader lattices plus DomMax.
	Leaders sym.Region
	// NumBlocks is the number of pipeline blocks, |Range(E)|.
	NumBlocks int64
}

// SymPair is the per-dependent-pair symbolic result.
type SymPair struct {
	Src, Dst *scop.Statement
	// TDom is Dom(T), a strided box in the source iteration space.
	TDom sym.Box
	// T is the pipeline map in closed form, defined on TDom.
	T sym.PW
	// P is Wr⁻¹∘Rd in closed form, total on the target space.
	P sym.PW
	// V and Y are the totalized source/target blocking maps (Eq. 2).
	V, Y sym.PW
	// YLeaders is Range(T), the target-side leader region.
	YLeaders sym.Region
	// YMax is lexmax Range(T).
	YMax []int64
	// Rel is the Eq. 4 dependency relation in closed form: defined on
	// the destination leaders lex-≼ YMax, mapping each to the source
	// leader that must complete first.
	Rel sym.PW
	// DepEdges is the relation's cardinality.
	DepEdges int64
}

// SymInfo is the closed-form result of symbolic detection. It holds
// no per-iteration data; Materialize expands it into the explicit Info
// the rest of the system (lowering, execution, cache) consumes.
type SymInfo struct {
	SCoP    *scop.SCoP
	Pairs   []SymPair
	Stmts   []*SymStmt
	workers int
}

// TotalBlocks returns the number of tasks without materializing them.
func (si *SymInfo) TotalBlocks() int64 {
	n := int64(0)
	for _, s := range si.Stmts {
		n += s.NumBlocks
	}
	return n
}

// TotalDepEdges returns the number of block-dependency edges without
// materializing the relations.
func (si *SymInfo) TotalDepEdges() int64 {
	n := int64(0)
	for i := range si.Pairs {
		n += si.Pairs[i].DepEdges
	}
	return n
}

func floorDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func lexCmp64(a, b []int64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// symStmtOf recognizes the statement's domain and write access, or
// reports why the fragment excludes it.
func symStmtOf(s *scop.Statement) (*SymStmt, error) {
	if s.Spec == nil {
		return nil, unsupportedf("statement %q has no symbolic domain spec", s.Name)
	}
	lo, hi, ok := s.Spec.RectBounds()
	if !ok {
		return nil, unsupportedf("statement %q domain is not a constant rectangle", s.Name)
	}
	d := len(lo)
	if d == 0 {
		return nil, unsupportedf("statement %q has a zero-dimensional domain", s.Name)
	}
	box := make(sym.Box, d)
	dommax := make([]int64, d)
	for i := range box {
		box[i] = sym.Lat1{Lo: int64(lo[i]), Hi: int64(hi[i]) - 1, Stride: 1}
		dommax[i] = int64(hi[i]) - 1
	}
	// Guard against a Spec that diverged from the enumerated Domain
	// (hand-built SCoPs): the cardinalities must agree. Card is O(1).
	if int64(s.Domain.Card()) != box.Count() {
		return nil, unsupportedf("statement %q domain spec disagrees with its enumerated domain", s.Name)
	}
	ss := &SymStmt{Stmt: s, Dom: box, DomMax: dommax}
	if s.Write != nil {
		if s.Write.MayOverwrite {
			return nil, unsupportedf("statement %q write may overwrite", s.Name)
		}
		exprs := s.Write.Access.Exprs
		if len(exprs) != d {
			return nil, unsupportedf("statement %q write arity %d != depth %d", s.Name, len(exprs), d)
		}
		ss.writeOff = make([]int64, d)
		for i, e := range exprs {
			a, b, c, ok := e.Mono1(i)
			if !ok || a != 1 || c != 1 {
				return nil, unsupportedf("statement %q write dimension %d is not x+const", s.Name, i)
			}
			ss.writeOff[i] = int64(b)
		}
	}
	return ss, nil
}

// symReadOf recognizes a read access against the reader's depth.
func symReadOf(s *scop.Statement, acc *scop.AccessRef) (symRead, error) {
	d := s.Depth()
	exprs := acc.Access.Exprs
	if len(exprs) != d {
		return symRead{}, unsupportedf("statement %q read of %q arity %d != depth %d",
			s.Name, acc.Array(), len(exprs), d)
	}
	r := symRead{A: make([]int64, d), B: make([]int64, d), C: make([]int64, d)}
	for i, e := range exprs {
		a, b, c, ok := e.Mono1(i)
		if !ok || a < 0 {
			return symRead{}, unsupportedf("statement %q read of %q dimension %d is outside the monomial fragment",
				s.Name, acc.Array(), i)
		}
		r.A[i], r.B[i], r.C[i] = int64(a), int64(b), int64(c)
	}
	return r, nil
}

// readHitInterval returns the sub-interval of [ylo, yhi] whose image
// under y ↦ ⌊(a·y+b)/c⌋ lies in [wlo, whi]. a must be ≥ 0.
func readHitInterval(a, b, c, ylo, yhi, wlo, whi int64) (int64, int64, bool) {
	if a == 0 {
		v := floorDiv64(b, c)
		if v < wlo || v > whi {
			return 0, 0, false
		}
		return ylo, yhi, ylo <= yhi
	}
	lo := max64(ylo, ceilDiv64(c*wlo-b, a))
	hi := min64(yhi, floorDiv64(c*(whi+1)-1-b, a))
	return lo, hi, lo <= hi
}

// symCrossHazards replicates deps.CrossHazards on the closed forms:
// same traversal order, same error strings, exact emptiness tests via
// interval arithmetic.
func symCrossHazards(stmts []*SymStmt) error {
	for _, late := range stmts {
		ls := late.Stmt
		if ls.Write == nil {
			continue
		}
		array := ls.Write.Array()
		for _, early := range stmts {
			es := early.Stmt
			if es.Index >= ls.Index {
				break
			}
			if es.Write != nil && es.Write.Array() == array {
				overlap := true
				for d := range late.Dom {
					if len(early.Dom) != len(late.Dom) {
						overlap = false
						break
					}
					elo := early.Dom[d].Lo + early.writeOff[d]
					ehi := early.Dom[d].Hi + early.writeOff[d]
					llo := late.Dom[d].Lo + late.writeOff[d]
					lhi := late.Dom[d].Hi + late.writeOff[d]
					if max64(elo, llo) > min64(ehi, lhi) {
						overlap = false
						break
					}
				}
				if overlap {
					return fmt.Errorf("deps: output hazard: statements %q and %q both write array %q",
						es.Name, ls.Name, array)
				}
			}
			for ri := range es.Reads {
				acc := &es.Reads[ri]
				if acc.Array() != array {
					continue
				}
				rd, err := symReadOf(es, acc)
				if err != nil {
					return err
				}
				if len(rd.A) != len(late.Dom) {
					continue // dimension mismatch: disjoint index spaces
				}
				hit := true
				for d := range late.Dom {
					_, _, ok := readHitInterval(rd.A[d], rd.B[d], rd.C[d],
						early.Dom[d].Lo, early.Dom[d].Hi,
						late.Dom[d].Lo+late.writeOff[d], late.Dom[d].Hi+late.writeOff[d])
					if !ok {
						hit = false
						break
					}
				}
				if hit {
					return fmt.Errorf("deps: anti hazard: statement %q overwrites array %q read by earlier statement %q",
						ls.Name, array, es.Name)
				}
			}
		}
	}
	return nil
}

// buildSymPair computes the closed forms of one dependent pair:
// pipeline map T with its domain and range lattices, the totalized
// blocking maps V and Y, and P for the later Eq. 4 composition.
// ok=false reports an empty pipeline map (no pair), err a fragment
// violation.
func buildSymPair(src, dst *SymStmt, rd symRead) (SymPair, bool, error) {
	d := len(dst.Dom)
	if len(src.Dom) != d {
		return SymPair{}, false, unsupportedf("pair %s -> %s: depth mismatch %d vs %d",
			src.Stmt.Name, dst.Stmt.Name, len(src.Dom), d)
	}
	tdom := make(sym.Box, d)
	tForms := make([]sym.Form, d)
	pForms := make([]sym.Form, d)
	yPrefix := make(sym.Box, d) // per-dim main leader lattice
	var lastPoint int64         // collapsed last dimension's clamped top
	lastSplit := false

	for i := 0; i < d; i++ {
		a, b, c := rd.A[i], rd.B[i], rd.C[i]
		if a < 1 {
			return SymPair{}, false, unsupportedf("pair %s -> %s: read dimension %d has zero stride",
				src.Stmt.Name, dst.Stmt.Name, i)
		}
		bw := src.writeOff[i]
		wlo := src.Dom[i].Lo + bw
		whi := src.Dom[i].Hi + bw
		ylo, yhi, ok := readHitInterval(a, b, c, dst.Dom[i].Lo, dst.Dom[i].Hi, wlo, whi)
		if !ok {
			return SymPair{}, false, nil // empty pipeline map: no pair
		}
		// P per dimension: y ↦ ⌊(a·y+b)/c⌋ − bw.
		if c == 1 {
			pForms[i] = sym.AffineForm(a, b-bw)
		} else {
			pForms[i] = sym.RatForm(a, b, c).Then(sym.Stage{A: 1, B: -bw, C: 1})
		}
		switch {
		case a%c == 0 && a >= c:
			// Strided-injective: r(y) = s·y + ⌊b/c⌋ exactly.
			s := a / c
			fl := floorDiv64(b, c)
			tdom[i] = sym.Lat1{Lo: s*ylo + fl - bw, Hi: s*yhi + fl - bw, Stride: s}
			tForms[i] = sym.Form{Stages: []sym.Stage{{A: 1, B: bw - fl, C: s}}}
			yPrefix[i] = sym.Lat1{Lo: ylo, Hi: yhi, Stride: 1}
		case c%a == 0 && a < c && i == d-1:
			// Collapsing last dimension: classes of size c/a share a
			// value; T maps each class to its maximum, clamped to the
			// last covered iteration.
			k := c / a
			rm0 := floorDiv64(a*ylo+b, c)
			rm1 := floorDiv64(a*yhi+b, c)
			tdom[i] = sym.Lat1{Lo: rm0 - bw, Hi: rm1 - bw, Stride: 1}
			tForms[i] = sym.Form{Stages: []sym.Stage{
				{A: c, B: c*bw + c - 1 - b, C: a, ClampHi: true, Hi: yhi},
			}}
			h := floorDiv64(c-1-b, a)
			switch {
			case k*rm1+h == yhi:
				// Top class ends exactly at the domain edge: one lattice.
				yPrefix[i] = sym.Lat1{Lo: k*rm0 + h, Hi: k*rm1 + h, Stride: k}
			case rm0 == rm1:
				// Single class: its clamped maximum is the only leader.
				yPrefix[i] = sym.Point1(yhi)
			default:
				yPrefix[i] = sym.Lat1{Lo: k*rm0 + h, Hi: k*(rm1-1) + h, Stride: k}
				lastPoint = yhi
				lastSplit = true
			}
		default:
			return SymPair{}, false, unsupportedf(
				"pair %s -> %s: read dimension %d (a=%d c=%d) breaks lex monotonicity",
				src.Stmt.Name, dst.Stmt.Name, i, a, c)
		}
	}

	yLeaders := sym.Region{yPrefix}
	if lastSplit {
		top := make(sym.Box, d)
		copy(top, yPrefix[:d-1])
		top[d-1] = sym.Point1(lastPoint)
		yLeaders = append(yLeaders, top)
	}
	ymax, _ := yLeaders.Lexmax()

	v := sym.PrunePW(sym.NearestGETotal(tdom, src.DomMax), src.Dom)
	y := sym.PrunePW(sym.NearestGETotal(yLeaders[0], dst.DomMax), dst.Dom)
	for _, box := range yLeaders[1:] {
		y = sym.PrunePW(sym.LexMinPW(y, sym.NearestGETotal(box, dst.DomMax)), dst.Dom)
	}

	return SymPair{
		Src:      src.Stmt,
		Dst:      dst.Stmt,
		TDom:     tdom,
		T:        sym.SinglePW(tForms),
		P:        sym.SinglePW(pForms),
		V:        v,
		Y:        y,
		YLeaders: yLeaders,
		YMax:     ymax,
	}, true, nil
}

// DetectSymbolic runs Algorithm 1 entirely on closed forms. Its cost
// is a function of statement count, pair count, and constraint/piece
// counts — never of domain volume. The result answers the aggregate
// questions (block counts, dependency-edge counts, the maps
// themselves as evaluable forms) directly and expands to the explicit
// Info via Materialize. SCoPs outside the fragment return an error
// wrapping ErrSymbolicUnsupported.
func DetectSymbolic(sc *scop.SCoP, opts Options) (*SymInfo, error) {
	if opts.MinBlockIters > 1 {
		return nil, unsupportedf("MinBlockIters=%d coarsening has no closed form", opts.MinBlockIters)
	}
	if err := sc.ValidateShallow(); err != nil {
		return nil, err
	}
	info := &SymInfo{SCoP: sc, workers: opts.Workers}
	info.Stmts = make([]*SymStmt, len(sc.Stmts))
	for i, s := range sc.Stmts {
		ss, err := symStmtOf(s)
		if err != nil {
			return nil, err
		}
		info.Stmts[i] = ss
	}

	stop := opts.Obs.Phase("detect.dependence_analysis")
	err := symCrossHazards(info.Stmts)
	stop()
	if err != nil {
		if errors.Is(err, ErrSymbolicUnsupported) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %w", ErrNotPipelinable, err)
	}
	opts.Obs.Count("detect.statements", int64(len(sc.Stmts)))

	// Pairwise pipeline maps (Algorithm 1, lines 1–7), in the explicit
	// path's enumeration order: sources in program order, targets in
	// program order after them.
	stop = opts.Obs.Phase("detect.pipeline_maps")
	type blockingEntry struct {
		leaders sym.Region
		pw      sym.PW
	}
	blocking := make([][]blockingEntry, len(sc.Stmts))
	for si, src := range info.Stmts {
		if src.Stmt.Write == nil {
			continue
		}
		array := src.Stmt.Write.Array()
		for di := si + 1; di < len(info.Stmts); di++ {
			dst := info.Stmts[di]
			var reads []*scop.AccessRef
			for ri := range dst.Stmt.Reads {
				if dst.Stmt.Reads[ri].Array() == array {
					reads = append(reads, &dst.Stmt.Reads[ri])
				}
			}
			if len(reads) == 0 {
				continue
			}
			if len(reads) > 1 {
				stop()
				return nil, unsupportedf("statement %q reads array %q through %d accesses",
					dst.Stmt.Name, array, len(reads))
			}
			rd, err := symReadOf(dst.Stmt, reads[0])
			if err != nil {
				stop()
				return nil, err
			}
			pair, ok, err := buildSymPair(src, dst, rd)
			if err != nil {
				stop()
				return nil, err
			}
			if !ok {
				continue
			}
			info.Pairs = append(info.Pairs, pair)
			blocking[si] = append(blocking[si], blockingEntry{leaders: sym.Region{pair.TDom}, pw: pair.V})
			blocking[di] = append(blocking[di], blockingEntry{leaders: pair.YLeaders, pw: pair.Y})
		}
	}
	stop()
	opts.Obs.Count("detect.pairs", int64(len(info.Pairs)))

	// Integrated blocking maps E_S (lines 8–9, Eq. 3) and block counts.
	stop = opts.Obs.Phase("detect.blocking_integration")
	for i, ss := range info.Stmts {
		entries := blocking[i]
		if opts.PairwiseBlocks && len(entries) > 1 {
			entries = entries[:1]
		}
		if len(entries) == 0 {
			ss.E = sym.ConstPW(ss.DomMax)
			ss.Leaders = sym.Region{pointBox(ss.DomMax)}
			ss.NumBlocks = 1
			continue
		}
		e := entries[0].pw
		leaders := append(sym.Region{}, entries[0].leaders...)
		for _, ent := range entries[1:] {
			e = sym.PrunePW(sym.LexMinPW(e, ent.pw), ss.Dom)
			if len(e.Pieces) > symPieceCap {
				stop()
				return nil, unsupportedf("statement %q integrated blocking map exceeds %d pieces",
					ss.Stmt.Name, symPieceCap)
			}
			leaders = append(leaders, ent.leaders...)
		}
		leaders = append(leaders, pointBox(ss.DomMax))
		if len(leaders) > 12 {
			stop()
			return nil, unsupportedf("statement %q leader region has %d boxes", ss.Stmt.Name, len(leaders))
		}
		ss.E = e
		ss.Leaders = leaders
		ss.NumBlocks = leaders.Count()
	}
	stop()
	opts.Obs.Count("detect.blocks", info.TotalBlocks())

	// Block-level dependency relations (lines 10–12, Eq. 4): for every
	// destination leader L ≼ ymax, the enabling source block is
	// E_src(P(Y(L))) — for leaders past ymax every member sits in the
	// dependence-free tail, so the relation omits them.
	stop = opts.Obs.Phase("detect.dependency_relations")
	for i := range info.Pairs {
		pair := &info.Pairs[i]
		src := info.Stmts[pair.Src.Index]
		dst := info.Stmts[pair.Dst.Index]
		pair.Rel = sym.ComposePW(src.E, sym.ComposePW(pair.P, pair.Y))
		pair.DepEdges = dst.Leaders.CountLexLE(pair.YMax)
	}
	stop()
	opts.Obs.Count("detect.dep_edges", info.TotalDepEdges())
	return info, nil
}

func pointBox(v []int64) sym.Box {
	b := make(sym.Box, len(v))
	for i, x := range v {
		b[i] = sym.Point1(x)
	}
	return b
}

func toVec(v []int64) isl.Vec {
	out := make(isl.Vec, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

func toI64(v isl.Vec) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x)
	}
	return out
}

func evalPW(p sym.PW, v []int64) []int64 {
	out, ok := p.Eval(v)
	if !ok {
		panic(fmt.Sprintf("core: symbolic map not total at %v", v))
	}
	return out
}

// materializePW tabulates a total symbolic self-map over a statement
// domain into an explicit relation.
func materializePW(domain *isl.Set, p sym.PW) *isl.Map {
	m := isl.NewMap(domain.Space(), domain.Space())
	for _, v := range domain.Elements() {
		m.Add(v, toVec(evalPW(p, toI64(v))))
	}
	return m
}

// Materialize expands the closed forms into the explicit Info that
// lowering, execution, and the cache consume: every map is tabulated
// over its domain, blocks are listed in execution order, and the
// dependence graph is recomputed exactly as the explicit path does.
// The result is bit-identical to Detect's on the same SCoP and
// options (the cross-backend golden digests enforce this).
func (si *SymInfo) Materialize() *Info {
	sc := si.SCoP
	workers := par.Workers(si.workers)
	g := deps.AnalyzeParallel(sc, workers)
	info := &Info{SCoP: sc, Graph: g}
	for _, s := range sc.Stmts {
		s.Domain.Freeze()
	}

	info.Pairs = make([]PipelinePair, len(si.Pairs))
	par.For(len(si.Pairs), workers, func(i int) {
		sp := &si.Pairs[i]
		srcDom := sc.Stmts[sp.Src.Index].Domain
		dstDom := sc.Stmts[sp.Dst.Index].Domain
		t := isl.NewMap(srcDom.Space(), dstDom.Space())
		sym.Region{sp.TDom}.ForeachLex(func(v []int64) bool {
			t.Add(toVec(v), toVec(evalPW(sp.T, v)))
			return true
		})
		info.Pairs[i] = PipelinePair{
			Src: sp.Src,
			Dst: sp.Dst,
			T:   t,
			V:   materializePW(srcDom, sp.V),
			Y:   materializePW(dstDom, sp.Y),
		}
	})

	info.Stmts = make([]*StmtInfo, len(sc.Stmts))
	par.For(len(sc.Stmts), workers, func(i int) {
		ss := si.Stmts[i]
		e := materializePW(ss.Stmt.Domain, ss.E)
		blocks, index := materializeBlocks(ss.Stmt.Domain, e)
		info.Stmts[i] = &StmtInfo{
			Stmt:       ss.Stmt,
			E:          e,
			Blocks:     blocks,
			blockIndex: index,
			leaders:    isl.InternerFor(e.OutSpace()),
		}
	})

	// In-dependencies attach in pair order, like the explicit merge.
	for i := range si.Pairs {
		sp := &si.Pairs[i]
		if sp.DepEdges == 0 {
			continue
		}
		dstInfo := info.Stmts[sp.Dst.Index]
		rel := isl.NewMap(dstInfo.E.OutSpace(), info.Stmts[sp.Src.Index].E.OutSpace())
		si.Stmts[sp.Dst.Index].Leaders.ForeachLex(func(v []int64) bool {
			if lexCmp64(v, sp.YMax) > 0 {
				return false
			}
			rel.Add(toVec(v), toVec(evalPW(sp.Rel, v)))
			return true
		})
		dstInfo.InDeps = append(dstInfo.InDeps, InDep{Src: sp.Src, Rel: rel})
	}
	return info
}
