package core

import (
	"fmt"
	"testing"

	"repro/internal/fuzzscop"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// benchSCoPs lists the detection benchmark inputs: three Table 9
// programs spanning the access-pattern space (identity, strided,
// shifted reads) plus one large fuzz-generated stress SCoP, the same
// set cmd/bench-pipeline -detect-bench records into BENCH_detect.json.
func benchSCoPs() []struct {
	name string
	sc   *scop.SCoP
} {
	return []struct {
		name string
		sc   *scop.SCoP
	}{
		{"P4/n=32", kernels.BuildTable9(mustSpec("P4"), 32, 1).SCoP},
		{"P7/n=32", kernels.BuildTable9(mustSpec("P7"), 32, 1).SCoP},
		{"P10/n=32", kernels.BuildTable9(mustSpec("P10"), 32, 1).SCoP},
		{"fuzzstress", fuzzscop.Stress()},
	}
}

func mustSpec(name string) kernels.T9Spec {
	spec, ok := kernels.T9SpecByName(name)
	if !ok {
		panic("unknown Table 9 program " + name)
	}
	return spec
}

// BenchmarkDetect measures Algorithm 1 end to end. The serial/parallel
// split is what BENCH_detect.json records per PR; allocs/op tracks the
// isl layer's allocation behaviour on Map.Add-heavy workloads.
func BenchmarkDetect(b *testing.B) {
	for _, bc := range benchSCoPs() {
		for _, workers := range []int{1, 0} {
			mode := "serial"
			if workers != 1 {
				mode = "parallel"
			}
			b.Run(fmt.Sprintf("%s/%s", bc.name, mode), func(b *testing.B) {
				opts := Options{AllowOverwrites: true, Workers: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Detect(bc.sc, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
