package core

import (
	"errors"
	"testing"

	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
)

// The symbolic-backend contract: DetectSymbolic's materialized result
// is bit-identical to the explicit path's on every SCoP it accepts,
// and Detect with Backend=BackendSymbolic is bit-identical on every
// SCoP, accepted or not (fallback).

func table9Program(t *testing.T, name string, n int) *scop.SCoP {
	t.Helper()
	p, err := kernels.Table9Program(name, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return p.SCoP
}

// buildOffsetChain exercises the fragment corners the fixed suites
// miss: non-zero write offsets, a shifted collapsing read whose top
// class is cut by the domain edge, and a 2-D nest mixing a strided
// first dimension with a collapsing last dimension.
func buildOffsetChain(t *testing.T) *scop.SCoP {
	t.Helper()
	b := scop.NewBuilder("offsetchain")
	b.Array("B1", 1).Array("B2", 1).Array("C1", 2).Array("C2", 2)
	b.Stmt("S1", aff.RectDomain("S1", 13)).Writes("B1", aff.Linear(2, 1))
	b.Stmt("S2", aff.RectDomain("S2", 20)).
		Writes("B2", aff.Var(1, 0)).
		Reads("B1", aff.FloorDiv(aff.Linear(1, 1), 3))
	b.Stmt("S3", aff.RectDomain("S3", 15, 14)).Writes("C1", aff.Linear(1, 1, 0), aff.Var(2, 1))
	b.Stmt("S4", aff.RectDomain("S4", 9, 17)).
		Writes("C2", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("C1", aff.Linear(0, 2, 0), aff.FloorDiv(aff.Var(2, 1), 2))
	return b.MustBuild()
}

// symbolicPrograms lists SCoPs inside the symbolic fragment, where
// DetectSymbolic must succeed without fallback.
func symbolicPrograms(t *testing.T) []struct {
	name string
	sc   *scop.SCoP
	opts Options
} {
	t.Helper()
	return []struct {
		name string
		sc   *scop.SCoP
		opts Options
	}{
		{"figure4_n16", buildFigure4(t, 16), Options{}},
		{"figure4_n15", buildFigure4(t, 15), Options{}},
		{"figure4_n16_pairwise", buildFigure4(t, 16), Options{PairwiseBlocks: true}},
		{"offsetchain", buildOffsetChain(t), Options{}},
		{"p4_n16", table9Program(t, "P4", 16), Options{}},
		{"p7_n16", table9Program(t, "P7", 16), Options{}},
		{"p10_n16", table9Program(t, "P10", 16), Options{}},
		{"p10_n17", table9Program(t, "P10", 17), Options{}},
	}
}

func TestSymbolicMatchesExplicitInFragment(t *testing.T) {
	for _, tc := range symbolicPrograms(t) {
		si, err := DetectSymbolic(tc.sc, tc.opts)
		if err != nil {
			t.Fatalf("%s: DetectSymbolic rejected an in-fragment program: %v", tc.name, err)
		}
		explicit, err := Detect(tc.sc, tc.opts)
		if err != nil {
			t.Fatalf("%s: explicit Detect: %v", tc.name, err)
		}
		mat := si.Materialize()
		if err := EqualInfo(mat, explicit); err != nil {
			t.Errorf("%s: symbolic result differs: %v", tc.name, err)
		}
		if d1, d2 := infoDigest(mat), infoDigest(explicit); d1 != d2 {
			t.Errorf("%s: digest %s vs explicit %s", tc.name, d1, d2)
		}
		// The aggregate answers must be available without
		// materializing anything.
		if got, want := si.TotalBlocks(), int64(explicit.TotalBlocks()); got != want {
			t.Errorf("%s: TotalBlocks %d, explicit %d", tc.name, got, want)
		}
		var wantEdges int64
		for _, st := range explicit.Stmts {
			for _, dep := range st.InDeps {
				wantEdges += int64(dep.Rel.Card())
			}
		}
		if got := si.TotalDepEdges(); got != wantEdges {
			t.Errorf("%s: TotalDepEdges %d, explicit %d", tc.name, got, wantEdges)
		}
	}
}

// TestSymbolicBackendDispatch runs the full cross-backend suite (which
// includes coarsened, overwriting, and fuzzed programs the symbolic
// fragment excludes) through Detect with the symbolic backend
// selected: fallback must make every result identical to the explicit
// one.
func TestSymbolicBackendDispatch(t *testing.T) {
	progs := crossBackendPrograms(t)
	for _, tc := range symbolicPrograms(t) {
		progs = append(progs, tc)
	}
	for _, tc := range progs {
		explicit, err := Detect(tc.sc, tc.opts)
		if err != nil {
			t.Fatalf("%s: explicit Detect: %v", tc.name, err)
		}
		opts := tc.opts
		opts.Backend = BackendSymbolic
		sym, err := Detect(tc.sc, opts)
		if err != nil {
			t.Fatalf("%s: Detect(Backend=symbolic): %v", tc.name, err)
		}
		if err := EqualInfo(sym, explicit); err != nil {
			t.Errorf("%s: symbolic-backend result differs: %v", tc.name, err)
		}
		if d1, d2 := infoDigest(sym), infoDigest(explicit); d1 != d2 {
			t.Errorf("%s: digest %s vs explicit %s", tc.name, d1, d2)
		}
	}
}

func TestSymbolicRejectsOutsideFragment(t *testing.T) {
	// Coarsening has no closed form.
	if _, err := DetectSymbolic(buildFigure4(t, 16), Options{MinBlockIters: 4}); !errors.Is(err, ErrSymbolicUnsupported) {
		t.Errorf("MinBlockIters=4: err = %v, want ErrSymbolicUnsupported", err)
	}
	// A read running backwards breaks per-dimension monotonicity.
	b := scop.NewBuilder("backwards")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S1", aff.RectDomain("S1", 8)).Writes("A", aff.Var(1, 0))
	b.Stmt("S2", aff.RectDomain("S2", 8)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Linear(7, -1))
	if _, err := DetectSymbolic(b.MustBuild(), Options{}); !errors.Is(err, ErrSymbolicUnsupported) {
		t.Errorf("backwards read: err = %v, want ErrSymbolicUnsupported", err)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := Detect(buildFigure4(t, 16), Options{Backend: "bogus"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
