package runtime

import (
	"strconv"

	"repro/internal/obs"
)

// metrics caches the registry instruments the scheduler and the
// compiled executor update on their hot paths; nil fields (no Observe
// call) cost one branch per site. Instrument names are prefixed with
// the owning layer's name ("tasking", "futures", "stages", or
// "runtime" for the compiled IR executor) so every layer reports the
// same catalogue (see docs/OBSERVABILITY.md).
type metrics struct {
	submitted  *obs.Counter
	executed   *obs.Counter
	stallNs    *obs.Counter
	busyNs     *obs.Counter
	steals     *obs.Counter
	deps       *obs.Counter
	chainFused *obs.Counter
	queueDepth *obs.Gauge
	queuePeak  *obs.Gauge
	running    *obs.Gauge
	peak       *obs.Gauge
	stallHist  *obs.Histogram
	taskHist   *obs.Histogram
	workerBusy []*obs.Counter
}

// newMetrics wires the full instrument set under the given name prefix.
func newMetrics(reg *obs.Registry, name string, workers int) metrics {
	m := metrics{
		submitted:  reg.Counter(name + ".submitted"),
		executed:   reg.Counter(name + ".executed"),
		stallNs:    reg.Counter(name + ".stall_ns_total"),
		busyNs:     reg.Counter(name + ".busy_ns_total"),
		steals:     reg.Counter(name + ".steal_count"),
		deps:       reg.Counter(name + ".deps_resolved"),
		chainFused: reg.Counter(name + ".chain_fused"),
		queueDepth: reg.Gauge(name + ".queue_depth"),
		queuePeak:  reg.Gauge(name + ".queue_depth_peak"),
		running:    reg.Gauge(name + ".running"),
		peak:       reg.Gauge(name + ".peak_concurrency"),
		stallHist:  reg.Histogram(name+".stall_ns", nil),
		taskHist:   reg.Histogram(name+".task_ns", nil),
		workerBusy: make([]*obs.Counter, workers),
	}
	reg.Gauge(name + ".workers").Set(int64(workers))
	for w := 0; w < workers; w++ {
		m.workerBusy[w] = reg.Counter(name + ".worker_busy_ns." + strconv.Itoa(w))
	}
	return m
}
