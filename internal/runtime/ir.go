package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Builder lowers a stream of tasks (submitted in program order, the
// same order a Layer sees them) into a compiled Program: the §5.5
// dependency addresses are resolved against the last-writer and
// last-serial tables exactly once, here, instead of on every submit of
// every run. Edges are deduplicated, so a task reading the same
// address through several access relations carries one edge.
type Builder struct {
	tasks      []Task
	preds      [][]int32
	lastWriter map[int]int32
	lastSerial map[int]int32
	edges      int
}

// NewBuilder returns a builder with capacity for n tasks.
func NewBuilder(n int) *Builder {
	return &Builder{
		tasks:      make([]Task, 0, n),
		preds:      make([][]int32, 0, n),
		lastWriter: make(map[int]int32),
		lastSerial: make(map[int]int32),
	}
}

// Add appends one task, resolving its In addresses and Serial key
// against the previously added tasks.
func (b *Builder) Add(t Task) {
	id := int32(len(b.tasks))
	var preds []int32
	addPred := func(p int32) {
		for _, q := range preds {
			if q == p {
				return
			}
		}
		preds = append(preds, p)
	}
	for _, addr := range t.In {
		if w, ok := b.lastWriter[addr]; ok {
			addPred(w)
		}
	}
	if t.Serial >= 0 {
		if p, ok := b.lastSerial[t.Serial]; ok {
			addPred(p)
		}
		b.lastSerial[t.Serial] = id
	}
	if t.Out >= 0 {
		b.lastWriter[t.Out] = id
	}
	b.tasks = append(b.tasks, t)
	b.preds = append(b.preds, preds)
	b.edges += len(preds)
}

// Build freezes the builder into an immutable Program. The builder
// must not be reused afterwards.
func (b *Builder) Build() *Program {
	n := len(b.tasks)
	p := &Program{
		fns:     make([]func(), n),
		labels:  make([]string, n),
		serial:  make([]int32, n),
		indeg0:  make([]int32, n),
		succOff: make([]int32, n+1),
		predOff: make([]int32, n+1),
		succs:   make([]int32, 0, b.edges),
		preds:   make([]int32, 0, b.edges),
	}
	counts := make([]int32, n)
	for i, t := range b.tasks {
		p.fns[i] = t.Fn
		p.labels[i] = t.Label
		p.serial[i] = int32(t.Serial)
		p.indeg0[i] = int32(len(b.preds[i]))
		if p.indeg0[i] == 0 {
			p.roots = append(p.roots, int32(i))
		}
		for _, q := range b.preds[i] {
			counts[q]++
		}
	}
	for i := 0; i < n; i++ {
		p.succOff[i+1] = p.succOff[i] + counts[i]
	}
	fill := make([]int32, n)
	copy(fill, p.succOff[:n])
	p.succs = p.succs[:p.succOff[n]]
	for i := int32(0); int(i) < n; i++ {
		p.predOff[i+1] = p.predOff[i] + int32(len(b.preds[i]))
		p.preds = append(p.preds, b.preds[i]...)
		for _, q := range b.preds[i] {
			p.succs[fill[q]] = i
			fill[q]++
		}
	}
	return p
}

// Program is a compiled task program: flat arrays of task bodies with
// the dependency DAG in CSR form (successor and predecessor adjacency)
// and precomputed initial indegrees. A Program is immutable — every
// Execute runs against a private indegree copy — so one lowering can
// be reused across runs and executed concurrently.
type Program struct {
	fns     []func()
	labels  []string
	serial  []int32
	succOff []int32 // successor CSR offsets (len = NumTasks+1)
	succs   []int32
	predOff []int32 // predecessor CSR offsets (len = NumTasks+1)
	preds   []int32
	indeg0  []int32
	roots   []int32 // tasks with no predecessors, in creation order

	// Static-chain classification (hybrid scheduling), computed at
	// most once by FuseChains and shared by every hybrid execution.
	chainOnce  sync.Once
	chainNext  []int32 // fused successor run inline after task i, or -1
	fusedIn    []bool  // task is entered via static handoff, not the queue
	fusedEdges int
}

// NumTasks returns the task count.
func (p *Program) NumTasks() int { return len(p.fns) }

// NumEdges returns the dependency-edge count (after deduplication).
func (p *Program) NumEdges() int { return len(p.succs) }

// Label returns task i's trace label.
func (p *Program) Label(i int) string { return p.labels[i] }

// Serial returns task i's serialization key (or NoSerial).
func (p *Program) Serial(i int) int { return int(p.serial[i]) }

// SuccsOf returns the tasks depending on task i (shared storage; do
// not mutate).
func (p *Program) SuccsOf(i int) []int32 { return p.succs[p.succOff[i]:p.succOff[i+1]] }

// PredsOf returns the tasks task i depends on (shared storage; do not
// mutate). Every predecessor id is smaller than i.
func (p *Program) PredsOf(i int) []int32 { return p.preds[p.predOff[i]:p.predOff[i+1]] }

// Indegree0 returns task i's initial unfinished-predecessor count.
func (p *Program) Indegree0(i int) int { return int(p.indeg0[i]) }

// Roots returns the tasks with no predecessors, in creation order
// (shared storage; do not mutate).
func (p *Program) Roots() []int32 { return p.roots }

// ExecOptions tunes one execution of a compiled program.
type ExecOptions struct {
	// Trace, when non-nil, receives the same lifecycle events the
	// streaming scheduler emits (submit and ready with Worker = -1,
	// start and end with the executing worker).
	Trace func(Event)
	// Reg, when non-nil, receives the runtime.* instrument catalogue
	// (docs/OBSERVABILITY.md): executed/steal_count/deps_resolved
	// counters, queue_depth/running/peak_concurrency gauges, stall and
	// task-duration histograms, per-worker busy time.
	Reg *obs.Registry
	// Hybrid enables static/dynamic scheduling: FuseChains classifies
	// single-predecessor consumers and the executor runs each fused
	// consumer inline on the worker that finished its producer — no
	// ready-queue insertion, no atomic indegree decrement — while all
	// cross-chain edges stay on the work-stealing scheduler. Results
	// are bit-identical to the pure-dynamic mode; only the execution
	// order (and the runtime.chain_fused counter) differs.
	Hybrid bool
}

// ExecStats reports one execution of a compiled program.
type ExecStats struct {
	Executed      int
	MaxConcurrent int
	Steals        int64
	DepsResolved  int64
	// ChainFused counts dependency edges resolved by static handoff
	// instead of the ready queue (always 0 unless ExecOptions.Hybrid).
	ChainFused int64
}

// Execute runs the program to completion on the given number of
// workers and returns the execution stats. With one worker the
// execution is deterministic: ready tasks run in FIFO order, roots in
// creation order. With several, each worker owns a ready deque, a
// finished task's newly-ready successors land on the finishing
// worker's deque (atomic indegree decrement — no dependency table, no
// lock), and idle workers steal oldest-first from their peers.
func (p *Program) Execute(workers int, opts ExecOptions) ExecStats {
	if workers < 1 {
		panic(fmt.Sprintf("runtime: workers = %d", workers))
	}
	n := p.NumTasks()
	if n == 0 {
		return ExecStats{}
	}
	var m metrics
	if opts.Reg != nil {
		m = newMetrics(opts.Reg, "runtime", workers)
		m.submitted.Add(int64(n))
	}
	if opts.Trace != nil {
		now := time.Now()
		for i := 0; i < n; i++ {
			opts.Trace(Event{Kind: EventSubmit, TaskID: i, Label: p.labels[i], Serial: int(p.serial[i]), Worker: -1, When: now})
		}
	}
	if opts.Hybrid {
		p.FuseChains()
	}
	if workers == 1 {
		return p.executeSerial(opts, m)
	}
	e := &executor{
		p:       p,
		indeg:   append([]int32(nil), p.indeg0...),
		shards:  make([]deque32, workers),
		workers: workers,
		hybrid:  opts.Hybrid,
		trace:   opts.Trace,
		m:       m,
	}
	if e.trace != nil || opts.Reg != nil {
		e.readyAt = make([]time.Time, n)
	}
	e.cond = sync.NewCond(&e.mu)
	for _, r := range p.roots {
		e.markReady(0, r)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			e.worker(w)
		}(w)
	}
	wg.Wait()
	return ExecStats{
		Executed:      int(e.completed.Load()),
		MaxConcurrent: int(e.maxRun.Load()),
		Steals:        e.steals.Load(),
		DepsResolved:  e.deps.Load(),
		ChainFused:    e.fused.Load(),
	}
}

// ExecuteChecked is Execute plus a post-run validation that every
// indegree was driven to zero and every task ran — the invariant the
// fuzzed-SCoP stress suite asserts.
func (p *Program) ExecuteChecked(workers int, opts ExecOptions) (ExecStats, error) {
	st := p.Execute(workers, opts)
	if st.Executed != p.NumTasks() {
		return st, fmt.Errorf("runtime: executed %d of %d tasks", st.Executed, p.NumTasks())
	}
	want := int64(p.NumEdges())
	if st.DepsResolved != want {
		return st, fmt.Errorf("runtime: resolved %d of %d dependency edges", st.DepsResolved, want)
	}
	return st, nil
}

// executeSerial is the deterministic single-worker mode: an inline
// FIFO sweep over the ready set, no goroutines, no atomics. Under
// ExecOptions.Hybrid a finished task's fused successor runs next
// instead of joining the FIFO tail (depth-first along chains), so the
// order differs from the pure-dynamic sweep but the results do not.
func (p *Program) executeSerial(opts ExecOptions, m metrics) ExecStats {
	n := p.NumTasks()
	hybrid := opts.Hybrid && p.fusedEdges > 0
	indeg := append([]int32(nil), p.indeg0...)
	queue := make([]int32, 0, n)
	queue = append(queue, p.roots...)
	observed := m.queueDepth != nil
	var readyAt []time.Time
	if observed || opts.Trace != nil {
		readyAt = make([]time.Time, n)
		now := time.Now()
		for _, r := range p.roots {
			readyAt[r] = now
			if opts.Trace != nil {
				opts.Trace(Event{Kind: EventReady, TaskID: int(r), Label: p.labels[r], Serial: int(p.serial[r]), Worker: -1, When: now})
			}
		}
	}
	if observed {
		m.queuePeak.Max(m.queueDepth.Add(int64(len(queue))))
	}
	var deps, fused int64
	executed := 0
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		fromQueue := true
		for id >= 0 {
			var start time.Time
			if observed || opts.Trace != nil {
				start = time.Now()
			}
			if observed {
				if fromQueue {
					m.queueDepth.Add(-1)
				}
				m.running.Add(1)
				m.peak.Max(1)
				stall := start.Sub(readyAt[id]).Nanoseconds()
				m.stallNs.Add(stall)
				m.stallHist.Observe(stall)
			}
			if opts.Trace != nil {
				opts.Trace(Event{Kind: EventStart, TaskID: int(id), Label: p.labels[id], Serial: int(p.serial[id]), Worker: 0, When: start})
			}
			if fn := p.fns[id]; fn != nil {
				fn()
			}
			var end time.Time
			if observed || opts.Trace != nil {
				end = time.Now()
			}
			if opts.Trace != nil {
				opts.Trace(Event{Kind: EventEnd, TaskID: int(id), Label: p.labels[id], Serial: int(p.serial[id]), Worker: 0, When: end})
			}
			if observed {
				busy := end.Sub(start).Nanoseconds()
				m.running.Add(-1)
				m.executed.Inc()
				m.busyNs.Add(busy)
				m.taskHist.Observe(busy)
				m.workerBusy[0].Add(busy)
			}
			executed++
			next := int32(-1)
			if hybrid {
				next = p.chainNext[id]
			}
			for _, succ := range p.SuccsOf(int(id)) {
				deps++
				indeg[succ]--
				if indeg[succ] == 0 && succ != next {
					if readyAt != nil {
						readyAt[succ] = time.Now()
						if opts.Trace != nil {
							opts.Trace(Event{Kind: EventReady, TaskID: int(succ), Label: p.labels[succ], Serial: int(p.serial[succ]), Worker: -1, When: readyAt[succ]})
						}
					}
					if observed {
						m.queuePeak.Max(m.queueDepth.Add(1))
					}
					queue = append(queue, succ)
				}
			}
			if next >= 0 {
				fused++
				if m.chainFused != nil {
					m.chainFused.Inc()
				}
				if readyAt != nil {
					readyAt[next] = time.Now()
					if opts.Trace != nil {
						opts.Trace(Event{Kind: EventReady, TaskID: int(next), Label: p.labels[next], Serial: int(p.serial[next]), Worker: 0, When: readyAt[next]})
					}
				}
			}
			id = next
			fromQueue = false
		}
	}
	if m.deps != nil {
		m.deps.Add(deps)
	}
	mc := 0
	if executed > 0 {
		mc = 1
	}
	return ExecStats{Executed: executed, MaxConcurrent: mc, DepsResolved: deps, ChainFused: fused}
}

// deque32 is one worker's ready shard over task ids.
type deque32 struct {
	mu    sync.Mutex
	head  int
	items []int32
}

func (d *deque32) push(id int32) {
	d.mu.Lock()
	d.items = append(d.items, id)
	d.mu.Unlock()
}

func (d *deque32) popBack() (int32, bool) {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return 0, false
	}
	last := len(d.items) - 1
	id := d.items[last]
	d.items = d.items[:last]
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return id, true
}

func (d *deque32) popFront() (int32, bool) {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return 0, false
	}
	id := d.items[d.head]
	d.head++
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return id, true
}

// executor is the per-run state of one multi-worker execution: the
// private indegree copy, the sharded ready deques, and the sleep/wake
// machinery. The mutex guards only sleeping and the ready counter, so
// completions resolve dependencies with one atomic decrement each.
type executor struct {
	p       *Program
	indeg   []int32
	shards  []deque32
	workers int
	hybrid  bool

	mu    sync.Mutex
	cond  *sync.Cond
	ready atomic.Int64 // tasks currently sitting in shards

	completed atomic.Int64
	running   atomic.Int64
	maxRun    atomic.Int64
	steals    atomic.Int64
	deps      atomic.Int64
	fused     atomic.Int64

	trace   func(Event)
	m       metrics
	readyAt []time.Time
}

// markReady places a newly-ready task on worker w's shard and wakes a
// sleeper. The ready counter is incremented under the mutex so a
// worker checking it before sleeping cannot miss the wakeup.
func (e *executor) markReady(w int, id int32) {
	if e.readyAt != nil {
		now := time.Now()
		e.readyAt[id] = now
		if e.m.queueDepth != nil {
			e.m.queuePeak.Max(e.m.queueDepth.Add(1))
		}
		if e.trace != nil {
			e.trace(Event{Kind: EventReady, TaskID: int(id), Label: e.p.labels[id], Serial: int(e.p.serial[id]), Worker: -1, When: now})
		}
	}
	e.shards[w].push(id)
	e.mu.Lock()
	e.ready.Add(1)
	e.cond.Signal()
	e.mu.Unlock()
}

// take returns a ready task for worker w: own shard newest-first, then
// the peers' shards oldest-first (stealing).
func (e *executor) take(w int) (int32, bool) {
	if id, ok := e.shards[w].popBack(); ok {
		e.ready.Add(-1)
		return id, true
	}
	for k := 1; k < e.workers; k++ {
		if id, ok := e.shards[(w+k)%e.workers].popFront(); ok {
			e.ready.Add(-1)
			e.steals.Add(1)
			if e.m.steals != nil {
				e.m.steals.Inc()
			}
			return id, true
		}
	}
	return 0, false
}

func (e *executor) worker(w int) {
	n := int64(e.p.NumTasks())
	for {
		id, ok := e.take(w)
		if !ok {
			e.mu.Lock()
			for e.ready.Load() == 0 && e.completed.Load() < n {
				e.cond.Wait()
			}
			finished := e.completed.Load() >= n
			e.mu.Unlock()
			if finished {
				return
			}
			continue
		}
		fromQueue := true
		for {
			next := e.run(w, id, fromQueue)
			if e.completed.Add(1) == n {
				e.mu.Lock()
				e.cond.Broadcast()
				e.mu.Unlock()
				return
			}
			if next < 0 {
				break
			}
			// Static handoff: the fused successor runs on this worker
			// immediately, never visiting a deque.
			id, fromQueue = next, false
		}
	}
}

// run executes one task body and resolves its successors with atomic
// indegree decrements. Under hybrid scheduling it returns the task's
// fused successor (to run inline on this worker, its single
// dependency resolved by the handoff itself rather than an atomic),
// or -1 when the ready deques should be consulted next.
func (e *executor) run(w int, id int32, fromQueue bool) int32 {
	running := e.running.Add(1)
	for {
		old := e.maxRun.Load()
		if running <= old || e.maxRun.CompareAndSwap(old, running) {
			break
		}
	}
	observed := e.m.queueDepth != nil
	var start time.Time
	if observed || e.trace != nil {
		start = time.Now()
	}
	if observed {
		if fromQueue {
			e.m.queueDepth.Add(-1)
		}
		e.m.running.Add(1)
		e.m.peak.Max(e.maxRun.Load())
		stall := start.Sub(e.readyAt[id]).Nanoseconds()
		e.m.stallNs.Add(stall)
		e.m.stallHist.Observe(stall)
	}
	if e.trace != nil {
		e.trace(Event{Kind: EventStart, TaskID: int(id), Label: e.p.labels[id], Serial: int(e.p.serial[id]), Worker: w, When: start})
	}
	if fn := e.p.fns[id]; fn != nil {
		fn()
	}
	var end time.Time
	if observed || e.trace != nil {
		end = time.Now()
	}
	if e.trace != nil {
		e.trace(Event{Kind: EventEnd, TaskID: int(id), Label: e.p.labels[id], Serial: int(e.p.serial[id]), Worker: w, When: end})
	}
	if observed {
		busy := end.Sub(start).Nanoseconds()
		e.m.running.Add(-1)
		e.m.executed.Inc()
		e.m.busyNs.Add(busy)
		e.m.taskHist.Observe(busy)
		e.m.workerBusy[w].Add(busy)
	}
	e.running.Add(-1)

	next := int32(-1)
	if e.hybrid {
		next = e.p.chainNext[id]
	}
	resolved := int64(0)
	for _, succ := range e.p.SuccsOf(int(id)) {
		resolved++
		if succ == next {
			// The fused successor's only predecessor is this task: the
			// handoff is the resolution, no atomic needed.
			continue
		}
		if atomic.AddInt32(&e.indeg[succ], -1) == 0 {
			e.markReady(w, succ)
		}
	}
	if resolved > 0 {
		e.deps.Add(resolved)
		if e.m.deps != nil {
			e.m.deps.Add(resolved)
		}
	}
	if next >= 0 {
		e.fused.Add(1)
		if e.m.chainFused != nil {
			e.m.chainFused.Inc()
		}
		if e.readyAt != nil {
			now := time.Now()
			e.readyAt[next] = now
			if e.trace != nil {
				e.trace(Event{Kind: EventReady, TaskID: int(next), Label: e.p.labels[next], Serial: int(e.p.serial[next]), Worker: w, When: now})
			}
		}
	}
	return next
}
