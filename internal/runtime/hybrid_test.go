package runtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestFuseChainsClassification(t *testing.T) {
	// 0 → 1 → 2 (pure chain), 0 → 3, {2,3} → 4 (join, indeg 2).
	b := NewBuilder(5)
	b.Add(Task{Out: 0, Serial: NoSerial})
	b.Add(Task{Out: 1, In: []int{0}, Serial: NoSerial})
	b.Add(Task{Out: 2, In: []int{1}, Serial: NoSerial})
	b.Add(Task{Out: 3, In: []int{0}, Serial: NoSerial})
	b.Add(Task{Out: 4, In: []int{2, 3}, Serial: NoSerial})
	p := b.Build()

	if got := p.FuseChains(); got != 2 {
		t.Fatalf("FuseChains = %d, want 2", got)
	}
	// Task 0 has two single-pred successors (1 and 3); the lowest id
	// wins deterministically.
	if p.ChainNext(0) != 1 || p.ChainNext(1) != 2 {
		t.Fatalf("chain = 0→%d→%d, want 0→1→2", p.ChainNext(0), p.ChainNext(1))
	}
	if p.ChainNext(2) != -1 || p.ChainNext(3) != -1 || p.ChainNext(4) != -1 {
		t.Fatalf("unexpected fusion past the join: %d %d %d", p.ChainNext(2), p.ChainNext(3), p.ChainNext(4))
	}
	if !p.FusedIn(1) || !p.FusedIn(2) || p.FusedIn(0) || p.FusedIn(3) || p.FusedIn(4) {
		t.Fatalf("fusedIn wrong: %v %v %v %v %v", p.FusedIn(0), p.FusedIn(1), p.FusedIn(2), p.FusedIn(3), p.FusedIn(4))
	}
	chains, longest := p.ChainProfile()
	if chains != 1 || longest != 3 {
		t.Fatalf("ChainProfile = (%d, %d), want (1, 3)", chains, longest)
	}
	// Memoized: a second call must not reclassify.
	if got := p.FuseChains(); got != 2 {
		t.Fatalf("second FuseChains = %d", got)
	}
}

func TestHybridExecuteLinearChain(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var order []int32
		p := chainProgram(24, &order)
		p.FuseChains()
		if p.NumFusedEdges() != 23 {
			t.Fatalf("fused = %d, want 23", p.NumFusedEdges())
		}
		st, err := p.ExecuteChecked(workers, ExecOptions{Hybrid: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.ChainFused != 23 {
			t.Fatalf("workers=%d: ChainFused = %d, want 23", workers, st.ChainFused)
		}
		// Only the chain head ever visits a deque; everything after it
		// is a static handoff, so at most that one task can be stolen.
		if st.Steals > 1 {
			t.Fatalf("workers=%d: fused chain stole %d times", workers, st.Steals)
		}
		for i, id := range order {
			if int32(i) != id {
				t.Fatalf("workers=%d: order[%d] = %d", workers, i, id)
			}
		}
	}
}

// randomDAG builds a seeded random dependency DAG whose task bodies
// compute cells[i] from the task's predecessors' cells — any
// scheduling that respects the edges yields bit-identical floats.
func randomDAG(rng *rand.Rand, n int, cells []float64) *Program {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		i := i
		var in []int
		for _, k := range rng.Perm(i) {
			if len(in) == 3 {
				break
			}
			if rng.Intn(3) == 0 {
				in = append(in, k)
			}
		}
		deps := append([]int(nil), in...)
		serial := NoSerial
		if rng.Intn(4) == 0 {
			serial = rng.Intn(4)
		}
		b.Add(Task{
			Fn: func() {
				v := 1.0
				for _, d := range deps {
					v += math.Sqrt(cells[d] + float64(d))
				}
				cells[i] = v * 1.0000001
			},
			Out:    i,
			In:     in,
			Serial: serial,
		})
	}
	return b.Build()
}

// TestHybridBitIdenticalToDynamic proves the cross-mode equivalence
// on randomized DAGs: hybrid scheduling must produce bit-identical
// cell arrays to the pure-dynamic mode at every worker count. Run
// with -race -cpu 2,4 to exercise steal paths under contention.
func TestHybridBitIdenticalToDynamic(t *testing.T) {
	const n = 256
	for seed := int64(1); seed <= 8; seed++ {
		want := make([]float64, n)
		randomDAG(rand.New(rand.NewSource(seed)), n, want).Execute(1, ExecOptions{})
		for _, workers := range []int{1, 2, 4, 7} {
			for _, hybrid := range []bool{false, true} {
				got := make([]float64, n)
				p := randomDAG(rand.New(rand.NewSource(seed)), n, got)
				st, err := p.ExecuteChecked(workers, ExecOptions{Hybrid: hybrid})
				if err != nil {
					t.Fatalf("seed=%d workers=%d hybrid=%v: %v", seed, workers, hybrid, err)
				}
				if hybrid {
					if want, got := int64(p.NumFusedEdges()), st.ChainFused; want != got {
						t.Fatalf("seed=%d workers=%d: ChainFused = %d, want %d", seed, workers, got, want)
					}
				} else if st.ChainFused != 0 {
					t.Fatalf("seed=%d workers=%d: dynamic mode fused %d", seed, workers, st.ChainFused)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("seed=%d workers=%d hybrid=%v: cells[%d] = %x, want %x",
							seed, workers, hybrid, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestHybridContentionManyChains floods 4 workers with independent
// fused chains so idle workers must steal chain heads while their
// peers run handoffs — the contention path -race and -cpu 2,4 target.
func TestHybridContentionManyChains(t *testing.T) {
	const chains, length = 32, 16
	cells := make([]float64, chains*length)
	b := NewBuilder(chains * length)
	for c := 0; c < chains; c++ {
		for k := 0; k < length; k++ {
			id := c*length + k
			var in []int
			if k > 0 {
				in = []int{id - 1}
			}
			b.Add(Task{
				Fn: func() {
					v := 1.0
					if len(in) == 1 {
						v += cells[in[0]]
					}
					cells[id] = v
				},
				Out:    id,
				In:     in,
				Serial: NoSerial,
			})
		}
	}
	p := b.Build()
	if p.FuseChains() != chains*(length-1) {
		t.Fatalf("fused = %d", p.NumFusedEdges())
	}
	for run := 0; run < 10; run++ {
		for i := range cells {
			cells[i] = 0
		}
		st, err := p.ExecuteChecked(4, ExecOptions{Hybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.ChainFused != int64(chains*(length-1)) {
			t.Fatalf("run %d: ChainFused = %d", run, st.ChainFused)
		}
		for c := 0; c < chains; c++ {
			if got := cells[c*length+length-1]; got != float64(length) {
				t.Fatalf("run %d: chain %d tail = %v, want %v", run, c, got, float64(length))
			}
		}
	}
}

func TestHybridMetricsAndEvents(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var order []int32
		p := chainProgram(8, &order)
		reg := obs.NewRegistry()
		var mu sync.Mutex
		var events []Event
		st, err := p.ExecuteChecked(workers, ExecOptions{
			Hybrid: true,
			Reg:    reg,
			Trace: func(e Event) {
				mu.Lock()
				events = append(events, e)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		_ = st
		snap := reg.Snapshot()
		if got := snap.Counters["runtime.chain_fused"]; got != 7 {
			t.Fatalf("workers=%d: runtime.chain_fused = %d, want 7", workers, got)
		}
		if got := snap.Counters["runtime.executed"]; got != 8 {
			t.Fatalf("workers=%d: runtime.executed = %d", workers, got)
		}
		if got := snap.Counters["runtime.deps_resolved"]; got != 7 {
			t.Fatalf("workers=%d: runtime.deps_resolved = %d", workers, got)
		}
		if got := snap.Gauges["runtime.queue_depth"]; got != 0 {
			t.Fatalf("workers=%d: queue_depth drained to %d", workers, got)
		}
		if got := snap.Gauges["runtime.queue_depth_peak"]; got < 1 {
			t.Fatalf("workers=%d: queue_depth_peak = %d", workers, got)
		}
		// Fused tasks still emit the full lifecycle: every task has
		// one submit, ready, start, and end event.
		counts := map[EventKind]int{}
		for _, e := range events {
			counts[e.Kind]++
		}
		for _, k := range []EventKind{EventSubmit, EventReady, EventStart, EventEnd} {
			if counts[k] != 8 {
				t.Fatalf("workers=%d: %d %v events, want 8", workers, counts[k], k)
			}
		}
	}
}
