// Package runtime is the single execution core under every tasking
// layer: the task and lifecycle-event vocabulary (§5.4–5.5's CreateTask
// model), one streaming dependency-resolving scheduler shared by the
// tasking/futures/stages adapters, and a compiled task-program IR —
// flat arrays with int32 dependency edges and indegree counters,
// lowered once from codegen's block output — whose executor skips the
// per-submit address hashing entirely on repeat runs.
package runtime

import "time"

// NoSerial disables per-nest serialization for a task.
const NoSerial = -1

// Task describes one unit of work and its dependency interface, the Go
// analogue of the CreateTask signature in Figure 7.
type Task struct {
	// Fn is the task body.
	Fn func()
	// Label identifies the task in traces ("S[3, 8]").
	Label string
	// Out is the dependency address this task writes, or a negative
	// value for none.
	Out int
	// In lists the dependency addresses whose last writers must
	// complete before this task may start.
	In []int
	// Serial, when >= 0, serializes this task after the previously
	// created task with the same Serial key (the funcCount mechanism).
	Serial int
}

// EventKind is a task lifecycle transition.
type EventKind uint8

const (
	// EventSubmit: the task was created (program order).
	EventSubmit EventKind = iota + 1
	// EventReady: the task's last predecessor finished and it entered
	// the ready queue. The gap from Ready to Start is the task's stall.
	EventReady
	// EventStart: a worker began executing the task body.
	EventStart
	// EventEnd: the task body completed.
	EventEnd
)

// String names the transition.
func (k EventKind) String() string {
	switch k {
	case EventSubmit:
		return "submit"
	case EventReady:
		return "ready"
	case EventStart:
		return "start"
	case EventEnd:
		return "end"
	}
	return "unknown"
}

// Event records a task lifecycle transition for tracing.
type Event struct {
	Kind   EventKind
	TaskID int
	Label  string
	Serial int
	Worker int // worker index for Start/End events, -1 otherwise
	When   time.Time
}

// Start reports whether this is a start event (legacy accessor; switch
// on Kind for the full transition set).
func (e Event) Start() bool { return e.Kind == EventStart }
