package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config parameterizes a Scheduler for the tasking layer that fronts
// it. Every layer shares the same dependency resolution, sharded
// work-stealing ready queues, lifecycle events, and metrics; only the
// reported name and the shard-placement policy differ.
type Config struct {
	// Workers is the worker-goroutine count (>= 1).
	Workers int
	// Name prefixes metric names and panic messages ("tasking",
	// "futures", "stages"); empty means "runtime".
	Name string
	// Shard places a ready task on a worker's deque: given the task's
	// submission id, its Serial key (or NoSerial), and the worker
	// count, it returns the shard index. Nil means id % workers.
	Shard func(id, serial, workers int) int
}

// Scheduler executes tasks with dependency tracking over integer
// addresses — the streaming core every tasking layer adapts. Create
// all tasks from one goroutine, then Wait.
//
// The ready queue is sharded: each worker owns a deque guarded by its
// own mutex, pops its own shard from the back, and steals from the
// other shards front-first when its shard runs dry. The scheduler
// mutex guards only the dependency graph (submission and completion),
// so ready-task handoff does not serialize the pool on one lock.
type Scheduler struct {
	mu         sync.Mutex
	workCond   *sync.Cond // signaled under mu when a task enters a shard
	doneCond   *sync.Cond // signaled under mu when pending reaches zero
	shards     []deque
	ready      atomic.Int64 // tasks currently sitting in shards
	pending    int          // created but not finished
	closed     bool
	nextID     int
	lastWriter map[int]*node // dependency address -> last writing task
	lastSerial map[int]*node // serialization key -> last created task
	trace      func(Event)
	workers    sync.WaitGroup
	nworkers   int
	name       string
	shardOf    func(id, serial, workers int) int

	// stats
	executed int // guarded by mu
	running  atomic.Int64
	maxRun   atomic.Int64
	steals   atomic.Int64

	m metrics
}

// deque is one worker's ready-task shard. Pushes land at the back; the
// owner pops newest-first (cache-warm), thieves take oldest-first.
type deque struct {
	mu    sync.Mutex
	head  int
	items []*node
}

func (d *deque) push(n *node) {
	d.mu.Lock()
	d.items = append(d.items, n)
	d.mu.Unlock()
}

func (d *deque) popBack() *node {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return nil
	}
	last := len(d.items) - 1
	n := d.items[last]
	d.items[last] = nil
	d.items = d.items[:last]
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return n
}

func (d *deque) popFront() *node {
	d.mu.Lock()
	if d.head == len(d.items) {
		d.mu.Unlock()
		return nil
	}
	n := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head == len(d.items) {
		d.items, d.head = d.items[:0], 0
	}
	d.mu.Unlock()
	return n
}

// NewScheduler starts a scheduler per the config.
func NewScheduler(cfg Config) *Scheduler {
	name := cfg.Name
	if name == "" {
		name = "runtime"
	}
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("%s: workers = %d", name, cfg.Workers))
	}
	shard := cfg.Shard
	if shard == nil {
		shard = func(id, _, workers int) int { return id % workers }
	}
	s := &Scheduler{
		lastWriter: make(map[int]*node),
		lastSerial: make(map[int]*node),
		nworkers:   cfg.Workers,
		shards:     make([]deque, cfg.Workers),
		name:       name,
		shardOf:    shard,
	}
	s.workCond = sync.NewCond(&s.mu)
	s.doneCond = sync.NewCond(&s.mu)
	s.workers.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go s.worker(w)
	}
	return s
}

// SetTrace installs a tracing callback invoked at every task lifecycle
// transition (submit, ready, start, end). Install it before submitting
// tasks. The callback runs on coordinator and worker goroutines — for
// submit and ready under the scheduler lock — so it must be internally
// synchronized and must not call back into the scheduler.
func (s *Scheduler) SetTrace(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = fn
}

// Observe wires the scheduler's execution metrics into a registry
// under the layer's name prefix (see docs/OBSERVABILITY.md for the
// catalogue): task counts, live queue depth, running tasks and peak
// concurrency, steal and dependency-resolution counts, per-task stall
// (ready→start) and duration histograms, and per-worker busy time.
// Call before submitting tasks.
func (s *Scheduler) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newMetrics(reg, s.name, s.nworkers)
}

// node is the scheduler-internal task state.
type node struct {
	task      Task
	id        int
	remaining int     // unfinished predecessors
	succs     []*node // tasks waiting on this one
	done      bool
	readyAt   time.Time // when the task entered the ready queue
}

// Submit creates a task. Dependencies resolve against previously
// submitted tasks only, so submission order is program order, exactly
// like sequential task creation in an omp single region.
func (s *Scheduler) Submit(t Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic(s.name + ": Submit after Close")
	}
	n := &node{task: t, id: s.nextID}
	s.nextID++
	s.pending++
	if s.m.submitted != nil {
		s.m.submitted.Inc()
	}
	if s.trace != nil {
		s.trace(Event{Kind: EventSubmit, TaskID: n.id, Label: t.Label, Serial: t.Serial, Worker: -1, When: time.Now()})
	}

	addPred := func(p *node) {
		if p == nil || p.done {
			return
		}
		p.succs = append(p.succs, n)
		n.remaining++
	}
	for _, addr := range t.In {
		addPred(s.lastWriter[addr])
	}
	if t.Serial >= 0 {
		addPred(s.lastSerial[t.Serial])
		s.lastSerial[t.Serial] = n
	}
	if t.Out >= 0 {
		s.lastWriter[t.Out] = n
	}
	if n.remaining == 0 {
		s.enqueueLocked(n)
	}
}

// enqueueLocked moves a node whose predecessors are all done into a
// ready shard. The ready event is emitted under the scheduler lock so
// it is globally ordered before the task's start event; the ready
// counter is incremented under the same lock, which is what makes the
// workers' sleep check race-free.
func (s *Scheduler) enqueueLocked(n *node) {
	n.readyAt = time.Now()
	if s.m.queueDepth != nil {
		s.m.queueDepth.Add(1)
	}
	if s.trace != nil {
		s.trace(Event{Kind: EventReady, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: -1, When: n.readyAt})
	}
	s.shards[s.shardOf(n.id, n.task.Serial, s.nworkers)].push(n)
	s.ready.Add(1)
	s.workCond.Signal()
}

// take returns a ready task for worker id, or nil when every shard is
// empty: first the worker's own shard back-first, then the other
// shards front-first (stealing the oldest work).
func (s *Scheduler) take(id int) *node {
	if n := s.shards[id].popBack(); n != nil {
		s.ready.Add(-1)
		return n
	}
	for k := 1; k < s.nworkers; k++ {
		if n := s.shards[(id+k)%s.nworkers].popFront(); n != nil {
			s.ready.Add(-1)
			s.steals.Add(1)
			if s.m.steals != nil {
				s.m.steals.Inc()
			}
			return n
		}
	}
	return nil
}

func (s *Scheduler) worker(id int) {
	defer s.workers.Done()
	for {
		n := s.take(id)
		if n == nil {
			// Both the increment of ready and the Signal happen under
			// mu, so checking under mu cannot miss a wakeup; a stale
			// positive just loops back into another steal sweep.
			s.mu.Lock()
			for s.ready.Load() == 0 && !s.closed {
				s.workCond.Wait()
			}
			closed := s.ready.Load() == 0 && s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		s.execute(id, n)
	}
}

// execute runs one task body and resolves its successors.
func (s *Scheduler) execute(id int, n *node) {
	run := s.running.Add(1)
	for {
		old := s.maxRun.Load()
		if run <= old || s.maxRun.CompareAndSwap(old, run) {
			break
		}
	}
	m := s.m
	trace := s.trace

	start := time.Now()
	if m.queueDepth != nil {
		m.queueDepth.Add(-1)
		m.running.Add(1)
		m.peak.Max(s.maxRun.Load())
		stall := start.Sub(n.readyAt).Nanoseconds()
		m.stallNs.Add(stall)
		m.stallHist.Observe(stall)
	}
	if trace != nil {
		trace(Event{Kind: EventStart, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: id, When: start})
	}
	if n.task.Fn != nil {
		n.task.Fn()
	}
	end := time.Now()
	if trace != nil {
		trace(Event{Kind: EventEnd, TaskID: n.id, Label: n.task.Label, Serial: n.task.Serial, Worker: id, When: end})
	}
	if m.queueDepth != nil {
		busy := end.Sub(start).Nanoseconds()
		m.running.Add(-1)
		m.executed.Inc()
		m.busyNs.Add(busy)
		m.taskHist.Observe(busy)
		m.workerBusy[id].Add(busy)
	}
	s.running.Add(-1)

	s.mu.Lock()
	n.done = true
	s.executed++
	s.pending--
	if s.m.deps != nil {
		s.m.deps.Add(int64(len(n.succs)))
	}
	for _, succ := range n.succs {
		succ.remaining--
		if succ.remaining == 0 {
			s.enqueueLocked(succ)
		}
	}
	if s.pending == 0 {
		s.doneCond.Broadcast()
	}
	s.mu.Unlock()
}

// Wait blocks until every submitted task has completed. It may be
// called repeatedly; tasks may not be submitted concurrently with
// Wait.
func (s *Scheduler) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 {
		s.doneCond.Wait()
	}
}

// Close waits for all tasks and shuts the workers down. The scheduler
// cannot be reused afterwards.
func (s *Scheduler) Close() {
	s.Wait()
	s.mu.Lock()
	s.closed = true
	s.workCond.Broadcast()
	s.mu.Unlock()
	s.workers.Wait()
}

// Stats reports execution counters: total tasks executed and the
// maximum number of tasks observed running simultaneously.
func (s *Scheduler) Stats() (executed, maxConcurrent int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed, int(s.maxRun.Load())
}

// Steals reports how many ready tasks were taken from another worker's
// shard.
func (s *Scheduler) Steals() int64 { return s.steals.Load() }
