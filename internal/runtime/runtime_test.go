package runtime

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// chainProgram builds out[i] depends on out[i-1] through addresses.
func chainProgram(n int, order *[]int32) *Program {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		i := int32(i)
		var in []int
		if i > 0 {
			in = []int{int(i) - 1}
		}
		b.Add(Task{
			Fn:     func() { *order = append(*order, i) },
			Out:    int(i),
			In:     in,
			Serial: NoSerial,
		})
	}
	return b.Build()
}

func TestBuilderResolvesWriterAndSerial(t *testing.T) {
	b := NewBuilder(4)
	b.Add(Task{Out: 10, Serial: NoSerial})                // 0
	b.Add(Task{Out: 11, In: []int{10, 10}, Serial: 0})    // 1: dep on 0, dup In deduped
	b.Add(Task{Out: 10, In: []int{11}, Serial: 0})        // 2: dep on 1 (writer + serial, deduped)
	b.Add(Task{Out: -1, In: []int{10}, Serial: NoSerial}) // 3: dep on 2 (latest writer of 10)
	p := b.Build()

	if p.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d", p.NumTasks())
	}
	wantPreds := [][]int32{nil, {0}, {1}, {2}}
	for i, want := range wantPreds {
		got := p.PredsOf(i)
		if len(got) != len(want) {
			t.Fatalf("PredsOf(%d) = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("PredsOf(%d) = %v, want %v", i, got, want)
			}
		}
	}
	if p.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", p.NumEdges())
	}
	if len(p.Roots()) != 1 || p.Roots()[0] != 0 {
		t.Fatalf("Roots = %v", p.Roots())
	}
	if p.Indegree0(2) != 1 {
		t.Fatalf("Indegree0(2) = %d", p.Indegree0(2))
	}
	if got := p.SuccsOf(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("SuccsOf(1) = %v", got)
	}
}

func TestExecuteSerialDeterministicOrder(t *testing.T) {
	var order []int32
	p := chainProgram(16, &order)
	st, err := p.ExecuteChecked(1, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 16 || st.MaxConcurrent != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for i, id := range order {
		if int32(i) != id {
			t.Fatalf("order[%d] = %d", i, id)
		}
	}
}

func TestExecuteParallelChainOrdered(t *testing.T) {
	for run := 0; run < 20; run++ {
		var order []int32
		p := chainProgram(32, &order)
		st, err := p.ExecuteChecked(4, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Executed != 32 {
			t.Fatalf("executed = %d", st.Executed)
		}
		for i, id := range order {
			if int32(i) != id {
				t.Fatalf("run %d: order[%d] = %d", run, i, id)
			}
		}
	}
}

func TestExecuteIndependentTasksRunConcurrently(t *testing.T) {
	const n = 64
	var counter atomic.Int64
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(Task{Fn: func() { counter.Add(1) }, Out: -1, Serial: NoSerial})
	}
	p := b.Build()
	st, err := p.ExecuteChecked(4, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if counter.Load() != n {
		t.Fatalf("counter = %d", counter.Load())
	}
	if st.Executed != n {
		t.Fatalf("executed = %d", st.Executed)
	}
}

func TestExecuteReusableAcrossRuns(t *testing.T) {
	var counter atomic.Int64
	b := NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.Add(Task{Fn: func() { counter.Add(1) }, Out: i, In: []int{(i + 7) % 8}, Serial: NoSerial})
	}
	p := b.Build()
	for run := 0; run < 3; run++ {
		if _, err := p.ExecuteChecked(2, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if counter.Load() != 24 {
		t.Fatalf("counter = %d", counter.Load())
	}
}

func TestExecuteEmitsEventsAndMetrics(t *testing.T) {
	var order []int32
	p := chainProgram(6, &order)
	for _, workers := range []int{1, 3} {
		order = order[:0]
		reg := obs.NewRegistry()
		counts := map[EventKind]int{}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		trace := func(e Event) {
			<-mu
			counts[e.Kind]++
			mu <- struct{}{}
		}
		if _, err := p.ExecuteChecked(workers, ExecOptions{Trace: trace, Reg: reg}); err != nil {
			t.Fatal(err)
		}
		for _, k := range []EventKind{EventSubmit, EventReady, EventStart, EventEnd} {
			if counts[k] != 6 {
				t.Fatalf("workers=%d: %v events = %d, want 6", workers, k, counts[k])
			}
		}
		snap := reg.Snapshot()
		if got := snap.Counters["runtime.executed"]; got != 6 {
			t.Fatalf("workers=%d: runtime.executed = %d", workers, got)
		}
		if got := snap.Counters["runtime.deps_resolved"]; got != 5 {
			t.Fatalf("workers=%d: runtime.deps_resolved = %d", workers, got)
		}
		if got := snap.Gauges["runtime.queue_depth"]; got != 0 {
			t.Fatalf("workers=%d: runtime.queue_depth = %d", workers, got)
		}
		if got := snap.Gauges["runtime.workers"]; got != int64(workers) {
			t.Fatalf("workers=%d: runtime.workers gauge = %d", workers, got)
		}
	}
}

func TestExecuteEmptyProgram(t *testing.T) {
	p := NewBuilder(0).Build()
	st, err := p.ExecuteChecked(4, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 0 {
		t.Fatalf("executed = %d", st.Executed)
	}
}

func TestExecutePanicsOnBadWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	chainProgram(1, new([]int32)).Execute(0, ExecOptions{})
}

func TestSchedulerShardPolicy(t *testing.T) {
	var hits atomic.Int64
	s := NewScheduler(Config{
		Workers: 2,
		Name:    "test",
		Shard:   func(id, serial, workers int) int { hits.Add(1); return 0 },
	})
	for i := 0; i < 4; i++ {
		s.Submit(Task{Fn: func() {}, Out: -1, Serial: NoSerial})
	}
	s.Close()
	if hits.Load() != 4 {
		t.Fatalf("shard policy hits = %d", hits.Load())
	}
	if executed, _ := s.Stats(); executed != 4 {
		t.Fatalf("executed = %d", executed)
	}
}
