package runtime

// Hybrid static/dynamic scheduling: classify PPN-style producer →
// consumer pairs from the compiled CSR arrays and fuse them into
// statically ordered sequences the finishing worker runs inline —
// a static point-to-point handoff with no ready-queue insertion and
// no atomic indegree traffic — while every cross-chain edge stays on
// the work-stealing scheduler (Jin et al., "Hybrid Static/Dynamic
// Schedules for Tiled Polyhedral Programs"; Alias, "Improving
// Communication Patterns in Polyhedral Process Networks").

// FuseChains classifies the program's static chains once (memoized;
// safe to call concurrently) and returns the number of fused edges.
//
// A task j is fused onto its producer i when j has exactly one
// predecessor (indeg0 == 1): i's completion is then the only event
// that can make j ready, so the handoff needs no synchronization at
// all. A producer adopts at most one fused successor — the lowest
// task id, so classification is deterministic — and its remaining
// successors keep their dynamic edges. Because every predecessor id
// is smaller than its consumer's, chains strictly increase in task
// id and can never form a cycle.
func (p *Program) FuseChains() int {
	p.chainOnce.Do(p.fuseChains)
	return p.fusedEdges
}

func (p *Program) fuseChains() {
	n := p.NumTasks()
	next := make([]int32, n)
	for i := range next {
		next[i] = -1
	}
	fusedIn := make([]bool, n)
	for j := 0; j < n; j++ {
		if p.indeg0[j] != 1 {
			continue
		}
		i := p.preds[p.predOff[j]]
		if next[i] < 0 {
			next[i] = int32(j)
			fusedIn[j] = true
			p.fusedEdges++
		}
	}
	p.fusedIn = fusedIn
	p.chainNext = next
}

// ChainNext returns the task statically fused after task i (run
// inline by the worker that finishes i), or -1. Valid after
// FuseChains.
func (p *Program) ChainNext(i int) int {
	if p.chainNext == nil {
		return -1
	}
	return int(p.chainNext[i])
}

// FusedIn reports whether task i is entered through a static handoff
// (and therefore never visits the ready queue). Valid after
// FuseChains.
func (p *Program) FusedIn(i int) bool {
	return p.fusedIn != nil && p.fusedIn[i]
}

// NumFusedEdges returns the number of dependency edges FuseChains
// turned into static handoffs (0 before FuseChains).
func (p *Program) NumFusedEdges() int { return p.fusedEdges }

// ChainProfile summarizes the classification for introspection:
// the number of multi-task chains and the longest chain's task count.
// Valid after FuseChains.
func (p *Program) ChainProfile() (chains, longest int) {
	if p.chainNext == nil {
		return 0, 0
	}
	for i := range p.chainNext {
		if p.fusedIn[i] || p.chainNext[i] < 0 {
			continue // not a chain head
		}
		chains++
		length := 1
		for j := p.chainNext[i]; j >= 0; j = p.chainNext[j] {
			length++
		}
		if length > longest {
			longest = length
		}
	}
	return chains, longest
}
