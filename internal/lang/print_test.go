package lang

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fuzzscop"
	"repro/internal/scop"
)

func TestUnparseListing1RoundTrip(t *testing.T) {
	sc, err := Parse("listing1", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Unparse(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse("rt", src)
	if err != nil {
		t.Fatalf("unparsed source does not parse: %v\n%s", err, src)
	}
	assertSameShape(t, sc, back)
}

func assertSameShape(t *testing.T, a, b *scop.SCoP) {
	t.Helper()
	if len(a.Stmts) != len(b.Stmts) {
		t.Fatalf("statement count %d != %d", len(a.Stmts), len(b.Stmts))
	}
	for i, s := range a.Stmts {
		got := b.Stmts[i]
		if got.Name != s.Name {
			t.Fatalf("stmt %d name %q != %q", i, got.Name, s.Name)
		}
		if !got.Domain.Equal(s.Domain) {
			t.Fatalf("stmt %s domain differs", s.Name)
		}
		if !got.Write.Rel.Equal(s.Write.Rel) {
			t.Fatalf("stmt %s write differs", s.Name)
		}
		if len(got.Reads) != len(s.Reads) {
			t.Fatalf("stmt %s reads %d != %d", s.Name, len(got.Reads), len(s.Reads))
		}
		for k := range s.Reads {
			if !got.Reads[k].Rel.Equal(s.Reads[k].Rel) {
				t.Fatalf("stmt %s read %d differs", s.Name, k)
			}
		}
	}
}

// TestUnparseFuzzRoundTrip unparses random SCoPs (generated with
// guaranteed reads so the DSL statement form is exact) and re-parses
// them; domains and access relations must survive unchanged.
func TestUnparseFuzzRoundTrip(t *testing.T) {
	for seed := int64(9000); seed < 9080; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := fuzzscop.Random(r, fuzzscop.Config{SelfSerial: AlwaysSerialCfg()})
		src, err := Unparse(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := Parse("rt", src)
		if err != nil {
			t.Fatalf("seed %d: unparsed source does not parse: %v\n%s", seed, err, src)
		}
		assertSameShape(t, sc, back)
	}
}

// AlwaysSerialCfg avoids importing the fuzzscop constant at every call
// site in this file.
func AlwaysSerialCfg() fuzzscop.SerialMode { return fuzzscop.AlwaysSerial }

func TestUnparseTriangular(t *testing.T) {
	src := `
for (i = 0; i < 6; i++)
  for (j = 0; j < i + 1; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1]);
for (i = 0; i < 6; i++)
  for (j = 0; j < i + 1; j++)
    T: B[i][j] = g(A[i][j], B[i][j+1]);
`
	sc, err := Parse("tri", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unparse(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "j < i + 1") {
		t.Fatalf("triangular bound lost:\n%s", out)
	}
	back, err := Parse("rt", out)
	if err != nil {
		t.Fatal(err)
	}
	assertSameShape(t, sc, back)
}

func TestUnparseNoReadStatement(t *testing.T) {
	// A read-free statement gains a self-read in the DSL form (the
	// call syntax needs an argument); the result must still parse and
	// keep the same domain and write.
	src := `
for (i = 0; i < 4; i++)
  S: A[i] = f(A[i]);
`
	sc, err := Parse("x", src)
	if err != nil {
		t.Fatal(err)
	}
	sc.Stmts[0].Reads = nil // make it read-free
	out, err := Unparse(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse("rt", out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Stmts[0].Domain.Equal(sc.Stmts[0].Domain) ||
		!back.Stmts[0].Write.Rel.Equal(sc.Stmts[0].Write.Rel) {
		t.Fatal("domain or write lost")
	}
}

func TestUnparseErrors(t *testing.T) {
	sc, err := Parse("x", "for (i = 0; i < 4; i++) S: A[i] = f(A[i]);")
	if err != nil {
		t.Fatal(err)
	}
	sc.Stmts[0].Spec = nil
	if _, err := Unparse(sc); err == nil {
		t.Fatal("missing spec accepted")
	}
}
