package lang

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/isl"
)

const listing1Src = `
// Listing 1 with N = 20
for (i = 0; i < 19; i++)
  for (j = 0; j < 19; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 9; i++)
  for (j = 0; j < 9; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

func TestParseListing1(t *testing.T) {
	sc, err := Parse("listing1", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Stmts) != 2 {
		t.Fatalf("statements = %d", len(sc.Stmts))
	}
	s := sc.Statement("S")
	if s.Domain.Card() != 19*19 {
		t.Errorf("S card = %d", s.Domain.Card())
	}
	r := sc.Statement("R")
	if r.Domain.Card() != 9*9 {
		t.Errorf("R card = %d", r.Domain.Card())
	}
	if got := r.ReadsFrom("A")[0].Image(isl.NewVec(2, 3)); !got.Eq(isl.NewVec(2, 6)) {
		t.Errorf("A read image = %v", got)
	}
	if len(sc.Arrays) != 2 || sc.Arrays["A"].Dim != 2 {
		t.Errorf("arrays = %v", sc.Arrays)
	}
}

// TestParsedListing1MatchesPaperPipelineMap ties the whole front end
// to the §4.1 worked example.
func TestParsedListing1MatchesPaperPipelineMap(t *testing.T) {
	sc, err := Parse("listing1", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 1 {
		t.Fatalf("pairs = %d", len(info.Pairs))
	}
	pm := info.Pairs[0].T
	for i0 := 0; i0 <= 8; i0++ {
		for o1 := 0; o1 <= 8; o1++ {
			if !pm.Contains(isl.NewVec(i0, 2*o1), isl.NewVec(i0, o1)) {
				t.Fatalf("pipeline map missing S[%d,%d] -> R[%d,%d]", i0, 2*o1, i0, o1)
			}
		}
	}
	if pm.Card() != 81 {
		t.Fatalf("pipeline map card = %d, want 81", pm.Card())
	}
}

func TestParseBracedAndComments(t *testing.T) {
	src := `
for (i = 0; i < 4; i++) {   // braces allowed
  for (j = 0; j < 4; j++) {
    S: A[i][j] = f(B[i][j]); // reads an input array
  }
}
for (i = 0; i < 4; i++) {
  for (j = 0; j < 4; j++) {
    T: C[i][j] = g(A[i][j]);
  }
}
`
	sc, err := Parse("p", src)
	if err != nil {
		t.Fatal(err)
	}
	g := deps.Analyze(sc)
	if !g.DependsOn(sc.Statement("T"), sc.Statement("S")) {
		t.Fatal("T should depend on S")
	}
}

func TestParseAffineBounds(t *testing.T) {
	// Triangular nest: inner bound references the outer variable.
	src := `
for (i = 0; i < 5; i++)
  for (j = 0; j < i + 1; j++)
    S: A[i][j] = f(A[i][j]);
`
	sc, err := Parse("tri", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Statement("S").Domain.Card(); got != 15 {
		t.Fatalf("triangle card = %d, want 15", got)
	}
}

func TestParseDivisionAndNegation(t *testing.T) {
	src := `
for (i = 0; i < 10; i++)
  S: A[i/2] = f(B[10 - i - 1]);
`
	// A[i/2] is not injective -> builder must reject it.
	_, err := Parse("d", src)
	if err == nil || !strings.Contains(err.Error(), "not injective") {
		t.Fatalf("err = %v", err)
	}

	src2 := `
for (i = 0; i < 10; i++)
  S: A[i] = f(B[(i + 4) / 2], C[2*(i - 1)]);
`
	sc, err := Parse("d2", src2)
	if err != nil {
		t.Fatal(err)
	}
	s := sc.Statement("S")
	if got := s.ReadsFrom("B")[0].Image(isl.NewVec(5)); !got.Eq(isl.NewVec(4)) {
		t.Errorf("B image = %v", got)
	}
	if got := s.ReadsFrom("C")[0].Image(isl.NewVec(5)); !got.Eq(isl.NewVec(8)) {
		t.Errorf("C image = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no loop nests"},
		{"badChar", "for (i = 0; i < 4; i++) S: A[i] = f(B[i]) @;", "unexpected character"},
		{"wrongCondVar", "for (i = 0; j < 4; i++) S: A[i] = f(B[i]);", "condition"},
		{"wrongIncVar", "for (i = 0; i < 4; j++) S: A[i] = f(B[i]);", "increment"},
		{"shadow", "for (i = 0; i < 4; i++) for (i = 0; i < 4; i++) S: A[i][i] = f(B[i][i]);", "shadows"},
		{"unknownVar", "for (i = 0; i < 4; i++) S: A[k] = f(B[i]);", "unknown variable"},
		{"nonAffine", "for (i = 0; i < 4; i++) for (j = 0; j < 4; j++) S: A[i][j] = f(B[i*j][j]);", "non-affine"},
		{"divByVar", "for (i = 0; i < 4; i++) S: A[i] = f(B[4/i]);", "divisor"},
		{"noSubscript", "for (i = 0; i < 4; i++) S: A = f(B[i]);", "no subscripts"},
		{"dupStmt", "for (i = 0; i < 4; i++) S: A[i] = f(B[i]);\nfor (i = 0; i < 4; i++) S: C[i] = f(A[i]);", "duplicate statement"},
		{"mixedDims", "for (i = 0; i < 4; i++) S: A[i] = f(B[i]);\nfor (i = 0; i < 4; i++) T: C[i] = f(A[i][i]);", "subscripts"},
		{"ownVarInBound", "for (i = 0; i < i + 3; i++) S: A[i] = f(B[i]);", "unknown variable"},
		{"truncated", "for (i = 0; i < 4", "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name, c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParseParams(t *testing.T) {
	src := `
param N = 20;
param HALF = N / 2;
for (i = 0; i < N - 1; i++)
  for (j = 0; j < N - 1; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < HALF - 1; i++)
  for (j = 0; j < HALF - 1; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`
	sc, err := Parse("paper", src)
	if err != nil {
		t.Fatal(err)
	}
	// Identical to the hard-coded Listing 1 with N = 20.
	ref, err := Parse("ref", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Statement("S").Domain.Equal(ref.Statement("S").Domain) {
		t.Error("param-based S domain differs")
	}
	if !sc.Statement("R").Domain.Equal(ref.Statement("R").Domain) {
		t.Error("param-based R domain differs")
	}
}

func TestParseParamErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"dup", "param N = 3;\nparam N = 4;\nfor (i = 0; i < N; i++) S: A[i] = f(B[i]);", "declared twice"},
		{"reserved", "param for = 3;", "reserved word"},
		{"varInParam", "param N = i;", "unknown variable"},
		{"missingSemi", "param N = 3 for (i = 0; i < N; i++) S: A[i] = f(B[i]);", "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name, c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestParamShadowedByLoopVar(t *testing.T) {
	// A loop variable with the same name takes precedence inside the
	// loop.
	src := `
param k = 7;
for (k = 0; k < 4; k++)
  S: A[k] = f(B[k]);
`
	sc, err := Parse("shadow", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Statement("S").Domain.Card(); got != 4 {
		t.Fatalf("card = %d, want 4 (loop var must shadow param)", got)
	}
}

func TestParseListing3EndToEnd(t *testing.T) {
	src := `
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    U: C[i][j] = h(A[2*i][2*j], B[i][j], C[i][j+1], C[i+1][j+1], C[i][j]);
`
	sc, err := Parse("listing3", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3 (S->R, S->U, R->U)", len(info.Pairs))
	}
	u := info.Stmt("U")
	if len(u.InDeps) != 2 {
		t.Fatalf("U in-deps = %d", len(u.InDeps))
	}
}

func TestArrayDeclarationsBoundsCheck(t *testing.T) {
	good := `
param N = 8;
array A[8][8];
array B[4][4];
for (i = 0; i < N - 1; i++)
  for (j = 0; j < N - 1; j++)
    S: A[i][j] = f(A[i][j], A[i+1][j+1]);
for (i = 0; i < 3; i++)
  for (j = 0; j < 3; j++)
    R: B[i][j] = g(A[2*i][2*j], B[i][j]);
`
	if _, err := Parse("good", good); err != nil {
		t.Fatalf("in-bounds program rejected: %v", err)
	}

	outOfBounds := `
array A[4];
for (i = 0; i < 4; i++)
  S: A[i] = f(A[i+1]);
`
	if _, err := Parse("oob", outOfBounds); err == nil ||
		!strings.Contains(err.Error(), "outside the declared extents") {
		t.Fatalf("err = %v", err)
	}

	wrongDims := `
array A[4][4];
for (i = 0; i < 4; i++)
  S: A[i] = f(A[i]);
`
	if _, err := Parse("dims", wrongDims); err == nil ||
		!strings.Contains(err.Error(), "dimensions") {
		t.Fatalf("err = %v", err)
	}

	undeclaredUnchecked := `
for (i = 0; i < 4; i++)
  S: A[i] = f(A[i+100]);
`
	if _, err := Parse("loose", undeclaredUnchecked); err != nil {
		t.Fatalf("undeclared array should not be bounds-checked: %v", err)
	}
}

func TestArrayDeclarationErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"dup", "array A[4];\narray A[4];\nfor (i = 0; i < 4; i++) S: A[i] = f(A[i]);", "declared twice"},
		{"noExt", "array A;\nfor (i = 0; i < 4; i++) S: A[i] = f(A[i]);", "without extents"},
		{"zeroExt", "array A[0];\nfor (i = 0; i < 4; i++) S: A[i] = f(A[i]);", "non-positive extent"},
		{"missingSemi", "array A[4]\nfor (i = 0; i < 4; i++) S: A[i] = f(A[i]);", "expected"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.name, c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestParseWithParams(t *testing.T) {
	src := `
param N = 4;
for (i = 0; i < N; i++)
  S: A[i] = f(A[i]);
`
	// Default from the source.
	sc, err := ParseWithParams("deflt", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("S").Domain.Card() != 4 {
		t.Fatalf("default card = %d", sc.Statement("S").Domain.Card())
	}
	// Caller override.
	sc, err = ParseWithParams("bound", src, map[string]int{"N": 9})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("S").Domain.Card() != 9 {
		t.Fatalf("bound card = %d", sc.Statement("S").Domain.Card())
	}
	// Binding without a source declaration also works.
	noDecl := `
for (i = 0; i < M; i++)
  S: A[i] = f(A[i]);
`
	sc, err = ParseWithParams("nodecl", noDecl, map[string]int{"M": 6})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Statement("S").Domain.Card() != 6 {
		t.Fatalf("nodecl card = %d", sc.Statement("S").Domain.Card())
	}
}
