package lang

import (
	"fmt"
	"strings"

	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// Unparse renders a SCoP back to DSL source — the inverse of Parse for
// SCoPs whose statements carry symbolic domains. Round-tripping
// Parse(Unparse(sc)) reproduces the same domains and access relations,
// which the tests rely on. Statement bodies are not representable in
// the DSL and are dropped.
func Unparse(sc *scop.SCoP) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// scop %q\n", sc.Name)
	for _, s := range sc.Stmts {
		if s.Spec == nil {
			return "", fmt.Errorf("lang: statement %q has no symbolic domain to unparse", s.Name)
		}
		if len(s.Spec.Constraints) != 0 {
			return "", fmt.Errorf("lang: statement %q has extra domain constraints, not representable in the DSL", s.Name)
		}
		if s.Write == nil {
			return "", fmt.Errorf("lang: statement %q has no write access; the DSL statement form requires one", s.Name)
		}
		depth := s.Depth()
		for d := 0; d < depth; d++ {
			v := loopVarName(d)
			fmt.Fprintf(&b, "%sfor (%s = %s; %s < %s; %s++)\n",
				strings.Repeat("  ", d),
				v, unparseExpr(s.Spec.Bounds[d].Lo),
				v, unparseExpr(s.Spec.Bounds[d].Hi), v)
		}
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s: %s = f(", indent, s.Name, unparseAccess(*s.Write))
		if len(s.Reads) == 0 {
			// The DSL call form needs at least one argument; reading
			// the written cell is a semantic no-op for analysis
			// purposes only if declared — instead re-read the write
			// target, which adds a same-iteration self read.
			b.WriteString(unparseAccess(*s.Write))
		}
		for i := range s.Reads {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(unparseAccess(s.Reads[i]))
		}
		b.WriteString(");\n")
	}
	return b.String(), nil
}

func loopVarName(d int) string {
	// i, j, k, then i3, i4, ...
	switch d {
	case 0:
		return "i"
	case 1:
		return "j"
	case 2:
		return "k"
	}
	return fmt.Sprintf("i%d", d)
}

func unparseAccess(a scop.AccessRef) string {
	var b strings.Builder
	b.WriteString(a.Array())
	for _, e := range a.Access.Exprs {
		fmt.Fprintf(&b, "[%s]", unparseExpr(e))
	}
	return b.String()
}

// unparseExpr renders an affine expression in DSL syntax with loop
// variables named by loopVarName.
func unparseExpr(e aff.Expr) string {
	var parts []string
	for i := 0; i < e.NVars; i++ {
		c := 0
		if e.Coeffs != nil {
			c = e.Coeffs[i]
		}
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, loopVarName(i))
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, loopVarName(i)))
		}
	}
	for _, d := range e.Divs {
		inner := fmt.Sprintf("(%s) / %d", unparseExpr(d.Inner), d.Den)
		if d.Coef != 1 {
			inner = fmt.Sprintf("%d*(%s)", d.Coef, inner)
		}
		parts = append(parts, inner)
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if strings.HasPrefix(p, "-") {
			out += " - " + p[1:]
		} else {
			out += " + " + p
		}
	}
	return out
}
