package lang

import (
	"fmt"
	"strconv"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/scop"
)

// access is a parsed array access.
type access struct {
	array string
	idx   []aff.Expr
}

// stmtDecl is a parsed statement.
type stmtDecl struct {
	name  string
	spec  *aff.Domain
	write access
	reads []access
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	// loop variable names currently in scope, outermost first
	vars []string
	// params holds `param NAME = value;` compile-time constants
	params map[string]int
	// arrays holds `array NAME[e0][e1];` declared extents, used for
	// bounds checking; undeclared arrays are not checked
	arrays map[string][]int
	// preBound marks params supplied by the caller (ParseWithParams);
	// source-level `param` declarations of the same name are defaults
	// and do not override them
	preBound map[string]bool
	// parsed statements in program order
	stmts []stmtDecl
}

// Parse parses a DSL program into an analysis-only SCoP (statement
// bodies are nil; attach them afterwards if execution is needed).
// Top-level `param NAME = <const expr>;` declarations define
// compile-time constants usable in bounds and subscripts, e.g.
//
//	param N = 20;
//	for (i = 0; i < N - 1; i++) ...
func Parse(name, src string) (*scop.SCoP, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, params: make(map[string]int), arrays: make(map[string][]int)}
	for p.peek().kind != tokEOF {
		switch p.peek().text {
		case "param":
			if err := p.parseParam(); err != nil {
				return nil, err
			}
		case "array":
			if err := p.parseArrayDecl(); err != nil {
				return nil, err
			}
		default:
			if err := p.parseNest(nil); err != nil {
				return nil, err
			}
		}
	}
	if len(p.stmts) == 0 {
		return nil, fmt.Errorf("lang: program %q contains no loop nests", name)
	}
	return p.buildScop(name)
}

// ParseWithParams parses src with the given parameter bindings
// pre-declared, so one program text can be instantiated at several
// sizes:
//
//	sc, err := lang.ParseWithParams("p", src, map[string]int{"N": 64})
//
// Bindings shadow `param` declarations of the same name in the source
// (the source value acts as a default).
func ParseWithParams(name, src string, params map[string]int) (*scop.SCoP, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		params:   make(map[string]int, len(params)),
		arrays:   make(map[string][]int),
		preBound: make(map[string]bool, len(params)),
	}
	for k, v := range params {
		p.params[k] = v
		p.preBound[k] = true
	}
	for p.peek().kind != tokEOF {
		switch p.peek().text {
		case "param":
			if err := p.parseParam(); err != nil {
				return nil, err
			}
		case "array":
			if err := p.parseArrayDecl(); err != nil {
				return nil, err
			}
		default:
			if err := p.parseNest(nil); err != nil {
				return nil, err
			}
		}
	}
	if len(p.stmts) == 0 {
		return nil, fmt.Errorf("lang: program %q contains no loop nests", name)
	}
	return p.buildScop(name)
}

// parseParam parses `param NAME = <const expr>;`.
func (p *parser) parseParam() error {
	if _, err := p.expect("param"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if name.text == "param" || name.text == "for" || name.text == "array" {
		return p.errf(name, "reserved word %q cannot name a param", name.text)
	}
	if _, dup := p.params[name.text]; dup && !p.preBound[name.text] {
		return p.errf(name, "param %q declared twice", name.text)
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	e, err := p.parseSum(0)
	if err != nil {
		return err
	}
	c := e.Eval(nil) // arity-0 expressions are compile-time constants
	if _, err := p.expect(";"); err != nil {
		return err
	}
	if p.preBound[name.text] {
		// Caller-supplied binding wins; the source value is a default.
		p.preBound[name.text] = false
		return nil
	}
	p.params[name.text] = c
	return nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.kind == tokEOF || t.text != text {
		return t, p.errf(t, "expected %q, found %s", text, t)
	}
	return t, nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

// parseArrayDecl parses `array NAME[e0][e1]...;` where extents are
// constant expressions. Declared arrays get bounds-checked accesses.
func (p *parser) parseArrayDecl() error {
	if _, err := p.expect("array"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.arrays[name.text]; dup {
		return p.errf(name, "array %q declared twice", name.text)
	}
	var extents []int
	for p.peek().text == "[" {
		p.next()
		e, err := p.parseSum(0)
		if err != nil {
			return err
		}
		ext := e.Eval(nil)
		if ext <= 0 {
			return p.errf(name, "array %q has non-positive extent %d", name.text, ext)
		}
		if _, err := p.expect("]"); err != nil {
			return err
		}
		extents = append(extents, ext)
	}
	if len(extents) == 0 {
		return p.errf(name, "array %q declared without extents", name.text)
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	p.arrays[name.text] = extents
	return nil
}

// parseNest parses one for loop (possibly containing nested loops and
// finally a statement), accumulating bounds.
func (p *parser) parseNest(bounds []aff.LoopBound) error {
	if _, err := p.expect("for"); err != nil {
		return err
	}
	if _, err := p.expect("("); err != nil {
		return err
	}
	v, err := p.expectIdent()
	if err != nil {
		return err
	}
	for _, existing := range p.vars {
		if existing == v.text {
			return p.errf(v, "loop variable %q shadows an enclosing loop", v.text)
		}
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	cond, err := p.expectIdent()
	if err != nil {
		return err
	}
	if cond.text != v.text {
		return p.errf(cond, "loop condition tests %q, expected %q", cond.text, v.text)
	}
	if _, err := p.expect("<"); err != nil {
		return err
	}
	// The upper bound may not reference the loop's own variable.
	hi, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	inc, err := p.expectIdent()
	if err != nil {
		return err
	}
	if inc.text != v.text {
		return p.errf(inc, "loop increment updates %q, expected %q", inc.text, v.text)
	}
	if _, err := p.expect("++"); err != nil {
		return err
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}

	p.vars = append(p.vars, v.text)
	bounds = append(bounds, aff.LoopBound{Lo: lo, Hi: hi})

	braced := false
	if p.peek().text == "{" {
		p.next()
		braced = true
	}
	if p.peek().text == "for" {
		if err := p.parseNest(bounds); err != nil {
			return err
		}
	} else {
		if err := p.parseStmt(bounds); err != nil {
			return err
		}
	}
	if braced {
		if _, err := p.expect("}"); err != nil {
			return err
		}
	}
	p.vars = p.vars[:len(p.vars)-1]
	return nil
}

// parseStmt parses `Name: A[..][..] = f(acc, acc, ...);`.
func (p *parser) parseStmt(bounds []aff.LoopBound) error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect(":"); err != nil {
		return err
	}
	write, err := p.parseAccess()
	if err != nil {
		return err
	}
	if _, err := p.expect("="); err != nil {
		return err
	}
	if _, err := p.expectIdent(); err != nil { // opaque function name
		return err
	}
	if _, err := p.expect("("); err != nil {
		return err
	}
	var reads []access
	for {
		rd, err := p.parseAccess()
		if err != nil {
			return err
		}
		reads = append(reads, rd)
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if _, err := p.expect(")"); err != nil {
		return err
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	for _, s := range p.stmts {
		if s.name == name.text {
			return p.errf(name, "duplicate statement name %q", name.text)
		}
	}
	// Re-root the bound expressions onto this statement's own domain
	// arity (bound d uses variables 0..d-1).
	spec := aff.NewDomain(name.text, bounds...)
	p.stmts = append(p.stmts, stmtDecl{
		name:  name.text,
		spec:  spec,
		write: write,
		reads: reads,
	})
	return nil
}

// parseAccess parses `Array[e]…[e]`.
func (p *parser) parseAccess() (access, error) {
	arr, err := p.expectIdent()
	if err != nil {
		return access{}, err
	}
	var idx []aff.Expr
	for p.peek().text == "[" {
		p.next()
		e, err := p.parseExprFull()
		if err != nil {
			return access{}, err
		}
		if _, err := p.expect("]"); err != nil {
			return access{}, err
		}
		idx = append(idx, e)
	}
	if len(idx) == 0 {
		return access{}, p.errf(arr, "access to %q has no subscripts", arr.text)
	}
	return access{array: arr.text, idx: idx}, nil
}

// parseExpr parses an affine expression over the loop variables in
// scope *before* the innermost being declared (used for bounds, whose
// arity is the current depth).
func (p *parser) parseExpr() (aff.Expr, error) {
	return p.parseSum(len(p.vars))
}

// parseExprFull parses an expression over all loop variables in scope
// (used for access subscripts).
func (p *parser) parseExprFull() (aff.Expr, error) {
	return p.parseSum(len(p.vars))
}

func (p *parser) parseSum(arity int) (aff.Expr, error) {
	e, err := p.parseTerm(arity)
	if err != nil {
		return aff.Expr{}, err
	}
	for {
		switch p.peek().text {
		case "+":
			p.next()
			rhs, err := p.parseTerm(arity)
			if err != nil {
				return aff.Expr{}, err
			}
			e = e.Add(rhs)
		case "-":
			p.next()
			rhs, err := p.parseTerm(arity)
			if err != nil {
				return aff.Expr{}, err
			}
			e = e.Sub(rhs)
		default:
			return e, nil
		}
	}
}

// parseTerm handles multiplication and division by constants.
func (p *parser) parseTerm(arity int) (aff.Expr, error) {
	e, err := p.parseFactor(arity)
	if err != nil {
		return aff.Expr{}, err
	}
	for {
		switch p.peek().text {
		case "*":
			op := p.next()
			rhs, err := p.parseFactor(arity)
			if err != nil {
				return aff.Expr{}, err
			}
			// One side must be constant for the product to stay affine.
			if c, ok := constOf(rhs); ok {
				e = e.Scale(c)
			} else if c, ok := constOf(e); ok {
				e = rhs.Scale(c)
			} else {
				return aff.Expr{}, p.errf(op, "non-affine product of two variables")
			}
		case "/":
			op := p.next()
			rhs, err := p.parseFactor(arity)
			if err != nil {
				return aff.Expr{}, err
			}
			c, ok := constOf(rhs)
			if !ok || c <= 0 {
				return aff.Expr{}, p.errf(op, "division requires a positive constant divisor")
			}
			e = aff.FloorDiv(e, c)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseFactor(arity int) (aff.Expr, error) {
	t := p.next()
	switch {
	case t.text == "(":
		e, err := p.parseSum(arity)
		if err != nil {
			return aff.Expr{}, err
		}
		if _, err := p.expect(")"); err != nil {
			return aff.Expr{}, err
		}
		return e, nil
	case t.text == "-":
		e, err := p.parseFactor(arity)
		if err != nil {
			return aff.Expr{}, err
		}
		return e.Scale(-1), nil
	case t.kind == tokNumber:
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return aff.Expr{}, p.errf(t, "bad number %q", t.text)
		}
		return aff.Const(arity, n), nil
	case t.kind == tokIdent:
		for d, name := range p.vars {
			if name == t.text && d < arity {
				return aff.Var(arity, d), nil
			}
		}
		if c, ok := p.params[t.text]; ok {
			return aff.Const(arity, c), nil
		}
		return aff.Expr{}, p.errf(t, "unknown variable %q (loop variables in scope: %v)", t.text, p.vars[:min(arity, len(p.vars))])
	default:
		return aff.Expr{}, p.errf(t, "expected expression, found %s", t)
	}
}

// constOf reports whether e is a constant expression and its value.
func constOf(e aff.Expr) (int, bool) {
	if len(e.Divs) != 0 {
		return 0, false
	}
	for _, c := range e.Coeffs {
		if c != 0 {
			return 0, false
		}
	}
	return e.Const, true
}

// buildScop assembles the SCoP, inferring array declarations from the
// accesses.
func (p *parser) buildScop(name string) (*scop.SCoP, error) {
	b := scop.NewBuilder(name)
	dims := map[string]int{}
	for _, s := range p.stmts {
		accs := append([]access{s.write}, s.reads...)
		for _, a := range accs {
			if prev, ok := dims[a.array]; ok {
				if prev != len(a.idx) {
					return nil, fmt.Errorf("lang: array %q used with both %d and %d subscripts", a.array, prev, len(a.idx))
				}
			} else {
				dims[a.array] = len(a.idx)
				b.Array(a.array, len(a.idx))
			}
		}
	}
	for name, dim := range dims {
		if ext, declared := p.arrays[name]; declared && len(ext) != dim {
			return nil, fmt.Errorf("lang: array %q declared with %d dimensions but used with %d subscripts",
				name, len(ext), dim)
		}
	}
	for _, s := range p.stmts {
		sb := b.Stmt(s.name, s.spec).Writes(s.write.array, s.write.idx...)
		for _, rd := range s.reads {
			sb.Reads(rd.array, rd.idx...)
		}
	}
	sc, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := p.checkBounds(sc); err != nil {
		return nil, err
	}
	return sc, nil
}

// checkBounds verifies that every access to a declared array stays
// within its declared extents.
func (p *parser) checkBounds(sc *scop.SCoP) error {
	for _, s := range sc.Stmts {
		accs := make([]*scop.AccessRef, 0, len(s.Reads)+1)
		if s.Write != nil {
			accs = append(accs, s.Write)
		}
		for i := range s.Reads {
			accs = append(accs, &s.Reads[i])
		}
		for _, a := range accs {
			ext, declared := p.arrays[a.Array()]
			if !declared {
				continue
			}
			var bad error
			a.Rel.Range().Foreach(func(idx isl.Vec) bool {
				for d, x := range idx {
					if x < 0 || x >= ext[d] {
						bad = fmt.Errorf("lang: statement %q accesses %s%v outside the declared extents %v",
							s.Name, a.Array(), idx, ext)
						return false
					}
				}
				return true
			})
			if bad != nil {
				return bad
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
