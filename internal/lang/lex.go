// Package lang is the front end that stands in for Polly's SCoP
// extraction from LLVM-IR: it parses a small C-like loop-nest language
// — sufficient for every program in the paper — into the scop IR.
//
// Grammar (concrete sizes, no symbolic parameters):
//
//	program := nest+
//	nest    := "for" "(" id "=" expr ";" id "<" expr ";" id "++" ")" body
//	body    := nest | "{" nest "}" | stmt | "{" stmt "}"
//	stmt    := id ":" access "=" id "(" access ("," access)* ")" ";"
//	access  := id ("[" expr "]")+
//	expr    := affine arithmetic over enclosing loop variables with
//	           integer literals, +, -, *, / (integer floor division by
//	           a constant), and parentheses
//
// Example (the paper's Listing 1 with N = 20):
//
//	for (i = 0; i < 19; i++)
//	  for (j = 0; j < 19; j++)
//	    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
//	for (i = 0; i < 9; i++)
//	  for (j = 0; j < 9; j++)
//	    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single-rune punctuation and "++"
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes the DSL source.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) nextRune() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// tokens lexes the whole input.
func (lx *lexer) tokens() ([]token, error) {
	var out []token
	for {
		// Skip whitespace and comments.
		for lx.pos < len(lx.src) {
			r := lx.peekRune()
			if unicode.IsSpace(r) {
				lx.nextRune()
				continue
			}
			if r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
				for lx.pos < len(lx.src) && lx.peekRune() != '\n' {
					lx.nextRune()
				}
				continue
			}
			break
		}
		if lx.pos >= len(lx.src) {
			out = append(out, token{kind: tokEOF, line: lx.line, col: lx.col})
			return out, nil
		}
		line, col := lx.line, lx.col
		r := lx.peekRune()
		switch {
		case unicode.IsLetter(r) || r == '_':
			var b strings.Builder
			for lx.pos < len(lx.src) {
				r := lx.peekRune()
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				b.WriteRune(lx.nextRune())
			}
			out = append(out, token{kind: tokIdent, text: b.String(), line: line, col: col})
		case unicode.IsDigit(r):
			var b strings.Builder
			for lx.pos < len(lx.src) && unicode.IsDigit(lx.peekRune()) {
				b.WriteRune(lx.nextRune())
			}
			out = append(out, token{kind: tokNumber, text: b.String(), line: line, col: col})
		case strings.ContainsRune("()[]{};:,=<>+-*/", r):
			lx.nextRune()
			text := string(r)
			if r == '+' && lx.peekRune() == '+' {
				lx.nextRune()
				text = "++"
			}
			out = append(out, token{kind: tokPunct, text: text, line: line, col: col})
		default:
			return nil, lx.errorf(line, col, "unexpected character %q", r)
		}
	}
}
