package isl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSet parses the ISL-like extensional set notation produced by
// Set.String, e.g. "{ S[0, 1]; S[2, 3] }". The empty set of a given
// space cannot be parsed from "{  }" alone (no space information);
// parse into an existing space with ParseSetIn instead.
func ParseSet(s string) (*Set, error) {
	tuples, err := parseTuples(s)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("isl: cannot infer the space of an empty set; use ParseSetIn")
	}
	space := NewSpace(tuples[0].name, len(tuples[0].coords))
	set := NewSet(space)
	for _, t := range tuples {
		if t.name != space.Name || len(t.coords) != space.Dim {
			return nil, fmt.Errorf("isl: mixed tuple spaces %s and %s[%d] in one set",
				space, t.name, len(t.coords))
		}
		set.Add(t.coords)
	}
	return set, nil
}

// ParseSetIn parses set notation into the given space, allowing empty
// sets.
func ParseSetIn(space Space, s string) (*Set, error) {
	tuples, err := parseTuples(s)
	if err != nil {
		return nil, err
	}
	set := NewSet(space)
	for _, t := range tuples {
		if t.name != space.Name || len(t.coords) != space.Dim {
			return nil, fmt.Errorf("isl: tuple %s[%d] does not belong to space %s",
				t.name, len(t.coords), space)
		}
		set.Add(t.coords)
	}
	return set, nil
}

// ParseMap parses the ISL-like extensional map notation produced by
// Map.String, e.g. "{ S[0] -> R[1]; S[1] -> R[2] }".
func ParseMap(s string) (*Map, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	parts := splitTop(inner)
	if len(parts) == 0 {
		return nil, fmt.Errorf("isl: cannot infer the spaces of an empty map; use ParseMapIn")
	}
	var m *Map
	for _, part := range parts {
		lhs, rhs, ok := strings.Cut(part, "->")
		if !ok {
			return nil, fmt.Errorf("isl: map element %q lacks '->'", strings.TrimSpace(part))
		}
		in, err := parseTuple(strings.TrimSpace(lhs))
		if err != nil {
			return nil, err
		}
		out, err := parseTuple(strings.TrimSpace(rhs))
		if err != nil {
			return nil, err
		}
		if m == nil {
			m = NewMap(NewSpace(in.name, len(in.coords)), NewSpace(out.name, len(out.coords)))
		}
		if in.name != m.in.Name || len(in.coords) != m.in.Dim ||
			out.name != m.out.Name || len(out.coords) != m.out.Dim {
			return nil, fmt.Errorf("isl: mixed tuple spaces in map element %q", strings.TrimSpace(part))
		}
		m.Add(in.coords, out.coords)
	}
	return m, nil
}

// ParseMapIn parses map notation into the given spaces, allowing empty
// maps.
func ParseMapIn(in, out Space, s string) (*Map, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	m := NewMap(in, out)
	for _, part := range splitTop(inner) {
		lhs, rhs, ok := strings.Cut(part, "->")
		if !ok {
			return nil, fmt.Errorf("isl: map element %q lacks '->'", strings.TrimSpace(part))
		}
		i, err := parseTuple(strings.TrimSpace(lhs))
		if err != nil {
			return nil, err
		}
		o, err := parseTuple(strings.TrimSpace(rhs))
		if err != nil {
			return nil, err
		}
		if i.name != in.Name || len(i.coords) != in.Dim || o.name != out.Name || len(o.coords) != out.Dim {
			return nil, fmt.Errorf("isl: map element %q does not match spaces %s -> %s",
				strings.TrimSpace(part), in, out)
		}
		m.Add(i.coords, o.coords)
	}
	return m, nil
}

type parsedTuple struct {
	name   string
	coords Vec
}

func stripBraces(s string) (string, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return "", fmt.Errorf("isl: notation must be enclosed in braces: %q", s)
	}
	return t[1 : len(t)-1], nil
}

// splitTop splits on ';' (no nesting to worry about in the
// extensional notation) and drops empty parts.
func splitTop(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseTuples(s string) ([]parsedTuple, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	var out []parsedTuple
	for _, part := range splitTop(inner) {
		t, err := parseTuple(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// parseTuple parses "Name[a, b, -3]".
func parseTuple(s string) (parsedTuple, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return parsedTuple{}, fmt.Errorf("isl: malformed tuple %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return parsedTuple{}, fmt.Errorf("isl: tuple %q has no space name", s)
	}
	body := s[open+1 : len(s)-1]
	var coords Vec
	if strings.TrimSpace(body) != "" {
		for _, c := range strings.Split(body, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return parsedTuple{}, fmt.Errorf("isl: bad coordinate in tuple %q: %v", s, err)
			}
			coords = append(coords, v)
		}
	}
	return parsedTuple{name: name, coords: coords}, nil
}

// Deltas returns the set of difference vectors { out − in : (in, out) ∈ m }
// for a map whose input and output spaces have equal dimension — ISL's
// deltas operation, the basis of dependence distance vectors. The
// result lives in an anonymous space named after the two tuple names.
func Deltas(m *Map) *Set {
	if m.in.Dim != m.out.Dim {
		panic("isl: Deltas requires equal input/output dimensions: " +
			m.in.String() + " vs " + m.out.String())
	}
	s := NewSet(NewSpace(m.in.Name+"-"+m.out.Name, m.in.Dim))
	m.Foreach(func(in, out Vec) bool {
		d := make(Vec, len(in))
		for k := range in {
			d[k] = out[k] - in[k]
		}
		s.Add(d)
		return true
	})
	return s
}
