package isl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSet parses the ISL-like extensional set notation produced by
// Set.String, e.g. "{ S[0, 1]; S[2, 3] }". The empty set of a given
// space cannot be parsed from "{  }" alone (no space information);
// parse into an existing space with ParseSetIn instead.
func ParseSet(s string) (*Set, error) {
	tuples, err := parseTuples(s)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("isl: cannot infer the space of an empty set; use ParseSetIn")
	}
	space := NewSpace(tuples[0].name, len(tuples[0].coords))
	set := NewSet(space)
	for _, t := range tuples {
		if t.name != space.Name || len(t.coords) != space.Dim {
			return nil, fmt.Errorf("isl: mixed tuple spaces %s and %s[%d] in one set",
				space, t.name, len(t.coords))
		}
		set.Add(t.coords)
	}
	return set, nil
}

// ParseSetIn parses set notation into the given space, allowing empty
// sets.
func ParseSetIn(space Space, s string) (*Set, error) {
	tuples, err := parseTuples(s)
	if err != nil {
		return nil, err
	}
	set := NewSet(space)
	for _, t := range tuples {
		if t.name != space.Name || len(t.coords) != space.Dim {
			return nil, fmt.Errorf("isl: tuple %s[%d] does not belong to space %s",
				t.name, len(t.coords), space)
		}
		set.Add(t.coords)
	}
	return set, nil
}

// ParseMap parses the ISL-like extensional map notation produced by
// Map.String, e.g. "{ S[0] -> R[1]; S[1] -> R[2] }".
func ParseMap(s string) (*Map, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	parts := splitTop(inner)
	if len(parts) == 0 {
		return nil, fmt.Errorf("isl: cannot infer the spaces of an empty map; use ParseMapIn")
	}
	var m *Map
	for _, part := range parts {
		lhs, rhs, ok := strings.Cut(part, "->")
		if !ok {
			return nil, fmt.Errorf("isl: map element %q lacks '->'", strings.TrimSpace(part))
		}
		in, err := parseTuple(strings.TrimSpace(lhs))
		if err != nil {
			return nil, err
		}
		out, err := parseTuple(strings.TrimSpace(rhs))
		if err != nil {
			return nil, err
		}
		if m == nil {
			m = NewMap(NewSpace(in.name, len(in.coords)), NewSpace(out.name, len(out.coords)))
		}
		if in.name != m.in.Name || len(in.coords) != m.in.Dim ||
			out.name != m.out.Name || len(out.coords) != m.out.Dim {
			return nil, fmt.Errorf("isl: mixed tuple spaces in map element %q", strings.TrimSpace(part))
		}
		m.Add(in.coords, out.coords)
	}
	return m, nil
}

// ParseMapIn parses map notation into the given spaces, allowing empty
// maps.
func ParseMapIn(in, out Space, s string) (*Map, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	m := NewMap(in, out)
	for _, part := range splitTop(inner) {
		lhs, rhs, ok := strings.Cut(part, "->")
		if !ok {
			return nil, fmt.Errorf("isl: map element %q lacks '->'", strings.TrimSpace(part))
		}
		i, err := parseTuple(strings.TrimSpace(lhs))
		if err != nil {
			return nil, err
		}
		o, err := parseTuple(strings.TrimSpace(rhs))
		if err != nil {
			return nil, err
		}
		if i.name != in.Name || len(i.coords) != in.Dim || o.name != out.Name || len(o.coords) != out.Dim {
			return nil, fmt.Errorf("isl: map element %q does not match spaces %s -> %s",
				strings.TrimSpace(part), in, out)
		}
		m.Add(i.coords, o.coords)
	}
	return m, nil
}

type parsedTuple struct {
	name   string
	coords Vec
}

func stripBraces(s string) (string, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return "", fmt.Errorf("isl: notation must be enclosed in braces: %q", s)
	}
	return t[1 : len(t)-1], nil
}

// splitTop splits on ';' (no nesting to worry about in the
// extensional notation) and drops empty parts.
func splitTop(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if strings.TrimSpace(part) != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseTuples(s string) ([]parsedTuple, error) {
	inner, err := stripBraces(s)
	if err != nil {
		return nil, err
	}
	var out []parsedTuple
	for _, part := range splitTop(inner) {
		t, err := parseTuple(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// parseTuple parses "Name[a, b, -3]".
func parseTuple(s string) (parsedTuple, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return parsedTuple{}, fmt.Errorf("isl: malformed tuple %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return parsedTuple{}, fmt.Errorf("isl: tuple %q has no space name", s)
	}
	body := s[open+1 : len(s)-1]
	var coords Vec
	if strings.TrimSpace(body) != "" {
		for _, c := range strings.Split(body, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return parsedTuple{}, fmt.Errorf("isl: bad coordinate in tuple %q: %v", s, err)
			}
			coords = append(coords, v)
		}
	}
	return parsedTuple{name: name, coords: coords}, nil
}

// ParseParamSet parses the parametric set notation produced by
// ParamSet.String — symbolic parameter declarations, an iterator
// tuple, and an affine constraint conjunction:
//
//	[n] -> { S[i, j] : 0 <= i < n and j >= i }
//
// The parameter prefix and the constraint clause are both optional.
// Constraints may chain comparisons ISL-style ("0 <= i < n"); each
// parse error names the offending constraint.
func ParseParamSet(s string) (*ParamSet, error) {
	params, rest, err := parseParamPrefix(s)
	if err != nil {
		return nil, err
	}
	inner, err := stripBraces(rest)
	if err != nil {
		return nil, err
	}
	head, consSrc, hasCons := strings.Cut(inner, ":")
	name, iters, err := parseIterTuple(strings.TrimSpace(head))
	if err != nil {
		return nil, err
	}
	p := &ParamSet{Params: params, Name: name, Iters: iters}
	if hasCons {
		p.Cons, err = parseAffCons(consSrc, iters, params)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ParseParamMap parses the parametric map notation produced by
// ParamMap.String: an iterator tuple mapped to a tuple of affine
// output expressions, under an optional constraint conjunction:
//
//	[n] -> { S[i] -> R[i + 1, 2i] : 0 <= i < n }
func ParseParamMap(s string) (*ParamMap, error) {
	params, rest, err := parseParamPrefix(s)
	if err != nil {
		return nil, err
	}
	inner, err := stripBraces(rest)
	if err != nil {
		return nil, err
	}
	head, consSrc, hasCons := strings.Cut(inner, ":")
	lhs, rhs, ok := strings.Cut(head, "->")
	if !ok {
		return nil, fmt.Errorf("isl: parametric map element %q lacks '->'", strings.TrimSpace(head))
	}
	inName, iters, err := parseIterTuple(strings.TrimSpace(lhs))
	if err != nil {
		return nil, err
	}
	outName, outSrcs, err := splitTuple(strings.TrimSpace(rhs))
	if err != nil {
		return nil, err
	}
	m := &ParamMap{Params: params, InName: inName, Iters: iters, OutName: outName}
	for _, src := range outSrcs {
		e, err := parseAffExpr(src, iters, params)
		if err != nil {
			return nil, fmt.Errorf("isl: in output coordinate %q: %w", strings.TrimSpace(src), err)
		}
		m.Outs = append(m.Outs, e)
	}
	if hasCons {
		m.Cons, err = parseAffCons(consSrc, iters, params)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// parseParamPrefix strips an optional "[n, m] ->" parameter
// declaration, returning the declared names and the remainder.
func parseParamPrefix(s string) (params []string, rest string, err error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "[") {
		return nil, t, nil
	}
	close := strings.IndexByte(t, ']')
	if close < 0 {
		return nil, "", fmt.Errorf("isl: unterminated parameter declaration in %q", s)
	}
	for _, p := range strings.Split(t[1:close], ",") {
		name := strings.TrimSpace(p)
		if !isIdent(name) {
			return nil, "", fmt.Errorf("isl: bad parameter name %q", name)
		}
		params = append(params, name)
	}
	rest = strings.TrimSpace(t[close+1:])
	if !strings.HasPrefix(rest, "->") {
		return nil, "", fmt.Errorf("isl: parameter declaration %q must be followed by '->'", t[:close+1])
	}
	return params, strings.TrimSpace(rest[2:]), nil
}

// splitTuple splits "Name[a, b]" into the name and raw coordinate
// sources.
func splitTuple(s string) (name string, coords []string, err error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", nil, fmt.Errorf("isl: malformed tuple %q", s)
	}
	name = strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("isl: tuple %q has no space name", s)
	}
	body := s[open+1 : len(s)-1]
	if strings.TrimSpace(body) == "" {
		return name, nil, nil
	}
	return name, strings.Split(body, ","), nil
}

// parseIterTuple parses "S[i, j]" where every coordinate must be a
// fresh iterator name.
func parseIterTuple(s string) (name string, iters []string, err error) {
	name, coords, err := splitTuple(s)
	if err != nil {
		return "", nil, err
	}
	seen := map[string]bool{}
	for _, c := range coords {
		it := strings.TrimSpace(c)
		if !isIdent(it) {
			return "", nil, fmt.Errorf("isl: iterator %q in tuple %q is not an identifier", it, s)
		}
		if seen[it] {
			return "", nil, fmt.Errorf("isl: duplicate iterator %q in tuple %q", it, s)
		}
		seen[it] = true
		iters = append(iters, it)
	}
	return name, iters, nil
}

// parseAffCons parses an "and"-joined constraint conjunction; chained
// comparisons expand into one constraint per adjacent pair.
func parseAffCons(src string, iters, params []string) ([]AffCon, error) {
	var cons []AffCon
	for _, part := range strings.Split(src, " and ") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("isl: empty constraint in %q", strings.TrimSpace(src))
		}
		cs, err := parseAffCon(part, iters, params)
		if err != nil {
			return nil, fmt.Errorf("isl: in constraint %q: %w", part, err)
		}
		cons = append(cons, cs...)
	}
	return cons, nil
}

// parseAffCon parses one (possibly chained) comparison into >= 0 / = 0
// normal form.
func parseAffCon(src string, iters, params []string) ([]AffCon, error) {
	// Split on comparison operators, longest match first, keeping them.
	var exprs []string
	var ops []string
	rest := src
	for {
		idx, op := -1, ""
		for _, cand := range []string{"<=", ">=", "<", ">", "="} {
			if i := strings.Index(rest, cand); i >= 0 && (idx < 0 || i < idx || (i == idx && len(cand) > len(op))) {
				idx, op = i, cand
			}
		}
		if idx < 0 {
			exprs = append(exprs, rest)
			break
		}
		exprs = append(exprs, rest[:idx])
		ops = append(ops, op)
		rest = rest[idx+len(op):]
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("no comparison operator")
	}
	parsed := make([]AffExpr, len(exprs))
	for i, e := range exprs {
		var err error
		parsed[i], err = parseAffExpr(e, iters, params)
		if err != nil {
			return nil, err
		}
	}
	var cons []AffCon
	for i, op := range ops {
		a, b := parsed[i], parsed[i+1]
		switch op {
		case "<=":
			cons = append(cons, AffCon{Expr: subExpr(b, a, 0)})
		case "<":
			cons = append(cons, AffCon{Expr: subExpr(b, a, -1)})
		case ">=":
			cons = append(cons, AffCon{Expr: subExpr(a, b, 0)})
		case ">":
			cons = append(cons, AffCon{Expr: subExpr(a, b, -1)})
		case "=":
			cons = append(cons, AffCon{Expr: subExpr(a, b, 0), Eq: true})
		}
	}
	return cons, nil
}

// subExpr returns a - b + k.
func subExpr(a, b AffExpr, k int64) AffExpr {
	out := AffExpr{
		Coef:  make([]int64, len(a.Coef)),
		PCoef: make([]int64, len(a.PCoef)),
		Const: a.Const - b.Const + k,
	}
	for d := range out.Coef {
		out.Coef[d] = a.Coef[d] - b.Coef[d]
	}
	for p := range out.PCoef {
		out.PCoef[p] = a.PCoef[p] - b.PCoef[p]
	}
	return out
}

// parseAffExpr parses a sum of affine terms ("2i + 3n - 4", "-j",
// "0") over the given iterator and parameter names. Multiplication is
// implicit ("2i") or explicit ("2*i").
func parseAffExpr(src string, iters, params []string) (AffExpr, error) {
	e := AffExpr{Coef: make([]int64, len(iters)), PCoef: make([]int64, len(params))}
	s := strings.TrimSpace(src)
	if s == "" {
		return e, fmt.Errorf("empty expression")
	}
	i, n := 0, len(s)
	skip := func() {
		for i < n && s[i] == ' ' {
			i++
		}
	}
	first := true
	for {
		skip()
		if i >= n {
			if first {
				return e, fmt.Errorf("empty expression")
			}
			break
		}
		sign := int64(1)
		switch {
		case s[i] == '+':
			i++
		case s[i] == '-':
			sign = -1
			i++
		default:
			if !first {
				return e, fmt.Errorf("expected '+' or '-' before %q", s[i:])
			}
		}
		skip()
		coef, hasNum := int64(1), false
		start := i
		for i < n && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i > start {
			v, err := strconv.ParseInt(s[start:i], 10, 64)
			if err != nil {
				return e, fmt.Errorf("bad coefficient %q: %v", s[start:i], err)
			}
			coef, hasNum = v, true
		}
		skip()
		if i < n && s[i] == '*' {
			if !hasNum {
				return e, fmt.Errorf("'*' without a coefficient in %q", s)
			}
			i++
			skip()
		}
		start = i
		for i < n && isIdentByte(s[i]) {
			i++
		}
		ident := s[start:i]
		switch {
		case ident == "":
			if !hasNum {
				return e, fmt.Errorf("expected a term at %q", s[i:])
			}
			e.Const += sign * coef
		default:
			if d := indexOf(iters, ident); d >= 0 {
				e.Coef[d] += sign * coef
			} else if p := indexOf(params, ident); p >= 0 {
				e.PCoef[p] += sign * coef
			} else {
				return e, fmt.Errorf("unknown identifier %q (iterators %v, parameters %v)", ident, iters, params)
			}
		}
		first = false
	}
	return e, nil
}

func indexOf(names []string, s string) int {
	for i, n := range names {
		if n == s {
			return i
		}
	}
	return -1
}

func isIdent(s string) bool {
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	return true
}

func isIdentByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '_'
}

// Deltas returns the set of difference vectors { out − in : (in, out) ∈ m }
// for a map whose input and output spaces have equal dimension — ISL's
// deltas operation, the basis of dependence distance vectors. The
// result lives in an anonymous space named after the two tuple names.
func Deltas(m *Map) *Set {
	if m.in.Dim != m.out.Dim {
		panic("isl: Deltas requires equal input/output dimensions: " +
			m.in.String() + " vs " + m.out.String())
	}
	s := NewSet(NewSpace(m.in.Name+"-"+m.out.Name, m.in.Dim))
	m.Foreach(func(in, out Vec) bool {
		d := make(Vec, len(in))
		for k := range in {
			d[k] = out[k] - in[k]
		}
		s.Add(d)
		return true
	})
	return s
}
