package isl

import "sort"

// Merge-scan kernels of the columnar backend. An id column is a
// []uint32 of interned ids sorted ascending in the lexicographic order
// of their canonical vectors; vt is the owning table's snapshot (see
// internTable.snapshot), so vt[id] is the vector of id. Interning is
// canonical — equal vectors carry equal ids — which makes the order
// strict: comparisons first check id equality (one integer compare)
// and only then fall back to the vector walk.

// cmpIDs orders two ids of one table by their vectors.
func cmpIDs(vt []Vec, a, b uint32) int {
	if a == b {
		return 0
	}
	return vt[a].Cmp(vt[b])
}

// idsSortedByVec reports whether ids is strictly ascending (sorted and
// duplicate-free) under vt's order.
func idsSortedByVec(ids []uint32, vt []Vec) bool {
	for i := 1; i < len(ids); i++ {
		if cmpIDs(vt, ids[i-1], ids[i]) >= 0 {
			return false
		}
	}
	return true
}

// sortIDsByVec sorts ids in place by vector order. Duplicates (equal
// ids) end up adjacent.
func sortIDsByVec(ids []uint32, vt []Vec) {
	sort.Slice(ids, func(i, j int) bool { return cmpIDs(vt, ids[i], ids[j]) < 0 })
}

// appendDedup appends a sorted-with-possible-duplicates column to dst,
// dropping adjacent duplicates. Deduplication is scoped to the ids this
// call appends — dst's pre-existing tail is never compared, so a CSR
// builder may append run after run without runs swallowing each other's
// boundary elements.
func appendDedup(dst, src []uint32) []uint32 {
	return appendDedupFrom(dst, len(dst), src)
}

// appendDedupFrom is appendDedup comparing against dst's tail only
// beyond index base (the start of the current run).
func appendDedupFrom(dst []uint32, base int, src []uint32) []uint32 {
	for _, id := range src {
		if n := len(dst); n > base && dst[n-1] == id {
			continue
		}
		dst = append(dst, id)
	}
	return dst
}

// mergeUnionIDs appends the sorted union of columns a and b to dst.
// Inputs may contain adjacent duplicates; the appended portion never
// does. Like appendDedup, deduplication never reaches into dst's
// pre-existing tail.
func mergeUnionIDs(dst, a, b []uint32, vt []Vec) []uint32 {
	base := len(dst)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var id uint32
		switch c := cmpIDs(vt, a[i], b[j]); {
		case c < 0:
			id = a[i]
			i++
		case c > 0:
			id = b[j]
			j++
		default:
			id = a[i]
			i++
			j++
		}
		if n := len(dst); n > base && dst[n-1] == id {
			continue
		}
		dst = append(dst, id)
	}
	dst = appendDedupFrom(dst, base, a[i:])
	return appendDedupFrom(dst, base, b[j:])
}

// mergeIntersectIDs appends the sorted intersection of strictly-sorted
// columns a and b to dst.
func mergeIntersectIDs(dst, a, b []uint32, vt []Vec) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := cmpIDs(vt, a[i], b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// mergeSubtractIDs appends a \ b to dst for strictly-sorted columns.
func mergeSubtractIDs(dst, a, b []uint32, vt []Vec) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := cmpIDs(vt, a[i], b[j]); {
		case c < 0:
			dst = append(dst, a[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return append(dst, a[i:]...)
}

// subsetIDs reports whether strictly-sorted column a is contained in
// strictly-sorted column b.
func subsetIDs(a, b []uint32, vt []Vec) bool {
	j := 0
	for _, id := range a {
		for j < len(b) && cmpIDs(vt, b[j], id) < 0 {
			j++
		}
		if j >= len(b) || b[j] != id {
			return false
		}
		j++
	}
	return true
}

// searchIDs returns the first index in the strictly-sorted column ids
// (searching from lo) whose vector is ≥ v.
func searchIDs(ids []uint32, lo int, v Vec, vt []Vec) int {
	return lo + sort.Search(len(ids)-lo, func(k int) bool {
		return vt[ids[lo+k]].Cmp(v) >= 0
	})
}
