//go:build !islhashmap

package isl

import (
	"slices"
	"strconv"
)

// Map is a finite binary relation between an input tuple space and an
// output tuple space, the analogue of an ISL map restricted to bounded
// domains.
//
// Representation (the columnar backend): both tuples of every pair are
// canonicalized through the spaces' intern tables (see InternerFor)
// and the relation is held CSR-style as three columns — the input ids
// (ins, sorted lexicographically), the start offset of each input's
// run (offs), and the concatenated output runs (outs, each run sorted
// lexicographically). The relation algebra (Compose, Union, ...) runs
// as merge scans over the columns, so a whole operation costs a
// handful of allocations; vectors materialize only at observation
// points (Lookup, Pairs, String) from cached arenas of canonical
// interned data.
//
// Builds that append pairs in lexicographic order — the dominant
// pattern — extend the columns directly. An out-of-order Add appends a
// fresh run and flips a dirty bit; the next observation re-sorts the
// runs, merges duplicate inputs, and deduplicates outputs in one
// normalization pass.
type Map struct {
	in, out Space
	ti, to  *internTable
	// ins[i] is the i-th input id; its outputs are
	// outs[offs[i]:offs[i+1]] (the last run ends at len(outs)).
	ins  []uint32
	offs []int32
	outs []uint32
	// inVecs/outVecs are canonical-vector arenas aligned with ins/outs;
	// nil when stale. Replaced, never edited in place.
	inVecs  []Vec
	outVecs []Vec
	// lastIn/lastOut track the canonical vectors of the newest run's
	// input and newest output when known, so in-order appends never
	// re-read the tables.
	lastIn, lastOut Vec
	// dirty marks columns whose runs are unsorted, duplicated, or hold
	// duplicate outputs.
	dirty bool
}

// NewMap returns an empty relation from space in to space out.
func NewMap(in, out Space) *Map {
	return &Map{in: in, out: out, ti: tableFor(in), to: tableFor(out)}
}

// InSpace returns the input (domain) tuple space.
func (m *Map) InSpace() Space { return m.in }

// OutSpace returns the output (range) tuple space.
func (m *Map) OutSpace() Space { return m.out }

// runStart returns the offset of run i in outs.
func (m *Map) runStart(i int) int { return int(m.offs[i]) }

// runEnd returns the end offset of run i in outs.
func (m *Map) runEnd(i int) int {
	if i+1 < len(m.offs) {
		return int(m.offs[i+1])
	}
	return len(m.outs)
}

// runOuts returns run i's output column.
func (m *Map) runOuts(i int) []uint32 { return m.outs[m.runStart(i):m.runEnd(i)] }

// appendRun appends a new run for input id with the given sorted
// output column.
func (m *Map) appendRun(id uint32, outs []uint32) {
	m.ins = append(m.ins, id)
	m.offs = append(m.offs, int32(len(m.outs)))
	m.outs = append(m.outs, outs...)
}

// addPairIDs inserts the pair (iid, oid) given ids already canonical
// in m's tables; iv and ov are their canonical vectors when the caller
// has them (nil means unknown).
func (m *Map) addPairIDs(iid uint32, iv Vec, oid uint32, ov Vec) {
	n := len(m.ins)
	if n == 0 {
		m.appendRun(iid, nil)
		m.outs = append(m.outs, oid)
		m.inVecs, m.outVecs = nil, nil
		m.lastIn, m.lastOut, m.dirty = iv, ov, false
		return
	}
	if m.ins[n-1] == iid {
		// Same run as the previous add.
		last := m.outs[len(m.outs)-1]
		if last == oid {
			return
		}
		m.inVecs, m.outVecs = nil, nil
		if !m.dirty {
			if ov == nil {
				ov = m.to.vec(oid)
			}
			if m.lastOut == nil {
				m.lastOut = m.to.vec(last)
			}
			if ov.Cmp(m.lastOut) > 0 {
				m.lastOut = ov
			} else {
				m.dirty, m.lastIn, m.lastOut = true, nil, nil
			}
		}
		m.outs = append(m.outs, oid)
		return
	}
	// New run.
	m.inVecs, m.outVecs = nil, nil
	if !m.dirty {
		if iv == nil {
			iv = m.ti.vec(iid)
		}
		if m.lastIn == nil {
			m.lastIn = m.ti.vec(m.ins[n-1])
		}
		if iv.Cmp(m.lastIn) > 0 {
			m.lastIn, m.lastOut = iv, ov
		} else {
			// Out of order, or a revisit of an earlier input (equal
			// vectors intern to equal ids, so a smaller vector can
			// still be a duplicate input). Normalization merges runs.
			m.dirty, m.lastIn, m.lastOut = true, nil, nil
		}
	}
	m.appendRun(iid, nil)
	m.outs = append(m.outs, oid)
}

// Add inserts the pair (in, out) into the relation. The vectors are
// copied (interned); the caller keeps ownership of its slices.
func (m *Map) Add(in, out Vec) {
	m.in.checkVec(in)
	m.out.checkVec(out)
	iid, iv := m.ti.intern(in)
	oid, ov := m.to.intern(out)
	m.addPairIDs(iid, iv, oid, ov)
}

// normalize establishes the CSR invariant: runs sorted by input
// vector, one run per input, outputs of each run strictly sorted.
func (m *Map) normalize() {
	if !m.dirty {
		return
	}
	m.inVecs, m.outVecs = nil, nil
	vi, vo := m.ti.snapshot(), m.to.snapshot()
	n := len(m.ins)
	// Sort each run's outputs in place (runs own disjoint regions).
	for i := 0; i < n; i++ {
		seg := m.outs[m.runStart(i):m.runEnd(i)]
		if !idsSortedByVec(seg, vo) {
			sortIDsByVec(seg, vo)
		}
	}
	// Order the runs by input vector.
	sc := getScratch()
	perm := sc.perm[:0]
	for i := 0; i < n; i++ {
		perm = append(perm, uint32(i))
	}
	slices.SortFunc(perm, func(x, y uint32) int {
		return cmpIDs(vi, m.ins[x], m.ins[y])
	})
	// Rebuild, merging duplicate-input runs and deduplicating outputs.
	ins := make([]uint32, 0, n)
	offs := make([]int32, 0, n)
	outs := make([]uint32, 0, len(m.outs))
	for i := 0; i < n; {
		id := m.ins[perm[i]]
		j := i + 1
		for j < n && m.ins[perm[j]] == id {
			j++
		}
		ins = append(ins, id)
		offs = append(offs, int32(len(outs)))
		if j == i+1 {
			outs = appendDedup(outs, m.runOuts(int(perm[i])))
		} else {
			acc, tmp := sc.a[:0], sc.b[:0]
			acc = appendDedup(acc, m.runOuts(int(perm[i])))
			for k := i + 1; k < j; k++ {
				tmp = mergeUnionIDs(tmp[:0], acc, m.runOuts(int(perm[k])), vo)
				acc, tmp = tmp, acc
			}
			outs = append(outs, acc...)
			sc.a, sc.b = acc, tmp
		}
		i = j
	}
	sc.perm = perm
	sc.release()
	m.ins, m.offs, m.outs = ins, offs, outs
	m.dirty = false
	if len(ins) > 0 {
		m.lastIn = vi[ins[len(ins)-1]]
		m.lastOut = vo[outs[len(outs)-1]]
	} else {
		m.lastIn, m.lastOut = nil, nil
	}
}

// findRun returns the run index of iid, or -1. The map must be
// normalized; vi is the input table snapshot.
func (m *Map) findRun(iid uint32, vi []Vec) int {
	i := searchIDs(m.ins, 0, vi[iid], vi)
	if i < len(m.ins) && m.ins[i] == iid {
		return i
	}
	return -1
}

// Contains reports whether the pair (in, out) is in the relation.
func (m *Map) Contains(in, out Vec) bool {
	iid, ok := m.ti.lookup(in)
	if !ok {
		return false
	}
	oid, ok := m.to.lookup(out)
	if !ok {
		return false
	}
	m.normalize()
	i := m.findRun(iid, m.ti.snapshot())
	if i < 0 {
		return false
	}
	seg := m.runOuts(i)
	vo := m.to.snapshot()
	k := searchIDs(seg, 0, vo[oid], vo)
	return k < len(seg) && seg[k] == oid
}

// Card returns the number of pairs in the relation.
func (m *Map) Card() int {
	m.normalize()
	return len(m.outs)
}

// IsEmpty reports whether the relation has no pairs.
func (m *Map) IsEmpty() bool { return len(m.outs) == 0 }

// ensureVecs materializes the input and output vector arenas.
func (m *Map) ensureVecs() {
	m.normalize()
	if m.inVecs == nil && len(m.ins) > 0 {
		m.inVecs = m.ti.appendVecs(make([]Vec, 0, len(m.ins)), m.ins)
	}
	if m.outVecs == nil && len(m.outs) > 0 {
		m.outVecs = m.to.appendVecs(make([]Vec, 0, len(m.outs)), m.outs)
	}
}

// Lookup returns the outputs related to in, in lexicographic order.
//
// The returned slice and its vectors come straight from the interned
// store and are shared with every other relation of these spaces:
// they are strictly read-only, and modifying them corrupts the
// process-wide canonical tables. The first Lookup materializes the
// map's output arena; repeated lookups allocate nothing.
func (m *Map) Lookup(in Vec) []Vec {
	iid, ok := m.ti.lookup(in)
	if !ok {
		return nil
	}
	m.normalize()
	i := m.findRun(iid, m.ti.snapshot())
	if i < 0 {
		return nil
	}
	m.ensureVecs()
	return m.outVecs[m.runStart(i):m.runEnd(i)]
}

// Domain returns the set of input tuples that are related to at least
// one output tuple.
func (m *Map) Domain() *Set {
	m.normalize()
	s := NewSet(m.in)
	s.ids = slices.Clone(m.ins)
	s.last = m.lastIn
	return s
}

// Range returns the set of output tuples related to at least one input.
func (m *Map) Range() *Set {
	m.normalize()
	s := NewSet(m.out)
	if len(m.outs) == 0 {
		return s
	}
	ids := slices.Clone(m.outs)
	sortIDsByVec(ids, m.to.snapshot())
	s.ids = appendDedup(ids[:0], ids)
	return s
}

// Inverse returns the relation with all pairs reversed. The result is
// built as a direct CSR transpose: one pass ranks the distinct output
// ids, a second scatters each pair under its output run, so the result
// is already normalized.
func (m *Map) Inverse() *Map {
	m.normalize()
	r := NewMap(m.out, m.in)
	if len(m.outs) == 0 {
		return r
	}
	vo := m.to.snapshot()
	// Rank the distinct output ids in vector order.
	ranked := slices.Clone(m.outs)
	sortIDsByVec(ranked, vo)
	ranked = appendDedup(ranked[:0], ranked)
	counts := make([]int32, len(ranked)+1)
	rankOf := func(oid uint32) int {
		k := searchIDs(ranked, 0, vo[oid], vo)
		return k // ranked contains every oid of m
	}
	for _, oid := range m.outs {
		counts[rankOf(oid)+1]++
	}
	for k := 1; k < len(counts); k++ {
		counts[k] += counts[k-1]
	}
	outs := make([]uint32, len(m.outs))
	next := counts[:len(ranked)]
	for i := range m.ins {
		iid := m.ins[i]
		for _, oid := range m.runOuts(i) {
			k := rankOf(oid)
			outs[next[k]] = iid
			next[k]++
		}
	}
	// next[k] now equals the end offset of run k; reconstruct starts.
	offs := make([]int32, len(ranked))
	for k := range ranked {
		if k == 0 {
			offs[k] = 0
		} else {
			offs[k] = next[k-1]
		}
	}
	r.ins, r.offs, r.outs = ranked, offs, outs
	return r
}

// Clone returns an independent copy of m.
func (m *Map) Clone() *Map {
	return &Map{
		in: m.in, out: m.out, ti: m.ti, to: m.to,
		ins:     slices.Clone(m.ins),
		offs:    slices.Clone(m.offs),
		outs:    slices.Clone(m.outs),
		inVecs:  m.inVecs, // replaced, never edited in place
		outVecs: m.outVecs,
		lastIn:  m.lastIn,
		lastOut: m.lastOut,
		dirty:   m.dirty,
	}
}

// Union returns the relation holding every pair of m and n. Spaces must
// agree.
func (m *Map) Union(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Union(in)")
	m.out.checkSame(n.out, "Map.Union(out)")
	m.normalize()
	n.normalize()
	vi, vo := m.ti.snapshot(), m.to.snapshot()
	r := NewMap(m.in, m.out)
	r.ins = make([]uint32, 0, len(m.ins)+len(n.ins))
	r.offs = make([]int32, 0, len(m.ins)+len(n.ins))
	r.outs = make([]uint32, 0, len(m.outs)+len(n.outs))
	i, j := 0, 0
	for i < len(m.ins) && j < len(n.ins) {
		switch c := cmpIDs(vi, m.ins[i], n.ins[j]); {
		case c < 0:
			r.appendRun(m.ins[i], m.runOuts(i))
			i++
		case c > 0:
			r.appendRun(n.ins[j], n.runOuts(j))
			j++
		default:
			r.ins = append(r.ins, m.ins[i])
			r.offs = append(r.offs, int32(len(r.outs)))
			r.outs = mergeUnionIDs(r.outs, m.runOuts(i), n.runOuts(j), vo)
			i++
			j++
		}
	}
	for ; i < len(m.ins); i++ {
		r.appendRun(m.ins[i], m.runOuts(i))
	}
	for ; j < len(n.ins); j++ {
		r.appendRun(n.ins[j], n.runOuts(j))
	}
	return r
}

// Intersect returns the relation holding the pairs present in both m
// and n.
func (m *Map) Intersect(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Intersect(in)")
	m.out.checkSame(n.out, "Map.Intersect(out)")
	m.normalize()
	n.normalize()
	vi, vo := m.ti.snapshot(), m.to.snapshot()
	r := NewMap(m.in, m.out)
	i, j := 0, 0
	for i < len(m.ins) && j < len(n.ins) {
		switch c := cmpIDs(vi, m.ins[i], n.ins[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			mark := len(r.outs)
			r.outs = mergeIntersectIDs(r.outs, m.runOuts(i), n.runOuts(j), vo)
			if len(r.outs) > mark {
				r.ins = append(r.ins, m.ins[i])
				r.offs = append(r.offs, int32(mark))
			}
			i++
			j++
		}
	}
	return r
}

// Subtract returns the relation holding the pairs of m absent from n.
func (m *Map) Subtract(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Subtract(in)")
	m.out.checkSame(n.out, "Map.Subtract(out)")
	m.normalize()
	n.normalize()
	vi, vo := m.ti.snapshot(), m.to.snapshot()
	r := NewMap(m.in, m.out)
	i, j := 0, 0
	for i < len(m.ins) {
		for j < len(n.ins) && cmpIDs(vi, n.ins[j], m.ins[i]) < 0 {
			j++
		}
		if j < len(n.ins) && n.ins[j] == m.ins[i] {
			mark := len(r.outs)
			r.outs = mergeSubtractIDs(r.outs, m.runOuts(i), n.runOuts(j), vo)
			if len(r.outs) > mark {
				r.ins = append(r.ins, m.ins[i])
				r.offs = append(r.offs, int32(mark))
			}
		} else {
			r.appendRun(m.ins[i], m.runOuts(i))
		}
		i++
	}
	return r
}

// Equal reports whether m and n hold exactly the same pairs in the same
// spaces. On normalized columns this is a flat column comparison.
func (m *Map) Equal(n *Map) bool {
	if m.in != n.in || m.out != n.out {
		return false
	}
	m.normalize()
	n.normalize()
	return slices.Equal(m.ins, n.ins) &&
		slices.Equal(m.offs, n.offs) &&
		slices.Equal(m.outs, n.outs)
}

// Compose returns outer ∘ inner: the relation of pairs (x, z) such that
// some y satisfies (x, y) ∈ inner and (y, z) ∈ outer. This matches the
// paper's notation M1(M2) with M1 = outer and M2 = inner. Because both
// relations canonicalize the shared middle space through one intern
// table, composition is a merge over id columns — no vector is hashed
// or materialized.
func Compose(outer, inner *Map) *Map {
	inner.out.checkSame(outer.in, "Compose")
	inner.normalize()
	outer.normalize()
	vm, vo := outer.ti.snapshot(), outer.to.snapshot()
	r := NewMap(inner.in, outer.out)
	sc := getScratch()
	acc, tmp := sc.a[:0], sc.b[:0]
	for i := range inner.ins {
		acc = acc[:0]
		// The run's outputs and outer's inputs are both sorted over the
		// shared middle space: advance a single cursor.
		oi := 0
		for _, y := range inner.runOuts(i) {
			k := searchIDs(outer.ins, oi, vm[y], vm)
			if k < len(outer.ins) && outer.ins[k] == y {
				zs := outer.runOuts(k)
				if len(acc) == 0 {
					acc = append(acc, zs...)
				} else {
					tmp = mergeUnionIDs(tmp[:0], acc, zs, vo)
					acc, tmp = tmp, acc
				}
				oi = k + 1
			} else {
				oi = k
			}
		}
		if len(acc) > 0 {
			r.appendRun(inner.ins[i], acc)
		}
	}
	sc.a, sc.b = acc, tmp
	sc.release()
	return r
}

// ApplySet returns the image of s under m: { y : ∃x ∈ s, (x, y) ∈ m }.
func (m *Map) ApplySet(s *Set) *Set {
	m.in.checkSame(s.space, "Map.ApplySet")
	m.normalize()
	s.normalize()
	vi := m.ti.snapshot()
	r := NewSet(m.out)
	sc := getScratch()
	gather := sc.a[:0]
	i, j := 0, 0
	for i < len(m.ins) && j < len(s.ids) {
		switch c := cmpIDs(vi, m.ins[i], s.ids[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			gather = append(gather, m.runOuts(i)...)
			i++
			j++
		}
	}
	if len(gather) > 0 {
		sortIDsByVec(gather, m.to.snapshot())
		r.ids = appendDedup(make([]uint32, 0, len(gather)), gather)
	}
	sc.a = gather
	sc.release()
	return r
}

// IntersectDomain returns the pairs of m whose input lies in s.
func (m *Map) IntersectDomain(s *Set) *Map {
	m.in.checkSame(s.space, "Map.IntersectDomain")
	m.normalize()
	s.normalize()
	vi := m.ti.snapshot()
	r := NewMap(m.in, m.out)
	i, j := 0, 0
	for i < len(m.ins) && j < len(s.ids) {
		switch c := cmpIDs(vi, m.ins[i], s.ids[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			r.appendRun(m.ins[i], m.runOuts(i))
			i++
			j++
		}
	}
	return r
}

// IntersectRange returns the pairs of m whose output lies in s.
func (m *Map) IntersectRange(s *Set) *Map {
	m.out.checkSame(s.space, "Map.IntersectRange")
	m.normalize()
	s.normalize()
	vo := m.to.snapshot()
	r := NewMap(m.in, m.out)
	for i := range m.ins {
		mark := len(r.outs)
		r.outs = mergeIntersectIDs(r.outs, m.runOuts(i), s.ids, vo)
		if len(r.outs) > mark {
			r.ins = append(r.ins, m.ins[i])
			r.offs = append(r.offs, int32(mark))
		}
	}
	return r
}

// extremeOutID returns the id and canonical vector of iid's
// lexicographic maximum (sign > 0) or minimum (sign < 0) output, or
// false when iid has no outputs. On a normalized column this is an
// O(log) run lookup plus an O(1) endpoint read.
func (m *Map) extremeOutID(iid uint32, sign int) (uint32, Vec, bool) {
	m.normalize()
	i := m.findRun(iid, m.ti.snapshot())
	if i < 0 {
		return 0, nil, false
	}
	var oid uint32
	if sign > 0 {
		oid = m.outs[m.runEnd(i)-1]
	} else {
		oid = m.outs[m.runStart(i)]
	}
	return oid, m.to.vec(oid), true
}

// LexmaxPerIn returns the single-valued map relating each input of m to
// the lexicographically largest of its outputs. This is the paper's
// lexmax(M) operation; on normalized columns it is one endpoint read
// per run.
func (m *Map) LexmaxPerIn() *Map { return m.extremePerIn(1) }

// LexminPerIn returns the single-valued map relating each input of m to
// the lexicographically smallest of its outputs. This is the paper's
// lexmin(M) operation; on normalized columns it is one endpoint read
// per run.
func (m *Map) LexminPerIn() *Map { return m.extremePerIn(-1) }

func (m *Map) extremePerIn(sign int) *Map {
	m.normalize()
	r := NewMap(m.in, m.out)
	n := len(m.ins)
	if n == 0 {
		return r
	}
	r.ins = slices.Clone(m.ins)
	r.offs = make([]int32, n)
	r.outs = make([]uint32, n)
	for i := 0; i < n; i++ {
		r.offs[i] = int32(i)
		if sign > 0 {
			r.outs[i] = m.outs[m.runEnd(i)-1]
		} else {
			r.outs[i] = m.outs[m.runStart(i)]
		}
	}
	r.lastIn = m.lastIn
	return r
}

// IsSingleValued reports whether every input relates to at most one
// output.
func (m *Map) IsSingleValued() bool {
	m.normalize()
	return len(m.outs) == len(m.ins)
}

// IsInjective reports whether no two inputs relate to the same output.
func (m *Map) IsInjective() bool {
	m.normalize()
	if len(m.outs) < 2 {
		return true
	}
	sc := getScratch()
	ids := append(sc.a[:0], m.outs...)
	slices.Sort(ids) // numeric order suffices: only equality matters
	injective := true
	for k := 1; k < len(ids); k++ {
		if ids[k] == ids[k-1] {
			injective = false
			break
		}
	}
	sc.a = ids
	sc.release()
	return injective
}

// Freeze sorts every run, materializes all lazily computed caches, and
// returns m. A frozen map serves Lookup, Image, Pairs, Foreach, and
// ForeachEntry without further internal mutation, so it may be shared
// by concurrent readers; Add after Freeze is allowed but re-dirties
// the affected caches. Detection freezes the structures it shares
// across its worker pool (see docs/PERFORMANCE.md).
func (m *Map) Freeze() *Map {
	m.ensureVecs()
	return m
}

// ForeachEntry calls fn once per input in lexicographic order with the
// input's full output slice (lexicographically sorted). It is the
// allocation-free iteration primitive: both arguments are shared
// canonical data and must not be modified or retained past the call.
// On a frozen map it performs no internal mutation.
func (m *Map) ForeachEntry(fn func(in Vec, outs []Vec) bool) {
	m.ensureVecs()
	for i := range m.ins {
		if !fn(m.inVecs[i], m.outVecs[m.runStart(i):m.runEnd(i)]) {
			return
		}
	}
}

// Image returns the single output related to in. It panics unless
// exactly one output exists; use Lookup for the general case. On
// normalized single-valued maps Image performs no internal mutation,
// so it is safe for concurrent readers even without Freeze.
func (m *Map) Image(in Vec) Vec {
	iid, ok := m.ti.lookup(in)
	if ok {
		m.normalize()
		if i := m.findRun(iid, m.ti.snapshot()); i >= 0 {
			if start, end := m.runStart(i), m.runEnd(i); end-start == 1 {
				return m.to.vec(m.outs[start])
			} else {
				panic("isl: Map.Image: input " + in.String() + " has " +
					strconv.Itoa(end-start) + " outputs, want exactly 1")
			}
		}
	}
	panic("isl: Map.Image: input " + in.String() + " has 0 outputs, want exactly 1")
}
