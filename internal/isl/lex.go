package isl

// Lexicographic relation constructors, written against the
// backend-neutral internal surface (Set.view, Map.addPairIDs,
// Map.extremeOutID) so both set/map backends share them. All of them
// emit pairs in lexicographic input order with ascending outputs — the
// build pattern the columnar backend extends in place without ever
// re-sorting.

// Identity returns the identity map on s: { x -> x : x ∈ s }.
func Identity(s *Set) *Map {
	m := NewMap(s.space, s.space)
	ids, vecs := s.view()
	for i, id := range ids {
		m.addPairIDs(id, vecs[i], id, vecs[i])
	}
	return m
}

// ConstantMap returns the map relating every element of s to the single
// tuple out: { x -> out : x ∈ s }.
func ConstantMap(s *Set, outSpace Space, out Vec) *Map {
	m := NewMap(s.space, outSpace)
	outSpace.checkVec(out)
	oid, ov := m.to.intern(out)
	ids, vecs := s.view()
	for i, id := range ids {
		m.addPairIDs(id, vecs[i], oid, ov)
	}
	return m
}

// LexLE returns { (a, b) : a ∈ x, b ∈ y, a ≼ b } — each element of x
// related to every element of y lexicographically greater than or equal
// to it. Both sets must have the same dimension (the spaces may carry
// different names, e.g. when relating a domain to a subset of leaders).
func LexLE(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c <= 0 })
}

// LexGE returns { (a, b) : a ∈ x, b ∈ y, a ≽ b }.
func LexGE(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c >= 0 })
}

// LexLT returns { (a, b) : a ∈ x, b ∈ y, a ≺ b }.
func LexLT(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c < 0 })
}

// LexGT returns { (a, b) : a ∈ x, b ∈ y, a ≻ b }.
func LexGT(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c > 0 })
}

func lexRel(x, y *Set, keep func(cmp int) bool) *Map {
	if x.space.Dim != y.space.Dim {
		panic("isl: lex relation between spaces of different dimension: " +
			x.space.String() + " vs " + y.space.String())
	}
	m := NewMap(x.space, y.space)
	xids, xvecs := x.view()
	yids, yvecs := y.view()
	for i, a := range xvecs {
		for j, b := range yvecs {
			if keep(a.Cmp(b)) {
				m.addPairIDs(xids[i], a, yids[j], b)
			}
		}
	}
	return m
}

// NearestGE returns the single-valued map relating each element of x to
// the lexicographically smallest element of y that is ≽ it; elements of
// x beyond the maximum of y are absent from the result. It equals
// LexLE(x, y).LexminPerIn() but runs in O((|x|+|y|) log) time via a
// merged scan, which matters when both sets are large.
func NearestGE(x, y *Set) *Map {
	if x.space.Dim != y.space.Dim {
		panic("isl: NearestGE between spaces of different dimension: " +
			x.space.String() + " vs " + y.space.String())
	}
	m := NewMap(x.space, y.space)
	xids, xvecs := x.view()
	yids, yvecs := y.view()
	j := 0
	for i, a := range xvecs {
		for j < len(yvecs) && yvecs[j].Cmp(a) < 0 {
			j++
		}
		if j < len(yvecs) {
			m.addPairIDs(xids[i], a, yids[j], yvecs[j])
		}
	}
	return m
}

// PrefixLexmax returns, for each input j of m (scanned in lexicographic
// order over dom, which must be a superset ordering of m's domain), the
// lexicographic maximum of all outputs of inputs ≼ j. It equals
// Compose(m, LexGE(dom, dom)).LexmaxPerIn() restricted to dom, computed
// with a single running-maximum scan instead of a quadratic relation.
//
// Inputs of dom missing from m's domain still receive the running
// maximum (matching the composition through the lex-≤ relation on dom),
// except inputs preceding the first mapped input, which have no image.
func PrefixLexmax(m *Map, dom *Set) *Map {
	m.in.checkSame(dom.space, "PrefixLexmax")
	r := NewMap(m.in, m.out)
	var running Vec
	var runningID uint32
	ids, vecs := dom.view()
	for i, jid := range ids {
		if oid, ov, ok := m.extremeOutID(jid, 1); ok {
			if running == nil || ov.Cmp(running) > 0 {
				running, runningID = ov, oid
			}
		}
		if running != nil {
			r.addPairIDs(jid, vecs[i], runningID, running)
		}
	}
	return r
}
