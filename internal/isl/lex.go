package isl

// Identity returns the identity map on s: { x -> x : x ∈ s }.
func Identity(s *Set) *Map {
	m := NewMap(s.space, s.space)
	s.ensureSorted()
	for i, id := range s.sortedIDs {
		m.addIDs(id, id, s.sorted[i])
	}
	return m
}

// ConstantMap returns the map relating every element of s to the single
// tuple out: { x -> out : x ∈ s }.
func ConstantMap(s *Set, outSpace Space, out Vec) *Map {
	m := NewMap(s.space, outSpace)
	outSpace.checkVec(out)
	oid, ov := m.to.intern(out)
	for id := range s.elems {
		m.addIDs(id, oid, ov)
	}
	return m
}

// LexLE returns { (a, b) : a ∈ x, b ∈ y, a ≼ b } — each element of x
// related to every element of y lexicographically greater than or equal
// to it. Both sets must have the same dimension (the spaces may carry
// different names, e.g. when relating a domain to a subset of leaders).
func LexLE(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c <= 0 })
}

// LexGE returns { (a, b) : a ∈ x, b ∈ y, a ≽ b }.
func LexGE(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c >= 0 })
}

// LexLT returns { (a, b) : a ∈ x, b ∈ y, a ≺ b }.
func LexLT(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c < 0 })
}

// LexGT returns { (a, b) : a ∈ x, b ∈ y, a ≻ b }.
func LexGT(x, y *Set) *Map {
	return lexRel(x, y, func(c int) bool { return c > 0 })
}

func lexRel(x, y *Set, keep func(cmp int) bool) *Map {
	if x.space.Dim != y.space.Dim {
		panic("isl: lex relation between spaces of different dimension: " +
			x.space.String() + " vs " + y.space.String())
	}
	m := NewMap(x.space, y.space)
	x.ensureSorted()
	y.ensureSorted()
	for i, a := range x.sorted {
		for j, b := range y.sorted {
			if keep(a.Cmp(b)) {
				m.addIDs(x.sortedIDs[i], y.sortedIDs[j], b)
			}
		}
	}
	return m
}

// NearestGE returns the single-valued map relating each element of x to
// the lexicographically smallest element of y that is ≽ it; elements of
// x beyond the maximum of y are absent from the result. It equals
// LexLE(x, y).LexminPerIn() but runs in O((|x|+|y|) log) time via a
// merged scan, which matters when both sets are large.
func NearestGE(x, y *Set) *Map {
	if x.space.Dim != y.space.Dim {
		panic("isl: NearestGE between spaces of different dimension: " +
			x.space.String() + " vs " + y.space.String())
	}
	m := NewMap(x.space, y.space)
	x.ensureSorted()
	y.ensureSorted()
	j := 0
	for i, a := range x.sorted {
		for j < len(y.sorted) && y.sorted[j].Cmp(a) < 0 {
			j++
		}
		if j < len(y.sorted) {
			m.addIDs(x.sortedIDs[i], y.sortedIDs[j], y.sorted[j])
		}
	}
	return m
}

// PrefixLexmax returns, for each input j of m (scanned in lexicographic
// order over dom, which must be a superset ordering of m's domain), the
// lexicographic maximum of all outputs of inputs ≼ j. It equals
// Compose(m, LexGE(dom, dom)).LexmaxPerIn() restricted to dom, computed
// with a single running-maximum scan instead of a quadratic relation.
//
// Inputs of dom missing from m's domain still receive the running
// maximum (matching the composition through the lex-≤ relation on dom),
// except inputs preceding the first mapped input, which have no image.
func PrefixLexmax(m *Map, dom *Set) *Map {
	m.in.checkSame(dom.space, "PrefixLexmax")
	r := NewMap(m.in, m.out)
	var running Vec
	var runningID uint32
	for _, jid := range dom.elementIDs() {
		if e, ok := m.rel[jid]; ok {
			oid, ov := m.extremeOut(e, 1)
			if running == nil || ov.Cmp(running) > 0 {
				running, runningID = ov, oid
			}
		}
		if running != nil {
			r.addIDs(jid, runningID, running)
		}
	}
	return r
}
