package isl

import "strings"

// Backend-neutral iteration and rendering helpers, expressed purely in
// terms of Elements and ForeachEntry so both set/map backends (columnar
// and islhashmap) share one deterministic observable surface.

// Foreach calls fn for every element in lexicographic order, stopping
// early if fn returns false.
func (s *Set) Foreach(fn func(Vec) bool) {
	for _, v := range s.Elements() {
		if !fn(v) {
			return
		}
	}
}

// String renders the set in ISL-like notation, e.g.
// "{ S[0, 0]; S[0, 1] }", listing elements in lexicographic order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, v := range s.Elements() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.space.Name)
		b.WriteString(v.String())
	}
	b.WriteString(" }")
	return b.String()
}

// Pair is one (In, Out) element of a relation.
type Pair struct {
	In, Out Vec
}

// Pairs returns all pairs of m ordered lexicographically by input and
// then by output. The vectors are canonical (read-only).
func (m *Map) Pairs() []Pair {
	ps := make([]Pair, 0, m.Card())
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		for _, o := range outs {
			ps = append(ps, Pair{In: in, Out: o})
		}
		return true
	})
	return ps
}

// Foreach calls fn for every pair in deterministic order, stopping
// early if fn returns false.
func (m *Map) Foreach(fn func(in, out Vec) bool) {
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		for _, o := range outs {
			if !fn(in, o) {
				return false
			}
		}
		return true
	})
}

// String renders the relation in ISL-like notation, e.g.
// "{ S[0] -> R[0]; S[1] -> R[2] }" in deterministic order.
func (m *Map) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, p := range m.Pairs() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(m.in.Name)
		b.WriteString(p.In.String())
		b.WriteString(" -> ")
		b.WriteString(m.out.Name)
		b.WriteString(p.Out.String())
	}
	b.WriteString(" }")
	return b.String()
}
