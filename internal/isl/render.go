package isl

import (
	"strconv"
	"strings"
)

// Backend-neutral iteration and rendering helpers, expressed purely in
// terms of Elements and ForeachEntry so both set/map backends (columnar
// and islhashmap) share one deterministic observable surface.

// Foreach calls fn for every element in lexicographic order, stopping
// early if fn returns false.
func (s *Set) Foreach(fn func(Vec) bool) {
	for _, v := range s.Elements() {
		if !fn(v) {
			return
		}
	}
}

// String renders the set in ISL-like notation, e.g.
// "{ S[0, 0]; S[0, 1] }", listing elements in lexicographic order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, v := range s.Elements() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.space.Name)
		b.WriteString(v.String())
	}
	b.WriteString(" }")
	return b.String()
}

// Pair is one (In, Out) element of a relation.
type Pair struct {
	In, Out Vec
}

// Pairs returns all pairs of m ordered lexicographically by input and
// then by output. The vectors are canonical (read-only).
func (m *Map) Pairs() []Pair {
	ps := make([]Pair, 0, m.Card())
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		for _, o := range outs {
			ps = append(ps, Pair{In: in, Out: o})
		}
		return true
	})
	return ps
}

// Foreach calls fn for every pair in deterministic order, stopping
// early if fn returns false.
func (m *Map) Foreach(fn func(in, out Vec) bool) {
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		for _, o := range outs {
			if !fn(in, o) {
				return false
			}
		}
		return true
	})
}

// render writes the expression as a signed term sum ("2i + n - 1")
// over the given iterator and parameter names; the zero expression
// renders as "0".
func (e AffExpr) render(iters, params []string) string {
	var b strings.Builder
	writeTerm := func(coef int64, ident string) {
		if coef == 0 {
			return
		}
		switch {
		case b.Len() == 0 && coef < 0:
			b.WriteByte('-')
		case b.Len() > 0 && coef < 0:
			b.WriteString(" - ")
		case b.Len() > 0:
			b.WriteString(" + ")
		}
		abs := coef
		if abs < 0 {
			abs = -abs
		}
		if abs != 1 || ident == "" {
			b.WriteString(strconv.FormatInt(abs, 10))
		}
		b.WriteString(ident)
	}
	for d, c := range e.Coef {
		writeTerm(c, iters[d])
	}
	for p, c := range e.PCoef {
		writeTerm(c, params[p])
	}
	writeTerm(e.Const, "")
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// renderParamHead writes the shared "[params] -> { Name[iters]" prefix.
func renderParamHead(b *strings.Builder, params []string, name string, iters []string) {
	if len(params) > 0 {
		b.WriteString("[")
		b.WriteString(strings.Join(params, ", "))
		b.WriteString("] -> ")
	}
	b.WriteString("{ ")
	b.WriteString(name)
	b.WriteString("[")
	b.WriteString(strings.Join(iters, ", "))
	b.WriteString("]")
}

// renderCons writes the constraint clause in ">= 0" / "= 0" normal
// form; parsing it back reproduces the constraints exactly.
func renderCons(b *strings.Builder, cons []AffCon, iters, params []string) {
	if len(cons) == 0 {
		return
	}
	b.WriteString(" : ")
	for i, c := range cons {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(c.Expr.render(iters, params))
		if c.Eq {
			b.WriteString(" = 0")
		} else {
			b.WriteString(" >= 0")
		}
	}
}

// String renders the parametric set in the notation ParseParamSet
// accepts, with constraints in canonical ">= 0" form:
// "[n] -> { S[i] : i >= 0 and n - i - 1 >= 0 }".
func (p *ParamSet) String() string {
	var b strings.Builder
	renderParamHead(&b, p.Params, p.Name, p.Iters)
	renderCons(&b, p.Cons, p.Iters, p.Params)
	b.WriteString(" }")
	return b.String()
}

// String renders the parametric map in the notation ParseParamMap
// accepts: "[n] -> { S[i] -> R[i + 1] : i >= 0 and n - i - 1 >= 0 }".
func (m *ParamMap) String() string {
	var b strings.Builder
	renderParamHead(&b, m.Params, m.InName, m.Iters)
	b.WriteString(" -> ")
	b.WriteString(m.OutName)
	b.WriteString("[")
	for i, e := range m.Outs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.render(m.Iters, m.Params))
	}
	b.WriteString("]")
	renderCons(&b, m.Cons, m.Iters, m.Params)
	b.WriteString(" }")
	return b.String()
}

// String renders the relation in ISL-like notation, e.g.
// "{ S[0] -> R[0]; S[1] -> R[2] }" in deterministic order.
func (m *Map) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, p := range m.Pairs() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(m.in.Name)
		b.WriteString(p.In.String())
		b.WriteString(" -> ")
		b.WriteString(m.out.Name)
		b.WriteString(p.Out.String())
	}
	b.WriteString(" }")
	return b.String()
}
