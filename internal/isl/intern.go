package isl

import (
	"strconv"
	"sync"
)

// internTable canonicalizes the vectors of one tuple space into dense
// uint32 ids. Every Map and Set of a space shares the space's table
// (see InternerFor), so identical tuples always carry identical ids
// and the relation algebra runs on integer ids instead of re-hashing
// string-encoded vectors. Tables are append-only and guarded by an
// RWMutex: lookups take the read lock, first-time interning the write
// lock, so concurrent detection workers share one table safely.
type internTable struct {
	dim    int
	mu     sync.RWMutex
	byHash map[uint64][]uint32 // content hash -> candidate ids
	vecs   []Vec               // id -> canonical vector (a private copy)
}

// hashVec is FNV-1a over the coordinates; allocation-free.
func hashVec(v Vec) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range v {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// lookupLocked returns the id of v if already interned. Callers hold
// at least the read lock.
func (t *internTable) lookupLocked(h uint64, v Vec) (uint32, bool) {
	for _, id := range t.byHash[h] {
		if t.vecs[id].Eq(v) {
			return id, true
		}
	}
	return 0, false
}

// lookup returns the id of v without interning it.
func (t *internTable) lookup(v Vec) (uint32, bool) {
	h := hashVec(v)
	t.mu.RLock()
	id, ok := t.lookupLocked(h, v)
	t.mu.RUnlock()
	return id, ok
}

// intern returns the dense id of v together with its canonical vector,
// inserting a private copy on first sight.
func (t *internTable) intern(v Vec) (uint32, Vec) {
	h := hashVec(v)
	t.mu.RLock()
	if id, ok := t.lookupLocked(h, v); ok {
		cv := t.vecs[id]
		t.mu.RUnlock()
		return id, cv
	}
	t.mu.RUnlock()
	t.mu.Lock()
	if id, ok := t.lookupLocked(h, v); ok { // raced with another interner
		cv := t.vecs[id]
		t.mu.Unlock()
		return id, cv
	}
	id := uint32(len(t.vecs))
	cv := v.Clone()
	t.vecs = append(t.vecs, cv)
	t.byHash[h] = append(t.byHash[h], id)
	t.mu.Unlock()
	return id, cv
}

// snapshot returns the table's id → canonical-vector column under one
// read lock. The table is append-only: interning only ever writes at
// indexes at or beyond the snapshot's length, so every id issued
// before the call stays readable through the returned header; ids
// interned later are simply not visible. Relation algebra takes one
// snapshot per operation and then compares vectors with plain
// indexing, lock-free.
func (t *internTable) snapshot() []Vec {
	t.mu.RLock()
	v := t.vecs
	t.mu.RUnlock()
	return v
}

// vec returns the canonical vector of an id. The result is shared and
// must not be modified.
func (t *internTable) vec(id uint32) Vec {
	t.mu.RLock()
	v := t.vecs[id]
	t.mu.RUnlock()
	return v
}

// appendVecs appends the canonical vectors of ids to dst under a
// single read lock.
func (t *internTable) appendVecs(dst []Vec, ids []uint32) []Vec {
	t.mu.RLock()
	for _, id := range ids {
		dst = append(dst, t.vecs[id])
	}
	t.mu.RUnlock()
	return dst
}

// len returns the number of interned vectors.
func (t *internTable) len() int {
	t.mu.RLock()
	n := len(t.vecs)
	t.mu.RUnlock()
	return n
}

// registry maps each space to its intern table. Space values compare
// by (name, dim), so every Map/Set constructor of a space resolves to
// the same table, process-wide.
var (
	registryMu sync.RWMutex
	registry   = make(map[Space]*internTable)
)

func tableFor(sp Space) *internTable {
	registryMu.RLock()
	t, ok := registry[sp]
	registryMu.RUnlock()
	if ok {
		return t
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if t, ok := registry[sp]; ok {
		return t
	}
	t = &internTable{dim: sp.Dim, byHash: make(map[uint64][]uint32)}
	registry[sp] = t
	return t
}

// Interner exposes a space's intern table: the bijection between the
// tuples seen in the space so far and their dense uint32 ids. Callers
// use it to key auxiliary structures (e.g. leader→index maps) by tuple
// identity without re-encoding vectors. All methods are safe for
// concurrent use.
type Interner struct {
	space Space
	t     *internTable
}

// InternerFor returns the interner of sp. All Maps and Sets of sp
// share it.
func InternerFor(sp Space) *Interner {
	return &Interner{space: sp, t: tableFor(sp)}
}

// Space returns the tuple space this interner canonicalizes.
func (in *Interner) Space() Space { return in.space }

// ID returns the id of v, or false when v has never been interned in
// this space (it does not intern).
func (in *Interner) ID(v Vec) (uint32, bool) {
	if len(v) != in.space.Dim {
		return 0, false
	}
	return in.t.lookup(v)
}

// Intern returns the id of v, interning it on first sight. It panics
// if v has the wrong dimension.
func (in *Interner) Intern(v Vec) uint32 {
	in.space.checkVec(v)
	id, _ := in.t.intern(v)
	return id
}

// Vec returns the canonical vector of id. The result is shared and
// read-only. It panics on an id that was never issued.
func (in *Interner) Vec(id uint32) Vec {
	if int(id) >= in.t.len() {
		panic("isl: Interner.Vec: unknown id " + strconv.FormatUint(uint64(id), 10) +
			" in space " + in.space.String())
	}
	return in.t.vec(id)
}

// Len returns the number of distinct tuples interned in the space so
// far.
func (in *Interner) Len() int { return in.t.len() }
