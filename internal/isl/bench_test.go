package isl

import (
	"fmt"
	"testing"
)

func grid2D(n int) *Set {
	s := NewSet(NewSpace("S", 2))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.Add(NewVec(i, j))
		}
	}
	return s
}

func BenchmarkSetUnion(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := grid2D(n), grid2D(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.Union(y)
			}
		})
	}
}

func BenchmarkMapCompose(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dom := grid2D(n)
			f := NewMap(dom.Space(), NewSpace("M", 2))
			g := NewMap(NewSpace("M", 2), NewSpace("T", 2))
			dom.Foreach(func(v Vec) bool {
				f.Add(v, NewVec(v[0], 2*v[1]))
				g.Add(NewVec(v[0], 2*v[1]), v)
				return true
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Compose(g, f)
			}
		})
	}
}

func BenchmarkPrefixLexmax(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dom := grid2D(n)
			m := NewMap(dom.Space(), NewSpace("I", 2))
			dom.Foreach(func(v Vec) bool {
				m.Add(v, NewVec(v[1], v[0]))
				return true
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = PrefixLexmax(m, dom)
			}
		})
	}
}

func BenchmarkNearestGE(b *testing.B) {
	dom := grid2D(64)
	leaders := dom.Filter(func(v Vec) bool { return v[1]%4 == 0 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NearestGE(dom, leaders)
	}
}

func BenchmarkLexmaxPerIn(b *testing.B) {
	dom := grid2D(64)
	m := NewMap(dom.Space(), NewSpace("I", 2))
	dom.Foreach(func(v Vec) bool {
		m.Add(v, NewVec(v[0]/2, v[1]/2))
		m.Add(v, NewVec(v[1]/2, v[0]/2))
		return true
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LexmaxPerIn()
	}
}

func BenchmarkSetElementsSorted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := grid2D(32)
		_ = s.Elements()
	}
}
