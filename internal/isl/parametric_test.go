package isl

import (
	"strings"
	"testing"
)

func TestParamSetRoundTrip(t *testing.T) {
	for _, src := range []string{
		"[n] -> { S[i, j] : 0 <= i < n and i <= j <= i + 2 }",
		"[n, m] -> { S[i] : 0 <= 2i < n + m and i > -3 }",
		"{ S[i] : 0 <= i and i <= 7 }",
		"{ S[i, j] : i = j and 0 <= i < 3 }",
		"{ S[] }",
		"[n] -> { S[i] }",
	} {
		p, err := ParseParamSet(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		// The canonical rendering must parse back to the same structure.
		canon := p.String()
		p2, err := ParseParamSet(canon)
		if err != nil {
			t.Fatalf("%q: reparse of %q: %v", src, canon, err)
		}
		if got := p2.String(); got != canon {
			t.Errorf("%q: round trip %q -> %q", src, canon, got)
		}
	}
}

func TestParamSetInstantiate(t *testing.T) {
	p, err := ParseParamSet("[n] -> { S[i, j] : 0 <= i < n and i <= j <= i + 1 }")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Instantiate(map[string]int{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	want := SetOf(NewSpace("S", 2),
		NewVec(0, 0), NewVec(0, 1), NewVec(1, 1), NewVec(1, 2), NewVec(2, 2), NewVec(2, 3))
	if !got.Equal(want) {
		t.Fatalf("instantiated %v, want %v", got, want)
	}

	// Binding the parameter to an empty range gives the empty set, not
	// an error.
	empty, err := p.Instantiate(map[string]int{"n": 0})
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("n=0: %v, %v", empty, err)
	}

	// Bounds that only emerge from combined constraints (i + j <= 4)
	// still instantiate: FM projection finds them.
	tri, err := ParseParamSet("{ S[i, j] : i >= 0 and j >= 0 and i + j <= 2 }")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tri.Instantiate(nil)
	if err != nil || ts.Card() != 6 {
		t.Fatalf("triangle: %v, %v (want 6 points)", ts, err)
	}

	// Equality constraints collapse the domain to the diagonal.
	diag, err := ParseParamSet("{ S[i, j] : i = j and 0 <= i < 3 }")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := diag.Instantiate(nil)
	if err != nil || !ds.Equal(SetOf(NewSpace("S", 2), NewVec(0, 0), NewVec(1, 1), NewVec(2, 2))) {
		t.Fatalf("diagonal: %v, %v", ds, err)
	}
}

func TestParamMapRoundTripAndInstantiate(t *testing.T) {
	src := "[n] -> { S[i] -> R[2i + 1, i - n] : 0 <= i < n }"
	m, err := ParseParamMap(src)
	if err != nil {
		t.Fatal(err)
	}
	canon := m.String()
	m2, err := ParseParamMap(canon)
	if err != nil {
		t.Fatalf("reparse of %q: %v", canon, err)
	}
	if got := m2.String(); got != canon {
		t.Errorf("round trip %q -> %q", canon, got)
	}

	got, err := m.Instantiate(map[string]int{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	want := NewMap(NewSpace("S", 1), NewSpace("R", 2))
	want.Add(NewVec(0), NewVec(1, -3))
	want.Add(NewVec(1), NewVec(3, -2))
	want.Add(NewVec(2), NewVec(5, -1))
	if !got.Equal(want) {
		t.Fatalf("instantiated %v, want %v", got, want)
	}
}

func TestParamParseErrorsNameTheConstraint(t *testing.T) {
	cases := map[string][]string{
		"{ S[i] : i >= q }":          {`in constraint "i >= q"`, `unknown identifier "q"`},
		"{ S[i] : i and i >= 0 }":    {`in constraint "i"`, "no comparison operator"},
		"{ S[i] : 0 <= i < }":        {`in constraint "0 <= i <"`, "empty expression"},
		"{ S[i] : i ** 2 >= 0 }":     {`in constraint "i ** 2 >= 0"`},
		"[n] - { S[i] }":             {"must be followed by '->'"},
		"[2n] -> { S[i] }":           {`bad parameter name "2n"`},
		"{ S[i, i] }":                {`duplicate iterator "i"`},
		"{ S[4] }":                   {`iterator "4"`},
		"{ S[i] -> R[j] : i >= 0 }":  {`output coordinate "j"`, `unknown identifier "j"`},
		"[n] -> { S[i] -> R[n*] : }": {"output coordinate"},
	}
	for src, wants := range cases {
		_, errSet := ParseParamSet(src)
		_, errMap := ParseParamMap(src)
		err := errSet
		if strings.Contains(src, "->") && strings.Contains(src, "R[") {
			err = errMap
		}
		if err == nil {
			t.Errorf("%q: expected an error", src)
			continue
		}
		for _, want := range wants {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%q: error %q does not mention %q", src, err, want)
			}
		}
	}
}

func TestParamInstantiateErrors(t *testing.T) {
	p, err := ParseParamSet("[n] -> { S[i] : 0 <= i < n }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Instantiate(nil); err == nil || !strings.Contains(err.Error(), `parameter "n"`) {
		t.Errorf("missing binding: err = %v", err)
	}

	unbounded, err := ParseParamSet("{ S[i] : i >= 0 }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unbounded.Instantiate(nil); err == nil || !strings.Contains(err.Error(), `iterator "i" is unbounded`) {
		t.Errorf("unbounded: err = %v", err)
	}

	huge, err := ParseParamSet("[n] -> { S[i, j] : 0 <= i < n and 0 <= j < n }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := huge.Instantiate(map[string]int{"n": 1 << 12}); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("volume cap: err = %v", err)
	}
}
