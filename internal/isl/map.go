package isl

import (
	"strconv"
	"strings"
)

// Map is a finite binary relation between an input tuple space and an
// output tuple space, the analogue of an ISL map restricted to bounded
// domains.
type Map struct {
	in, out Space
	// rel maps the key of an input tuple to its entry.
	rel map[string]*mapEntry
}

type mapEntry struct {
	in     Vec
	outs   map[string]Vec
	sorted []Vec // lexicographically sorted outputs; nil when stale
}

// NewMap returns an empty relation from space in to space out.
func NewMap(in, out Space) *Map {
	return &Map{in: in, out: out, rel: make(map[string]*mapEntry)}
}

// InSpace returns the input (domain) tuple space.
func (m *Map) InSpace() Space { return m.in }

// OutSpace returns the output (range) tuple space.
func (m *Map) OutSpace() Space { return m.out }

// Add inserts the pair (in, out) into the relation.
func (m *Map) Add(in, out Vec) {
	m.in.checkVec(in)
	m.out.checkVec(out)
	k := in.key()
	e, ok := m.rel[k]
	if !ok {
		e = &mapEntry{in: in.Clone(), outs: make(map[string]Vec)}
		m.rel[k] = e
	}
	ko := out.key()
	if _, ok := e.outs[ko]; !ok {
		e.outs[ko] = out.Clone()
		e.sorted = nil
	}
}

// Contains reports whether the pair (in, out) is in the relation.
func (m *Map) Contains(in, out Vec) bool {
	e, ok := m.rel[in.key()]
	if !ok {
		return false
	}
	_, ok = e.outs[out.key()]
	return ok
}

// Card returns the number of pairs in the relation.
func (m *Map) Card() int {
	n := 0
	for _, e := range m.rel {
		n += len(e.outs)
	}
	return n
}

// IsEmpty reports whether the relation has no pairs.
func (m *Map) IsEmpty() bool { return len(m.rel) == 0 }

// Lookup returns the outputs related to in, in lexicographic order.
// The returned slice is shared; callers must not modify it.
func (m *Map) Lookup(in Vec) []Vec {
	e, ok := m.rel[in.key()]
	if !ok {
		return nil
	}
	return e.sortedOuts()
}

func (e *mapEntry) sortedOuts() []Vec {
	if e.sorted == nil {
		vs := make([]Vec, 0, len(e.outs))
		for _, v := range e.outs {
			vs = append(vs, v)
		}
		sortVecs(vs)
		e.sorted = vs
	}
	return e.sorted
}

// Domain returns the set of input tuples that are related to at least
// one output tuple.
func (m *Map) Domain() *Set {
	s := NewSet(m.in)
	for k, e := range m.rel {
		s.elems[k] = e.in
	}
	return s
}

// Range returns the set of output tuples related to at least one input.
func (m *Map) Range() *Set {
	s := NewSet(m.out)
	for _, e := range m.rel {
		for ko, v := range e.outs {
			s.elems[ko] = v
		}
	}
	return s
}

// Inverse returns the relation with all pairs reversed.
func (m *Map) Inverse() *Map {
	r := NewMap(m.out, m.in)
	for _, e := range m.rel {
		for _, o := range e.outs {
			r.Add(o, e.in)
		}
	}
	return r
}

// Clone returns an independent copy of m.
func (m *Map) Clone() *Map {
	r := NewMap(m.in, m.out)
	for _, e := range m.rel {
		for _, o := range e.outs {
			r.Add(e.in, o)
		}
	}
	return r
}

// Union returns the relation holding every pair of m and n. Spaces must
// agree.
func (m *Map) Union(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Union(in)")
	m.out.checkSame(n.out, "Map.Union(out)")
	r := m.Clone()
	for _, e := range n.rel {
		for _, o := range e.outs {
			r.Add(e.in, o)
		}
	}
	return r
}

// Intersect returns the relation holding the pairs present in both m
// and n.
func (m *Map) Intersect(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Intersect(in)")
	m.out.checkSame(n.out, "Map.Intersect(out)")
	r := NewMap(m.in, m.out)
	for k, e := range m.rel {
		ne, ok := n.rel[k]
		if !ok {
			continue
		}
		for ko, o := range e.outs {
			if _, ok := ne.outs[ko]; ok {
				r.Add(e.in, o)
			}
		}
	}
	return r
}

// Subtract returns the relation holding the pairs of m absent from n.
func (m *Map) Subtract(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Subtract(in)")
	m.out.checkSame(n.out, "Map.Subtract(out)")
	r := NewMap(m.in, m.out)
	for k, e := range m.rel {
		ne := n.rel[k]
		for ko, o := range e.outs {
			if ne != nil {
				if _, ok := ne.outs[ko]; ok {
					continue
				}
			}
			r.Add(e.in, o)
		}
	}
	return r
}

// Equal reports whether m and n hold exactly the same pairs in the same
// spaces.
func (m *Map) Equal(n *Map) bool {
	if m.in != n.in || m.out != n.out || len(m.rel) != len(n.rel) {
		return false
	}
	for k, e := range m.rel {
		ne, ok := n.rel[k]
		if !ok || len(e.outs) != len(ne.outs) {
			return false
		}
		for ko := range e.outs {
			if _, ok := ne.outs[ko]; !ok {
				return false
			}
		}
	}
	return true
}

// Compose returns outer ∘ inner: the relation of pairs (x, z) such that
// some y satisfies (x, y) ∈ inner and (y, z) ∈ outer. This matches the
// paper's notation M1(M2) with M1 = outer and M2 = inner.
func Compose(outer, inner *Map) *Map {
	inner.out.checkSame(outer.in, "Compose")
	r := NewMap(inner.in, outer.out)
	for _, e := range inner.rel {
		for _, y := range e.outs {
			oe, ok := outer.rel[y.key()]
			if !ok {
				continue
			}
			for _, z := range oe.outs {
				r.Add(e.in, z)
			}
		}
	}
	return r
}

// ApplySet returns the image of s under m: { y : ∃x ∈ s, (x, y) ∈ m }.
func (m *Map) ApplySet(s *Set) *Set {
	m.in.checkSame(s.space, "Map.ApplySet")
	r := NewSet(m.out)
	for k := range s.elems {
		e, ok := m.rel[k]
		if !ok {
			continue
		}
		for ko, o := range e.outs {
			r.elems[ko] = o
		}
	}
	return r
}

// IntersectDomain returns the pairs of m whose input lies in s.
func (m *Map) IntersectDomain(s *Set) *Map {
	m.in.checkSame(s.space, "Map.IntersectDomain")
	r := NewMap(m.in, m.out)
	for k, e := range m.rel {
		if _, ok := s.elems[k]; !ok {
			continue
		}
		for _, o := range e.outs {
			r.Add(e.in, o)
		}
	}
	return r
}

// IntersectRange returns the pairs of m whose output lies in s.
func (m *Map) IntersectRange(s *Set) *Map {
	m.out.checkSame(s.space, "Map.IntersectRange")
	r := NewMap(m.in, m.out)
	for _, e := range m.rel {
		for ko, o := range e.outs {
			if _, ok := s.elems[ko]; ok {
				r.Add(e.in, o)
			}
		}
	}
	return r
}

// LexmaxPerIn returns the single-valued map relating each input of m to
// the lexicographically largest of its outputs. This is the paper's
// lexmax(M) operation.
func (m *Map) LexmaxPerIn() *Map {
	r := NewMap(m.in, m.out)
	for _, e := range m.rel {
		var best Vec
		for _, o := range e.outs {
			if best == nil || o.Cmp(best) > 0 {
				best = o
			}
		}
		if best != nil {
			r.Add(e.in, best)
		}
	}
	return r
}

// LexminPerIn returns the single-valued map relating each input of m to
// the lexicographically smallest of its outputs. This is the paper's
// lexmin(M) operation.
func (m *Map) LexminPerIn() *Map {
	r := NewMap(m.in, m.out)
	for _, e := range m.rel {
		var best Vec
		for _, o := range e.outs {
			if best == nil || o.Cmp(best) < 0 {
				best = o
			}
		}
		if best != nil {
			r.Add(e.in, best)
		}
	}
	return r
}

// IsSingleValued reports whether every input relates to at most one
// output.
func (m *Map) IsSingleValued() bool {
	for _, e := range m.rel {
		if len(e.outs) > 1 {
			return false
		}
	}
	return true
}

// IsInjective reports whether no two inputs relate to the same output.
func (m *Map) IsInjective() bool {
	seen := make(map[string]string, len(m.rel))
	for k, e := range m.rel {
		for ko := range e.outs {
			if prev, ok := seen[ko]; ok && prev != k {
				return false
			}
			seen[ko] = k
		}
	}
	return true
}

// Pair is one (In, Out) element of a relation.
type Pair struct {
	In, Out Vec
}

// Pairs returns all pairs of m ordered lexicographically by input and
// then by output.
func (m *Map) Pairs() []Pair {
	ins := make([]Vec, 0, len(m.rel))
	for _, e := range m.rel {
		ins = append(ins, e.in)
	}
	sortVecs(ins)
	ps := make([]Pair, 0, m.Card())
	for _, in := range ins {
		e := m.rel[in.key()]
		for _, o := range e.sortedOuts() {
			ps = append(ps, Pair{In: in, Out: o})
		}
	}
	return ps
}

// Foreach calls fn for every pair in deterministic order, stopping
// early if fn returns false.
func (m *Map) Foreach(fn func(in, out Vec) bool) {
	for _, p := range m.Pairs() {
		if !fn(p.In, p.Out) {
			return
		}
	}
}

// Image returns the single output related to in. It panics unless
// exactly one output exists; use Lookup for the general case.
func (m *Map) Image(in Vec) Vec {
	outs := m.Lookup(in)
	if len(outs) != 1 {
		panic("isl: Map.Image: input " + in.String() + " has " +
			strconv.Itoa(len(outs)) + " outputs, want exactly 1")
	}
	return outs[0]
}

// String renders the relation in ISL-like notation, e.g.
// "{ S[0] -> R[0]; S[1] -> R[2] }" in deterministic order.
func (m *Map) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, p := range m.Pairs() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(m.in.Name)
		b.WriteString(p.In.String())
		b.WriteString(" -> ")
		b.WriteString(m.out.Name)
		b.WriteString(p.Out.String())
	}
	b.WriteString(" }")
	return b.String()
}
