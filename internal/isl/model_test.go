package isl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Model-based differential tests: random build orders and operation
// sequences are replayed against naive reference implementations
// (string-keyed Go maps), and every observable — String, Card, Lexmin,
// Lexmax, Lookup — must match. The file is untagged, so the same
// properties pin both the columnar backend (default build) and the
// hash-map backend (-tags islhashmap); `make crosscheck` runs both.

// setModel is the reference Set: a map keyed by rendered vectors.
type setModel map[string]Vec

func (sm setModel) add(v Vec) { sm[v.String()] = v.Clone() }
func (sm setModel) clone() setModel {
	c := make(setModel, len(sm))
	for k, v := range sm {
		c[k] = v
	}
	return c
}

// render produces the same ISL-like notation Set.String uses.
func (sm setModel) render(space Space) string {
	vs := make([]Vec, 0, len(sm))
	for _, v := range sm {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Cmp(vs[j]) < 0 })
	var b strings.Builder
	b.WriteString("{ ")
	for i, v := range vs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(space.Name)
		b.WriteString(v.String())
	}
	b.WriteString(" }")
	return b.String()
}

func randVec(r *rand.Rand, dim, extent int) Vec {
	v := make(Vec, dim)
	for i := range v {
		v[i] = r.Intn(extent)
	}
	return v
}

// TestModelSetOps drives random interleavings of out-of-order builds,
// observations, and algebra against the reference model.
func TestModelSetOps(t *testing.T) {
	for round := 0; round < 30; round++ {
		r := rand.New(rand.NewSource(int64(1000 + round)))
		dim := 1 + r.Intn(3)
		sp := NewSpace(fmt.Sprintf("MS%d", round), dim)
		extent := 2 + r.Intn(6)

		s, u := NewSet(sp), NewSet(sp)
		sm, um := setModel{}, setModel{}
		for step := 0; step < 60; step++ {
			v := randVec(r, dim, extent)
			switch r.Intn(5) {
			case 0, 1, 2: // grow s, sometimes observing mid-build
				s.Add(v)
				sm.add(v)
				if r.Intn(4) == 0 {
					_ = s.Card() // force normalization mid-build
				}
				if r.Intn(8) == 0 {
					_ = s.Elements()
				}
			case 3:
				u.Add(v)
				um.add(v)
			case 4: // re-add an existing element after observation
				if es := s.Elements(); len(es) > 0 {
					w := es[r.Intn(len(es))]
					s.Add(w)
					sm.add(w)
				}
			}
		}

		checkSet := func(what string, got *Set, want setModel) {
			t.Helper()
			if g, w := got.String(), want.render(sp); g != w {
				t.Fatalf("round %d: %s:\n got %s\nwant %s", round, what, g, w)
			}
			if got.Card() != len(want) {
				t.Fatalf("round %d: %s: card %d want %d", round, what, got.Card(), len(want))
			}
		}
		checkSet("s", s, sm)
		checkSet("u", u, um)

		union, inter, diff := sm.clone(), setModel{}, setModel{}
		for k, v := range um {
			union[k] = v
			if _, ok := sm[k]; ok {
				inter[k] = v
			}
		}
		for k, v := range sm {
			if _, ok := um[k]; !ok {
				diff[k] = v
			}
		}
		checkSet("union", s.Union(u), union)
		checkSet("intersect", s.Intersect(u), inter)
		checkSet("subtract", s.Subtract(u), diff)
		checkSet("clone", s.Clone(), sm)

		if got, want := s.IsSubset(s.Union(u)), true; got != want {
			t.Fatalf("round %d: s ⊄ s∪u", round)
		}
		if got, want := s.Equal(s.Union(s)), true; got != want {
			t.Fatalf("round %d: s != s∪s", round)
		}
		wantSub := len(diff) == 0
		if got := s.IsSubset(u); got != wantSub {
			t.Fatalf("round %d: IsSubset=%v want %v", round, got, wantSub)
		}
		for _, v := range sm {
			if !s.Contains(v) {
				t.Fatalf("round %d: s missing %v", round, v)
			}
		}
		if mn, ok := s.Lexmin(); ok != (len(sm) > 0) {
			t.Fatalf("round %d: Lexmin ok=%v", round, ok)
		} else if ok {
			mx, _ := s.Lexmax()
			for _, v := range sm {
				if v.Cmp(mn) < 0 || v.Cmp(mx) > 0 {
					t.Fatalf("round %d: %v outside [%v, %v]", round, v, mn, mx)
				}
			}
		}
	}
}

// mapModel is the reference Map: input key → output key → pair.
type mapModel map[string]map[string][2]Vec

func (mm mapModel) add(in, out Vec) {
	k := in.String()
	if mm[k] == nil {
		mm[k] = make(map[string][2]Vec)
	}
	mm[k][out.String()] = [2]Vec{in.Clone(), out.Clone()}
}

// render produces the same ISL-like notation Map.String uses.
func (mm mapModel) render(in, out Space) string {
	var ps [][2]Vec
	for _, outs := range mm {
		for _, p := range outs {
			ps = append(ps, p)
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i][0].Cmp(ps[j][0]); c != 0 {
			return c < 0
		}
		return ps[i][1].Cmp(ps[j][1]) < 0
	})
	var b strings.Builder
	b.WriteString("{ ")
	for i, p := range ps {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s%s -> %s%s", in.Name, p[0], out.Name, p[1])
	}
	b.WriteString(" }")
	return b.String()
}

// TestModelMapOps drives random map builds (in- and out-of-order, with
// duplicate pairs) and the full relation algebra against the model.
func TestModelMapOps(t *testing.T) {
	for round := 0; round < 30; round++ {
		r := rand.New(rand.NewSource(int64(2000 + round)))
		dim := 1 + r.Intn(2)
		spIn := NewSpace(fmt.Sprintf("MI%d", round), dim)
		spOut := NewSpace(fmt.Sprintf("MO%d", round), dim)
		extent := 2 + r.Intn(5)

		m, n := NewMap(spIn, spOut), NewMap(spIn, spOut)
		mm, nm := mapModel{}, mapModel{}
		for step := 0; step < 80; step++ {
			in, out := randVec(r, dim, extent), randVec(r, dim, extent)
			if r.Intn(3) == 0 {
				n.Add(in, out)
				nm.add(in, out)
				continue
			}
			m.Add(in, out)
			mm.add(in, out)
			if r.Intn(6) == 0 {
				_ = m.Card() // normalize mid-build
			}
			if r.Intn(10) == 0 {
				_ = m.String()
			}
		}

		checkMap := func(what string, got *Map, want mapModel) {
			t.Helper()
			if g, w := got.String(), want.render(got.InSpace(), got.OutSpace()); g != w {
				t.Fatalf("round %d: %s:\n got %s\nwant %s", round, what, g, w)
			}
		}
		checkMap("m", m, mm)
		checkMap("n", n, nm)

		union, inter, diff := mapModel{}, mapModel{}, mapModel{}
		inverse := mapModel{}
		for _, outs := range mm {
			for _, p := range outs {
				union.add(p[0], p[1])
				diffHit := false
				if no := nm[p[0].String()]; no != nil {
					if _, ok := no[p[1].String()]; ok {
						inter.add(p[0], p[1])
						diffHit = true
					}
				}
				if !diffHit {
					diff.add(p[0], p[1])
				}
				inverse.add(p[1], p[0])
			}
		}
		for _, outs := range nm {
			for _, p := range outs {
				union.add(p[0], p[1])
			}
		}
		checkMap("union", m.Union(n), union)
		checkMap("intersect", m.Intersect(n), inter)
		checkMap("subtract", m.Subtract(n), diff)
		checkMap("inverse", m.Inverse(), inverse)
		checkMap("clone", m.Clone(), mm)
		if !m.Inverse().Inverse().Equal(m) {
			t.Fatalf("round %d: inverse not involutive", round)
		}

		// Compose m after n⁻¹ : (out → in) then (in → out).
		comp := mapModel{}
		for _, outs := range nm {
			for _, p := range outs {
				if mo := mm[p[0].String()]; mo != nil {
					for _, q := range mo {
						comp.add(p[1], q[1])
					}
				}
			}
		}
		checkMap("compose", Compose(m, n.Inverse()), comp)

		// Lexmax/Lexmin per input against the model.
		for _, which := range []struct {
			name string
			got  *Map
			pick func(best, v Vec) bool
		}{
			{"lexmax", m.LexmaxPerIn(), func(best, v Vec) bool { return v.Cmp(best) > 0 }},
			{"lexmin", m.LexminPerIn(), func(best, v Vec) bool { return v.Cmp(best) < 0 }},
		} {
			want := mapModel{}
			for _, outs := range mm {
				var in, best Vec
				for _, p := range outs {
					if best == nil || which.pick(best, p[1]) {
						in, best = p[0], p[1]
					}
				}
				want.add(in, best)
			}
			checkMap(which.name, which.got, want)
			if !which.got.IsSingleValued() {
				t.Fatalf("round %d: %s not single-valued", round, which.name)
			}
		}

		// Domain, Range, ApplySet over a random subset of the domain.
		dm, rm := setModel{}, setModel{}
		for _, outs := range mm {
			for _, p := range outs {
				dm.add(p[0])
				rm.add(p[1])
			}
		}
		if g, w := m.Domain().String(), dm.render(spIn); g != w {
			t.Fatalf("round %d: domain:\n got %s\nwant %s", round, g, w)
		}
		if g, w := m.Range().String(), rm.render(spOut); g != w {
			t.Fatalf("round %d: range:\n got %s\nwant %s", round, g, w)
		}
		sub := NewSet(spIn)
		subm := setModel{}
		for _, outs := range mm {
			for _, p := range outs {
				if r.Intn(2) == 0 {
					sub.Add(p[0])
					subm.add(p[0])
				}
				break
			}
		}
		img := setModel{}
		for k := range subm {
			for _, p := range mm[k] {
				img.add(p[1])
			}
		}
		if g, w := m.ApplySet(sub).String(), img.render(spOut); g != w {
			t.Fatalf("round %d: apply:\n got %s\nwant %s", round, g, w)
		}
		restricted := mapModel{}
		for k := range subm {
			for _, p := range mm[k] {
				restricted.add(p[0], p[1])
			}
		}
		checkMap("intersectDomain", m.IntersectDomain(sub), restricted)

		// Lookup returns each input's sorted outputs.
		for _, outs := range mm {
			var in Vec
			var want []Vec
			for _, p := range outs {
				in = p[0]
				want = append(want, p[1])
			}
			sort.Slice(want, func(i, j int) bool { return want[i].Cmp(want[j]) < 0 })
			got := m.Lookup(in)
			if len(got) != len(want) {
				t.Fatalf("round %d: Lookup(%v): %d outputs, want %d", round, in, len(got), len(want))
			}
			for i := range want {
				if !got[i].Eq(want[i]) {
					t.Fatalf("round %d: Lookup(%v)[%d] = %v, want %v", round, in, i, got[i], want[i])
				}
			}
		}
	}
}
