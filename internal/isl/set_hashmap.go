//go:build islhashmap

package isl

import "sort"

// BackendName identifies the isl core representation this binary was
// built with; benchmarks and the cross-backend tests label their
// output with it. The islhashmap build tag selects this hash-map
// backend, kept as a differential-testing oracle for the default
// columnar backend (see docs/PERFORMANCE.md).
const BackendName = "hashmap"

// Set is a finite set of integer tuples in a single tuple space.
// The zero value is not usable; construct sets with NewSet or the
// operations on existing sets. Sets are immutable once built except
// through Add, which callers must not use after sharing a set.
//
// Elements are canonicalized through the space's intern table, so the
// set algebra runs on dense uint32 ids and Elements returns canonical
// (read-only) vectors from the interned store.
type Set struct {
	space Space
	t     *internTable
	elems map[uint32]struct{}
	// sortedIDs/sorted cache the elements in lexicographic order
	// (ids aligned with vectors); nil when stale.
	sortedIDs []uint32
	sorted    []Vec
}

// NewSet returns an empty set in the given space.
func NewSet(space Space) *Set {
	return &Set{space: space, t: tableFor(space), elems: make(map[uint32]struct{})}
}

// SetOf builds a set in the given space from the listed tuples.
func SetOf(space Space, vs ...Vec) *Set {
	s := NewSet(space)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Space returns the tuple space of s.
func (s *Set) Space() Space { return s.space }

// addID inserts an id already canonical in s's table.
func (s *Set) addID(id uint32) {
	if _, ok := s.elems[id]; !ok {
		s.elems[id] = struct{}{}
		s.sortedIDs, s.sorted = nil, nil
	}
}

// addIDVec inserts an id already canonical in s's table; the canonical
// vector hint cv is unused by this backend.
func (s *Set) addIDVec(id uint32, cv Vec) { s.addID(id) }

// view returns the id column and its aligned canonical vectors in
// lexicographic order. Both slices are internal and read-only.
func (s *Set) view() ([]uint32, []Vec) {
	s.ensureSorted()
	return s.sortedIDs, s.sorted
}

// Add inserts v into s. It panics if v has the wrong dimension. The
// vector is copied (interned); the caller keeps ownership of v.
func (s *Set) Add(v Vec) {
	s.space.checkVec(v)
	id, _ := s.t.intern(v)
	s.addID(id)
}

// Contains reports whether v is an element of s.
func (s *Set) Contains(v Vec) bool {
	if len(v) != s.space.Dim {
		return false
	}
	id, ok := s.t.lookup(v)
	if !ok {
		return false
	}
	_, ok = s.elems[id]
	return ok
}

// Card returns the number of elements in s.
func (s *Set) Card() int { return len(s.elems) }

// IsEmpty reports whether s has no elements.
func (s *Set) IsEmpty() bool { return len(s.elems) == 0 }

// ensureSorted materializes the lexicographic element ordering.
func (s *Set) ensureSorted() {
	if s.sorted != nil || len(s.elems) == 0 {
		return
	}
	ids := make([]uint32, 0, len(s.elems))
	for id := range s.elems {
		ids = append(ids, id)
	}
	vecs := s.t.appendVecs(make([]Vec, 0, len(ids)), ids)
	sort.Sort(&idVecSort{ids: ids, vecs: vecs})
	s.sortedIDs, s.sorted = ids, vecs
}

// Elements returns the elements of s in lexicographic order. The
// returned vectors are canonical interned data: the slice and its
// contents are strictly read-only. The ordering is computed once and
// cached.
func (s *Set) Elements() []Vec {
	s.ensureSorted()
	return s.sorted
}

// elementIDs returns the element ids aligned with Elements.
func (s *Set) elementIDs() []uint32 {
	s.ensureSorted()
	return s.sortedIDs
}

// Freeze materializes the element ordering cache and returns s. A
// frozen set serves Elements, Foreach, Lexmin/Lexmax, and the set
// algebra without internal mutation, so it may be shared by
// concurrent readers (until the next Add).
func (s *Set) Freeze() *Set {
	s.ensureSorted()
	return s
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	t := NewSet(s.space)
	for id := range s.elems {
		t.elems[id] = struct{}{}
	}
	return t
}

// Union returns s ∪ t. Both sets must live in the same space.
func (s *Set) Union(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Union")
	r := s.Clone()
	for id := range t.elems {
		r.elems[id] = struct{}{}
	}
	return r
}

// Intersect returns s ∩ t. Both sets must live in the same space.
func (s *Set) Intersect(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Intersect")
	r := NewSet(s.space)
	small, large := s, t
	if large.Card() < small.Card() {
		small, large = large, small
	}
	for id := range small.elems {
		if _, ok := large.elems[id]; ok {
			r.elems[id] = struct{}{}
		}
	}
	return r
}

// Subtract returns s \ t. Both sets must live in the same space.
func (s *Set) Subtract(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Subtract")
	r := NewSet(s.space)
	for id := range s.elems {
		if _, ok := t.elems[id]; !ok {
			r.elems[id] = struct{}{}
		}
	}
	return r
}

// Equal reports whether s and t contain exactly the same tuples in the
// same space.
func (s *Set) Equal(t *Set) bool {
	if s.space != t.space || len(s.elems) != len(t.elems) {
		return false
	}
	for id := range s.elems {
		if _, ok := t.elems[id]; !ok {
			return false
		}
	}
	return true
}

// IsSubset reports whether every element of s is in t.
func (s *Set) IsSubset(t *Set) bool {
	if s.space != t.space || len(s.elems) > len(t.elems) {
		return false
	}
	for id := range s.elems {
		if _, ok := t.elems[id]; !ok {
			return false
		}
	}
	return true
}

// Lexmin returns the lexicographically smallest element of s and true,
// or nil and false if s is empty.
func (s *Set) Lexmin() (Vec, bool) {
	es := s.Elements()
	if len(es) == 0 {
		return nil, false
	}
	return es[0], true
}

// Lexmax returns the lexicographically largest element of s and true,
// or nil and false if s is empty.
func (s *Set) Lexmax() (Vec, bool) {
	es := s.Elements()
	if len(es) == 0 {
		return nil, false
	}
	return es[len(es)-1], true
}

// Filter returns the subset of s whose elements satisfy pred.
func (s *Set) Filter(pred func(Vec) bool) *Set {
	r := NewSet(s.space)
	s.ensureSorted()
	for i, v := range s.sorted {
		if pred(v) {
			r.elems[s.sortedIDs[i]] = struct{}{}
		}
	}
	return r
}
