//go:build islhashmap

package isl

import (
	"sort"
	"strconv"
)

// Map is a finite binary relation between an input tuple space and an
// output tuple space, the analogue of an ISL map restricted to bounded
// domains.
//
// Representation: both tuples of every pair are canonicalized through
// the spaces' intern tables (see InternerFor), and the relation itself
// is a map from input id to a deduplicated slice of output ids. All of
// the relation algebra (Compose, Union, Inverse, ...) therefore runs
// on dense integer ids; vectors are materialized only at observation
// points (Lookup, Pairs, String), and those return canonical vectors
// straight from the interned store.
type Map struct {
	in, out Space
	ti, to  *internTable
	// rel maps an input id to its entry.
	rel map[uint32]*mapEntry
	// inOrder caches the input ids in lexicographic vector order; nil
	// when stale. Freeze populates it.
	inOrder []uint32
}

// mapEntry holds the outputs of one input id.
type mapEntry struct {
	// outs holds the deduplicated output ids. The sorted flag is the
	// entry's ordering invariant: when true, outs is ascending in the
	// lexicographic order of the underlying vectors; when false the
	// slice is in insertion order and is re-sorted lazily at the next
	// ordered observation.
	outs   []uint32
	sorted bool
	// last is the canonical vector of outs[len(outs)-1] when known;
	// it keeps in-lex-order appends (the common build pattern) from
	// ever invalidating the sorted flag. nil means unknown.
	last Vec
	// vecs caches the canonical output vectors in lexicographic order;
	// nil when stale. This is what Lookup returns.
	vecs []Vec
	// seen indexes membership once the entry grows past seenThreshold;
	// nil for small entries, which use a linear id scan.
	seen map[uint32]struct{}
}

// seenThreshold is the entry size beyond which membership switches
// from a linear uint32 scan to a hash set.
const seenThreshold = 32

func (e *mapEntry) has(id uint32) bool {
	if e.seen != nil {
		_, ok := e.seen[id]
		return ok
	}
	for _, o := range e.outs {
		if o == id {
			return true
		}
	}
	return false
}

// addID appends id to the entry if absent. ov, when non-nil, is the
// canonical vector of id and keeps the sorted invariant alive for
// in-order appends; with ov == nil a multi-element entry is marked
// unsorted and re-sorted lazily.
func (e *mapEntry) addID(id uint32, ov Vec) bool {
	if e.has(id) {
		return false
	}
	if len(e.outs) == 0 {
		e.sorted = true
	} else if e.sorted && ov != nil && e.last != nil && e.last.Cmp(ov) < 0 {
		// stays sorted
	} else {
		e.sorted = false
	}
	e.outs = append(e.outs, id)
	e.last = ov
	e.vecs = nil
	if e.seen != nil {
		e.seen[id] = struct{}{}
	} else if len(e.outs) > seenThreshold {
		e.seen = make(map[uint32]struct{}, 2*len(e.outs))
		for _, o := range e.outs {
			e.seen[o] = struct{}{}
		}
	}
	return true
}

// NewMap returns an empty relation from space in to space out.
func NewMap(in, out Space) *Map {
	return &Map{
		in: in, out: out,
		ti: tableFor(in), to: tableFor(out),
		rel: make(map[uint32]*mapEntry),
	}
}

// InSpace returns the input (domain) tuple space.
func (m *Map) InSpace() Space { return m.in }

// OutSpace returns the output (range) tuple space.
func (m *Map) OutSpace() Space { return m.out }

// entry returns the entry of iid, creating it if needed.
func (m *Map) entry(iid uint32) *mapEntry {
	e, ok := m.rel[iid]
	if !ok {
		e = &mapEntry{}
		m.rel[iid] = e
		m.inOrder = nil
	}
	return e
}

// addIDs inserts the pair (iid, oid) given ids already canonical in
// m's tables; ov is oid's canonical vector when the caller has it.
func (m *Map) addIDs(iid, oid uint32, ov Vec) {
	if m.entry(iid).addID(oid, ov) {
		m.inOrder = nil
	}
}

// addPairIDs inserts the pair (iid, oid) given ids already canonical
// in m's tables; the input-vector hint iv is unused by this backend.
func (m *Map) addPairIDs(iid uint32, iv Vec, oid uint32, ov Vec) {
	m.addIDs(iid, oid, ov)
}

// Add inserts the pair (in, out) into the relation. The vectors are
// copied (interned); the caller keeps ownership of its slices.
func (m *Map) Add(in, out Vec) {
	m.in.checkVec(in)
	m.out.checkVec(out)
	iid, _ := m.ti.intern(in)
	oid, ov := m.to.intern(out)
	m.addIDs(iid, oid, ov)
}

// Contains reports whether the pair (in, out) is in the relation.
func (m *Map) Contains(in, out Vec) bool {
	iid, ok := m.ti.lookup(in)
	if !ok {
		return false
	}
	e, ok := m.rel[iid]
	if !ok {
		return false
	}
	oid, ok := m.to.lookup(out)
	return ok && e.has(oid)
}

// Card returns the number of pairs in the relation.
func (m *Map) Card() int {
	n := 0
	for _, e := range m.rel {
		n += len(e.outs)
	}
	return n
}

// IsEmpty reports whether the relation has no pairs.
func (m *Map) IsEmpty() bool { return len(m.rel) == 0 }

// sortEntry establishes the entry's sorted invariant and output-vector
// cache.
func (m *Map) sortEntry(e *mapEntry) {
	if e.vecs == nil {
		e.vecs = m.to.appendVecs(make([]Vec, 0, len(e.outs)), e.outs)
	}
	if !e.sorted {
		idx := make([]int, len(e.outs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return e.vecs[idx[a]].Cmp(e.vecs[idx[b]]) < 0 })
		outs := make([]uint32, len(e.outs))
		vecs := make([]Vec, len(e.outs))
		for i, j := range idx {
			outs[i] = e.outs[j]
			vecs[i] = e.vecs[j]
		}
		e.outs, e.vecs = outs, vecs
		e.sorted = true
	}
	if n := len(e.vecs); n > 0 {
		e.last = e.vecs[n-1]
	}
}

// Lookup returns the outputs related to in, in lexicographic order.
//
// The returned slice and its vectors come straight from the interned
// store and are shared with every other relation of these spaces:
// they are strictly read-only, and modifying them corrupts the
// process-wide canonical tables. The first Lookup of an input sorts
// and caches the slice; repeated lookups allocate nothing.
func (m *Map) Lookup(in Vec) []Vec {
	iid, ok := m.ti.lookup(in)
	if !ok {
		return nil
	}
	e, ok := m.rel[iid]
	if !ok {
		return nil
	}
	if e.vecs == nil || !e.sorted {
		m.sortEntry(e)
	}
	return e.vecs
}

// Domain returns the set of input tuples that are related to at least
// one output tuple.
func (m *Map) Domain() *Set {
	s := NewSet(m.in)
	for iid := range m.rel {
		s.elems[iid] = struct{}{}
	}
	return s
}

// Range returns the set of output tuples related to at least one input.
func (m *Map) Range() *Set {
	s := NewSet(m.out)
	for _, e := range m.rel {
		for _, oid := range e.outs {
			s.elems[oid] = struct{}{}
		}
	}
	return s
}

// Inverse returns the relation with all pairs reversed.
func (m *Map) Inverse() *Map {
	r := NewMap(m.out, m.in)
	for iid, e := range m.rel {
		for _, oid := range e.outs {
			r.addIDs(oid, iid, nil)
		}
	}
	return r
}

// Clone returns an independent copy of m.
func (m *Map) Clone() *Map {
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		c := &mapEntry{
			outs:   append([]uint32(nil), e.outs...),
			sorted: e.sorted,
			last:   e.last,
			vecs:   e.vecs, // immutable once built; replaced, never edited
		}
		if e.seen != nil {
			c.seen = make(map[uint32]struct{}, len(e.seen))
			for o := range e.seen {
				c.seen[o] = struct{}{}
			}
		}
		r.rel[iid] = c
	}
	return r
}

// Union returns the relation holding every pair of m and n. Spaces must
// agree.
func (m *Map) Union(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Union(in)")
	m.out.checkSame(n.out, "Map.Union(out)")
	r := m.Clone()
	for iid, e := range n.rel {
		for _, oid := range e.outs {
			r.addIDs(iid, oid, nil)
		}
	}
	return r
}

// Intersect returns the relation holding the pairs present in both m
// and n.
func (m *Map) Intersect(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Intersect(in)")
	m.out.checkSame(n.out, "Map.Intersect(out)")
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		ne, ok := n.rel[iid]
		if !ok {
			continue
		}
		for _, oid := range e.outs {
			if ne.has(oid) {
				r.addIDs(iid, oid, nil)
			}
		}
	}
	return r
}

// Subtract returns the relation holding the pairs of m absent from n.
func (m *Map) Subtract(n *Map) *Map {
	m.in.checkSame(n.in, "Map.Subtract(in)")
	m.out.checkSame(n.out, "Map.Subtract(out)")
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		ne := n.rel[iid]
		for _, oid := range e.outs {
			if ne != nil && ne.has(oid) {
				continue
			}
			r.addIDs(iid, oid, nil)
		}
	}
	return r
}

// Equal reports whether m and n hold exactly the same pairs in the same
// spaces.
func (m *Map) Equal(n *Map) bool {
	if m.in != n.in || m.out != n.out || len(m.rel) != len(n.rel) {
		return false
	}
	for iid, e := range m.rel {
		ne, ok := n.rel[iid]
		if !ok || len(e.outs) != len(ne.outs) {
			return false
		}
		for _, oid := range e.outs {
			if !ne.has(oid) {
				return false
			}
		}
	}
	return true
}

// Compose returns outer ∘ inner: the relation of pairs (x, z) such that
// some y satisfies (x, y) ∈ inner and (y, z) ∈ outer. This matches the
// paper's notation M1(M2) with M1 = outer and M2 = inner. Because both
// relations canonicalize the shared middle space through one intern
// table, composition is pure id plumbing — no vector is hashed or
// materialized.
func Compose(outer, inner *Map) *Map {
	inner.out.checkSame(outer.in, "Compose")
	r := NewMap(inner.in, outer.out)
	for iid, e := range inner.rel {
		for _, yid := range e.outs {
			oe, ok := outer.rel[yid]
			if !ok {
				continue
			}
			for _, zid := range oe.outs {
				r.addIDs(iid, zid, nil)
			}
		}
	}
	return r
}

// ApplySet returns the image of s under m: { y : ∃x ∈ s, (x, y) ∈ m }.
func (m *Map) ApplySet(s *Set) *Set {
	m.in.checkSame(s.space, "Map.ApplySet")
	r := NewSet(m.out)
	for iid := range s.elems {
		e, ok := m.rel[iid]
		if !ok {
			continue
		}
		for _, oid := range e.outs {
			r.elems[oid] = struct{}{}
		}
	}
	return r
}

// IntersectDomain returns the pairs of m whose input lies in s.
func (m *Map) IntersectDomain(s *Set) *Map {
	m.in.checkSame(s.space, "Map.IntersectDomain")
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		if _, ok := s.elems[iid]; !ok {
			continue
		}
		for _, oid := range e.outs {
			r.addIDs(iid, oid, nil)
		}
	}
	return r
}

// IntersectRange returns the pairs of m whose output lies in s.
func (m *Map) IntersectRange(s *Set) *Map {
	m.out.checkSame(s.space, "Map.IntersectRange")
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		for _, oid := range e.outs {
			if _, ok := s.elems[oid]; ok {
				r.addIDs(iid, oid, nil)
			}
		}
	}
	return r
}

// extremeOut returns the id and canonical vector of the entry's
// lexicographic maximum (sign > 0) or minimum (sign < 0) output.
func (m *Map) extremeOut(e *mapEntry, sign int) (uint32, Vec) {
	if e.sorted && e.vecs != nil {
		if sign > 0 {
			return e.outs[len(e.outs)-1], e.vecs[len(e.vecs)-1]
		}
		return e.outs[0], e.vecs[0]
	}
	m.to.mu.RLock()
	best := e.outs[0]
	bv := m.to.vecs[best]
	for _, oid := range e.outs[1:] {
		if v := m.to.vecs[oid]; sign*v.Cmp(bv) > 0 {
			best, bv = oid, v
		}
	}
	m.to.mu.RUnlock()
	return best, bv
}

// extremeOutID returns the id and canonical vector of iid's
// lexicographic maximum (sign > 0) or minimum (sign < 0) output, or
// false when iid has no outputs.
func (m *Map) extremeOutID(iid uint32, sign int) (uint32, Vec, bool) {
	e, ok := m.rel[iid]
	if !ok || len(e.outs) == 0 {
		return 0, nil, false
	}
	oid, ov := m.extremeOut(e, sign)
	return oid, ov, true
}

// LexmaxPerIn returns the single-valued map relating each input of m to
// the lexicographically largest of its outputs. This is the paper's
// lexmax(M) operation.
func (m *Map) LexmaxPerIn() *Map {
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		oid, ov := m.extremeOut(e, 1)
		r.addIDs(iid, oid, ov)
	}
	return r
}

// LexminPerIn returns the single-valued map relating each input of m to
// the lexicographically smallest of its outputs. This is the paper's
// lexmin(M) operation.
func (m *Map) LexminPerIn() *Map {
	r := NewMap(m.in, m.out)
	for iid, e := range m.rel {
		oid, ov := m.extremeOut(e, -1)
		r.addIDs(iid, oid, ov)
	}
	return r
}

// IsSingleValued reports whether every input relates to at most one
// output.
func (m *Map) IsSingleValued() bool {
	for _, e := range m.rel {
		if len(e.outs) > 1 {
			return false
		}
	}
	return true
}

// IsInjective reports whether no two inputs relate to the same output.
func (m *Map) IsInjective() bool {
	seen := make(map[uint32]uint32, len(m.rel))
	for iid, e := range m.rel {
		for _, oid := range e.outs {
			if prev, ok := seen[oid]; ok && prev != iid {
				return false
			}
			seen[oid] = iid
		}
	}
	return true
}

// sortedIns returns the input ids in lexicographic vector order,
// caching the result until the next Add.
func (m *Map) sortedIns() []uint32 {
	if m.inOrder != nil {
		return m.inOrder
	}
	ids := make([]uint32, 0, len(m.rel))
	for iid := range m.rel {
		ids = append(ids, iid)
	}
	vecs := m.ti.appendVecs(make([]Vec, 0, len(ids)), ids)
	sort.Sort(&idVecSort{ids: ids, vecs: vecs})
	m.inOrder = ids
	return ids
}

// idVecSort sorts an id slice and its aligned vector slice by the
// vectors' lexicographic order.
type idVecSort struct {
	ids  []uint32
	vecs []Vec
}

func (s *idVecSort) Len() int           { return len(s.ids) }
func (s *idVecSort) Less(i, j int) bool { return s.vecs[i].Cmp(s.vecs[j]) < 0 }
func (s *idVecSort) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.vecs[i], s.vecs[j] = s.vecs[j], s.vecs[i]
}

// Freeze sorts every entry, materializes all lazily computed caches,
// and returns m. A frozen map serves Lookup, Image, Pairs, Foreach,
// and ForeachEntry without further internal mutation, so it may be
// shared by concurrent readers; Add after Freeze is allowed but
// re-dirties the affected caches. Detection freezes the structures it
// shares across its worker pool (see docs/PERFORMANCE.md).
func (m *Map) Freeze() *Map {
	for _, e := range m.rel {
		if e.vecs == nil || !e.sorted {
			m.sortEntry(e)
		}
	}
	m.sortedIns()
	return m
}

// ForeachEntry calls fn once per input in lexicographic order with the
// input's full output slice (lexicographically sorted). It is the
// allocation-free iteration primitive: both arguments are shared
// canonical data and must not be modified or retained past the call.
// On a frozen map it performs no internal mutation.
func (m *Map) ForeachEntry(fn func(in Vec, outs []Vec) bool) {
	ins := m.sortedIns()
	m.ti.mu.RLock()
	vecs := make([]Vec, len(ins))
	for i, iid := range ins {
		vecs[i] = m.ti.vecs[iid]
	}
	m.ti.mu.RUnlock()
	for i, iid := range ins {
		e := m.rel[iid]
		if e.vecs == nil || !e.sorted {
			m.sortEntry(e)
		}
		if !fn(vecs[i], e.vecs) {
			return
		}
	}
}

// Image returns the single output related to in. It panics unless
// exactly one output exists; use Lookup for the general case. On
// single-valued maps Image performs no internal mutation, so it is
// safe for concurrent readers even without Freeze.
func (m *Map) Image(in Vec) Vec {
	iid, ok := m.ti.lookup(in)
	if ok {
		if e, found := m.rel[iid]; found && len(e.outs) == 1 {
			return m.to.vec(e.outs[0])
		} else if found {
			panic("isl: Map.Image: input " + in.String() + " has " +
				strconv.Itoa(len(e.outs)) + " outputs, want exactly 1")
		}
	}
	panic("isl: Map.Image: input " + in.String() + " has 0 outputs, want exactly 1")
}
