// Package sym is the symbolic (constraint-form) core of the third isl
// backend: instead of enumerating integer points, sets and maps are
// held as affine constraint systems, strided-lattice products, and
// piecewise quasi-affine functions, so every operation the pipeline
// detector needs — lexmin/lexmax, nearest-≽ blocking, pointwise
// integration, composition, and counting — costs time proportional to
// the number of constraints and pieces, never to the domain volume.
//
// Three layers build on each other:
//
//	System   Fourier–Motzkin elimination over exact mpint rationals:
//	         feasibility, variable bounds, and bounded integer
//	         lexmin/lexmax (the small parametric ILP solver).
//	Lat1/Box/Region
//	         strided intervals, their products, and unions of
//	         products: exact intersection (CRT), counting
//	         (inclusion–exclusion), lexicographic enumeration and
//	         successor queries.
//	PW       piecewise quasi-affine maps with per-dimension separable
//	         guards and outputs: nearest-≽ blocking maps in closed
//	         form, pointwise lexicographic minimum, composition, and
//	         FM-backed piece pruning.
package sym

// Lat1 is a one-dimensional strided interval: the integers
// Lo, Lo+Stride, …, Hi. Invariants (established by MkLat1): Stride ≥ 1,
// Lo ≤ Hi, and (Hi-Lo) divisible by Stride. A Lat1 is never empty.
type Lat1 struct {
	Lo, Hi, Stride int64
}

// MkLat1 normalizes (lo, hi, stride) into a Lat1, aligning hi down to
// the lattice. ok is false when the range holds no point.
func MkLat1(lo, hi, stride int64) (Lat1, bool) {
	if stride < 1 {
		panic("sym: non-positive stride")
	}
	if hi < lo {
		return Lat1{}, false
	}
	hi = lo + (hi-lo)/stride*stride
	return Lat1{Lo: lo, Hi: hi, Stride: stride}, true
}

// Point1 is the singleton lattice {v}.
func Point1(v int64) Lat1 { return Lat1{Lo: v, Hi: v, Stride: 1} }

// Interval1 is the contiguous lattice [lo, hi].
func Interval1(lo, hi int64) (Lat1, bool) { return MkLat1(lo, hi, 1) }

// Count returns the number of points.
func (l Lat1) Count() int64 { return (l.Hi-l.Lo)/l.Stride + 1 }

// Contains reports membership of x.
func (l Lat1) Contains(x int64) bool {
	return x >= l.Lo && x <= l.Hi && (x-l.Lo)%l.Stride == 0
}

// CountLT returns the number of points strictly below x.
func (l Lat1) CountLT(x int64) int64 {
	if x <= l.Lo {
		return 0
	}
	if x > l.Hi {
		return l.Count()
	}
	// Points Lo + k·S with Lo + k·S < x  ⇔  k ≤ ceil((x-Lo)/S) - 1.
	return ceilDiv(x-l.Lo, l.Stride)
}

// NextGE returns the smallest point ≥ x, if any.
func (l Lat1) NextGE(x int64) (int64, bool) {
	if x <= l.Lo {
		return l.Lo, true
	}
	v := l.Lo + ceilDiv(x-l.Lo, l.Stride)*l.Stride
	if v > l.Hi {
		return 0, false
	}
	return v, true
}

// NextGT returns the smallest point strictly greater than x, if any.
func (l Lat1) NextGT(x int64) (int64, bool) { return l.NextGE(x + 1) }

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// egcd returns g = gcd(a, b) ≥ 0 and Bézout coefficients x, y with
// a·x + b·y = g.
func egcd(a, b int64) (g, x, y int64) {
	if b == 0 {
		if a < 0 {
			return -a, -1, 0
		}
		return a, 1, 0
	}
	g, x1, y1 := egcd(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// IntersectLat1 intersects two strided intervals exactly: the common
// congruence class is solved by the Chinese remainder theorem over the
// Bézout coefficients, then clipped to the overlapping range.
func IntersectLat1(a, b Lat1) (Lat1, bool) {
	lo := max64(a.Lo, b.Lo)
	hi := min64(a.Hi, b.Hi)
	if hi < lo {
		return Lat1{}, false
	}
	// Solve x ≡ a.Lo (mod a.S), x ≡ b.Lo (mod b.S).
	g, p, _ := egcd(a.Stride, b.Stride)
	diff := b.Lo - a.Lo
	if diff%g != 0 {
		return Lat1{}, false
	}
	lcm := a.Stride / g * b.Stride
	// x = a.Lo + a.S·t with t ≡ (diff/g)·p (mod b.S/g).
	bs := b.Stride / g
	t := mod64((diff/g)%bs*(p%bs), bs)
	x0 := a.Lo + a.Stride*t // one solution; all solutions are x0 + k·lcm
	// Smallest solution ≥ lo.
	first := x0 + ceilDiv(lo-x0, lcm)*lcm
	if first > hi {
		return Lat1{}, false
	}
	return MkLat1(first, hi, lcm)
}

func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Box is a product of per-dimension lattices — a strided box.
type Box []Lat1

// Count returns the number of points.
func (b Box) Count() int64 {
	n := int64(1)
	for _, l := range b {
		n *= l.Count()
	}
	return n
}

// Contains reports membership of v.
func (b Box) Contains(v []int64) bool {
	for d, l := range b {
		if !l.Contains(v[d]) {
			return false
		}
	}
	return true
}

// Lexmin returns the lexicographically smallest point.
func (b Box) Lexmin() []int64 {
	v := make([]int64, len(b))
	for d, l := range b {
		v[d] = l.Lo
	}
	return v
}

// Lexmax returns the lexicographically largest point.
func (b Box) Lexmax() []int64 {
	v := make([]int64, len(b))
	for d, l := range b {
		v[d] = l.Hi
	}
	return v
}

// IntersectBox intersects two boxes of equal dimension.
func IntersectBox(a, b Box) (Box, bool) {
	if len(a) != len(b) {
		panic("sym: box dimension mismatch")
	}
	out := make(Box, len(a))
	for d := range a {
		l, ok := IntersectLat1(a[d], b[d])
		if !ok {
			return nil, false
		}
		out[d] = l
	}
	return out, true
}

// CountLexLE returns the number of points lexicographically ≤ v. The
// standard mixed-radix prefix count: points that branch below v at
// dimension d (agreeing on all earlier dimensions) plus v itself when
// it is a member.
func (b Box) CountLexLE(v []int64) int64 {
	total := int64(0)
	suffix := make([]int64, len(b)+1)
	suffix[len(b)] = 1
	for d := len(b) - 1; d >= 0; d-- {
		suffix[d] = suffix[d+1] * b[d].Count()
	}
	for d := 0; d < len(b); d++ {
		total += b[d].CountLT(v[d]) * suffix[d+1]
		if !b[d].Contains(v[d]) {
			return total
		}
	}
	return total + 1 // every dimension matched: v itself
}

// NextGTLex returns the smallest member strictly lex-greater than v,
// if any. v need not be a member. The candidate sharing the longest
// valid prefix with v wins: scanning the bump position from the last
// dimension to the first, the first success is the successor.
func (b Box) NextGTLex(v []int64) ([]int64, bool) {
	for d := len(b) - 1; d >= 0; d-- {
		prefixOK := true
		for j := 0; j < d; j++ {
			if !b[j].Contains(v[j]) {
				prefixOK = false
				break
			}
		}
		if !prefixOK {
			continue
		}
		next, ok := b[d].NextGT(v[d])
		if !ok {
			continue
		}
		out := make([]int64, len(b))
		copy(out, v[:d])
		out[d] = next
		for j := d + 1; j < len(b); j++ {
			out[j] = b[j].Lo
		}
		return out, true
	}
	return nil, false
}

// Region is a union of equal-dimension boxes, not necessarily
// disjoint. The nil region is empty.
type Region []Box

// maxRegionBoxes bounds the inclusion–exclusion fan-out; the detector
// builds regions of at most a handful of boxes, so hitting this is a
// construction bug, not a data-dependent condition.
const maxRegionBoxes = 20

// Count returns the number of distinct points via inclusion–exclusion
// over all non-empty subset intersections.
func (r Region) Count() int64 {
	return r.ieCount(func(b Box) int64 { return b.Count() })
}

// CountLexLE returns the number of distinct points lex-≤ v.
func (r Region) CountLexLE(v []int64) int64 {
	return r.ieCount(func(b Box) int64 { return b.CountLexLE(v) })
}

func (r Region) ieCount(measure func(Box) int64) int64 {
	if len(r) > maxRegionBoxes {
		panic("sym: region has too many boxes for inclusion-exclusion")
	}
	total := int64(0)
	for mask := 1; mask < 1<<len(r); mask++ {
		var inter Box
		ok := true
		sign := int64(-1)
		for i := 0; i < len(r) && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			sign = -sign
			if inter == nil {
				inter = r[i]
			} else {
				inter, ok = IntersectBox(inter, r[i])
			}
		}
		if ok {
			total += sign * measure(inter)
		}
	}
	return total
}

// Contains reports membership of v in any box.
func (r Region) Contains(v []int64) bool {
	for _, b := range r {
		if b.Contains(v) {
			return true
		}
	}
	return false
}

// Lexmax returns the lexicographically largest point, if the region is
// non-empty.
func (r Region) Lexmax() ([]int64, bool) {
	var best []int64
	for _, b := range r {
		m := b.Lexmax()
		if best == nil || lexCmp(m, best) > 0 {
			best = m
		}
	}
	return best, best != nil
}

// Lexmin returns the lexicographically smallest point, if any.
func (r Region) Lexmin() ([]int64, bool) {
	var best []int64
	for _, b := range r {
		m := b.Lexmin()
		if best == nil || lexCmp(m, best) < 0 {
			best = m
		}
	}
	return best, best != nil
}

// NextGTLex returns the smallest point of the region strictly
// lex-greater than v, if any.
func (r Region) NextGTLex(v []int64) ([]int64, bool) {
	var best []int64
	for _, b := range r {
		if n, ok := b.NextGTLex(v); ok && (best == nil || lexCmp(n, best) < 0) {
			best = n
		}
	}
	return best, best != nil
}

// ForeachLex visits every distinct point in lexicographic order until
// fn returns false.
func (r Region) ForeachLex(fn func(v []int64) bool) {
	cur, ok := r.Lexmin()
	for ok {
		if !fn(cur) {
			return
		}
		cur, ok = r.NextGTLex(cur)
	}
}

func lexCmp(a, b []int64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
