package sym

// Bounded integer lexicographic optimization on top of the
// Fourier–Motzkin projector: variables are fixed one at a time in
// order, each scanned from the preferred end of its exact rational
// shadow bounds, with rational-infeasibility pruning between levels.
// Because FM projection is exact over the rationals, the scan interval
// always contains every integer solution; the backtracking handles the
// integer gaps an elimination can introduce (the classic dark-shadow
// cases). A step budget turns pathological instances into an honest
// "unknown" instead of a hang — the detector only calls this on small
// constraint systems where the budget is never reached.

// lexSearchBudget bounds the total number of candidate fixings one
// LexmaxBounded/LexminBounded call may try.
const lexSearchBudget = 1 << 16

// LexmaxBounded returns the lexicographically largest integer solution
// of the system. ok is false when the system has no integer solution,
// is unbounded in the search direction, or the search budget is
// exhausted.
func (s *System) LexmaxBounded() ([]int64, bool) { return s.lexSearch(+1) }

// LexminBounded returns the lexicographically smallest integer
// solution, with the same contract as LexmaxBounded.
func (s *System) LexminBounded() ([]int64, bool) { return s.lexSearch(-1) }

func (s *System) lexSearch(sign int) ([]int64, bool) {
	budget := lexSearchBudget
	out := make([]int64, s.N)
	if s.lexStep(0, sign, out, &budget) {
		return out, true
	}
	return nil, false
}

func (s *System) lexStep(dim, sign int, out []int64, budget *int) bool {
	if dim == s.N {
		// All variables fixed: every constraint is variable-free.
		for _, c := range s.Cons {
			if c.Eq && c.K.Sign() != 0 || !c.Eq && c.K.Sign() < 0 {
				return false
			}
		}
		return true
	}
	lo, hi, hasLo, hasHi, empty := s.Bounds(dim)
	if empty {
		return false
	}
	if !hasLo || !hasHi {
		return false // unbounded in some direction: refuse, don't guess
	}
	ilo, ihi := lo.Ceil(), hi.Floor()
	if ilo > ihi {
		return false
	}
	for v := pick(sign, ilo, ihi); v >= ilo && v <= ihi; v -= int64(sign) {
		*budget--
		if *budget < 0 {
			return false
		}
		sub := s.FixVar(dim, v)
		if sub.RationalEmpty() {
			continue
		}
		out[dim] = v
		if sub.lexStep(dim+1, sign, out, budget) {
			return true
		}
	}
	return false
}

func pick(sign int, lo, hi int64) int64 {
	if sign > 0 {
		return hi
	}
	return lo
}
