package sym

import (
	"reflect"
	"testing"
)

func TestUpForms(t *testing.T) {
	lats := []Lat1{{0, 12, 3}, {2, 17, 5}, {-4, 8, 2}, {5, 5, 1}}
	for _, l := range lats {
		up := upForm(l)
		ups := upStrictForm(l)
		for x := l.Lo - 7; x <= l.Hi+7; x++ {
			// upForm: smallest lattice point ≥ x on the unbounded
			// lattice (it runs past Hi; guards cut the overshoot),
			// saturating at Lo below.
			wantGE := l.Lo
			if x > l.Lo {
				wantGE = l.Lo + ceilDiv(x-l.Lo, l.Stride)*l.Stride
			}
			if got := up.Eval(x); got != wantGE {
				t.Fatalf("upForm(%+v)(%d) = %d, want %d", l, x, got, wantGE)
			}
			wantGT := l.Lo
			if x >= l.Lo {
				wantGT = l.Lo + ceilDiv(x+1-l.Lo, l.Stride)*l.Stride
			}
			if got := ups.Eval(x); got != wantGT {
				t.Fatalf("upStrictForm(%+v)(%d) = %d, want %d", l, x, got, wantGT)
			}
		}
	}
}

func TestMemberConds(t *testing.T) {
	lats := []Lat1{{0, 12, 3}, {2, 17, 5}, {0, 9, 1}}
	for _, l := range lats {
		conds := memberConds(l)
		for x := l.Lo - 5; x <= l.Hi+5; x++ {
			got := true
			for _, c := range conds {
				if !c.Eval(x) {
					got = false
					break
				}
			}
			if got != l.Contains(x) {
				t.Fatalf("memberConds(%+v) at %d = %v, want %v", l, x, got, l.Contains(x))
			}
		}
	}
}

// bruteNearestGE is the reference: lex-smallest leader ≽ x, else dommax.
func bruteNearestGE(leaders Box, dommax, x []int64) []int64 {
	for _, p := range enumBox(leaders) {
		if lexCmp(p, x) >= 0 {
			return p
		}
	}
	return dommax
}

func gridPoints(dims []Lat1, pad int64) [][]int64 {
	var out [][]int64
	var rec func(d int, cur []int64)
	rec = func(d int, cur []int64) {
		if d == len(dims) {
			out = append(out, append([]int64(nil), cur...))
			return
		}
		for v := dims[d].Lo - pad; v <= dims[d].Hi+pad; v++ {
			rec(d+1, append(cur, v))
		}
	}
	rec(0, nil)
	return out
}

func TestNearestGETotal(t *testing.T) {
	cases := []struct {
		leaders Box
		dommax  []int64
	}{
		{Box{{0, 12, 4}}, []int64{15}},
		{Box{{0, 6, 3}, {0, 4, 2}}, []int64{7, 5}},
		{Box{{0, 8, 4}, {1, 7, 3}, {0, 4, 2}}, []int64{9, 8, 5}},
	}
	for _, c := range cases {
		pw := NearestGETotal(c.leaders, c.dommax)
		for _, x := range gridPoints(c.leaders, 2) {
			want := bruteNearestGE(c.leaders, c.dommax, x)
			got, ok := pw.Eval(x)
			if !ok {
				t.Fatalf("NearestGETotal(%v) not total at %v", c.leaders, x)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("NearestGETotal(%v)(%v) = %v, want %v", c.leaders, x, got, want)
			}
		}
	}
}

func TestLexMinPW(t *testing.T) {
	a := NearestGETotal(Box{{0, 6, 3}, {0, 4, 2}}, []int64{7, 5})
	b := NearestGETotal(Box{{0, 6, 2}, {1, 5, 2}}, []int64{7, 5})
	m := LexMinPW(a, b)
	for _, x := range gridPoints(Box{{0, 7, 1}, {0, 5, 1}}, 1) {
		va, _ := a.Eval(x)
		vb, _ := b.Eval(x)
		want := va
		if lexCmp(vb, va) < 0 {
			want = vb
		}
		got, ok := m.Eval(x)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("LexMinPW at %v = %v,%v; want %v (a=%v b=%v)", x, got, ok, want, va, vb)
		}
	}
}

func TestComposePW(t *testing.T) {
	inner := NearestGETotal(Box{{0, 6, 2}, {0, 4, 2}}, []int64{7, 5})
	// outer: per-dimension affine shift into a second space.
	outer := SinglePW([]Form{AffineForm(3, 1), AffineForm(1, -2)})
	comp := ComposePW(outer, inner)
	for _, x := range gridPoints(Box{{0, 7, 1}, {0, 5, 1}}, 1) {
		mid, _ := inner.Eval(x)
		want, _ := outer.Eval(mid)
		got, ok := comp.Eval(x)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("ComposePW at %v = %v,%v; want %v", x, got, ok, want)
		}
	}

	// Composition where the outer map is itself piecewise: nearest-≽
	// after a floor-divide coarsening.
	coarse := SinglePW([]Form{RatForm(1, 0, 2), RatForm(1, 0, 2)})
	outer2 := NearestGETotal(Box{{0, 3, 1}, {0, 2, 1}}, []int64{3, 2})
	comp2 := ComposePW(outer2, coarse)
	for _, x := range gridPoints(Box{{0, 7, 1}, {0, 5, 1}}, 0) {
		mid, _ := coarse.Eval(x)
		want, _ := outer2.Eval(mid)
		got, ok := comp2.Eval(x)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("ComposePW(piecewise) at %v = %v,%v; want %v", x, got, ok, want)
		}
	}
}

func TestPrunePW(t *testing.T) {
	a := NearestGETotal(Box{{0, 6, 3}, {0, 4, 2}}, []int64{7, 5})
	b := NearestGETotal(Box{{0, 6, 2}, {1, 5, 2}}, []int64{7, 5})
	m := LexMinPW(a, b)
	dom := Box{{0, 7, 1}, {0, 5, 1}}
	pruned := PrunePW(m, dom)
	if len(pruned.Pieces) >= len(m.Pieces) {
		t.Fatalf("pruning dropped nothing: %d -> %d pieces", len(m.Pieces), len(pruned.Pieces))
	}
	for _, x := range gridPoints(dom, 0) {
		want, _ := m.Eval(x)
		got, ok := pruned.Eval(x)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("pruned map diverges at %v: %v,%v vs %v", x, got, ok, want)
		}
	}
}

func TestConstAndSinglePW(t *testing.T) {
	c := ConstPW([]int64{4, -1})
	got, ok := c.Eval([]int64{99, 99})
	if !ok || got[0] != 4 || got[1] != -1 {
		t.Fatalf("ConstPW eval = %v, %v", got, ok)
	}
	s := SinglePW([]Form{AffineForm(2, 0), IdentityForm()})
	got, ok = s.Eval([]int64{3, 7})
	if !ok || got[0] != 6 || got[1] != 7 {
		t.Fatalf("SinglePW eval = %v, %v", got, ok)
	}
}
