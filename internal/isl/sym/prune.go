package sym

import (
	"fmt"
	"strings"
)

// Piece pruning: product constructions (LexMinPW, ComposePW) generate
// a guard for every piece pair, most of which are mutually exclusive —
// a congruence from one blocking map contradicting an interval from
// another. Each dimension's guard is a univariate quasi-affine system,
// so it encodes into a linear constraint system over the input
// coordinate plus one auxiliary variable per floor stage
// (C·y ≤ A·x+B ≤ C·y+C−1), and Fourier–Motzkin decides rational
// feasibility exactly. Clamped stages are over-approximated (the
// clamp's one-sided inequalities only), and encodings past the size
// caps are skipped, so pruning is conservative: a dropped piece is
// provably unreachable, a kept piece may still be dead.

const (
	pruneMaxVars = 24
	pruneMaxCons = 160
)

// encRow is one constraint row being collected before the variable
// count is known.
type encRow struct {
	coefs map[int]int64
	k     int64
	eq    bool
}

type dimEncoder struct {
	nvars int
	rows  []encRow
	memo  map[string]int // stage-chain fingerprint → variable index
	ok    bool
}

func newDimEncoder() *dimEncoder {
	return &dimEncoder{nvars: 1, memo: map[string]int{}, ok: true} // var 0 = x
}

func (e *dimEncoder) newVar() int {
	v := e.nvars
	e.nvars++
	if e.nvars > pruneMaxVars {
		e.ok = false
	}
	return v
}

func (e *dimEncoder) addRow(coefs map[int]int64, k int64, eq bool) {
	e.rows = append(e.rows, encRow{coefs: coefs, k: k, eq: eq})
	if len(e.rows) > pruneMaxCons {
		e.ok = false
	}
}

// value is either a known constant or a variable of the encoding.
type encValue struct {
	isConst bool
	c       int64
	v       int
}

// encodeForm returns the value holding f(x), introducing floor and
// clamp variables as needed.
func (e *dimEncoder) encodeForm(f Form) encValue {
	cur := encValue{v: 0}
	var key strings.Builder
	for _, st := range f.Stages {
		fmt.Fprintf(&key, "%d,%d,%d,%v,%d,%v,%d;", st.A, st.B, st.C, st.ClampLo, st.Lo, st.ClampHi, st.Hi)
		if cur.isConst {
			cur = encValue{isConst: true, c: st.Eval(cur.c)}
			continue
		}
		if st.A == 0 {
			cur = encValue{isConst: true, c: st.Eval(0)}
			continue
		}
		if memoed, hit := e.memo[key.String()]; hit {
			cur = encValue{v: memoed}
			continue
		}
		in := cur.v
		y := e.newVar()
		if st.C == 1 {
			// y = A·x + B exactly.
			e.addRow(map[int]int64{y: 1, in: -st.A}, -st.B, true)
		} else {
			// C·y ≤ A·x + B ≤ C·y + C − 1.
			e.addRow(map[int]int64{in: st.A, y: -st.C}, st.B, false)
			e.addRow(map[int]int64{y: st.C, in: -st.A}, st.C-1-st.B, false)
		}
		out := y
		if st.ClampLo || st.ClampHi {
			z := e.newVar()
			if st.ClampLo {
				e.addRow(map[int]int64{z: 1, y: -1}, 0, false) // z ≥ y
				e.addRow(map[int]int64{z: 1}, -st.Lo, false)   // z ≥ Lo
			}
			if st.ClampHi {
				e.addRow(map[int]int64{y: 1, z: -1}, 0, false) // z ≤ y
				e.addRow(map[int]int64{z: -1}, st.Hi, false)   // z ≤ Hi
			}
			out = z
		}
		e.memo[key.String()] = out
		cur = encValue{v: out}
	}
	return cur
}

func (e *dimEncoder) encodeCond(c Cond) {
	coefs := map[int]int64{}
	k := c.K
	for _, t := range c.Terms {
		val := e.encodeForm(t.F)
		if val.isConst {
			k += t.Coef * val.c
		} else {
			coefs[val.v] += t.Coef
		}
	}
	e.addRow(coefs, k, c.Op == CondEQ)
}

// guardFeasible reports whether the per-dimension guard can hold for
// some rational x in [lo, hi]; errs on the side of true.
func guardFeasible(conds []Cond, lo, hi int64) bool {
	e := newDimEncoder()
	e.addRow(map[int]int64{0: 1}, -lo, false)
	e.addRow(map[int]int64{0: -1}, hi, false)
	for _, c := range conds {
		e.encodeCond(c)
		if !e.ok {
			return true // encoding too large: keep conservatively
		}
	}
	sys := NewSystem(e.nvars)
	for _, r := range e.rows {
		row := make([]int64, e.nvars)
		for v, co := range r.coefs {
			row[v] = co
		}
		if r.eq {
			sys.AddEQ(row, r.k)
		} else {
			sys.AddGE(row, r.k)
		}
	}
	return !sys.RationalEmpty()
}

// PrunePW drops pieces whose guard is rationally infeasible over the
// per-dimension ranges of dom. Conservative: every surviving piece is
// exactly as before, every dropped piece matched no domain point.
func PrunePW(p PW, dom Box) PW {
	if len(dom) != p.Dim {
		panic("sym: PrunePW dimension mismatch")
	}
	out := PW{Dim: p.Dim}
	for _, pc := range p.Pieces {
		live := true
		for d := 0; d < p.Dim && live; d++ {
			if len(pc.Guard[d]) == 0 {
				continue
			}
			live = guardFeasible(pc.Guard[d], dom[d].Lo, dom[d].Hi)
		}
		if live {
			out.Pieces = append(out.Pieces, pc)
		}
	}
	return out
}
