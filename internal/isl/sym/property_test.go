package sym_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/isl"
	"repro/internal/isl/sym"
)

// The property contract of the FM-based integer lex optimizer: on any
// bounded random affine system, LexmaxBounded/LexminBounded agree with
// brute-force enumeration AND with the compiled isl backend's
// LexmaxPerIn/LexminPerIn over the explicitly enumerated solution set.
// `make crosscheck` runs this under both isl backends and -race.

type randSystem struct {
	nvars    int
	lo, hi   []int64
	coefs    [][]int64
	ks       []int64
	eqs      []bool
	feasible [][]int64 // brute-force solutions in lex order
}

func genSystem(rng *rand.Rand) randSystem {
	rs := randSystem{nvars: 1 + rng.Intn(3)}
	rs.lo = make([]int64, rs.nvars)
	rs.hi = make([]int64, rs.nvars)
	for v := 0; v < rs.nvars; v++ {
		rs.lo[v] = int64(rng.Intn(9) - 4)
		rs.hi[v] = rs.lo[v] + int64(rng.Intn(6))
	}
	for c := rng.Intn(4); c > 0; c-- {
		row := make([]int64, rs.nvars)
		for v := range row {
			row[v] = int64(rng.Intn(7) - 3)
		}
		rs.coefs = append(rs.coefs, row)
		rs.ks = append(rs.ks, int64(rng.Intn(25)-12))
		rs.eqs = append(rs.eqs, rng.Intn(4) == 0)
	}
	var enum func(dim int, cur []int64)
	enum = func(dim int, cur []int64) {
		if dim == rs.nvars {
			for i, row := range rs.coefs {
				s := rs.ks[i]
				for v, c := range row {
					s += c * cur[v]
				}
				if rs.eqs[i] && s != 0 || !rs.eqs[i] && s < 0 {
					return
				}
			}
			rs.feasible = append(rs.feasible, append([]int64(nil), cur...))
			return
		}
		for x := rs.lo[dim]; x <= rs.hi[dim]; x++ {
			enum(dim+1, append(cur, x))
		}
	}
	enum(0, nil)
	return rs
}

func (rs randSystem) build() *sym.System {
	s := sym.NewSystem(rs.nvars)
	for v := 0; v < rs.nvars; v++ {
		s.AddBounds(v, rs.lo[v], rs.hi[v])
	}
	for i, row := range rs.coefs {
		if rs.eqs[i] {
			s.AddEQ(row, rs.ks[i])
		} else {
			s.AddGE(row, rs.ks[i])
		}
	}
	return s
}

func TestLexOptPropertyVsBackend(t *testing.T) {
	inSpace := isl.NewSpace("q", 1)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := genSystem(rng)
		sys := rs.build()

		gotMax, okMax := sys.LexmaxBounded()
		gotMin, okMin := sys.LexminBounded()
		if len(rs.feasible) == 0 {
			if okMax || okMin {
				t.Logf("seed %d: empty system solved: max=%v min=%v", seed, gotMax, gotMin)
				return false
			}
			return true
		}
		wantMin := rs.feasible[0]
		wantMax := rs.feasible[len(rs.feasible)-1]
		if !okMax || !okMin || !reflect.DeepEqual(gotMax, wantMax) || !reflect.DeepEqual(gotMin, wantMin) {
			t.Logf("seed %d: sym lexmax=%v,%v lexmin=%v,%v; want %v / %v",
				seed, gotMax, okMax, gotMin, okMin, wantMax, wantMin)
			return false
		}

		// Cross-check against the compiled isl backend: the enumerated
		// solution set, hung off one input, must agree on its per-input
		// lex extrema.
		m := isl.NewMap(inSpace, isl.NewSpace("x", rs.nvars))
		for _, p := range rs.feasible {
			out := make(isl.Vec, len(p))
			for i, x := range p {
				out[i] = int(x)
			}
			m.Add(isl.Vec{0}, out)
		}
		bMax := m.LexmaxPerIn().Lookup(isl.Vec{0})
		bMin := m.LexminPerIn().Lookup(isl.Vec{0})
		if len(bMax) != 1 || len(bMin) != 1 {
			t.Logf("seed %d: backend per-in extrema not single-valued", seed)
			return false
		}
		for i := range gotMax {
			if int64(bMax[0][i]) != gotMax[i] || int64(bMin[0][i]) != gotMin[i] {
				t.Logf("seed %d: backend max=%v min=%v, sym max=%v min=%v", seed, bMax[0], bMin[0], gotMax, gotMin)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
