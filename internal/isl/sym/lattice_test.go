package sym

import (
	"reflect"
	"testing"
)

func TestLat1Basics(t *testing.T) {
	l, ok := MkLat1(2, 17, 5) // {2, 7, 12, 17}
	if !ok {
		t.Fatal("non-empty lattice reported empty")
	}
	if l.Hi != 17 || l.Count() != 4 {
		t.Fatalf("lat = %+v count=%d", l, l.Count())
	}
	// MkLat1 aligns hi down.
	l2, _ := MkLat1(2, 16, 5)
	if l2.Hi != 12 || l2.Count() != 3 {
		t.Fatalf("aligned lat = %+v", l2)
	}
	if _, ok := MkLat1(5, 4, 1); ok {
		t.Fatal("empty range must report not-ok")
	}
	for x := int64(-1); x <= 20; x++ {
		want := x >= 2 && x <= 17 && (x-2)%5 == 0
		if l.Contains(x) != want {
			t.Fatalf("Contains(%d) = %v, want %v", x, l.Contains(x), want)
		}
	}
}

func TestLat1CountLTAndNext(t *testing.T) {
	l, _ := MkLat1(2, 17, 5) // {2, 7, 12, 17}
	wantLT := map[int64]int64{1: 0, 2: 0, 3: 1, 7: 1, 8: 2, 17: 3, 18: 4, 100: 4}
	for x, want := range wantLT {
		if got := l.CountLT(x); got != want {
			t.Fatalf("CountLT(%d) = %d, want %d", x, got, want)
		}
	}
	// Brute-force cross-check NextGE/NextGT.
	for x := int64(-3); x <= 20; x++ {
		var wantGE int64
		foundGE := false
		for v := l.Lo; v <= l.Hi; v += l.Stride {
			if v >= x {
				wantGE, foundGE = v, true
				break
			}
		}
		got, ok := l.NextGE(x)
		if ok != foundGE || (ok && got != wantGE) {
			t.Fatalf("NextGE(%d) = %d,%v; want %d,%v", x, got, ok, wantGE, foundGE)
		}
	}
}

func TestIntersectLat1(t *testing.T) {
	cases := []struct {
		a, b  Lat1
		want  Lat1
		empty bool
	}{
		{Lat1{0, 30, 6}, Lat1{0, 30, 10}, Lat1{0, 30, 30}, false},
		{Lat1{0, 20, 4}, Lat1{2, 20, 6}, Lat1{8, 20, 12}, false},
		{Lat1{0, 10, 2}, Lat1{1, 11, 2}, Lat1{}, true}, // disjoint parity
		{Lat1{0, 5, 1}, Lat1{3, 9, 1}, Lat1{3, 5, 1}, false},
		{Lat1{0, 5, 1}, Lat1{6, 9, 1}, Lat1{}, true}, // disjoint ranges
		{Lat1{3, 3, 1}, Lat1{0, 12, 3}, Lat1{3, 3, 3}, false},
	}
	for _, c := range cases {
		got, ok := IntersectLat1(c.a, c.b)
		if c.empty {
			if ok {
				t.Fatalf("IntersectLat1(%+v, %+v) = %+v; want empty", c.a, c.b, got)
			}
			continue
		}
		if !ok || got != c.want {
			t.Fatalf("IntersectLat1(%+v, %+v) = %+v,%v; want %+v", c.a, c.b, got, ok, c.want)
		}
		// Membership cross-check.
		for x := int64(-2); x <= 35; x++ {
			want := c.a.Contains(x) && c.b.Contains(x)
			if got.Contains(x) != want {
				t.Fatalf("intersection of %+v and %+v: Contains(%d) = %v, want %v",
					c.a, c.b, x, got.Contains(x), want)
			}
		}
	}
}

func enumBox(b Box) [][]int64 {
	var out [][]int64
	var rec func(d int, cur []int64)
	rec = func(d int, cur []int64) {
		if d == len(b) {
			out = append(out, append([]int64(nil), cur...))
			return
		}
		for v := b[d].Lo; v <= b[d].Hi; v += b[d].Stride {
			rec(d+1, append(cur, v))
		}
	}
	rec(0, nil)
	return out
}

func TestBoxLexOps(t *testing.T) {
	b := Box{{0, 9, 3}, {1, 7, 2}} // 4 × 4 points
	pts := enumBox(b)
	if int64(len(pts)) != b.Count() {
		t.Fatalf("Count = %d, want %d", b.Count(), len(pts))
	}
	if !reflect.DeepEqual(b.Lexmin(), pts[0]) || !reflect.DeepEqual(b.Lexmax(), pts[len(pts)-1]) {
		t.Fatalf("lexmin/lexmax = %v/%v; enum ends %v/%v", b.Lexmin(), b.Lexmax(), pts[0], pts[len(pts)-1])
	}
	// CountLexLE and NextGTLex against brute force on a grid including
	// non-members.
	for x0 := int64(-1); x0 <= 10; x0++ {
		for x1 := int64(-1); x1 <= 8; x1++ {
			v := []int64{x0, x1}
			var wantLE int64
			var wantNext []int64
			for _, p := range pts {
				if lexCmp(p, v) <= 0 {
					wantLE++
				} else if wantNext == nil {
					wantNext = p
				}
			}
			if got := b.CountLexLE(v); got != wantLE {
				t.Fatalf("CountLexLE(%v) = %d, want %d", v, got, wantLE)
			}
			got, ok := b.NextGTLex(v)
			if ok != (wantNext != nil) || (ok && !reflect.DeepEqual(got, wantNext)) {
				t.Fatalf("NextGTLex(%v) = %v,%v; want %v", v, got, ok, wantNext)
			}
		}
	}
}

func TestRegionCounting(t *testing.T) {
	// Overlapping boxes: evens 0..8 and all of 4..10.
	r := Region{
		Box{{0, 8, 2}},
		Box{{4, 10, 1}},
	}
	member := func(x int64) bool {
		return (x >= 0 && x <= 8 && x%2 == 0) || (x >= 4 && x <= 10)
	}
	var want int64
	for x := int64(0); x <= 10; x++ {
		if member(x) {
			want++
		}
	}
	if got := r.Count(); got != want {
		t.Fatalf("Region.Count = %d, want %d", got, want)
	}
	for v := int64(-1); v <= 12; v++ {
		var wantLE int64
		for x := int64(0); x <= 10; x++ {
			if member(x) && x <= v {
				wantLE++
			}
		}
		if got := r.CountLexLE([]int64{v}); got != wantLE {
			t.Fatalf("Region.CountLexLE(%d) = %d, want %d", v, got, wantLE)
		}
	}
}

func TestRegionForeachLex(t *testing.T) {
	r := Region{
		Box{{0, 6, 3}, {0, 2, 2}},
		Box{{2, 4, 2}, {1, 3, 1}},
	}
	seen := map[[2]int64]bool{}
	var visited [][]int64
	r.ForeachLex(func(v []int64) bool {
		visited = append(visited, append([]int64(nil), v...))
		seen[[2]int64{v[0], v[1]}] = true
		return true
	})
	// Strictly increasing, all members, count matches Count().
	for i := 1; i < len(visited); i++ {
		if lexCmp(visited[i-1], visited[i]) >= 0 {
			t.Fatalf("ForeachLex not strictly increasing at %d: %v then %v", i, visited[i-1], visited[i])
		}
	}
	for _, v := range visited {
		if !r.Contains(v) {
			t.Fatalf("visited non-member %v", v)
		}
	}
	if int64(len(visited)) != r.Count() {
		t.Fatalf("visited %d points, Count = %d", len(visited), r.Count())
	}
	// Exhaustive membership agreement.
	for x0 := int64(-1); x0 <= 7; x0++ {
		for x1 := int64(-1); x1 <= 4; x1++ {
			inBoxes := false
			for _, b := range r {
				if b.Contains([]int64{x0, x1}) {
					inBoxes = true
				}
			}
			if seen[[2]int64{x0, x1}] != inBoxes {
				t.Fatalf("enumeration disagrees with membership at (%d,%d)", x0, x1)
			}
		}
	}
}
