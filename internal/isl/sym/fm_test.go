package sym

import (
	"testing"
)

func TestSystemEmptySet(t *testing.T) {
	// x ≥ 3 and x ≤ 2 is empty.
	s := NewSystem(1)
	s.AddGE([]int64{1}, -3)
	s.AddGE([]int64{-1}, 2)
	if !s.RationalEmpty() {
		t.Fatal("x>=3 and x<=2 should be rationally empty")
	}
	if _, ok := s.LexmaxBounded(); ok {
		t.Fatal("empty system must have no lexmax")
	}
	if _, ok := s.LexminBounded(); ok {
		t.Fatal("empty system must have no lexmin")
	}
}

func TestSystemContradictoryEqualities(t *testing.T) {
	// x + y = 1, x + y = 2.
	s := NewSystem(2)
	s.AddEQ([]int64{1, 1}, -1)
	s.AddEQ([]int64{1, 1}, -2)
	if !s.RationalEmpty() {
		t.Fatal("inconsistent equalities should be empty")
	}
}

func TestSystemEqualitySubstitution(t *testing.T) {
	// x = 2y, 0 ≤ y ≤ 5, x ≤ 7 → max (x, y) = (6, 3).
	s := NewSystem(2)
	s.AddEQ([]int64{1, -2}, 0)
	s.AddBounds(1, 0, 5)
	s.AddGE([]int64{-1, 0}, 7)
	v, ok := s.LexmaxBounded()
	if !ok || v[0] != 6 || v[1] != 3 {
		t.Fatalf("lexmax = %v, %v; want [6 3]", v, ok)
	}
	mn, ok := s.LexminBounded()
	if !ok || mn[0] != 0 || mn[1] != 0 {
		t.Fatalf("lexmin = %v, %v; want [0 0]", mn, ok)
	}
}

func TestSystemRedundantConstraints(t *testing.T) {
	// Many restatements of 0 ≤ x ≤ 10 plus scaled duplicates.
	s := NewSystem(1)
	for i := 0; i < 6; i++ {
		s.AddBounds(0, 0, 10)
		s.AddGE([]int64{3}, 0)    // 3x ≥ 0
		s.AddGE([]int64{-7}, 70)  // 7x ≤ 70
		s.AddGE([]int64{1}, 5)    // x ≥ -5, slack
		s.AddGE([]int64{-1}, 100) // x ≤ 100, slack
	}
	v, ok := s.LexmaxBounded()
	if !ok || v[0] != 10 {
		t.Fatalf("lexmax = %v, %v; want [10]", v, ok)
	}
	v, ok = s.LexminBounded()
	if !ok || v[0] != 0 {
		t.Fatalf("lexmin = %v, %v; want [0]", v, ok)
	}
}

func TestSystemIntegerGap(t *testing.T) {
	// 2x = 2y + 1 has rational but no integer solutions; bounded box so
	// the search can prove it.
	s := NewSystem(2)
	s.AddEQ([]int64{2, -2}, -1)
	s.AddBounds(0, 0, 20)
	s.AddBounds(1, 0, 20)
	if s.RationalEmpty() {
		t.Fatal("2x-2y=1 is rationally feasible")
	}
	if _, ok := s.LexmaxBounded(); ok {
		t.Fatal("2x-2y=1 has no integer solution")
	}
}

func TestSystemUnboundedRefused(t *testing.T) {
	// x ≥ 0 alone is unbounded above: lexmax must refuse, not guess.
	s := NewSystem(1)
	s.AddGE([]int64{1}, 0)
	if _, ok := s.LexmaxBounded(); ok {
		t.Fatal("unbounded lexmax must report not-ok")
	}
	// But lexmin is also refused by design (Bounds requires both sides).
	if _, ok := s.LexminBounded(); ok {
		t.Fatal("half-bounded systems are refused wholesale")
	}
}

func TestSystemTriangleLexmax(t *testing.T) {
	// x + y ≤ 10, x ≥ 0, y ≥ 0, y ≤ x → lexmax (10, 0), lexmin (0, 0).
	s := NewSystem(2)
	s.AddGE([]int64{-1, -1}, 10)
	s.AddGE([]int64{1, 0}, 0)
	s.AddGE([]int64{0, 1}, 0)
	s.AddGE([]int64{1, -1}, 0)
	v, ok := s.LexmaxBounded()
	if !ok || v[0] != 10 || v[1] != 0 {
		t.Fatalf("lexmax = %v, %v; want [10 0]", v, ok)
	}
	v, ok = s.LexminBounded()
	if !ok || v[0] != 0 || v[1] != 0 {
		t.Fatalf("lexmin = %v, %v; want [0 0]", v, ok)
	}
}

func TestSystemBacktracking(t *testing.T) {
	// 0 ≤ x ≤ 4, 0 ≤ y ≤ 4, 3y = x·3+3 → y = x+1, y ≤ 4 caps x at 3 so
	// lexmax must backtrack past x=4 (rationally fine per-dim until the
	// equality is checked at full depth... here pruning catches it at
	// FixVar). Also exercises equality rows through elimination.
	s := NewSystem(2)
	s.AddBounds(0, 0, 4)
	s.AddBounds(1, 0, 4)
	s.AddEQ([]int64{3, -3}, 3) // 3x - 3y + 3 = 0 → y = x + 1
	v, ok := s.LexmaxBounded()
	if !ok || v[0] != 3 || v[1] != 4 {
		t.Fatalf("lexmax = %v, %v; want [3 4]", v, ok)
	}
	v, ok = s.LexminBounded()
	if !ok || v[0] != 0 || v[1] != 1 {
		t.Fatalf("lexmin = %v, %v; want [0 1]", v, ok)
	}
}

func TestSystemStrideViaAux(t *testing.T) {
	// x = 3t, 0 ≤ x ≤ 10, 0 ≤ t ≤ 10: lexmax x should be 9 (largest
	// multiple of 3 in range).
	s := NewSystem(2) // vars: x, t
	s.AddEQ([]int64{1, -3}, 0)
	s.AddBounds(0, 0, 10)
	s.AddBounds(1, 0, 10)
	v, ok := s.LexmaxBounded()
	if !ok || v[0] != 9 || v[1] != 3 {
		t.Fatalf("lexmax = %v, %v; want [9 3]", v, ok)
	}
}

func TestSystemBoundsQuery(t *testing.T) {
	// x + y ≤ 10, y ≥ 2, x ≥ 0 → x ∈ [0, 8].
	s := NewSystem(2)
	s.AddGE([]int64{-1, -1}, 10)
	s.AddGE([]int64{0, 1}, -2)
	s.AddGE([]int64{1, 0}, 0)
	lo, hi, hasLo, hasHi, empty := s.Bounds(0)
	if empty || !hasLo || !hasHi {
		t.Fatalf("bounds flags: lo=%v hi=%v empty=%v", hasLo, hasHi, empty)
	}
	if lo.Floor() != 0 || hi.Floor() != 8 {
		t.Fatalf("bounds = [%v, %v]; want [0, 8]", lo, hi)
	}
}

func TestSystemFixVar(t *testing.T) {
	s := NewSystem(2)
	s.AddGE([]int64{-1, -1}, 10) // x + y ≤ 10
	s.AddGE([]int64{0, 1}, 0)
	fixed := s.FixVar(0, 7) // y ≤ 3, y ≥ 0
	lo, hi, hasLo, hasHi, empty := fixed.Bounds(1)
	if empty || !hasLo || !hasHi || lo.Floor() != 0 || hi.Floor() != 3 {
		t.Fatalf("after x=7: y in [%v,%v] (lo=%v hi=%v empty=%v)", lo, hi, hasLo, hasHi, empty)
	}
	if !fixed.FixVar(1, 4).RationalEmpty() {
		t.Fatal("x=7, y=4 violates x+y<=10")
	}
}
