package sym

// Piecewise quasi-affine maps with per-dimension separable structure:
// every guard condition and every output coordinate of a piece depends
// on exactly one input dimension. This is the fragment Algorithm 1
// needs — pipeline maps compose per-dimension, nearest-≽ blocking maps
// over strided-lattice leader sets split into one bump position per
// dimension, and pointwise lexicographic minima split on per-dimension
// comparisons — and it keeps every operation a product construction
// whose cost depends only on piece counts.

// Stage is one step of a quasi-affine evaluation chain:
// y = ⌊(A·x + B)/C⌋, optionally clamped from below/above. C ≥ 1.
type Stage struct {
	A, B, C int64
	ClampLo bool
	Lo      int64
	ClampHi bool
	Hi      int64
}

// Eval applies the stage.
func (st Stage) Eval(x int64) int64 {
	y := floorDiv(st.A*x+st.B, st.C)
	if st.ClampLo && y < st.Lo {
		y = st.Lo
	}
	if st.ClampHi && y > st.Hi {
		y = st.Hi
	}
	return y
}

// Form is a composition chain of stages applied left to right to one
// input coordinate. The empty chain is the identity.
type Form struct {
	Stages []Stage
}

// Eval applies the chain.
func (f Form) Eval(x int64) int64 {
	for _, st := range f.Stages {
		x = st.Eval(x)
	}
	return x
}

// IdentityForm is x ↦ x.
func IdentityForm() Form { return Form{} }

// ConstForm is x ↦ k.
func ConstForm(k int64) Form { return Form{Stages: []Stage{{A: 0, B: k, C: 1}}} }

// AffineForm is x ↦ a·x + b.
func AffineForm(a, b int64) Form { return Form{Stages: []Stage{{A: a, B: b, C: 1}}} }

// RatForm is x ↦ ⌊(a·x + b)/c⌋.
func RatForm(a, b, c int64) Form { return Form{Stages: []Stage{{A: a, B: b, C: c}}} }

// Then returns the chain f followed by st.
func (f Form) Then(st Stage) Form {
	out := Form{Stages: make([]Stage, 0, len(f.Stages)+1)}
	out.Stages = append(out.Stages, f.Stages...)
	out.Stages = append(out.Stages, st)
	return out
}

// ComposeForm returns "first inner, then outer".
func ComposeForm(inner, outer Form) Form {
	out := Form{Stages: make([]Stage, 0, len(inner.Stages)+len(outer.Stages))}
	out.Stages = append(out.Stages, inner.Stages...)
	out.Stages = append(out.Stages, outer.Stages...)
	return out
}

// IsConst reports the chain's constant value when it ignores its
// input.
func (f Form) IsConst() (int64, bool) {
	if len(f.Stages) == 0 {
		return 0, false
	}
	first := f.Stages[0]
	if first.A != 0 {
		return 0, false
	}
	return f.Eval(0), true
}

// upForm is the "smallest lattice point ≥ x" map of l, clamped to l.Lo
// from below so inputs left of the lattice land on its first point.
func upForm(l Lat1) Form {
	return Form{Stages: []Stage{
		{A: 1, B: -l.Lo + l.Stride - 1, C: l.Stride},
		{A: l.Stride, B: l.Lo, C: 1, ClampLo: true, Lo: l.Lo},
	}}
}

// upStrictForm is the "smallest lattice point > x" map of l, with the
// same left clamp.
func upStrictForm(l Lat1) Form {
	return Form{Stages: []Stage{
		{A: 1, B: -l.Lo, C: l.Stride},
		{A: l.Stride, B: l.Lo + l.Stride, C: 1, ClampLo: true, Lo: l.Lo},
	}}
}

// CondOp distinguishes ≥ from =.
type CondOp int

const (
	// CondGE is Σ Coef·F(x) + K ≥ 0.
	CondGE CondOp = iota
	// CondEQ is Σ Coef·F(x) + K = 0.
	CondEQ
)

// Term is one Coef·F(x) summand of a condition.
type Term struct {
	Coef int64
	F    Form
}

// Cond is a univariate quasi-affine condition over one input
// coordinate: Σ Terms + K  op  0.
type Cond struct {
	Terms []Term
	K     int64
	Op    CondOp
}

// Eval evaluates the condition at coordinate x.
func (c Cond) Eval(x int64) bool {
	v := c.K
	for _, t := range c.Terms {
		v += t.Coef * t.F.Eval(x)
	}
	if c.Op == CondEQ {
		return v == 0
	}
	return v >= 0
}

// geCond builds f(x) + k ≥ 0.
func geCond(f Form, k int64) Cond { return Cond{Terms: []Term{{Coef: 1, F: f}}, K: k} }

// leCond builds f(x) ≤ k, i.e. k − f(x) ≥ 0.
func leCond(f Form, k int64) Cond { return Cond{Terms: []Term{{Coef: -1, F: f}}, K: k} }

// memberConds encode x ∈ l as bounds plus (for stride > 1) a lattice
// congruence x − Lo − S·⌊(x−Lo)/S⌋ = 0.
func memberConds(l Lat1) []Cond {
	conds := []Cond{
		geCond(IdentityForm(), -l.Lo), // x ≥ Lo
		leCond(IdentityForm(), l.Hi),  // x ≤ Hi
	}
	if l.Stride > 1 {
		conds = append(conds, Cond{
			Terms: []Term{
				{Coef: 1, F: IdentityForm()},
				{Coef: -l.Stride, F: RatForm(1, -l.Lo, l.Stride)},
			},
			K:  -l.Lo,
			Op: CondEQ,
		})
	}
	return conds
}

// substCond rewrites a condition over the output of pre into a
// condition over pre's input.
func substCond(c Cond, pre Form) Cond {
	terms := make([]Term, len(c.Terms))
	for i, t := range c.Terms {
		terms[i] = Term{Coef: t.Coef, F: ComposeForm(pre, t.F)}
	}
	return Cond{Terms: terms, K: c.K, Op: c.Op}
}

// Piece is one guarded branch of a piecewise map: per-dimension guard
// condition lists (conjunction; empty = always) and per-dimension
// output forms.
type Piece struct {
	Guard [][]Cond
	Out   []Form
}

// PW is a piecewise per-dimension-separable quasi-affine map with
// first-match piece semantics. A PW built by the detector is total
// over the iteration domain it is used on (the final piece of a
// blocking map has an empty guard).
type PW struct {
	Dim    int
	Pieces []Piece
}

// Eval returns the image of v under the first matching piece.
func (p PW) Eval(v []int64) ([]int64, bool) {
	for _, pc := range p.Pieces {
		if pieceMatches(pc, v) {
			out := make([]int64, p.Dim)
			for d := 0; d < p.Dim; d++ {
				out[d] = pc.Out[d].Eval(v[d])
			}
			return out, true
		}
	}
	return nil, false
}

func pieceMatches(pc Piece, v []int64) bool {
	for d, conds := range pc.Guard {
		for _, c := range conds {
			if !c.Eval(v[d]) {
				return false
			}
		}
	}
	return true
}

// ConstPW is the total map sending everything to out.
func ConstPW(out []int64) PW {
	forms := make([]Form, len(out))
	for d, k := range out {
		forms[d] = ConstForm(k)
	}
	return PW{Dim: len(out), Pieces: []Piece{{Guard: make([][]Cond, len(out)), Out: forms}}}
}

// SinglePW is the total map with one unconditional piece of the given
// per-dimension forms.
func SinglePW(forms []Form) PW {
	return PW{Dim: len(forms), Pieces: []Piece{{Guard: make([][]Cond, len(forms)), Out: forms}}}
}

// NearestGETotal is the closed form of a totalized blocking map: each
// point x maps to the lex-smallest leader ≽ x, and points beyond the
// last leader map to dommax (the BlockingMap tail rule). One piece per
// bump position, most-specific first, plus the tail piece:
//
//	exact on dims < D−1, up within the last dim's lattice
//	exact on dims < k, strict-up at dim k, lattice minima after
//	…
//	dommax
func NearestGETotal(leaders Box, dommax []int64) PW {
	d := len(leaders)
	var pieces []Piece

	exactGuard := func(k int) [][]Cond {
		g := make([][]Cond, d)
		for j := 0; j < k; j++ {
			g[j] = memberConds(leaders[j])
		}
		return g
	}
	identityPrefix := func(k int) []Form {
		out := make([]Form, d)
		for j := 0; j < k; j++ {
			out[j] = IdentityForm()
		}
		return out
	}

	// Bump at the last dimension (non-strict: up within the lattice).
	g := exactGuard(d - 1)
	up := upForm(leaders[d-1])
	g[d-1] = []Cond{leCond(up, leaders[d-1].Hi)}
	out := identityPrefix(d - 1)
	out[d-1] = up
	pieces = append(pieces, Piece{Guard: g, Out: out})

	// Bumps at earlier dimensions, innermost first (longest shared
	// prefix binds first under first-match).
	for k := d - 2; k >= 0; k-- {
		g := exactGuard(k)
		ups := upStrictForm(leaders[k])
		g[k] = []Cond{leCond(ups, leaders[k].Hi)}
		out := identityPrefix(k)
		out[k] = ups
		for j := k + 1; j < d; j++ {
			out[j] = ConstForm(leaders[j].Lo)
		}
		pieces = append(pieces, Piece{Guard: g, Out: out})
	}

	// Tail: everything past the last leader belongs to the block led
	// by the domain's lexicographic maximum.
	tail := ConstPW(dommax).Pieces[0]
	pieces = append(pieces, tail)
	return PW{Dim: d, Pieces: pieces}
}

// LexMinPW is the pointwise lexicographic minimum of two total maps.
// Product pieces preserve first-match semantics (the first matching
// product pair is the pair of first matches), and each pair splits
// into "a wins at some dimension" branches with an unconditional
// "b wins" fallback.
func LexMinPW(a, b PW) PW {
	if a.Dim != b.Dim {
		panic("sym: LexMinPW dimension mismatch")
	}
	d := a.Dim
	out := PW{Dim: d}
	for _, pa := range a.Pieces {
		for _, pb := range b.Pieces {
			base := make([][]Cond, d)
			for j := 0; j < d; j++ {
				base[j] = append(append([]Cond{}, pa.Guard[j]...), pb.Guard[j]...)
			}
			// a wins: equal on dims < k, strictly below at k (at the
			// last dimension, ≤ suffices).
			for k := 0; k < d; k++ {
				g := cloneGuard(base)
				for j := 0; j < k; j++ {
					g[j] = append(g[j], diffCond(pa.Out[j], pb.Out[j], CondEQ, 0))
				}
				if k == d-1 {
					g[k] = append(g[k], diffCond(pb.Out[k], pa.Out[k], CondGE, 0)) // a_k ≤ b_k
				} else {
					g[k] = append(g[k], diffCond(pb.Out[k], pa.Out[k], CondGE, -1)) // a_k < b_k
				}
				out.Pieces = append(out.Pieces, Piece{Guard: g, Out: pa.Out})
			}
			// b wins unconditionally otherwise.
			out.Pieces = append(out.Pieces, Piece{Guard: base, Out: pb.Out})
		}
	}
	return out
}

// diffCond builds hi(x) − lo(x) + k op 0.
func diffCond(hi, lo Form, op CondOp, k int64) Cond {
	return Cond{Terms: []Term{{Coef: 1, F: hi}, {Coef: -1, F: lo}}, K: k, Op: op}
}

func cloneGuard(g [][]Cond) [][]Cond {
	out := make([][]Cond, len(g))
	for i := range g {
		out[i] = append([]Cond{}, g[i]...)
	}
	return out
}

// LexMinFold folds LexMinPW over maps (which must be non-empty).
func LexMinFold(maps []PW) PW {
	acc := maps[0]
	for _, m := range maps[1:] {
		acc = LexMinPW(acc, m)
	}
	return acc
}

// ComposePW returns outer ∘ inner. Both maps must be total on the
// points they are evaluated at; the product piece (i, o) guards
// inner's piece i plus outer's piece o rewritten through inner's
// outputs.
func ComposePW(outer, inner PW) PW {
	if outer.Dim != inner.Dim {
		panic("sym: ComposePW dimension mismatch")
	}
	d := inner.Dim
	out := PW{Dim: d}
	for _, pi := range inner.Pieces {
		for _, po := range outer.Pieces {
			g := make([][]Cond, d)
			forms := make([]Form, d)
			for j := 0; j < d; j++ {
				g[j] = append([]Cond{}, pi.Guard[j]...)
				for _, c := range po.Guard[j] {
					g[j] = append(g[j], substCond(c, pi.Out[j]))
				}
				forms[j] = ComposeForm(pi.Out[j], po.Out[j])
			}
			out.Pieces = append(out.Pieces, Piece{Guard: g, Out: forms})
		}
	}
	return out
}
