package sym

import (
	"fmt"
	"strings"

	"repro/internal/mpint"
)

// SysCon is one affine constraint Σ Coef[i]·x_i + K  (≥ 0, or = 0 when
// Eq is set) over exact rationals.
type SysCon struct {
	Coef []mpint.Rat
	K    mpint.Rat
	Eq   bool
}

// System is a conjunction of affine constraints over N integer
// variables. Elimination and feasibility work over the rationals
// (Fourier–Motzkin); the integer lexmin/lexmax search in lexopt.go
// layers exact integer reasoning on top.
type System struct {
	N    int
	Cons []SysCon
}

// NewSystem returns an unconstrained system over nvars variables.
func NewSystem(nvars int) *System { return &System{N: nvars} }

func (s *System) addRat(coef []mpint.Rat, k mpint.Rat, eq bool) {
	if len(coef) != s.N {
		panic("sym: constraint arity mismatch")
	}
	s.Cons = append(s.Cons, SysCon{Coef: coef, K: k, Eq: eq})
}

func ratRow(coefs []int64) []mpint.Rat {
	row := make([]mpint.Rat, len(coefs))
	for i, c := range coefs {
		row[i] = mpint.RatFromInt(c)
	}
	return row
}

// AddGE adds Σ coefs[i]·x_i + k ≥ 0.
func (s *System) AddGE(coefs []int64, k int64) {
	s.addRat(ratRow(coefs), mpint.RatFromInt(k), false)
}

// AddLE adds Σ coefs[i]·x_i + k ≤ 0.
func (s *System) AddLE(coefs []int64, k int64) {
	neg := make([]int64, len(coefs))
	for i, c := range coefs {
		neg[i] = -c
	}
	s.AddGE(neg, -k)
}

// AddEQ adds Σ coefs[i]·x_i + k = 0.
func (s *System) AddEQ(coefs []int64, k int64) {
	s.addRat(ratRow(coefs), mpint.RatFromInt(k), true)
}

// AddBounds adds lo ≤ x_v ≤ hi.
func (s *System) AddBounds(v int, lo, hi int64) {
	row := make([]int64, s.N)
	row[v] = 1
	s.AddGE(row, -lo)
	row2 := make([]int64, s.N)
	row2[v] = -1
	s.AddGE(row2, hi)
}

// Clone returns an independent copy (constraint rows are immutable and
// shared).
func (s *System) Clone() *System {
	out := &System{N: s.N, Cons: make([]SysCon, len(s.Cons))}
	copy(out.Cons, s.Cons)
	return out
}

// uses reports whether the constraint mentions variable v.
func (c SysCon) uses(v int) bool { return c.Coef[v].Sign() != 0 }

// scaleAdd returns c + f·d as a fresh constraint row (inequality kind
// of c is preserved; the caller guarantees the combination is sound).
func scaleAdd(c SysCon, f mpint.Rat, d SysCon) SysCon {
	coef := make([]mpint.Rat, len(c.Coef))
	for i := range coef {
		coef[i] = c.Coef[i].Add(f.Mul(d.Coef[i]))
	}
	return SysCon{Coef: coef, K: c.K.Add(f.Mul(d.K)), Eq: c.Eq && d.Eq}
}

// Eliminate projects out variable v and returns the shadow system over
// the remaining variables (v keeps its slot with zero coefficients).
// Equalities are used for exact Gaussian substitution when available;
// otherwise inequalities combine pairwise in the classic
// Fourier–Motzkin fashion. The projection is exact over the rationals.
func (s *System) Eliminate(v int) *System {
	out := NewSystem(s.N)
	// Gaussian step: substitute through the first equality using v.
	for _, e := range s.Cons {
		if !e.Eq || !e.uses(v) {
			continue
		}
		for _, c := range s.Cons {
			if sameCon(c, e) {
				continue
			}
			if !c.uses(v) {
				out.addRat(c.Coef, c.K, c.Eq)
				continue
			}
			f := c.Coef[v].Div(e.Coef[v]).Neg()
			nc := scaleAdd(c, f, e)
			nc.Eq = c.Eq
			out.addRat(nc.Coef, nc.K, nc.Eq)
		}
		return out.dedup()
	}
	// Fourier–Motzkin on the inequalities (equalities not using v are
	// carried; an equality using v would have been handled above).
	var lower, upper []SysCon // lower: Coef[v] > 0 (x_v ≥ …), upper: < 0
	for _, c := range s.Cons {
		switch {
		case !c.uses(v):
			out.addRat(c.Coef, c.K, c.Eq)
		case c.Coef[v].Sign() > 0:
			lower = append(lower, c)
		default:
			upper = append(upper, c)
		}
	}
	for _, lo := range lower {
		for _, up := range upper {
			// lo: a·x_v + R ≥ 0 (a>0), up: -b·x_v + S ≥ 0 (b>0):
			// lo + (a/b)·up cancels x_v with positive multipliers.
			f := lo.Coef[v].Div(up.Coef[v].Neg())
			nc := scaleAdd(lo, f, up)
			nc.Eq = false
			out.addRat(nc.Coef, nc.K, false)
		}
	}
	return out.dedup()
}

func sameCon(a, b SysCon) bool {
	if a.Eq != b.Eq || a.K.Cmp(b.K) != 0 {
		return false
	}
	for i := range a.Coef {
		if a.Coef[i].Cmp(b.Coef[i]) != 0 {
			return false
		}
	}
	return true
}

// dedup removes duplicate constraints after normalizing each row by
// its first non-zero coefficient's magnitude (cheap redundancy
// control; full redundancy elimination is not needed for correctness).
func (s *System) dedup() *System {
	seen := make(map[string]bool, len(s.Cons))
	out := NewSystem(s.N)
	for _, c := range s.Cons {
		n := normalizeCon(c)
		key := conKey(n)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Cons = append(out.Cons, n)
	}
	return out
}

func normalizeCon(c SysCon) SysCon {
	var scale mpint.Rat
	found := false
	for _, r := range c.Coef {
		if r.Sign() != 0 {
			scale = r
			if scale.Sign() < 0 {
				scale = scale.Neg()
			}
			found = true
			break
		}
	}
	if !found {
		return c
	}
	coef := make([]mpint.Rat, len(c.Coef))
	for i := range coef {
		coef[i] = c.Coef[i].Div(scale)
	}
	return SysCon{Coef: coef, K: c.K.Div(scale), Eq: c.Eq}
}

func conKey(c SysCon) string {
	var b strings.Builder
	for _, r := range c.Coef {
		b.WriteString(r.String())
		b.WriteByte(',')
	}
	b.WriteString(c.K.String())
	if c.Eq {
		b.WriteString("=")
	}
	return b.String()
}

// RationalEmpty reports whether the system has no rational solution.
// It eliminates every variable and checks the resulting variable-free
// constraints; Fourier–Motzkin projection is exact over the rationals,
// so the answer is exact (an integer-empty but rational-feasible
// system reports false — callers needing integer emptiness use the
// lexopt search).
func (s *System) RationalEmpty() bool {
	cur := s
	for v := 0; v < s.N; v++ {
		cur = cur.Eliminate(v)
	}
	for _, c := range cur.Cons {
		if c.Eq {
			if c.K.Sign() != 0 {
				return true
			}
		} else if c.K.Sign() < 0 {
			return true
		}
	}
	return false
}

// FixVar substitutes x_v = val and returns the reduced system (v keeps
// its slot with zero coefficient).
func (s *System) FixVar(v int, val int64) *System {
	out := NewSystem(s.N)
	rv := mpint.RatFromInt(val)
	for _, c := range s.Cons {
		if !c.uses(v) {
			out.Cons = append(out.Cons, c)
			continue
		}
		coef := make([]mpint.Rat, len(c.Coef))
		copy(coef, c.Coef)
		coef[v] = mpint.Rat{}
		out.addRat(coef, c.K.Add(c.Coef[v].Mul(rv)), c.Eq)
	}
	return out
}

// Bounds returns the rational bounds the system induces on x_v once
// every other variable has been projected out. hasLo/hasHi report
// whether the corresponding side is bounded; empty reports a
// rationally infeasible system.
func (s *System) Bounds(v int) (lo, hi mpint.Rat, hasLo, hasHi, empty bool) {
	cur := s
	for u := 0; u < s.N; u++ {
		if u != v {
			cur = cur.Eliminate(u)
		}
	}
	for _, c := range cur.Cons {
		a := c.Coef[v]
		if a.Sign() == 0 {
			if c.Eq && c.K.Sign() != 0 || !c.Eq && c.K.Sign() < 0 {
				return lo, hi, false, false, true
			}
			continue
		}
		// a·x + K ≥ 0 → x ≥ -K/a (a>0) or x ≤ -K/a (a<0); equalities
		// clamp both sides.
		b := c.K.Div(a).Neg()
		if c.Eq {
			if !hasLo || b.Cmp(lo) > 0 {
				lo, hasLo = b, true
			}
			if !hasHi || b.Cmp(hi) < 0 {
				hi, hasHi = b, true
			}
			continue
		}
		if a.Sign() > 0 {
			if !hasLo || b.Cmp(lo) > 0 {
				lo, hasLo = b, true
			}
		} else {
			if !hasHi || b.Cmp(hi) < 0 {
				hi, hasHi = b, true
			}
		}
	}
	if hasLo && hasHi && lo.Cmp(hi) > 0 {
		return lo, hi, hasLo, hasHi, true
	}
	return lo, hi, hasLo, hasHi, false
}

// String renders the system for diagnostics.
func (s *System) String() string {
	var b strings.Builder
	for i, c := range s.Cons {
		if i > 0 {
			b.WriteString(" and ")
		}
		for j, r := range c.Coef {
			if r.Sign() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%+v*x%d ", r, j)
		}
		op := ">="
		if c.Eq {
			op = "="
		}
		fmt.Fprintf(&b, "%+v %s 0", c.K, op)
	}
	return b.String()
}
