package isl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSetRoundTrip(t *testing.T) {
	s := SetOf(NewSpace("S", 2), NewVec(0, 1), NewVec(2, -3), NewVec(1, 1))
	got, err := ParseSet(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: %v != %v", got, s)
	}
}

func TestParseSetErrors(t *testing.T) {
	cases := map[string]string{
		"no braces":   "S[0]",
		"mixed space": "{ S[0]; R[0] }",
		"mixed dim":   "{ S[0]; S[0, 1] }",
		"bad coord":   "{ S[x] }",
		"no name":     "{ [0] }",
		"empty":       "{ }",
	}
	for name, src := range cases {
		if _, err := ParseSet(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestParseSetIn(t *testing.T) {
	sp := NewSpace("S", 1)
	empty, err := ParseSetIn(sp, "{ }")
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("empty parse: %v, %v", empty, err)
	}
	got, err := ParseSetIn(sp, "{ S[4]; S[-1] }")
	if err != nil || got.Card() != 2 || !got.Contains(NewVec(-1)) {
		t.Fatalf("ParseSetIn = %v, %v", got, err)
	}
	if _, err := ParseSetIn(sp, "{ R[4] }"); err == nil {
		t.Fatal("wrong-space tuple accepted")
	}
}

func TestParseMapRoundTrip(t *testing.T) {
	m := NewMap(NewSpace("S", 2), NewSpace("R", 1))
	m.Add(NewVec(0, 0), NewVec(5))
	m.Add(NewVec(1, 2), NewVec(-7))
	m.Add(NewVec(1, 2), NewVec(3))
	got, err := ParseMap(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip: %v != %v", got, m)
	}
}

func TestParseMapErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no arrow":  "{ S[0] R[0] }",
		"mixed":     "{ S[0] -> R[0]; S[0, 1] -> R[0] }",
		"empty":     "{ }",
		"no braces": "S[0] -> R[0]",
	} {
		if _, err := ParseMap(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestParseMapIn(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	empty, err := ParseMapIn(in, out, "{ }")
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("empty map parse: %v, %v", empty, err)
	}
	got, err := ParseMapIn(in, out, "{ S[1] -> R[2] }")
	if err != nil || !got.Contains(NewVec(1), NewVec(2)) {
		t.Fatalf("ParseMapIn = %v, %v", got, err)
	}
	if _, err := ParseMapIn(in, out, "{ R[1] -> S[2] }"); err == nil {
		t.Fatal("swapped spaces accepted")
	}
}

func TestQuickSetStringParseRoundTrip(t *testing.T) {
	sp := NewSpace("S", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r, sp, 1+r.Intn(20))
		got, err := ParseSet(s.String())
		return err == nil && got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMapStringParseRoundTrip(t *testing.T) {
	in, out := NewSpace("S", 2), NewSpace("R", 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMap(r, in, out, 1+r.Intn(25))
		got, err := ParseMap(m.String())
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltas(t *testing.T) {
	m := NewMap(NewSpace("S", 2), NewSpace("S", 2))
	m.Add(NewVec(0, 0), NewVec(0, 1))
	m.Add(NewVec(1, 1), NewVec(1, 2))
	m.Add(NewVec(2, 0), NewVec(3, 1))
	d := Deltas(m)
	if d.Card() != 2 || !d.Contains(NewVec(0, 1)) || !d.Contains(NewVec(1, 1)) {
		t.Fatalf("Deltas = %v", d)
	}
	if !strings.Contains(d.Space().Name, "S-S") {
		t.Fatalf("deltas space = %v", d.Space())
	}
}

func TestDeltasPanicsOnDimMismatch(t *testing.T) {
	m := NewMap(NewSpace("S", 1), NewSpace("R", 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Deltas(m)
}
