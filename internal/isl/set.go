package isl

import (
	"strings"
)

// Set is a finite set of integer tuples in a single tuple space.
// The zero value is not usable; construct sets with NewSet or the
// operations on existing sets. Sets are immutable once built except
// through Add, which callers must not use after sharing a set.
type Set struct {
	space  Space
	elems  map[string]Vec
	sorted []Vec // lazily computed lexicographic ordering; nil when stale
}

// NewSet returns an empty set in the given space.
func NewSet(space Space) *Set {
	return &Set{space: space, elems: make(map[string]Vec)}
}

// SetOf builds a set in the given space from the listed tuples.
func SetOf(space Space, vs ...Vec) *Set {
	s := NewSet(space)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Space returns the tuple space of s.
func (s *Set) Space() Space { return s.space }

// Add inserts v into s. It panics if v has the wrong dimension.
func (s *Set) Add(v Vec) {
	s.space.checkVec(v)
	k := v.key()
	if _, ok := s.elems[k]; !ok {
		s.elems[k] = v.Clone()
		s.sorted = nil
	}
}

// Contains reports whether v is an element of s.
func (s *Set) Contains(v Vec) bool {
	if len(v) != s.space.Dim {
		return false
	}
	_, ok := s.elems[v.key()]
	return ok
}

// Card returns the number of elements in s.
func (s *Set) Card() int { return len(s.elems) }

// IsEmpty reports whether s has no elements.
func (s *Set) IsEmpty() bool { return len(s.elems) == 0 }

// Elements returns the elements of s in lexicographic order. The
// returned slice is shared; callers must not modify it.
func (s *Set) Elements() []Vec {
	if s.sorted == nil {
		vs := make([]Vec, 0, len(s.elems))
		for _, v := range s.elems {
			vs = append(vs, v)
		}
		sortVecs(vs)
		s.sorted = vs
	}
	return s.sorted
}

// Foreach calls fn for every element in lexicographic order, stopping
// early if fn returns false.
func (s *Set) Foreach(fn func(Vec) bool) {
	for _, v := range s.Elements() {
		if !fn(v) {
			return
		}
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	t := NewSet(s.space)
	for k, v := range s.elems {
		t.elems[k] = v
	}
	return t
}

// Union returns s ∪ t. Both sets must live in the same space.
func (s *Set) Union(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Union")
	r := s.Clone()
	for k, v := range t.elems {
		if _, ok := r.elems[k]; !ok {
			r.elems[k] = v
		}
	}
	r.sorted = nil
	return r
}

// Intersect returns s ∩ t. Both sets must live in the same space.
func (s *Set) Intersect(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Intersect")
	r := NewSet(s.space)
	small, large := s, t
	if large.Card() < small.Card() {
		small, large = large, small
	}
	for k, v := range small.elems {
		if _, ok := large.elems[k]; ok {
			r.elems[k] = v
		}
	}
	return r
}

// Subtract returns s \ t. Both sets must live in the same space.
func (s *Set) Subtract(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Subtract")
	r := NewSet(s.space)
	for k, v := range s.elems {
		if _, ok := t.elems[k]; !ok {
			r.elems[k] = v
		}
	}
	return r
}

// Equal reports whether s and t contain exactly the same tuples in the
// same space.
func (s *Set) Equal(t *Set) bool {
	if s.space != t.space || len(s.elems) != len(t.elems) {
		return false
	}
	for k := range s.elems {
		if _, ok := t.elems[k]; !ok {
			return false
		}
	}
	return true
}

// IsSubset reports whether every element of s is in t.
func (s *Set) IsSubset(t *Set) bool {
	if s.space != t.space || len(s.elems) > len(t.elems) {
		return false
	}
	for k := range s.elems {
		if _, ok := t.elems[k]; !ok {
			return false
		}
	}
	return true
}

// Lexmin returns the lexicographically smallest element of s and true,
// or nil and false if s is empty.
func (s *Set) Lexmin() (Vec, bool) {
	es := s.Elements()
	if len(es) == 0 {
		return nil, false
	}
	return es[0], true
}

// Lexmax returns the lexicographically largest element of s and true,
// or nil and false if s is empty.
func (s *Set) Lexmax() (Vec, bool) {
	es := s.Elements()
	if len(es) == 0 {
		return nil, false
	}
	return es[len(es)-1], true
}

// Filter returns the subset of s whose elements satisfy pred.
func (s *Set) Filter(pred func(Vec) bool) *Set {
	r := NewSet(s.space)
	for k, v := range s.elems {
		if pred(v) {
			r.elems[k] = v
		}
	}
	return r
}

// String renders the set in ISL-like notation, e.g.
// "{ S[0, 0]; S[0, 1] }", listing elements in lexicographic order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, v := range s.Elements() {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.space.Name)
		b.WriteString(tupleBody(v))
	}
	b.WriteString(" }")
	return b.String()
}

// tupleBody renders "[a, b]" for use after a space name.
func tupleBody(v Vec) string {
	s := v.String()
	return s
}
