// Package isl is a small, exact integer-set library modelled on the
// subset of ISL (the Integer Set Library) that polyhedral pipeline
// detection needs: named tuple spaces, integer vectors with
// lexicographic order, finite sets of integer tuples, and binary
// relations (maps) between them.
//
// Unlike ISL, which represents Z-polyhedra symbolically with Presburger
// formulas, this package represents sets and maps extensionally: every
// element is stored. All iteration domains handled by the pipeline
// detector are bounded and known when the transformation runs, so the
// extensional representation computes exactly the same answers as ISL's
// symbolic one for every operation used by the algorithms in this
// repository (composition, inverse, domain/range, union, intersection,
// subtraction, per-domain lexmin/lexmax, lexicographic order relations,
// and identity maps).
//
// Symbolic construction of sets and maps from affine bounds and access
// functions lives in the subpackage aff; this package is purely about
// the finished, enumerated objects.
//
// All operations are deterministic: iteration over sets and maps is in
// lexicographic order, and operations never depend on Go map iteration
// order.
package isl
