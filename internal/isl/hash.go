package isl

// Content hashing for sets and maps: a Digest folds canonical
// relation content into a 128-bit value, the substrate of the SCoP
// fingerprints the detection cache is keyed by (internal/cache).
//
// The fold is over canonical enumeration order (lexicographic, the
// same order Elements/ForeachEntry expose), so two relations holding
// the same pairs hash identically regardless of the order they were
// built in, of interning history, and of the process they run in.
// The two lanes are independent FNV-1a streams with different offset
// bases; 128 bits keep accidental collisions out of reach for the
// cache sizes a serving process holds.

// Digest is an incremental 128-bit content hash.
type Digest struct {
	lo, hi uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// hiOffset is an arbitrary second offset basis (the FNV-1a basis
	// XORed with a 64-bit odd constant) so the lanes decorrelate.
	hiOffset = fnvOffset64 ^ 0x9e3779b97f4a7c15
)

// NewDigest returns a fresh digest.
func NewDigest() *Digest {
	return &Digest{lo: fnvOffset64, hi: hiOffset}
}

// WriteInt folds one integer into the digest.
func (d *Digest) WriteInt(v int) { d.writeUint64(uint64(int64(v))) }

func (d *Digest) writeUint64(x uint64) {
	for i := 0; i < 8; i++ {
		b := uint64(byte(x >> (8 * i)))
		d.lo = (d.lo ^ b) * fnvPrime64
		d.hi = (d.hi ^ b) * (fnvPrime64 + 2)
	}
}

// WriteString folds a length-prefixed string into the digest, so
// consecutive strings cannot alias ("ab","c" vs "a","bc").
func (d *Digest) WriteString(s string) {
	d.WriteInt(len(s))
	for i := 0; i < len(s); i++ {
		b := uint64(s[i])
		d.lo = (d.lo ^ b) * fnvPrime64
		d.hi = (d.hi ^ b) * (fnvPrime64 + 2)
	}
}

// WriteVec folds a dimension-prefixed vector into the digest.
func (d *Digest) WriteVec(v Vec) {
	d.WriteInt(len(v))
	for _, x := range v {
		d.WriteInt(x)
	}
}

// Sum128 returns the two 64-bit lanes of the digest.
func (d *Digest) Sum128() (lo, hi uint64) { return d.lo, d.hi }

// WriteSpace folds a space identity (name and dimension).
func (d *Digest) WriteSpace(sp Space) {
	d.WriteString(sp.Name)
	d.WriteInt(sp.Dim)
}

// HashInto folds the set's canonical content — space identity,
// cardinality, and every element in lexicographic order — into d.
// Build order and interning history do not affect the result.
func (s *Set) HashInto(d *Digest) {
	d.WriteSpace(s.space)
	es := s.Elements()
	d.WriteInt(len(es))
	for _, v := range es {
		d.WriteVec(v)
	}
}

// HashInto folds the map's canonical content — both space identities
// and every pair in lexicographic (input, output) order — into d.
// Build order and interning history do not affect the result.
func (m *Map) HashInto(d *Digest) {
	d.WriteSpace(m.in)
	d.WriteSpace(m.out)
	d.WriteInt(m.Card())
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		d.WriteVec(in)
		d.WriteInt(len(outs))
		for _, o := range outs {
			d.WriteVec(o)
		}
		return true
	})
}
