package isl

import "testing"

// TestDigestOrderIndependence pins the content-addressing contract:
// relations holding the same pairs hash identically no matter the
// insertion order, and any content difference moves the hash.
func TestDigestOrderIndependence(t *testing.T) {
	in, out := NewSpace("HI", 2), NewSpace("HO", 1)

	a := NewMap(in, out)
	b := NewMap(in, out)
	pairs := []struct{ i, o Vec }{
		{NewVec(0, 0), NewVec(3)},
		{NewVec(1, 2), NewVec(1)},
		{NewVec(0, 1), NewVec(2)},
		{NewVec(4, 4), NewVec(0)},
	}
	for _, p := range pairs {
		a.Add(p.i, p.o)
	}
	for i := len(pairs) - 1; i >= 0; i-- {
		b.Add(pairs[i].i, pairs[i].o)
	}

	if hashMap(a) != hashMap(b) {
		t.Fatal("same content, different insertion order: digests differ")
	}

	b.Add(NewVec(9, 9), NewVec(4))
	if hashMap(a) == hashMap(b) {
		t.Fatal("different content, same digest")
	}
}

func TestDigestSetContent(t *testing.T) {
	sp := NewSpace("HS", 1)
	x := SetOf(sp, NewVec(2), NewVec(0), NewVec(1))
	y := SetOf(sp, NewVec(1), NewVec(2), NewVec(0))
	if hashSet(x) != hashSet(y) {
		t.Fatal("equal sets hash differently")
	}
	y.Add(NewVec(7))
	if hashSet(x) == hashSet(y) {
		t.Fatal("unequal sets hash equally")
	}
}

// TestDigestSpaceSensitivity: the same tuples in a differently named
// space must not collide (spaces are part of relation identity).
func TestDigestSpaceSensitivity(t *testing.T) {
	x := SetOf(NewSpace("HA", 1), NewVec(0), NewVec(1))
	y := SetOf(NewSpace("HB", 1), NewVec(0), NewVec(1))
	if hashSet(x) == hashSet(y) {
		t.Fatal("space name ignored by digest")
	}
}

// TestDigestStringFraming: length prefixes must keep consecutive
// strings from aliasing.
func TestDigestStringFraming(t *testing.T) {
	a := NewDigest()
	a.WriteString("ab")
	a.WriteString("c")
	b := NewDigest()
	b.WriteString("a")
	b.WriteString("bc")
	alo, ahi := a.Sum128()
	blo, bhi := b.Sum128()
	if alo == blo && ahi == bhi {
		t.Fatal("string framing aliases")
	}
}

func hashMap(m *Map) [2]uint64 {
	d := NewDigest()
	m.HashInto(d)
	lo, hi := d.Sum128()
	return [2]uint64{lo, hi}
}

func hashSet(s *Set) [2]uint64 {
	d := NewDigest()
	s.HashInto(d)
	lo, hi := d.Sum128()
	return [2]uint64{lo, hi}
}
