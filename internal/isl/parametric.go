package isl

import (
	"fmt"

	"repro/internal/isl/sym"
)

// Parametric (intensional) sets and maps: the textual counterpart of
// the constraint-form backend. Where the extensional notation lists
// every point ("{ S[0]; S[1] }"), the parametric notation describes a
// domain by affine constraints over iterator variables and symbolic
// parameters:
//
//	[n] -> { S[i, j] : i >= 0 and n - i - 1 >= 0 and j - i >= 0 }
//	[n] -> { S[i] -> R[i + 1] : i >= 0 and n - i - 1 >= 0 }
//
// ParseParamSet/ParseParamMap accept this notation (including ISL's
// chained comparisons, "0 <= i < n"), String renders it back in
// canonical ">= 0 / = 0" form, and Instantiate bridges to the
// extensional backends by binding the parameters and enumerating the
// (then bounded) domain through the Fourier–Motzkin bounds of
// internal/isl/sym.

// AffExpr is an affine expression over a ParamSet/ParamMap's iterators
// and parameters: Σ Coef[d]·iter_d + Σ PCoef[p]·param_p + Const.
type AffExpr struct {
	Coef  []int64
	PCoef []int64
	Const int64
}

// eval substitutes iterator and parameter values.
func (e AffExpr) eval(iters, params []int64) int64 {
	v := e.Const
	for d, c := range e.Coef {
		v += c * iters[d]
	}
	for p, c := range e.PCoef {
		v += c * params[p]
	}
	return v
}

// AffCon is one constraint: Expr >= 0, or Expr = 0 when Eq is set.
type AffCon struct {
	Expr AffExpr
	Eq   bool
}

// ParamSet is a parametric set: named iterators constrained by affine
// inequalities over the iterators and symbolic parameters.
type ParamSet struct {
	Params []string // symbolic parameter names, in declaration order
	Name   string   // tuple (space) name
	Iters  []string // iterator names, in tuple order
	Cons   []AffCon
}

// ParamMap is a parametric relation: a ParamSet-shaped input domain
// whose every point maps to one output tuple of affine expressions.
type ParamMap struct {
	Params  []string
	InName  string
	Iters   []string
	OutName string
	Outs    []AffExpr // one per output dimension, over Iters/Params
	Cons    []AffCon
}

// maxInstantiatePoints bounds the volume Instantiate will enumerate;
// parametric descriptions exist precisely so unbounded domains never
// need enumeration, and a runaway binding should fail loudly.
const maxInstantiatePoints = 1 << 20

// bindParams resolves the declared parameters against the bindings.
func bindParams(params []string, bind map[string]int) ([]int64, error) {
	vals := make([]int64, len(params))
	for p, name := range params {
		v, ok := bind[name]
		if !ok {
			return nil, fmt.Errorf("isl: parameter %q has no binding", name)
		}
		vals[p] = int64(v)
	}
	return vals, nil
}

// boundSystem builds the FM system of the constraints with parameters
// substituted, then extracts integer bounds for every iterator.
func boundSystem(iters []string, cons []AffCon, pvals []int64) (sys *sym.System, lo, hi []int64, empty bool, err error) {
	sys = sym.NewSystem(len(iters))
	for _, c := range cons {
		k := c.Expr.Const
		for p, pc := range c.Expr.PCoef {
			k += pc * pvals[p]
		}
		if c.Eq {
			sys.AddEQ(c.Expr.Coef, k)
		} else {
			sys.AddGE(c.Expr.Coef, k)
		}
	}
	if sys.RationalEmpty() {
		return sys, nil, nil, true, nil
	}
	lo = make([]int64, len(iters))
	hi = make([]int64, len(iters))
	for d, name := range iters {
		l, h, hasLo, hasHi, emp := sys.Bounds(d)
		if emp {
			return sys, nil, nil, true, nil
		}
		if !hasLo || !hasHi {
			return nil, nil, nil, false, fmt.Errorf(
				"isl: iterator %q is unbounded under the given bindings; cannot instantiate", name)
		}
		lo[d], hi[d] = l.Ceil(), h.Floor()
		if lo[d] > hi[d] {
			return sys, nil, nil, true, nil
		}
	}
	var vol int64 = 1
	for d := range lo {
		vol *= hi[d] - lo[d] + 1
		if vol > maxInstantiatePoints {
			return nil, nil, nil, false, fmt.Errorf(
				"isl: instantiated domain exceeds %d points", maxInstantiatePoints)
		}
	}
	return sys, lo, hi, false, nil
}

// satisfies reports whether the iterator point meets every constraint
// under the parameter values.
func satisfies(cons []AffCon, pt, pvals []int64) bool {
	for _, c := range cons {
		v := c.Expr.eval(pt, pvals)
		if c.Eq && v != 0 || !c.Eq && v < 0 {
			return false
		}
	}
	return true
}

// foreachPoint enumerates the integer box [lo, hi] in lexicographic
// order, calling fn on points satisfying the constraints.
func foreachPoint(lo, hi []int64, cons []AffCon, pvals []int64, fn func(pt []int64)) {
	pt := make([]int64, len(lo))
	var rec func(d int)
	rec = func(d int) {
		if d == len(lo) {
			if satisfies(cons, pt, pvals) {
				fn(pt)
			}
			return
		}
		for v := lo[d]; v <= hi[d]; v++ {
			pt[d] = v
			rec(d + 1)
		}
	}
	rec(0)
}

// Instantiate binds the parameters and enumerates the now-bounded
// domain into an extensional Set. Every declared parameter must be
// bound; a domain left unbounded (or too large) by the bindings is an
// error rather than a partial result.
func (p *ParamSet) Instantiate(bind map[string]int) (*Set, error) {
	pvals, err := bindParams(p.Params, bind)
	if err != nil {
		return nil, err
	}
	set := NewSet(NewSpace(p.Name, len(p.Iters)))
	_, lo, hi, empty, err := boundSystem(p.Iters, p.Cons, pvals)
	if err != nil || empty {
		return set, err
	}
	foreachPoint(lo, hi, p.Cons, pvals, func(pt []int64) {
		v := make(Vec, len(pt))
		for d, x := range pt {
			v[d] = int(x)
		}
		set.Add(v)
	})
	return set, nil
}

// Instantiate binds the parameters and enumerates the relation into an
// extensional Map: one output tuple per domain point.
func (m *ParamMap) Instantiate(bind map[string]int) (*Map, error) {
	pvals, err := bindParams(m.Params, bind)
	if err != nil {
		return nil, err
	}
	out := NewMap(NewSpace(m.InName, len(m.Iters)), NewSpace(m.OutName, len(m.Outs)))
	_, lo, hi, empty, err := boundSystem(m.Iters, m.Cons, pvals)
	if err != nil || empty {
		return out, err
	}
	foreachPoint(lo, hi, m.Cons, pvals, func(pt []int64) {
		in := make(Vec, len(pt))
		for d, x := range pt {
			in[d] = int(x)
		}
		o := make(Vec, len(m.Outs))
		for d, e := range m.Outs {
			o[d] = int(e.eval(pt, pvals))
		}
		out.Add(in, o)
	})
	return out, nil
}
