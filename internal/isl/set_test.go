package isl

import (
	"testing"
)

func TestVecCmp(t *testing.T) {
	cases := []struct {
		a, b Vec
		want int
	}{
		{NewVec(0, 0), NewVec(0, 0), 0},
		{NewVec(0, 1), NewVec(0, 2), -1},
		{NewVec(1, 0), NewVec(0, 9), 1},
		{NewVec(2, 3, 4), NewVec(2, 3, 5), -1},
		{NewVec(-1), NewVec(1), -1},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Cmp(c.a); got != -c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestVecCmpPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewVec(1).Cmp(NewVec(1, 2))
}

func TestVecCloneIndependence(t *testing.T) {
	v := NewVec(1, 2)
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliases original: %v", v)
	}
}

func TestVecConcat(t *testing.T) {
	v := NewVec(1, 2).Concat(NewVec(3))
	if !v.Eq(NewVec(1, 2, 3)) {
		t.Fatalf("Concat = %v", v)
	}
}

func TestSetBasics(t *testing.T) {
	sp := NewSpace("S", 2)
	s := NewSet(sp)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	s.Add(NewVec(1, 2))
	s.Add(NewVec(0, 5))
	s.Add(NewVec(1, 2)) // duplicate
	if s.Card() != 2 {
		t.Fatalf("Card = %d, want 2", s.Card())
	}
	if !s.Contains(NewVec(0, 5)) || s.Contains(NewVec(5, 0)) {
		t.Fatal("Contains wrong")
	}
	es := s.Elements()
	if !es[0].Eq(NewVec(0, 5)) || !es[1].Eq(NewVec(1, 2)) {
		t.Fatalf("Elements not lex sorted: %v", es)
	}
}

func TestSetAddWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSet(NewSpace("S", 2)).Add(NewVec(1))
}

func TestSetAlgebra(t *testing.T) {
	sp := NewSpace("S", 1)
	a := SetOf(sp, NewVec(1), NewVec(2), NewVec(3))
	b := SetOf(sp, NewVec(2), NewVec(3), NewVec(4))

	if got := a.Union(b); got.Card() != 4 {
		t.Errorf("Union card = %d, want 4", got.Card())
	}
	if got := a.Intersect(b); got.Card() != 2 || !got.Contains(NewVec(2)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b); got.Card() != 1 || !got.Contains(NewVec(1)) {
		t.Errorf("Subtract = %v", got)
	}
	if a.Equal(b) {
		t.Error("Equal(a,b) true")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal")
	}
	if !a.Intersect(b).IsSubset(a) || !a.Intersect(b).IsSubset(b) {
		t.Error("intersection not subset")
	}
	if a.IsSubset(b) {
		t.Error("a subset of b")
	}
}

func TestSetLexminLexmax(t *testing.T) {
	sp := NewSpace("S", 2)
	s := SetOf(sp, NewVec(3, 1), NewVec(0, 9), NewVec(3, 0))
	mn, ok := s.Lexmin()
	if !ok || !mn.Eq(NewVec(0, 9)) {
		t.Errorf("Lexmin = %v, %v", mn, ok)
	}
	mx, ok := s.Lexmax()
	if !ok || !mx.Eq(NewVec(3, 1)) {
		t.Errorf("Lexmax = %v, %v", mx, ok)
	}
	empty := NewSet(sp)
	if _, ok := empty.Lexmin(); ok {
		t.Error("Lexmin of empty set reported ok")
	}
}

func TestSetFilterForeach(t *testing.T) {
	sp := NewSpace("S", 1)
	s := SetOf(sp, NewVec(0), NewVec(1), NewVec(2), NewVec(3))
	even := s.Filter(func(v Vec) bool { return v[0]%2 == 0 })
	if even.Card() != 2 {
		t.Fatalf("Filter card = %d", even.Card())
	}
	var seen []int
	s.Foreach(func(v Vec) bool {
		seen = append(seen, v[0])
		return v[0] < 2
	})
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("Foreach early stop wrong: %v", seen)
	}
}

func TestSetString(t *testing.T) {
	sp := NewSpace("S", 2)
	s := SetOf(sp, NewVec(1, 0), NewVec(0, 1))
	want := "{ S[0, 1]; S[1, 0] }"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSetAddAfterElementsInvalidation(t *testing.T) {
	sp := NewSpace("S", 1)
	s := SetOf(sp, NewVec(5))
	_ = s.Elements()
	s.Add(NewVec(1))
	es := s.Elements()
	if len(es) != 2 || !es[0].Eq(NewVec(1)) {
		t.Fatalf("sorted cache not invalidated: %v", es)
	}
}
