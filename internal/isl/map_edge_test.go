package isl

import (
	"fmt"
	"math/rand"
	"testing"
)

// Edge-case coverage for the relation algebra: empty operands,
// single-element and zero-dimensional spaces, and maps built in
// adversarial (unsorted, duplicated) order then frozen. Every test
// closes by asserting the sorted observable invariant, so it pins both
// backends' lazy-normalization paths.

// assertSortedInvariant checks the canonical enumeration contract:
// ForeachEntry visits inputs in strictly ascending lexicographic order,
// each with a strictly ascending, duplicate-free output column, and
// Pairs/Card/String agree with that enumeration.
func assertSortedInvariant(t *testing.T, m *Map) {
	t.Helper()
	var prevIn Vec
	pairs := 0
	m.ForeachEntry(func(in Vec, outs []Vec) bool {
		if prevIn != nil && prevIn.Cmp(in) >= 0 {
			t.Fatalf("inputs out of order: %v then %v", prevIn, in)
		}
		prevIn = in
		if len(outs) == 0 {
			t.Fatalf("input %v has an empty output column", in)
		}
		for i := 1; i < len(outs); i++ {
			if outs[i-1].Cmp(outs[i]) >= 0 {
				t.Fatalf("outputs of %v out of order: %v then %v", in, outs[i-1], outs[i])
			}
		}
		pairs += len(outs)
		return true
	})
	if got := m.Card(); got != pairs {
		t.Fatalf("Card() = %d, enumeration has %d pairs", got, pairs)
	}
	if got := len(m.Pairs()); got != pairs {
		t.Fatalf("len(Pairs()) = %d, enumeration has %d pairs", got, pairs)
	}
}

func assertSetSorted(t *testing.T, s *Set) {
	t.Helper()
	es := s.Elements()
	for i := 1; i < len(es); i++ {
		if es[i-1].Cmp(es[i]) >= 0 {
			t.Fatalf("elements out of order: %v then %v", es[i-1], es[i])
		}
	}
	if s.Card() != len(es) {
		t.Fatalf("Card() = %d, Elements has %d", s.Card(), len(es))
	}
}

func TestMapEdgeEmptyOperands(t *testing.T) {
	spA := NewSpace("EA", 2)
	spB := NewSpace("EB", 2)
	empty := NewMap(spA, spB)
	emptyBA := NewMap(spB, spA)
	emptyAA := NewMap(spA, spA)

	m := NewMap(spA, spB)
	m.Add(NewVec(1, 0), NewVec(0, 1))
	m.Add(NewVec(0, 0), NewVec(2, 2))

	if !empty.IsEmpty() || empty.Card() != 0 {
		t.Fatal("fresh map not empty")
	}
	if got := empty.String(); got != "{  }" {
		t.Fatalf("empty String = %q", got)
	}
	for name, r := range map[string]*Map{
		"empty∪m":           empty.Union(m),
		"m∪empty":           m.Union(empty),
		"empty∩m":           empty.Intersect(m),
		"m∩empty":           m.Intersect(empty),
		"empty\\m":          empty.Subtract(m),
		"m\\m":              m.Subtract(m),
		"empty⁻¹":           emptyBA.Inverse(),
		"compose(empty, m)": Compose(emptyBA, m),
		"compose(m, empty)": Compose(m, emptyAA),
		"lexmax(empty)":     empty.LexmaxPerIn(),
		"lexmin(empty)":     empty.LexminPerIn(),
		"freeze(empty)":     NewMap(spA, spB).Freeze(),
	} {
		assertSortedInvariant(t, r)
		switch name {
		case "empty∪m", "m∪empty":
			if !r.Equal(m) {
				t.Fatalf("%s != m", name)
			}
		default:
			if !r.IsEmpty() {
				t.Fatalf("%s not empty: %s", name, r)
			}
		}
	}
	if got := empty.ApplySet(m.Domain()); !got.IsEmpty() {
		t.Fatalf("empty.ApplySet = %s", got)
	}
	if got := m.ApplySet(NewSet(spA)); !got.IsEmpty() {
		t.Fatalf("m.ApplySet(∅) = %s", got)
	}
	if got := m.IntersectDomain(NewSet(spA)); !got.IsEmpty() {
		t.Fatalf("m.IntersectDomain(∅) = %s", got)
	}
	if got := m.IntersectRange(NewSet(spB)); !got.IsEmpty() {
		t.Fatalf("m.IntersectRange(∅) = %s", got)
	}
	if got := m.Lookup(NewVec(9, 9)); got != nil {
		t.Fatalf("Lookup of absent input = %v", got)
	}
	if !empty.IsSingleValued() || !empty.IsInjective() {
		t.Fatal("empty map must be single-valued and injective")
	}
}

func TestMapEdgeSingleElementSpaces(t *testing.T) {
	// Zero-dimensional spaces have exactly one tuple: the empty vector.
	sp0a := NewSpace("Z0A", 0)
	sp0b := NewSpace("Z0B", 0)
	unit := NewVec()

	s := SetOf(sp0a, unit)
	assertSetSorted(t, s)
	if mn, ok := s.Lexmin(); !ok || !mn.Eq(unit) {
		t.Fatalf("Lexmin of unit set = %v, %v", mn, ok)
	}
	if mx, ok := s.Lexmax(); !ok || !mx.Eq(unit) {
		t.Fatalf("Lexmax of unit set = %v, %v", mx, ok)
	}
	if !s.Union(s).Equal(s) || !s.Intersect(s).Equal(s) || !s.Subtract(s).IsEmpty() {
		t.Fatal("unit set algebra broken")
	}

	m := NewMap(sp0a, sp0b)
	m.Add(unit, unit)
	m.Add(unit, unit) // duplicate pair collapses
	assertSortedInvariant(t, m)
	if m.Card() != 1 {
		t.Fatalf("unit map Card = %d", m.Card())
	}
	if !m.IsSingleValued() || !m.IsInjective() {
		t.Fatal("unit map must be single-valued and injective")
	}
	if got := m.Image(unit); !got.Eq(unit) {
		t.Fatalf("Image = %v", got)
	}
	inv := m.Inverse()
	assertSortedInvariant(t, inv)
	if !Compose(inv, m).Equal(Identity(s.rename(sp0a))) {
		t.Fatal("m⁻¹∘m != identity on unit space")
	}
	if got := m.LexmaxPerIn(); !got.Equal(m) {
		t.Fatalf("lexmax(unit) = %s", got)
	}

	// One-dimensional singleton domain and range.
	spX := NewSpace("X1", 1)
	spY := NewSpace("Y1", 1)
	one := NewMap(spX, spY)
	one.Add(NewVec(3), NewVec(7))
	assertSortedInvariant(t, one)
	if got := one.ApplySet(SetOf(spX, NewVec(3))); got.Card() != 1 || !got.Contains(NewVec(7)) {
		t.Fatalf("singleton ApplySet = %s", got)
	}
	if got := one.Domain(); got.Card() != 1 {
		t.Fatalf("singleton Domain = %s", got)
	}
	assertSortedInvariant(t, one.Inverse())
}

// rename gives the test a same-space set for the identity comparison
// above without widening the public API.
func (s *Set) rename(sp Space) *Set {
	if s.space == sp {
		return s
	}
	r := NewSet(sp)
	s.Foreach(func(v Vec) bool { r.Add(v); return true })
	return r
}

func TestMapEdgeUnsortedBuildThenFreeze(t *testing.T) {
	spA := NewSpace("UA", 2)
	spB := NewSpace("UB", 2)
	r := rand.New(rand.NewSource(7))

	// Build the same relation three ways: ascending, descending, and
	// shuffled with duplicate pairs, interleaved with observations that
	// force normalization mid-build.
	var pairs [][2]Vec
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			pairs = append(pairs, [2]Vec{NewVec(i, j), NewVec(j, i)})
		}
	}
	build := func(order []int, observe bool) *Map {
		m := NewMap(spA, spB)
		for k, idx := range order {
			m.Add(pairs[idx][0], pairs[idx][1])
			if observe && k%5 == 0 {
				_ = m.Card()
			}
			if k%3 == 0 { // duplicate some inserts
				m.Add(pairs[idx][0], pairs[idx][1])
			}
		}
		return m
	}
	asc := make([]int, len(pairs))
	desc := make([]int, len(pairs))
	for i := range pairs {
		asc[i] = i
		desc[i] = len(pairs) - 1 - i
	}
	shuffled := r.Perm(len(pairs))

	mAsc := build(asc, false).Freeze()
	mDesc := build(desc, true).Freeze()
	mShuf := build(shuffled, true).Freeze()

	for name, m := range map[string]*Map{"asc": mAsc, "desc": mDesc, "shuffled": mShuf} {
		assertSortedInvariant(t, m)
		if m.Card() != len(pairs) {
			t.Fatalf("%s: Card = %d, want %d", name, m.Card(), len(pairs))
		}
		if !m.Equal(mAsc) {
			t.Fatalf("%s build differs from ascending build", name)
		}
		if m.String() != mAsc.String() {
			t.Fatalf("%s String differs", name)
		}
	}

	// The sorted invariant survives every derived operation, and Add
	// after Freeze re-dirties cleanly.
	ops := map[string]*Map{
		"inverse":   mShuf.Inverse(),
		"union":     mShuf.Union(mDesc.Inverse().Inverse()),
		"intersect": mShuf.Intersect(mAsc),
		"subtract":  mShuf.Subtract(mAsc),
		"compose":   Compose(mShuf.Inverse(), mShuf),
		"lexmax":    mShuf.LexmaxPerIn(),
		"lexmin":    mShuf.LexminPerIn(),
	}
	for name, m := range ops {
		assertSortedInvariant(t, m)
		_ = name
	}
	post := mShuf.Clone()
	post.Add(NewVec(0, 0), NewVec(9, 9)) // out-of-order after freeze
	post.Add(NewVec(9, 9), NewVec(0, 0))
	assertSortedInvariant(t, post)
	if post.Card() != len(pairs)+2 {
		t.Fatalf("post-freeze adds: Card = %d, want %d", post.Card(), len(pairs)+2)
	}

	// Sets: unsorted build then freeze holds the same invariant.
	set := NewSet(spA)
	for _, idx := range shuffled {
		set.Add(pairs[idx][0])
		set.Add(pairs[idx][0])
	}
	set.Freeze()
	assertSetSorted(t, set)
	if set.Card() != 24 {
		t.Fatalf("set Card = %d", set.Card())
	}

	// Lookup on an unsorted-then-frozen map returns sorted outputs for
	// every input.
	for i := 0; i < 6; i++ {
		outs := mShuf.Lookup(NewVec(i, 0))
		if len(outs) != 1 || !outs[0].Eq(NewVec(0, i)) {
			t.Fatalf("Lookup(%d,0) = %v", i, outs)
		}
	}
	_ = fmt.Sprintf("%s", mShuf) // String on frozen map must not panic
}
