package isl

import (
	"sort"
	"strconv"
	"strings"
)

// Vec is an integer tuple, one point of an iteration domain or of a
// memory-index space. Vectors are compared lexicographically.
type Vec []int

// NewVec returns a fresh vector holding the given coordinates.
func NewVec(coords ...int) Vec {
	v := make(Vec, len(coords))
	copy(v, coords)
	return v
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Cmp compares v and w lexicographically and returns -1, 0, or +1.
// Both vectors must have the same dimension.
func (v Vec) Cmp(w Vec) int {
	if len(v) != len(w) {
		panic("isl: Vec.Cmp dimension mismatch: " + v.String() + " vs " + w.String())
	}
	for i := range v {
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	return 0
}

// Eq reports whether v and w are identical tuples.
func (v Vec) Eq(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation of v and w as a new vector.
func (v Vec) Concat(w Vec) Vec {
	r := make(Vec, 0, len(v)+len(w))
	r = append(r, v...)
	r = append(r, w...)
	return r
}

// String renders v as "[a, b, ...]".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(x))
	}
	b.WriteByte(']')
	return b.String()
}

// LexMin returns the lexicographically smaller of v and w.
func LexMin(v, w Vec) Vec {
	if v.Cmp(w) <= 0 {
		return v
	}
	return w
}

// LexMax returns the lexicographically larger of v and w.
func LexMax(v, w Vec) Vec {
	if v.Cmp(w) >= 0 {
		return v
	}
	return w
}

// sortVecs sorts vs in place in lexicographic order.
func sortVecs(vs []Vec) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Cmp(vs[j]) < 0 })
}
