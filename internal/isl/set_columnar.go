//go:build !islhashmap

package isl

import "slices"

// BackendName identifies the isl core representation this binary was
// built with; benchmarks and the cross-backend tests label their
// output with it. The default build uses the sorted-id columnar
// backend; -tags islhashmap selects the hash-map backend it replaced
// (kept for differential testing, see docs/PERFORMANCE.md).
const BackendName = "columnar"

// Set is a finite set of integer tuples in a single tuple space.
// The zero value is not usable; construct sets with NewSet or the
// operations on existing sets. Sets are immutable once built except
// through Add, which callers must not use after sharing a set.
//
// Representation (the columnar backend): elements are canonicalized
// through the space's intern table and held as one id column — a
// []uint32 sorted ascending in the lexicographic order of the
// canonical vectors. The set algebra runs as merge scans over the
// columns of both operands (one result allocation, no hashing), the
// lexicographic extremes are the column's endpoints, and Elements
// serves a cached vector arena aligned with the column.
//
// Builds that insert in lexicographic order (the dominant pattern:
// domain construction and every algebra result) keep the column
// sorted as they append; an out-of-order Add only flips a dirty bit,
// and the column is re-sorted and deduplicated lazily at the next
// observation.
type Set struct {
	space Space
	t     *internTable
	ids   []uint32
	// vecs is the canonical-vector arena aligned with ids; nil when
	// stale. It is replaced, never mutated in place, so clones may
	// share it.
	vecs []Vec
	// last is the canonical vector of ids[len-1] when known; it keeps
	// in-order appends from re-reading the table.
	last Vec
	// dirty marks a column that is unsorted and may hold duplicates.
	dirty bool
}

// NewSet returns an empty set in the given space.
func NewSet(space Space) *Set {
	return &Set{space: space, t: tableFor(space)}
}

// SetOf builds a set in the given space from the listed tuples.
func SetOf(space Space, vs ...Vec) *Set {
	s := NewSet(space)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Space returns the tuple space of s.
func (s *Set) Space() Space { return s.space }

// addIDVec inserts an id already canonical in s's table; cv is its
// canonical vector when the caller has it (nil means unknown).
func (s *Set) addIDVec(id uint32, cv Vec) {
	n := len(s.ids)
	if n == 0 {
		s.ids = append(s.ids, id)
		s.vecs, s.last, s.dirty = nil, cv, false
		return
	}
	if s.ids[n-1] == id {
		return // re-insert of the current maximum: no-op
	}
	s.vecs = nil
	if s.dirty {
		s.ids = append(s.ids, id)
		return
	}
	if cv == nil {
		cv = s.t.vec(id)
	}
	if s.last == nil {
		s.last = s.t.vec(s.ids[n-1])
	}
	if cv.Cmp(s.last) > 0 {
		s.last = cv // stays sorted: the common in-order append
	} else {
		// Out of order (equal is impossible: equal vectors intern to
		// equal ids). Sort and deduplicate lazily.
		s.dirty, s.last = true, nil
	}
	s.ids = append(s.ids, id)
}

// Add inserts v into s. It panics if v has the wrong dimension. The
// vector is copied (interned); the caller keeps ownership of v.
func (s *Set) Add(v Vec) {
	s.space.checkVec(v)
	id, cv := s.t.intern(v)
	s.addIDVec(id, cv)
}

// normalize establishes the column invariant: sorted ascending by
// vector order, duplicate-free.
func (s *Set) normalize() {
	if !s.dirty {
		return
	}
	vt := s.t.snapshot()
	sortIDsByVec(s.ids, vt)
	w := 0
	for i, id := range s.ids {
		if i > 0 && s.ids[w-1] == id {
			continue
		}
		s.ids[w] = id
		w++
	}
	s.ids = s.ids[:w]
	s.vecs, s.dirty = nil, false
	if w > 0 {
		s.last = vt[s.ids[w-1]]
	} else {
		s.last = nil
	}
}

// ensureVecs materializes the vector arena.
func (s *Set) ensureVecs() {
	s.normalize()
	if s.vecs != nil || len(s.ids) == 0 {
		return
	}
	s.vecs = s.t.appendVecs(make([]Vec, 0, len(s.ids)), s.ids)
}

// view returns the id column and its aligned canonical vectors in
// lexicographic order. Both slices are internal and read-only.
func (s *Set) view() ([]uint32, []Vec) {
	s.ensureVecs()
	return s.ids, s.vecs
}

// Contains reports whether v is an element of s.
func (s *Set) Contains(v Vec) bool {
	if len(v) != s.space.Dim {
		return false
	}
	id, ok := s.t.lookup(v)
	if !ok {
		return false
	}
	s.normalize()
	vt := s.t.snapshot()
	i := searchIDs(s.ids, 0, vt[id], vt)
	return i < len(s.ids) && s.ids[i] == id
}

// Card returns the number of elements in s.
func (s *Set) Card() int {
	s.normalize()
	return len(s.ids)
}

// IsEmpty reports whether s has no elements.
func (s *Set) IsEmpty() bool { return len(s.ids) == 0 }

// Elements returns the elements of s in lexicographic order. The
// returned vectors are canonical interned data: the slice and its
// contents are strictly read-only. The ordering is computed once and
// cached.
func (s *Set) Elements() []Vec {
	s.ensureVecs()
	return s.vecs
}

// elementIDs returns the element ids aligned with Elements.
func (s *Set) elementIDs() []uint32 {
	s.normalize()
	return s.ids
}

// Freeze materializes the element ordering cache and returns s. A
// frozen set serves Elements, Foreach, Lexmin/Lexmax, and the set
// algebra without internal mutation, so it may be shared by
// concurrent readers (until the next Add).
func (s *Set) Freeze() *Set {
	s.ensureVecs()
	return s
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	return &Set{
		space: s.space,
		t:     s.t,
		ids:   slices.Clone(s.ids),
		vecs:  s.vecs, // replaced, never edited in place
		last:  s.last,
		dirty: s.dirty,
	}
}

// Union returns s ∪ t. Both sets must live in the same space.
func (s *Set) Union(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Union")
	s.normalize()
	t.normalize()
	vt := s.t.snapshot()
	r := NewSet(s.space)
	r.ids = mergeUnionIDs(make([]uint32, 0, len(s.ids)+len(t.ids)), s.ids, t.ids, vt)
	return r
}

// Intersect returns s ∩ t. Both sets must live in the same space.
func (s *Set) Intersect(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Intersect")
	s.normalize()
	t.normalize()
	vt := s.t.snapshot()
	r := NewSet(s.space)
	n := min(len(s.ids), len(t.ids))
	if n > 0 {
		r.ids = mergeIntersectIDs(make([]uint32, 0, n), s.ids, t.ids, vt)
	}
	return r
}

// Subtract returns s \ t. Both sets must live in the same space.
func (s *Set) Subtract(t *Set) *Set {
	s.space.checkSame(t.space, "Set.Subtract")
	s.normalize()
	t.normalize()
	vt := s.t.snapshot()
	r := NewSet(s.space)
	if len(s.ids) > 0 {
		r.ids = mergeSubtractIDs(make([]uint32, 0, len(s.ids)), s.ids, t.ids, vt)
	}
	return r
}

// Equal reports whether s and t contain exactly the same tuples in the
// same space. On normalized columns this is one id-column comparison.
func (s *Set) Equal(t *Set) bool {
	if s.space != t.space {
		return false
	}
	s.normalize()
	t.normalize()
	return slices.Equal(s.ids, t.ids)
}

// IsSubset reports whether every element of s is in t.
func (s *Set) IsSubset(t *Set) bool {
	if s.space != t.space {
		return false
	}
	s.normalize()
	t.normalize()
	if len(s.ids) > len(t.ids) {
		return false
	}
	return subsetIDs(s.ids, t.ids, s.t.snapshot())
}

// Lexmin returns the lexicographically smallest element of s and true,
// or nil and false if s is empty. On a normalized column this is an
// O(1) endpoint read.
func (s *Set) Lexmin() (Vec, bool) {
	s.normalize()
	if len(s.ids) == 0 {
		return nil, false
	}
	return s.t.vec(s.ids[0]), true
}

// Lexmax returns the lexicographically largest element of s and true,
// or nil and false if s is empty. On a normalized column this is an
// O(1) endpoint read.
func (s *Set) Lexmax() (Vec, bool) {
	s.normalize()
	if len(s.ids) == 0 {
		return nil, false
	}
	if s.last == nil {
		s.last = s.t.vec(s.ids[len(s.ids)-1])
	}
	return s.last, true
}

// Filter returns the subset of s whose elements satisfy pred.
func (s *Set) Filter(pred func(Vec) bool) *Set {
	ids, vecs := s.view()
	r := NewSet(s.space)
	for i, v := range vecs {
		if pred(v) {
			r.ids = append(r.ids, ids[i]) // scan order is sorted order
		}
	}
	return r
}
