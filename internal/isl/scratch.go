package isl

import (
	"sync"
	"sync/atomic"
)

// scratch is a bundle of reusable buffers the columnar relation
// algebra borrows for one operation: id accumulators for k-way merges
// (a, b), and a permutation buffer for normalization (perm). Buffers
// grow on demand and keep their capacity when returned, so a steady
// detection workload settles into zero scratch allocations.
//
// Lifecycle: every operation that needs scratch calls getScratch and
// releases it before returning, so buffers never outlive one isl call
// and a detection phase ends with every buffer back in the pool. The
// pool is a sync.Pool: memory is reclaimed by the GC between
// detections, and the reuse rate is observable through ScratchStats
// (surfaced as the detect.scratch_reuse counter, see
// docs/OBSERVABILITY.md).
type scratch struct {
	a, b []uint32
	perm []uint32
	used bool // set after first use; marks a pooled (reused) buffer
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

var (
	scratchGets   atomic.Uint64
	scratchReuses atomic.Uint64
)

// getScratch borrows a scratch bundle from the pool.
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	scratchGets.Add(1)
	if s.used {
		scratchReuses.Add(1)
	}
	s.used = true
	return s
}

// release returns s to the pool. The caller must not touch s or any
// slice borrowed from it afterwards.
func (s *scratch) release() {
	s.a, s.b, s.perm = s.a[:0], s.b[:0], s.perm[:0]
	scratchPool.Put(s)
}

// ScratchStats reports how many scratch-buffer acquisitions the
// relation algebra has made process-wide and how many of those reused
// a pooled buffer instead of allocating a fresh one. The counters are
// monotone; callers diff them around a workload to measure its reuse
// rate.
func ScratchStats() (gets, reuses uint64) {
	return scratchGets.Load(), scratchReuses.Load()
}
