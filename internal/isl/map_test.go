package isl

import (
	"testing"
)

func mkMap(t *testing.T, in, out Space, pairs ...[2]Vec) *Map {
	t.Helper()
	m := NewMap(in, out)
	for _, p := range pairs {
		m.Add(p[0], p[1])
	}
	return m
}

func TestMapBasics(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(10)},
		[2]Vec{NewVec(0), NewVec(11)},
		[2]Vec{NewVec(1), NewVec(11)},
	)
	if m.Card() != 3 {
		t.Fatalf("Card = %d, want 3", m.Card())
	}
	if !m.Contains(NewVec(0), NewVec(11)) || m.Contains(NewVec(1), NewVec(10)) {
		t.Fatal("Contains wrong")
	}
	if got := m.Lookup(NewVec(0)); len(got) != 2 || !got[0].Eq(NewVec(10)) {
		t.Fatalf("Lookup = %v", got)
	}
	if got := m.Domain(); got.Card() != 2 {
		t.Fatalf("Domain = %v", got)
	}
	if got := m.Range(); got.Card() != 2 {
		t.Fatalf("Range = %v", got)
	}
}

func TestMapInverseRoundTrip(t *testing.T) {
	in, out := NewSpace("S", 2), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0, 0), NewVec(3)},
		[2]Vec{NewVec(0, 1), NewVec(3)},
		[2]Vec{NewVec(1, 0), NewVec(4)},
	)
	inv := m.Inverse()
	if inv.InSpace() != out || inv.OutSpace() != in {
		t.Fatal("Inverse spaces wrong")
	}
	if got := inv.Lookup(NewVec(3)); len(got) != 2 {
		t.Fatalf("Inverse Lookup = %v", got)
	}
	if !inv.Inverse().Equal(m) {
		t.Fatal("double inverse differs")
	}
}

func TestMapCompose(t *testing.T) {
	a, b, c := NewSpace("A", 1), NewSpace("B", 1), NewSpace("C", 1)
	// inner: A -> B, outer: B -> C; Compose(outer, inner): A -> C.
	inner := mkMap(t, a, b,
		[2]Vec{NewVec(0), NewVec(1)},
		[2]Vec{NewVec(1), NewVec(2)},
	)
	outer := mkMap(t, b, c,
		[2]Vec{NewVec(1), NewVec(7)},
		[2]Vec{NewVec(1), NewVec(8)},
		[2]Vec{NewVec(3), NewVec(9)},
	)
	got := Compose(outer, inner)
	if got.InSpace() != a || got.OutSpace() != c {
		t.Fatal("Compose spaces wrong")
	}
	if got.Card() != 2 || !got.Contains(NewVec(0), NewVec(7)) || !got.Contains(NewVec(0), NewVec(8)) {
		t.Fatalf("Compose = %v", got)
	}
	if outs := got.Lookup(NewVec(1)); len(outs) != 0 {
		t.Fatalf("Compose related 1: %v", outs)
	}
}

func TestMapAlgebra(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(0)},
		[2]Vec{NewVec(1), NewVec(1)},
	)
	n := mkMap(t, in, out,
		[2]Vec{NewVec(1), NewVec(1)},
		[2]Vec{NewVec(2), NewVec(2)},
	)
	if got := m.Union(n); got.Card() != 3 {
		t.Errorf("Union card = %d", got.Card())
	}
	if got := m.Intersect(n); got.Card() != 1 || !got.Contains(NewVec(1), NewVec(1)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := m.Subtract(n); got.Card() != 1 || !got.Contains(NewVec(0), NewVec(0)) {
		t.Errorf("Subtract = %v", got)
	}
	if m.Equal(n) || !m.Equal(m.Clone()) {
		t.Error("Equal wrong")
	}
}

func TestMapApplySetAndIntersections(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(5)},
		[2]Vec{NewVec(1), NewVec(6)},
		[2]Vec{NewVec(2), NewVec(7)},
	)
	s := SetOf(in, NewVec(0), NewVec(2), NewVec(9))
	img := m.ApplySet(s)
	if img.Card() != 2 || !img.Contains(NewVec(5)) || !img.Contains(NewVec(7)) {
		t.Fatalf("ApplySet = %v", img)
	}
	dm := m.IntersectDomain(s)
	if dm.Card() != 2 || dm.Contains(NewVec(1), NewVec(6)) {
		t.Fatalf("IntersectDomain = %v", dm)
	}
	rm := m.IntersectRange(SetOf(out, NewVec(6)))
	if rm.Card() != 1 || !rm.Contains(NewVec(1), NewVec(6)) {
		t.Fatalf("IntersectRange = %v", rm)
	}
}

func TestMapLexmaxLexminPerIn(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 2)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(1, 5)},
		[2]Vec{NewVec(0), NewVec(2, 0)},
		[2]Vec{NewVec(1), NewVec(0, 0)},
	)
	mx := m.LexmaxPerIn()
	if !mx.IsSingleValued() {
		t.Fatal("LexmaxPerIn not single-valued")
	}
	if got := mx.Image(NewVec(0)); !got.Eq(NewVec(2, 0)) {
		t.Fatalf("lexmax image = %v", got)
	}
	mn := m.LexminPerIn()
	if got := mn.Image(NewVec(0)); !got.Eq(NewVec(1, 5)) {
		t.Fatalf("lexmin image = %v", got)
	}
}

func TestMapInjectiveSingleValued(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	inj := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(0)},
		[2]Vec{NewVec(1), NewVec(2)},
	)
	if !inj.IsInjective() || !inj.IsSingleValued() {
		t.Error("expected injective, single-valued")
	}
	notInj := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(0)},
		[2]Vec{NewVec(1), NewVec(0)},
	)
	if notInj.IsInjective() {
		t.Error("expected not injective")
	}
	notSV := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(0)},
		[2]Vec{NewVec(0), NewVec(1)},
	)
	if notSV.IsSingleValued() {
		t.Error("expected not single-valued")
	}
}

func TestMapPairsDeterministic(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(2), NewVec(0)},
		[2]Vec{NewVec(0), NewVec(2)},
		[2]Vec{NewVec(0), NewVec(1)},
	)
	ps := m.Pairs()
	if len(ps) != 3 ||
		!ps[0].In.Eq(NewVec(0)) || !ps[0].Out.Eq(NewVec(1)) ||
		!ps[1].In.Eq(NewVec(0)) || !ps[1].Out.Eq(NewVec(2)) ||
		!ps[2].In.Eq(NewVec(2)) {
		t.Fatalf("Pairs = %v", ps)
	}
	want := "{ S[0] -> R[1]; S[0] -> R[2]; S[2] -> R[0] }"
	if got := m.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestMapImagePanicsWhenNotUnique(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	m := mkMap(t, in, out,
		[2]Vec{NewVec(0), NewVec(0)},
		[2]Vec{NewVec(0), NewVec(1)},
	)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Image(NewVec(0))
}

func TestIdentityAndConstantMap(t *testing.T) {
	sp := NewSpace("S", 2)
	s := SetOf(sp, NewVec(0, 0), NewVec(1, 1))
	id := Identity(s)
	if id.Card() != 2 || !id.Contains(NewVec(1, 1), NewVec(1, 1)) {
		t.Fatalf("Identity = %v", id)
	}
	cm := ConstantMap(s, NewSpace("R", 1), NewVec(9))
	if cm.Card() != 2 || !cm.Image(NewVec(0, 0)).Eq(NewVec(9)) {
		t.Fatalf("ConstantMap = %v", cm)
	}
}

func TestLexRelations(t *testing.T) {
	sp := NewSpace("S", 1)
	x := SetOf(sp, NewVec(0), NewVec(1), NewVec(2))
	y := SetOf(sp, NewVec(1), NewVec(2))

	le := LexLE(x, y)
	// 0 -> {1,2}, 1 -> {1,2}, 2 -> {2}
	if le.Card() != 5 {
		t.Fatalf("LexLE card = %d, want 5", le.Card())
	}
	lt := LexLT(x, y)
	if lt.Card() != 3 || lt.Contains(NewVec(1), NewVec(1)) {
		t.Fatalf("LexLT = %v", lt)
	}
	ge := LexGE(x, y)
	if ge.Card() != 3 || !ge.Contains(NewVec(2), NewVec(1)) {
		t.Fatalf("LexGE = %v", ge)
	}
	gt := LexGT(x, y)
	if gt.Card() != 1 || !gt.Contains(NewVec(2), NewVec(1)) {
		t.Fatalf("LexGT = %v", gt)
	}
}

func TestNearestGEMatchesNaive(t *testing.T) {
	sp := NewSpace("S", 2)
	x := NewSet(sp)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			x.Add(NewVec(i, j))
		}
	}
	y := SetOf(sp, NewVec(0, 3), NewVec(2, 2), NewVec(4, 4))
	fast := NearestGE(x, y)
	naive := LexLE(x, y).LexminPerIn()
	if !fast.Equal(naive) {
		t.Fatalf("NearestGE differs from naive:\n fast=%v\nnaive=%v", fast, naive)
	}
	// Elements beyond the max of y have no image.
	if got := fast.Lookup(NewVec(4, 4)); len(got) != 1 {
		t.Fatalf("Lookup(4,4) = %v", got)
	}
	if got := fast.Lookup(NewVec(5, 0)); got != nil {
		t.Fatalf("Lookup outside domain = %v", got)
	}
}

func TestPrefixLexmaxMatchesComposition(t *testing.T) {
	js := NewSpace("J", 1)
	is := NewSpace("I", 1)
	p := mkMap(t, js, is,
		[2]Vec{NewVec(0), NewVec(4)},
		[2]Vec{NewVec(1), NewVec(2)},
		[2]Vec{NewVec(3), NewVec(7)},
		[2]Vec{NewVec(4), NewVec(1)},
	)
	dom := p.Domain()
	// Naive: H = lexmax(P ∘ D') with D' = { (j, j') : j' ≼ j } on dom.
	dprime := LexGE(dom, dom) // j -> j' with j' <= j
	naive := Compose(p, dprime).LexmaxPerIn()
	fast := PrefixLexmax(p, dom)
	if !fast.Equal(naive) {
		t.Fatalf("PrefixLexmax differs:\n fast=%v\nnaive=%v", fast, naive)
	}
	if got := fast.Image(NewVec(4)); !got.Eq(NewVec(7)) {
		t.Fatalf("running max wrong: %v", got)
	}
}
