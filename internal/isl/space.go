package isl

import "fmt"

// Space identifies a named tuple space: the statement or array a tuple
// belongs to together with its dimensionality. Two spaces are the same
// space exactly when both name and dimension agree.
type Space struct {
	Name string // statement or array name, e.g. "S", "R", "A"
	Dim  int    // number of coordinates of tuples in this space
}

// NewSpace returns the space with the given name and dimension.
func NewSpace(name string, dim int) Space {
	if dim < 0 {
		panic("isl: negative space dimension")
	}
	return Space{Name: name, Dim: dim}
}

// Equal reports whether s and t denote the same tuple space.
func (s Space) Equal(t Space) bool { return s == t }

// String renders the space as "Name/dim".
func (s Space) String() string { return fmt.Sprintf("%s/%d", s.Name, s.Dim) }

// checkVec panics unless v has the dimension of s.
func (s Space) checkVec(v Vec) {
	if len(v) != s.Dim {
		panic(fmt.Sprintf("isl: vector %v has dimension %d, space %s expects %d",
			v, len(v), s, s.Dim))
	}
}

// checkSame panics unless s and t are the same space.
func (s Space) checkSame(t Space, op string) {
	if s != t {
		panic(fmt.Sprintf("isl: %s: space mismatch: %s vs %s", op, s, t))
	}
}
