package aff

import (
	"repro/internal/isl"
)

// Recognize attempts to reconstruct a closed-form quasi-affine
// expression for every output dimension of a single-valued explicit
// map: out_d = ⌊(c0 + Σ c_i·in_i) / den⌋ with small integer
// coefficients. It returns one expression per output dimension and
// true on success. The search is exhaustive over the given coefficient
// bounds and every candidate is verified against all pairs, so a
// returned form is exact — this is how the tooling prints pipeline
// maps in the symbolic style of the paper's §4.1 instead of as element
// lists.
func Recognize(m *isl.Map, maxCoef, maxConst, maxDen int) ([]Expr, bool) {
	if m.IsEmpty() || !m.IsSingleValued() {
		return nil, false
	}
	pairs := m.Pairs()
	nIn := m.InSpace().Dim
	nOut := m.OutSpace().Dim
	exprs := make([]Expr, nOut)
	for d := 0; d < nOut; d++ {
		e, ok := recognizeDim(pairs, nIn, d, maxCoef, maxConst, maxDen)
		if !ok {
			return nil, false
		}
		exprs[d] = e
	}
	return exprs, true
}

// recognizeDim searches for out[d]'s closed form. Denominator 1 is
// preferred (plain affine), then increasing denominators.
func recognizeDim(pairs []isl.Pair, nIn, d, maxCoef, maxConst, maxDen int) (Expr, bool) {
	coeffs := make([]int, nIn)
	for den := 1; den <= maxDen; den++ {
		if e, ok := searchCoeffs(pairs, coeffs, 0, nIn, d, maxCoef, maxConst, den); ok {
			return e, true
		}
	}
	return Expr{}, false
}

// searchCoeffs enumerates coefficient vectors depth-first; at the
// leaves it derives the constant from the first pair and verifies.
func searchCoeffs(pairs []isl.Pair, coeffs []int, dim, nIn, d, maxCoef, maxConst, den int) (Expr, bool) {
	if dim == nIn {
		// Derive candidate constants from the first pair: den·out ≤
		// c0 + Σc·in < den·out + den ⇒ c0 ∈ [den·out − Σ, …+den−1].
		first := pairs[0]
		base := 0
		for i, c := range coeffs {
			base += c * first.In[i]
		}
		lo := den*first.Out[d] - base
		hi := lo + den - 1
		for c0 := lo; c0 <= hi; c0++ {
			if c0 < -maxConst || c0 > maxConst {
				continue
			}
			if verify(pairs, coeffs, c0, d, den) {
				return buildExpr(coeffs, c0, den), true
			}
		}
		return Expr{}, false
	}
	for c := -maxCoef; c <= maxCoef; c++ {
		coeffs[dim] = c
		if e, ok := searchCoeffs(pairs, coeffs, dim+1, nIn, d, maxCoef, maxConst, den); ok {
			return e, true
		}
	}
	coeffs[dim] = 0
	return Expr{}, false
}

func verify(pairs []isl.Pair, coeffs []int, c0, d, den int) bool {
	for _, p := range pairs {
		v := c0
		for i, c := range coeffs {
			v += c * p.In[i]
		}
		if den == 1 {
			if v != p.Out[d] {
				return false
			}
			continue
		}
		q := v / den
		if v%den != 0 && (v < 0) != (den < 0) {
			q--
		}
		if q != p.Out[d] {
			return false
		}
	}
	return true
}

func buildExpr(coeffs []int, c0, den int) Expr {
	inner := Linear(c0, coeffs...)
	if den == 1 {
		return inner
	}
	return FloorDiv(inner, den)
}
