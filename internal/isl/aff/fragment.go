package aff

// Fragment recognizers for the symbolic detection backend
// (internal/core's DetectSymbolic): they decide whether an expression
// falls in the per-dimension quasi-affine fragment the closed-form
// pipeline algebra handles, and extract its coefficients. Unlike
// Recognize (which reconstructs forms from explicit maps), these are
// syntactic — an expression outside the recognized shapes reports
// ok=false even when semantically equivalent to one inside — which
// keeps the fragment test O(size of the expression), independent of
// any domain.

// ConstVal reports whether e is a constant expression and returns its
// value.
func (e Expr) ConstVal() (int, bool) {
	if len(e.Divs) != 0 || !allZero(e.Coeffs) {
		return 0, false
	}
	return e.Const, true
}

// linearIn reports whether e is a·x_d + b using no other variable and
// no floor terms.
func (e Expr) linearIn(d int) (a, b int, ok bool) {
	if len(e.Divs) != 0 {
		return 0, 0, false
	}
	for i := 0; i < e.NVars; i++ {
		if i != d && e.coeff(i) != 0 {
			return 0, 0, false
		}
	}
	return e.coeff(d), e.Const, true
}

// Mono1 recognizes the monomial fragment in dimension d:
//
//	a·x_d + b                → (a, b, 1)
//	k + ⌊(a·x_d + b)/den⌋    → (a, b + k·den, den)
//
// i.e. every recognized expression equals ⌊(a·x_d + b)/c⌋ with c ≥ 1.
// Expressions touching other variables, scaling a floor term, or
// nesting floors are rejected.
func (e Expr) Mono1(d int) (a, b, c int, ok bool) {
	switch len(e.Divs) {
	case 0:
		a, b, ok = e.linearIn(d)
		return a, b, 1, ok
	case 1:
		div := e.Divs[0]
		if div.Coef != 1 || div.Den < 1 || !allZero(e.Coeffs) {
			return 0, 0, 0, false
		}
		a, b, ok = div.Inner.linearIn(d)
		if !ok {
			return 0, 0, 0, false
		}
		return a, b + e.Const*div.Den, div.Den, true
	}
	return 0, 0, 0, false
}

// RectBounds reports whether the domain is a pure rectangle — every
// per-dimension bound constant, no extra constraints — and returns the
// half-open [lo, hi) pairs. Degenerate (empty) rectangles report
// ok=false.
func (d *Domain) RectBounds() (lo, hi []int, ok bool) {
	if len(d.Constraints) != 0 {
		return nil, nil, false
	}
	lo = make([]int, len(d.Bounds))
	hi = make([]int, len(d.Bounds))
	for i, b := range d.Bounds {
		l, okL := b.Lo.ConstVal()
		h, okH := b.Hi.ConstVal()
		if !okL || !okH || h <= l {
			return nil, nil, false
		}
		lo[i], hi[i] = l, h
	}
	return lo, hi, true
}
