package aff

import (
	"fmt"

	"repro/internal/isl"
)

// LoopBound gives the half-open range [Lo, Hi) of one loop dimension.
// Both bounds are affine expressions over the *outer* dimensions only
// (an expression of arity d for dimension d; dimension 0 takes arity-0
// expressions, i.e. constants).
type LoopBound struct {
	Lo, Hi Expr
}

// ConstBound is a convenience constructor for dimension d of a nest
// whose bounds are the constants [lo, hi).
func ConstBound(d, lo, hi int) LoopBound {
	return LoopBound{Lo: Const(d, lo), Hi: Const(d, hi)}
}

// Domain symbolically describes a loop-nest iteration domain: an
// ordered list of per-dimension bounds plus optional extra constraints
// over the full point.
type Domain struct {
	Space       isl.Space
	Bounds      []LoopBound  // len == Space.Dim
	Constraints []Constraint // over Space.Dim variables
}

// NewDomain returns a domain for the named statement with the given
// per-dimension bounds.
func NewDomain(name string, bounds ...LoopBound) *Domain {
	d := &Domain{Space: isl.NewSpace(name, len(bounds)), Bounds: bounds}
	for i, b := range bounds {
		if b.Lo.NVars != i || b.Hi.NVars != i {
			panic(fmt.Sprintf("aff: bounds of dimension %d must have arity %d (got lo=%d hi=%d)",
				i, i, b.Lo.NVars, b.Hi.NVars))
		}
	}
	return d
}

// RectDomain returns a domain over the rectangle [0,hi0) × [0,hi1) × …
func RectDomain(name string, his ...int) *Domain {
	bounds := make([]LoopBound, len(his))
	for i, hi := range his {
		bounds[i] = ConstBound(i, 0, hi)
	}
	return NewDomain(name, bounds...)
}

// Where appends extra constraints over the full point and returns the
// domain for chaining.
func (d *Domain) Where(cs ...Constraint) *Domain {
	for _, c := range cs {
		if c.E.NVars != d.Space.Dim {
			panic(fmt.Sprintf("aff: constraint arity %d, domain dimension %d", c.E.NVars, d.Space.Dim))
		}
	}
	d.Constraints = append(d.Constraints, cs...)
	return d
}

// Enumerate walks the loop nest and returns the explicit iteration
// domain. The result is exact: it contains precisely the points a
// sequential execution of the nest would visit that satisfy all extra
// constraints.
func (d *Domain) Enumerate() *isl.Set {
	s := isl.NewSet(d.Space)
	point := make(isl.Vec, d.Space.Dim)
	d.walk(point, 0, s)
	return s
}

func (d *Domain) walk(point isl.Vec, dim int, out *isl.Set) {
	if dim == d.Space.Dim {
		for _, c := range d.Constraints {
			if !c.Satisfied(point) {
				return
			}
		}
		out.Add(point)
		return
	}
	prefix := point[:dim]
	lo := d.Bounds[dim].Lo.Eval(prefix)
	hi := d.Bounds[dim].Hi.Eval(prefix)
	for v := lo; v < hi; v++ {
		point[dim] = v
		d.walk(point, dim+1, out)
	}
}

// Card returns the number of points without materializing them twice.
func (d *Domain) Card() int { return d.Enumerate().Card() }

// Access is an affine access relation: the map sending each point of a
// domain to Exprs-evaluated coordinates in the index space of an array.
type Access struct {
	Array string // array (memory space) name
	Exprs []Expr // one per array dimension, arity == domain dimension
}

// NewAccess builds an access to the named array with the given
// per-dimension index expressions.
func NewAccess(array string, exprs ...Expr) Access {
	return Access{Array: array, Exprs: exprs}
}

// Relation enumerates the access relation for all points of domain.
func (a Access) Relation(domain *isl.Set) *isl.Map {
	out := isl.NewSpace(a.Array, len(a.Exprs))
	m := isl.NewMap(domain.Space(), out)
	idx := make(isl.Vec, len(a.Exprs))
	domain.Foreach(func(p isl.Vec) bool {
		for i, e := range a.Exprs {
			idx[i] = e.Eval(p)
		}
		m.Add(p, idx)
		return true
	})
	return m
}
