package aff

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isl"
)

func TestExprEval(t *testing.T) {
	// 3 + 2*i0 - i1
	e := Linear(3, 2, -1)
	if got := e.Eval(isl.NewVec(5, 4)); got != 9 {
		t.Fatalf("Eval = %d, want 9", got)
	}
	// floor((i0+1)/2)
	f := FloorDiv(Linear(1, 1), 2)
	for i, want := range map[int]int{0: 0, 1: 1, 2: 1, 3: 2, -1: 0, -2: -1, -3: -1} {
		if got := f.Eval(isl.NewVec(i)); got != want {
			t.Errorf("floor((%d+1)/2) = %d, want %d", i, got, want)
		}
	}
}

func TestExprAlgebra(t *testing.T) {
	a := Var(2, 0)          // i0
	b := Var(2, 1).Scale(3) // 3*i1
	s := a.Add(b).AddConst(7)
	if got := s.Eval(isl.NewVec(2, 5)); got != 2+15+7 {
		t.Fatalf("Eval = %d", got)
	}
	d := s.Sub(a)
	if got := d.Eval(isl.NewVec(2, 5)); got != 15+7 {
		t.Fatalf("Sub Eval = %d", got)
	}
	neg := s.Scale(-2)
	if got := neg.Eval(isl.NewVec(2, 5)); got != -2*(2+15+7) {
		t.Fatalf("Scale Eval = %d", got)
	}
}

func TestFloorDivNegativeSemantics(t *testing.T) {
	// Mathematical floor division, not Go truncation.
	f := FloorDiv(Var(1, 0), 3)
	cases := map[int]int{-7: -3, -6: -2, -1: -1, 0: 0, 1: 0, 5: 1, 6: 2}
	for x, want := range cases {
		if got := f.Eval(isl.NewVec(x)); got != want {
			t.Errorf("floor(%d/3) = %d, want %d", x, got, want)
		}
	}
}

func TestVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Var(2, 2)
}

func TestConstraint(t *testing.T) {
	// i0 - i1 >= 0 (i0 >= i1)
	ge := Constraint{E: Linear(0, 1, -1), Kind: GE}
	if !ge.Satisfied(isl.NewVec(3, 2)) || ge.Satisfied(isl.NewVec(1, 2)) {
		t.Error("GE wrong")
	}
	eq := Constraint{E: Linear(0, 1, -1), Kind: EQ}
	if !eq.Satisfied(isl.NewVec(2, 2)) || eq.Satisfied(isl.NewVec(3, 2)) {
		t.Error("EQ wrong")
	}
}

func TestRectDomainEnumerate(t *testing.T) {
	d := RectDomain("S", 3, 2)
	s := d.Enumerate()
	if s.Card() != 6 {
		t.Fatalf("Card = %d, want 6", s.Card())
	}
	if !s.Contains(isl.NewVec(2, 1)) || s.Contains(isl.NewVec(3, 0)) {
		t.Fatal("rect contents wrong")
	}
	if d.Card() != 6 {
		t.Fatal("Card helper wrong")
	}
}

func TestTriangularDomain(t *testing.T) {
	// for i in [0,4): for j in [0, i+1): -> lower triangle.
	d := NewDomain("T",
		ConstBound(0, 0, 4),
		LoopBound{Lo: Const(1, 0), Hi: Linear(1, 1)},
	)
	s := d.Enumerate()
	if s.Card() != 10 {
		t.Fatalf("Card = %d, want 10", s.Card())
	}
	if !s.Contains(isl.NewVec(3, 3)) || s.Contains(isl.NewVec(2, 3)) {
		t.Fatal("triangle contents wrong")
	}
}

func TestDomainWhereConstraint(t *testing.T) {
	// Even-diagonal points of a 4x4 grid.
	d := RectDomain("S", 4, 4).Where(Constraint{
		E:    Linear(0, 1, 1).Sub(FloorDiv(Linear(0, 1, 1), 2).Scale(2)), // (i+j) mod 2
		Kind: EQ,
	})
	s := d.Enumerate()
	if s.Card() != 8 {
		t.Fatalf("Card = %d, want 8", s.Card())
	}
	s.Foreach(func(v isl.Vec) bool {
		if (v[0]+v[1])%2 != 0 {
			t.Errorf("odd point %v in even-constrained domain", v)
		}
		return true
	})
}

func TestEmptyDomain(t *testing.T) {
	d := RectDomain("S", 0, 5)
	if !d.Enumerate().IsEmpty() {
		t.Fatal("expected empty domain")
	}
}

func TestBoundArityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong bound arity")
		}
	}()
	NewDomain("S", LoopBound{Lo: Const(1, 0), Hi: Const(1, 4)}) // dim 0 wants arity 0
}

func TestAccessRelation(t *testing.T) {
	dom := RectDomain("S", 2, 2).Enumerate()
	// A[2*i][j+1]
	acc := NewAccess("A", Linear(0, 2, 0), Linear(1, 0, 1))
	rel := acc.Relation(dom)
	if rel.Card() != 4 {
		t.Fatalf("Card = %d", rel.Card())
	}
	if got := rel.Image(isl.NewVec(1, 0)); !got.Eq(isl.NewVec(2, 1)) {
		t.Fatalf("Image = %v", got)
	}
	if rel.OutSpace() != isl.NewSpace("A", 2) {
		t.Fatal("out space wrong")
	}
}

func TestAccessRelationStridedInjective(t *testing.T) {
	dom := RectDomain("S", 4, 4).Enumerate()
	acc := NewAccess("A", Linear(0, 2, 0), Linear(0, 0, 2)) // A[2i][2j]
	rel := acc.Relation(dom)
	if !rel.IsInjective() {
		t.Fatal("strided write should be injective")
	}
	gather := NewAccess("A", Linear(0, 1, 1)) // A[i+j], 1-D
	if gather.Relation(dom).IsInjective() {
		t.Fatal("i+j access should not be injective")
	}
}

func TestQuickExprLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		coeffsA := make([]int, n)
		coeffsB := make([]int, n)
		for i := range coeffsA {
			coeffsA[i] = r.Intn(11) - 5
			coeffsB[i] = r.Intn(11) - 5
		}
		a := Linear(r.Intn(9)-4, coeffsA...)
		b := Linear(r.Intn(9)-4, coeffsB...)
		x := make(isl.Vec, n)
		for i := range x {
			x[i] = r.Intn(21) - 10
		}
		k := r.Intn(7) - 3
		if a.Add(b).Eval(x) != a.Eval(x)+b.Eval(x) {
			return false
		}
		if a.Sub(b).Eval(x) != a.Eval(x)-b.Eval(x) {
			return false
		}
		if a.Scale(k).Eval(x) != k*a.Eval(x) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloorDivIdentity(t *testing.T) {
	// For d > 0: d*floor(x/d) <= x < d*floor(x/d) + d.
	f := func(x int, dRaw uint8) bool {
		d := int(dRaw%9) + 1
		q := floorDiv(x, d)
		return d*q <= x && x < d*q+d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
