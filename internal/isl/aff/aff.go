// Package aff provides symbolic affine machinery for constructing the
// explicit integer sets and maps of package isl: affine expressions
// (with integer floor division, i.e. quasi-affine terms), constraints,
// rectangular-with-affine-bounds iteration domains in loop-nest form,
// and affine access relations.
//
// This is the construction half of the ISL substitute: iteration
// domains and memory access functions are described symbolically, then
// enumerated once into the exact extensional sets and maps that the
// pipeline-detection algorithms operate on.
package aff

import (
	"fmt"
	"strings"

	"repro/internal/isl"
)

// Expr is a quasi-affine expression over a fixed number of integer
// variables: Const + Σ Coeffs[i]·x_i + Σ Divs[j].Coef·⌊inner_j/den_j⌋.
type Expr struct {
	NVars  int
	Const  int
	Coeffs []int // len == NVars; may be nil meaning all zero
	Divs   []DivTerm
}

// DivTerm is one Coef·⌊Inner/Den⌋ term of a quasi-affine expression.
type DivTerm struct {
	Coef  int
	Inner Expr
	Den   int
}

// Const returns the constant expression c over nvars variables.
func Const(nvars, c int) Expr {
	return Expr{NVars: nvars, Const: c}
}

// Var returns the expression selecting variable i of nvars.
func Var(nvars, i int) Expr {
	if i < 0 || i >= nvars {
		panic(fmt.Sprintf("aff: Var index %d out of range [0,%d)", i, nvars))
	}
	cs := make([]int, nvars)
	cs[i] = 1
	return Expr{NVars: nvars, Coeffs: cs}
}

// Linear returns c + Σ coeffs[i]·x_i.
func Linear(c int, coeffs ...int) Expr {
	cs := make([]int, len(coeffs))
	copy(cs, coeffs)
	return Expr{NVars: len(coeffs), Const: c, Coeffs: cs}
}

func (e Expr) coeff(i int) int {
	if e.Coeffs == nil {
		return 0
	}
	return e.Coeffs[i]
}

func (e Expr) checkArity(f Expr, op string) {
	if e.NVars != f.NVars {
		panic(fmt.Sprintf("aff: %s arity mismatch: %d vs %d", op, e.NVars, f.NVars))
	}
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	e.checkArity(f, "Add")
	cs := make([]int, e.NVars)
	for i := range cs {
		cs[i] = e.coeff(i) + f.coeff(i)
	}
	divs := make([]DivTerm, 0, len(e.Divs)+len(f.Divs))
	divs = append(divs, e.Divs...)
	divs = append(divs, f.Divs...)
	return Expr{NVars: e.NVars, Const: e.Const + f.Const, Coeffs: cs, Divs: divs}
}

// Sub returns e − f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Scale(-1)) }

// Scale returns k·e.
func (e Expr) Scale(k int) Expr {
	cs := make([]int, e.NVars)
	for i := range cs {
		cs[i] = k * e.coeff(i)
	}
	divs := make([]DivTerm, len(e.Divs))
	for i, d := range e.Divs {
		divs[i] = DivTerm{Coef: k * d.Coef, Inner: d.Inner, Den: d.Den}
	}
	return Expr{NVars: e.NVars, Const: k * e.Const, Coeffs: cs, Divs: divs}
}

// AddConst returns e + c.
func (e Expr) AddConst(c int) Expr {
	e.Const += c
	return e
}

// FloorDiv returns ⌊e/den⌋ as a new expression. den must be positive.
func FloorDiv(e Expr, den int) Expr {
	if den <= 0 {
		panic("aff: FloorDiv by non-positive denominator")
	}
	return Expr{NVars: e.NVars, Divs: []DivTerm{{Coef: 1, Inner: e, Den: den}}}
}

// floorDiv implements mathematical floor division for possibly negative
// numerators.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Eval evaluates e at point x, which must have NVars coordinates.
func (e Expr) Eval(x isl.Vec) int {
	if len(x) != e.NVars {
		panic(fmt.Sprintf("aff: Eval point %v has %d coords, expr expects %d", x, len(x), e.NVars))
	}
	v := e.Const
	for i := 0; i < e.NVars; i++ {
		v += e.coeff(i) * x[i]
	}
	for _, d := range e.Divs {
		v += d.Coef * floorDiv(d.Inner.Eval(x), d.Den)
	}
	return v
}

// String renders the expression with variables named i0, i1, ...
func (e Expr) String() string {
	var parts []string
	if e.Const != 0 || (allZero(e.Coeffs) && len(e.Divs) == 0) {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	for i := 0; i < e.NVars; i++ {
		c := e.coeff(i)
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, fmt.Sprintf("i%d", i))
		default:
			parts = append(parts, fmt.Sprintf("%d*i%d", c, i))
		}
	}
	for _, d := range e.Divs {
		if d.Coef == 1 {
			parts = append(parts, fmt.Sprintf("floor((%s)/%d)", d.Inner, d.Den))
		} else {
			parts = append(parts, fmt.Sprintf("%d*floor((%s)/%d)", d.Coef, d.Inner, d.Den))
		}
	}
	return strings.Join(parts, " + ")
}

func allZero(cs []int) bool {
	for _, c := range cs {
		if c != 0 {
			return false
		}
	}
	return true
}

// ConstraintKind distinguishes equalities from inequalities.
type ConstraintKind int

const (
	// GE is the constraint Expr ≥ 0.
	GE ConstraintKind = iota
	// EQ is the constraint Expr = 0.
	EQ
)

// Constraint is a quasi-affine constraint over a point.
type Constraint struct {
	E    Expr
	Kind ConstraintKind
}

// Satisfied reports whether x satisfies the constraint.
func (c Constraint) Satisfied(x isl.Vec) bool {
	v := c.E.Eval(x)
	if c.Kind == EQ {
		return v == 0
	}
	return v >= 0
}
