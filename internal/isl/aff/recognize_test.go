package aff

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isl"
)

func mapFromFn(nIn, n int, fn func(isl.Vec) isl.Vec) *isl.Map {
	dom := RectDomain("S", reps(n, nIn)...).Enumerate()
	var m *isl.Map
	dom.Foreach(func(v isl.Vec) bool {
		out := fn(v)
		if m == nil {
			m = isl.NewMap(dom.Space(), isl.NewSpace("T", len(out)))
		}
		m.Add(v, out)
		return true
	})
	return m
}

func reps(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestRecognizeAffine(t *testing.T) {
	// (i, j) -> (2i + 1, i - j)
	m := mapFromFn(2, 6, func(v isl.Vec) isl.Vec {
		return isl.NewVec(2*v[0]+1, v[0]-v[1])
	})
	exprs, ok := Recognize(m, 3, 4, 2)
	if !ok {
		t.Fatal("affine map not recognized")
	}
	m.Foreach(func(in, out isl.Vec) bool {
		for d, e := range exprs {
			if e.Eval(in) != out[d] {
				t.Fatalf("expr %d wrong at %v: %d != %d", d, in, e.Eval(in), out[d])
			}
		}
		return true
	})
}

func TestRecognizeFloorDiv(t *testing.T) {
	// The paper's pipeline-map shape: (i0, i1) -> (i0, floor(i1/2)).
	m := mapFromFn(2, 9, func(v isl.Vec) isl.Vec {
		return isl.NewVec(v[0], v[1]/2)
	})
	exprs, ok := Recognize(m, 2, 3, 3)
	if !ok {
		t.Fatal("floordiv map not recognized")
	}
	if got := exprs[1].Eval(isl.NewVec(0, 7)); got != 3 {
		t.Fatalf("floor expr wrong: %d", got)
	}
	if got := exprs[0].Eval(isl.NewVec(5, 0)); got != 5 {
		t.Fatalf("identity expr wrong: %d", got)
	}
}

func TestRecognizeRejectsNonAffine(t *testing.T) {
	// (i) -> (i*i) is not quasi-affine.
	m := mapFromFn(1, 8, func(v isl.Vec) isl.Vec {
		return isl.NewVec(v[0] * v[0])
	})
	if _, ok := Recognize(m, 4, 8, 4); ok {
		t.Fatal("quadratic map recognized as affine")
	}
}

func TestRecognizeRejectsMultiValued(t *testing.T) {
	m := isl.NewMap(isl.NewSpace("S", 1), isl.NewSpace("T", 1))
	m.Add(isl.NewVec(0), isl.NewVec(0))
	m.Add(isl.NewVec(0), isl.NewVec(1))
	if _, ok := Recognize(m, 2, 2, 2); ok {
		t.Fatal("multi-valued map recognized")
	}
	empty := isl.NewMap(isl.NewSpace("S", 1), isl.NewSpace("T", 1))
	if _, ok := Recognize(empty, 2, 2, 2); ok {
		t.Fatal("empty map recognized")
	}
}

func TestQuickRecognizeRoundTrip(t *testing.T) {
	// Generate a random quasi-affine function, tabulate it, recognize
	// it, and check the recovered expressions agree everywhere.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nIn := 1 + r.Intn(2)
		den := 1 + r.Intn(3)
		coeffs := make([]int, nIn)
		for i := range coeffs {
			coeffs[i] = r.Intn(5) - 2
		}
		c0 := r.Intn(7) - 3
		m := mapFromFn(nIn, 5, func(v isl.Vec) isl.Vec {
			val := c0
			for i, c := range coeffs {
				val += c * v[i]
			}
			q := val / den
			if val%den != 0 && (val < 0) != (den < 0) {
				q--
			}
			return isl.NewVec(q)
		})
		exprs, ok := Recognize(m, 2, 4, 3)
		if !ok {
			return false
		}
		good := true
		m.Foreach(func(in, out isl.Vec) bool {
			if exprs[0].Eval(in) != out[0] {
				good = false
				return false
			}
			return true
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
