package isl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randSet builds a random set of 1- or 2-dimensional tuples with small
// coordinates, deterministic in r.
func randSet(r *rand.Rand, space Space, n int) *Set {
	s := NewSet(space)
	for i := 0; i < n; i++ {
		v := make(Vec, space.Dim)
		for d := range v {
			v[d] = r.Intn(8)
		}
		s.Add(v)
	}
	return s
}

func randMap(r *rand.Rand, in, out Space, n int) *Map {
	m := NewMap(in, out)
	for i := 0; i < n; i++ {
		a := make(Vec, in.Dim)
		for d := range a {
			a[d] = r.Intn(8)
		}
		b := make(Vec, out.Dim)
		for d := range b {
			b[d] = r.Intn(8)
		}
		m.Add(a, b)
	}
	return m
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	sp := NewSpace("S", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSet(r, sp, r.Intn(20))
		b := randSet(r, sp, r.Intn(20))
		c := randSet(r, sp, r.Intn(20))

		// Commutativity and associativity of union/intersection.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// De Morgan-ish: a \ (b ∪ c) == (a \ b) ∩ (a \ c).
		if !a.Subtract(b.Union(c)).Equal(a.Subtract(b).Intersect(a.Subtract(c))) {
			return false
		}
		// a == (a ∩ b) ∪ (a \ b).
		if !a.Equal(a.Intersect(b).Union(a.Subtract(b))) {
			return false
		}
		// Cardinality inclusion-exclusion.
		if a.Union(b).Card()+a.Intersect(b).Card() != a.Card()+b.Card() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMapLaws(t *testing.T) {
	in, out := NewSpace("S", 2), NewSpace("R", 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMap(r, in, out, r.Intn(30))
		n := randMap(r, in, out, r.Intn(30))

		// Inverse is an involution.
		if !m.Inverse().Inverse().Equal(m) {
			return false
		}
		// Domain/Range swap under inverse.
		if !m.Inverse().Domain().Equal(m.Range()) || !m.Inverse().Range().Equal(m.Domain()) {
			return false
		}
		// Union/inverse distributivity.
		if !m.Union(n).Inverse().Equal(m.Inverse().Union(n.Inverse())) {
			return false
		}
		// LexmaxPerIn is single-valued with the same domain.
		mx := m.LexmaxPerIn()
		if !mx.IsSingleValued() || !mx.Domain().Equal(m.Domain()) {
			return false
		}
		// Every lexmax choice is an actual output and is maximal.
		ok := true
		mx.Foreach(func(i, o Vec) bool {
			if !m.Contains(i, o) {
				ok = false
				return false
			}
			for _, other := range m.Lookup(i) {
				if other.Cmp(o) > 0 {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComposeAssociative(t *testing.T) {
	a, b, c, d := NewSpace("A", 1), NewSpace("B", 1), NewSpace("C", 1), NewSpace("D", 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ab := randMap(r, a, b, r.Intn(20))
		bc := randMap(r, b, c, r.Intn(20))
		cd := randMap(r, c, d, r.Intn(20))
		// Compose(cd, Compose(bc, ab)) == Compose(Compose(cd, bc), ab)
		left := Compose(cd, Compose(bc, ab))
		right := Compose(Compose(cd, bc), ab)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickApplySetMatchesCompose(t *testing.T) {
	in, out := NewSpace("S", 1), NewSpace("R", 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randMap(r, in, out, r.Intn(25))
		s := randSet(r, in, r.Intn(15))
		// Image via ApplySet equals range of domain-restricted map.
		return m.ApplySet(s).Equal(m.IntersectDomain(s).Range())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNearestGEAgainstNaive(t *testing.T) {
	sp := NewSpace("S", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randSet(r, sp, r.Intn(25))
		y := randSet(r, sp, r.Intn(10))
		return NearestGE(x, y).Equal(LexLE(x, y).LexminPerIn())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// refRel is a naive string-keyed relation model — the representation
// the isl core used before vector interning. The property tests below
// pin the interned Map/Set to be observationally equivalent to it.
type refRel struct {
	pairs map[string]bool     // "in|out" membership
	outs  map[string][]string // in key -> out keys (unordered, deduped)
}

func newRefRel() *refRel {
	return &refRel{pairs: make(map[string]bool), outs: make(map[string][]string)}
}

func (rr *refRel) add(in, out Vec) {
	k := in.String() + "|" + out.String()
	if rr.pairs[k] {
		return
	}
	rr.pairs[k] = true
	rr.outs[in.String()] = append(rr.outs[in.String()], out.String())
}

func (rr *refRel) card() int { return len(rr.pairs) }

func TestQuickInternedMapMatchesStringKeyed(t *testing.T) {
	in, out := NewSpace("S", 2), NewSpace("R", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMap(in, out)
		ref := newRefRel()
		var ins, outsSeen []Vec
		for i := 0; i < r.Intn(40); i++ {
			a := Vec{r.Intn(6), r.Intn(6)}
			b := Vec{r.Intn(6), r.Intn(6)}
			m.Add(a, b)
			ref.add(a, b)
			ins, outsSeen = append(ins, a), append(outsSeen, b)
		}
		if m.Card() != ref.card() {
			return false
		}
		// Membership agrees on inserted pairs and on random probes.
		for i := range ins {
			if !m.Contains(ins[i], outsSeen[i]) {
				return false
			}
		}
		for i := 0; i < 20; i++ {
			a := Vec{r.Intn(6), r.Intn(6)}
			b := Vec{r.Intn(6), r.Intn(6)}
			if m.Contains(a, b) != ref.pairs[a.String()+"|"+b.String()] {
				return false
			}
		}
		// Lookup returns exactly the reference outs, lex-sorted.
		for _, a := range ins {
			got := m.Lookup(a)
			want := append([]string(nil), ref.outs[a.String()]...)
			sort.Strings(want) // "[a, b]" strings of equal-width digits sort lexicographically
			if len(got) != len(want) {
				return false
			}
			for i, v := range got {
				if v.String() != want[i] {
					return false
				}
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Cmp(got[j]) < 0 }) {
				return false
			}
		}
		// Pairs is globally lex-ordered by input then output.
		ps := m.Pairs()
		if len(ps) != ref.card() {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if c := ps[i-1].In.Cmp(ps[i].In); c > 0 ||
				(c == 0 && ps[i-1].Out.Cmp(ps[i].Out) >= 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInternedSetMatchesStringKeyed(t *testing.T) {
	sp := NewSpace("S", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSet(sp)
		ref := make(map[string]bool)
		for i := 0; i < r.Intn(40); i++ {
			v := Vec{r.Intn(6), r.Intn(6)}
			s.Add(v)
			ref[v.String()] = true
		}
		if s.Card() != len(ref) {
			return false
		}
		for i := 0; i < 20; i++ {
			v := Vec{r.Intn(6), r.Intn(6)}
			if s.Contains(v) != ref[v.String()] {
				return false
			}
		}
		es := s.Elements()
		if len(es) != len(ref) {
			return false
		}
		for i := range es {
			if !ref[es[i].String()] {
				return false
			}
			if i > 0 && es[i-1].Cmp(es[i]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixLexmaxAgainstNaive(t *testing.T) {
	js, is := NewSpace("J", 2), NewSpace("I", 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randMap(r, js, is, 1+r.Intn(25))
		dom := p.Domain()
		naive := Compose(p, LexGE(dom, dom)).LexmaxPerIn()
		return PrefixLexmax(p, dom).Equal(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
