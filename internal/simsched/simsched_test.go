package simsched

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestListSingleProcIsSequential(t *testing.T) {
	tasks := []Task{{Cost: ms(3)}, {Cost: ms(5)}, {Cost: ms(2)}}
	sch := List(tasks, 1)
	if sch.Makespan != ms(10) || sch.Busy != ms(10) {
		t.Fatalf("makespan = %v, busy = %v", sch.Makespan, sch.Busy)
	}
	if sch.Speedup() != 1 {
		t.Fatalf("speedup = %f", sch.Speedup())
	}
}

func TestListIndependentTasksParallelize(t *testing.T) {
	tasks := []Task{{Cost: ms(4)}, {Cost: ms(4)}, {Cost: ms(4)}, {Cost: ms(4)}}
	sch := List(tasks, 4)
	if sch.Makespan != ms(4) {
		t.Fatalf("makespan = %v, want 4ms", sch.Makespan)
	}
	if sch.Speedup() != 4 {
		t.Fatalf("speedup = %f", sch.Speedup())
	}
}

func TestListChainIsSerial(t *testing.T) {
	tasks := []Task{
		{Cost: ms(2)},
		{Cost: ms(2), Deps: []int{0}},
		{Cost: ms(2), Deps: []int{1}},
	}
	sch := List(tasks, 8)
	if sch.Makespan != ms(6) {
		t.Fatalf("makespan = %v", sch.Makespan)
	}
	// Start times respect the chain.
	if sch.Start[1] != ms(2) || sch.Start[2] != ms(4) {
		t.Fatalf("starts = %v", sch.Start)
	}
}

func TestListDiamond(t *testing.T) {
	// a -> {b, c} -> d; with 2 procs b and c overlap.
	tasks := []Task{
		{Cost: ms(1)},
		{Cost: ms(3), Deps: []int{0}},
		{Cost: ms(3), Deps: []int{0}},
		{Cost: ms(1), Deps: []int{1, 2}},
	}
	if got := List(tasks, 2).Makespan; got != ms(5) {
		t.Fatalf("2-proc diamond makespan = %v, want 5ms", got)
	}
	if got := List(tasks, 1).Makespan; got != ms(8) {
		t.Fatalf("1-proc diamond makespan = %v, want 8ms", got)
	}
}

func TestListPipelineOverlap(t *testing.T) {
	// Two 4-block serialized chains; chain-2 block i depends on
	// chain-1 block i. With 2 procs the classic pipeline overlap gives
	// makespan 5 units instead of 8.
	var tasks []Task
	for i := 0; i < 4; i++ {
		d := []int{}
		if i > 0 {
			d = append(d, i-1)
		}
		tasks = append(tasks, Task{Cost: ms(1), Deps: d})
	}
	for i := 0; i < 4; i++ {
		d := []int{i} // cross dep on producer block
		if i > 0 {
			d = append(d, 4+i-1)
		}
		tasks = append(tasks, Task{Cost: ms(1), Deps: d})
	}
	sch := List(tasks, 2)
	if sch.Makespan != ms(5) {
		t.Fatalf("pipeline makespan = %v, want 5ms", sch.Makespan)
	}
}

func TestListPanicsOnBadDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	List([]Task{{Cost: ms(1), Deps: []int{0}}}, 1) // self dep
}

func TestListPanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	List(nil, 0)
}

func TestQuickListInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		procs := 1 + r.Intn(8)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i].Cost = time.Duration(r.Intn(10)) * time.Millisecond
			for k := 0; k < r.Intn(3) && i > 0; k++ {
				tasks[i].Deps = append(tasks[i].Deps, r.Intn(i))
			}
		}
		sch := List(tasks, procs)
		// Bounds: max(critical path lower bound busy/procs) <= makespan <= busy.
		if sch.Makespan > sch.Busy {
			return false
		}
		if procs == 1 && sch.Makespan != sch.Busy {
			return false
		}
		// Dependency order respected.
		for i, t := range tasks {
			for _, d := range t.Deps {
				if sch.Start[i] < sch.Finish[d] {
					return false
				}
			}
			if sch.Finish[i]-sch.Start[i] != t.Cost {
				return false
			}
		}
		// Processor capacity: at any task start, at most procs tasks
		// overlap. Check pairwise overlap count at start instants.
		for i := range tasks {
			overlap := 0
			for j := range tasks {
				if sch.Start[j] <= sch.Start[i] && sch.Start[i] < sch.Finish[j] {
					overlap++
				}
			}
			if overlap > procs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatePipelinedListing3(t *testing.T) {
	p := kernels.Listing3(16)
	seq, sch, err := SimulatePipelined(p, core.Options{}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq <= 0 || sch.Makespan <= 0 {
		t.Fatalf("seq = %v, makespan = %v", seq, sch.Makespan)
	}
	if sch.Makespan > sch.Busy {
		t.Fatal("makespan exceeds total work")
	}
	// State must be reset afterwards.
	h := p.Hash()
	p.Reset()
	if p.Hash() != h {
		t.Fatal("simulate left dirty state")
	}
}

// retryMeasured runs a measurement-based check up to attempts times:
// per-task cost measurements are distorted when the host is loaded
// (e.g. while the benchmark suite hogs the CPU), so transient shape
// violations are retried before failing.
func retryMeasured(t *testing.T, attempts int, check func() error) {
	t.Helper()
	var err error
	for i := 0; i < attempts; i++ {
		if err = check(); err == nil {
			return
		}
	}
	t.Error(err)
}

func TestSimulateParLoopShapes(t *testing.T) {
	retryMeasured(t, 3, func() error {
		// Parallel rows: simulated parloop speed-up must clearly beat 1.
		mm := kernels.MMChain(2, 64, kernels.MM)
		_, sch := SimulateParLoop(mm, 4, 0)
		if sp := sch.Speedup(); sp < 2 {
			return fmt.Errorf("mm parloop simulated speedup = %.2f, want >= 2", sp)
		}
		// Serial nests: parloop gains nothing.
		gmm := kernels.MMChain(2, 32, kernels.GMM)
		_, sch2 := SimulateParLoop(gmm, 4, 0)
		if sp := sch2.Speedup(); sp > 1.05 {
			return fmt.Errorf("gmm parloop simulated speedup = %.2f, want ~1", sp)
		}
		return nil
	})
}

// TestSimulatedFigureShape checks the paper's headline qualitative
// result in virtual time: on gmm chains the pipeline beats the Polly
// baseline; on plain mm chains the baseline (with enough threads)
// beats the pipeline.
func TestSimulatedFigureShape(t *testing.T) {
	retryMeasured(t, 3, func() error {
		rows := 96
		gmm := kernels.MMChain(3, rows, kernels.GMM)
		_, pipeSch, err := SimulatePipelined(gmm, core.Options{}, 3, 0)
		if err != nil {
			return err
		}
		_, parSch := SimulateParLoop(gmm, 3, 0)
		if pipeSch.Speedup() < 1.8 {
			return fmt.Errorf("gmm pipeline simulated speedup = %.2f, want >= 1.8", pipeSch.Speedup())
		}
		if parSch.Speedup() > 1.1 {
			return fmt.Errorf("gmm parloop simulated speedup = %.2f, want ~1", parSch.Speedup())
		}

		mm := kernels.MMChain(3, rows, kernels.MM)
		_, pipeMM, err := SimulatePipelined(mm, core.Options{}, 3, 0)
		if err != nil {
			return err
		}
		_, parMM := SimulateParLoop(mm, 8, 0)
		if parMM.Speedup() <= pipeMM.Speedup() {
			return fmt.Errorf("mm: polly_8 (%.2f) should beat pipeline (%.2f)",
				parMM.Speedup(), pipeMM.Speedup())
		}
		return nil
	})
}
