package simsched

import (
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/kernels"
)

// SimulatePipelined measures the task program of p (per-task costs,
// taken during a sequential replay in creation order — a valid
// topological order) and returns the sequential time (Σ costs) plus
// the simulated P-processor schedule of the real dependency DAG.
// overhead is added to every task's cost to model task
// creation/scheduling overhead. The program state is left reset.
func SimulatePipelined(p *kernels.Program, opts core.Options, procs int, overhead time.Duration) (time.Duration, Schedule, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return 0, Schedule{}, err
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		return 0, Schedule{}, err
	}
	seq, sch := SimulateCompiled(p, prog, procs, overhead)
	return seq, sch, nil
}

// SimulateCompiled is SimulatePipelined for an already-compiled task
// program.
func SimulateCompiled(p *kernels.Program, prog *codegen.TaskProgram, procs int, overhead time.Duration) (time.Duration, Schedule) {
	tasks, seq := MeasureCompiled(p, prog, overhead)
	return seq, List(tasks, procs)
}

// MeasureCompiled runs the compiled task program once sequentially (a
// valid topological order), measuring each task's cost and taking the
// dependency DAG from the program's compiled runtime IR — the same
// resolved edge set the runtime enforces, so the simulation and the
// execution schedule the identical graph. The returned tasks can be
// scheduled at several processor counts without re-measuring —
// required when comparing counts, since separate replays introduce
// measurement noise between them. The program state is left reset.
func MeasureCompiled(p *kernels.Program, prog *codegen.TaskProgram, overhead time.Duration) ([]Task, time.Duration) {
	ir := prog.Lower()
	p.Reset()
	tasks := make([]Task, len(prog.Tasks))
	var seq time.Duration
	for i := range prog.Tasks {
		spec := &prog.Tasks[i]
		start := time.Now()
		for _, iv := range spec.Members {
			spec.Stmt.Body(iv)
		}
		cost := time.Since(start)
		seq += cost
		if spec.ParallelBody && prog.Opts.IntraBlockWorkers > 1 {
			// Hybrid mode: members run concurrently inside the task;
			// model perfect scaling over the intra-block workers (the
			// caller is responsible for procs×workers ≤ hardware).
			div := prog.Opts.IntraBlockWorkers
			if div > len(spec.Members) {
				div = len(spec.Members)
			}
			cost /= time.Duration(div)
		}
		t := Task{Cost: cost + overhead}
		for _, pred := range ir.PredsOf(i) {
			t.Deps = append(t.Deps, int(pred))
		}
		tasks[i] = t
	}
	p.Reset()
	return tasks, seq
}

// SimulateParLoop measures and simulates the Polly-style baseline in
// virtual time: each nest's outermost provably-parallel loop dimension
// is split into slices scheduled on procs processors, with barriers
// between sequential groups and between nests; fully serial nests are
// single tasks. Returns the sequential time and the schedule. The
// program state is left reset.
func SimulateParLoop(p *kernels.Program, procs int, overhead time.Duration) (time.Duration, Schedule) {
	g := deps.Analyze(p.SCoP)
	p.Reset()

	var tasks []Task
	var seq time.Duration
	// prevBarrier is the task every slice of the next group depends on.
	prevBarrier := -1

	for _, s := range p.SCoP.Stmts {
		par := g.ParallelDims(s)
		d := -1
		for dim, ok := range par {
			if ok {
				d = dim
				break
			}
		}
		elems := s.Domain.Elements()
		if d < 0 {
			// Serial nest: one task.
			start := time.Now()
			for _, iv := range elems {
				s.Body(iv)
			}
			cost := time.Since(start)
			seq += cost
			t := Task{Cost: cost + overhead}
			if prevBarrier >= 0 {
				t.Deps = append(t.Deps, prevBarrier)
			}
			tasks = append(tasks, t)
			prevBarrier = len(tasks) - 1
			continue
		}
		// Parallel at dimension d: groups of equal prefix (dims < d)
		// run in order with barriers; slices (equal value at d) within
		// a group are parallel tasks.
		for gs := 0; gs < len(elems); {
			ge := gs
			prefix := elems[gs][:d]
			for ge < len(elems) && elems[ge][:d].Eq(prefix) {
				ge++
			}
			var sliceIDs []int
			for ss := gs; ss < ge; {
				se := ss
				for se < ge && elems[se][d] == elems[ss][d] {
					se++
				}
				start := time.Now()
				for _, iv := range elems[ss:se] {
					s.Body(iv)
				}
				cost := time.Since(start)
				seq += cost
				t := Task{Cost: cost + overhead}
				if prevBarrier >= 0 {
					t.Deps = append(t.Deps, prevBarrier)
				}
				tasks = append(tasks, t)
				sliceIDs = append(sliceIDs, len(tasks)-1)
				ss = se
			}
			// Zero-cost barrier joining the group.
			tasks = append(tasks, Task{Cost: 0, Deps: sliceIDs})
			prevBarrier = len(tasks) - 1
			gs = ge
		}
	}
	p.Reset()
	return seq, List(tasks, procs)
}
