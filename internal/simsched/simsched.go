// Package simsched is a deterministic virtual-time scheduler
// simulator. It reproduces the paper's multi-core measurements on
// hosts without multiple cores: per-task costs are measured once
// during a sequential replay of the real task program (which visits
// tasks in a valid topological order), and the makespan of a
// P-processor greedy list schedule over the real dependency DAG is
// then computed in virtual time.
//
// The simulated executions use exactly the task graphs the tasking
// runtime would execute — the same blocks, dependency addresses, and
// per-nest serialization — so who-wins comparisons and crossover
// points match what a real multi-core run observes, without wall-clock
// nondeterminism.
package simsched

import (
	"container/heap"
	"fmt"
	"time"
)

// Task is one simulated task: its cost and the IDs of the tasks it
// must wait for. IDs index the task slice and every dependency must
// point to an earlier task.
type Task struct {
	Cost time.Duration
	Deps []int
}

// Schedule is the result of a simulation.
type Schedule struct {
	Makespan time.Duration
	// Start and Finish give each task's scheduled interval.
	Start, Finish []time.Duration
	// Busy is the total work (Σ costs).
	Busy time.Duration
}

// Speedup returns Busy/Makespan, the simulated speed-up over the
// sequential execution of the same work.
func (s Schedule) Speedup() float64 {
	if s.Makespan == 0 {
		return 1
	}
	return float64(s.Busy) / float64(s.Makespan)
}

// List computes a greedy list schedule of tasks on procs identical
// processors: tasks become ready when all dependencies finished, and
// the earliest-ready task (ties by creation order) is placed on the
// earliest-free processor. The schedule is deterministic.
func List(tasks []Task, procs int) Schedule {
	if procs < 1 {
		panic(fmt.Sprintf("simsched: procs = %d", procs))
	}
	n := len(tasks)
	sch := Schedule{
		Start:  make([]time.Duration, n),
		Finish: make([]time.Duration, n),
	}
	remaining := make([]int, n)
	succs := make([][]int, n)
	readyAt := make([]time.Duration, n)
	ready := &taskHeap{}
	for id, t := range tasks {
		sch.Busy += t.Cost
		remaining[id] = 0
		seen := map[int]bool{}
		for _, d := range t.Deps {
			if d < 0 || d >= id {
				panic(fmt.Sprintf("simsched: task %d depends on invalid task %d", id, d))
			}
			if !seen[d] {
				seen[d] = true
				succs[d] = append(succs[d], id)
				remaining[id]++
			}
		}
		if remaining[id] == 0 {
			heap.Push(ready, readyItem{at: 0, id: id})
		}
	}

	procHeap := &durHeap{}
	for p := 0; p < procs; p++ {
		heap.Push(procHeap, time.Duration(0))
	}

	scheduled := 0
	for ready.Len() > 0 {
		item := heap.Pop(ready).(readyItem)
		procFree := heap.Pop(procHeap).(time.Duration)
		start := item.at
		if procFree > start {
			start = procFree
		}
		finish := start + tasks[item.id].Cost
		sch.Start[item.id] = start
		sch.Finish[item.id] = finish
		if finish > sch.Makespan {
			sch.Makespan = finish
		}
		heap.Push(procHeap, finish)
		scheduled++
		for _, s := range succs[item.id] {
			if finish > readyAt[s] {
				readyAt[s] = finish
			}
			remaining[s]--
			if remaining[s] == 0 {
				heap.Push(ready, readyItem{at: readyAt[s], id: s})
			}
		}
	}
	if scheduled != n {
		panic(fmt.Sprintf("simsched: scheduled %d of %d tasks (dependency cycle?)", scheduled, n))
	}
	return sch
}

type readyItem struct {
	at time.Duration
	id int
}

type taskHeap []readyItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *taskHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

type durHeap []time.Duration

func (h durHeap) Len() int           { return len(h) }
func (h durHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h durHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *durHeap) Pop() (x any)      { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
