// Package report renders the evaluation outputs as aligned text: plain
// tables, the Figure 10 speed-up heat-map grid, and the Figure 11
// per-kernel series.
package report

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Heatmap renders a labelled grid of values, one row per rowLabel, in
// the style of Figure 10 (speed-up per program and configuration).
func Heatmap(corner string, rowLabels, colLabels []string, vals [][]float64) string {
	t := NewTable(append([]string{corner}, colLabels...)...)
	for i, rl := range rowLabels {
		row := []string{rl}
		for j := range colLabels {
			v := math.NaN()
			if i < len(vals) && j < len(vals[i]) {
				v = vals[i][j]
			}
			row = append(row, FormatSpeedup(v))
		}
		t.Add(row...)
	}
	return t.String()
}

// FormatSpeedup renders a speed-up factor like the paper's figures
// ("2.75", "-" when absent).
func FormatSpeedup(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// FormatDuration renders a duration with three significant digits in
// the unit that fits it (ns, µs, ms, s), keeping timing tables aligned
// and readable across six orders of magnitude.
func FormatDuration(d time.Duration) string {
	ns := d.Nanoseconds()
	abs := ns
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < 1_000:
		return fmt.Sprintf("%dns", ns)
	case abs < 1_000_000:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	case abs < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.3fs", float64(ns)/1e9)
}

// FormatPercent renders a 0..1 fraction as a percentage ("87.3%").
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}

// Log2 returns log2 of a positive speed-up, the Figure 11 y-axis.
func Log2(v float64) float64 {
	return math.Log2(v)
}
