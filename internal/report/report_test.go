package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All lines equal width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) && len(strings.TrimRight(l, " ")) > len(lines[0]) {
			t.Errorf("misaligned line %q", l)
		}
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.Add("x")
	if out := tb.String(); !strings.Contains(out, "x") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("prog", []string{"P1", "P2"}, []string{"N=8", "N=16"},
		[][]float64{{1.5, 2.25}, {1.0}})
	if !strings.Contains(out, "P1") || !strings.Contains(out, "1.50") || !strings.Contains(out, "2.25") {
		t.Fatalf("heatmap missing values:\n%s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not rendered:\n%s", out)
	}
}

func TestFormatSpeedup(t *testing.T) {
	if FormatSpeedup(3.14159) != "3.14" {
		t.Fatal("format wrong")
	}
	if FormatSpeedup(math.NaN()) != "-" {
		t.Fatal("NaN format wrong")
	}
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatal("Log2 wrong")
	}
}
