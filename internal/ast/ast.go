// Package ast generates the annotated abstract syntax tree of the
// transformed program from a schedule tree (§5.3). Each loop nest of
// the original program reappears with its loops; the innermost loop is
// the pipeline loop, and a task annotation (derived from the schedule
// tree's mark node) precedes the statement call, reproducing the shape
// of the paper's Figure 6.
package ast

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/isl/aff"
	"repro/internal/schedtree"
)

// Stmt is a node of the generated AST.
type Stmt interface{ stmtNode() }

// ForStmt is a counted loop `for (v = Lo; v < Hi; v += 1)`.
type ForStmt struct {
	Var    string
	Lo, Hi aff.Expr // over the enclosing loop variables
	Body   []Stmt
}

// CallStmt invokes a statement body with the loop variables.
type CallStmt struct {
	Name string
	Args []string
}

// CommentStmt carries an annotation line.
type CommentStmt struct {
	Text string
}

// TaskStmt marks the body of a pipeline loop as a task: the annotation
// from the schedule tree's mark node plus the statements forming the
// task body.
type TaskStmt struct {
	Task *schedtree.TaskAnnotation
	Body []Stmt
}

func (*ForStmt) stmtNode()     {}
func (*CallStmt) stmtNode()    {}
func (*CommentStmt) stmtNode() {}
func (*TaskStmt) stmtNode()    {}

// FuncDecl is the generated function holding the transformed loop
// nests, the unit the paper extracts and launches under omp parallel +
// omp single.
type FuncDecl struct {
	Name string
	Body []Stmt
}

// Generate builds the annotated AST from a schedule tree produced by
// schedtree.Build. One loop nest is emitted per per-statement subtree,
// using the statement's original symbolic bounds; the task annotation
// from the mark node lands immediately inside the innermost (pipeline)
// loop.
func Generate(name string, tree *schedtree.SequenceNode) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name}
	for _, child := range tree.Children {
		mark := findMark(child)
		if mark == nil || mark.Task == nil {
			return nil, fmt.Errorf("ast: statement subtree without a %q mark node", schedtree.MarkName)
		}
		task := mark.Task
		spec := task.Stmt.Spec
		if spec == nil {
			return nil, fmt.Errorf("ast: statement %q carries no symbolic domain", task.Stmt.Name)
		}
		depth := len(spec.Bounds)
		args := make([]string, depth)
		for d := 0; d < depth; d++ {
			args[d] = loopVar(d)
		}
		inner := []Stmt{&TaskStmt{
			Task: task,
			Body: []Stmt{&CallStmt{Name: task.Stmt.Name, Args: args}},
		}}
		// Wrap loops inside-out.
		for d := depth - 1; d >= 0; d-- {
			inner = []Stmt{&ForStmt{
				Var:  loopVar(d),
				Lo:   spec.Bounds[d].Lo,
				Hi:   spec.Bounds[d].Hi,
				Body: inner,
			}}
		}
		fn.Body = append(fn.Body, inner...)
	}
	return fn, nil
}

// loopVar names loop dimension d as in Polly's generated code.
func loopVar(d int) string { return fmt.Sprintf("c%d", d) }

// findMark locates the pipeline mark node in a per-statement subtree.
func findMark(n schedtree.Node) *schedtree.MarkNode {
	switch node := n.(type) {
	case *schedtree.MarkNode:
		if node.Name == schedtree.MarkName {
			return node
		}
		return findMark(node.Child)
	case *schedtree.DomainNode:
		return findMark(node.Child)
	case *schedtree.BandNode:
		return findMark(node.Child)
	case *schedtree.ExpansionNode:
		return findMark(node.Child)
	default:
		return nil
	}
}

// Fprint renders the AST as annotated C-like source in the style of
// Figure 6.
func Fprint(w io.Writer, fn *FuncDecl) error {
	p := &printer{w: w}
	p.printf("void %s(void) {\n", fn.Name)
	p.depth++
	for _, s := range fn.Body {
		p.stmt(s)
	}
	p.depth--
	p.printf("}\n")
	return p.err
}

// Render returns the printed AST as a string.
func Render(fn *FuncDecl) string {
	var b strings.Builder
	_ = Fprint(&b, fn)
	return b.String()
}

type printer struct {
	w     io.Writer
	depth int
	vars  []string // enclosing loop variables, for bound rendering
	err   error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s", strings.Repeat("  ", p.depth), fmt.Sprintf(format, args...))
}

func (p *printer) stmt(s Stmt) {
	switch node := s.(type) {
	case *ForStmt:
		p.printf("for (%s = %s; %s < %s; %s += 1) {\n",
			node.Var, renderExpr(node.Lo, p.vars),
			node.Var, renderExpr(node.Hi, p.vars),
			node.Var)
		p.vars = append(p.vars, node.Var)
		p.depth++
		for _, inner := range node.Body {
			p.stmt(inner)
		}
		p.depth--
		p.vars = p.vars[:len(p.vars)-1]
		p.printf("}\n")
	case *TaskStmt:
		p.printf("// task(%s)%s\n", node.Task.Stmt.Name, depsComment(node.Task))
		for _, inner := range node.Body {
			p.stmt(inner)
		}
	case *CallStmt:
		p.printf("%s(%s);\n", node.Name, strings.Join(node.Args, ", "))
	case *CommentStmt:
		p.printf("// %s\n", node.Text)
	}
}

// depsComment summarizes the annotation like the Figure 6 comments:
// which statements the task's blocks wait for, and the block counts.
func depsComment(t *schedtree.TaskAnnotation) string {
	var b strings.Builder
	fmt.Fprintf(&b, ": %d blocks", t.Out.Domain().Card())
	if len(t.InDeps) == 0 {
		b.WriteString(", no in-deps")
	} else {
		names := make([]string, len(t.InDeps))
		for i, d := range t.InDeps {
			names[i] = d.Src.Name
		}
		fmt.Fprintf(&b, ", in-deps on [%s]", strings.Join(names, ", "))
	}
	return b.String()
}

// renderExpr prints an affine bound with the enclosing loop variables
// substituted for the expression's formal variables.
func renderExpr(e aff.Expr, vars []string) string {
	s := e.String()
	// aff.Expr names variables i0, i1, ...; rename to the loop vars.
	for d := len(vars) - 1; d >= 0; d-- {
		s = strings.ReplaceAll(s, fmt.Sprintf("i%d", d), vars[d])
	}
	return s
}
