package ast

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/schedtree"
)

func genListing3(t *testing.T, n int) *FuncDecl {
	t.Helper()
	info, err := core.Detect(kernels.Listing3(n).SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := Generate("listing3_pipelined", schedtree.Build(info))
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// TestFigure6Golden locks down the annotated AST of the transformed
// Listing 3 program, the analogue of the paper's Figure 6: one loop
// nest per statement, each with a task annotation on its pipeline
// loop body carrying the dependency summary.
func TestFigure6Golden(t *testing.T) {
	fn := genListing3(t, 12)
	got := Render(fn)
	want := `void listing3_pipelined(void) {
  for (c0 = 0; c0 < 11; c0 += 1) {
    for (c1 = 0; c1 < 11; c1 += 1) {
      // task(S): 36 blocks, no in-deps
      S(c0, c1);
    }
  }
  for (c0 = 0; c0 < 5; c0 += 1) {
    for (c1 = 0; c1 < 5; c1 += 1) {
      // task(R): 25 blocks, in-deps on [S]
      R(c0, c1);
    }
  }
  for (c0 = 0; c0 < 5; c0 += 1) {
    for (c1 = 0; c1 < 5; c1 += 1) {
      // task(U): 25 blocks, in-deps on [S, R]
      U(c0, c1);
    }
  }
}
`
	if got != want {
		t.Fatalf("Figure 6 golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGenerateStructure(t *testing.T) {
	fn := genListing3(t, 16)
	if len(fn.Body) != 3 {
		t.Fatalf("nests = %d", len(fn.Body))
	}
	for i, s := range fn.Body {
		outer, ok := s.(*ForStmt)
		if !ok {
			t.Fatalf("nest %d not a for", i)
		}
		innerFor, ok := outer.Body[0].(*ForStmt)
		if !ok {
			t.Fatalf("nest %d inner not a for", i)
		}
		task, ok := innerFor.Body[0].(*TaskStmt)
		if !ok {
			t.Fatalf("nest %d missing task annotation", i)
		}
		call, ok := task.Body[0].(*CallStmt)
		if !ok {
			t.Fatalf("nest %d missing call", i)
		}
		if len(call.Args) != 2 || call.Args[0] != "c0" || call.Args[1] != "c1" {
			t.Fatalf("nest %d call args = %v", i, call.Args)
		}
	}
}

func TestGenerateRejectsMissingMark(t *testing.T) {
	tree := &schedtree.SequenceNode{Children: []schedtree.Node{&schedtree.LeafNode{}}}
	if _, err := Generate("x", tree); err == nil {
		t.Fatal("expected error for missing mark")
	}
}

func TestTriangularBoundsRendering(t *testing.T) {
	// A statement with an affine inner bound must print it in terms of
	// the outer loop variable.
	prog := kernels.Listing1(12)
	info, err := core.Detect(prog.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := Generate("p", schedtree.Build(info))
	if err != nil {
		t.Fatal(err)
	}
	out := Render(fn)
	if !strings.Contains(out, "task(S)") || !strings.Contains(out, "task(R)") {
		t.Fatalf("missing task annotations:\n%s", out)
	}
}

func TestCommentStmtRendering(t *testing.T) {
	fn := &FuncDecl{Name: "f", Body: []Stmt{&CommentStmt{Text: "hello"}}}
	if got := Render(fn); !strings.Contains(got, "// hello") {
		t.Fatalf("comment not rendered: %q", got)
	}
}
