package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// PerfettoOptions controls the Chrome/Perfetto trace_event export.
type PerfettoOptions struct {
	// Names maps statement index (span Serial) to a display name for
	// the per-statement tracks; missing entries render as "S<k>".
	Names map[int]string
	// Edges lists data-dependency edges as (producer, consumer) task-id
	// pairs; each becomes a flow arrow from the producer's end to the
	// consumer's start on the worker tracks.
	Edges [][2]int
}

// Track (pid) layout of the exported trace: one process groups the
// per-worker threads, a second groups the per-statement threads.
const (
	perfettoWorkersPid    = 1
	perfettoStatementsPid = 2
)

// traceEvent is one entry of the Chrome trace_event JSON array. Field
// order follows the trace-event format documentation; timestamps and
// durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object flavour of the trace_event format,
// the one both chrome://tracing and ui.perfetto.dev load directly.
type perfettoFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func usSince(base, t time.Time) float64 {
	return float64(t.Sub(base).Nanoseconds()) / 1e3
}

// WritePerfetto renders the spans as Chrome/Perfetto trace_event JSON:
// one thread per worker (execution view), one thread per statement
// (the Figure 2 overlap view), and a flow arrow per data-dependency
// edge. Timestamps are microseconds relative to the earliest span
// start, so the file is host-independent and golden-testable.
func WritePerfetto(w io.Writer, spans []Span, opts PerfettoOptions) error {
	file := perfettoFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}

	var base time.Time
	workers := map[int]bool{}
	serials := map[int]bool{}
	byTask := map[int]Span{}
	for _, s := range spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
		workers[s.Worker] = true
		serials[s.Serial] = true
		byTask[s.Task] = s
	}

	// Track metadata, in deterministic order.
	meta := func(pid, tid int, kind, name string) {
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(perfettoWorkersPid, 0, "process_name", "workers")
	meta(perfettoStatementsPid, 0, "process_name", "statements")
	for _, w := range sortedKeys(workers) {
		meta(perfettoWorkersPid, w, "thread_name", fmt.Sprintf("worker %d", w))
	}
	for _, k := range sortedKeys(serials) {
		name := opts.Names[k]
		if name == "" {
			name = fmt.Sprintf("S%d", k)
		}
		meta(perfettoStatementsPid, k, "thread_name", name)
	}

	// Complete ("X") events on both views, in submission order.
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Task < ordered[j].Task })
	for _, s := range ordered {
		args := map[string]any{
			"task":   s.Task,
			"serial": s.Serial,
			"worker": s.Worker,
		}
		if st := s.Stall(); st > 0 {
			args["stall_us"] = float64(st.Nanoseconds()) / 1e3
		}
		ev := traceEvent{
			Name: s.Label, Cat: "task", Ph: "X",
			Ts: usSince(base, s.Start), Dur: usSince(s.Start, s.End),
			Pid: perfettoWorkersPid, Tid: s.Worker, Args: args,
		}
		file.TraceEvents = append(file.TraceEvents, ev)
		ev.Pid, ev.Tid = perfettoStatementsPid, s.Serial
		file.TraceEvents = append(file.TraceEvents, ev)
	}

	// Flow arrows along dependency edges, producer end → consumer start.
	for i, e := range opts.Edges {
		from, okF := byTask[e[0]]
		to, okT := byTask[e[1]]
		if !okF || !okT {
			continue
		}
		file.TraceEvents = append(file.TraceEvents,
			traceEvent{
				Name: "dep", Cat: "dep", Ph: "s", ID: i + 1,
				Ts: usSince(base, from.End), Pid: perfettoWorkersPid, Tid: from.Worker,
			},
			traceEvent{
				Name: "dep", Cat: "dep", Ph: "f", BP: "e", ID: i + 1,
				Ts: usSince(base, to.Start), Pid: perfettoWorkersPid, Tid: to.Worker,
			})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
