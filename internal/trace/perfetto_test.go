package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a tiny deterministic two-statement pipeline: S0 runs
// three blocks, S1 consumes each one as soon as it lands, on two
// workers. Task 3 has an observed ready time 1ms before its start, so
// the stall_us arg is exercised too.
func goldenSpans() ([]Span, PerfettoOptions) {
	spans := []Span{
		at(0, 0, 0, "S0[0]", 0, 2),
		at(1, 0, 0, "S0[1]", 2, 4),
		at(2, 0, 0, "S0[2]", 4, 6),
		at(3, 1, 1, "S1[0]", 3, 5),
		at(4, 1, 1, "S1[1]", 5, 7),
		at(5, 1, 1, "S1[2]", 7, 9),
	}
	spans[3].Ready = spans[3].Start.Add(-time.Millisecond)
	opts := PerfettoOptions{
		Names: map[int]string{0: "S0: produce", 1: "S1: consume"},
		Edges: [][2]int{{0, 3}, {1, 4}, {2, 5}},
	}
	return spans, opts
}

// TestPerfettoGolden locks the exporter's exact output. Timestamps are
// relative to the earliest start, so the file is host-independent.
// Regenerate with: go test ./internal/trace -run Golden -update
func TestPerfettoGolden(t *testing.T) {
	spans, opts := goldenSpans()
	var b bytes.Buffer
	if err := WritePerfetto(&b, spans, opts); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exporter output drifted from golden file (rerun with -update if intended)\ngot:\n%s", b.String())
	}
}

// TestPerfettoStructure checks the semantic content independent of the
// byte-exact golden: track metadata, both views of every span, and one
// flow-arrow pair per edge.
func TestPerfettoStructure(t *testing.T) {
	spans, opts := goldenSpans()
	var b bytes.Buffer
	if err := WritePerfetto(&b, spans, opts); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	counts := map[string]int{}
	stalls := 0
	for _, ev := range file.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "X" {
			if ev.Dur != 2000 {
				t.Errorf("dur = %v µs, want 2000", ev.Dur)
			}
			if _, ok := ev.Args["stall_us"]; ok {
				stalls++
			}
		}
		if ev.Ph == "f" && ev.BP != "e" {
			t.Errorf("flow-end event missing bp=e: %+v", ev)
		}
	}
	// 2 process names + 2 worker threads + 2 statement threads.
	if counts["M"] != 6 {
		t.Errorf("metadata events = %d, want 6", counts["M"])
	}
	// Each span appears on its worker track and its statement track.
	if counts["X"] != 2*len(spans) {
		t.Errorf("complete events = %d, want %d", counts["X"], 2*len(spans))
	}
	if counts["s"] != len(opts.Edges) || counts["f"] != len(opts.Edges) {
		t.Errorf("flow events = %d start / %d finish, want %d each",
			counts["s"], counts["f"], len(opts.Edges))
	}
	// Task 3 is duplicated onto two tracks, so its stall shows twice.
	if stalls != 2 {
		t.Errorf("spans carrying stall_us = %d, want 2", stalls)
	}
}

// TestPerfettoSkipsEdgesWithoutSpans drops arrows whose endpoints were
// never executed instead of emitting dangling flow ids.
func TestPerfettoSkipsEdgesWithoutSpans(t *testing.T) {
	spans := []Span{at(0, 0, 0, "a", 0, 1)}
	var b bytes.Buffer
	err := WritePerfetto(&b, spans, PerfettoOptions{Edges: [][2]int{{0, 7}, {7, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "s" || ev.Ph == "f" {
			t.Errorf("unexpected flow event: %+v", ev)
		}
	}
}
