package trace

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestWriteSVGWellFormed(t *testing.T) {
	var b strings.Builder
	err := WriteSVG(&b, syntheticSpans(), SVGOptions{Names: map[int]string{0: "S", 1: "R"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, out)
		}
	}
	for _, want := range []string{"<svg", ">S</text>", ">R</text>", "<rect", "S0[0]"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Four task rectangles plus the background.
	if got := strings.Count(out, "<rect"); got != 5 {
		t.Errorf("rect count = %d, want 5", got)
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<svg") {
		t.Fatal("empty SVG missing root element")
	}
}

func TestWriteSVGDefaultNames(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, syntheticSpans(), SVGOptions{Width: 100, RowHeight: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ">S0</text>") || !strings.Contains(b.String(), ">S1</text>") {
		t.Fatalf("default names missing:\n%s", b.String())
	}
}
