package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// SVGOptions controls the rendered timeline.
type SVGOptions struct {
	Width     int // pixel width of the plot area; default 800
	RowHeight int // pixel height per statement row; default 28
	Names     map[int]string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.RowHeight <= 0 {
		o.RowHeight = 28
	}
	return o
}

// rowPalette holds distinguishable fill colors per statement row.
var rowPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
	"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
}

// WriteSVG renders the spans as an SVG Gantt timeline, one row per
// statement, one rectangle per task — the graphical version of the
// paper's Figure 2, produced from a real traced execution.
func WriteSVG(w io.Writer, spans []Span, opts SVGOptions) error {
	opts = opts.withDefaults()
	if len(spans) == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`)
		return err
	}
	var first, last time.Time
	rows := map[int]bool{}
	for _, s := range spans {
		if first.IsZero() || s.Start.Before(first) {
			first = s.Start
		}
		if s.End.After(last) {
			last = s.End
		}
		rows[s.Serial] = true
	}
	total := last.Sub(first)
	if total <= 0 {
		total = time.Nanosecond
	}
	serials := make([]int, 0, len(rows))
	for k := range rows {
		serials = append(serials, k)
	}
	sort.Ints(serials)
	rowOf := map[int]int{}
	for i, k := range serials {
		rowOf[k] = i
	}

	const labelW = 90
	height := len(serials)*opts.RowHeight + 30
	width := labelW + opts.Width + 10

	p := &errWriter{w: w}
	p.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height)
	p.printf(`<rect width="%d" height="%d" fill="#fcfcfc"/>`+"\n", width, height)

	// Row labels and separators.
	for i, k := range serials {
		y := i * opts.RowHeight
		name := opts.Names[k]
		if name == "" {
			name = fmt.Sprintf("S%d", k)
		}
		p.printf(`<text x="4" y="%d">%s</text>`+"\n", y+opts.RowHeight*2/3, name)
		p.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			labelW, y+opts.RowHeight, width-10, y+opts.RowHeight)
	}

	// Task rectangles.
	for _, s := range spans {
		row := rowOf[s.Serial]
		x0 := labelW + int(float64(s.Start.Sub(first))/float64(total)*float64(opts.Width))
		x1 := labelW + int(float64(s.End.Sub(first))/float64(total)*float64(opts.Width))
		if x1 <= x0 {
			x1 = x0 + 1
		}
		y := row*opts.RowHeight + 3
		color := rowPalette[row%len(rowPalette)]
		p.printf(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.85"><title>%s %v</title></rect>`+"\n",
			x0, y, x1-x0, opts.RowHeight-6, color, s.Label, s.Duration())
	}

	// Time axis.
	p.printf(`<text x="%d" y="%d" fill="#555">0</text>`+"\n", labelW, height-8)
	p.printf(`<text x="%d" y="%d" fill="#555" text-anchor="end">%v</text>`+"\n", labelW+opts.Width, height-8, total)
	p.printf(`</svg>` + "\n")
	return p.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (p *errWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
