package trace

import (
	"fmt"
	"sort"
	"time"
)

// CriticalPath is the realized longest dependency chain of an executed
// task DAG: the chain of spans, linked by precedence edges, whose
// summed durations are maximal. Because chained tasks cannot overlap,
// its Length is a lower bound on any execution of this task graph —
// the measured counterpart of the Eq. 5 time(L_max) bound, and always
// ≤ the observed makespan.
type CriticalPath struct {
	Length time.Duration
	Tasks  []int    // task ids along the chain, in execution order
	Labels []string // the corresponding span labels
}

// ComputeCriticalPath walks the executed task DAG. spans carry the
// measured durations; edges are precedence pairs of task ids (data
// dependencies plus per-statement serial chains) and must point
// forward in submission order (From < To), which every edge produced
// by the code generator does. Edges whose endpoints have no span are
// ignored.
func ComputeCriticalPath(spans []Span, edges [][2]int) CriticalPath {
	byTask := make(map[int]Span, len(spans))
	for _, s := range spans {
		byTask[s.Task] = s
	}
	preds := map[int][]int{}
	for _, e := range edges {
		from, to := e[0], e[1]
		if from >= to {
			continue // malformed: precedence must follow submission order
		}
		if _, ok := byTask[from]; !ok {
			continue
		}
		if _, ok := byTask[to]; !ok {
			continue
		}
		preds[to] = append(preds[to], from)
	}

	// Ascending task id is a topological order, since every edge points
	// from a lower id to a higher one.
	order := make([]int, 0, len(byTask))
	for id := range byTask {
		order = append(order, id)
	}
	sort.Ints(order)

	cp := make(map[int]time.Duration, len(order)) // heaviest chain ending at id
	via := make(map[int]int, len(order))          // predecessor realizing it
	bestID, bestLen := -1, time.Duration(-1)
	for _, id := range order {
		longest := time.Duration(0)
		through := -1
		for _, p := range preds[id] {
			if cp[p] > longest {
				longest, through = cp[p], p
			}
		}
		cp[id] = longest + byTask[id].Duration()
		via[id] = through
		if cp[id] > bestLen {
			bestID, bestLen = id, cp[id]
		}
	}
	if bestID < 0 {
		return CriticalPath{}
	}

	var path []int
	for id := bestID; id >= 0; id = via[id] {
		path = append(path, id)
	}
	// path was built sink→source; reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	out := CriticalPath{Length: bestLen, Tasks: path}
	for _, id := range path {
		out.Labels = append(out.Labels, byTask[id].Label)
	}
	return out
}

// String renders the path compactly ("S0[3] -> S1[0] -> ... (42ms)").
func (p CriticalPath) String() string {
	if len(p.Labels) == 0 {
		return "(empty)"
	}
	const maxShown = 6
	labels := p.Labels
	if len(labels) > maxShown {
		head := labels[:maxShown/2]
		tail := labels[len(labels)-maxShown/2:]
		labels = append(append(append([]string{}, head...), "..."), tail...)
	}
	s := labels[0]
	for _, l := range labels[1:] {
		s += " -> " + l
	}
	return fmt.Sprintf("%s (%d tasks, %v)", s, len(p.Tasks), p.Length)
}
