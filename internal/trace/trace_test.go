package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/scop"
	"repro/internal/tasking"
)

// synthetic spans: S0 runs [0,10) and [10,20); S1 runs [5,15) and
// [20,30) (milliseconds after base).
func syntheticSpans() []Span {
	base := time.Unix(1000, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	return []Span{
		{Label: "S0[0]", Serial: 0, Start: at(0), End: at(10)},
		{Label: "S0[1]", Serial: 0, Start: at(10), End: at(20)},
		{Label: "S1[0]", Serial: 1, Start: at(5), End: at(15)},
		{Label: "S1[1]", Serial: 1, Start: at(20), End: at(30)},
	}
}

func TestAnalyzeSynthetic(t *testing.T) {
	a := Analyze(syntheticSpans())
	if a.Makespan != 30*time.Millisecond {
		t.Errorf("Makespan = %v", a.Makespan)
	}
	if a.Busy != 40*time.Millisecond {
		t.Errorf("Busy = %v", a.Busy)
	}
	if len(a.PerStmt) != 2 || a.PerStmt[0].Tasks != 2 || a.PerStmt[1].Busy != 20*time.Millisecond {
		t.Errorf("PerStmt = %+v", a.PerStmt)
	}
	if a.Overlap < 1.33 || a.Overlap > 1.34 {
		t.Errorf("Overlap = %f", a.Overlap)
	}
	// Both statements are 20ms busy; MaxStmt picks one of them.
	if a.MaxStmt.Busy != 20*time.Millisecond {
		t.Errorf("MaxStmt = %+v", a.MaxStmt)
	}
	if err := a.CheckBounds(40*time.Millisecond, 0); err != nil {
		t.Errorf("bounds: %v", err)
	}
	// A bogus short sequential time must violate the upper bound.
	if err := a.CheckBounds(10*time.Millisecond, 0); err == nil {
		t.Error("expected upper-bound violation")
	}
}

func TestUtilizationAndPerWorker(t *testing.T) {
	base := time.Unix(1000, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	spans := []Span{
		{Label: "a", Serial: 0, Worker: 0, Start: at(0), End: at(10)},
		{Label: "b", Serial: 0, Worker: 1, Start: at(0), End: at(10)},
	}
	a := Analyze(spans)
	if a.PerWorker[0] != 10*time.Millisecond || a.PerWorker[1] != 10*time.Millisecond {
		t.Fatalf("PerWorker = %v", a.PerWorker)
	}
	// 20ms busy over 10ms makespan on 2 workers = full utilization.
	if got := a.Utilization(2); got != 1.0 {
		t.Fatalf("Utilization(2) = %f, want 1.0", got)
	}
	if got := a.Utilization(4); got != 0.5 {
		t.Fatalf("Utilization(4) = %f, want 0.5", got)
	}
	if a.Utilization(0) != 0 || Analyze(nil).Utilization(4) != 0 {
		t.Fatal("degenerate utilization not zero")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Makespan != 0 || a.Busy != 0 || len(a.PerStmt) != 0 {
		t.Fatal("empty analysis not zero")
	}
}

func TestGanttSynthetic(t *testing.T) {
	out := Gantt(syntheticSpans(), map[int]string{0: "S", 1: "R"}, 30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "S") || !strings.HasPrefix(lines[1], "R") {
		t.Fatalf("row labels wrong:\n%s", out)
	}
	// S is busy for the first 20 of 30ms: first two-thirds filled.
	sRow := lines[0][strings.Index(lines[0], "|")+1:]
	if !strings.HasPrefix(sRow, "████") {
		t.Errorf("S row should start busy: %q", sRow)
	}
	if !strings.Contains(sRow, "░") {
		t.Errorf("S row should have idle tail: %q", sRow)
	}
	// R starts idle.
	rRow := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(rRow, "░") {
		t.Errorf("R row should start idle: %q", rRow)
	}
}

func TestGanttEmpty(t *testing.T) {
	if Gantt(nil, nil, 20) != "" || Gantt(syntheticSpans(), nil, 0) != "" {
		t.Fatal("expected empty gantt")
	}
}

func TestCollectorCountsUnmatchedFinish(t *testing.T) {
	c := NewCollector()
	reg := obs.NewRegistry()
	c.SetRegistry(reg)
	hook := c.Hook()
	hook(tasking.Event{Kind: tasking.EventEnd, TaskID: 7, When: time.Now()})
	if len(c.Spans()) != 0 {
		t.Fatal("unmatched finish produced a span")
	}
	if c.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", c.Dropped())
	}
	if got := reg.Snapshot().Counter("trace.events_dropped"); got != 1 {
		t.Fatalf("trace.events_dropped = %d, want 1", got)
	}
	if a := c.Analyze(); a.DroppedEvents != 1 {
		t.Fatalf("Analysis.DroppedEvents = %d, want 1", a.DroppedEvents)
	}
}

func TestCollectorStallFromReadyEvents(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	base := time.Unix(2000, 0)
	hook(tasking.Event{Kind: tasking.EventSubmit, TaskID: 1, Label: "a", When: base})
	hook(tasking.Event{Kind: tasking.EventReady, TaskID: 1, Label: "a", When: base.Add(time.Millisecond)})
	hook(tasking.Event{Kind: tasking.EventStart, TaskID: 1, Label: "a", Worker: 0, When: base.Add(3 * time.Millisecond)})
	hook(tasking.Event{Kind: tasking.EventEnd, TaskID: 1, Label: "a", Worker: 0, When: base.Add(7 * time.Millisecond)})
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if got := spans[0].Stall(); got != 2*time.Millisecond {
		t.Errorf("Stall = %v, want 2ms", got)
	}
	if got := spans[0].Duration(); got != 4*time.Millisecond {
		t.Errorf("Duration = %v, want 4ms", got)
	}
	a := Analyze(spans)
	if a.TotalStall != 2*time.Millisecond {
		t.Errorf("TotalStall = %v", a.TotalStall)
	}
}

// buildSleepChain constructs a 1-D chain program whose bodies sleep,
// giving the pipeline real overlap to measure.
func buildSleepChain(nests, rows int, d time.Duration) *kernels.Program {
	grids := make([]*kernels.Grid, nests+1)
	for i := range grids {
		grids[i] = kernels.NewGrid(rows)
	}
	b := scop.NewBuilder("sleepchain")
	for k := 0; k <= nests; k++ {
		b.Array(arr(k), 1)
	}
	for k := 1; k <= nests; k++ {
		src, dst := grids[k-1], grids[k]
		name := "S" + string(rune('0'+k))
		b.Stmt(name, aff.RectDomain(name, rows)).
			Writes(arr(k), aff.Var(1, 0)).
			Reads(arr(k-1), aff.Var(1, 0)).
			Body(func(iv isl.Vec) {
				time.Sleep(d)
				dst.Set(iv[0], 0, src.At(iv[0], 0)+1)
			})
	}
	sc := b.MustBuild()
	reset := func() {
		for i, g := range grids {
			g.SeedDeterministic(uint64(i))
		}
	}
	reset()
	return &kernels.Program{Name: "sleepchain", SCoP: sc, Reset: reset,
		Hash: func() uint64 { return grids[nests].Hash() }}
}

func arr(k int) string { return "G" + string(rune('0'+k)) }

// TestPipelineOverlapAndBounds measures a real pipelined execution:
// statements must overlap (Figure 2's behaviour) and satisfy the Eq. 5
// bounds against the sequential time.
func TestPipelineOverlapAndBounds(t *testing.T) {
	p := buildSleepChain(3, 12, 2*time.Millisecond)
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference time: every iteration sleeps.
	sequential := time.Duration(3*12) * 2 * time.Millisecond

	c := NewCollector()
	p.Reset()
	prog.RunTraced(4, c.Hook())
	a := Analyze(c.Spans())

	if len(a.Spans) != prog.NumTasks() {
		t.Fatalf("spans = %d, want %d", len(a.Spans), prog.NumTasks())
	}
	// Eq. 5 with generous slack for scheduler jitter.
	if err := a.CheckBounds(sequential*2, 20*time.Millisecond); err != nil {
		t.Error(err)
	}
	// The three nests must actually overlap: average concurrency
	// comfortably above 1.
	if a.Overlap < 1.2 {
		t.Errorf("Overlap = %.2f, expected pipelined nests to overlap", a.Overlap)
	}
	// Gantt renders one row per statement.
	g := Gantt(a.Spans, map[int]string{0: "S1", 1: "S2", 2: "S3"}, 40)
	if rows := strings.Count(g, "\n"); rows != 3 {
		t.Errorf("gantt rows = %d:\n%s", rows, g)
	}
}

// TestCollectorConcurrentReaders hammers the collector from hook
// writers and Analyze/Spans/Dropped readers at once — the serving
// scenario where stats are scraped while a traced run is in flight.
// Run under `make race` it proves the collector needs no external
// barrier; the assertions pin the consistency contract: an Analyze
// snapshot never tears (every observed span pairs a start before its
// end, and drops never undercount relative to an earlier snapshot).
func TestCollectorConcurrentReaders(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	base := time.Now()

	const writers, events = 4, 300
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < events; i++ {
				id := w*events + i
				when := base.Add(time.Duration(id) * time.Microsecond)
				if i%10 == 9 {
					// Orphan end: must count as a drop, never a span.
					hook(tasking.Event{Kind: tasking.EventEnd, TaskID: -id - 1, Worker: w, When: when})
					continue
				}
				hook(tasking.Event{Kind: tasking.EventReady, TaskID: id, Worker: -1, When: when})
				hook(tasking.Event{Kind: tasking.EventStart, TaskID: id, Serial: w, Worker: w, When: when})
				hook(tasking.Event{Kind: tasking.EventEnd, TaskID: id, Worker: w, When: when.Add(time.Microsecond)})
			}
		}(w)
	}

	readWG.Add(1)
	go func() {
		defer readWG.Done()
		prevDropped := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := c.Analyze()
			for _, s := range a.Spans {
				if s.End.Before(s.Start) {
					t.Error("span with end before start")
					return
				}
			}
			if a.DroppedEvents < prevDropped {
				t.Errorf("drop count went backwards: %d -> %d", prevDropped, a.DroppedEvents)
				return
			}
			prevDropped = a.DroppedEvents
			_ = c.Spans()
			_ = c.Dropped()
		}
	}()

	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if got := c.Dropped(); got != writers*events/10 {
		t.Fatalf("dropped = %d, want %d", got, writers*events/10)
	}
	if got := len(c.Spans()); got != writers*events*9/10 {
		t.Fatalf("spans = %d, want %d", got, writers*events*9/10)
	}
}

// TestSetRegistryBackfillsDrops: attaching a registry after drops were
// recorded backfills them, so the mirrored counter always equals
// Dropped() no matter the installation order.
func TestSetRegistryBackfillsDrops(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	now := time.Now()
	for i := 0; i < 3; i++ {
		hook(tasking.Event{Kind: tasking.EventEnd, TaskID: i, When: now})
	}
	reg := obs.NewRegistry()
	c.SetRegistry(reg)
	if got := reg.Snapshot().Counters["trace.events_dropped"]; got != 3 {
		t.Fatalf("backfilled counter = %d, want 3", got)
	}
	// Post-installation drops keep the mirror in sync.
	hook(tasking.Event{Kind: tasking.EventEnd, TaskID: 99, When: now})
	if got := reg.Snapshot().Counters["trace.events_dropped"]; got != 4 {
		t.Fatalf("counter after new drop = %d, want 4", got)
	}
	if c.Dropped() != 4 {
		t.Fatalf("Dropped() = %d, want 4", c.Dropped())
	}
}
