package trace

import (
	"strings"
	"testing"
	"time"
)

// at builds a span with millisecond start/end offsets from a fixed base,
// so durations are exact and host-independent.
func at(task, serial, worker int, label string, startMs, endMs int) Span {
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	return Span{
		Task:   task,
		Label:  label,
		Serial: serial,
		Worker: worker,
		Start:  base.Add(time.Duration(startMs) * time.Millisecond),
		End:    base.Add(time.Duration(endMs) * time.Millisecond),
	}
}

// TestCriticalPathClosedForm checks the DP against a hand-built DAG
// with a known longest chain.
//
//	0 (3ms) ──▶ 2 (5ms) ──▶ 4 (2ms)      chain A: 10ms
//	1 (4ms) ──▶ 3 (1ms) ──▶ 4            chain B: 7ms
//
// The heaviest chain is 0 → 2 → 4 at 10ms, even though task 1 alone
// is longer than task 0.
func TestCriticalPathClosedForm(t *testing.T) {
	spans := []Span{
		at(0, 0, 0, "S0[0]", 0, 3),
		at(1, 0, 1, "S0[1]", 0, 4),
		at(2, 1, 0, "S1[0]", 3, 8),
		at(3, 1, 1, "S1[1]", 4, 5),
		at(4, 2, 0, "S2[0]", 8, 10),
	}
	edges := [][2]int{{0, 2}, {1, 3}, {2, 4}, {3, 4}}
	cp := ComputeCriticalPath(spans, edges)
	if cp.Length != 10*time.Millisecond {
		t.Errorf("length = %v, want 10ms", cp.Length)
	}
	wantTasks := []int{0, 2, 4}
	if len(cp.Tasks) != len(wantTasks) {
		t.Fatalf("path = %v, want %v", cp.Tasks, wantTasks)
	}
	for i, id := range wantTasks {
		if cp.Tasks[i] != id {
			t.Fatalf("path = %v, want %v", cp.Tasks, wantTasks)
		}
	}
	if cp.Labels[1] != "S1[0]" {
		t.Errorf("labels = %v", cp.Labels)
	}
	s := cp.String()
	if !strings.Contains(s, "S0[0] -> S1[0] -> S2[0]") || !strings.Contains(s, "3 tasks") {
		t.Errorf("String() = %q", s)
	}
}

// TestCriticalPathNoEdges degenerates to the single longest task.
func TestCriticalPathNoEdges(t *testing.T) {
	spans := []Span{
		at(0, 0, 0, "a", 0, 2),
		at(1, 0, 1, "b", 0, 7),
		at(2, 0, 0, "c", 2, 5),
	}
	cp := ComputeCriticalPath(spans, nil)
	if cp.Length != 7*time.Millisecond || len(cp.Tasks) != 1 || cp.Tasks[0] != 1 {
		t.Errorf("cp = %+v", cp)
	}
}

// TestCriticalPathIgnoresMalformedEdges drops backward edges and edges
// referencing unknown tasks rather than corrupting the DP.
func TestCriticalPathIgnoresMalformedEdges(t *testing.T) {
	spans := []Span{
		at(0, 0, 0, "a", 0, 2),
		at(1, 0, 1, "b", 2, 4),
	}
	edges := [][2]int{{1, 0}, {0, 99}, {99, 1}, {0, 1}}
	cp := ComputeCriticalPath(spans, edges)
	if cp.Length != 4*time.Millisecond || len(cp.Tasks) != 2 {
		t.Errorf("cp = %+v", cp)
	}
}

// TestCriticalPathEmpty returns a zero value, and String says so.
func TestCriticalPathEmpty(t *testing.T) {
	cp := ComputeCriticalPath(nil, nil)
	if cp.Length != 0 || len(cp.Tasks) != 0 {
		t.Errorf("cp = %+v", cp)
	}
	if cp.String() != "(empty)" {
		t.Errorf("String() = %q", cp.String())
	}
}

// TestCriticalPathTruncatedString keeps long chains readable.
func TestCriticalPathTruncatedString(t *testing.T) {
	var spans []Span
	var edges [][2]int
	for i := 0; i < 10; i++ {
		spans = append(spans, at(i, 0, 0, "t", i, i+1))
		if i > 0 {
			edges = append(edges, [2]int{i - 1, i})
		}
	}
	s := ComputeCriticalPath(spans, edges).String()
	if !strings.Contains(s, "...") || !strings.Contains(s, "10 tasks") {
		t.Errorf("String() = %q", s)
	}
}
