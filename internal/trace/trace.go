// Package trace records and analyzes pipelined executions: per-task
// spans, per-statement busy times, overlap between loop nests (the
// behaviour Figure 2 illustrates), the Eq. 5/6 performance bounds
// (time(L_max) ≤ time(pipeline) ≤ time(sequential)), and an ASCII
// Gantt rendering of statement activity over time (the Figure 5
// picture).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tasking"
)

// Span is one completed task execution.
type Span struct {
	Task   int // runtime task id (submission order)
	Label  string
	Serial int       // statement index (the task's serialization key)
	Worker int       // worker that executed the task
	Ready  time.Time // when dependencies were satisfied; zero if unobserved
	Start  time.Time
	End    time.Time
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Stall returns how long the task sat ready before a worker picked it
// up, or 0 when the ready transition was not observed.
func (s Span) Stall() time.Duration {
	if s.Ready.IsZero() || s.Ready.After(s.Start) {
		return 0
	}
	return s.Start.Sub(s.Ready)
}

// Collector accumulates tasking events into spans. Install Hook on a
// runtime before submitting tasks.
type Collector struct {
	mu             sync.Mutex
	open           map[int]tasking.Event
	ready          map[int]time.Time
	spans          []Span
	dropped        int
	droppedCounter *obs.Counter
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		open:  make(map[int]tasking.Event),
		ready: make(map[int]time.Time),
	}
}

// SetRegistry mirrors the collector's drop count into the registry's
// "trace.events_dropped" counter, so hook-installation races surface in
// metrics instead of silently losing spans. Drops recorded before the
// registry was attached are backfilled, so the counter always equals
// Dropped() regardless of installation order.
func (c *Collector) SetRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.droppedCounter = reg.Counter("trace.events_dropped")
	if c.dropped > 0 {
		c.droppedCounter.Add(int64(c.dropped))
	}
}

// Reset discards the collected spans and any in-flight start/ready
// state so the collector can observe a fresh run (the introspection
// server's /debug/trace serves the most recent run, not an unbounded
// accumulation). The drop count — and its registry mirror — survive:
// they measure lifetime loss, not one run.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = c.spans[:0]
	clear(c.open)
	clear(c.ready)
}

// Hook returns the tracing callback to install with Runtime.SetTrace.
func (c *Collector) Hook() func(tasking.Event) {
	return func(e tasking.Event) {
		c.mu.Lock()
		defer c.mu.Unlock()
		switch e.Kind {
		case tasking.EventReady:
			c.ready[e.TaskID] = e.When
		case tasking.EventStart:
			c.open[e.TaskID] = e
		case tasking.EventEnd:
			s, ok := c.open[e.TaskID]
			if !ok {
				// An end with no matching start: the hook was installed
				// after the task began (or events were lost). Count it —
				// invisible drops hide installation races.
				c.dropped++
				if c.droppedCounter != nil {
					c.droppedCounter.Inc()
				}
				return
			}
			delete(c.open, e.TaskID)
			ready := c.ready[e.TaskID]
			delete(c.ready, e.TaskID)
			c.spans = append(c.spans, Span{
				Task:   e.TaskID,
				Label:  s.Label,
				Serial: s.Serial,
				Worker: s.Worker,
				Ready:  ready,
				Start:  s.When,
				End:    e.When,
			})
		}
	}
}

// Spans returns the completed spans sorted by start time.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Dropped returns how many end events arrived with no matching start.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Analyze summarizes the collected spans, carrying the collector's
// drop count into the result. The spans and the drop count are read
// under one lock acquisition, so the analysis is a consistent snapshot
// even while hooks are still firing — separate Spans()+Dropped() calls
// could tear (a drop recorded between them would be counted against
// the earlier span set).
func (c *Collector) Analyze() Analysis {
	c.mu.Lock()
	spans := make([]Span, len(c.spans))
	copy(spans, c.spans)
	dropped := c.dropped
	c.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	a := Analyze(spans)
	a.DroppedEvents = dropped
	return a
}

// StmtStat aggregates the spans of one statement (one loop nest).
type StmtStat struct {
	Serial int
	Tasks  int
	Busy   time.Duration // Σ task durations; nests are serialized, so
	// this approximates the nest's standalone running time
	First time.Time
	Last  time.Time
}

// Analysis summarizes a pipelined execution.
type Analysis struct {
	Spans     []Span
	Makespan  time.Duration // first start to last end: time(pipeline)
	Busy      time.Duration // Σ all task durations: ≈ time(sequential)
	MaxStmt   StmtStat      // the L_max nest of Eq. 5/6
	PerStmt   []StmtStat    // by statement index
	Overlap   float64       // Busy / Makespan: average concurrency
	StartTime time.Duration // Eq. 6: start of program to start of L_max
	FinishGap time.Duration // Eq. 6: end of L_max to end of program
	// TotalStall is Σ per-task ready→start gaps: time tasks spent
	// runnable but waiting for a free worker.
	TotalStall time.Duration
	// DroppedEvents counts end events with no matching start (set by
	// Collector.Analyze; 0 when analyzing bare spans).
	DroppedEvents int
	// PerWorker maps worker index to its total busy time; the spread
	// shows load balance across the pool.
	PerWorker map[int]time.Duration
}

// WorkerUtilization returns each worker's busy time divided by the
// makespan — the fraction of the execution it spent running tasks.
func (a Analysis) WorkerUtilization() map[int]float64 {
	out := map[int]float64{}
	if a.Makespan <= 0 {
		return out
	}
	for w, busy := range a.PerWorker {
		out[w] = float64(busy) / float64(a.Makespan)
	}
	return out
}

// Utilization returns Busy / (Makespan × workers): the fraction of the
// pool's capacity the execution used.
func (a Analysis) Utilization(workers int) float64 {
	if a.Makespan <= 0 || workers <= 0 {
		return 0
	}
	return float64(a.Busy) / (float64(a.Makespan) * float64(workers))
}

// Analyze computes the summary of a set of spans.
func Analyze(spans []Span) Analysis {
	a := Analysis{Spans: spans}
	if len(spans) == 0 {
		return a
	}
	byStmt := map[int]*StmtStat{}
	a.PerWorker = map[int]time.Duration{}
	var first, last time.Time
	for _, s := range spans {
		a.PerWorker[s.Worker] += s.Duration()
		a.TotalStall += s.Stall()
		if first.IsZero() || s.Start.Before(first) {
			first = s.Start
		}
		if s.End.After(last) {
			last = s.End
		}
		a.Busy += s.Duration()
		st, ok := byStmt[s.Serial]
		if !ok {
			st = &StmtStat{Serial: s.Serial, First: s.Start, Last: s.End}
			byStmt[s.Serial] = st
		}
		st.Tasks++
		st.Busy += s.Duration()
		if s.Start.Before(st.First) {
			st.First = s.Start
		}
		if s.End.After(st.Last) {
			st.Last = s.End
		}
	}
	a.Makespan = last.Sub(first)
	keys := make([]int, 0, len(byStmt))
	for k := range byStmt {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		a.PerStmt = append(a.PerStmt, *byStmt[k])
		if byStmt[k].Busy > a.MaxStmt.Busy {
			a.MaxStmt = *byStmt[k]
		}
	}
	if a.Makespan > 0 {
		a.Overlap = float64(a.Busy) / float64(a.Makespan)
	}
	a.StartTime = a.MaxStmt.First.Sub(first)
	a.FinishGap = last.Sub(a.MaxStmt.Last)
	return a
}

// CheckBounds verifies the Eq. 5 inequality chain on a measured
// execution against a measured sequential time:
//
//	time(L_max) ≤ time(pipeline) ≤ time(sequential)
//
// slack absorbs scheduler jitter on both ends. It returns nil when the
// bounds hold.
func (a Analysis) CheckBounds(sequential time.Duration, slack time.Duration) error {
	if a.MaxStmt.Busy > a.Makespan+slack {
		return fmt.Errorf("trace: time(L_max)=%v exceeds time(pipeline)=%v beyond slack %v",
			a.MaxStmt.Busy, a.Makespan, slack)
	}
	if a.Makespan > sequential+slack {
		return fmt.Errorf("trace: time(pipeline)=%v exceeds time(sequential)=%v beyond slack %v",
			a.Makespan, sequential, slack)
	}
	return nil
}

// Gantt renders per-statement activity over time as ASCII art, one row
// per statement index, width columns wide:
//
//	S0 |██████████░░░░░░░░|
//	S1 |░░░███████████████|
//
// A cell is filled when any task of the statement was running in that
// time bucket.
func Gantt(spans []Span, names map[int]string, width int) string {
	if len(spans) == 0 || width <= 0 {
		return ""
	}
	var first, last time.Time
	for _, s := range spans {
		if first.IsZero() || s.Start.Before(first) {
			first = s.Start
		}
		if s.End.After(last) {
			last = s.End
		}
	}
	total := last.Sub(first)
	if total <= 0 {
		total = time.Nanosecond
	}
	rows := map[int][]bool{}
	for _, s := range spans {
		row, ok := rows[s.Serial]
		if !ok {
			row = make([]bool, width)
			rows[s.Serial] = row
		}
		lo := int(float64(s.Start.Sub(first)) / float64(total) * float64(width))
		hi := int(float64(s.End.Sub(first)) / float64(total) * float64(width))
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			row[c] = true
		}
	}
	keys := make([]int, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		name := names[k]
		if name == "" {
			name = fmt.Sprintf("S%d", k)
		}
		fmt.Fprintf(&b, "%-8s |", name)
		for _, on := range rows[k] {
			if on {
				b.WriteRune('█')
			} else {
				b.WriteRune('░')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}
