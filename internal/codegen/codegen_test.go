package codegen

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzscop"
	"repro/internal/interp"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
	"repro/internal/tasking"
)

// runSequential executes a program's statements nest by nest in
// lexicographic order — the reference semantics.
func runSequential(p *kernels.Program) uint64 {
	p.Reset()
	for _, s := range p.SCoP.Stmts {
		for _, iv := range s.Domain.Elements() {
			s.Body(iv)
		}
	}
	return p.Hash()
}

func compile(t *testing.T, p *kernels.Program, opts core.Options) *TaskProgram {
	t.Helper()
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestVecCoderUnique(t *testing.T) {
	c := VecCoder{Stride: 21, NumStmts: 3}
	seen := map[int]string{}
	for s := 0; s < 3; s++ {
		for i := 0; i < 19; i++ {
			for j := 0; j < 19; j++ {
				addr := c.Encode(s, isl.NewVec(i, j))
				key := c.labelFor(s, i, j)
				if prev, dup := seen[addr]; dup {
					t.Fatalf("address collision: %s and %s -> %d", prev, key, addr)
				}
				seen[addr] = key
			}
		}
	}
}

func (c VecCoder) labelFor(s, i, j int) string {
	return strings.Join([]string{
		string(rune('A' + s)),
	}, "") + isl.NewVec(i, j).String()
}

func TestCompileListing1(t *testing.T) {
	p := kernels.Listing1(20)
	prog := compile(t, p, core.Options{})
	info, _ := core.Detect(p.SCoP, core.Options{})
	if prog.NumTasks() != info.TotalBlocks() {
		t.Fatalf("tasks = %d, want %d", prog.NumTasks(), info.TotalBlocks())
	}
	// Tasks appear statement by statement in program order.
	lastStmt := -1
	for _, task := range prog.Tasks {
		if task.Stmt.Index < lastStmt {
			t.Fatal("tasks out of statement order")
		}
		lastStmt = task.Stmt.Index
	}
	// Every in-address must match the out-address of an earlier task.
	outs := map[int]bool{}
	for _, task := range prog.Tasks {
		for _, in := range task.In {
			if !outs[in] {
				t.Fatalf("task %s depends on address %d with no earlier writer", task.Label, in)
			}
		}
		outs[task.Out] = true
	}
}

func TestPipelinedMatchesSequentialListing1(t *testing.T) {
	p := kernels.Listing1(20)
	want := runSequential(p)
	prog := compile(t, p, core.Options{})
	for _, workers := range []int{1, 2, 4, 8} {
		p.Reset()
		prog.Run(workers)
		if got := p.Hash(); got != want {
			t.Fatalf("workers=%d: pipelined hash %x != sequential %x", workers, got, want)
		}
	}
}

func TestPipelinedMatchesSequentialListing3(t *testing.T) {
	p := kernels.Listing3(16)
	want := runSequential(p)
	prog := compile(t, p, core.Options{})
	for trial := 0; trial < 10; trial++ {
		p.Reset()
		prog.Run(4)
		if got := p.Hash(); got != want {
			t.Fatalf("trial %d: pipelined hash %x != sequential %x", trial, got, want)
		}
	}
}

func TestPipelinedMatchesSequentialCoarse(t *testing.T) {
	p := kernels.Listing3(16)
	want := runSequential(p)
	prog := compile(t, p, core.Options{MinBlockIters: 6})
	p.Reset()
	prog.Run(4)
	if got := p.Hash(); got != want {
		t.Fatalf("coarse-grained pipelined hash %x != sequential %x", got, want)
	}
}

func TestCompileRejectsMissingBodies(t *testing.T) {
	b := scop.NewBuilder("nobody")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 4)).Writes("A", aff.Var(1, 0))
	sc := b.MustBuild()
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info); err == nil {
		t.Fatal("expected error for missing bodies")
	}
}

func TestRunTracedReportsConcurrency(t *testing.T) {
	p := kernels.Listing3(16)
	prog := compile(t, p, core.Options{})
	p.Reset()
	var mu sync.Mutex
	events := map[tasking.EventKind]int{}
	executed, maxRun := prog.RunTraced(4, func(e tasking.Event) {
		mu.Lock()
		events[e.Kind]++
		mu.Unlock()
	})
	if executed != prog.NumTasks() {
		t.Fatalf("executed = %d, want %d", executed, prog.NumTasks())
	}
	// Every task passes through the full submit/ready/start/end cycle.
	for _, k := range []tasking.EventKind{tasking.EventSubmit, tasking.EventReady, tasking.EventStart, tasking.EventEnd} {
		if events[k] != prog.NumTasks() {
			t.Fatalf("%v events = %d, want %d", k, events[k], prog.NumTasks())
		}
	}
	if maxRun < 1 {
		t.Fatalf("maxConcurrent = %d", maxRun)
	}
}

// TestQuickAddressUniqueness fuzzes the §5.4 integer dependency
// encoding across random programs: no two blocks of any statements may
// share a dependency address.
func TestQuickAddressUniqueness(t *testing.T) {
	for seed := int64(7000); seed < 7060; seed++ {
		r := rand.New(rand.NewSource(seed))
		sc := fuzzscop.Random(r, fuzzscop.Config{MaxNests: 5, MaxExtent: 9})
		p := interp.Programify(sc)
		_ = p
		info, err := core.Detect(sc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(info)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]string{}
		for _, task := range prog.Tasks {
			if prev, dup := seen[task.Out]; dup {
				t.Fatalf("seed %d: address %d used by %s and %s", seed, task.Out, prev, task.Label)
			}
			seen[task.Out] = task.Label
		}
	}
}

func TestHybridCompileRunInPackage(t *testing.T) {
	p := kernels.MMChain(2, 10, kernels.MM)
	want := runSequential(p)
	// Coarsen so blocks hold several members and the parallel-body
	// path actually executes.
	info, err := core.Detect(p.SCoP, core.Options{MinBlockIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileWithOptions(info, CompileOptions{IntraBlockWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	hasParallel := false
	for _, task := range prog.Tasks {
		if task.ParallelBody && len(task.Members) > 1 {
			hasParallel = true
		}
	}
	if !hasParallel {
		t.Fatal("no multi-member parallel-body tasks on a conflict-free chain")
	}
	for trial := 0; trial < 5; trial++ {
		p.Reset()
		prog.Run(4)
		if got := p.Hash(); got != want {
			t.Fatalf("trial %d: hybrid run differs from sequential", trial)
		}
	}
}
