// Package codegen lowers a detected pipeline structure to an
// executable task program for the tasking runtime, mirroring the
// paper's code-generation phase (§5.4): every pipeline block becomes
// one task whose body runs the block's iterations in order, and the
// block-leader vectors of the dependency relations are converted to
// unique integer dependency addresses paired with a per-statement
// writer index.
package codegen

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/schedtree"
	"repro/internal/scop"
	"repro/internal/tasking"
)

// TaskSpec is one generated task before submission to the runtime.
type TaskSpec struct {
	Stmt    *scop.Statement
	Leader  isl.Vec
	Members []isl.Vec
	Label   string
	Out     int
	In      []int
	Serial  int
	// ParallelBody marks tasks whose members may run concurrently
	// (the statement has no intra-nest conflicts); set only under
	// hybrid compilation.
	ParallelBody bool
}

// CompileOptions tunes code generation beyond the paper's prototype.
type CompileOptions struct {
	// IntraBlockWorkers, when > 1, enables the hybrid mode the paper's
	// §7 raises (combining cross-loop pipelining with other
	// parallelism): tasks of statements that carry no intra-nest
	// conflicts execute their block members concurrently on up to this
	// many goroutines. Blocks still run in order and cross-loop
	// dependencies are unchanged, so correctness is unaffected.
	IntraBlockWorkers int
	// HybridSchedule enables static/dynamic scheduling of the lowered
	// IR: Lower classifies single-predecessor producer→consumer pairs
	// into static chains (runtime.FuseChains) and every Run executes
	// with runtime.ExecOptions.Hybrid, so fused consumers run inline
	// on the worker that finished their producer while cross-chain
	// edges stay on the work-stealing scheduler. Results are
	// bit-identical to the pure-dynamic mode.
	HybridSchedule bool
	// Obs, when non-nil, receives compile-phase timings
	// ("codegen.schedule_tree", "codegen.lower") and counts
	// ("codegen.tasks", "sched.tree_nodes").
	Obs *obs.Recorder
}

// TaskProgram is the compiled pipelined program: tasks in creation
// (program) order plus the address-encoding parameters.
type TaskProgram struct {
	SCoP   *scop.SCoP
	Tasks  []TaskSpec
	Coder  VecCoder
	Opts   CompileOptions
	blocks int

	// lowered caches the compiled runtime IR (see Lower): the §5.5
	// dependency addresses are resolved once, then every run reuses the
	// flat dependency arrays.
	lowerOnce sync.Once
	lowered   *runtime.Program
}

// VecCoder converts block-leader vectors of a given statement to
// unique integer dependency addresses, the §5.4 "multiply each
// dimension by a large enough integer, add them, then pair with an
// index" scheme.
type VecCoder struct {
	Stride   int // strictly greater than any iteration coordinate
	NumStmts int
}

// Encode returns the dependency address for the leader of a block of
// statement stmtIndex.
func (c VecCoder) Encode(stmtIndex int, leader isl.Vec) int {
	code := 0
	for _, x := range leader {
		code = code*c.Stride + (x + 1) // +1 keeps 0-coordinates distinct from absent dims
	}
	return code*c.NumStmts + stmtIndex
}

// newCoder sizes the stride from the largest coordinate in any
// statement domain.
func newCoder(sc *scop.SCoP) VecCoder {
	maxCoord := 0
	for _, s := range sc.Stmts {
		if m, ok := s.Domain.Lexmax(); ok {
			for _, x := range m {
				if x > maxCoord {
					maxCoord = x
				}
			}
		}
	}
	return VecCoder{Stride: maxCoord + 2, NumStmts: len(sc.Stmts)}
}

// Compile lowers the detection result to a task program. Every
// statement must carry an executable body. Tasks are produced in the
// order the transformed program creates them: statement by statement,
// blocks in execution order (the schedule-tree order).
func Compile(info *core.Info) (*TaskProgram, error) {
	return CompileWithOptions(info, CompileOptions{})
}

// CompileWithOptions is Compile with code-generation options.
func CompileWithOptions(info *core.Info, opts CompileOptions) (*TaskProgram, error) {
	if !info.SCoP.HasBodies() {
		return nil, fmt.Errorf("codegen: scop %q has statements without executable bodies", info.SCoP.Name)
	}
	return compileTasks(info, opts)
}

// CompileForEmission lowers the task structure only — block leaders,
// members, and the §5.4 dependency addresses — without requiring (or
// ever touching) statement bodies. It is the seam the AOT back end
// (internal/ir, internal/gogen) compiles through: emitted programs
// carry their own statement bodies, so attaching interpreter bodies to
// the caller's SCoP, as gogen.Emit once did as a side effect, is
// neither needed nor allowed. The returned program must not be
// executed in process unless the SCoP carries bodies.
func CompileForEmission(info *core.Info) (*TaskProgram, error) {
	return compileTasks(info, CompileOptions{})
}

func compileTasks(info *core.Info, opts CompileOptions) (*TaskProgram, error) {
	coder := newCoder(info.SCoP)
	prog := &TaskProgram{SCoP: info.SCoP, Coder: coder, Opts: opts}

	parallelBody := make([]bool, len(info.SCoP.Stmts))
	if opts.IntraBlockWorkers > 1 {
		for _, s := range info.SCoP.Stmts {
			parallelBody[s.Index] = !info.Graph.HasIntraConflicts(s)
		}
	}

	stop := opts.Obs.Phase("codegen.schedule_tree")
	tree := schedtree.Build(info)
	stop()
	opts.Obs.SetGauge("sched.tree_nodes", int64(schedtree.NumNodes(tree)))

	stop = opts.Obs.Phase("codegen.lower")
	defer stop()
	instances := schedtree.Flatten(tree)
	for _, inst := range instances {
		stmt := inst.Task.Stmt
		spec := TaskSpec{
			Stmt:         stmt,
			Leader:       inst.Leader,
			Members:      inst.Members,
			Label:        fmt.Sprintf("%s%v", stmt.Name, inst.Leader),
			Out:          coder.Encode(stmt.Index, inst.Leader),
			Serial:       stmt.Index,
			ParallelBody: parallelBody[stmt.Index],
		}
		for _, dep := range inst.Task.InDeps {
			for _, q := range dep.Rel.Lookup(inst.Leader) {
				spec.In = append(spec.In, coder.Encode(dep.Src.Index, q))
			}
		}
		prog.Tasks = append(prog.Tasks, spec)
	}
	prog.blocks = len(prog.Tasks)
	opts.Obs.Count("codegen.tasks", int64(prog.blocks))
	return prog, nil
}

// NumTasks returns the number of tasks the program creates.
func (p *TaskProgram) NumTasks() int { return p.blocks }

// DataEdges returns the realized cross-statement dependency edges of
// the task DAG as (producer, consumer) pairs of task indices, resolved
// the way the runtime resolves them: each In address against the last
// previously created task writing it. Edges always point forward in
// creation order.
func (p *TaskProgram) DataEdges() [][2]int {
	lastWriter := map[int]int{}
	var edges [][2]int
	for i := range p.Tasks {
		spec := &p.Tasks[i]
		for _, addr := range spec.In {
			if j, ok := lastWriter[addr]; ok {
				edges = append(edges, [2]int{j, i})
			}
		}
		if spec.Out >= 0 {
			lastWriter[spec.Out] = i
		}
	}
	return edges
}

// SerialEdges returns the per-statement serialization chains (the
// funcCount self-dependencies) as (predecessor, successor) pairs of
// task indices.
func (p *TaskProgram) SerialEdges() [][2]int {
	lastSerial := map[int]int{}
	var edges [][2]int
	for i := range p.Tasks {
		key := p.Tasks[i].Serial
		if key < 0 {
			continue
		}
		if j, ok := lastSerial[key]; ok {
			edges = append(edges, [2]int{j, i})
		}
		lastSerial[key] = i
	}
	return edges
}

// PrecedenceEdges returns all realized scheduling constraints of the
// task DAG: data-dependency edges plus serial chains — the edge set the
// critical-path analysis walks.
func (p *TaskProgram) PrecedenceEdges() [][2]int {
	return append(p.DataEdges(), p.SerialEdges()...)
}

// Layer is the minimal tasking interface a back end must provide; the
// transformation targets it rather than any specific runtime (§7's
// "tasking layer is independent" design). Both the OpenMP-style
// runtime (package tasking) and the futures runtime (package futures)
// satisfy it.
type Layer interface {
	Submit(tasking.Task)
	Wait()
	Close()
}

// Submit creates all tasks on the given tasking layer in program
// order.
func (p *TaskProgram) Submit(r Layer) {
	for i := range p.Tasks {
		r.Submit(p.task(i))
	}
}

// task materializes task i — body closure plus dependency interface —
// for submission to a streaming layer or lowering into the IR.
func (p *TaskProgram) task(i int) runtime.Task {
	spec := &p.Tasks[i]
	body := spec.Stmt.Body
	members := spec.Members
	fn := func() {
		for _, iv := range members {
			body(iv)
		}
	}
	if spec.ParallelBody && len(members) > 1 {
		workers := p.Opts.IntraBlockWorkers
		fn = func() { runMembersParallel(body, members, workers) }
	}
	return runtime.Task{
		Fn:     fn,
		Label:  spec.Label,
		Out:    spec.Out,
		In:     spec.In,
		Serial: spec.Serial,
	}
}

// BuildIR lowers the program to the compiled runtime IR: every task's
// In addresses and Serial key are resolved against the last-writer and
// last-serial tables once, producing flat dependency arrays (CSR
// adjacency plus initial indegrees) that every subsequent execution
// reuses. BuildIR always lowers afresh; use Lower for the memoized
// program-lifetime IR.
func (p *TaskProgram) BuildIR() *runtime.Program {
	b := runtime.NewBuilder(len(p.Tasks))
	for i := range p.Tasks {
		b.Add(p.task(i))
	}
	return b.Build()
}

// Lower returns the program's compiled runtime IR, lowering it on
// first use and reusing it afterwards. The IR is immutable and safe
// for concurrent and repeated execution.
func (p *TaskProgram) Lower() *runtime.Program {
	return p.LowerObserved(nil)
}

// LowerObserved is Lower with observability: a first lowering is timed
// under the "codegen.lower_ir" phase, and every memoized reuse counts
// one "runtime.ir_reuse" hit.
func (p *TaskProgram) LowerObserved(rec *obs.Recorder) *runtime.Program {
	hit := true
	p.lowerOnce.Do(func() {
		hit = false
		stop := rec.Phase("codegen.lower_ir")
		p.lowered = p.BuildIR()
		if p.Opts.HybridSchedule {
			rec.Count("codegen.chain_fused_edges", int64(p.lowered.FuseChains()))
		}
		stop()
	})
	if hit {
		rec.Count("runtime.ir_reuse", 1)
	}
	return p.lowered
}

// runMembersParallel executes a conflict-free block's members on up to
// workers goroutines (hybrid intra-block parallelism).
func runMembersParallel(body scop.Body, members []isl.Vec, workers int) {
	if workers > len(members) {
		workers = len(members)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := w; k < len(members); k += workers {
				body(members[k])
			}
		}(w)
	}
	wg.Wait()
}

// Run executes the program's compiled IR with the given worker count
// and blocks until completion. The IR is lowered on first use and
// reused by every later Run.
func (p *TaskProgram) Run(workers int) {
	p.Lower().Execute(workers, p.ExecOpts())
}

// ExecOpts returns the execution options the program's compile
// options imply (currently just the hybrid scheduling mode); callers
// layer tracing and metrics on top.
func (p *TaskProgram) ExecOpts() runtime.ExecOptions {
	return runtime.ExecOptions{Hybrid: p.Opts.HybridSchedule}
}

// RunTraced executes the program's compiled IR with a tracing callback
// installed.
func (p *TaskProgram) RunTraced(workers int, trace func(tasking.Event)) (executed, maxConcurrent int) {
	eo := p.ExecOpts()
	eo.Trace = trace
	st := p.Lower().Execute(workers, eo)
	return st.Executed, st.MaxConcurrent
}
