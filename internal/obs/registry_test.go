package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	g.Max(3)
	if g.Value() != 5 {
		t.Error("Max lowered the gauge")
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Error("Max did not raise the gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 1, 1} // ≤10, ≤100, +Inf
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, b.Count, want[i])
		}
	}
	if s.Buckets[2].UpperBound >= 0 {
		t.Error("last bucket must be +Inf (negative UpperBound)")
	}
	if m := h.Mean(); m != 1026.0/4 {
		t.Errorf("mean = %f", m)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; the
// -race run of this test is the concurrency-safety lock-in the
// observability layer promises.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(fmt.Sprintf("worker.%d.count", w)).Inc()
				r.Gauge("shared.depth").Add(1)
				r.Gauge("shared.depth").Add(-1)
				r.Gauge("shared.peak").Max(int64(i))
				r.Histogram("shared.lat", nil).Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("shared.count"); got != workers*per {
		t.Errorf("shared.count = %d, want %d", got, workers*per)
	}
	if got := s.Gauge("shared.depth"); got != 0 {
		t.Errorf("shared.depth = %d, want 0", got)
	}
	if got := s.Gauge("shared.peak"); got != per-1 {
		t.Errorf("shared.peak = %d, want %d", got, per-1)
	}
	if got := s.Histograms["shared.lat"].Count; got != workers*per {
		t.Errorf("histogram count = %d", got)
	}
	if len(s.Names()) < workers+4 {
		t.Errorf("Names() = %d entries", len(s.Names()))
	}
}

func TestSnapshotAbsentNames(t *testing.T) {
	s := NewRegistry().Snapshot()
	if s.Counter("nope") != 0 || s.Gauge("nope") != 0 {
		t.Error("absent metrics must read 0")
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("q.empty", []int64{10, 100})
	s := r.Snapshot().Histograms["q.empty"]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("zero-value Quantile = %v, want 0", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.interp", []int64{10, 100})
	// 10 observations in (0,10], 10 in (10,100], none beyond.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(50)
	}
	s := r.Snapshot().Histograms["q.interp"]
	// Rank 10 is the top of the first bucket; rank 15 is halfway through
	// the second, interpolating 10 + 0.5*(100-10) = 55.
	if got := s.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	if got := s.Quantile(0.75); got != 55 {
		t.Errorf("p75 = %v, want 55", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	// Clamping: out-of-range q behaves like the endpoints.
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want %v", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("Quantile(2) = %v, want %v", got, s.Quantile(1))
	}
}

func TestQuantileOneBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.one", []int64{8})
	for i := 0; i < 4; i++ {
		h.Observe(2)
	}
	s := r.Snapshot().Histograms["q.one"]
	// One finite bucket with lower edge 0: quantiles interpolate 0..8.
	if got := s.Quantile(0.5); got != 4 {
		t.Errorf("one-bucket p50 = %v, want 4", got)
	}
	if got := s.Quantile(1); got != 8 {
		t.Errorf("one-bucket p100 = %v, want 8", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.over", []int64{10, 100})
	h.Observe(5)
	h.Observe(1_000_000) // lands in +Inf
	s := r.Snapshot().Histograms["q.over"]
	// Ranks in the overflow bucket clamp to the highest finite bound.
	if got := s.Quantile(0.99); got != 100 {
		t.Errorf("overflow p99 = %v, want 100", got)
	}
	// A histogram whose only mass is the overflow bucket still clamps.
	h2 := r.Histogram("q.onlyover", []int64{10})
	h2.Observe(99)
	s2 := r.Snapshot().Histograms["q.onlyover"]
	if got := s2.Quantile(0.5); got != 10 {
		t.Errorf("overflow-only p50 = %v, want 10", got)
	}
}

func TestRingEvictedCounter(t *testing.T) {
	reg := NewRegistry()
	r := NewRing(2)
	r.SetRegistry(reg)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Name: "e"})
	}
	if got := reg.Snapshot().Counter("obs.events_evicted"); got != 3 {
		t.Fatalf("obs.events_evicted = %d, want 3", got)
	}
	if r.Evicted() != 3 {
		t.Fatalf("Evicted() = %d, want 3", r.Evicted())
	}
	// Late attachment backfills drops recorded before the registry.
	late := NewRing(1)
	late.Emit(Event{})
	late.Emit(Event{})
	late.Emit(Event{})
	reg2 := NewRegistry()
	late.SetRegistry(reg2)
	if got := reg2.Snapshot().Counter("obs.events_evicted"); got != 2 {
		t.Fatalf("backfilled obs.events_evicted = %d, want 2", got)
	}
	late.Emit(Event{})
	if got := reg2.Snapshot().Counter("obs.events_evicted"); got != 3 {
		t.Fatalf("post-backfill obs.events_evicted = %d, want 3", got)
	}
}
