package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	g.Max(3)
	if g.Value() != 5 {
		t.Error("Max lowered the gauge")
	}
	g.Max(9)
	if g.Value() != 9 {
		t.Error("Max did not raise the gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1026 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 1, 1} // ≤10, ≤100, +Inf
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, b.Count, want[i])
		}
	}
	if s.Buckets[2].UpperBound >= 0 {
		t.Error("last bucket must be +Inf (negative UpperBound)")
	}
	if m := h.Mean(); m != 1026.0/4 {
		t.Errorf("mean = %f", m)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; the
// -race run of this test is the concurrency-safety lock-in the
// observability layer promises.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(fmt.Sprintf("worker.%d.count", w)).Inc()
				r.Gauge("shared.depth").Add(1)
				r.Gauge("shared.depth").Add(-1)
				r.Gauge("shared.peak").Max(int64(i))
				r.Histogram("shared.lat", nil).Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("shared.count"); got != workers*per {
		t.Errorf("shared.count = %d, want %d", got, workers*per)
	}
	if got := s.Gauge("shared.depth"); got != 0 {
		t.Errorf("shared.depth = %d, want 0", got)
	}
	if got := s.Gauge("shared.peak"); got != per-1 {
		t.Errorf("shared.peak = %d, want %d", got, per-1)
	}
	if got := s.Histograms["shared.lat"].Count; got != workers*per {
		t.Errorf("histogram count = %d", got)
	}
	if len(s.Names()) < workers+4 {
		t.Errorf("Names() = %d entries", len(s.Names()))
	}
}

func TestSnapshotAbsentNames(t *testing.T) {
	s := NewRegistry().Snapshot()
	if s.Counter("nope") != 0 || s.Gauge("nope") != 0 {
		t.Error("absent metrics must read 0")
	}
}
