// Package obs is the dependency-free observability substrate: a
// metrics registry (counters, gauges, fixed-bucket histograms), an
// ordered phase timer for compile-side attribution, and a bounded
// structured-event sink. Everything is safe for concurrent use (and
// exercised under -race); the hot-path instruments are single atomic
// operations so instrumented executions stay within a few percent of
// uninstrumented ones.
//
// Metric names are flat dotted strings ("tasking.queue_depth"); the
// registry shards its name tables by hash so lookups from many worker
// goroutines do not serialize on one mutex. See docs/OBSERVABILITY.md
// for the catalogue of names the pipeline emits.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Max raises the gauge to v if v is larger (peak tracking).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are
// inclusive upper bounds in ascending order; an implicit +Inf bucket
// catches the rest. Observations are single atomic adds.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Int64
}

// DurationBuckets is the default nanosecond bucket ladder for
// latency-style histograms: 1µs to ~1s in powers of four.
var DurationBuckets = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_024_000, 4_096_000, 16_384_000, 65_536_000, 262_144_000, 1_048_576_000,
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	UpperBound int64 // inclusive; the last bucket has UpperBound < 0 meaning +Inf
	Count      int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank, assuming observations spread uniformly within each
// bucket — the same estimator Prometheus's histogram_quantile uses.
// The first bucket interpolates from a lower edge of 0 (all recorded
// values are durations/sizes, never negative). Ranks landing in the
// +Inf overflow bucket clamp to the highest finite bound: there is no
// upper edge to interpolate toward, so the estimate is a lower bound
// on the true quantile there. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum, lower float64
	for _, b := range s.Buckets {
		if b.UpperBound < 0 {
			// Overflow bucket: clamp to the last finite bound (0 when
			// the histogram has no finite buckets at all).
			return lower
		}
		upper := float64(b.UpperBound)
		next := cum + float64(b.Count)
		if b.Count > 0 && next >= rank {
			return lower + (rank-cum)/float64(b.Count)*(upper-lower)
		}
		cum = next
		lower = upper
	}
	return lower
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		ub := int64(-1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: h.counts[i].Load()})
	}
	return s
}

const numShards = 16

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. Lookups return the same instrument for the same name,
// creating it on first use, so callers may either cache the pointer
// (hot paths) or look up by name each time (setup code).
type Registry struct {
	shards [numShards]shard
}

type shard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].counters = map[string]*Counter{}
		r.shards[i].gauges = map[string]*Gauge{}
		r.shards[i].histograms = map[string]*Histogram{}
	}
	return r
}

// fnv-1a, inlined to keep the package dependency-free of hash/fnv's
// allocation-per-call Write path.
func shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % numShards)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds; nil bounds
// default to DurationBuckets).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	s := &r.shards[shardOf(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		s.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the snapshotted counter value, 0 when absent.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted gauge value, 0 when absent.
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Names returns all metric names in the snapshot, sorted.
func (s Snapshot) Names() []string {
	var out []string
	for k := range s.Counters {
		out = append(out, k)
	}
	for k := range s.Gauges {
		out = append(out, k)
	}
	for k := range s.Histograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every metric's current value. Concurrent updates
// during the copy land in either the snapshot or the next one.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for k, c := range s.counters {
			out.Counters[k] = c.Value()
		}
		for k, g := range s.gauges {
			out.Gauges[k] = g.Value()
		}
		for k, h := range s.histograms {
			out.Histograms[k] = h.snapshot()
		}
		s.mu.Unlock()
	}
	return out
}
