package obs

import (
	"sort"
	"sync"
	"time"
)

// PhaseSpan is one timed phase of a compile or run.
type PhaseSpan struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Phases records named, possibly nested phase timings in start order.
// All methods are safe for concurrent use and no-ops on a nil receiver,
// so instrumented code can call unconditionally.
type Phases struct {
	mu    sync.Mutex
	spans []PhaseSpan
}

// Start begins timing a phase and returns the function that ends it.
// The span is recorded when the stop function runs.
func (p *Phases) Start(name string) (stop func()) {
	if p == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		p.mu.Lock()
		p.spans = append(p.spans, PhaseSpan{Name: name, Start: begin, Duration: d})
		p.mu.Unlock()
	}
}

// Spans returns the recorded phases sorted by start time.
func (p *Phases) Spans() []PhaseSpan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PhaseSpan, len(p.spans))
	copy(out, p.spans)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Recorder bundles the three observability channels one execution
// threads through the stack: a metrics registry, a phase timer, and an
// optional structured-event sink. Every method is a no-op on a nil
// receiver, so packages accept a *Recorder and instrument
// unconditionally.
type Recorder struct {
	Reg    *Registry
	Phases *Phases
	Events Sink
}

// NewRecorder returns a recorder with a fresh registry and phase timer
// and no event sink.
func NewRecorder() *Recorder {
	return &Recorder{Reg: NewRegistry(), Phases: &Phases{}}
}

// Phase starts a named phase; call the returned stop function to
// record it (and emit a phase event when a sink is installed).
func (r *Recorder) Phase(name string) (stop func()) {
	if r == nil || r.Phases == nil {
		return func() {}
	}
	inner := r.Phases.Start(name)
	if r.Events == nil {
		return inner
	}
	return func() {
		inner()
		r.Emit("phase", map[string]any{"name": name})
	}
}

// Count adds n to the named counter.
func (r *Recorder) Count(name string, n int64) {
	if r == nil || r.Reg == nil {
		return
	}
	r.Reg.Counter(name).Add(n)
}

// SetGauge stores v in the named gauge.
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil || r.Reg == nil {
		return
	}
	r.Reg.Gauge(name).Set(v)
}

// Emit sends a structured event to the sink, if one is installed.
func (r *Recorder) Emit(name string, fields map[string]any) {
	if r == nil || r.Events == nil {
		return
	}
	r.Events.Emit(Event{Name: name, When: time.Now(), Fields: fields})
}

// Snapshot copies the registry, or returns an empty snapshot without
// one.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil || r.Reg == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]int64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	return r.Reg.Snapshot()
}
