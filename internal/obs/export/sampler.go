package export

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultSampleInterval is the sampling period a Sampler built with
// interval <= 0 gets.
const DefaultSampleInterval = 250 * time.Millisecond

// DefaultSampleCapacity is the ring bound a Sampler built with
// capacity <= 0 gets: at the default interval it retains one minute of
// history.
const DefaultSampleCapacity = 240

// HistogramStats is the per-sample digest of one histogram: the
// cumulative count/sum plus the interpolated p50/p95/p99 estimates
// (HistogramSnapshot.Quantile).
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Sample is one timestamped observation of the registry: cumulative
// counter values plus their deltas against the previous sample (the
// rate numerator), instantaneous gauges, and histogram digests.
type Sample struct {
	When       time.Time                 `json:"when"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Deltas     map[string]int64          `json:"deltas,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Series is the JSON shape of a sampler dump.
type Series struct {
	IntervalNS int64    `json:"interval_ns"`
	Capacity   int      `json:"capacity"`
	Evicted    int64    `json:"evicted"`
	Samples    []Sample `json:"samples"`
}

// Sampler periodically snapshots a metrics source into a fixed-capacity
// ring of timestamped samples, so a scraper (or a human at
// /debug/series) can read a recent time series without the registry
// retaining any history itself. All methods are safe for concurrent
// use; the background goroutine runs between Start and Stop.
type Sampler struct {
	src      func() obs.Snapshot
	interval time.Duration

	mu      sync.Mutex
	ring    []Sample
	next    int
	full    bool
	evicted int64
	prev    map[string]int64 // counter values at the previous sample
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler builds a sampler over src (typically Registry.Snapshot of
// a session registry, which already carries the detect/cache/runtime
// families — scheduler steal_count, queue_depth, deps_resolved
// included). interval <= 0 means DefaultSampleInterval; capacity <= 0
// means DefaultSampleCapacity.
func NewSampler(src func() obs.Snapshot, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		src:      src,
		interval: interval,
		ring:     make([]Sample, capacity),
	}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the background sampling goroutine (taking one sample
// immediately, so the series is never empty after Start). It is a
// no-op when the sampler is already running.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.sampleLocked(time.Now())
	go s.loop(s.stop, s.done)
}

// Stop halts the background goroutine and waits for it to exit. It is
// a no-op when the sampler is not running.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (s *Sampler) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.TakeSample(now)
		}
	}
}

// TakeSample records one sample stamped now (zero means time.Now).
// The background loop calls it on every tick; tests and push-style
// callers may call it directly, running or not.
func (s *Sampler) TakeSample(now time.Time) {
	if now.IsZero() {
		now = time.Now()
	}
	s.mu.Lock()
	s.sampleLocked(now)
	s.mu.Unlock()
}

func (s *Sampler) sampleLocked(now time.Time) {
	snap := s.src()
	sm := Sample{When: now}
	if len(snap.Counters) > 0 {
		sm.Counters = snap.Counters
		sm.Deltas = make(map[string]int64, len(snap.Counters))
		for k, v := range snap.Counters {
			sm.Deltas[k] = v - s.prev[k]
		}
	}
	if len(snap.Gauges) > 0 {
		sm.Gauges = snap.Gauges
	}
	if len(snap.Histograms) > 0 {
		sm.Histograms = make(map[string]HistogramStats, len(snap.Histograms))
		for k, h := range snap.Histograms {
			sm.Histograms[k] = HistogramStats{
				Count: h.Count,
				Sum:   h.Sum,
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			}
		}
	}
	s.prev = snap.Counters
	if s.full {
		s.evicted++
	}
	s.ring[s.next] = sm
	s.next++
	if s.next == len(s.ring) {
		s.next, s.full = 0, true
	}
}

// Samples returns the retained samples oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]Sample, s.next)
		copy(out, s.ring[:s.next])
		return out
	}
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Evicted returns how many samples were dropped to stay within
// capacity.
func (s *Sampler) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// WriteJSON dumps the retained series as one JSON object.
func (s *Sampler) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	capacity, evicted := len(s.ring), s.evicted
	s.mu.Unlock()
	out := Series{
		IntervalNS: s.interval.Nanoseconds(),
		Capacity:   capacity,
		Evicted:    evicted,
		Samples:    s.Samples(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
