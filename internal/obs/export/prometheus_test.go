package export_test

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/obs/export"
)

var (
	nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	// sampleRE matches one exposition sample line: name, optional le
	// label, integer value.
	sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|[0-9]+)"\})? -?[0-9]+$`)
	helpRE   = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"detect.pairs":             "detect_pairs",
		"runtime.worker_busy_ns.0": "runtime_worker_busy_ns_0",
		"already_valid:name":       "already_valid:name",
		"9starts.with.digit":       "_9starts_with_digit",
		"weird-chars/and spaces":   "weird_chars_and_spaces",
		"":                         "_",
		"_9starts_with_digit":      "_9starts_with_digit", // idempotent on its own output
		"runtime_worker_busy_ns_0": "runtime_worker_busy_ns_0",
	}
	for in, want := range cases {
		if got := export.SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	for in := range cases {
		s := export.SanitizeMetricName(in)
		if !export.MetricNameValid(s) {
			t.Errorf("sanitized %q -> %q is not a valid metric name", in, s)
		}
		if again := export.SanitizeMetricName(s); again != s {
			t.Errorf("sanitize not idempotent: %q -> %q -> %q", in, s, again)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("detect.pairs").Add(42)
	reg.Gauge("runtime.queue_depth").Set(3)
	h := reg.Histogram("runtime.task_ns", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := export.WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	checkExposition(t, out)

	for _, want := range []string{
		"# TYPE detect_pairs counter\ndetect_pairs 42\n",
		"# TYPE runtime_queue_depth gauge\nruntime_queue_depth 3\n",
		"# TYPE runtime_task_ns histogram\n",
		`runtime_task_ns_bucket{le="10"} 1`,
		`runtime_task_ns_bucket{le="100"} 2`,
		`runtime_task_ns_bucket{le="+Inf"} 3`,
		"runtime_task_ns_sum 5055\n",
		"runtime_task_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Byte-stable on an unchanging snapshot.
	var b2 strings.Builder
	if err := export.WritePrometheus(&b2, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition output is not deterministic")
	}
}

// checkExposition asserts every line of a text-format payload is a
// well-formed comment or sample, and that no family name is declared
// twice.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			if !helpRE.MatchString(line) {
				t.Errorf("malformed TYPE line %q", line)
			}
			name := strings.Fields(line)[2]
			if types[name] {
				t.Errorf("family %q declared twice", name)
			}
			types[name] = true
		case strings.HasPrefix(line, "#"):
			if !helpRE.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
		default:
			if !sampleRE.MatchString(line) {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}
}

// TestEmittedNamesRoundTrip proves that every metric name the
// detect/cache/runtime layers currently emit survives sanitization
// unchanged up to the documented dot-to-underscore mapping: each
// mangled name is valid, the mapping is exactly
// strings.ReplaceAll(name, ".", "_"), it is idempotent, and no two
// emitted names collide after mangling.
func TestEmittedNamesRoundTrip(t *testing.T) {
	p, err := kernels.Table9Program("P4", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if _, err := exec.PipelinedObserved(p, 2, core.Options{}, rec); err != nil {
		t.Fatal(err)
	}
	// Populate the cache.* family on the same registry.
	c := cache.New(4, rec.Reg)
	if _, err := c.Get(context.Background(), p.SCoP, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), p.SCoP, core.Options{}); err != nil {
		t.Fatal(err)
	}

	snap := rec.Reg.Snapshot()
	names := snap.Names()
	for _, fam := range []string{"detect.", "cache.", "runtime."} {
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, fam) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %s* metric emitted; catalogue test is vacuous (names: %v)", fam, names)
		}
	}

	seen := map[string]string{}
	for _, n := range names {
		s := export.SanitizeMetricName(n)
		if !nameRE.MatchString(s) {
			t.Errorf("emitted name %q mangles to invalid %q", n, s)
		}
		if want := strings.ReplaceAll(n, ".", "_"); s != want {
			t.Errorf("emitted name %q mangles to %q, want the pure dot mapping %q", n, s, want)
		}
		if again := export.SanitizeMetricName(s); again != s {
			t.Errorf("mangling of %q is not idempotent (%q -> %q)", n, s, again)
		}
		if prev, ok := seen[s]; ok {
			t.Errorf("emitted names %q and %q collide on %q", prev, n, s)
		}
		seen[s] = n
	}

	var b strings.Builder
	if err := export.WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, b.String())
}

func TestCollisionSuffixDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	reg.Gauge("a.b").Set(3) // same name, different kind: also a collision
	var b1, b2 strings.Builder
	if err := export.WritePrometheus(&b1, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := export.WritePrometheus(&b2, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("collision suffixes are not deterministic")
	}
	checkExposition(t, b1.String())
	if c := strings.Count(b1.String(), "# TYPE "); c != 3 {
		t.Fatalf("want 3 distinct families, got %d:\n%s", c, b1.String())
	}
}

func ExampleWritePrometheus() {
	reg := obs.NewRegistry()
	reg.Counter("detect.pairs").Add(7)
	var b strings.Builder
	_ = export.WritePrometheus(&b, reg.Snapshot())
	fmt.Print(b.String())
	// Output:
	// # HELP detect_pairs repro metric detect.pairs
	// # TYPE detect_pairs counter
	// detect_pairs 7
}
