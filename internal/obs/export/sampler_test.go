package export_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

func TestSamplerDeltasAndGauges(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("runtime.steal_count")
	g := reg.Gauge("runtime.queue_depth")
	h := reg.Histogram("runtime.task_ns", []int64{10, 100})

	s := export.NewSampler(reg.Snapshot, time.Hour, 8)
	c.Add(5)
	g.Set(2)
	h.Observe(50)
	s.TakeSample(time.Unix(1, 0))
	c.Add(3)
	g.Set(7)
	s.TakeSample(time.Unix(2, 0))

	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2", len(got))
	}
	if got[0].When.After(got[1].When) {
		t.Fatal("samples not in chronological order")
	}
	if got[0].Counters["runtime.steal_count"] != 5 || got[0].Deltas["runtime.steal_count"] != 5 {
		t.Errorf("first sample counter/delta = %d/%d, want 5/5",
			got[0].Counters["runtime.steal_count"], got[0].Deltas["runtime.steal_count"])
	}
	if got[1].Counters["runtime.steal_count"] != 8 || got[1].Deltas["runtime.steal_count"] != 3 {
		t.Errorf("second sample counter/delta = %d/%d, want 8/3",
			got[1].Counters["runtime.steal_count"], got[1].Deltas["runtime.steal_count"])
	}
	if got[0].Gauges["runtime.queue_depth"] != 2 || got[1].Gauges["runtime.queue_depth"] != 7 {
		t.Error("gauges not instantaneous per sample")
	}
	hs := got[1].Histograms["runtime.task_ns"]
	if hs.Count != 1 || hs.Sum != 50 {
		t.Errorf("histogram digest = %+v", hs)
	}
	if hs.P50 <= 10 || hs.P50 > 100 {
		t.Errorf("p50 = %v, want within the (10,100] bucket", hs.P50)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s := export.NewSampler(reg.Snapshot, time.Hour, 3)
	for i := 1; i <= 5; i++ {
		s.TakeSample(time.Unix(int64(i), 0))
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	if got[0].When.Unix() != 3 || got[2].When.Unix() != 5 {
		t.Errorf("retained window = [%d, %d], want [3, 5]", got[0].When.Unix(), got[2].When.Unix())
	}
	if s.Evicted() != 2 {
		t.Errorf("evicted = %d, want 2", s.Evicted())
	}
}

func TestSamplerBackgroundLoop(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x")
	s := export.NewSampler(reg.Snapshot, 5*time.Millisecond, 64)
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Samples()) < 3 && time.Now().Before(deadline) {
		c.Inc()
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	n := len(s.Samples())
	if n < 3 {
		t.Fatalf("background loop took %d samples, want >= 3", n)
	}
	time.Sleep(15 * time.Millisecond)
	if got := len(s.Samples()); got != n {
		t.Errorf("sampler kept sampling after Stop (%d -> %d)", n, got)
	}
}

func TestSamplerWriteJSON(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("runtime.executed").Add(9)
	s := export.NewSampler(reg.Snapshot, time.Second, 4)
	s.TakeSample(time.Unix(10, 0))
	s.TakeSample(time.Unix(11, 0))

	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got export.Series
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("series JSON does not parse: %v\n%s", err, b.String())
	}
	if got.IntervalNS != time.Second.Nanoseconds() || got.Capacity != 4 {
		t.Errorf("header = %+v", got)
	}
	if len(got.Samples) != 2 {
		t.Fatalf("samples in JSON = %d, want 2", len(got.Samples))
	}
	if got.Samples[0].When.Equal(got.Samples[1].When) {
		t.Error("want distinct timestamps")
	}
	if got.Samples[1].Counters["runtime.executed"] != 9 {
		t.Errorf("counter in JSON = %d, want 9", got.Samples[1].Counters["runtime.executed"])
	}
}

func TestSamplerConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x")
	s := export.NewSampler(reg.Snapshot, time.Millisecond, 16)
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				s.TakeSample(time.Time{})
				_ = s.Samples()
				var b strings.Builder
				_ = s.WriteJSON(&b)
			}
		}()
	}
	wg.Wait()
	s.Stop()
}

// TestScrapeStaysOffHotPath asserts the property the live-telemetry
// endpoints rely on: the per-task instruments the scheduler updates in
// steady state (counter add, gauge move, histogram observe) allocate
// nothing, and running a scrape (snapshot + exposition) leaves that
// unchanged — scrape cost lands entirely on the scraper's goroutine.
func TestScrapeStaysOffHotPath(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("runtime.executed")
	g := reg.Gauge("runtime.queue_depth")
	h := reg.Histogram("runtime.task_ns", nil)
	hot := func() {
		c.Add(1)
		g.Add(1)
		g.Max(3)
		h.Observe(5_000)
	}
	if avg := testing.AllocsPerRun(500, hot); avg != 0 {
		t.Fatalf("hot-path instruments allocate %v per op before scraping", avg)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := export.WritePrometheus(&b, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(500, hot); avg != 0 {
		t.Fatalf("hot-path instruments allocate %v per op after scraping", avg)
	}
}
