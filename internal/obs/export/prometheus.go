// Package export turns obs.Registry snapshots into external telemetry
// formats: the Prometheus text exposition (v0.0.4) a scraper pulls
// from /metrics, and a continuous time-series sampler that retains a
// bounded ring of timestamped deltas for /debug/series. Everything
// operates on point-in-time Snapshot values, so exporting never
// touches the instruments the hot paths update — a scrape costs one
// Snapshot() plus formatting, all off the detect/exec critical path.
package export

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// MetricNameValid reports whether name is already a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func MetricNameValid(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// SanitizeMetricName deterministically mangles a registry name into
// the Prometheus metric-name charset: every character outside
// [a-zA-Z0-9_:] becomes '_' (the dots of the registry's flat dotted
// names included), and a leading digit gains a '_' prefix. The mapping
// is idempotent — sanitizing a sanitized name returns it unchanged —
// and injective over the catalogue the pipeline emits (the exposition
// test proves no two emitted names collide).
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	if c := name[0]; c >= '0' && c <= '9' {
		b = append(make([]byte, 0, len(name)+1), '_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		if b == nil && c != name[i] {
			b = append(make([]byte, 0, len(name)), name[:i]...)
		}
		if b != nil {
			b = append(b, c)
		}
	}
	if b == nil {
		return name
	}
	return string(b)
}

// fnv32 hashes a name for collision-breaking suffixes.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// exposeName resolves the exposition name for one registry series
// (name within kind): the sanitized form, plus a deterministic
// "_x<fnv32>" suffix when two distinct series — different registry
// names, or one name registered as two instrument kinds — would
// otherwise mangle to one family. taken maps exposition name ->
// kind-qualified registry name; callers iterate registry names in
// sorted order with a fixed kind order, so the assignment is
// reproducible.
func exposeName(name, kind string, taken map[string]string) string {
	out := SanitizeMetricName(name)
	qual := kind + "\x00" + name
	if prev, ok := taken[out]; ok && prev != qual {
		out = fmt.Sprintf("%s_x%08x", out, fnv32(qual))
	}
	taken[out] = qual
	return out
}

// escapeHelp escapes a HELP text per the exposition format (backslash
// and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format, version 0.0.4: every counter and gauge as one
// sample, every histogram as its cumulative le-labelled buckets plus
// _sum and _count. Families are emitted in sorted registry-name order
// (counters, then gauges, then histograms), each with a HELP line
// carrying the original dotted registry name, so output on an
// unchanging snapshot is byte-stable.
func WritePrometheus(w io.Writer, snap obs.Snapshot) error {
	bw := bufio.NewWriter(w)
	taken := map[string]string{}

	emitScalar := func(names map[string]int64, kind string, get func(string) int64) {
		sorted := make([]string, 0, len(names))
		for k := range names {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, name := range sorted {
			en := exposeName(name, kind, taken)
			fmt.Fprintf(bw, "# HELP %s repro metric %s\n", en, escapeHelp(name))
			fmt.Fprintf(bw, "# TYPE %s %s\n", en, kind)
			fmt.Fprintf(bw, "%s %d\n", en, get(name))
		}
	}
	emitScalar(snap.Counters, "counter", func(n string) int64 { return snap.Counters[n] })
	emitScalar(snap.Gauges, "gauge", func(n string) int64 { return snap.Gauges[n] })

	hnames := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := snap.Histograms[name]
		en := exposeName(name, "histogram", taken)
		fmt.Fprintf(bw, "# HELP %s repro metric %s\n", en, escapeHelp(name))
		fmt.Fprintf(bw, "# TYPE %s histogram\n", en)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.UpperBound >= 0 {
				le = strconv.FormatInt(b.UpperBound, 10)
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", en, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %d\n", en, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", en, h.Count)
	}
	return bw.Flush()
}
