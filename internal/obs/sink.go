package obs

import (
	"sync"
	"time"
)

// Event is one structured observability event.
type Event struct {
	Name   string
	When   time.Time
	Fields map[string]any
}

// Sink consumes structured events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(Event)
}

// Ring is a bounded in-memory sink: it keeps the most recent events up
// to its capacity and counts the ones it evicted, so bursty runs stay
// bounded in memory while the loss is visible.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	evicted int64
}

// NewRing returns a ring sink holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit stores the event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		r.evicted++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Evicted returns how many events were dropped to stay within capacity.
func (r *Ring) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}
