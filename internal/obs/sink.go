package obs

import (
	"sync"
	"time"
)

// Event is one structured observability event.
type Event struct {
	Name   string
	When   time.Time
	Fields map[string]any
}

// Sink consumes structured events. Implementations must be safe for
// concurrent use.
type Sink interface {
	Emit(Event)
}

// Ring is a bounded in-memory sink: it keeps the most recent events up
// to its capacity and counts the ones it evicted, so bursty runs stay
// bounded in memory while the loss is visible.
type Ring struct {
	mu             sync.Mutex
	buf            []Event
	next           int
	full           bool
	evicted        int64
	evictedCounter *Counter
}

// NewRing returns a ring sink holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// SetRegistry mirrors the ring's eviction count into the registry's
// "obs.events_evicted" counter, so bounded-sink loss is visible on a
// metrics scrape instead of only through Evicted(). Evictions recorded
// before the registry was attached are backfilled, so the counter
// always equals Evicted() regardless of installation order.
func (r *Ring) SetRegistry(reg *Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictedCounter = reg.Counter("obs.events_evicted")
	if r.evicted > 0 {
		r.evictedCounter.Add(r.evicted)
	}
}

// Emit stores the event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		r.evicted++
		if r.evictedCounter != nil {
			r.evictedCounter.Inc()
		}
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the retained events oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Evicted returns how many events were dropped to stay within capacity.
func (r *Ring) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}
