package obs

import (
	"sync"
	"testing"
	"time"
)

func TestPhasesOrderAndNilSafety(t *testing.T) {
	var nilP *Phases
	nilP.Start("x")() // must not panic
	if nilP.Spans() != nil {
		t.Error("nil Phases must report no spans")
	}

	p := &Phases{}
	stopA := p.Start("a")
	time.Sleep(time.Millisecond)
	stopB := p.Start("b")
	stopB()
	stopA()
	spans := p.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Duration < spans[1].Duration {
		t.Errorf("outer phase shorter than nested: %v < %v", spans[0].Duration, spans[1].Duration)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Phase("p")()
	r.Count("c", 1)
	r.SetGauge("g", 1)
	r.Emit("e", nil)
	if len(r.Snapshot().Counters) != 0 {
		t.Error("nil recorder snapshot must be empty")
	}
}

func TestRecorderRecords(t *testing.T) {
	r := NewRecorder()
	ring := NewRing(4)
	r.Events = ring
	stop := r.Phase("detect")
	r.Count("pairs", 3)
	r.SetGauge("depth", 2)
	stop()
	if got := r.Snapshot().Counter("pairs"); got != 3 {
		t.Errorf("pairs = %d", got)
	}
	if spans := r.Phases.Spans(); len(spans) != 1 || spans[0].Name != "detect" {
		t.Errorf("phases = %+v", spans)
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Name != "phase" || evs[0].Fields["name"] != "detect" {
		t.Errorf("events = %+v", evs)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Name: string(rune('a' + i))})
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Name != "d" || evs[1].Name != "e" {
		t.Errorf("events = %+v", evs)
	}
	if r.Evicted() != 3 {
		t.Errorf("evicted = %d", r.Evicted())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(Event{Name: "e"})
				if i%50 == 0 {
					_ = r.Events()
				}
			}
		}()
	}
	wg.Wait()
	if got := int64(len(r.Events())) + r.Evicted(); got != 8*200 {
		t.Errorf("retained+evicted = %d, want %d", got, 8*200)
	}
}
