package deps

import (
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
)

func TestDistanceVectorsUniform(t *testing.T) {
	// A[i][j] = A[i][j-1]: single uniform distance (0, 1).
	b := scop.NewBuilder("scan")
	b.Array("A", 2)
	b.Stmt("S", aff.NewDomain("S",
		aff.ConstBound(0, 0, 6),
		aff.LoopBound{Lo: aff.Const(1, 1), Hi: aff.Const(1, 6)},
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(-1, 0, 1))
	sc := b.MustBuild()
	g := Analyze(sc)
	ds := g.DistanceVectors(sc.Stmts[0])
	if !ds.Uniform || len(ds.Distances) != 1 || !ds.Distances[0].Eq(isl.NewVec(0, 1)) {
		t.Fatalf("summary = %+v", ds)
	}
	if ds.Directions[0] != DirEq || ds.Directions[1] != DirLt {
		t.Fatalf("directions = %v", ds.Directions)
	}
	if got := ds.String(); got != "(=, <) uniform{[0, 1]}" {
		t.Fatalf("String = %q", got)
	}
}

func TestDistanceVectorsMixed(t *testing.T) {
	// Listing 1's S has reads A[i][j+1] and A[i+1][j+1]: distances
	// (0,1) and (1,1) -> directions (*, <)... first dim has 0 and 1 so
	// '*', second uniformly 1 so '<'.
	sc := kernels.Listing1(12).SCoP
	g := Analyze(sc)
	ds := g.DistanceVectors(sc.Statement("S"))
	if ds.Uniform {
		t.Fatal("expected non-uniform distances")
	}
	if len(ds.Distances) != 2 {
		t.Fatalf("distances = %v", ds.Distances)
	}
	if ds.Directions[0] != DirStar || ds.Directions[1] != DirLt {
		t.Fatalf("directions = %v", ds.Directions)
	}
}

func TestDistanceVectorsEmptyForParallel(t *testing.T) {
	b := scop.NewBuilder("par")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S", aff.RectDomain("S", 8)).
		Writes("A", aff.Var(1, 0)).
		Reads("B", aff.Var(1, 0))
	sc := b.MustBuild()
	g := Analyze(sc)
	ds := g.DistanceVectors(sc.Stmts[0])
	if len(ds.Distances) != 0 || ds.Uniform {
		t.Fatalf("summary = %+v", ds)
	}
}

func TestCrossDistances(t *testing.T) {
	// Row chain: S2 reads exactly the row S1 wrote -> distance [0].
	b := scop.NewBuilder("chain")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S1", aff.RectDomain("S1", 8)).Writes("A", aff.Var(1, 0))
	b.Stmt("S2", aff.RectDomain("S2", 8)).
		Writes("B", aff.Var(1, 0)).
		Reads("A", aff.Linear(-1, 1)) // A[i-1]: distance +1
	sc := b.MustBuild()
	g := Analyze(sc)
	ds := g.CrossDistances(sc.Stmts[0], sc.Stmts[1])
	if len(ds) != 1 || !ds[0].Eq(isl.NewVec(1)) {
		t.Fatalf("cross distances = %v", ds)
	}
	// No dependence -> nil.
	if got := g.CrossDistances(sc.Stmts[1], sc.Stmts[0]); got != nil {
		t.Fatalf("reverse distances = %v", got)
	}
}

func TestCrossDistancesDepthMismatch(t *testing.T) {
	b := scop.NewBuilder("mix")
	b.Array("A", 1).Array("B", 1)
	b.Stmt("S1", aff.RectDomain("S1", 8)).Writes("A", aff.Var(1, 0))
	b.Stmt("S2", aff.RectDomain("S2", 4, 2)).
		Writes("B", aff.Linear(0, 2, 1)).
		Reads("A", aff.Var(2, 0))
	sc := b.MustBuild()
	g := Analyze(sc)
	if got := g.CrossDistances(sc.Stmts[0], sc.Stmts[1]); got != nil {
		t.Fatalf("depth-mismatched distances = %v", got)
	}
}

func TestDirectionString(t *testing.T) {
	for d, want := range map[Direction]string{DirEq: "=", DirLt: "<", DirGt: ">", DirStar: "*"} {
		if d.String() != want {
			t.Errorf("%d -> %q", int(d), d.String())
		}
	}
}
