package deps

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/scop"
)

// Relation export/import for serialized detection results
// (internal/cache/disk). A Graph is pure derived data — every relation
// is computable from the SCoP — but recomputing it costs the dependence
// analysis the disk tier exists to skip, so a decoder rebuilds the
// graph from its stored relations instead.

// Relations returns the graph's relations in export form: flow[i][j]
// is the flow-dependence relation from statement i to statement j (nil
// when independent), intra[i] the intra-statement conflict relation of
// statement i. The returned slices alias the graph's own maps; treat
// them as read-only (frozen graphs already are).
func (g *Graph) Relations() (flow [][]*isl.Map, intra []*isl.Map) {
	return g.flow, g.intra
}

// RebuildGraph reassembles a Graph over sc from exported relations.
// The slices must be shaped like Relations' result for a SCoP with the
// same statement count; the maps are adopted, not copied.
func RebuildGraph(sc *scop.SCoP, flow [][]*isl.Map, intra []*isl.Map) (*Graph, error) {
	n := len(sc.Stmts)
	if len(flow) != n || len(intra) != n {
		return nil, fmt.Errorf("deps: rebuild: %d statements but %d flow rows / %d intra entries",
			n, len(flow), len(intra))
	}
	for i, row := range flow {
		if len(row) != n {
			return nil, fmt.Errorf("deps: rebuild: flow row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return &Graph{scop: sc, flow: flow, intra: intra}, nil
}
