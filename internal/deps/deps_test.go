package deps

import (
	"strings"
	"testing"

	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
)

func TestListing1Flow(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	g := Analyze(sc)
	s, r := sc.Statement("S"), sc.Statement("R")

	if !g.DependsOn(r, s) {
		t.Fatal("R should depend on S")
	}
	if g.DependsOn(s, r) {
		t.Fatal("S should not depend on R (program order)")
	}
	rel := g.Flow(s, r)
	// S[i][2j] -> R[i][j]: e.g. S(3, 4) feeds R(3, 2).
	if !rel.Contains(isl.NewVec(3, 4), isl.NewVec(3, 2)) {
		t.Errorf("flow missing S[3,4] -> R[3,2]; got %d pairs", rel.Card())
	}
	if rel.Contains(isl.NewVec(3, 5), isl.NewVec(3, 2)) {
		t.Error("flow has bogus odd-column pair")
	}
	// Exactly one source write per R read.
	if got, want := rel.Card(), 9*9; got != want {
		t.Errorf("flow card = %d, want %d", got, want)
	}
}

func TestListing1SelfFlow(t *testing.T) {
	sc := kernels.Listing1(20).SCoP
	g := Analyze(sc)
	s := sc.Statement("S")
	// S reads A[i][j] written by itself at the same iteration, and
	// A[i][j+1], A[i+1][j+1] written by *later* iterations; forward
	// flow within S therefore is empty (reads of later-written cells
	// observe original values — anti deps, not flow).
	if g.Flow(s, s) != nil {
		t.Errorf("unexpected forward self-flow: %v", g.Flow(s, s))
	}
	// But conflicts exist, so the nest is not parallel.
	if !g.HasIntraConflicts(s) {
		t.Error("S should have intra conflicts")
	}
}

func TestListing3SourcesTargets(t *testing.T) {
	sc := kernels.Listing3(16).SCoP
	g := Analyze(sc)
	s, r, u := sc.Statement("S"), sc.Statement("R"), sc.Statement("U")

	if got := g.Sources(u); len(got) != 2 || got[0] != s || got[1] != r {
		t.Fatalf("Sources(U) = %v", names(got))
	}
	if got := g.Targets(s); len(got) != 2 || got[0] != r || got[1] != u {
		t.Fatalf("Targets(S) = %v", names(got))
	}
	if got := g.Sources(s); len(got) != 0 {
		t.Fatalf("Sources(S) = %v", names(got))
	}
}

func names(ss []*scop.Statement) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s.Name)
	}
	return out
}

func TestParallelDimsSerialStencil(t *testing.T) {
	sc := kernels.Listing1(16).SCoP
	g := Analyze(sc)
	for _, st := range sc.Stmts {
		par := g.ParallelDims(st)
		if par[0] || par[1] {
			t.Errorf("statement %s: ParallelDims = %v, want all false (anti deps serialize both loops)", st.Name, par)
		}
	}
}

func TestParallelDimsIndependentRows(t *testing.T) {
	// S: A[i][j] = f(B[i][j]) — fully parallel nest.
	b := scop.NewBuilder("rows")
	b.Array("A", 2).Array("B", 2)
	b.Stmt("S", aff.RectDomain("S", 6, 6)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("B", aff.Var(2, 0), aff.Var(2, 1))
	sc := b.MustBuild()
	g := Analyze(sc)
	par := g.ParallelDims(sc.Stmts[0])
	if !par[0] || !par[1] {
		t.Fatalf("ParallelDims = %v, want all true", par)
	}
	if g.HasIntraConflicts(sc.Stmts[0]) {
		t.Fatal("independent nest reports conflicts")
	}
}

func TestParallelDimsInnerCarried(t *testing.T) {
	// S: A[i][j] = A[i][j-1] + 1 — inner loop carries a flow dep,
	// outer loop is parallel.
	b := scop.NewBuilder("scan")
	b.Array("A", 2)
	b.Stmt("S", aff.NewDomain("S",
		aff.ConstBound(0, 0, 6),
		aff.LoopBound{Lo: aff.Const(1, 1), Hi: aff.Const(1, 6)},
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Var(2, 0), aff.Linear(-1, 0, 1))
	sc := b.MustBuild()
	g := Analyze(sc)
	par := g.ParallelDims(sc.Stmts[0])
	if !par[0] || par[1] {
		t.Fatalf("ParallelDims = %v, want [true false]", par)
	}
	// The self-flow relation is non-empty and strictly forward.
	self := g.Flow(sc.Stmts[0], sc.Stmts[0])
	if self == nil {
		t.Fatal("missing self flow")
	}
	self.Foreach(func(i, j isl.Vec) bool {
		if i.Cmp(j) >= 0 {
			t.Errorf("non-forward self-flow pair %v -> %v", i, j)
		}
		return true
	})
}

func TestParallelDimsOuterCarried(t *testing.T) {
	// S: A[i][j] = A[i-1][j] — outer loop carries the dep, inner is
	// parallel.
	b := scop.NewBuilder("cols")
	b.Array("A", 2)
	b.Stmt("S", aff.NewDomain("S",
		aff.LoopBound{Lo: aff.Const(0, 1), Hi: aff.Const(0, 6)},
		aff.ConstBound(1, 0, 6),
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Linear(-1, 1, 0), aff.Var(2, 1))
	sc := b.MustBuild()
	g := Analyze(sc)
	par := g.ParallelDims(sc.Stmts[0])
	if par[0] || !par[1] {
		t.Fatalf("ParallelDims = %v, want [false true]", par)
	}
}

func TestIndependentNests(t *testing.T) {
	// Two nests touching disjoint arrays: no cross dependence.
	b := scop.NewBuilder("indep")
	b.Array("A", 1).Array("B", 1).Array("X", 1).Array("Y", 1)
	b.Stmt("S", aff.RectDomain("S", 8)).
		Writes("A", aff.Var(1, 0)).
		Reads("X", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", 8)).
		Writes("B", aff.Var(1, 0)).
		Reads("Y", aff.Var(1, 0))
	sc := b.MustBuild()
	g := Analyze(sc)
	if g.DependsOn(sc.Stmts[1], sc.Stmts[0]) {
		t.Fatal("independent nests report dependence")
	}
}

func TestCrossHazardsDetectsAnti(t *testing.T) {
	// S reads X; T later writes X — anti hazard.
	b := scop.NewBuilder("anti")
	b.Array("A", 1).Array("X", 1)
	b.Stmt("S", aff.RectDomain("S", 8)).
		Writes("A", aff.Var(1, 0)).
		Reads("X", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", 8)).
		Writes("X", aff.Var(1, 0)).
		Reads("A", aff.Var(1, 0))
	sc := b.MustBuild()
	err := CrossHazards(sc)
	if err == nil || !strings.Contains(err.Error(), "anti hazard") {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossHazardsDetectsOutput(t *testing.T) {
	b := scop.NewBuilder("output")
	b.Array("A", 1)
	b.Stmt("S", aff.RectDomain("S", 8)).Writes("A", aff.Var(1, 0))
	b.Stmt("T", aff.RectDomain("T", 8)).Writes("A", aff.Var(1, 0))
	sc := b.MustBuild()
	err := CrossHazards(sc)
	if err == nil || !strings.Contains(err.Error(), "output hazard") {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossHazardsCleanProgram(t *testing.T) {
	if err := CrossHazards(kernels.Listing3(12).SCoP); err != nil {
		t.Fatalf("unexpected hazard: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Fatal("Kind strings wrong")
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind = %q", got)
	}
}
