// Package deps computes memory-based dependences between the
// statements of a SCoP. It provides the two analyses the rest of the
// system needs:
//
//   - cross-statement flow dependences (write in an earlier nest, read
//     in a later nest), which drive pipeline detection, and
//   - intra-statement dependence testing per loop dimension, which
//     drives the Polly-style per-loop parallelization baseline.
package deps

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/par"
	"repro/internal/scop"
)

// Kind classifies a dependence.
type Kind int

const (
	// Flow is a read-after-write dependence.
	Flow Kind = iota
	// Anti is a write-after-read dependence.
	Anti
	// Output is a write-after-write dependence.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Graph holds the dependences of one SCoP.
type Graph struct {
	scop *scop.SCoP
	// flow[src][dst] is the union of flow-dependence relations from
	// iterations of statement src to iterations of statement dst,
	// indexed by statement Index. Entries are nil when independent.
	flow [][]*isl.Map
	// intra[s] holds unordered intra-statement conflict pairs (i, j)
	// with i ≺ j for statement s, across flow, anti, and output
	// conflicts. Used for per-dimension parallelism tests.
	intra []*isl.Map
}

// Analyze computes the dependence graph of sc on the calling
// goroutine.
func Analyze(sc *scop.SCoP) *Graph {
	return AnalyzeParallel(sc, 1)
}

// AnalyzeParallel computes the dependence graph of sc with the
// pairwise flow relations and the per-statement intra-conflict
// relations fanned out over at most workers goroutines (values < 1
// mean GOMAXPROCS). Every job owns exactly one slot of the graph, so
// the result is identical to Analyze regardless of worker count; the
// jobs only read the statements' access relations, which the relation
// algebra never mutates.
func AnalyzeParallel(sc *scop.SCoP, workers int) *Graph {
	n := len(sc.Stmts)
	g := &Graph{
		scop:  sc,
		flow:  make([][]*isl.Map, n),
		intra: make([]*isl.Map, n),
	}
	for i := range g.flow {
		g.flow[i] = make([]*isl.Map, n)
	}
	type flowJob struct{ src, dst *scop.Statement }
	var jobs []flowJob
	for _, src := range sc.Stmts {
		if src.Write == nil {
			continue
		}
		for _, dst := range sc.Stmts {
			if dst.Index < src.Index {
				continue // program order: sources precede targets
			}
			jobs = append(jobs, flowJob{src: src, dst: dst})
		}
	}
	workers = par.Workers(workers)
	par.For(len(jobs), workers, func(i int) {
		j := jobs[i]
		rel := flowRelation(j.src, j.dst)
		if rel != nil && !rel.IsEmpty() {
			g.flow[j.src.Index][j.dst.Index] = rel
		}
	})
	par.For(n, workers, func(i int) {
		s := sc.Stmts[i]
		g.intra[s.Index] = intraConflicts(s)
	})
	return g
}

// flowRelation returns the write→read relation from src to dst over all
// arrays, or nil when there is none. For src == dst only pairs (i, j)
// with i ≺ j count (a read of the value produced by an earlier
// iteration of the same nest).
func flowRelation(src, dst *scop.Statement) *isl.Map {
	var union *isl.Map
	w := src.Write
	for _, rd := range dst.ReadsFrom(w.Array()) {
		// (i, j) such that ∃m: w(i) = m ∧ rd(j) = m.
		rel := isl.Compose(rd.Inverse(), w.Rel)
		if union == nil {
			union = rel
		} else {
			union = union.Union(rel)
		}
	}
	if union == nil {
		return nil
	}
	if src == dst {
		union = restrictForward(union)
	}
	return union
}

// restrictForward keeps only pairs (i, j) with i ≺ j.
func restrictForward(m *isl.Map) *isl.Map {
	r := isl.NewMap(m.InSpace(), m.OutSpace())
	m.Foreach(func(i, j isl.Vec) bool {
		if i.Cmp(j) < 0 {
			r.Add(i, j)
		}
		return true
	})
	return r
}

// intraConflicts returns all unordered conflict pairs (i ≺ j) between
// iterations of s: flow, anti, and output conflicts through any array.
func intraConflicts(s *scop.Statement) *isl.Map {
	res := isl.NewMap(s.Domain.Space(), s.Domain.Space())
	if s.Write == nil {
		return res
	}
	w := s.Write.Rel
	add := func(rel *isl.Map) {
		rel.Foreach(func(a, b isl.Vec) bool {
			switch a.Cmp(b) {
			case -1:
				res.Add(a, b)
			case 1:
				res.Add(b, a)
			}
			return true
		})
	}
	// Output conflicts: same location written twice. The write is
	// injective by SCoP validation, so this is empty, but keep the
	// computation for generality (relaxed-injectivity future work).
	add(isl.Compose(w.Inverse(), w))
	// Flow/anti conflicts: write at one iteration, read at another.
	for _, rd := range s.ReadsFrom(s.Write.Array()) {
		add(isl.Compose(rd.Inverse(), w))
	}
	return res
}

// Flow returns the flow-dependence relation from src to dst, or nil
// when dst does not depend on src.
func (g *Graph) Flow(src, dst *scop.Statement) *isl.Map {
	return g.flow[src.Index][dst.Index]
}

// DependsOn reports whether dst has a flow dependence on src.
func (g *Graph) DependsOn(dst, src *scop.Statement) bool {
	return g.flow[src.Index][dst.Index] != nil
}

// Sources returns the statements that dst directly flow-depends on,
// excluding itself, in program order.
func (g *Graph) Sources(dst *scop.Statement) []*scop.Statement {
	var out []*scop.Statement
	for _, src := range g.scop.Stmts {
		if src != dst && g.DependsOn(dst, src) {
			out = append(out, src)
		}
	}
	return out
}

// Targets returns the statements that directly flow-depend on src,
// excluding itself, in program order.
func (g *Graph) Targets(src *scop.Statement) []*scop.Statement {
	var out []*scop.Statement
	for _, dst := range g.scop.Stmts {
		if dst != src && g.DependsOn(dst, src) {
			out = append(out, dst)
		}
	}
	return out
}

// ParallelDims reports, per loop dimension of s, whether the loop at
// that depth can run its iterations in parallel: no intra-statement
// conflict relates two iterations that agree on all outer dimensions
// and differ at this one. This is the test a Polly-style per-loop
// parallelizer applies.
func (g *Graph) ParallelDims(s *scop.Statement) []bool {
	depth := s.Depth()
	par := make([]bool, depth)
	for d := range par {
		par[d] = true
	}
	g.intra[s.Index].Foreach(func(i, j isl.Vec) bool {
		for d := 0; d < depth; d++ {
			if i[d] != j[d] {
				// The conflict is carried by dimension d.
				par[d] = false
				break
			}
		}
		return true
	})
	return par
}

// HasIntraConflicts reports whether any two distinct iterations of s
// conflict (the nest is not fully data-parallel).
func (g *Graph) HasIntraConflicts(s *scop.Statement) bool {
	return !g.intra[s.Index].IsEmpty()
}

// CrossHazards returns an error when a later statement writes to memory
// that an earlier statement reads or writes, i.e. when cross-statement
// anti or output dependences exist. The pipeline transformation assumes
// programs free of such hazards (each nest writes its own array), so
// callers should reject these SCoPs rather than transform them
// incorrectly.
func CrossHazards(sc *scop.SCoP) error {
	for _, late := range sc.Stmts {
		if late.Write == nil {
			continue
		}
		wRange := late.Write.Rel.Range()
		for _, early := range sc.Stmts {
			if early.Index >= late.Index {
				break
			}
			if early.Write != nil && early.Write.Array() == late.Write.Array() {
				if !early.Write.Rel.Range().Intersect(wRange).IsEmpty() {
					return fmt.Errorf("deps: output hazard: statements %q and %q both write array %q",
						early.Name, late.Name, late.Write.Array())
				}
			}
			for _, rd := range early.ReadsFrom(late.Write.Array()) {
				if !rd.Range().Intersect(wRange).IsEmpty() {
					return fmt.Errorf("deps: anti hazard: statement %q overwrites array %q read by earlier statement %q",
						late.Name, late.Write.Array(), early.Name)
				}
			}
		}
	}
	return nil
}

// Freeze materializes the lazy ordering caches of every relation in
// the graph and returns g. A frozen graph serves Flow, ParallelDims,
// and the traversal accessors without internal mutation, so it may be
// shared by concurrent readers (see the freeze discipline in
// docs/PERFORMANCE.md).
func (g *Graph) Freeze() *Graph {
	for _, row := range g.flow {
		for _, m := range row {
			if m != nil {
				m.Freeze()
			}
		}
	}
	for _, m := range g.intra {
		if m != nil {
			m.Freeze()
		}
	}
	return g
}
