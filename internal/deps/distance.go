package deps

import (
	"fmt"
	"strings"

	"repro/internal/isl"
	"repro/internal/scop"
)

// Direction classifies one dimension of a dependence distance, the
// classic polyhedral direction-vector entry.
type Direction int

// Direction values per dimension: '<' (positive distance), '=' (zero),
// '>' (negative), '*' (varies).
const (
	DirEq Direction = iota
	DirLt
	DirGt
	DirStar
)

// String renders the conventional symbol.
func (d Direction) String() string {
	switch d {
	case DirEq:
		return "="
	case DirLt:
		return "<"
	case DirGt:
		return ">"
	case DirStar:
		return "*"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// DistanceSummary aggregates the dependence distances of one
// statement's intra-nest conflicts.
type DistanceSummary struct {
	// Distances holds the distinct distance vectors (j − i for
	// conflict pairs i ≺ j), lexicographically sorted.
	Distances []isl.Vec
	// Directions is the per-dimension direction summary over all
	// distances.
	Directions []Direction
	// Uniform reports whether exactly one distance vector occurs
	// (a uniform dependence, the easy case for tiling/pipelining).
	Uniform bool
}

// String renders like "(<, =) uniform{[1, 0]}".
func (ds DistanceSummary) String() string {
	dirs := make([]string, len(ds.Directions))
	for i, d := range ds.Directions {
		dirs[i] = d.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(%s)", strings.Join(dirs, ", "))
	if ds.Uniform && len(ds.Distances) == 1 {
		fmt.Fprintf(&b, " uniform{%v}", ds.Distances[0])
	}
	return b.String()
}

// DistanceVectors summarizes the intra-statement dependence distances
// of s: every conflict pair (i ≺ j) contributes the vector j − i.
// The summary is empty for fully parallel nests.
func (g *Graph) DistanceVectors(s *scop.Statement) DistanceSummary {
	depth := s.Depth()
	deltas := isl.Deltas(g.intra[s.Index])
	var ds DistanceSummary
	if deltas.IsEmpty() {
		return ds
	}
	ds.Distances = deltas.Elements()
	ds.Uniform = len(ds.Distances) == 1
	ds.Directions = make([]Direction, depth)
	for k := 0; k < depth; k++ {
		ds.Directions[k] = dirOf(ds.Distances, k)
	}
	return ds
}

func dirOf(distances []isl.Vec, k int) Direction {
	var pos, neg, zero bool
	for _, d := range distances {
		switch {
		case d[k] > 0:
			pos = true
		case d[k] < 0:
			neg = true
		default:
			zero = true
		}
	}
	switch {
	case pos && !neg && !zero:
		return DirLt
	case neg && !pos && !zero:
		return DirGt
	case zero && !pos && !neg:
		return DirEq
	default:
		return DirStar
	}
}

// CrossDistances returns the distinct distance vectors of the flow
// dependence from src to dst when the two statements have the same
// nest depth, or nil otherwise. A single uniform distance is the
// precondition the pipelined-multithreading approach of Razanajato et
// al. requires; our transformation does not need it, but reporting it
// makes the comparison measurable.
func (g *Graph) CrossDistances(src, dst *scop.Statement) []isl.Vec {
	rel := g.Flow(src, dst)
	if rel == nil || src.Depth() != dst.Depth() {
		return nil
	}
	return isl.Deltas(rel).Elements()
}
