// Package futures is a second front end over the unified runtime core,
// historically a from-scratch futures-model implementation ("Pipelining
// with futures") of the minimal tasking layer. It demonstrates the
// paper's §7 claim that the transformation is independent of the
// tasking back end: the layer accepts the same Task values and
// satisfies codegen.Layer.
//
// Since the runtime-core unification the dependency resolution and the
// work-stealing scheduler live in internal/runtime, shared with the
// tasking and stages layers; this adapter contributes only the layer
// name ("futures", prefixing its metric catalogue) and the default
// id-hash shard placement.
package futures

import "repro/internal/runtime"

// Runtime is the futures tasking layer: the shared runtime.Scheduler
// under the "futures" name.
type Runtime = runtime.Scheduler

// New starts a futures runtime with the given number of workers.
func New(workers int) *Runtime {
	return runtime.NewScheduler(runtime.Config{Workers: workers, Name: "futures"})
}
