// Package futures is a second implementation of the minimal tasking
// layer (§5.4–5.5), demonstrating the paper's claim (§7) that the
// transformation is independent of the OpenMP tasking back end and can
// retarget other platforms with minimal changes.
//
// Where package tasking tracks dependencies through a central
// address table (the OpenMP depend-clause model), this layer follows
// the futures model the paper cites ("Pipelining with futures"): every
// task owns a completion future; a submitted task captures the futures
// of its dependencies and runs — on a bounded worker pool — once they
// have all resolved.
package futures

import (
	"sync"

	"repro/internal/tasking"
)

// Runtime is the futures-based tasking layer. It accepts the same
// Task values as the OpenMP-style runtime, satisfying the
// codegen.Layer interface.
type Runtime struct {
	sem  chan struct{} // bounded worker slots
	wg   sync.WaitGroup
	mu   sync.Mutex
	done bool

	lastWriter map[int]*future
	lastSerial map[int]*future
}

// future resolves when its task completes.
type future struct {
	ch chan struct{}
}

func newFuture() *future { return &future{ch: make(chan struct{})} }

func (f *future) resolve() { close(f.ch) }
func (f *future) await()   { <-f.ch }

// New starts a futures runtime with the given number of worker slots.
func New(workers int) *Runtime {
	if workers < 1 {
		panic("futures: workers < 1")
	}
	return &Runtime{
		sem:        make(chan struct{}, workers),
		lastWriter: make(map[int]*future),
		lastSerial: make(map[int]*future),
	}
}

// Submit creates a task. As with the OpenMP-style layer, tasks must be
// submitted from a single goroutine in program order; dependencies
// resolve against previously submitted tasks.
func (r *Runtime) Submit(t tasking.Task) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("futures: Submit after Close")
	}
	var deps []*future
	for _, addr := range t.In {
		if f := r.lastWriter[addr]; f != nil {
			deps = append(deps, f)
		}
	}
	if t.Serial >= 0 {
		if f := r.lastSerial[t.Serial]; f != nil {
			deps = append(deps, f)
		}
	}
	self := newFuture()
	if t.Serial >= 0 {
		r.lastSerial[t.Serial] = self
	}
	if t.Out >= 0 {
		r.lastWriter[t.Out] = self
	}
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		for _, d := range deps {
			d.await()
		}
		r.sem <- struct{}{}
		if t.Fn != nil {
			t.Fn()
		}
		<-r.sem
		self.resolve()
	}()
}

// Wait blocks until every submitted task has completed.
func (r *Runtime) Wait() { r.wg.Wait() }

// Close waits for completion and rejects further submissions.
func (r *Runtime) Close() {
	r.Wait()
	r.mu.Lock()
	r.done = true
	r.mu.Unlock()
}
