package futures

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/tasking"
)

// The futures runtime must satisfy the codegen tasking-layer
// interface.
var _ codegen.Layer = (*Runtime)(nil)

func TestOrdering(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		var order []int
		var mu sync.Mutex
		rec := func(id int) func() {
			return func() {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
		}
		r := New(4)
		r.Submit(tasking.Task{Fn: rec(1), Out: 0, Serial: tasking.NoSerial})
		r.Submit(tasking.Task{Fn: rec(2), In: []int{0}, Out: 1, Serial: tasking.NoSerial})
		r.Submit(tasking.Task{Fn: rec(3), In: []int{1}, Out: 2, Serial: tasking.NoSerial})
		r.Close()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("trial %d: order = %v", trial, order)
		}
	}
}

func TestSerialChain(t *testing.T) {
	const n = 60
	var mu sync.Mutex
	var order []int
	r := New(8)
	for i := 0; i < n; i++ {
		i := i
		r.Submit(tasking.Task{
			Fn: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
			Out:    -1,
			Serial: 3,
		})
	}
	r.Close()
	for i, got := range order {
		if got != i {
			t.Fatalf("serialized chain out of order at %d: %d", i, got)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	r := New(3)
	for i := 0; i < 50; i++ {
		r.Submit(tasking.Task{
			Fn: func() {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(-1)
			},
			Out:    i,
			Serial: tasking.NoSerial,
		})
	}
	r.Close()
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", peak.Load())
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	r := New(1)
	r.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Submit(tasking.Task{Fn: func() {}, Serial: tasking.NoSerial})
}

func TestNewRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

// TestPipelinedProgramOnFuturesLayer runs a full transformed program
// on the futures back end and checks bit-identical results — the §7
// retargeting claim, end to end.
func TestPipelinedProgramOnFuturesLayer(t *testing.T) {
	p := kernels.Listing3(16)
	info, err := core.Detect(p.SCoP, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		t.Fatal(err)
	}

	p.Reset()
	for _, s := range p.SCoP.Stmts {
		for _, iv := range s.Domain.Elements() {
			s.Body(iv)
		}
	}
	want := p.Hash()

	for trial := 0; trial < 10; trial++ {
		p.Reset()
		r := New(4)
		prog.Submit(r)
		r.Close()
		if got := p.Hash(); got != want {
			t.Fatalf("trial %d: futures-layer result differs from sequential", trial)
		}
	}
}
