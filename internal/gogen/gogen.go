// Package gogen is the textual back end of the AOT compiler: it
// prints a standalone, stdlib-only Go main package from the optimized
// block-program IR (internal/ir) — the analogue of the paper's final
// code-generation phase that rewrites the program to call the
// CreateTask runtime function (Figures 7–8).
//
// gogen itself performs no optimization and no analysis: detection
// (core.Detect), task compilation (codegen.CompileForEmission),
// lowering (ir.Lower), and the pass pipeline (ir.RunPasses) all happen
// before Print sees the program, and Print is a thin printer over the
// result. The emitted file contains the program's arrays (and sink
// accumulators), the statement bodies with the same deterministic
// synthetic semantics as package interp (the internal/interp seam),
// per-task execution code, the dependency DAG — embedded as compiled
// CSR arrays when the hoist pass ran, or as §5.4 address tables
// resolved once at startup when it did not — a minimal tasking
// runtime, and a main function that runs the program sequentially and
// pipelined and compares the result hashes. Because the semantics
// match package interp bit for bit, the hash printed by the emitted
// binary can be validated against an in-process interpretation; the
// differential harness in this package does exactly that over the
// Table 9 + nmm corpus.
package gogen

import (
	"fmt"
	"io"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/obs"
)

// EmitOptions tunes compilation and emission.
type EmitOptions struct {
	// Workers is the worker count baked into the emitted main; the
	// emitted binary overrides it with its first argument.
	Workers int
	// Passes selects the optimization pipeline: "" or "all" runs every
	// pass, "none" emits the unoptimized program, otherwise a
	// comma-separated subset of ir pass names.
	Passes string
	// FuseThreshold caps fused-task iterations (0 = ir default).
	FuseThreshold int
	// Obs receives compile phases and ir.* pass metrics.
	Obs *obs.Recorder
}

// Emit compiles info with the full pass pipeline and writes the
// emitted program. The input — in particular the SCoP and its
// statement bodies — is never modified.
func Emit(w io.Writer, info *core.Info, workers int) error {
	return EmitWith(w, info, EmitOptions{Workers: workers})
}

// EmitWith is Emit with explicit options.
func EmitWith(w io.Writer, info *core.Info, opts EmitOptions) error {
	p, err := Compile(info, opts)
	if err != nil {
		return err
	}
	return Print(w, p)
}

// Compile runs the middle of the backend — task compilation, IR
// lowering, and the selected passes — and returns the optimized
// program, ready for Print (or for inspection: pipelinec -dump-ir).
func Compile(info *core.Info, opts EmitOptions) (*ir.Program, error) {
	if len(info.Stmts) != len(info.SCoP.Stmts) {
		return nil, fmt.Errorf("gogen: incomplete detection info (%d of %d statements); pass the result of core.Detect",
			len(info.Stmts), len(info.SCoP.Stmts))
	}
	passes, err := ir.ParsePasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	tp, err := codegen.CompileForEmission(info)
	if err != nil {
		return nil, err
	}
	iropt := ir.Options{
		Workers:       opts.Workers,
		FuseThreshold: opts.FuseThreshold,
		Obs:           opts.Obs,
	}
	p, err := ir.Lower(info, tp, iropt)
	if err != nil {
		return nil, err
	}
	ir.RunPasses(p, passes, iropt)
	return p, nil
}
