package gogen

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
)

const listing1Src = `
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

// generate parses src, detects, and emits with the given pass
// selection, returning the emitted source and the in-process
// interpreter's sequential reference hash.
func generate(t *testing.T, src, passes string) (string, uint64) {
	t.Helper()
	sc, err := lang.Parse("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := EmitWith(&b, info, EmitOptions{Workers: 4, Passes: passes}); err != nil {
		t.Fatal(err)
	}
	// Reference hash from the in-process interpreter (bodies attached
	// only now, after emission: Emit must not need or cause them).
	p := interp.Programify(sc)
	p.Reset()
	for _, s := range sc.Stmts {
		for _, iv := range s.Domain.Elements() {
			s.Body(iv)
		}
	}
	return b.String(), p.Hash()
}

// TestEmitDoesNotMutateInput is the regression test for the old
// gogen.Emit side effect of attaching interpreter bodies to the
// caller's SCoP: emission of an analysis-only SCoP must leave it
// analysis-only.
func TestEmitDoesNotMutateInput(t *testing.T) {
	sc, err := lang.Parse("gen", listing1Src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.HasBodies() {
		t.Fatal("precondition: parsed SCoP should be analysis-only")
	}
	var b strings.Builder
	if err := Emit(&b, info, 2); err != nil {
		t.Fatal(err)
	}
	if sc.HasBodies() {
		t.Error("Emit attached statement bodies to the input SCoP")
	}
	for _, s := range sc.Stmts {
		if s.Body != nil {
			t.Errorf("Emit attached a body to statement %q", s.Name)
		}
	}
}

func TestGeneratedSourceParses(t *testing.T) {
	src, _ := generate(t, listing1Src, "")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, numbered(src))
	}
	for _, want := range []string{
		"func task_0()",
		"var tasks = []func(){",
		"var succOff = []int32{", // hoist pass: embedded CSR
		"func runPipelined(workers int)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("optimized source missing %q", want)
		}
	}
	for _, reject := range []string{
		"func stmt_S(",     // specialize pass inlines bodies
		"func resolveDeps", // hoist pass removes startup resolution
		"lexLE(",           // specialize pass removes guarded scans
	} {
		if strings.Contains(src, reject) {
			t.Errorf("optimized source still contains %q", reject)
		}
	}
}

func TestGeneratedSourceUnoptimized(t *testing.T) {
	src, _ := generate(t, listing1Src, "none")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("unoptimized source does not parse: %v\n%s", err, numbered(src))
	}
	for _, want := range []string{
		"func stmt_S(i0 int, i1 int)",
		"func stmt_R(i0 int, i1 int)",
		"func runBlock_S(",
		"func resolveDeps()",
		"var depOuts = [][]int{",
		"var depSerials = [][]int{",
		"func runPipelined(workers int)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("unoptimized source missing %q", want)
		}
	}
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = fmt.Sprintf("%4d  %s", i+1, lines[i])
	}
	return strings.Join(lines, "\n")
}

// runGenerated compiles and executes emitted source with `go run`,
// returning the parsed hash and task count.
func runGenerated(t *testing.T, src string, args ...string) (uint64, int) {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", append([]string{"run", file}, args...)...)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- source ---\n%s", err, out, numbered(src))
	}
	outStr := strings.TrimSpace(string(out))
	if !strings.HasPrefix(outStr, "ok hash=") {
		t.Fatalf("generated program output: %q", outStr)
	}
	var gotHash uint64
	var tasks int
	if _, err := fmt.Sscanf(outStr, "ok hash=%x tasks=%d", &gotHash, &tasks); err != nil {
		t.Fatalf("cannot parse output %q: %v", outStr, err)
	}
	return gotHash, tasks
}

// TestGeneratedProgramRuns compiles and executes the generated
// standalone program with `go run`, optimized and unoptimized, and
// checks (a) it self-verifies (sequential == pipelined inside the
// generated binary) and (b) its result hash matches the in-process
// interpreter bit for bit.
func TestGeneratedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	for _, passes := range []string{"all", "none"} {
		t.Run(passes, func(t *testing.T) {
			src, wantHash := generate(t, listing1Src, passes)
			gotHash, tasks := runGenerated(t, src)
			if gotHash != wantHash {
				t.Fatalf("generated program hash %x != interpreter hash %x", gotHash, wantHash)
			}
			if tasks == 0 {
				t.Fatal("generated program created no tasks")
			}
		})
	}
}

func TestGeneratedDepthOne(t *testing.T) {
	src, _ := generate(t, `
for (i = 0; i < 9; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 9; i++)
  T: B[i] = g(A[i], B[i]);
`, "none")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("depth-1 source does not parse: %v", err)
	}
	if !strings.Contains(src, "func runBlock_T(f0, t0 int)") {
		t.Error("depth-1 block runner signature wrong")
	}
}
