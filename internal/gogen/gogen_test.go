package gogen

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
)

const listing1Src = `
for (i = 0; i < 11; i++)
  for (j = 0; j < 11; j++)
    S: A[i][j] = f(A[i][j], A[i][j+1], A[i+1][j+1]);
for (i = 0; i < 5; i++)
  for (j = 0; j < 5; j++)
    R: B[i][j] = g(A[i][2*j], B[i][j+1], B[i+1][j+1], B[i][j]);
`

func generate(t *testing.T, src string) (string, uint64) {
	t.Helper()
	sc, err := lang.Parse("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.Detect(sc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Emit(&b, info, 4); err != nil {
		t.Fatal(err)
	}
	// Reference hash from the in-process interpreter.
	p := interp.Programify(sc)
	p.Reset()
	for _, s := range sc.Stmts {
		for _, iv := range s.Domain.Elements() {
			s.Body(iv)
		}
	}
	return b.String(), p.Hash()
}

func TestGeneratedSourceParses(t *testing.T) {
	src, _ := generate(t, listing1Src)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, numbered(src))
	}
	for _, want := range []string{
		"func stmt_S(i0 int, i1 int)",
		"func stmt_R(i0 int, i1 int)",
		"func runBlock_S(",
		"func runPipelined(workers int)",
		"var tasks = []task{",
		"serial: 0},",
		"serial: 1},",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = fmt.Sprintf("%4d  %s", i+1, lines[i])
	}
	return strings.Join(lines, "\n")
}

// TestGeneratedProgramRuns compiles and executes the generated
// standalone program with `go run` and checks (a) it self-verifies
// (sequential == pipelined inside the generated binary) and (b) its
// result hash matches the in-process interpreter bit for bit.
func TestGeneratedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("go run is slow")
	}
	src, wantHash := generate(t, listing1Src)
	dir := t.TempDir()
	file := filepath.Join(dir, "main.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", file)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- source ---\n%s", err, out, numbered(src))
	}
	outStr := strings.TrimSpace(string(out))
	if !strings.HasPrefix(outStr, "ok hash=") {
		t.Fatalf("generated program output: %q", outStr)
	}
	var gotHash uint64
	var tasks int
	if _, err := fmt.Sscanf(outStr, "ok hash=%x tasks=%d", &gotHash, &tasks); err != nil {
		t.Fatalf("cannot parse output %q: %v", outStr, err)
	}
	if gotHash != wantHash {
		t.Fatalf("generated program hash %x != interpreter hash %x", gotHash, wantHash)
	}
	if tasks == 0 {
		t.Fatal("generated program created no tasks")
	}
}

func TestGeneratedDepthOne(t *testing.T) {
	src, _ := generate(t, `
for (i = 0; i < 9; i++)
  S: A[i] = f(A[i]);
for (i = 0; i < 9; i++)
  T: B[i] = g(A[i], B[i]);
`)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("depth-1 source does not parse: %v", err)
	}
	if !strings.Contains(src, "func runBlock_T(f0, t0 int)") {
		t.Error("depth-1 block runner signature wrong")
	}
}
