package gogen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/kernels"
)

// diffCorpus builds the full differential corpus: every Table 9
// pattern plus the nmm matrix-multiplication chains. All programs are
// re-bodied with the synthetic interp semantics, which is what the
// emitted programs implement.
func diffCorpus(t *testing.T) []*kernels.Program {
	t.Helper()
	var out []*kernels.Program
	for _, spec := range kernels.Table9 {
		out = append(out, kernels.BuildTable9(spec, 8, 2))
	}
	out = append(out,
		kernels.MMChain(2, 6, kernels.MM),
		kernels.MMChain(3, 6, kernels.GMMT),
	)
	return out
}

// TestEmittedDifferential is the backend's gate: for the full corpus,
// the emitted binary's result hash must be bit-identical to the
// in-process runtime executing the same (synthetic-bodied) program —
// at workers 1, 2, and 4, with the pass pipeline enabled and disabled.
// Each emitted binary also self-verifies (sequential == pipelined)
// on every run.
func TestEmittedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs one binary per kernel and pass config")
	}
	for _, prog := range diffCorpus(t) {
		prog := prog
		t.Run(prog.Name, func(t *testing.T) {
			t.Parallel()
			sc := prog.SCoP
			// Synthetic bodies + reference state (replaces the kernel's
			// own bodies on this fresh instance).
			ip := interp.Programify(sc)
			info, err := core.Detect(sc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}

			// In-process runtime hashes per worker count.
			tp, err := codegen.Compile(info)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]uint64{}
			for _, w := range []int{1, 2, 4} {
				ip.Reset()
				tp.Run(w)
				want[w] = ip.Hash()
			}
			if want[1] != want[2] || want[1] != want[4] {
				t.Fatalf("in-process runtime not worker-invariant: %v", want)
			}

			for _, passes := range []string{"all", "none"} {
				var b strings.Builder
				if err := EmitWith(&b, info, EmitOptions{Workers: 2, Passes: passes}); err != nil {
					t.Fatalf("emit %s: %v", passes, err)
				}
				dir := t.TempDir()
				file := filepath.Join(dir, "main.go")
				if err := os.WriteFile(file, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				bin := filepath.Join(dir, "prog")
				build := exec.Command("go", "build", "-o", bin, file)
				build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
				if out, err := build.CombinedOutput(); err != nil {
					t.Fatalf("go build (%s): %v\n%s\n--- source ---\n%s", passes, err, out, numbered(b.String()))
				}
				for _, w := range []int{1, 2, 4} {
					cmd := exec.Command(bin, fmt.Sprintf("%d", w))
					out, err := cmd.CombinedOutput()
					if err != nil {
						t.Fatalf("emitted binary (%s, workers=%d): %v\n%s", passes, w, err, out)
					}
					var got uint64
					var tasks int
					if _, err := fmt.Sscanf(strings.TrimSpace(string(out)), "ok hash=%x tasks=%d", &got, &tasks); err != nil {
						t.Fatalf("cannot parse emitted output %q: %v", out, err)
					}
					if got != want[w] {
						t.Errorf("passes=%s workers=%d: emitted hash %x != in-process %x", passes, w, got, want[w])
					}
				}
			}
		})
	}
}
