package serve

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Limits is the admission-control policy of a detection server. The
// zero value means "defaults everywhere": in-flight bounded to twice
// the CPU count, queue to four times the in-flight bound, and no
// per-tenant quota.
type Limits struct {
	// MaxInFlight bounds the detections executing concurrently.
	// Requests beyond it wait in the admission queue. <= 0 selects
	// 2 × GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds the waiters behind the in-flight set; a request
	// arriving with the queue full is shed with 503 + Retry-After
	// instead of piling latency onto everyone. <= 0 selects
	// 4 × MaxInFlight.
	MaxQueue int
	// TenantRate is the sustained request rate (tokens per second)
	// each tenant — keyed by the X-Tenant header — may spend. 0
	// disables quotas.
	TenantRate float64
	// TenantBurst is the bucket depth: how far above the sustained
	// rate a tenant may burst. <= 0 selects max(TenantRate, 1).
	TenantBurst float64
}

// withDefaults resolves the zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxInFlight <= 0 {
		l.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = 4 * l.MaxInFlight
	}
	if l.TenantRate > 0 && l.TenantBurst <= 0 {
		l.TenantBurst = math.Max(l.TenantRate, 1)
	}
	return l
}

// bucket is one tenant's token bucket. Tokens refill continuously at
// rate per second up to burst; a request spends one token. admitted
// and denied accumulate the tenant's lifetime admission outcomes for
// the /debug/tenants view.
type bucket struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	rate     float64
	burst    float64
	admitted int64
	denied   int64
}

// take spends one token if available. On refusal it returns the wait
// until the next token accrues, for the Retry-After header.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.admitted++
		return true, 0
	}
	b.denied++
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// tenantTable lazily builds one bucket per tenant name.
type tenantTable struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	rate    float64
	burst   float64
}

func newTenantTable(l Limits) *tenantTable {
	return &tenantTable{buckets: make(map[string]*bucket), rate: l.TenantRate, burst: l.TenantBurst}
}

// take charges one request to tenant. With quotas disabled it always
// admits.
func (t *tenantTable) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if t.rate <= 0 {
		return true, 0
	}
	t.mu.Lock()
	b := t.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: t.burst, last: now, rate: t.rate, burst: t.burst}
		t.buckets[tenant] = b
	}
	t.mu.Unlock()
	return b.take(now)
}

// TenantState is one tenant's quota standing as reported by
// /debug/tenants: the bucket's current token balance (refreshed to
// the snapshot instant) against its configured rate/burst, plus the
// lifetime admitted/denied counts.
type TenantState struct {
	Tenant   string  `json:"tenant"`
	Tokens   float64 `json:"tokens"`
	Rate     float64 `json:"rate"`
	Burst    float64 `json:"burst"`
	Admitted int64   `json:"admitted"`
	Denied   int64   `json:"denied"`
}

// snapshot reports every tenant the table has seen, sorted by name.
// Token balances are brought forward to now so the view reflects the
// refill that would apply to a request arriving at the snapshot
// instant, without spending anything.
func (t *tenantTable) snapshot(now time.Time) []TenantState {
	t.mu.Lock()
	names := make([]string, 0, len(t.buckets))
	for name := range t.buckets {
		names = append(names, name)
	}
	sort.Strings(names)
	buckets := make([]*bucket, len(names))
	for i, name := range names {
		buckets[i] = t.buckets[name]
	}
	t.mu.Unlock()

	out := make([]TenantState, len(names))
	for i, b := range buckets {
		b.mu.Lock()
		tokens := b.tokens
		if now.After(b.last) {
			tokens = math.Min(b.burst, tokens+now.Sub(b.last).Seconds()*b.rate)
		}
		out[i] = TenantState{
			Tenant:   names[i],
			Tokens:   tokens,
			Rate:     b.rate,
			Burst:    b.burst,
			Admitted: b.admitted,
			Denied:   b.denied,
		}
		b.mu.Unlock()
	}
	return out
}
