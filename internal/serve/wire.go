package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/scop"
	"repro/polypipe"
)

// The wire types of the scop/v1 HTTP API. Requests carry SCoPs in the
// versioned envelope ({"schema":"scop/v1","scop":{...}}, docs/API.md);
// responses summarize the detection result — the pipeline pairs, the
// per-statement block structure, and the content fingerprint the
// result is cached under.

// PairSummary names one detected pipeline pair.
type PairSummary struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// StmtSummary is the per-statement slice of a detection result.
type StmtSummary struct {
	Name         string `json:"name"`
	Blocks       int    `json:"blocks"`
	InDeps       int    `json:"in_deps"`
	ParallelDims []bool `json:"parallel_dims,omitempty"`
}

// DetectResponse is the 200 body of POST /v1/detect.
type DetectResponse struct {
	Schema      string        `json:"schema"`
	Fingerprint string        `json:"fingerprint"`
	Pairs       []PairSummary `json:"pairs"`
	Stmts       []StmtSummary `json:"stmts"`
	TotalBlocks int           `json:"total_blocks"`
}

// BatchRequest is the body of POST /v1/detect/batch: the envelope
// wraps the whole batch, each element is a bare SCoP document.
type BatchRequest struct {
	Schema string            `json:"schema"`
	Scops  []json.RawMessage `json:"scops"`
}

// BatchItemError locates one failed element of a batch.
type BatchItemError struct {
	Index   int    `json:"index"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchResponse is the 200 body of POST /v1/detect/batch. Results is
// input-ordered with null at failed indexes; Errors lists the
// failures.
type BatchResponse struct {
	Schema  string            `json:"schema"`
	Results []*DetectResponse `json:"results"`
	Errors  []BatchItemError  `json:"errors,omitempty"`
}

// ErrorBody is every non-2xx response body.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine code and human message of a
// failure. Codes are stable API surface (docs/API.md).
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable error codes.
const (
	CodeBadRequest     = "bad_request"     // malformed JSON or body
	CodeBadSchema      = "bad_schema"      // missing or unknown envelope schema
	CodeNotPipelinable = "not_pipelinable" // detection rejected the SCoP
	CodeUnknownBackend = "unknown_backend" // session built with a bad backend name
	CodeQuotaExhausted = "quota_exhausted" // tenant token bucket empty
	CodeOverloaded     = "overloaded"      // admission queue full, request shed
	CodeDraining       = "draining"        // server is shutting down
	CodeCanceled       = "canceled"        // request or session context ended the wait
	CodeClosed         = "session_closed"  // backing session was closed
	CodeInternal       = "internal"        // anything else
)

// classify maps a detection-path error to HTTP status + stable code.
// Client mistakes (bad wire documents, SCoPs the transformation
// rejects, bad backend names) are 4xx; lifecycle conditions (closed
// session, canceled wait, drain) are 503 so load balancers retry
// elsewhere.
func classify(err error) (status int, code string) {
	var se *scop.SchemaError
	switch {
	case errors.As(err, &se):
		return http.StatusBadRequest, CodeBadSchema
	case errors.Is(err, polypipe.ErrNotPipelinable), errors.Is(err, core.ErrNotPipelinable):
		return http.StatusBadRequest, CodeNotPipelinable
	case errors.Is(err, polypipe.ErrUnknownBackend):
		return http.StatusBadRequest, CodeUnknownBackend
	case errors.Is(err, polypipe.ErrSessionClosed):
		return http.StatusServiceUnavailable, CodeClosed
	case errors.Is(err, polypipe.ErrDetectCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, CodeCanceled
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// summarize flattens a detection result into its wire form.
func summarize(info *core.Info) *DetectResponse {
	resp := &DetectResponse{
		Schema:      scop.SchemaV1,
		Fingerprint: info.SCoP.Fingerprint().String(),
		Pairs:       []PairSummary{},
		Stmts:       []StmtSummary{},
		TotalBlocks: info.TotalBlocks(),
	}
	for _, p := range info.Pairs {
		resp.Pairs = append(resp.Pairs, PairSummary{Src: p.Src.Name, Dst: p.Dst.Name})
	}
	for _, si := range info.Stmts {
		s := StmtSummary{Name: si.Stmt.Name, Blocks: len(si.Blocks), InDeps: len(si.InDeps)}
		if info.Graph != nil {
			s.ParallelDims = info.Graph.ParallelDims(si.Stmt)
		}
		resp.Stmts = append(resp.Stmts, s)
	}
	return resp
}
