package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/scop"
	"repro/polypipe"
)

func newTestServer(t *testing.T, lim Limits, opts ...polypipe.SessionOption) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts = append([]polypipe.SessionOption{polypipe.WithRegistry(reg), polypipe.WithCache(0)}, opts...)
	sess := polypipe.NewSession(opts...)
	t.Cleanup(func() { sess.Close() })
	srv := New(sess, lim, reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func envelopedKernel(t *testing.T) []byte {
	t.Helper()
	body, err := scop.ToJSONEnveloped(kernels.Listing3(16).SCoP)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url, tenant string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func errCode(t *testing.T, out map[string]any) string {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %v", out)
	}
	code, _ := e["code"].(string)
	return code
}

func TestDetectHappyPath(t *testing.T) {
	_, ts, reg := newTestServer(t, Limits{})
	resp, out := post(t, ts.URL+"/v1/detect", "", envelopedKernel(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["schema"] != scop.SchemaV1 {
		t.Fatalf("response schema = %v", out["schema"])
	}
	if out["fingerprint"] == "" {
		t.Fatal("no fingerprint")
	}
	pairs := out["pairs"].([]any)
	if len(pairs) == 0 {
		t.Fatal("Listing3 should detect at least one pipeline pair")
	}
	if out["total_blocks"].(float64) <= 0 {
		t.Fatal("no blocks in summary")
	}
	snap := reg.Snapshot()
	if snap.Counter("serve.requests") != 1 || snap.Counter("serve.responses.ok") != 1 {
		t.Fatalf("request counters: %+v", snap.Counters)
	}
	if snap.Counter("cache.misses") != 1 {
		t.Fatal("detection should have gone through the session cache")
	}
}

func TestDetectRejectsBareDocument(t *testing.T) {
	// The Go API accepts bare legacy documents; the HTTP surface must
	// not — wire compatibility is versioned or it is nothing.
	_, ts, _ := newTestServer(t, Limits{})
	bare, err := scop.ToJSON(kernels.Listing3(16).SCoP)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL+"/v1/detect", "", bare)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if code := errCode(t, out); code != CodeBadSchema {
		t.Fatalf("code %q, want %q", code, CodeBadSchema)
	}
}

func TestDetectMalformedBodies(t *testing.T) {
	_, ts, _ := newTestServer(t, Limits{})
	cases := []struct {
		name string
		body string
		code string
	}{
		{"not json", "{", CodeBadRequest},
		{"unknown schema", `{"schema":"scop/v9","scop":{}}`, CodeBadSchema},
		{"missing payload", `{"schema":"scop/v1"}`, CodeBadRequest},
		{"empty scop", `{"schema":"scop/v1","scop":{}}`, CodeBadRequest},
	}
	for _, tc := range cases {
		resp, out := post(t, ts.URL+"/v1/detect", "", []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", tc.name, resp.StatusCode)
		}
		if code := errCode(t, out); code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}
}

func TestDetectNotPipelinable(t *testing.T) {
	_, ts, _ := newTestServer(t, Limits{})
	// Two statements both writing A[i]: a write-write cross hazard the
	// document parses fine but detection rejects with
	// ErrNotPipelinable.
	doc := `{"schema":"scop/v1","scop":{
		"name":"hazard",
		"arrays":[{"name":"A","dim":1}],
		"statements":[
			{"name":"S",
			 "bounds":[{"lo":{"nvars":0,"const":0},"hi":{"nvars":0,"const":3}}],
			 "write":{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}},
			{"name":"T",
			 "bounds":[{"lo":{"nvars":0,"const":0},"hi":{"nvars":0,"const":3}}],
			 "write":{"array":"A","index":[{"nvars":1,"coeffs":[1]}]}}]}}`
	resp, out := post(t, ts.URL+"/v1/detect", "", []byte(doc))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if code := errCode(t, out); code != CodeNotPipelinable {
		t.Fatalf("code %q, want %q", code, CodeNotPipelinable)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts, reg := newTestServer(t, Limits{})
	good, err := scop.ToJSON(kernels.Listing3(16).SCoP)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"schema":"scop/v1","scops":[%s,{"bogus":true},%s]}`, good, good)
	resp, out := post(t, ts.URL+"/v1/detect/batch", "", []byte(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("valid items missing results")
	}
	if results[1] != nil {
		t.Fatal("invalid item produced a result")
	}
	errs := out["errors"].([]any)
	if len(errs) != 1 {
		t.Fatalf("%d item errors, want 1", len(errs))
	}
	if idx := errs[0].(map[string]any)["index"].(float64); idx != 1 {
		t.Fatalf("error index %v, want 1", idx)
	}
	if reg.Snapshot().Counter("serve.batch_items") != 3 {
		t.Fatal("batch items not counted")
	}
}

func TestQuotaExhaustion(t *testing.T) {
	_, ts, reg := newTestServer(t, Limits{TenantRate: 0.001, TenantBurst: 2})
	body := envelopedKernel(t)
	for i := 0; i < 2; i++ {
		resp, out := post(t, ts.URL+"/v1/detect", "alice", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, resp.StatusCode, out)
		}
	}
	resp, out := post(t, ts.URL+"/v1/detect", "alice", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if code := errCode(t, out); code != CodeQuotaExhausted {
		t.Fatalf("code %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if reg.Snapshot().Counter("serve.quota_denials") != 1 {
		t.Fatal("quota denial not counted")
	}
}

func TestTenantIsolation(t *testing.T) {
	// Alice burning her bucket must not affect bob or the default
	// tenant.
	_, ts, reg := newTestServer(t, Limits{TenantRate: 0.001, TenantBurst: 1})
	body := envelopedKernel(t)
	if resp, _ := post(t, ts.URL+"/v1/detect", "alice", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice's first request: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/detect", "alice", body); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice's second request should be quota-denied, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/detect", "bob", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob throttled by alice's quota: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/detect", "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("default tenant throttled by alice's quota: %d", resp.StatusCode)
	}
	snap := reg.Snapshot()
	// Per-tenant latency histograms exist for everyone who got through.
	for _, name := range []string{"serve.tenant.alice.request_ns", "serve.tenant.bob.request_ns", "serve.tenant.default.request_ns"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("missing per-tenant histogram %s", name)
		}
	}
}

func TestShedOnOverload(t *testing.T) {
	srv, ts, reg := newTestServer(t, Limits{MaxInFlight: 1, MaxQueue: 1})
	// Occupy the single in-flight slot and the single queue slot, as a
	// stalled detection plus one legitimate waiter would.
	srv.sem <- struct{}{}
	srv.queueG.Add(1)

	resp, out := post(t, ts.URL+"/v1/detect", "", envelopedKernel(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if code := errCode(t, out); code != CodeOverloaded {
		t.Fatalf("code %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	if reg.Snapshot().Counter("serve.sheds") != 1 {
		t.Fatal("shed not counted")
	}
	<-srv.sem
	srv.queueG.Add(-1)
	// With the slot free the same request succeeds.
	if resp, _ := post(t, ts.URL+"/v1/detect", "", envelopedKernel(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload request: %d", resp.StatusCode)
	}
}

func TestDrainRefusesAndHealthzFlips(t *testing.T) {
	srv, ts, reg := newTestServer(t, Limits{})
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.StatusCode, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, out := post(t, ts.URL+"/v1/detect", "", envelopedKernel(t))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d", resp.StatusCode)
	}
	if code := errCode(t, out); code != CodeDraining {
		t.Fatalf("code %q", code)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d", hresp.StatusCode)
	}
	snap := reg.Snapshot()
	if snap.Gauge("serve.draining") != 1 {
		t.Fatal("serve.draining gauge not set")
	}
	if snap.Counter("serve.sheds") == 0 {
		t.Fatal("drain refusal not counted as shed")
	}
}

func TestMetricsEndpointServesSessionAndServe(t *testing.T) {
	_, ts, _ := newTestServer(t, Limits{})
	if resp, _ := post(t, ts.URL+"/v1/detect", "", envelopedKernel(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"serve_requests", "serve_queue_depth", "cache_misses"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

// TestConcurrentRequestsOneSession drives many concurrent requests —
// mixed tenants, repeated and distinct SCoPs — against one Session to
// exercise the admission path, cache singleflight, and per-tenant
// histograms under the race detector.
func TestConcurrentRequestsOneSession(t *testing.T) {
	_, ts, reg := newTestServer(t, Limits{MaxInFlight: 4, MaxQueue: 64})
	bodies := [][]byte{envelopedKernel(t)}
	for _, name := range []string{"P2", "P4", "P7"} {
		p, err := kernels.Table9Program(name, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scop.ToJSONEnveloped(p.SCoP)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	const goroutines = 16
	const perG = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < perG; i++ {
				body := bodies[(g+i)%len(bodies)]
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("X-Tenant", tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d request %d: status %d", g, i, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("serve.responses.ok"); got != goroutines*perG {
		t.Fatalf("serve.responses.ok = %d, want %d", got, goroutines*perG)
	}
	// 4 distinct SCoPs were requested 128 times: the cache must have
	// collapsed detection to at most a handful of misses.
	if misses := snap.Counter("cache.misses"); misses < int64(len(bodies)) {
		t.Fatalf("cache.misses = %d, want >= %d", misses, len(bodies))
	}
	if hits := snap.Counter("cache.hits"); hits == 0 {
		t.Fatal("no cache hits across repeated identical requests")
	}
	if snap.Gauge("serve.inflight") != 0 {
		t.Fatal("inflight gauge did not return to zero")
	}
	if snap.Gauge("serve.queue_depth") != 0 {
		t.Fatal("queue depth gauge did not return to zero")
	}
	if snap.Gauge("serve.queue_peak") < 1 {
		t.Fatal("queue watermark never moved under 16-way load")
	}
}

func TestDebugTenantsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Limits{TenantRate: 0.001, TenantBurst: 2})
	body := envelopedKernel(t)
	// alice: 2 admitted, 1 denied; bob: 1 admitted.
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/detect", "alice", body)
	}
	post(t, ts.URL+"/v1/detect", "bob", body)

	resp, err := http.Get(ts.URL + "/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out TenantsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || out.Rate != 0.001 || out.Burst != 2 {
		t.Fatalf("policy = %+v", out)
	}
	if len(out.Tenants) != 2 {
		t.Fatalf("tenants = %+v", out.Tenants)
	}
	// snapshot sorts by name: alice before bob.
	alice, bob := out.Tenants[0], out.Tenants[1]
	if alice.Tenant != "alice" || bob.Tenant != "bob" {
		t.Fatalf("order = %q, %q", alice.Tenant, bob.Tenant)
	}
	if alice.Admitted != 2 || alice.Denied != 1 {
		t.Fatalf("alice = %+v", alice)
	}
	if bob.Admitted != 1 || bob.Denied != 0 {
		t.Fatalf("bob = %+v", bob)
	}
	if alice.Tokens >= 1 {
		t.Fatalf("alice's bucket should be drained, tokens = %v", alice.Tokens)
	}
	if alice.Rate != 0.001 || alice.Burst != 2 {
		t.Fatalf("alice bucket config = %+v", alice)
	}
}

func TestDebugTenantsQuotasDisabled(t *testing.T) {
	_, ts, _ := newTestServer(t, Limits{})
	post(t, ts.URL+"/v1/detect", "alice", envelopedKernel(t))
	resp, err := http.Get(ts.URL + "/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out TenantsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled || len(out.Tenants) != 0 {
		t.Fatalf("quotas disabled, got %+v", out)
	}
}
