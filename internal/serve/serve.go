// Package serve is the detection-as-a-service front end: an HTTP/JSON
// server over a polypipe.Session that accepts SCoPs in the scop/v1
// wire envelope, runs Algorithm 1 through the session's tiered
// fingerprint cache, and returns detection summaries — with the
// production plumbing a shared deployment needs: bounded admission,
// per-tenant token-bucket quotas, load shedding with Retry-After,
// graceful drain, and serve.* metrics on the session registry.
//
// Endpoints:
//
//	POST /v1/detect        one enveloped SCoP → DetectResponse
//	POST /v1/detect/batch  enveloped batch → BatchResponse
//	GET  /healthz          200 while serving, 503 once draining
//	GET  /metrics          Prometheus exposition (via internal/obsd)
//	GET  /debug/*          phase spans, sampler series, trace (obsd)
//
// Admission is two-staged: a per-tenant token bucket (X-Tenant header;
// absent = "default") answers "may this tenant spend?", then a bounded
// semaphore + queue answers "can the process afford it right now?".
// Refusals are cheap and explicit — 429 with Retry-After for quota,
// 503 with Retry-After for overload and drain — so clients and load
// balancers back off instead of stacking latency. docs/SERVING.md is
// the operator guide.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obsd"
	"repro/internal/scop"
	"repro/polypipe"
)

// maxBodyBytes bounds a request body; a SCoP document past this is a
// client error, not a memory obligation.
const maxBodyBytes = 16 << 20

// Server is one detection service instance. Build with New, mount
// Handler on any mux or call Serve, then Drain on shutdown. All
// methods are safe for concurrent use.
type Server struct {
	sess *polypipe.Session
	lim  Limits
	mux  *http.ServeMux

	sem      chan struct{} // in-flight slots
	draining atomic.Bool
	drainCh  chan struct{} // closed when drain begins
	inflight sync.WaitGroup

	tenants *tenantTable
	now     func() time.Time // injectable for tests

	httpSrv *http.Server
	ln      net.Listener

	reqs       *obs.Counter
	batchItems *obs.Counter
	sheds      *obs.Counter
	quotaDeny  *obs.Counter
	respOK     *obs.Counter
	resp4xx    *obs.Counter
	resp5xx    *obs.Counter
	inflightG  *obs.Gauge
	inflightPk *obs.Gauge
	queueG     *obs.Gauge
	queuePk    *obs.Gauge
	drainingG  *obs.Gauge
	reqNS      *obs.Histogram

	tmu      sync.Mutex
	tenantNS map[string]*obs.Histogram
	reg      *obs.Registry
}

// New builds a server over sess with the given admission limits.
// Metrics land on reg under the serve.* names catalogued in
// docs/OBSERVABILITY.md; pass the session's registry so one /metrics
// scrape covers both. A nil reg falls back to sess.Registry(), and to
// a private registry when the session has none.
func New(sess *polypipe.Session, lim Limits, reg *obs.Registry) *Server {
	if reg == nil {
		reg = sess.Registry()
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lim = lim.withDefaults()
	s := &Server{
		sess:    sess,
		lim:     lim,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, lim.MaxInFlight),
		drainCh: make(chan struct{}),
		tenants: newTenantTable(lim),
		now:     time.Now,

		reqs:       reg.Counter("serve.requests"),
		batchItems: reg.Counter("serve.batch_items"),
		sheds:      reg.Counter("serve.sheds"),
		quotaDeny:  reg.Counter("serve.quota_denials"),
		respOK:     reg.Counter("serve.responses.ok"),
		resp4xx:    reg.Counter("serve.responses.client_error"),
		resp5xx:    reg.Counter("serve.responses.server_error"),
		inflightG:  reg.Gauge("serve.inflight"),
		inflightPk: reg.Gauge("serve.inflight_peak"),
		queueG:     reg.Gauge("serve.queue_depth"),
		queuePk:    reg.Gauge("serve.queue_peak"),
		drainingG:  reg.Gauge("serve.draining"),
		reqNS:      reg.Histogram("serve.request_ns", nil),

		tenantNS: make(map[string]*obs.Histogram),
		reg:      reg,
	}
	s.mux.HandleFunc("POST /v1/detect", s.handleDetect)
	s.mux.HandleFunc("POST /v1/detect/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	intro := obsd.New(sess).Handler()
	s.mux.Handle("GET /metrics", intro)
	s.mux.Handle("GET /debug/", intro)
	// More specific than the obsd catch-all, so it wins the route.
	s.mux.HandleFunc("GET /debug/tenants", s.handleTenants)
	return s
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve listens on addr (e.g. "127.0.0.1:0") and serves until Drain.
// It returns the bound address immediately; the accept loop runs on a
// background goroutine.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Drain shuts the server down gracefully: new work is refused with
// 503 immediately, queued waiters are released to shed, and in-flight
// detections run to completion (bounded by ctx). The HTTP listener
// closes last so refusals still reach clients during the drain.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.drainingG.Set(1)
		close(s.drainCh)
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if s.httpSrv != nil {
		if herr := s.httpSrv.Shutdown(ctx); err == nil {
			err = herr
		}
	}
	return err
}

// tenantOf extracts the quota key: the X-Tenant header, or "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admit runs the two admission stages for one request. On success it
// returns release != nil; the caller must invoke it when the work
// completes. On refusal it has already written the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, tenant string) (release func()) {
	if s.draining.Load() {
		s.sheds.Inc()
		s.refuse(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 1)
		return nil
	}
	if ok, retry := s.tenants.take(tenant, s.now()); !ok {
		s.quotaDeny.Inc()
		secs := int(retry/time.Second) + 1
		s.refuse(w, http.StatusTooManyRequests, CodeQuotaExhausted,
			fmt.Sprintf("tenant %q is over its request quota", tenant), secs)
		return nil
	}
	q := s.queueG.Add(1)
	s.queuePk.Max(q)
	if int(q) > s.lim.MaxQueue {
		s.queueG.Add(-1)
		s.sheds.Inc()
		s.refuse(w, http.StatusServiceUnavailable, CodeOverloaded, "admission queue is full", 1)
		return nil
	}
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.queueG.Add(-1)
		s.refuse(w, http.StatusServiceUnavailable, CodeCanceled, "client went away while queued", 0)
		return nil
	case <-s.drainCh:
		s.queueG.Add(-1)
		s.sheds.Inc()
		s.refuse(w, http.StatusServiceUnavailable, CodeDraining, "server is draining", 1)
		return nil
	}
	s.queueG.Add(-1)
	s.inflight.Add(1)
	in := s.inflightG.Add(1)
	s.inflightPk.Max(in)
	return func() {
		<-s.sem
		s.inflightG.Add(-1)
		s.inflight.Done()
	}
}

// tenantHist returns (building on demand) the per-tenant latency
// histogram serve.tenant.<name>.request_ns.
func (s *Server) tenantHist(tenant string) *obs.Histogram {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	h := s.tenantNS[tenant]
	if h == nil {
		h = s.reg.Histogram("serve.tenant."+tenant+".request_ns", nil)
		s.tenantNS[tenant] = h
	}
	return h
}

// readEnveloped reads and envelope-checks one request body. The HTTP
// surface speaks only the versioned envelope: a bare legacy document
// that the Go-level scop.FromJSON would accept is refused here, so
// wire compatibility is an explicit, versioned contract.
func readEnveloped(r *http.Request) ([]byte, *ErrorDetail) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, &ErrorDetail{Code: CodeBadRequest, Message: "read body: " + err.Error()}
	}
	if len(body) > maxBodyBytes {
		return nil, &ErrorDetail{Code: CodeBadRequest, Message: "request body exceeds 16 MiB"}
	}
	var probe struct {
		Schema *string `json:"schema"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, &ErrorDetail{Code: CodeBadRequest, Message: "malformed JSON: " + err.Error()}
	}
	if probe.Schema == nil {
		return nil, &ErrorDetail{Code: CodeBadSchema,
			Message: fmt.Sprintf("request must use the versioned envelope {%q: %q, ...}", "schema", scop.SchemaV1)}
	}
	return body, nil
}

// parseSCoP parses one wire SCoP document and refuses degenerate
// ones: encoding/json ignores unknown keys, so without the statement
// check a typo'd document would "detect" an empty program and return
// an empty 200.
func parseSCoP(data []byte) (*scop.SCoP, error) {
	sc, err := scop.FromJSON(data)
	if err != nil {
		return nil, err
	}
	if len(sc.Stmts) == 0 {
		return nil, fmt.Errorf("scop %q has no statements", sc.Name)
	}
	return sc, nil
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	tenant := tenantOf(r)
	body, ed := readEnveloped(r)
	if ed != nil {
		s.refuse(w, http.StatusBadRequest, ed.Code, ed.Message, 0)
		return
	}
	sc, err := parseSCoP(body)
	if err != nil {
		status, code := classify(err)
		s.refuse(w, status, code, err.Error(), 0)
		return
	}
	release := s.admit(w, r, tenant)
	if release == nil {
		return
	}
	defer release()
	start := s.now()
	info, err := s.sess.Detect(sc)
	elapsed := s.now().Sub(start).Nanoseconds()
	s.reqNS.Observe(elapsed)
	s.tenantHist(tenant).Observe(elapsed)
	if err != nil {
		status, code := classify(err)
		s.refuse(w, status, code, err.Error(), 0)
		return
	}
	s.respond(w, http.StatusOK, summarize(info))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqs.Inc()
	tenant := tenantOf(r)
	body, ed := readEnveloped(r)
	if ed != nil {
		s.refuse(w, http.StatusBadRequest, ed.Code, ed.Message, 0)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.refuse(w, http.StatusBadRequest, CodeBadRequest, "malformed batch: "+err.Error(), 0)
		return
	}
	if req.Schema != scop.SchemaV1 {
		err := &scop.SchemaError{Schema: req.Schema}
		s.refuse(w, http.StatusBadRequest, CodeBadSchema, err.Error(), 0)
		return
	}
	if len(req.Scops) == 0 {
		s.refuse(w, http.StatusBadRequest, CodeBadRequest, "batch has no scops", 0)
		return
	}
	resp := BatchResponse{Schema: scop.SchemaV1, Results: make([]*DetectResponse, len(req.Scops))}
	scs := make([]*scop.SCoP, len(req.Scops))
	for i, raw := range req.Scops {
		sc, err := parseSCoP(raw)
		if err != nil {
			_, code := classify(err)
			resp.Errors = append(resp.Errors, BatchItemError{Index: i, Code: code, Message: err.Error()})
			continue
		}
		scs[i] = sc
	}
	// One admission slot covers the whole batch: the session fans the
	// items over its own worker pool, so batch concurrency is already
	// governed; admitting per item would deadlock small queues.
	release := s.admit(w, r, tenant)
	if release == nil {
		return
	}
	defer release()
	s.batchItems.Add(int64(len(req.Scops)))

	valid := make([]*scop.SCoP, 0, len(scs))
	backIdx := make([]int, 0, len(scs))
	for i, sc := range scs {
		if sc != nil {
			valid = append(valid, sc)
			backIdx = append(backIdx, i)
		}
	}
	start := s.now()
	infos, errs := s.sess.DetectBatch(valid)
	elapsed := s.now().Sub(start).Nanoseconds()
	s.reqNS.Observe(elapsed)
	s.tenantHist(tenant).Observe(elapsed)
	for j, info := range infos {
		i := backIdx[j]
		if errs[j] != nil {
			_, code := classify(errs[j])
			resp.Errors = append(resp.Errors, BatchItemError{Index: i, Code: code, Message: errs[j].Error()})
			continue
		}
		resp.Results[i] = summarize(info)
	}
	s.respond(w, http.StatusOK, resp)
}

// handleHealthz is the service health endpoint: 200 while accepting
// work, 503 once draining or the session is closed. (The obsd
// /healthz reflects only the session; this one folds in drain state,
// which is what a load balancer needs.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || !s.sess.Healthy() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// TenantsResponse is the GET /debug/tenants body: the admission
// policy in force plus every tenant the server has seen with its
// current token balance and lifetime admitted/denied counts. With
// quotas disabled (TenantRate == 0) Enabled is false and Tenants is
// empty — the bucket table is never populated.
type TenantsResponse struct {
	Enabled bool          `json:"quota_enabled"`
	Rate    float64       `json:"rate"`
	Burst   float64       `json:"burst"`
	Tenants []TenantState `json:"tenants"`
}

// handleTenants serves the per-tenant quota standings, the operator's
// answer to "which tenant is being throttled and how close are the
// others". Registered above the obsd /debug/ catch-all.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	states := s.tenants.snapshot(s.now())
	if states == nil {
		states = []TenantState{}
	}
	s.respond(w, http.StatusOK, TenantsResponse{
		Enabled: s.lim.TenantRate > 0,
		Rate:    s.lim.TenantRate,
		Burst:   s.lim.TenantBurst,
		Tenants: states,
	})
}

// respond writes a JSON body with status.
func (s *Server) respond(w http.ResponseWriter, status int, body any) {
	s.count(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// refuse writes an ErrorBody, with Retry-After when retryAfter > 0.
func (s *Server) refuse(w http.ResponseWriter, status int, code, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.count(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

func (s *Server) count(status int) {
	switch {
	case status < 400:
		s.respOK.Inc()
	case status < 500:
		s.resp4xx.Inc()
	default:
		s.resp5xx.Inc()
	}
}
