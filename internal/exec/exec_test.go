package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/isl"
	"repro/internal/isl/aff"
	"repro/internal/kernels"
	"repro/internal/scop"
)

func TestVerifyListings(t *testing.T) {
	for _, n := range []int{8, 12, 20} {
		if err := Verify(kernels.Listing1(n), 4, core.Options{}); err != nil {
			t.Errorf("listing1 n=%d: %v", n, err)
		}
		if err := Verify(kernels.Listing3(n), 4, core.Options{}); err != nil {
			t.Errorf("listing3 n=%d: %v", n, err)
		}
	}
}

func TestVerifyCoarseGranularity(t *testing.T) {
	if err := Verify(kernels.Listing3(16), 4, core.Options{MinBlockIters: 5}); err != nil {
		t.Error(err)
	}
}

func TestSequentialDeterministic(t *testing.T) {
	p := kernels.Listing1(12)
	a := Sequential(p)
	b := Sequential(p)
	if a.Hash != b.Hash {
		t.Fatal("sequential execution not deterministic")
	}
	if a.Executor != "sequential" {
		t.Fatalf("executor = %q", a.Executor)
	}
}

func TestPipelinedReportsTasks(t *testing.T) {
	p := kernels.Listing3(16)
	res, err := Pipelined(p, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := core.Detect(p.SCoP, core.Options{})
	if res.Tasks != info.TotalBlocks() {
		t.Fatalf("tasks = %d, want %d", res.Tasks, info.TotalBlocks())
	}
	if res.MaxConcurrent < 1 {
		t.Fatalf("maxConcurrent = %d", res.MaxConcurrent)
	}
}

// buildRowChain constructs a chain of nests where each writes its own
// array row by row and reads the same row of the previous array —
// fully parallel rows (the nmm shape).
func buildRowChain(t *testing.T, nests, rows int) *kernels.Program {
	t.Helper()
	grids := make([]*kernels.Grid, nests+1)
	for i := range grids {
		grids[i] = kernels.NewGrid(rows)
	}
	b := scop.NewBuilder("rowchain")
	b.Array("A0", 1)
	for k := 1; k <= nests; k++ {
		b.Array(name(k), 1)
	}
	for k := 1; k <= nests; k++ {
		src := grids[k-1]
		dst := grids[k]
		b.Stmt(stmtName(k), aff.RectDomain(stmtName(k), rows)).
			Writes(name(k), aff.Var(1, 0)).
			Reads(name(k-1), aff.Var(1, 0)).
			Body(func(iv isl.Vec) {
				i := iv[0]
				acc := 0.0
				for j := 0; j < src.N; j++ {
					acc += src.At(i, j)
				}
				for j := 0; j < dst.N; j++ {
					dst.Set(i, j, acc+float64(j))
				}
			})
	}
	sc := b.MustBuild()
	reset := func() {
		for i, g := range grids {
			g.SeedDeterministic(uint64(i + 1))
		}
	}
	reset()
	return &kernels.Program{
		Name: "rowchain", SCoP: sc, Reset: reset,
		Hash: func() uint64 {
			h := uint64(0)
			for _, g := range grids {
				h = h*31 ^ g.Hash()
			}
			return h
		},
	}
}

func name(k int) string     { return "A" + string(rune('0'+k)) }
func stmtName(k int) string { return "S" + string(rune('0'+k)) }

func TestParLoopParallelRows(t *testing.T) {
	p := buildRowChain(t, 3, 16)
	if got := ParallelizableNests(p); got != 3 {
		t.Fatalf("ParallelizableNests = %d, want 3", got)
	}
	want := Sequential(p).Hash
	for _, workers := range []int{1, 2, 4, 8} {
		res := ParLoop(p, workers)
		if res.Hash != want {
			t.Fatalf("workers=%d: parloop hash differs", workers)
		}
	}
}

func TestParLoopSerialNest(t *testing.T) {
	p := kernels.Listing1(16)
	if got := ParallelizableNests(p); got != 0 {
		t.Fatalf("ParallelizableNests = %d, want 0 (stencils are serial)", got)
	}
	want := Sequential(p).Hash
	if got := ParLoop(p, 4).Hash; got != want {
		t.Fatal("parloop (degenerate sequential) hash differs")
	}
}

func TestParLoopInnerParallel(t *testing.T) {
	// A[i][j] = A[i-1][j]: outer carries the dep, inner parallel.
	g := kernels.NewGrid(12)
	b := scop.NewBuilder("cols")
	b.Array("A", 2)
	b.Stmt("S", aff.NewDomain("S",
		aff.LoopBound{Lo: aff.Const(0, 1), Hi: aff.Const(0, 12)},
		aff.ConstBound(1, 0, 12),
	)).
		Writes("A", aff.Var(2, 0), aff.Var(2, 1)).
		Reads("A", aff.Linear(-1, 1, 0), aff.Var(2, 1)).
		Body(func(iv isl.Vec) {
			g.Set(iv[0], iv[1], g.At(iv[0]-1, iv[1])+1)
		})
	sc := b.MustBuild()
	reset := func() { g.SeedDeterministic(7) }
	reset()
	p := &kernels.Program{Name: "cols", SCoP: sc, Reset: reset, Hash: g.Hash}

	want := Sequential(p).Hash
	for _, workers := range []int{2, 4} {
		if got := ParLoop(p, workers).Hash; got != want {
			t.Fatalf("workers=%d: inner-parallel parloop hash differs", workers)
		}
	}
}

func TestPipelinedRowChain(t *testing.T) {
	p := buildRowChain(t, 4, 24)
	if err := Verify(p, 4, core.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := Pipelined(p, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Row-granular pipeline: each row of each nest is one task.
	if res.Tasks != 4*24 {
		t.Fatalf("tasks = %d, want %d", res.Tasks, 4*24)
	}
}

func TestFuturesLayerMatchesSequential(t *testing.T) {
	for _, prog := range []*kernels.Program{
		kernels.Listing1(16),
		kernels.Listing3(16),
		kernels.MMChain(3, 12, kernels.GMM),
	} {
		want := Sequential(prog).Hash
		res, err := PipelinedOnFutures(prog, 4, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		if res.Hash != want {
			t.Errorf("%s: futures-layer hash differs from sequential", prog.Name)
		}
		if res.Tasks == 0 {
			t.Errorf("%s: no tasks", prog.Name)
		}
	}
}

func TestHybridMatchesSequential(t *testing.T) {
	// mm chains are conflict-free per nest: hybrid runs members in
	// parallel inside blocks; results must stay bit-identical.
	for _, prog := range []*kernels.Program{
		kernels.MMChain(3, 16, kernels.MM),
		kernels.MMChain(2, 16, kernels.GMM), // serial nests: hybrid degenerates
		kernels.Listing3(16),
	} {
		want := Sequential(prog).Hash
		res, err := PipelinedHybrid(prog, 4, 3, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", prog.Name, err)
		}
		if res.Hash != want {
			t.Errorf("%s: hybrid hash differs from sequential", prog.Name)
		}
	}
}

func TestHybridParallelBodyFlags(t *testing.T) {
	p := kernels.MMChain(2, 12, kernels.MM)
	info, err := core.Detect(p.SCoP, core.Options{MinBlockIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.CompileWithOptions(info, codegen.CompileOptions{IntraBlockWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range prog.Tasks {
		if !task.ParallelBody {
			t.Fatalf("mm task %s not marked parallel", task.Label)
		}
	}
	g := kernels.MMChain(2, 12, kernels.GMM)
	infoG, _ := core.Detect(g.SCoP, core.Options{})
	progG, err := codegen.CompileWithOptions(infoG, codegen.CompileOptions{IntraBlockWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range progG.Tasks {
		if task.ParallelBody {
			t.Fatalf("gmm task %s wrongly marked parallel", task.Label)
		}
	}
}
