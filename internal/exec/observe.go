package exec

import (
	"fmt"
	"io"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Observation couples one pipelined execution with everything the
// observability layer measured about it: the ordinary Result, the
// compile-side phase timings and counts, the span-level analysis
// (stall, utilization, overlap, Eq. 5/6 aggregates), the realized
// critical path of the executed task DAG, the data-dependency edges
// (for trace export), and the full metrics snapshot.
type Observation struct {
	Result    Result
	Phases    []obs.PhaseSpan
	Analysis  trace.Analysis
	Critical  trace.CriticalPath
	DataEdges [][2]int
	Snapshot  obs.Snapshot
	// StmtNames maps statement index to name, for trace export.
	StmtNames map[int]string
}

// PipelinedObserved is Pipelined with the full observability layer
// threaded through the stack: detection, codegen, and IR-lowering
// phases are timed into rec's phase list, the unified runtime core
// reports queue depth, stall, steal counts, and per-worker busy time
// into rec's registry under the "runtime." prefix, a collector gathers
// per-task spans, and the executed DAG's critical path is computed.
// rec may be nil; a fresh recorder is created.
func PipelinedObserved(p *kernels.Program, workers int, opts core.Options, rec *obs.Recorder) (*Observation, error) {
	return PipelinedObservedWith(p, workers, opts, codegen.CompileOptions{}, rec)
}

// PipelinedObservedWith is PipelinedObserved with explicit compile
// options, so callers can observe the hybrid-scheduled or intra-block
// parallel variants (copts.Obs is overwritten with rec).
func PipelinedObservedWith(p *kernels.Program, workers int, opts core.Options, copts codegen.CompileOptions, rec *obs.Recorder) (*Observation, error) {
	if rec == nil {
		rec = obs.NewRecorder()
	}
	opts.Obs = rec
	copts.Obs = rec

	stop := rec.Phase("detect")
	info, err := core.Detect(p.SCoP, opts)
	stop()
	if err != nil {
		return nil, fmt.Errorf("exec: detect: %w", err)
	}
	stop = rec.Phase("compile")
	prog, err := codegen.CompileWithOptions(info, copts)
	stop()
	if err != nil {
		return nil, fmt.Errorf("exec: compile: %w", err)
	}
	ir := prog.LowerObserved(rec)

	c := trace.NewCollector()
	c.SetRegistry(rec.Reg)
	p.Reset()

	eo := prog.ExecOpts()
	eo.Trace = c.Hook()
	eo.Reg = rec.Reg
	stop = rec.Phase("execute")
	start := time.Now()
	st := ir.Execute(workers, eo)
	elapsed := time.Since(start)
	stop()

	executor := "pipeline-observed"
	if eo.Hybrid {
		executor = "pipeline-hybrid-sched-observed"
	}
	o := &Observation{
		Result: Result{
			Executor:      executor,
			Elapsed:       elapsed,
			Hash:          p.Hash(),
			Tasks:         st.Executed,
			MaxConcurrent: st.MaxConcurrent,
			ChainFused:    st.ChainFused,
		},
		Analysis:  c.Analyze(),
		DataEdges: prog.DataEdges(),
		Phases:    rec.Phases.Spans(),
		Snapshot:  rec.Snapshot(),
		StmtNames: map[int]string{},
	}
	o.Critical = trace.ComputeCriticalPath(o.Analysis.Spans, prog.PrecedenceEdges())
	for _, s := range p.SCoP.Stmts {
		o.StmtNames[s.Index] = s.Name
	}
	return o, nil
}

// WriteTraceJSON exports an observation's spans as Chrome/Perfetto
// trace_event JSON, with flow arrows along the data-dependency edges.
func (o *Observation) WriteTraceJSON(w io.Writer) error {
	return trace.WritePerfetto(w, o.Analysis.Spans, trace.PerfettoOptions{
		Names: o.StmtNames,
		Edges: o.DataEdges,
	})
}
