package exec

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/kernels"
)

// TestHybridScheduleBitIdenticalTable9 is the cross-mode equivalence
// proof over the full Table 9 corpus: for every program, worker
// count, and blocking granularity, the hybrid static/dynamic
// schedule must produce the same result hash as the pure-dynamic
// scheduler and the sequential reference — bit-identical arrays.
// Run with -race -cpu 2,4 to exercise the steal and static-handoff
// paths under contention.
func TestHybridScheduleBitIdenticalTable9(t *testing.T) {
	for _, spec := range kernels.Table9 {
		for _, minIters := range []int{1, 8} {
			p := kernels.BuildTable9(spec, 8, 1)
			want := Sequential(p).Hash
			opts := core.Options{MinBlockIters: minIters}
			info, err := core.Detect(p.SCoP, opts)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, minIters, err)
			}
			dynProg, err := codegen.Compile(info)
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, minIters, err)
			}
			hybProg, err := codegen.CompileWithOptions(info, codegen.CompileOptions{HybridSchedule: true})
			if err != nil {
				t.Fatalf("%s b=%d: %v", spec.Name, minIters, err)
			}
			dyn := RunCompiled(p, dynProg, 4)
			if dyn.Hash != want {
				t.Fatalf("%s b=%d: dynamic hash %x, want %x", spec.Name, minIters, dyn.Hash, want)
			}
			for _, workers := range []int{1, 2, 4} {
				hyb := RunCompiled(p, hybProg, workers)
				if hyb.Hash != want {
					t.Fatalf("%s b=%d w=%d: hybrid hash %x, want %x", spec.Name, minIters, workers, hyb.Hash, want)
				}
				if hyb.Executor != "pipeline-hybrid-sched" {
					t.Fatalf("executor = %q", hyb.Executor)
				}
				if hyb.Tasks != dyn.Tasks {
					t.Fatalf("%s b=%d w=%d: hybrid ran %d tasks, dynamic %d", spec.Name, minIters, workers, hyb.Tasks, dyn.Tasks)
				}
			}
		}
	}
}

// TestHybridScheduleFusesChains asserts that the classification finds
// real chains on the corpus (the serial successor of the last block
// of a statement's predecessor chain is single-predecessor) and that
// the counter reports them.
func TestHybridScheduleFusesChains(t *testing.T) {
	p, err := kernels.Table9Program("P4", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PipelinedHybridSchedule(p, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainFused == 0 {
		t.Fatal("hybrid schedule fused no edges on P4")
	}
	if res.ChainFused >= int64(res.Tasks) {
		t.Fatalf("fused %d edges over %d tasks", res.ChainFused, res.Tasks)
	}
}

// TestObservedHybridSchedule checks the observed path reports the
// hybrid executor name and the runtime.chain_fused counter.
func TestObservedHybridSchedule(t *testing.T) {
	p := kernels.Listing3(24)
	o, err := PipelinedObservedWith(p, 2, core.Options{}, codegen.CompileOptions{HybridSchedule: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Result.Executor != "pipeline-hybrid-sched-observed" {
		t.Fatalf("executor = %q", o.Result.Executor)
	}
	if o.Result.Hash != Sequential(p).Hash {
		t.Fatal("observed hybrid hash differs from sequential")
	}
	if got := o.Snapshot.Counter("runtime.chain_fused"); got != o.Result.ChainFused || got == 0 {
		t.Fatalf("runtime.chain_fused = %d, Result.ChainFused = %d", got, o.Result.ChainFused)
	}
	if len(o.Critical.Tasks) == 0 {
		t.Fatal("no critical path on observed hybrid run")
	}
}
