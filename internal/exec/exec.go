// Package exec provides the three executors the evaluation compares
// (§6): the sequential reference, the cross-loop pipelined executor
// built from the detection → scheduling → code-generation pipeline,
// and a Polly-style baseline that parallelizes each loop nest on its
// own when the dependence analysis proves a loop dimension parallel.
// All executors run the same statement bodies; they differ only in
// schedule.
package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/futures"
	"repro/internal/isl"
	"repro/internal/kernels"
	"repro/internal/scop"
	"repro/internal/stages"
)

// Result reports one execution.
type Result struct {
	Executor      string
	Elapsed       time.Duration
	Hash          uint64
	Tasks         int   // pipeline tasks created (0 for other executors)
	MaxConcurrent int   // peak simultaneously running tasks (pipeline only)
	ChainFused    int64 // edges resolved by static handoff (hybrid scheduling only)
}

// Sequential runs the program nest by nest in lexicographic order and
// returns the wall time and result hash.
func Sequential(p *kernels.Program) Result {
	p.Reset()
	start := time.Now()
	RunSequential(p.SCoP)
	elapsed := time.Since(start)
	return Result{Executor: "sequential", Elapsed: elapsed, Hash: p.Hash()}
}

// RunSequential executes the SCoP's statements in program order, each
// domain in lexicographic order — the original program's semantics.
func RunSequential(sc *scop.SCoP) {
	for _, s := range sc.Stmts {
		body := s.Body
		for _, iv := range s.Domain.Elements() {
			body(iv)
		}
	}
}

// Pipelined detects the cross-loop pipeline pattern, compiles it to a
// task program, and runs it with the given number of workers.
func Pipelined(p *kernels.Program, workers int, opts core.Options) (Result, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Result{}, fmt.Errorf("exec: detect: %w", err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		return Result{}, fmt.Errorf("exec: compile: %w", err)
	}
	return RunCompiled(p, prog, workers), nil
}

// RunCompiled executes an already-compiled task program on the unified
// runtime core, so callers can amortize detection/compilation across
// repetitions (it is compile-time work in the paper's setting). The
// program is lowered to the runtime IR on first use; the timed region
// covers execution only, matching how repeated runs reuse the IR.
func RunCompiled(p *kernels.Program, prog *codegen.TaskProgram, workers int) Result {
	ir := prog.Lower()
	eo := prog.ExecOpts()
	p.Reset()
	start := time.Now()
	st := ir.Execute(workers, eo)
	elapsed := time.Since(start)
	name := "pipeline"
	if eo.Hybrid {
		name = "pipeline-hybrid-sched"
	}
	return Result{
		Executor:      name,
		Elapsed:       elapsed,
		Hash:          p.Hash(),
		Tasks:         st.Executed,
		MaxConcurrent: st.MaxConcurrent,
		ChainFused:    st.ChainFused,
	}
}

// PipelinedHybridSchedule is Pipelined with static/dynamic hybrid
// scheduling: the lowered IR's single-predecessor chains run as
// static handoffs on the finishing worker (no ready-queue or atomic
// indegree traffic) while cross-chain edges stay on the
// work-stealing scheduler. Bit-identical to Pipelined.
func PipelinedHybridSchedule(p *kernels.Program, workers int, opts core.Options) (Result, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Result{}, fmt.Errorf("exec: detect: %w", err)
	}
	prog, err := codegen.CompileWithOptions(info, codegen.CompileOptions{HybridSchedule: true})
	if err != nil {
		return Result{}, fmt.Errorf("exec: compile: %w", err)
	}
	return RunCompiled(p, prog, workers), nil
}

// PipelinedHybrid combines cross-loop pipelining with intra-block
// parallelism (§7): blocks of conflict-free statements run their
// members on up to intraWorkers goroutines while the pipeline overlaps
// the nests.
func PipelinedHybrid(p *kernels.Program, workers, intraWorkers int, opts core.Options) (Result, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Result{}, fmt.Errorf("exec: detect: %w", err)
	}
	prog, err := codegen.CompileWithOptions(info, codegen.CompileOptions{IntraBlockWorkers: intraWorkers})
	if err != nil {
		return Result{}, fmt.Errorf("exec: compile: %w", err)
	}
	res := RunCompiled(p, prog, workers)
	res.Executor = "pipeline-hybrid"
	return res, nil
}

// RunOnLayer executes a compiled task program on an arbitrary tasking
// layer (the §7 retargeting hook). The layer is closed afterwards.
func RunOnLayer(p *kernels.Program, prog *codegen.TaskProgram, layer codegen.Layer) Result {
	p.Reset()
	start := time.Now()
	prog.Submit(layer)
	layer.Wait()
	elapsed := time.Since(start)
	layer.Close()
	return Result{
		Executor: "pipeline-layer",
		Elapsed:  elapsed,
		Hash:     p.Hash(),
		Tasks:    prog.NumTasks(),
	}
}

// PipelinedOnFutures runs the pipelined program on the futures-based
// tasking layer instead of the OpenMP-style dependency-table runtime.
func PipelinedOnFutures(p *kernels.Program, workers int, opts core.Options) (Result, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Result{}, fmt.Errorf("exec: detect: %w", err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		return Result{}, fmt.Errorf("exec: compile: %w", err)
	}
	return RunOnLayer(p, prog, futures.New(workers)), nil
}

// PipelinedOnStages runs the pipelined program on the stage-per-nest
// channel layer.
func PipelinedOnStages(p *kernels.Program, poolWorkers int, opts core.Options) (Result, error) {
	info, err := core.Detect(p.SCoP, opts)
	if err != nil {
		return Result{}, fmt.Errorf("exec: detect: %w", err)
	}
	prog, err := codegen.Compile(info)
	if err != nil {
		return Result{}, fmt.Errorf("exec: compile: %w", err)
	}
	return RunOnLayer(p, prog, stages.New(poolWorkers)), nil
}

// ParLoop is the Polly baseline: each nest runs on its own, with the
// outermost provably-parallel loop dimension distributed over workers
// (and everything inside it sequential), or fully sequentially when no
// dimension is parallel. Nests never overlap with each other.
func ParLoop(p *kernels.Program, workers int) Result {
	g := deps.Analyze(p.SCoP)
	plan := make([][]bool, len(p.SCoP.Stmts))
	for i, s := range p.SCoP.Stmts {
		plan[i] = g.ParallelDims(s)
	}
	p.Reset()
	start := time.Now()
	for i, s := range p.SCoP.Stmts {
		runNestParallel(s, plan[i], workers)
	}
	elapsed := time.Since(start)
	return Result{Executor: "parloop", Elapsed: elapsed, Hash: p.Hash()}
}

// ParallelizableNests reports how many nests of the program the
// baseline can parallelize at any depth.
func ParallelizableNests(p *kernels.Program) int {
	g := deps.Analyze(p.SCoP)
	n := 0
	for _, s := range p.SCoP.Stmts {
		for _, ok := range g.ParallelDims(s) {
			if ok {
				n++
				break
			}
		}
	}
	return n
}

// runNestParallel executes one statement with loop dimension d (the
// outermost parallel one) distributed across workers.
func runNestParallel(s *scop.Statement, par []bool, workers int) {
	d := -1
	for dim, ok := range par {
		if ok {
			d = dim
			break
		}
	}
	elems := s.Domain.Elements()
	if d < 0 || workers <= 1 {
		body := s.Body
		for _, iv := range elems {
			body(iv)
		}
		return
	}

	// Group iterations by the dims outer than d (run sequentially,
	// with a barrier per group) and within each group by the value of
	// dim d (slices run in parallel, each internally sequential).
	for start := 0; start < len(elems); {
		end := start
		prefix := elems[start][:d]
		for end < len(elems) && elems[end][:d].Eq(prefix) {
			end++
		}
		runSlicesParallel(s.Body, elems[start:end], d, workers)
		start = end
	}
}

// runSlicesParallel splits elems (which agree on dims < d) into
// contiguous runs with equal value at dim d and executes the runs on a
// worker pool.
func runSlicesParallel(body scop.Body, elems []isl.Vec, d, workers int) {
	var slices [][]isl.Vec
	for start := 0; start < len(elems); {
		end := start
		for end < len(elems) && elems[end][d] == elems[start][d] {
			end++
		}
		slices = append(slices, elems[start:end])
		start = end
	}
	ch := make(chan []isl.Vec, len(slices))
	for _, sl := range slices {
		ch <- sl
	}
	close(ch)
	var wg sync.WaitGroup
	n := workers
	if n > len(slices) {
		n = len(slices)
	}
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for sl := range ch {
				for _, iv := range sl {
					body(iv)
				}
			}
		}()
	}
	wg.Wait()
}

// Verify runs the sequential reference and every listed executor and
// returns an error naming the first executor whose result hash
// differs.
func Verify(p *kernels.Program, workers int, opts core.Options) error {
	want := Sequential(p).Hash
	pipe, err := Pipelined(p, workers, opts)
	if err != nil {
		return err
	}
	if pipe.Hash != want {
		return fmt.Errorf("exec: pipeline result differs from sequential (%x vs %x)", pipe.Hash, want)
	}
	if got := ParLoop(p, workers).Hash; got != want {
		return fmt.Errorf("exec: parloop result differs from sequential (%x vs %x)", got, want)
	}
	return nil
}
