package cache

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/scop"
)

// GetBatch serves a batch of SCoPs through the cache: it partitions
// the batch into hits and misses, answers hits immediately from the
// shared frozen entries, and fans the misses over an
// Options.Workers-wide pool — in-flight deduplication collapses
// identical misses within the batch (and against concurrent callers)
// to one Detect each. Results come back in input order with per-item
// errors, and each is bit-identical to a standalone Detect of that
// item.
//
// ctx cancels admission: misses not yet started when ctx is done are
// marked with ctx.Err(); started detections run to completion and
// still fill the cache. The whole call's latency lands in the
// cache.batch_ns histogram.
func (c *Cache) GetBatch(ctx context.Context, scs []*scop.SCoP, opts core.Options) ([]*core.Info, []error) {
	start := time.Now()
	infos := make([]*core.Info, len(scs))
	errs := make([]error, len(scs))

	// Hit pass: serve whatever is already resident without spinning up
	// the pool. A key that misses here may still be filled by another
	// item of this batch or a concurrent caller before its turn — Get
	// re-probes, so that shows up as a hit or a deduplicated wait, never
	// a second Detect.
	var misses []int
	for i, sc := range scs {
		if info, ok := c.peek(sc, opts); ok {
			infos[i] = Rebind(info, sc)
		} else {
			misses = append(misses, i)
		}
	}

	if len(misses) > 0 {
		// Multi-miss batches parallelize across items with serial inner
		// detections, mirroring core.DetectBatch; a lone miss keeps the
		// caller's intra-SCoP pool.
		inner := opts
		if len(misses) > 1 {
			inner.Workers = 1
		}
		started := make([]bool, len(misses))
		err := par.ForCtx(ctx, len(misses), par.Workers(opts.Workers), func(j int) {
			started[j] = true
			i := misses[j]
			infos[i], errs[i] = c.Get(ctx, scs[i], inner)
		})
		if err != nil {
			for j, i := range misses {
				if !started[j] {
					errs[i] = err
				}
			}
		}
	}
	c.batchNS.Observe(time.Since(start).Nanoseconds())
	return infos, errs
}

// peek is a promotion-counting lookup that never detects: it returns
// the resident frozen Info for (sc, opts) and records a hit, or
// reports a miss without counting it (the authoritative miss count
// comes from the Get that follows).
func (c *Cache) peek(sc *scop.SCoP, opts core.Options) (*core.Info, bool) {
	key := KeyFor(sc, opts)
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.lru.MoveToFront(el)
	info := el.Value.(*entry).info
	sh.mu.Unlock()
	c.hits.Inc()
	return info, true
}
