package cache

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fuzzscop"
	"repro/internal/scop"
)

// TestConcurrentGetBatchDeterministic is the serving-path determinism
// property: many goroutines issue overlapping DetectBatch requests
// through one cache at pool widths 1, 2, and 8 — mixing cold misses,
// hot hits, in-flight waits, and rebinding across instances — and
// every result is structurally identical to a standalone serial
// Detect. Run under `make race` this also proves the frozen cached
// Info is safe for concurrent readers.
func TestConcurrentGetBatchDeterministic(t *testing.T) {
	build := func() []*scop.SCoP {
		// Fresh instances every time so most hits exercise Rebind.
		return []*scop.SCoP{buildChain(t, 16), fuzzscop.Stress(), buildChain(t, 24), buildChain(t, 16)}
	}
	ref := build()
	want := make([]*core.Info, len(ref))
	for i, sc := range ref {
		info, err := core.Detect(sc, core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = info
	}

	c := New(0, nil)
	var wg sync.WaitGroup
	for _, workers := range []int{1, 2, 8} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(workers int) {
				defer wg.Done()
				scs := build()
				infos, errs := c.GetBatch(context.Background(), scs, core.Options{Workers: workers})
				for i := range scs {
					if errs[i] != nil {
						t.Errorf("workers=%d item %d: %v", workers, i, errs[i])
						return
					}
					if err := core.EqualInfo(want[i], infos[i]); err != nil {
						t.Errorf("workers=%d item %d differs from serial Detect: %v", workers, i, err)
						return
					}
					// Cached results must be readable concurrently: walk the
					// lookup surfaces while other goroutines do the same.
					for _, si := range infos[i].Stmts {
						for _, blk := range si.Blocks {
							if si.BlockIndex(blk.Leader) < 0 {
								t.Errorf("workers=%d: leader lookup failed", workers)
								return
							}
						}
					}
				}
			}(workers)
		}
	}
	wg.Wait()

	// Everything after the first round of leaders was served from cache.
	st := c.Stats()
	if st.Misses-st.InflightDedup > 3 {
		t.Fatalf("more detections than distinct keys: stats %+v (3 distinct)", st)
	}
}
