// Package cache is the content-addressed detection cache: a sharded,
// bounded LRU from SCoP fingerprint (plus the semantic detection
// options) to a frozen, immutable *core.Info, with in-flight
// deduplication so N concurrent requests for one SCoP run Detect once.
//
// The key is scop.Fingerprint — a canonical, parameter-aware content
// hash — combined with the Options fields that change the result
// (MinBlockIters, PairwiseBlocks, AllowOverwrites). Workers is
// excluded because detection is bit-identical across pool widths (the
// determinism contract, docs/PERFORMANCE.md), and Obs is excluded
// because observation never changes behaviour. Two differently named,
// separately built SCoPs with the same polyhedral content therefore
// share one entry; results served from another request's entry are
// rebound to the caller's *scop.SCoP so task bodies resolve to the
// caller's closures.
package cache

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scop"
)

// DefaultCapacity is the entry bound a Cache built with capacity <= 0
// gets. One entry is one detected SCoP; sizing guidance lives in
// docs/PERFORMANCE.md.
const DefaultCapacity = 128

const numShards = 8

// Key is the cache address of one detection result.
type Key struct {
	FP scop.Fingerprint
	// The semantic option fields, normalized (MinBlockIters < 2 is the
	// identity coarsening and stored as 0).
	MinBlockIters   int
	PairwiseBlocks  bool
	AllowOverwrites bool
}

// KeyFor returns the cache key Get would use for (sc, opts).
func KeyFor(sc *scop.SCoP, opts core.Options) Key {
	mbi := opts.MinBlockIters
	if mbi < 2 {
		mbi = 0
	}
	return Key{
		FP:              sc.Fingerprint(),
		MinBlockIters:   mbi,
		PairwiseBlocks:  opts.PairwiseBlocks,
		AllowOverwrites: opts.AllowOverwrites,
	}
}

type entry struct {
	key  Key
	info *core.Info // frozen; info.SCoP is the first-seen instance
}

// flight is one in-progress detection; waiters block on done.
type flight struct {
	done chan struct{}
	info *core.Info
	err  error
}

type shard struct {
	mu       sync.Mutex
	entries  map[Key]*list.Element // of *entry
	lru      list.List             // front = most recently used
	inflight map[Key]*flight
}

// Tier is a second-level store consulted behind the in-memory LRU: a
// miss probes Load before running Detect, and a completed detection is
// written through with Store. Implementations must be safe for
// concurrent use and must return Load results that are frozen and
// bound to the passed SCoP; internal/cache/disk is the durable
// implementation.
type Tier interface {
	// Load returns the frozen detection result for key bound to sc, or
	// false on a miss. Failures are misses — a tier accelerates, it
	// never gates.
	Load(key Key, sc *scop.SCoP) (*core.Info, bool)
	// Store persists a frozen detection result under key.
	Store(key Key, info *core.Info)
}

// Cache is a sharded, bounded, in-process detection cache. All methods
// are safe for concurrent use; cached Info values are frozen and may
// be read (and executed) concurrently without synchronization.
type Cache struct {
	shards   [numShards]shard
	perShard int
	tier     Tier

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	dedup     *obs.Counter
	entries   *obs.Gauge
	batchNS   *obs.Histogram
}

// New builds a cache bounded to capacity entries (DefaultCapacity when
// capacity <= 0). Counters, the entry gauge, and the batch-latency
// histogram are registered on reg under the cache.* names catalogued
// in docs/OBSERVABILITY.md; a nil reg wires them to a private registry
// so the cache never branches on observability.
func New(capacity int, reg *obs.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Cache{
		perShard:  (capacity + numShards - 1) / numShards,
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		evictions: reg.Counter("cache.evictions"),
		dedup:     reg.Counter("cache.inflight_dedup"),
		entries:   reg.Gauge("cache.entries"),
		batchNS:   reg.Histogram("cache.batch_ns", nil),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].inflight = make(map[Key]*flight)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	// The fingerprint is already uniform; fold both lanes and the
	// option bits so option variants of one SCoP spread too.
	h := k.FP[0] ^ k.FP[1]*0x9e3779b97f4a7c15 ^ uint64(k.MinBlockIters)
	if k.PairwiseBlocks {
		h ^= 1 << 32
	}
	if k.AllowOverwrites {
		h ^= 1 << 33
	}
	return &c.shards[h%numShards]
}

// Get returns the detection result for sc under opts, running Detect
// at most once per key across all concurrent callers. Hits and
// deduplicated waits return a view of the shared frozen Info rebound
// to sc; the leader's own result is cached frozen and returned as-is.
//
// ctx bounds only the wait: a waiter whose ctx is done abandons the
// flight with ctx.Err() while the leader's Detect always runs to
// completion and fills the cache (detection itself is not cancelable).
func (c *Cache) Get(ctx context.Context, sc *scop.SCoP, opts core.Options) (*core.Info, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	key := KeyFor(sc, opts)
	sh := c.shardFor(key)

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		info := el.Value.(*entry).info
		sh.mu.Unlock()
		c.hits.Inc()
		return Rebind(info, sc), nil
	}
	c.misses.Inc()
	if f, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		c.dedup.Inc()
		return c.wait(ctx, f, sc)
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()

	// Second tier: a durable store (disk) answers before Detect runs.
	// The flight is already registered, so concurrent misses wait on
	// one tier probe + detection, not N.
	var info *core.Info
	var err error
	fromTier := false
	if c.tier != nil {
		info, fromTier = c.tier.Load(key, sc)
	}
	if !fromTier {
		info, err = core.Detect(sc, opts)
		if err == nil {
			info.Freeze()
		}
	}
	f.info, f.err = info, err
	close(f.done)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil {
		c.insertLocked(sh, key, info)
	}
	sh.mu.Unlock()
	if err == nil && !fromTier && c.tier != nil {
		c.tier.Store(key, info)
	}
	return info, err
}

// SetTier attaches a second-level store behind the in-memory LRU (nil
// detaches). Set it before serving traffic; the field is read without
// synchronization on the miss path.
func (c *Cache) SetTier(t Tier) { c.tier = t }

// wait blocks until f resolves or ctx is done, rebinding a successful
// result to the waiter's own SCoP instance.
func (c *Cache) wait(ctx context.Context, f *flight, sc *scop.SCoP) (*core.Info, error) {
	if ctx != nil {
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	} else {
		<-f.done
	}
	if f.err != nil {
		return nil, f.err
	}
	return Rebind(f.info, sc), nil
}

// insertLocked adds key→info to sh (which the caller holds locked) and
// evicts from the cold end past the per-shard bound.
func (c *Cache) insertLocked(sh *shard, key Key, info *core.Info) {
	if el, ok := sh.entries[key]; ok {
		// A racing leader for the same key (possible when a waiter's
		// flight resolved between our probe and insert) already filled
		// it; keep the incumbent.
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.lru.PushFront(&entry{key: key, info: info})
	c.entries.Add(1)
	for sh.lru.Len() > c.perShard {
		cold := sh.lru.Back()
		sh.lru.Remove(cold)
		delete(sh.entries, cold.Value.(*entry).key)
		c.entries.Add(-1)
		c.evictions.Inc()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time read of the cache counters.
type Stats struct {
	Hits, Misses, Evictions, InflightDedup int64
	Entries                                int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
		InflightDedup: c.dedup.Value(),
		Entries:       c.entries.Value(),
	}
}

// Rebind returns a view of a cached detection result whose statement
// pointers resolve into sc instead of the first-seen SCoP the entry
// was detected from. The two SCoPs share a fingerprint, so their
// polyhedral content — statement count, indices, domains, accesses —
// is identical; only identity (and the executable Body closures)
// differs, and those are exactly what the view swaps. The isl maps,
// blocks, and leader index are shared with the cached result: they are
// frozen and read-only, so the view costs one shallow copy per
// statement. When info was detected from sc itself it is returned
// unchanged.
//
// The shared Graph is kept as-is: its post-detection accessors
// (ParallelDims, HasIntraConflicts, Flow) key on statement Index, so
// they answer identically for rebound statements.
func Rebind(info *core.Info, sc *scop.SCoP) *core.Info {
	if info.SCoP == sc {
		return info
	}
	out := &core.Info{
		SCoP:  sc,
		Graph: info.Graph,
		Pairs: make([]core.PipelinePair, len(info.Pairs)),
		Stmts: make([]*core.StmtInfo, len(info.Stmts)),
	}
	for i, p := range info.Pairs {
		p.Src = sc.Stmts[p.Src.Index]
		p.Dst = sc.Stmts[p.Dst.Index]
		out.Pairs[i] = p
	}
	for i, si := range info.Stmts {
		cp := *si // struct copy keeps the unexported leader index
		cp.Stmt = sc.Stmts[si.Stmt.Index]
		if len(si.InDeps) > 0 {
			cp.InDeps = make([]core.InDep, len(si.InDeps))
			for j, d := range si.InDeps {
				d.Src = sc.Stmts[d.Src.Index]
				cp.InDeps[j] = d
			}
		}
		out.Stmts[i] = &cp
	}
	return out
}
